; Iterative Fibonacci: r1 = fib(20), with each value also stored to a
; results table — enough load/store traffic for the detectors to watch.
;
;   go run ./cmd/fhasm -scheme faulthound examples/programs/fib.s

.data 4096

    movi r2, 0x10000000   ; table base
    movi r3, 0            ; fib(0)
    movi r4, 1            ; fib(1)
    movi r5, 2            ; i
    movi r6, 21           ; bound
    st   [r2], r3
    st   [r2+8], r4
loop:
    add  r1, r3, r4       ; fib(i)
    slli r7, r5, 3
    add  r8, r2, r7
    st   [r8], r1         ; table[i] = fib(i)
    ld   r9, [r8]         ; read it back
    add  r3, r4, r0
    add  r4, r9, r0
    addi r5, r5, 1
    blt  r5, r6, loop
    halt
