// Quickstart: build a tiny program, run it on the simulated
// out-of-order core with FaultHound attached, inject a handful of
// register-file faults, and report what FaultHound did about them.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"faulthound/internal/core"
	"faulthound/internal/fault"
	"faulthound/internal/isa"
	"faulthound/internal/pipeline"
	"faulthound/internal/prog"
)

func main() {
	// A small kernel: walk an array, transform it, and accumulate a
	// checksum — enough load/store traffic for FaultHound to learn the
	// value neighborhoods.
	b := prog.NewBuilder("quickstart", 4096)
	for i := uint64(0); i < 256; i++ {
		b.Word(i*8, i*5+1)
	}
	b.MovU64(2, b.DataBase())
	b.MovI(3, 0) // i
	b.MovI(4, 1<<30)
	b.MovI(6, 0) // checksum
	b.Label("loop")
	b.OpI(isa.ANDI, 5, 3, 255)
	b.OpI(isa.SLLI, 5, 5, 3)
	b.Op3(isa.ADD, 5, 2, 5)
	b.Ld(7, 5, 0)
	b.Op3(isa.XOR, 6, 6, 7) // running checksum, full width
	b.OpI(isa.XORI, 7, 7, 0x3c)
	b.St(5, 0, 7)
	b.St(2, 256*8, 6) // publish the checksum (faults become visible)
	b.OpI(isa.ADDI, 3, 3, 1)
	b.Br(isa.BLT, 3, 4, "loop")
	b.Halt()
	program := b.MustBuild()

	// Attach full FaultHound (Table-2 configuration: two 32-entry
	// TCAMs, second-level filters, squash machines, LSQ checks).
	mk := func() *pipeline.Core {
		c, err := pipeline.New(pipeline.DefaultConfig(1),
			[]*prog.Program{program}, core.New(core.DefaultConfig()))
		if err != nil {
			panic(err)
		}
		return c
	}

	// Fault-free run: FaultHound must be architecturally transparent.
	c := mk()
	c.RunUntilCommits(0, 20000, 10_000_000)
	fmt.Printf("fault-free run: %d instructions in %d cycles (IPC %.2f)\n",
		c.Committed(0), c.Cycle(), c.Stats().IPC())
	ds := c.Detector().Stats()
	fmt.Printf("detector: %d checks, %d triggers, %d suppressed, %d replays, %d rollbacks\n",
		ds.Checks, ds.Triggers, ds.Suppressed, ds.Replays, ds.Rollbacks)

	// Now a small fault-injection campaign (tandem golden/faulty runs).
	cfg := fault.DefaultConfig()
	cfg.Injections = 400
	cfg.WarmupCycles = 5000

	base, err := fault.Run(func() *pipeline.Core {
		c, e := pipeline.New(pipeline.DefaultConfig(1), []*prog.Program{program}, nil)
		if e != nil {
			panic(e)
		}
		return c
	}, cfg)
	if err != nil {
		panic(err)
	}
	det, err := fault.Run(mk, cfg)
	if err != nil {
		panic(err)
	}
	masked, noisy, sdc := base.Classification()
	fmt.Printf("\ninjected %d faults (no protection): %d masked, %d noisy, %d SDC\n",
		cfg.Injections, masked, noisy, sdc)
	rep := fault.PairCoverage(base, det)
	fmt.Printf("FaultHound covered %d of %d would-be-SDC faults (%.0f%%)\n",
		rep.CoveredCount, rep.SDCBase, rep.Coverage()*100)
	for _, bin := range fault.BinNames() {
		if rep.Bins[bin] > 0 {
			fmt.Printf("  %-18s %d\n", bin, rep.Bins[bin])
		}
	}
}
