// Custreplay demonstrates FaultHound's two recovery mechanisms on a
// hand-built program: the delay-buffer predecessor replay (Section 3.3)
// correcting an in-flight register fault, and the commit-time singleton
// re-execute (Section 3.5) correcting and declaring an LSQ fault.
//
//	go run ./examples/custreplay
package main

import (
	"fmt"

	"faulthound/internal/core"
	"faulthound/internal/isa"
	"faulthound/internal/pipeline"
	"faulthound/internal/prog"
)

func build() *prog.Program {
	// A store whose address and value flow through a short dependence
	// chain — the pattern predecessor replay is designed around.
	b := prog.NewBuilder("custreplay", 4096)
	b.MovU64(2, b.DataBase())
	b.MovI(3, 0)
	b.MovI(4, 1<<30)
	b.Label("loop")
	b.OpI(isa.ANDI, 5, 3, 63)
	b.OpI(isa.SLLI, 5, 5, 3)
	b.Op3(isa.ADD, 6, 2, 5) // address chain
	b.Op3(isa.ADD, 7, 3, 3) // value chain
	b.St(6, 0, 7)
	b.Ld(8, 6, 0)
	b.OpI(isa.ADDI, 3, 3, 1)
	b.Br(isa.BLT, 3, 4, "loop")
	b.Halt()
	return b.MustBuild()
}

func mk(p *prog.Program) *pipeline.Core {
	c, err := pipeline.New(pipeline.DefaultConfig(1),
		[]*prog.Program{p}, core.New(core.DefaultConfig()))
	if err != nil {
		panic(err)
	}
	return c
}

func main() {
	p := build()

	// Golden reference.
	g := mk(p)
	g.RunUntilCommits(0, 4000, 10_000_000)
	want := g.ArchHash(0)

	// --- Predecessor replay: corrupt an in-flight destination register.
	f := mk(p)
	f.RunUntilCommits(0, 2000, 10_000_000)
	regs := f.InFlightDestRegs()
	f.FlipRegisterBit(regs[len(regs)/2], 17)
	before := f.Stats().ReplayTriggers
	f.RunUntilCommits(0, 4000, 10_000_000)
	fmt.Println("--- predecessor replay (in-flight register fault) ---")
	fmt.Printf("replay triggers during window: %d (replayed %d instructions)\n",
		f.Stats().ReplayTriggers-before, f.Stats().ReplayedUops)
	if f.ArchHash(0) == want {
		fmt.Println("architectural state matches the golden run: fault CORRECTED")
	} else {
		fmt.Println("architectural state differs: fault escaped this time")
	}

	// --- Singleton re-execute: corrupt a store's LSQ copy after execute.
	f2 := mk(p)
	f2.RunUntilCommits(0, 2000, 10_000_000)
	var site pipeline.LSQSite
	found := false
	for i := 0; i < 10000 && !found; i++ {
		f2.Step()
		for _, s := range f2.LSQSites() {
			if s.IsStore {
				site, found = s, true
				break
			}
		}
	}
	if !found {
		panic("no LSQ store site found")
	}
	f2.FlipLSQBit(site, pipeline.LSQData, 9)
	declared := f2.Stats().FaultsDeclared
	f2.RunUntilCommits(0, 4000, 10_000_000)
	fmt.Println("\n--- singleton re-execute (LSQ store-value fault) ---")
	fmt.Printf("singleton re-executions: %d, faults declared: %d\n",
		f2.Stats().Singletons, f2.Stats().FaultsDeclared-declared)
	if f2.ArchHash(0) == want {
		fmt.Println("architectural state matches the golden run: fault CORRECTED before the memory write")
	} else if f2.Stats().FaultsDeclared > declared {
		fmt.Println("fault DETECTED (declared) by the re-execute comparison")
	} else {
		fmt.Println("fault escaped this time")
	}
}
