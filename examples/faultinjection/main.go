// Faultinjection runs a tandem fault-injection campaign on one
// benchmark and compares FaultHound against the PBFS baselines — a
// miniature of the paper's Figure 8(a) for a single workload.
//
//	go run ./examples/faultinjection [benchmark] [injections]
package main

import (
	"fmt"
	"os"
	"strconv"

	"faulthound/internal/core"
	"faulthound/internal/detect"
	"faulthound/internal/fault"
	"faulthound/internal/pbfs"
	"faulthound/internal/pipeline"
	"faulthound/internal/prog"
	"faulthound/internal/workload"
)

func main() {
	bench := "bzip2"
	injections := 200
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}
	if len(os.Args) > 2 {
		if n, err := strconv.Atoi(os.Args[2]); err == nil {
			injections = n
		}
	}
	bm, err := workload.Get(bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	program := bm.Build(prog.DefaultDataBase, 1)
	mk := func(d detect.Detector) func() *pipeline.Core {
		return func() *pipeline.Core {
			var det detect.Detector
			if d != nil {
				det = d.Clone() // fresh detector per core
			}
			c, err := pipeline.New(pipeline.DefaultConfig(1), []*prog.Program{program}, det)
			if err != nil {
				panic(err)
			}
			return c
		}
	}

	cfg := fault.DefaultConfig()
	cfg.Injections = injections

	fmt.Printf("injecting %d single-bit faults into %s (regfile/LSQ/rename table)\n\n",
		injections, bm.Name)

	base, err := fault.Run(mk(nil), cfg)
	if err != nil {
		panic(err)
	}
	masked, noisy, sdc := base.Classification()
	fmt.Printf("unprotected: %5.1f%% masked, %5.1f%% noisy, %5.1f%% SDC\n",
		pct(masked, injections), pct(noisy, injections), pct(sdc, injections))
	fmt.Println()

	schemes := []struct {
		name string
		det  detect.Detector
	}{
		{"pbfs", pbfs.New(pbfs.Default())},
		{"pbfs-biased", pbfs.New(pbfs.Biased())},
		{"faulthound-backend", core.New(core.BackendConfig())},
		{"faulthound", core.New(core.DefaultConfig())},
	}
	fmt.Printf("%-20s %s\n", "scheme", "SDC coverage")
	for _, s := range schemes {
		det, err := fault.Run(mk(s.det), cfg)
		if err != nil {
			panic(err)
		}
		rep := fault.PairCoverage(base, det)
		fmt.Printf("%-20s %5.1f%%  (%d/%d)\n", s.name, rep.Coverage()*100,
			rep.CoveredCount, rep.SDCBase)
	}
}

func pct(n, d int) float64 { return 100 * float64(n) / float64(d) }
