// Multicore runs the genuinely parallel Ocean kernel — threads sharing
// one grid and synchronizing through AMOADD barriers — across the
// paper's 8-core, 2-way-SMT machine, with FaultHound attached to every
// core, then injects a register fault in one core mid-run.
//
//	go run ./examples/multicore [cores]
package main

import (
	"fmt"
	"os"
	"strconv"

	"faulthound/internal/core"
	"faulthound/internal/detect"
	"faulthound/internal/pipeline"
	"faulthound/internal/prog"
	"faulthound/internal/system"
	"faulthound/internal/workload"
)

func main() {
	cores := 4
	if len(os.Args) > 1 {
		if n, err := strconv.Atoi(os.Args[1]); err == nil && n > 0 {
			cores = n
		}
	}
	threads := cores * 2

	programs := workload.OceanMP(prog.DefaultDataBase, 1, threads)
	cfg := system.Config{Cores: cores, Core: pipeline.DefaultConfig(2)}
	s, err := system.New(cfg, programs, func(int) detect.Detector {
		return core.New(core.DefaultConfig())
	})
	if err != nil {
		panic(err)
	}

	fmt.Printf("machine: %d cores x 2-way SMT (%d hardware threads), FaultHound per core\n",
		cores, threads)
	fmt.Println("workload: shared-grid Ocean with AMOADD barriers")
	fmt.Println()

	s.Run(100_000)
	gen, _ := s.Memory().Read(prog.DefaultDataBase + 16)
	fmt.Printf("after 100k cycles: %d barrier generations, %d instructions committed\n",
		gen, s.CommittedTotal())

	// Inject a register-file fault into core 1 and keep running.
	victim := s.Core(1 % cores)
	if regs := victim.InFlightDestRegs(); len(regs) > 0 {
		victim.FlipRegisterBit(regs[0], 21)
		fmt.Println("injected a bit flip into an in-flight register of core 1")
	}
	s.Run(100_000)

	gen2, _ := s.Memory().Read(prog.DefaultDataBase + 16)
	agg := s.Stats()
	fmt.Printf("after 200k cycles: %d barrier generations, %d instructions committed\n",
		gen2, s.CommittedTotal())
	fmt.Printf("aggregate IPC %.2f, replays %d, rollbacks %d, singletons %d\n",
		float64(agg.Committed)/float64(agg.Cycles),
		agg.ReplayTriggers, agg.Rollbacks, agg.Singletons)
	if gen2 > gen {
		fmt.Println("the barrier kept advancing through the fault: the machine survived")
	} else {
		fmt.Println("WARNING: no barrier progress after the fault")
	}
	for i := 0; i < cores; i++ {
		for tid := 0; tid < 2; tid++ {
			if exc, msg := s.Core(i).Excepted(tid); exc {
				fmt.Printf("core %d thread %d exception: %s\n", i, tid, msg)
			}
		}
	}
}
