// Valuelocality reproduces the Figure-6-style characterization on one
// workload: the per-bit change rate of load addresses, store addresses,
// and store values relative to each instruction's previous value — the
// empirical foundation of FaultHound (most bits rarely change, so a
// change in an "unchanging" bit hints at a fault).
//
//	go run ./examples/valuelocality [benchmark]
package main

import (
	"fmt"
	"os"
	"strings"

	"faulthound/internal/detect"
	"faulthound/internal/pipeline"
	"faulthound/internal/prog"
	"faulthound/internal/workload"
)

func main() {
	bench := "bzip2"
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}
	bm, err := workload.Get(bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	c, err := pipeline.New(pipeline.DefaultConfig(1),
		[]*prog.Program{bm.Build(prog.DefaultDataBase, 1)}, nil)
	if err != nil {
		panic(err)
	}

	type key struct {
		kind detect.Kind
		pc   uint64
	}
	prev := make(map[key]uint64)
	var changes [3][64]uint64
	var counts [3]uint64
	c.SetProbe(func(ev detect.Event) {
		k := key{ev.Kind, ev.PC}
		if old, ok := prev[k]; ok {
			diff := old ^ ev.Value
			for b := 0; b < 64; b++ {
				if diff>>uint(b)&1 == 1 {
					changes[ev.Kind][b]++
				}
			}
			counts[ev.Kind]++
		}
		prev[k] = ev.Value
	})
	c.RunUntilCommits(0, 60000, 50_000_000)

	fmt.Printf("value locality of %s (%s): %% of dynamic instances whose bit differs from\n", bm.Name, bm.Suite)
	fmt.Println("the same instruction's previous value (Figure 6 of the paper)")
	fmt.Println()
	fmt.Println("bit  load-addr  store-addr  store-val   (bar = change rate, log-ish)")
	for b := 0; b < 40; b++ {
		la := rate(changes[detect.LoadAddr][b], counts[detect.LoadAddr])
		sa := rate(changes[detect.StoreAddr][b], counts[detect.StoreAddr])
		sv := rate(changes[detect.StoreValue][b], counts[detect.StoreValue])
		fmt.Printf("%3d  %8.3f%%  %9.3f%%  %8.3f%%  %s\n", b, la, sa, sv, bar(la+sa+sv))
	}
	var totalBits, totalVals uint64
	for k := 0; k < 3; k++ {
		for b := 0; b < 64; b++ {
			totalBits += changes[k][b]
		}
		totalVals += counts[k]
	}
	fmt.Printf("\nmean changed bits per 64-bit value: %.2f (paper: ~3)\n",
		float64(totalBits)/float64(totalVals))
}

func rate(n, d uint64) float64 {
	if d == 0 {
		return 0
	}
	return 100 * float64(n) / float64(d)
}

func bar(pct float64) string {
	n := int(pct / 5)
	if n > 40 {
		n = 40
	}
	return strings.Repeat("#", n)
}
