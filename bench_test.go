// Package repro's benchmarks regenerate every table and figure of the
// paper's evaluation (DESIGN.md experiment index) and the ablations of
// its design choices. Each benchmark runs a scaled-down experiment per
// iteration and reports the headline quantities as custom metrics, so
//
//	go test -bench=. -benchmem
//
// yields the paper-shaped numbers alongside the usual timing. The full,
// paper-scale runs are produced by cmd/faulthound.
package main

import (
	"testing"

	"faulthound/internal/core"
	"faulthound/internal/detect"
	"faulthound/internal/energy"
	"faulthound/internal/fault"
	"faulthound/internal/filter"
	"faulthound/internal/harness"
	"faulthound/internal/pipeline"
	"faulthound/internal/prog"
	"faulthound/internal/tcam"
	"faulthound/internal/workload"
)

// benchSubset is a cross-suite subset that keeps bench runtimes sane
// while spanning the workload classes.
var benchSubset = []string{"bzip2", "mcf", "gamess", "apache", "ocean"}

func benchOptions() harness.Options {
	o := harness.QuickOptions()
	o.Benchmarks = benchSubset
	o.MeasureCommits = 8000
	o.Fault.Injections = 80
	o.Fault.WarmupCycles = 6000
	return o
}

func BenchmarkTable1Workloads(b *testing.B) {
	// Table 1: every benchmark kernel builds and runs.
	for i := 0; i < b.N; i++ {
		for _, bm := range workload.All() {
			p := bm.Build(prog.DefaultDataBase, 1)
			c, err := pipeline.New(pipeline.DefaultConfig(1), []*prog.Program{p}, nil)
			if err != nil {
				b.Fatal(err)
			}
			if !c.RunUntilCommits(0, 2000, 1_000_000) {
				b.Fatalf("%s stalled", bm.Name)
			}
		}
	}
	b.ReportMetric(float64(len(workload.All())), "benchmarks")
}

func BenchmarkTable2Pipeline(b *testing.B) {
	// Table 2: the configured core sustains its baseline throughput.
	bm, _ := workload.Get("bzip2")
	p := bm.Build(prog.DefaultDataBase, 1)
	var ipc float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := pipeline.New(pipeline.DefaultConfig(2), []*prog.Program{p, p}, nil)
		if err != nil {
			b.Fatal(err)
		}
		c.RunUntilCommits(0, 8000, 10_000_000)
		ipc = c.Stats().IPC()
	}
	b.ReportMetric(ipc, "IPC")
}

func BenchmarkFig6BitChange(b *testing.B) {
	o := benchOptions()
	var mean float64
	for i := 0; i < b.N; i++ {
		t, err := harness.Fig6(o)
		if err != nil {
			b.Fatal(err)
		}
		_ = t
		mean = 1
	}
	b.ReportMetric(mean, "ran")
}

func BenchmarkFig7FaultCharacterization(b *testing.B) {
	o := benchOptions()
	o.Benchmarks = []string{"bzip2", "gamess"}
	var maskedPct float64
	for i := 0; i < b.N; i++ {
		bm, _ := workload.Get("bzip2")
		camp, err := fault.Run(o.MakeCore(bm, harness.Baseline), o.Fault)
		if err != nil {
			b.Fatal(err)
		}
		m, _, _ := camp.Classification()
		maskedPct = 100 * float64(m) / float64(len(camp.Results))
	}
	b.ReportMetric(maskedPct, "masked%")
}

func BenchmarkFig8aCoverage(b *testing.B) {
	o := benchOptions()
	bm, _ := workload.Get("bzip2")
	var cov float64
	for i := 0; i < b.N; i++ {
		base, err := fault.Run(o.MakeCore(bm, harness.Baseline), o.Fault)
		if err != nil {
			b.Fatal(err)
		}
		det, err := fault.Run(o.MakeCore(bm, harness.FaultHound), o.Fault)
		if err != nil {
			b.Fatal(err)
		}
		cov = fault.PairCoverage(base, det).Coverage() * 100
	}
	b.ReportMetric(cov, "coverage%")
}

func BenchmarkFig8bFalsePositives(b *testing.B) {
	o := benchOptions()
	bm, _ := workload.Get("bzip2")
	var fp float64
	for i := 0; i < b.N; i++ {
		run, err := o.TimingRun(bm, harness.FaultHound)
		if err != nil {
			b.Fatal(err)
		}
		fp = 100 * run.FPRate()
	}
	b.ReportMetric(fp, "fp%")
}

func BenchmarkFig9Performance(b *testing.B) {
	o := benchOptions()
	bm, _ := workload.Get("bzip2")
	var deg float64
	for i := 0; i < b.N; i++ {
		base, err := o.TimingRun(bm, harness.Baseline)
		if err != nil {
			b.Fatal(err)
		}
		fh, err := o.TimingRun(bm, harness.FaultHound)
		if err != nil {
			b.Fatal(err)
		}
		deg = 100 * (float64(fh.Cycles)/float64(base.Cycles) - 1)
	}
	b.ReportMetric(deg, "slowdown%")
}

func BenchmarkFig10Energy(b *testing.B) {
	o := benchOptions()
	bm, _ := workload.Get("bzip2")
	model := energy.Default()
	var ov float64
	for i := 0; i < b.N; i++ {
		base, err := o.TimingRun(bm, harness.Baseline)
		if err != nil {
			b.Fatal(err)
		}
		baseE := model.Compute(base.Core.Stats(), base.Core.MemStats(), base.DetectorDelta).Total()
		fh, err := o.TimingRun(bm, harness.FaultHound)
		if err != nil {
			b.Fatal(err)
		}
		e := model.Compute(fh.Core.Stats(), fh.Core.MemStats(), fh.DetectorDelta).Total()
		ov = 100 * energy.Overhead(e, baseE)
	}
	b.ReportMetric(ov, "energy-overhead%")
}

func BenchmarkFig11Breakdown(b *testing.B) {
	o := benchOptions()
	bm, _ := workload.Get("bzip2")
	var noTrig float64
	for i := 0; i < b.N; i++ {
		base, err := fault.Run(o.MakeCore(bm, harness.Baseline), o.Fault)
		if err != nil {
			b.Fatal(err)
		}
		det, err := fault.Run(o.MakeCore(bm, harness.FaultHound), o.Fault)
		if err != nil {
			b.Fatal(err)
		}
		rep := fault.PairCoverage(base, det)
		noTrig = rep.BinFraction(fault.NoTrigger) * 100
	}
	b.ReportMetric(noTrig, "no-trigger%")
}

func BenchmarkFig12Ablation(b *testing.B) {
	o := benchOptions()
	bm, _ := workload.Get("bzip2")
	var gap float64
	for i := 0; i < b.N; i++ {
		r1, err := o.TimingRun(bm, harness.FHBENoClust)
		if err != nil {
			b.Fatal(err)
		}
		r2, err := o.TimingRun(bm, harness.FHBackend)
		if err != nil {
			b.Fatal(err)
		}
		gap = 100 * (r1.FPRate() - r2.FPRate())
	}
	b.ReportMetric(gap, "fp-reduction-pts")
}

// --- Ablation benches for the design choices DESIGN.md calls out ---

func BenchmarkAblationStateMachines(b *testing.B) {
	// Sticky vs biased filter policies: trigger counts on one stream.
	for _, pol := range []filter.Policy{filter.Sticky, filter.Biased2, filter.Biased3, filter.Standard4} {
		pol := pol
		b.Run(pol.String(), func(b *testing.B) {
			var triggers uint64
			for i := 0; i < b.N; i++ {
				cfg := tcam.DefaultConfig()
				cfg.Policy = pol
				cfg.SecondLevel = false
				cfg.SquashMachines = false
				tc := tcam.New(cfg)
				triggers = 0
				for v := uint64(0); v < 20000; v++ {
					r := tc.Lookup(0x10000000 + (v%512)*8)
					if r.Trigger {
						triggers++
					}
				}
			}
			b.ReportMetric(float64(triggers), "triggers")
		})
	}
}

func BenchmarkAblationTCAMSize(b *testing.B) {
	bm, _ := workload.Get("apache")
	p := bm.Build(prog.DefaultDataBase, 1)
	for _, entries := range []int{8, 16, 32, 64} {
		entries := entries
		b.Run(map[int]string{8: "8", 16: "16", 32: "32", 64: "64"}[entries], func(b *testing.B) {
			var fp float64
			for i := 0; i < b.N; i++ {
				cfg := core.BackendConfig()
				cfg.Addr.Entries = entries
				cfg.Value.Entries = entries
				c, err := pipeline.New(pipeline.DefaultConfig(1), []*prog.Program{p}, core.New(cfg))
				if err != nil {
					b.Fatal(err)
				}
				c.RunUntilCommits(0, 8000, 10_000_000)
				ds := c.Detector().Stats()
				fp = 100 * float64(ds.Replays+ds.Rollbacks+ds.Singletons) / float64(c.Committed(0))
			}
			b.ReportMetric(fp, "fp%")
		})
	}
}

func BenchmarkAblationLoosenThreshold(b *testing.B) {
	bm, _ := workload.Get("bzip2")
	p := bm.Build(prog.DefaultDataBase, 1)
	for _, thr := range []int{2, 4, 8} {
		thr := thr
		b.Run(map[int]string{2: "2", 4: "4", 8: "8"}[thr], func(b *testing.B) {
			var replaced float64
			for i := 0; i < b.N; i++ {
				cfg := core.BackendConfig()
				cfg.Addr.LoosenThreshold = thr
				cfg.Value.LoosenThreshold = thr
				det := core.New(cfg)
				c, err := pipeline.New(pipeline.DefaultConfig(1), []*prog.Program{p}, det)
				if err != nil {
					b.Fatal(err)
				}
				c.RunUntilCommits(0, 8000, 10_000_000)
				a, v := det.TCAMStats()
				replaced = float64(a.Replaced + v.Replaced)
			}
			b.ReportMetric(replaced, "replacements")
		})
	}
}

func BenchmarkAblationDelayBuffer(b *testing.B) {
	bm, _ := workload.Get("bzip2")
	p := bm.Build(prog.DefaultDataBase, 1)
	for _, depth := range []int{4, 7, 12} {
		depth := depth
		b.Run(map[int]string{4: "4", 7: "7", 12: "12"}[depth], func(b *testing.B) {
			var perReplay float64
			for i := 0; i < b.N; i++ {
				pcfg := pipeline.DefaultConfig(1)
				pcfg.DelayBuffer = depth
				c, err := pipeline.New(pcfg, []*prog.Program{p}, core.New(core.BackendConfig()))
				if err != nil {
					b.Fatal(err)
				}
				c.RunUntilCommits(0, 8000, 10_000_000)
				s := c.Stats()
				if s.ReplayTriggers > 0 {
					perReplay = float64(s.ReplayedUops) / float64(s.ReplayTriggers)
				}
			}
			b.ReportMetric(perReplay, "uops/replay")
		})
	}
}

func BenchmarkAblationSecondLevel(b *testing.B) {
	bm, _ := workload.Get("bzip2")
	p := bm.Build(prog.DefaultDataBase, 1)
	for _, states := range []int{4, 8, 16} {
		states := states
		b.Run(map[int]string{4: "4", 8: "8", 16: "16"}[states], func(b *testing.B) {
			var suppressed float64
			for i := 0; i < b.N; i++ {
				cfg := core.BackendConfig()
				cfg.Addr.SecondLevelStates = states
				cfg.Value.SecondLevelStates = states
				c, err := pipeline.New(pipeline.DefaultConfig(1), []*prog.Program{p}, core.New(cfg))
				if err != nil {
					b.Fatal(err)
				}
				c.RunUntilCommits(0, 8000, 10_000_000)
				ds := c.Detector().Stats()
				if ds.Triggers > 0 {
					suppressed = 100 * float64(ds.Suppressed) / float64(ds.Triggers)
				}
			}
			b.ReportMetric(suppressed, "suppressed%")
		})
	}
}

func BenchmarkAblationMixedTCAM(b *testing.B) {
	// Separate vs shared address/value filters (Section 3.1 argues for
	// separate). The mixed variant routes everything into one bank by
	// checking address and value streams against the same TCAM.
	bm, _ := workload.Get("bzip2")
	p := bm.Build(prog.DefaultDataBase, 1)
	run := func(b *testing.B, mixed bool) float64 {
		cfg := tcam.DefaultConfig()
		cfg.SquashMachines = false
		addr := tcam.New(cfg)
		value := addr
		if !mixed {
			value = tcam.New(cfg)
		}
		c, err := pipeline.New(pipeline.DefaultConfig(1), []*prog.Program{p}, nil)
		if err != nil {
			b.Fatal(err)
		}
		var triggers, checks uint64
		c.SetProbe(func(ev detect.Event) {
			checks++
			tc := addr
			if ev.Kind == detect.StoreValue {
				tc = value
			}
			if r := tc.Lookup(ev.Value); r.Trigger && !r.Suppressed {
				triggers++
			}
		})
		c.RunUntilCommits(0, 8000, 10_000_000)
		return 100 * float64(triggers) / float64(checks)
	}
	b.Run("separate", func(b *testing.B) {
		var r float64
		for i := 0; i < b.N; i++ {
			r = run(b, false)
		}
		b.ReportMetric(r, "trigger%")
	})
	b.Run("mixed", func(b *testing.B) {
		var r float64
		for i := 0; i < b.N; i++ {
			r = run(b, true)
		}
		b.ReportMetric(r, "trigger%")
	})
}
