#!/bin/sh
# Daemon round trip: build fhserved + fhcampaign, start the daemon on
# a scratch data root, submit a small campaign over HTTP twice (the
# second must be a cache hit), verify the bundle artifacts, and drain
# with SIGTERM. Exits non-zero on any failure.
set -eu

ADDR="${SMOKE_ADDR:-127.0.0.1:18419}"
TMP="$(mktemp -d)"
trap 'kill "$SERVED_PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT INT TERM

echo "== building =="
go build -o "$TMP" ./cmd/fhserved ./cmd/fhcampaign

echo "== starting fhserved on $ADDR =="
"$TMP/fhserved" -addr "$ADDR" -data "$TMP/data" -quick -v >"$TMP/served.log" 2>&1 &
SERVED_PID=$!

for i in $(seq 1 50); do
    if curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; then break; fi
    [ "$i" = 50 ] && { echo "daemon never became healthy"; cat "$TMP/served.log"; exit 1; }
    sleep 0.1
done

echo "== submitting campaign =="
"$TMP/fhcampaign" -addr "$ADDR" -quick -bench bzip2 -schemes faulthound -injections 10

echo "== resubmitting (must be a cache hit) =="
"$TMP/fhcampaign" -addr "$ADDR" -quick -bench bzip2 -schemes faulthound -injections 10 \
    2>&1 | grep -q "attaching" || { echo "second submission was not a cache hit"; exit 1; }

echo "== verifying bundle over HTTP =="
ID="$(curl -sf "http://$ADDR/v1/campaigns" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p' | head -1)"
[ -n "$ID" ] || { echo "no job listed"; exit 1; }
for f in manifest.json results.csv summary.json report.md; do
    curl -sf "http://$ADDR/v1/campaigns/$ID/bundle/$f" >/dev/null \
        || { echo "bundle file $f not served"; exit 1; }
done
echo "== scraping /metrics =="
curl -sf "http://$ADDR/metrics" >"$TMP/metrics.txt"
# Counters, gauges, and the instrumentation layer's histograms
# (docs/OBSERVABILITY.md) must all render after one round trip.
for series in \
    "fhserved_jobs_done_total 1" \
    "fhserved_cache_hits_total 1" \
    "fhserved_injection_outcomes_total" \
    "fhserved_injection_duration_seconds_bucket" \
    "fhserved_detection_latency_cycles_bucket" \
    "fhserved_job_queue_wait_seconds_bucket" \
    "fhserved_prepared_cache_misses_total" \
    "fhserved_injections_inflight" \
; do
    grep -q "$series" "$TMP/metrics.txt" \
        || { echo "metrics missing series: $series"; cat "$TMP/metrics.txt"; exit 1; }
done

echo "== draining =="
kill -TERM "$SERVED_PID"
for i in $(seq 1 100); do
    kill -0 "$SERVED_PID" 2>/dev/null || break
    [ "$i" = 100 ] && { echo "daemon did not drain"; exit 1; }
    sleep 0.1
done

echo "smoke-server: OK"
