#!/bin/sh
# Pareto-search round trip (docs/OPTIMIZE.md): run a small seeded
# fhcampaign -optimize twice at different worker counts and require
# byte-identical artifacts, validate them against the pareto/v1
# contract, then drive the daemon's POST /v1/optimize and require the
# repeat to come from the request-hash cache. Exits non-zero on any
# failure. (-f: $SEARCH is word-split on purpose and carries a literal
# 'gen?seg=16k' that must not glob.)
set -euf

ADDR="${SMOKE_ADDR:-127.0.0.1:18421}"
TMP="$(mktemp -d)"
trap 'kill "$SERVED_PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT INT TERM
SERVED_PID=""

echo "== building =="
go build -o "$TMP" ./cmd/fhcampaign ./cmd/fhserved ./cmd/fhreport

SEARCH="-optimize -quick -workloads gen?seg=16k -schemes faulthound?tcam=8 \
    -injections 48 -budget 3 -seed 7 -opt-params tcam -runid smoke"

echo "== local search, -workers 4 =="
"$TMP/fhcampaign" $SEARCH -workers 4 -out "$TMP/opt-w4"

echo "== local search, -workers 1 (must be byte-identical) =="
"$TMP/fhcampaign" $SEARCH -workers 1 -out "$TMP/opt-w1"
for f in pareto.csv pareto.json pareto.md; do
    cmp "$TMP/opt-w4/$f" "$TMP/opt-w1/$f" \
        || { echo "$f differs between -workers 4 and 1"; exit 1; }
done

echo "== front is non-trivial =="
FRONT="$(grep -c ',true,' "$TMP/opt-w4/pareto.csv" || true)"
[ "$FRONT" -ge 1 ] || { echo "empty Pareto front"; cat "$TMP/opt-w4/pareto.csv"; exit 1; }

echo "== contract validation =="
"$TMP/fhreport" validate "$TMP/opt-w4" "$TMP/opt-w4/pareto.csv"

echo "== starting fhserved on $ADDR =="
"$TMP/fhserved" -addr "$ADDR" -data "$TMP/data" -quick -v >"$TMP/served.log" 2>&1 &
SERVED_PID=$!
for i in $(seq 1 50); do
    if curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; then break; fi
    [ "$i" = 50 ] && { echo "daemon never became healthy"; cat "$TMP/served.log"; exit 1; }
    sleep 0.1
done

REQ='{"benchmarks":["gen?seg=16k"],"schemes":["faulthound?tcam=8"],"budget":3,"seed":7,"params":["tcam"],"injections":48}'
echo "== POST /v1/optimize =="
curl -sf -D "$TMP/h1" -d "$REQ" "http://$ADDR/v1/optimize" >"$TMP/opt-daemon.json"
grep -qi 'X-Faulthound-Optimize-Cache: miss' "$TMP/h1" \
    || { echo "first request was not a cache miss"; cat "$TMP/h1"; exit 1; }
grep -q '"schema_version": "faulthound.pareto/v1"' "$TMP/opt-daemon.json" \
    || { echo "daemon response is not a pareto report"; head "$TMP/opt-daemon.json"; exit 1; }

echo "== repeat (must be a cache hit) =="
curl -sf -D "$TMP/h2" -d "$REQ" "http://$ADDR/v1/optimize" >"$TMP/opt-daemon2.json"
grep -qi 'X-Faulthound-Optimize-Cache: hit' "$TMP/h2" \
    || { echo "repeat was not a cache hit"; cat "$TMP/h2"; exit 1; }
cmp "$TMP/opt-daemon.json" "$TMP/opt-daemon2.json" \
    || { echo "cached repeat returned different bytes"; exit 1; }

echo "== draining =="
kill -TERM "$SERVED_PID"
for i in $(seq 1 100); do
    kill -0 "$SERVED_PID" 2>/dev/null || break
    sleep 0.1
done
SERVED_PID=""

echo "smoke_optimize: ok"
