#!/bin/sh
# Generated-workload smoke (docs/GENERATED-WORKLOADS.md): record a gen
# stream, replay it, and require the replayed committed stream to hash
# identically to the recording; then run a tiny generated-workload
# sweep campaign twice (-workers 1 and 4) and require byte-identical
# results.csv — the spec-string-reproducibility acceptance criterion.
# Exits non-zero on any failure.
set -eu

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT INT TERM

SPEC='gen?stride=64,chase=2,vlocal=0.7,seg=32k,plant=2'

echo "== building =="
go build -o "$TMP" ./cmd/fhsim ./cmd/fhcampaign

echo "== recording $SPEC =="
"$TMP/fhsim" -workload "$SPEC" -record "$TMP/s1.fhws" -record-ops 800 | tee "$TMP/rec1.txt"
H1="$(sed -n 's/^hash  *//p' "$TMP/rec1.txt")"
[ -n "$H1" ] || { echo "no stream hash printed"; exit 1; }

echo "== replaying and re-recording =="
"$TMP/fhsim" -replay "$TMP/s1.fhws" -record "$TMP/s2.fhws" -record-ops 800 | tee "$TMP/rec2.txt"
H2="$(sed -n 's/^hash  *//p' "$TMP/rec2.txt")"
[ "$H1" = "$H2" ] || { echo "record->replay hash mismatch: $H1 vs $H2"; exit 1; }
echo "round trip ok: $H1"

echo "== generated-workload sweep campaign (workers=1) =="
"$TMP/fhcampaign" -quick -workloads "gen?stride=8|64,seg=16k" -schemes faulthound \
    -injections 12 -workers 1 -out "$TMP/c1" >/dev/null

echo "== generated-workload sweep campaign (workers=4) =="
"$TMP/fhcampaign" -quick -workloads "gen?stride=8|64,seg=16k" -schemes faulthound \
    -injections 12 -workers 4 -out "$TMP/c2" >/dev/null

cmp "$TMP/c1/results.csv" "$TMP/c2/results.csv" \
    || { echo "worker count changed generated-workload results.csv"; exit 1; }
grep -q 'gen?seg=16k,stride=64' "$TMP/c1/results.csv" \
    || { echo "canonical sweep cell missing from results.csv"; exit 1; }
grep -q 'gen?seg=16k' "$TMP/c1/results.csv" \
    || { echo "canonical base cell missing from results.csv"; exit 1; }

echo "smoke_wgen: OK"
