#!/usr/bin/env sh
# bench.sh — run the simulator's guard benchmarks and distill them into
# BENCH_simcore.json (docs/PERFORMANCE.md).
#
# Emits two artifacts under $OUT (default results/bench):
#   bench.txt           raw `go test -bench` output, benchstat-comparable:
#                         ./scripts/bench.sh && mv results/bench/bench.txt old.txt
#                         ... change code ...
#                         ./scripts/bench.sh
#                         benchstat old.txt results/bench/bench.txt
#   BENCH_simcore.json  headline numbers: simulated cycles/sec, golden-core
#                         clones/sec (deep and arena), allocations per
#                         injection, and sustained injections/sec.
#
# Environment:
#   OUT              output directory            (default results/bench)
#   BENCHTIME        go test -benchtime argument (default 1s)
#   COUNT            go test -count argument     (default 1; use >=5 for benchstat)
#   BENCH_TOLERANCE  when set, gate the fresh numbers against the
#                    committed BENCH_simcore.json via `fhreport bench`
#                    and exit non-zero on a regression beyond this
#                    relative tolerance (e.g. 0.10)
#   BENCH_REF        reference file for the gate (default the committed
#                    results/bench/BENCH_simcore.json)
set -eu

OUT=${OUT:-results/bench}
BENCHTIME=${BENCHTIME:-1s}
COUNT=${COUNT:-1}
GO=${GO:-go}

mkdir -p "$OUT"
raw="$OUT/bench.txt"

{
  $GO test -run xxx -benchmem -benchtime "$BENCHTIME" -count "$COUNT" \
    -bench 'BenchmarkSimCyclesPerSecond$|BenchmarkClone$|BenchmarkSnapshot$|BenchmarkArchHash$' \
    ./internal/pipeline/
  $GO test -run xxx -benchmem -benchtime "$BENCHTIME" -count "$COUNT" \
    -bench 'BenchmarkRunOne$|BenchmarkRunOneDeepClone$|BenchmarkPreparedParallel$' \
    ./internal/fault/
} | tee "$raw"

# Fold the raw output into the headline JSON. Multiple -count runs of
# one benchmark are averaged.
awk '
  /^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    for (i = 2; i <= NF - 1; i++) {
      v = $i; u = $(i + 1)
      if (u == "ns/op")     { ns[name] += v;  n[name]++ }
      if (u == "allocs/op") { al[name] += v;  na[name]++ }
      if (u == "B/op")      { by[name] += v;  nb[name]++ }
      if (u == "inj/s")     { inj[name] += v; ni[name]++ }
      if (u == "early-exit-frac") { ee[name] += v; ne[name]++ }
      if (u == "fork-saved-frac") { fs[name] += v; nf[name]++ }
    }
  }
  function avg(sum, cnt, nm) { return cnt[nm] ? sum[nm] / cnt[nm] : 0 }
  END {
    sim   = avg(ns, n, "BenchmarkSimCyclesPerSecond")
    snap  = avg(ns, n, "BenchmarkSnapshot")
    clone = avg(ns, n, "BenchmarkClone")
    printf "{\n"
    printf "  \"sim_cycles_per_sec\": %.0f,\n",      sim  ? 1e9 / sim  : 0
    printf "  \"clones_per_sec_arena\": %.0f,\n",    snap ? 1e9 / snap : 0
    printf "  \"clones_per_sec_deep\": %.0f,\n",     clone ? 1e9 / clone : 0
    printf "  \"snapshot_allocs_per_op\": %.1f,\n",  avg(al, na, "BenchmarkSnapshot")
    printf "  \"allocs_per_injection\": %.1f,\n",    avg(al, na, "BenchmarkRunOne")
    printf "  \"allocs_per_injection_deep\": %.1f,\n", avg(al, na, "BenchmarkRunOneDeepClone")
    printf "  \"bytes_per_injection\": %.0f,\n",     avg(by, nb, "BenchmarkRunOne")
    printf "  \"injections_per_sec\": %.1f,\n",      avg(inj, ni, "BenchmarkPreparedParallel")
    printf "  \"early_exit_frac\": %.3f,\n",         avg(ee, ne, "BenchmarkPreparedParallel")
    printf "  \"checkpoint_fork_cycles_saved_frac\": %.3f\n", avg(fs, nf, "BenchmarkPreparedParallel")
    printf "}\n"
  }
' "$raw" > "$OUT/BENCH_simcore.json"

echo "wrote $raw"
echo "wrote $OUT/BENCH_simcore.json:"
cat "$OUT/BENCH_simcore.json"

# Optional regression gate: with BENCH_TOLERANCE set (e.g. 0.10), the
# fresh numbers are compared against the committed guard file and the
# script exits non-zero when a gated throughput metric
# (injections_per_sec, sim_cycles_per_sec) regresses beyond the
# tolerance (fhreport bench; docs/CONTRACTS.md). BENCH_REF overrides
# the reference file.
if [ -n "${BENCH_TOLERANCE:-}" ]; then
  ref=${BENCH_REF:-results/bench/BENCH_simcore.json}
  if [ "$ref" -ef "$OUT/BENCH_simcore.json" ]; then
    # The run just overwrote the committed guard file in place; gate
    # against the committed version instead.
    committed=$(mktemp)
    trap 'rm -f "$committed"' EXIT
    git show HEAD:results/bench/BENCH_simcore.json > "$committed"
    ref=$committed
  fi
  echo "gating against $ref (tolerance $BENCH_TOLERANCE)"
  $GO run ./cmd/fhreport bench -tolerance "$BENCH_TOLERANCE" "$OUT/BENCH_simcore.json" "$ref"
fi
