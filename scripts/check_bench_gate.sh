#!/usr/bin/env sh
# check_bench_gate.sh — sanity-check the bench release gate itself
# (docs/PERFORMANCE.md, docs/CONTRACTS.md).
#
# Two checks against the committed BENCH_simcore.json:
#   1. Positive control: the file compared against itself passes.
#   2. Negative control: degrading any single gated metric by 50% in a
#      copy must make `fhreport bench` exit non-zero. This catches the
#      gate silently going soft — e.g. a gated metric dropped from the
#      reference file, renamed in the bench harness, or removed from
#      report.BenchGated without anyone noticing.
#
# Usage: scripts/check_bench_gate.sh [reference.json]
set -eu

GO=${GO:-go}
ref=${1:-results/bench/BENCH_simcore.json}
tol=0.10

echo "bench gate positive control: $ref vs itself"
$GO run ./cmd/fhreport bench -tolerance "$tol" "$ref" "$ref"

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

# Keep this list in sync with BenchGated in internal/report/diff.go —
# the loop below fails loudly if a listed metric is missing from the
# reference file, so drift shows up here rather than as a gate that
# quietly stopped gating.
for metric in injections_per_sec sim_cycles_per_sec early_exit_frac checkpoint_fork_cycles_saved_frac; do
  if ! grep -q "\"$metric\"" "$ref"; then
    echo "FAIL: gated metric $metric missing from $ref" >&2
    exit 1
  fi
  awk -v m="\"$metric\"" '{
    if (index($0, m)) {
      split($0, a, ":")
      v = a[2]
      gsub(/[ ,]/, "", v)
      comma = ($0 ~ /,$/) ? "," : ""
      printf "  %s: %g%s\n", m, v * 0.5, comma
    } else {
      print
    }
  }' "$ref" > "$tmp"
  if $GO run ./cmd/fhreport bench -tolerance "$tol" "$tmp" "$ref" >/dev/null 2>&1; then
    echo "FAIL: degraded $metric passed the bench gate" >&2
    exit 1
  fi
  echo "bench gate negative control: degraded $metric correctly rejected"
done

echo "bench gate controls passed"
