#!/bin/sh
# Cluster fabric round trip (docs/CLUSTER.md): run a campaign locally
# for the golden results.csv, then start a coordinator with two joined
# workers, submit the same spec sharded, SIGKILL one worker mid-run,
# and verify the re-leased merge still produced a byte-identical
# results.csv plus the expected cluster metrics and /healthz roles.
# Exits non-zero on any failure.
set -eu

CADDR="${SMOKE_CLUSTER_ADDR:-127.0.0.1:18428}"
W1ADDR="${SMOKE_CLUSTER_W1:-127.0.0.1:18429}"
W2ADDR="${SMOKE_CLUSTER_W2:-127.0.0.1:18430}"
TMP="$(mktemp -d)"
trap 'kill "$COORD_PID" "$W1_PID" "$W2_PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT INT TERM

# Same spec both times: enough injections that the sharded run stays
# in flight long enough to lose a worker while it holds a lease.
SPEC="-quick -bench bzip2,mcf -schemes faulthound -injections 500 -seed 42"

echo "== building =="
go build -o "$TMP" ./cmd/fhserved ./cmd/fhcampaign

echo "== golden single-node run =="
"$TMP/fhcampaign" $SPEC -runid smoke-cluster -out "$TMP/golden" >/dev/null 2>&1

echo "== starting coordinator on $CADDR, workers on $W1ADDR $W2ADDR =="
"$TMP/fhserved" -coordinator -addr "$CADDR" -data "$TMP/coord" -quick -range-size 16 -v \
    >"$TMP/coord.log" 2>&1 &
COORD_PID=$!
"$TMP/fhserved" -join "$CADDR" -addr "$W1ADDR" -data "$TMP/w1" -quick -slots 1 \
    >"$TMP/w1.log" 2>&1 &
W1_PID=$!
"$TMP/fhserved" -join "$CADDR" -addr "$W2ADDR" -data "$TMP/w2" -quick -slots 1 \
    >"$TMP/w2.log" 2>&1 &
W2_PID=$!

# The coordinator's /healthz flips ready once a worker joins; wait for
# both so the kill below cannot starve the campaign.
for i in $(seq 1 100); do
    alive="$(curl -sf "http://$CADDR/v1/cluster/workers" 2>/dev/null | grep -o '"alive": *true' | wc -l)"
    [ "$alive" = 2 ] && break
    [ "$i" = 100 ] && { echo "workers never joined"; cat "$TMP/coord.log"; exit 1; }
    sleep 0.1
done
curl -sf "http://$CADDR/healthz" | grep -q '"role": *"coordinator"' \
    || { echo "coordinator healthz lacks its role"; exit 1; }
curl -sf "http://$W2ADDR/healthz" | grep -q '"role": *"worker"' \
    || { echo "worker healthz lacks its role"; exit 1; }

echo "== submitting sharded campaign =="
"$TMP/fhcampaign" -addr "$CADDR" $SPEC >"$TMP/submit.log" 2>&1 &
SUBMIT_PID=$!

echo "== killing worker 1 mid-run =="
killed=""
for i in $(seq 1 2000); do
    status="$(curl -sf "http://$CADDR/v1/campaigns" 2>/dev/null || true)"
    case "$status" in
    *'"state": "done"'*) break ;;
    esac
    done_n="$(printf '%s' "$status" | sed -n 's/.*"done": *\([0-9]*\).*/\1/p' | head -1)"
    if [ -n "$done_n" ] && [ "$done_n" -gt 0 ]; then
        kill -9 "$W1_PID"
        killed=yes
        break
    fi
done
[ -n "$killed" ] || { echo "campaign finished before the worker kill; raise -injections"; exit 1; }

wait "$SUBMIT_PID" || { echo "sharded submission failed"; cat "$TMP/submit.log"; exit 1; }

echo "== verifying byte-identical merge =="
ID="$(curl -sf "http://$CADDR/v1/campaigns" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p' | head -1)"
[ -n "$ID" ] || { echo "no job listed"; exit 1; }
curl -sf "http://$CADDR/v1/campaigns/$ID/bundle/results.csv" >"$TMP/sharded.csv"
cmp "$TMP/golden/results.csv" "$TMP/sharded.csv" \
    || { echo "sharded results.csv differs from the single-node run"; exit 1; }

echo "== scraping cluster metrics =="
curl -sf "http://$CADDR/metrics" >"$TMP/metrics.txt"
for series in \
    "fh_cluster_workers_alive" \
    "fh_cluster_leases_granted_total" \
    "fh_cluster_records_merged_total" \
    "fh_cluster_merge_seconds" \
    "fh_admission_rejects_total" \
; do
    grep -q "$series" "$TMP/metrics.txt" \
        || { echo "metrics missing series: $series"; cat "$TMP/metrics.txt"; exit 1; }
done
expired="$(sed -n 's/^fh_cluster_leases_expired_total \([0-9]*\).*/\1/p' "$TMP/metrics.txt")"
[ -n "$expired" ] && [ "$expired" -ge 1 ] \
    || { echo "no lease expired after the worker kill (got '$expired')"; cat "$TMP/coord.log"; exit 1; }

echo "== draining =="
kill -TERM "$COORD_PID" "$W2_PID"
for i in $(seq 1 100); do
    if ! kill -0 "$COORD_PID" 2>/dev/null && ! kill -0 "$W2_PID" 2>/dev/null; then break; fi
    [ "$i" = 100 ] && { echo "daemons did not drain"; exit 1; }
    sleep 0.1
done

echo "smoke-cluster: OK"
