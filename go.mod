module faulthound

go 1.22
