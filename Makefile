# FaultHound reproduction — convenience targets. Everything is
# stdlib-only Go; no external dependencies.

GO ?= go

.PHONY: all build test vet lint race bench bench-json report gates campaign serve smoke-server smoke-cluster smoke-wgen smoke-optimize trace-demo experiments extensions quick clean

all: lint test build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...
	gofmt -l .

# Static analysis: vet and gofmt always; staticcheck when installed
# (CI installs it — see .github/workflows/ci.yml — so the full set
# gates every merge even if a local checkout lacks the binary).
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed; skipped (CI runs it)"; \
	fi

race:
	$(GO) test -race ./internal/workload/ ./internal/wgen/ ./internal/system/ \
		./internal/pipeline/ ./internal/mem/ ./internal/campaign/ ./internal/fault/ \
		./internal/obs/... ./internal/server/... ./internal/cluster/ \
		./internal/contract/ ./internal/report/ ./internal/search/

# Regenerate the reference bundle's detector-quality report sidecar
# (docs/CONTRACTS.md). The bundle's own artifacts are never touched;
# `git diff` afterwards must be clean or the report has drifted.
report:
	$(GO) run ./cmd/fhreport bundle results/campaigns/reference-1k

# The CI release gates, runnable locally: contract validation over
# every committed artifact, the quality-report drift gate, the
# self-diff sanity check, and the bench-gate positive/negative
# controls (docs/CONTRACTS.md).
gates:
	$(GO) run ./cmd/fhreport validate results/campaigns/reference-1k \
		results/bench/BENCH_simcore.json \
		internal/server/testdata/spechash_golden.json \
		internal/server/testdata/wspec_golden.json \
		internal/search/testdata/golden \
		internal/search/testdata/golden/pareto.csv
	$(GO) run ./cmd/fhreport bundle -out /tmp/fh-gate-regen results/campaigns/reference-1k
	cmp /tmp/fh-gate-regen/quality.json results/campaigns/reference-1k/report/quality.json
	cmp /tmp/fh-gate-regen/quality.md results/campaigns/reference-1k/report/quality.md
	$(GO) run ./cmd/fhreport diff results/campaigns/reference-1k results/campaigns/reference-1k
	./scripts/check_bench_gate.sh

# Parallel, resumable fault-injection campaign with an artifact bundle.
campaign:
	$(GO) run ./cmd/fhcampaign -bench all -schemes faulthound -injections 600

# Campaign-serving daemon (docs/SERVER.md). Submit with
# `fhcampaign -addr localhost:8418` or plain curl.
serve:
	$(GO) run ./cmd/fhserved -addr :8418 -data results/server -v

# Scripted daemon round trip: start fhserved on a scratch root, submit
# a small campaign over HTTP, verify the bundle, drain cleanly.
smoke-server:
	./scripts/smoke_server.sh

# Cluster fabric round trip (docs/CLUSTER.md): coordinator + two
# workers, a sharded campaign, one worker SIGKILLed mid-run, and a
# byte-identical-merge check against a single-node golden.
smoke-cluster:
	./scripts/smoke_cluster.sh

# Generated-workload round trip (docs/GENERATED-WORKLOADS.md): record
# a gen stream, replay it, require identical stream hashes, and check
# a sweep campaign is bit-identical across -workers settings.
smoke-wgen:
	./scripts/smoke_wgen.sh

# Pareto-search round trip (docs/OPTIMIZE.md): a seeded local
# fhcampaign -optimize byte-identical across -workers settings,
# contract-validated artifacts, and a daemon POST /v1/optimize whose
# repeat hits the request-hash cache.
smoke-optimize:
	./scripts/smoke_optimize.sh

# Perfetto trace of a short simulation — load results/trace-demo.json
# in ui.perfetto.dev (docs/OBSERVABILITY.md).
trace-demo:
	mkdir -p results
	$(GO) run ./cmd/fhsim -bench bzip2 -scheme faulthound -trace results/trace-demo.json -trace-cycles 3000

# One iteration of every paper-figure bench plus the ablations.
bench:
	$(GO) test -bench=. -benchmem -benchtime 1x -run xxx .

# Guard benchmarks for the simulation/injection hot path, distilled
# into results/bench/BENCH_simcore.json (docs/PERFORMANCE.md).
bench-json:
	./scripts/bench.sh

# Full-scale regeneration of every table and figure (tens of minutes).
experiments:
	$(GO) run ./cmd/faulthound -experiment all -commits 60000 -injections 600 -csv results -json results | tee results_all.txt

extensions:
	$(GO) run ./cmd/faulthound -experiment extensions -commits 30000 -injections 400 | tee results_ext.txt
	$(GO) run ./cmd/faulthound -experiment mp-scaling -commits 30000 | tee results_mp.txt

# Smoke-scale versions of the experiments (a couple of minutes).
quick:
	$(GO) run ./cmd/faulthound -experiment all -quick

clean:
	rm -rf results results_all.txt results_ext.txt results_mp.txt test_output.txt bench_output.txt
