package prog

import (
	"strings"
	"testing"

	"faulthound/internal/isa"
)

func TestBuilderLabelsAndBranches(t *testing.T) {
	b := NewBuilder("t", 64)
	b.MovI(1, 0)
	b.MovI(2, 10)
	b.Label("loop")
	b.OpI(isa.ADDI, 1, 1, 1)
	b.Br(isa.BLT, 1, 2, "loop")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// The branch at PC 3 should target PC 2.
	if p.Code[3].Imm != 2 {
		t.Fatalf("branch fixup: imm = %d, want 2", p.Code[3].Imm)
	}
}

func TestBuilderForwardReference(t *testing.T) {
	b := NewBuilder("t", 64)
	b.Jmp("end")
	b.Nop()
	b.Label("end")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Code[0].Imm != 2 {
		t.Fatalf("forward fixup: imm = %d, want 2", p.Code[0].Imm)
	}
}

func TestBuilderUndefinedLabel(t *testing.T) {
	b := NewBuilder("t", 64)
	b.Jmp("nowhere")
	b.Halt()
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "undefined label") {
		t.Fatalf("expected undefined-label error, got %v", err)
	}
}

func TestBuilderDuplicateLabel(t *testing.T) {
	b := NewBuilder("t", 64)
	b.Label("a")
	b.Nop()
	b.Label("a")
	b.Halt()
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "duplicate label") {
		t.Fatalf("expected duplicate-label error, got %v", err)
	}
}

func TestBuilderBadDataOffset(t *testing.T) {
	b := NewBuilder("t", 16)
	b.Word(4, 1) // unaligned
	b.Halt()
	if _, err := b.Build(); err == nil {
		t.Fatal("expected error for unaligned data offset")
	}
	b2 := NewBuilder("t", 16)
	b2.Word(16, 1) // out of segment
	b2.Halt()
	if _, err := b2.Build(); err == nil {
		t.Fatal("expected error for out-of-segment data offset")
	}
}

func TestValidateCatchesBadBranchTarget(t *testing.T) {
	p := &Program{
		Name:     "bad",
		Code:     []isa.Inst{{Op: isa.JMP, Imm: 99}},
		DataSize: 0,
	}
	if err := p.Validate(); err == nil {
		t.Fatal("expected out-of-range branch target error")
	}
}

func TestValidateEmptyProgram(t *testing.T) {
	p := &Program{Name: "empty"}
	if err := p.Validate(); err == nil {
		t.Fatal("expected error for empty program")
	}
}

func TestMovU64(t *testing.T) {
	for _, v := range []uint64{0, 1, 0x7fffffff, 0x80000000, 0xffffffff,
		0x123456789abcdef0, ^uint64(0), 0x10000000} {
		b := NewBuilder("t", 64)
		b.MovU64(5, v)
		b.Halt()
		p := b.MustBuild()
		it := NewInterp(p)
		it.Run(100)
		if it.Regs[5] != v {
			t.Errorf("MovU64(%#x): reg = %#x", v, it.Regs[5])
		}
	}
}

func TestInterpArithLoop(t *testing.T) {
	// sum = 0; for i = 1..10 { sum += i }
	b := NewBuilder("sum", 64)
	b.MovI(1, 0)  // sum
	b.MovI(2, 1)  // i
	b.MovI(3, 11) // bound
	b.Label("loop")
	b.Op3(isa.ADD, 1, 1, 2)
	b.OpI(isa.ADDI, 2, 2, 1)
	b.Br(isa.BLT, 2, 3, "loop")
	b.Halt()
	it := NewInterp(b.MustBuild())
	it.Run(1000)
	if !it.Halted {
		t.Fatal("should have halted")
	}
	if it.Regs[1] != 55 {
		t.Fatalf("sum = %d, want 55", it.Regs[1])
	}
}

func TestInterpMemory(t *testing.T) {
	b := NewBuilder("mem", 128)
	b.Word(0, 41)
	b.MovU64(2, b.DataBase())
	b.Ld(1, 2, 0)
	b.OpI(isa.ADDI, 1, 1, 1)
	b.St(2, 8, 1)
	b.Ld(3, 2, 8)
	b.Halt()
	it := NewInterp(b.MustBuild())
	it.Run(100)
	if it.Regs[3] != 42 {
		t.Fatalf("r3 = %d, want 42", it.Regs[3])
	}
	if it.Mem[it.Prog.DataBase+8] != 42 {
		t.Fatal("store not visible in memory")
	}
}

func TestInterpTranslationException(t *testing.T) {
	b := NewBuilder("fault", 64)
	b.MovI(2, 0) // address 0 is unmapped
	b.Ld(1, 2, 0)
	b.Halt()
	it := NewInterp(b.MustBuild())
	it.Run(100)
	if it.Faulted == nil {
		t.Fatal("expected translation exception")
	}
	if it.Halted {
		t.Fatal("should not have reached HALT")
	}
}

func TestInterpCallRet(t *testing.T) {
	b := NewBuilder("call", 64)
	b.MovI(1, 5)
	b.Call("double")
	b.Halt()
	b.Label("double")
	b.Op3(isa.ADD, 1, 1, 1)
	b.Ret()
	it := NewInterp(b.MustBuild())
	it.Run(100)
	if !it.Halted || it.Regs[1] != 10 {
		t.Fatalf("halted=%v r1=%d, want halted with 10", it.Halted, it.Regs[1])
	}
}

func TestInterpRZeroDiscardsWrites(t *testing.T) {
	b := NewBuilder("zero", 64)
	b.MovI(isa.RZero, 99)
	b.OpI(isa.ADDI, 1, isa.RZero, 7)
	b.Halt()
	it := NewInterp(b.MustBuild())
	it.Run(100)
	if it.Regs[isa.RZero] != 0 {
		t.Fatal("r0 must stay zero")
	}
	if it.Regs[1] != 7 {
		t.Fatalf("r1 = %d, want 7", it.Regs[1])
	}
}

func TestInterpStepBudget(t *testing.T) {
	b := NewBuilder("inf", 64)
	b.Label("spin")
	b.Jmp("spin")
	b.Halt()
	it := NewInterp(b.MustBuild())
	n := it.Run(500)
	if n != 500 {
		t.Fatalf("ran %d steps, want 500", n)
	}
	if it.Halted || it.Faulted != nil {
		t.Fatal("spin loop should neither halt nor fault")
	}
}
