package prog

import (
	"fmt"
	"strconv"
	"strings"

	"faulthound/internal/isa"
)

// Parse assembles a textual program. The syntax mirrors the
// disassembly format of isa.Inst.String:
//
//	; comment (also //)
//	.data <dataSizeBytes>        directive, once, before code
//	.word <offset> <value>       initialize a data word (byte offset)
//	.base <address>              optional data-segment base
//	label:
//	add r1, r2, r3               register-register ops
//	addi r1, r2, 42              register-immediate ops
//	movi r5, -7
//	ld r4, [r2+16]               loads/stores with byte offsets
//	st [r2-8], r6
//	beq r1, r2, label            branches to labels
//	jmp label
//	jal label                    call (links r31)
//	ret                          jalr r0, r31
//	halt
//
// Registers are r0..r31 and f0..f15. Numbers may be decimal or 0x-hex.
func Parse(name, src string) (*Program, error) {
	var (
		b        *Builder
		dataSize uint64 = 4096
		base     uint64 = DefaultDataBase
		pending  []func(*Builder) error
	)
	flush := func() *Builder {
		if b == nil {
			b = NewBuilderAt(name, base, dataSize)
			for _, f := range pending {
				if err := f(b); err != nil {
					b.errs = append(b.errs, err)
				}
			}
			pending = nil
		}
		return b
	}

	for ln, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexAny(line, ";"); i >= 0 {
			line = line[:i]
		}
		if i := strings.Index(line, "//"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		lineNo := ln + 1

		switch {
		case strings.HasPrefix(line, ".data"):
			v, err := parseNum(strings.TrimSpace(strings.TrimPrefix(line, ".data")))
			if err != nil {
				return nil, fmt.Errorf("%s:%d: bad .data size: %v", name, lineNo, err)
			}
			if b != nil {
				return nil, fmt.Errorf("%s:%d: .data must precede code", name, lineNo)
			}
			dataSize = uint64(v)
			continue
		case strings.HasPrefix(line, ".base"):
			v, err := parseNum(strings.TrimSpace(strings.TrimPrefix(line, ".base")))
			if err != nil {
				return nil, fmt.Errorf("%s:%d: bad .base: %v", name, lineNo, err)
			}
			if b != nil {
				return nil, fmt.Errorf("%s:%d: .base must precede code", name, lineNo)
			}
			base = uint64(v)
			continue
		case strings.HasPrefix(line, ".word"):
			fields := strings.Fields(strings.TrimPrefix(line, ".word"))
			if len(fields) != 2 {
				return nil, fmt.Errorf("%s:%d: .word wants <offset> <value>", name, lineNo)
			}
			off, err1 := parseNum(fields[0])
			val, err2 := parseNum(fields[1])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("%s:%d: bad .word operands", name, lineNo)
			}
			pending = append(pending, func(b *Builder) error {
				b.Word(uint64(off), uint64(val))
				return nil
			})
			continue
		}

		bb := flush()
		if strings.HasSuffix(line, ":") {
			bb.Label(strings.TrimSuffix(line, ":"))
			continue
		}
		if err := parseInst(bb, line); err != nil {
			return nil, fmt.Errorf("%s:%d: %v", name, lineNo, err)
		}
	}
	if b == nil {
		return nil, fmt.Errorf("%s: no code", name)
	}
	return b.Build()
}

// MustParse is Parse for known-good sources; it panics on error.
func MustParse(name, src string) *Program {
	p, err := Parse(name, src)
	if err != nil {
		panic(err)
	}
	return p
}

// opNames maps mnemonics to opcodes and their operand shapes.
var asmOps = map[string]isa.Op{
	"nop": isa.NOP, "add": isa.ADD, "sub": isa.SUB, "and": isa.AND,
	"or": isa.OR, "xor": isa.XOR, "sll": isa.SLL, "srl": isa.SRL,
	"sra": isa.SRA, "cmplt": isa.CMPLT, "cmpltu": isa.CMPLTU,
	"cmpeq": isa.CMPEQ, "addi": isa.ADDI, "andi": isa.ANDI,
	"ori": isa.ORI, "xori": isa.XORI, "slli": isa.SLLI,
	"srli": isa.SRLI, "srai": isa.SRAI, "movi": isa.MOVI,
	"mul": isa.MUL, "div": isa.DIV, "rem": isa.REM, "fadd": isa.FADD,
	"fsub": isa.FSUB, "fmul": isa.FMUL, "fdiv": isa.FDIV,
	"fmin": isa.FMIN, "fmax": isa.FMAX, "i2f": isa.I2F, "f2i": isa.F2I,
	"ld": isa.LD, "st": isa.ST, "amoadd": isa.AMOADD, "swap": isa.SWAP,
	"beq": isa.BEQ, "bne": isa.BNE,
	"blt": isa.BLT, "bge": isa.BGE, "jmp": isa.JMP, "jal": isa.JAL,
	"jalr": isa.JALR, "halt": isa.HALT, "ret": isa.JALR,
}

func parseInst(b *Builder, line string) error {
	mnem, rest, _ := strings.Cut(line, " ")
	mnem = strings.ToLower(mnem)
	op, ok := asmOps[mnem]
	if !ok {
		return fmt.Errorf("unknown mnemonic %q", mnem)
	}
	args := splitArgs(rest)

	switch op {
	case isa.NOP, isa.HALT:
		if len(args) != 0 {
			return fmt.Errorf("%s takes no operands", mnem)
		}
		b.Emit(isa.Inst{Op: op})
		return nil
	case isa.MOVI:
		return with2(args, mnem, func(a, c string) error {
			rd, err := parseReg(a)
			if err != nil {
				return err
			}
			imm, err := parseNum(c)
			if err != nil {
				return err
			}
			b.MovI(rd, int32(imm))
			return nil
		})
	case isa.ADDI, isa.ANDI, isa.ORI, isa.XORI, isa.SLLI, isa.SRLI, isa.SRAI:
		if len(args) != 3 {
			return fmt.Errorf("%s wants rd, rs1, imm", mnem)
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		rs1, err := parseReg(args[1])
		if err != nil {
			return err
		}
		imm, err := parseNum(args[2])
		if err != nil {
			return err
		}
		b.OpI(op, rd, rs1, int32(imm))
		return nil
	case isa.I2F, isa.F2I:
		return with2(args, mnem, func(a, c string) error {
			rd, err := parseReg(a)
			if err != nil {
				return err
			}
			rs1, err := parseReg(c)
			if err != nil {
				return err
			}
			b.Emit(isa.Inst{Op: op, Rd: rd, Rs1: rs1})
			return nil
		})
	case isa.LD:
		if len(args) != 2 {
			return fmt.Errorf("ld wants rd, [rs+off]")
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		rs, off, err := parseMem(args[1])
		if err != nil {
			return err
		}
		b.Ld(rd, rs, off)
		return nil
	case isa.ST:
		if len(args) != 2 {
			return fmt.Errorf("st wants [rs+off], rs2")
		}
		rs, off, err := parseMem(args[0])
		if err != nil {
			return err
		}
		rs2, err := parseReg(args[1])
		if err != nil {
			return err
		}
		b.St(rs, off, rs2)
		return nil
	case isa.AMOADD, isa.SWAP:
		if len(args) != 3 {
			return fmt.Errorf("%s wants rd, [rs+off], rs2", mnem)
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		rs, off, err := parseMem(args[1])
		if err != nil {
			return err
		}
		rs2, err := parseReg(args[2])
		if err != nil {
			return err
		}
		b.Emit(isa.Inst{Op: op, Rd: rd, Rs1: rs, Rs2: rs2, Imm: off})
		return nil
	case isa.BEQ, isa.BNE, isa.BLT, isa.BGE:
		if len(args) != 3 {
			return fmt.Errorf("%s wants rs1, rs2, label", mnem)
		}
		rs1, err := parseReg(args[0])
		if err != nil {
			return err
		}
		rs2, err := parseReg(args[1])
		if err != nil {
			return err
		}
		b.Br(op, rs1, rs2, args[2])
		return nil
	case isa.JMP:
		if len(args) != 1 {
			return fmt.Errorf("jmp wants a label")
		}
		b.Jmp(args[0])
		return nil
	case isa.JAL:
		if len(args) != 1 {
			return fmt.Errorf("jal wants a label")
		}
		b.Call(args[0])
		return nil
	case isa.JALR:
		if mnem == "ret" {
			if len(args) != 0 {
				return fmt.Errorf("ret takes no operands")
			}
			b.Ret()
			return nil
		}
		if len(args) != 2 {
			return fmt.Errorf("jalr wants rd, rs1")
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		rs1, err := parseReg(args[1])
		if err != nil {
			return err
		}
		b.Emit(isa.Inst{Op: isa.JALR, Rd: rd, Rs1: rs1})
		return nil
	default: // three-register ops
		if len(args) != 3 {
			return fmt.Errorf("%s wants rd, rs1, rs2", mnem)
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		rs1, err := parseReg(args[1])
		if err != nil {
			return err
		}
		rs2, err := parseReg(args[2])
		if err != nil {
			return err
		}
		b.Op3(op, rd, rs1, rs2)
		return nil
	}
}

func with2(args []string, mnem string, f func(a, b string) error) error {
	if len(args) != 2 {
		return fmt.Errorf("%s wants two operands", mnem)
	}
	return f(args[0], args[1])
}

func splitArgs(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func parseReg(s string) (isa.Reg, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	if len(s) < 2 {
		return 0, fmt.Errorf("bad register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil {
		return 0, fmt.Errorf("bad register %q", s)
	}
	switch s[0] {
	case 'r':
		if n < 0 || n >= isa.NumIntRegs {
			return 0, fmt.Errorf("integer register %q out of range", s)
		}
		return isa.Reg(n), nil
	case 'f':
		if n < 0 || n >= isa.NumFPRegs {
			return 0, fmt.Errorf("fp register %q out of range", s)
		}
		return isa.F(n), nil
	}
	return 0, fmt.Errorf("bad register %q", s)
}

// parseMem parses "[rN+off]" or "[rN-off]" or "[rN]".
func parseMem(s string) (isa.Reg, int32, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	inner := s[1 : len(s)-1]
	sep := strings.IndexAny(inner, "+-")
	if sep < 0 {
		r, err := parseReg(inner)
		return r, 0, err
	}
	r, err := parseReg(inner[:sep])
	if err != nil {
		return 0, 0, err
	}
	off, err := parseNum(inner[sep:])
	if err != nil {
		return 0, 0, fmt.Errorf("bad offset in %q", s)
	}
	return r, int32(off), nil
}

func parseNum(s string) (int64, error) {
	s = strings.TrimSpace(s)
	s = strings.TrimPrefix(s, "+")
	return strconv.ParseInt(s, 0, 64)
}
