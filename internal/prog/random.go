package prog

import (
	"fmt"

	"faulthound/internal/isa"
	"faulthound/internal/stats"
)

// RandomConfig bounds the structured random-program generator.
type RandomConfig struct {
	// MaxDepth bounds block nesting (loops/ifs inside loops/ifs).
	MaxDepth int
	// MaxBlockLen bounds the statements per block.
	MaxBlockLen int
	// MaxLoopTrips bounds each loop's trip count (loops always
	// terminate: the generator builds counted loops only).
	MaxLoopTrips int
	// DataWords sizes the addressable scratch array.
	DataWords int
	// Calls enables call/return generation.
	Calls bool
}

// DefaultRandomConfig returns moderate bounds.
func DefaultRandomConfig() RandomConfig {
	return RandomConfig{MaxDepth: 3, MaxBlockLen: 8, MaxLoopTrips: 6, DataWords: 64, Calls: true}
}

// Random generates a structured, always-terminating random program:
// nested counted loops, data-dependent ifs, arithmetic over a small
// register set, loads/stores into a scratch array, and optional leaf
// calls. It is the fuel for differential testing of the pipeline
// against the reference interpreter.
//
// Register convention: r2 = data base (reserved), r20-r25 = loop
// counters by depth (reserved), r3-r10 = general scratch.
func Random(cfg RandomConfig, seed uint64) *Program {
	g := &randGen{
		cfg: cfg,
		rng: stats.NewRNG(seed ^ 0xfeedface),
		b:   NewBuilder(fmt.Sprintf("random-%d", seed), uint64(cfg.DataWords+2)*8),
	}
	for i := 0; i < cfg.DataWords; i++ {
		g.b.Word(uint64(i)*8, g.rng.Uint64()&0xffff)
	}
	g.b.MovU64(2, g.b.DataBase())
	for r := isa.Reg(3); r <= 10; r++ {
		g.b.MovI(r, int32(g.rng.Intn(100)))
	}
	g.block(0)
	g.b.Halt()
	if cfg.Calls && g.usedCall {
		// Leaf function: mangle two scratch registers and return.
		g.b.Label("leaf")
		g.b.Op3(isa.ADD, 9, 9, 10)
		g.b.OpI(isa.XORI, 10, 10, 0x5a)
		g.b.Ret()
	}
	return g.b.MustBuild()
}

type randGen struct {
	cfg      RandomConfig
	rng      *stats.RNG
	b        *Builder
	labels   int
	usedCall bool
}

func (g *randGen) label(prefix string) string {
	g.labels++
	return fmt.Sprintf("%s%d", prefix, g.labels)
}

func (g *randGen) scratch() isa.Reg { return isa.Reg(3 + g.rng.Intn(8)) }

// block emits a random sequence of statements at the given depth.
func (g *randGen) block(depth int) {
	n := 1 + g.rng.Intn(g.cfg.MaxBlockLen)
	for i := 0; i < n; i++ {
		switch g.rng.Intn(10) {
		case 0, 1, 2:
			g.arith()
		case 3, 4:
			g.load()
		case 5:
			g.store()
		case 6:
			if depth < g.cfg.MaxDepth {
				g.loop(depth + 1)
			} else {
				g.arith()
			}
		case 7:
			if depth < g.cfg.MaxDepth {
				g.ifBlock(depth + 1)
			} else {
				g.load()
			}
		case 8:
			if g.cfg.Calls {
				g.usedCall = true
				g.b.Call("leaf")
			} else {
				g.arith()
			}
		default:
			g.arith()
		}
	}
}

func (g *randGen) arith() {
	ops := []isa.Op{isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR, isa.MUL, isa.CMPLT}
	op := ops[g.rng.Intn(len(ops))]
	g.b.Op3(op, g.scratch(), g.scratch(), g.scratch())
	// Keep values bounded so addresses stay computable.
	if g.rng.Bool(0.3) {
		g.b.OpI(isa.ANDI, g.scratch(), g.scratch(), 0xffff)
	}
}

// addr computes a safe scratch-array address into r11.
func (g *randGen) addr() {
	src := g.scratch()
	g.b.OpI(isa.ANDI, 11, src, int32(g.cfg.DataWords-1)) // power-of-two mask preferred
	if g.cfg.DataWords&(g.cfg.DataWords-1) != 0 {
		// Non-power-of-two sizes: clamp by masking to the next lower
		// power of two.
		p := 1
		for p*2 <= g.cfg.DataWords {
			p *= 2
		}
		g.b.OpI(isa.ANDI, 11, src, int32(p-1))
	}
	g.b.OpI(isa.SLLI, 11, 11, 3)
	g.b.Op3(isa.ADD, 11, 2, 11)
}

func (g *randGen) load() {
	g.addr()
	g.b.Ld(g.scratch(), 11, 0)
}

func (g *randGen) store() {
	g.addr()
	g.b.St(11, 0, g.scratch())
}

// loop emits a counted loop with a depth-reserved counter register.
func (g *randGen) loop(depth int) {
	ctr := isa.Reg(19 + depth) // r20..r25
	trips := 1 + g.rng.Intn(g.cfg.MaxLoopTrips)
	top := g.label("loop")
	g.b.MovI(ctr, int32(trips))
	g.b.Label(top)
	g.block(depth)
	g.b.OpI(isa.ADDI, ctr, ctr, -1)
	g.b.Br(isa.BNE, ctr, isa.RZero, top)
}

// ifBlock emits a data-dependent conditional region.
func (g *randGen) ifBlock(depth int) {
	skip := g.label("skip")
	g.b.Br(isa.BLT, g.scratch(), g.scratch(), skip)
	g.block(depth)
	g.b.Label(skip)
}
