// Package prog provides a small assembler-style builder for constructing
// programs in the simulator's ISA, with labels, forward-reference fixup,
// and data-segment initialization. The workload package uses it to write
// the synthetic benchmark kernels.
package prog

import (
	"fmt"

	"faulthound/internal/isa"
)

// Program is an assembled program: code (instruction indices are the
// PC), an initial data image, and the entry point.
type Program struct {
	Name  string
	Code  []isa.Inst
	Entry uint64
	// Data maps 8-byte-aligned addresses to initial 64-bit values.
	Data map[uint64]uint64
	// DataBase and DataSize describe the mapped data segment; accesses
	// outside [DataBase, DataBase+DataSize) raise a translation
	// exception in the simulator (the paper's "noisy" faults).
	DataBase uint64
	DataSize uint64
}

// Validate checks structural sanity: branch targets in range, registers
// valid, entry in range.
func (p *Program) Validate() error {
	if len(p.Code) == 0 {
		return fmt.Errorf("prog %s: empty code", p.Name)
	}
	if p.Entry >= uint64(len(p.Code)) {
		return fmt.Errorf("prog %s: entry %d out of range", p.Name, p.Entry)
	}
	for pc, in := range p.Code {
		if !in.Op.Valid() {
			return fmt.Errorf("prog %s: invalid opcode at %d", p.Name, pc)
		}
		switch in.Op {
		case isa.BEQ, isa.BNE, isa.BLT, isa.BGE, isa.JMP, isa.JAL:
			if in.Imm < 0 || int(in.Imm) >= len(p.Code) {
				return fmt.Errorf("prog %s: branch target %d out of range at %d", p.Name, in.Imm, pc)
			}
		}
		for _, r := range []isa.Reg{in.Rd, in.Rs1, in.Rs2} {
			if !r.Valid() {
				return fmt.Errorf("prog %s: invalid register %d at %d", p.Name, r, pc)
			}
		}
	}
	for addr := range p.Data {
		if addr%8 != 0 {
			return fmt.Errorf("prog %s: unaligned data address %#x", p.Name, addr)
		}
		if addr < p.DataBase || addr >= p.DataBase+p.DataSize {
			return fmt.Errorf("prog %s: data address %#x outside segment", p.Name, addr)
		}
	}
	return nil
}

// Builder assembles a Program instruction by instruction.
type Builder struct {
	name     string
	code     []isa.Inst
	labels   map[string]uint64
	fixups   []fixup
	data     map[uint64]uint64
	dataBase uint64
	dataSize uint64
	errs     []error
}

type fixup struct {
	pc    int
	label string
}

// DefaultDataBase is the start of the data segment used by the builder
// unless overridden; it is far from instruction index space so flipped
// address bits usually leave the segment (becoming "noisy" faults).
const DefaultDataBase = 0x10000000

// NewBuilder creates a builder for a program with the given name and a
// data segment of dataSize bytes at DefaultDataBase.
func NewBuilder(name string, dataSize uint64) *Builder {
	return NewBuilderAt(name, DefaultDataBase, dataSize)
}

// NewBuilderAt creates a builder with an explicit data-segment base
// (8-byte aligned). Per-thread program copies use disjoint bases so SMT
// contexts do not share data, matching the paper's setup of independent
// program copies.
func NewBuilderAt(name string, base, dataSize uint64) *Builder {
	if base%8 != 0 {
		panic("prog: unaligned data base")
	}
	return &Builder{
		name:     name,
		labels:   make(map[string]uint64),
		data:     make(map[uint64]uint64),
		dataBase: base,
		dataSize: dataSize,
	}
}

// DataBase returns the base address of the data segment.
func (b *Builder) DataBase() uint64 { return b.dataBase }

// PC returns the index the next emitted instruction will occupy.
func (b *Builder) PC() uint64 { return uint64(len(b.code)) }

// Label defines a label at the current PC.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		b.errs = append(b.errs, fmt.Errorf("duplicate label %q", name))
		return
	}
	b.labels[name] = b.PC()
}

// Emit appends a raw instruction.
func (b *Builder) Emit(in isa.Inst) {
	b.code = append(b.code, in)
}

// emitLabelled appends an instruction whose Imm is the address of label,
// fixed up at Build time.
func (b *Builder) emitLabelled(in isa.Inst, label string) {
	b.fixups = append(b.fixups, fixup{pc: len(b.code), label: label})
	b.code = append(b.code, in)
}

// --- Convenience emitters (assembly-like surface) ---

// Op3 emits a three-register instruction rd = rs1 op rs2.
func (b *Builder) Op3(op isa.Op, rd, rs1, rs2 isa.Reg) {
	b.Emit(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// OpI emits a register-immediate instruction rd = rs1 op imm.
func (b *Builder) OpI(op isa.Op, rd, rs1 isa.Reg, imm int32) {
	b.Emit(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Imm: imm})
}

// MovI emits rd = imm (sign-extended 32-bit).
func (b *Builder) MovI(rd isa.Reg, imm int32) {
	b.Emit(isa.Inst{Op: isa.MOVI, Rd: rd, Imm: imm})
}

// MovU64 emits a sequence loading an arbitrary 64-bit constant into rd.
func (b *Builder) MovU64(rd isa.Reg, v uint64) {
	hi := int32(v >> 32)
	lo := v & 0xffffffff
	if hi == 0 && lo&0x80000000 == 0 {
		b.MovI(rd, int32(lo))
		return
	}
	// Build hi<<32 | lo with two 16-bit OR chunks; any sign extension
	// from MovI is shifted out by the two 16-bit shifts.
	b.MovI(rd, hi)
	b.OpI(isa.SLLI, rd, rd, 16)
	b.OpI(isa.ORI, rd, rd, int32(lo>>16&0xffff))
	b.OpI(isa.SLLI, rd, rd, 16)
	b.OpI(isa.ORI, rd, rd, int32(lo&0xffff))
}

// Ld emits rd = mem[rs1+off].
func (b *Builder) Ld(rd, rs1 isa.Reg, off int32) {
	b.Emit(isa.Inst{Op: isa.LD, Rd: rd, Rs1: rs1, Imm: off})
}

// St emits mem[rs1+off] = rs2.
func (b *Builder) St(rs1 isa.Reg, off int32, rs2 isa.Reg) {
	b.Emit(isa.Inst{Op: isa.ST, Rs1: rs1, Rs2: rs2, Imm: off})
}

// Br emits a conditional branch to label.
func (b *Builder) Br(op isa.Op, rs1, rs2 isa.Reg, label string) {
	b.emitLabelled(isa.Inst{Op: op, Rs1: rs1, Rs2: rs2}, label)
}

// Jmp emits an unconditional jump to label.
func (b *Builder) Jmp(label string) {
	b.emitLabelled(isa.Inst{Op: isa.JMP}, label)
}

// Call emits a JAL to label, linking in isa.RLink.
func (b *Builder) Call(label string) {
	b.emitLabelled(isa.Inst{Op: isa.JAL, Rd: isa.RLink}, label)
}

// Ret emits a return through the link register.
func (b *Builder) Ret() {
	b.Emit(isa.Inst{Op: isa.JALR, Rd: isa.RZero, Rs1: isa.RLink})
}

// Nop emits a no-op.
func (b *Builder) Nop() { b.Emit(isa.Inst{Op: isa.NOP}) }

// Halt emits a thread-terminating instruction.
func (b *Builder) Halt() { b.Emit(isa.Inst{Op: isa.HALT}) }

// Word initializes the 64-bit word at data-segment offset off (bytes).
func (b *Builder) Word(off uint64, v uint64) {
	addr := b.dataBase + off
	if off%8 != 0 || off+8 > b.dataSize {
		b.errs = append(b.errs, fmt.Errorf("bad data offset %#x", off))
		return
	}
	b.data[addr] = v
}

// Build resolves labels and returns the validated program.
func (b *Builder) Build() (*Program, error) {
	for _, f := range b.fixups {
		target, ok := b.labels[f.label]
		if !ok {
			b.errs = append(b.errs, fmt.Errorf("undefined label %q at pc %d", f.label, f.pc))
			continue
		}
		b.code[f.pc].Imm = int32(target)
	}
	if len(b.errs) > 0 {
		return nil, fmt.Errorf("prog %s: %d errors, first: %w", b.name, len(b.errs), b.errs[0])
	}
	p := &Program{
		Name:     b.name,
		Code:     b.code,
		Data:     b.data,
		DataBase: b.dataBase,
		DataSize: b.dataSize,
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustBuild is Build for known-good programs; it panics on error.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
