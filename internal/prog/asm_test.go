package prog

import (
	"strings"
	"testing"

	"faulthound/internal/isa"
)

func TestParseArithLoop(t *testing.T) {
	p, err := Parse("sum", `
		; sum integers 1..10 into r1
		.data 64
		movi r1, 0
		movi r2, 1
		movi r3, 11
	loop:
		add  r1, r1, r2
		addi r2, r2, 1
		blt  r2, r3, loop
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	it := NewInterp(p)
	it.Run(1000)
	if !it.Halted || it.Regs[1] != 55 {
		t.Fatalf("halted=%v r1=%d", it.Halted, it.Regs[1])
	}
}

func TestParseMemoryAndDirectives(t *testing.T) {
	p, err := Parse("mem", `
		.data 128
		.word 0 41
		movi r2, 0x10000000
		ld   r1, [r2]
		addi r1, r1, 1
		st   [r2+8], r1
		ld   r3, [r2+8]
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	it := NewInterp(p)
	it.Run(100)
	if it.Regs[3] != 42 {
		t.Fatalf("r3 = %d, want 42", it.Regs[3])
	}
}

func TestParseCustomBase(t *testing.T) {
	p, err := Parse("based", `
		.base 0x20000000
		.data 64
		.word 8 7
		movi r2, 0x20000000
		ld r1, [r2+8]
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	if p.DataBase != 0x20000000 {
		t.Fatalf("base = %#x", p.DataBase)
	}
	it := NewInterp(p)
	it.Run(100)
	if it.Regs[1] != 7 {
		t.Fatalf("r1 = %d", it.Regs[1])
	}
}

func TestParseCallRet(t *testing.T) {
	p, err := Parse("call", `
		movi r1, 5
		jal double
		halt
	double:
		add r1, r1, r1
		ret
	`)
	if err != nil {
		t.Fatal(err)
	}
	it := NewInterp(p)
	it.Run(100)
	if !it.Halted || it.Regs[1] != 10 {
		t.Fatalf("halted=%v r1=%d", it.Halted, it.Regs[1])
	}
}

func TestParseFP(t *testing.T) {
	p, err := Parse("fp", `
		movi r1, 3
		i2f  f0, r1
		fmul f1, f0, f0
		f2i  r2, f1
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	it := NewInterp(p)
	it.Run(100)
	if it.Regs[2] != 9 {
		t.Fatalf("r2 = %d, want 9", it.Regs[2])
	}
}

func TestParseNegativeOffsetsAndHex(t *testing.T) {
	p, err := Parse("neg", `
		.data 128
		movi r2, 0x10000010
		movi r1, 0x2a
		st [r2-8], r1
		ld r3, [r2-8]
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	it := NewInterp(p)
	it.Run(100)
	if it.Regs[3] != 0x2a {
		t.Fatalf("r3 = %#x", it.Regs[3])
	}
}

func TestParseComments(t *testing.T) {
	p, err := Parse("c", `
		movi r1, 1 ; trailing comment
		// whole-line comment
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Code) != 2 {
		t.Fatalf("code length = %d", len(p.Code))
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"unknown mnemonic": "frobnicate r1, r2",
		"bad register":     "add r1, r99, r2",
		"fp out of range":  "fadd f1, f20, f2",
		"no code":          "; nothing here",
		"bad memory":       "ld r1, r2",
		"data after code":  "movi r1, 0\n.data 64",
		"word args":        ".word 8",
		"halt operands":    "halt r1",
		"jmp label":        "jmp",
		"undefined label":  "jmp nowhere\nhalt",
	}
	for name, src := range cases {
		if _, err := Parse("bad", src); err == nil {
			t.Errorf("%s: Parse(%q) should fail", name, src)
		}
	}
}

func TestParseRoundTripViaString(t *testing.T) {
	// Disassemble a built program and reparse the reparseable subset.
	b := NewBuilder("rt", 64)
	b.MovI(1, 7)
	b.Op3(isa.ADD, 3, 1, 1)
	b.OpI(isa.XORI, 4, 3, 0x55)
	b.Halt()
	p := b.MustBuild()
	var sb strings.Builder
	for _, in := range p.Code {
		sb.WriteString(in.String())
		sb.WriteByte('\n')
	}
	p2, err := Parse("rt2", sb.String())
	if err != nil {
		t.Fatal(err)
	}
	a, bIt := NewInterp(p), NewInterp(p2)
	a.Run(100)
	bIt.Run(100)
	if a.Regs != bIt.Regs {
		t.Fatal("reparsed program diverges")
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustParse("bad", "frobnicate")
}

func TestParseAtomics(t *testing.T) {
	p, err := Parse("atomics", `
		.data 64
		.word 0 10
		movi r2, 0x10000000
		movi r3, 5
		amoadd r4, [r2], r3   ; r4 = 10, mem = 15
		movi r5, 99
		swap r6, [r2], r5     ; r6 = 15, mem = 99
		ld r7, [r2]
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	it := NewInterp(p)
	it.Run(100)
	if it.Regs[4] != 10 || it.Regs[6] != 15 || it.Regs[7] != 99 {
		t.Fatalf("r4=%d r6=%d r7=%d, want 10/15/99", it.Regs[4], it.Regs[6], it.Regs[7])
	}
}
