package prog_test

import (
	"fmt"

	"faulthound/internal/isa"
	"faulthound/internal/prog"
)

// ExampleBuilder assembles a small loop with the builder API and runs
// it on the reference interpreter.
func ExampleBuilder() {
	b := prog.NewBuilder("triangle", 64)
	b.MovI(1, 0)  // sum
	b.MovI(2, 1)  // i
	b.MovI(3, 11) // bound
	b.Label("loop")
	b.Op3(isa.ADD, 1, 1, 2)
	b.OpI(isa.ADDI, 2, 2, 1)
	b.Br(isa.BLT, 2, 3, "loop")
	b.Halt()

	it := prog.NewInterp(b.MustBuild())
	it.Run(1000)
	fmt.Println("sum of 1..10 =", it.Regs[1])
	// Output:
	// sum of 1..10 = 55
}

// ExampleParse assembles the same program from text.
func ExampleParse() {
	p := prog.MustParse("triangle", `
		movi r1, 0
		movi r2, 1
		movi r3, 11
	loop:
		add  r1, r1, r2
		addi r2, r2, 1
		blt  r2, r3, loop
		halt
	`)
	it := prog.NewInterp(p)
	it.Run(1000)
	fmt.Println("sum of 1..10 =", it.Regs[1])
	// Output:
	// sum of 1..10 = 55
}
