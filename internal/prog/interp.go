package prog

import (
	"fmt"

	"faulthound/internal/isa"
)

// Interp is a sequential, architecturally exact interpreter for a
// Program. It is the golden model the out-of-order pipeline is tested
// against: after N committed instructions, the pipeline's architectural
// state must equal the interpreter's state after N steps.
type Interp struct {
	Prog *Program
	PC   uint64
	Regs [isa.NumArchRegs]uint64
	Mem  map[uint64]uint64
	// Halted reports that a HALT instruction was executed.
	Halted bool
	// Steps counts executed instructions.
	Steps uint64
	// Faulted holds a translation-exception description, if any.
	Faulted error
}

// NewInterp creates an interpreter positioned at the program entry with
// the initial data image loaded.
func NewInterp(p *Program) *Interp {
	m := make(map[uint64]uint64, len(p.Data))
	for a, v := range p.Data {
		m[a] = v
	}
	return &Interp{Prog: p, PC: p.Entry, Mem: m}
}

// inSegment reports whether an 8-byte access at addr is mapped.
func (it *Interp) inSegment(addr uint64) bool {
	return addr >= it.Prog.DataBase && addr+8 <= it.Prog.DataBase+it.Prog.DataSize && addr%8 == 0
}

// Step executes one instruction. It returns false when the interpreter
// cannot make progress (halted, faulted, or PC out of range).
func (it *Interp) Step() bool {
	if it.Halted || it.Faulted != nil {
		return false
	}
	if it.PC >= uint64(len(it.Prog.Code)) {
		it.Faulted = fmt.Errorf("pc %d out of range", it.PC)
		return false
	}
	in := it.Prog.Code[it.PC]
	s1, s2 := it.Regs[in.Rs1], it.Regs[in.Rs2]
	out := isa.Exec(in, it.PC, s1, s2)
	it.Steps++

	switch {
	case out.Halt:
		it.Halted = true
		return false
	case in.Op == isa.LD:
		if !it.inSegment(out.EffAddr) {
			it.Faulted = fmt.Errorf("load translation exception at %#x", out.EffAddr)
			return false
		}
		it.write(in.Rd, it.Mem[out.EffAddr])
	case in.Op == isa.ST:
		if !it.inSegment(out.EffAddr) {
			it.Faulted = fmt.Errorf("store translation exception at %#x", out.EffAddr)
			return false
		}
		it.Mem[out.EffAddr] = out.Value
	case in.IsAtomic():
		if !it.inSegment(out.EffAddr) {
			it.Faulted = fmt.Errorf("atomic translation exception at %#x", out.EffAddr)
			return false
		}
		old := it.Mem[out.EffAddr]
		it.write(in.Rd, old)
		if in.Op == isa.AMOADD {
			it.Mem[out.EffAddr] = old + out.Value
		} else {
			it.Mem[out.EffAddr] = out.Value
		}
	case in.HasDest():
		it.write(in.Rd, out.Value)
	}

	if out.Taken {
		it.PC = out.Target
	} else {
		it.PC++
	}
	return true
}

func (it *Interp) write(rd isa.Reg, v uint64) {
	if rd == isa.RZero {
		return
	}
	it.Regs[rd] = v
}

// Run executes up to maxSteps instructions and returns the number
// executed.
func (it *Interp) Run(maxSteps uint64) uint64 {
	var n uint64
	for n < maxSteps && it.Step() {
		n++
	}
	// Step() returning false after executing HALT still counted it.
	return it.Steps
}
