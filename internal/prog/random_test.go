package prog

import (
	"testing"

	"faulthound/internal/isa"
)

func TestRandomProgramsTerminate(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		p := Random(DefaultRandomConfig(), seed)
		if err := p.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		it := NewInterp(p)
		it.Run(5_000_000)
		if it.Faulted != nil {
			t.Fatalf("seed %d: faulted: %v", seed, it.Faulted)
		}
		if !it.Halted {
			t.Fatalf("seed %d: did not terminate within budget (steps %d)", seed, it.Steps)
		}
	}
}

func TestRandomDeterministic(t *testing.T) {
	a := Random(DefaultRandomConfig(), 42)
	b := Random(DefaultRandomConfig(), 42)
	if len(a.Code) != len(b.Code) {
		t.Fatal("nondeterministic length")
	}
	for i := range a.Code {
		if a.Code[i] != b.Code[i] {
			t.Fatalf("code differs at %d", i)
		}
	}
	c := Random(DefaultRandomConfig(), 43)
	if len(a.Code) == len(c.Code) {
		same := true
		for i := range a.Code {
			if a.Code[i] != c.Code[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical programs")
		}
	}
}

func TestRandomExercisesConstructs(t *testing.T) {
	// Across a batch of seeds, the generator must emit loops, branches,
	// memory ops, and calls.
	var loops, loads, stores, calls int
	for seed := uint64(0); seed < 20; seed++ {
		p := Random(DefaultRandomConfig(), seed)
		for _, in := range p.Code {
			switch {
			case in.IsCondBranch():
				loops++
			case in.Op == isa.LD:
				loads++
			case in.Op == isa.ST:
				stores++
			case in.Op == isa.JAL:
				calls++
			}
		}
	}
	if loops == 0 || loads == 0 || stores == 0 || calls == 0 {
		t.Fatalf("constructs missing: loops=%d loads=%d stores=%d calls=%d",
			loops, loads, stores, calls)
	}
}
