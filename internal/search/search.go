// Package search is the score layer of the campaign stack: a
// deterministic, seeded evolutionary driver over the scheme registry's
// parameter space. It proposes scheme.Spec mutations from pspec
// parameter metadata, scores each configuration with a weighted
// multi-objective fitness over the execute layer's metrics (coverage,
// false-positive rate, energy overhead, perf overhead), prunes
// Pareto-dominated configurations, and reports the frontier as
// pareto.csv / pareto.json / pareto.md artifacts
// (contract faulthound.pareto/v1).
//
// Determinism: the only randomness is a stats.RNG seeded from
// Config.Seed, consumed in a fixed order by the single-threaded
// driver loop; the execute layer it calls is bit-identical for any
// worker count. Same seed + weights + budget ⇒ byte-identical
// artifacts.
package search

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"faulthound/internal/scheme"
	"faulthound/internal/stats"
)

// Weights scale the four objectives into one scalar fitness:
//
//	fitness = Coverage·coverage − FPRate·fp_rate − Energy·energy_overhead − Perf·perf_overhead
//
// Coverage is a benefit (positive sign); the other three are costs.
// Fitness only breaks ties inside the driver (parent selection, report
// ordering) — the Pareto front itself is weight-independent.
type Weights struct {
	Coverage float64 `json:"coverage"`
	FPRate   float64 `json:"fp"`
	Energy   float64 `json:"energy"`
	Perf     float64 `json:"perf"`
}

// DefaultWeights weighs every objective equally.
func DefaultWeights() Weights {
	return Weights{Coverage: 1, FPRate: 1, Energy: 1, Perf: 1}
}

// ParseWeights parses a "-fitness-weights" flag value: comma-separated
// key=value pairs over the keys coverage, fp, energy, perf. Missing
// keys keep their default weight of 1; an empty string is all
// defaults.
func ParseWeights(raw string) (Weights, error) {
	w := DefaultWeights()
	raw = strings.TrimSpace(raw)
	if raw == "" {
		return w, nil
	}
	for _, tok := range strings.Split(raw, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(tok), "=")
		if !ok {
			return w, fmt.Errorf("search: bad weight %q (want key=value)", tok)
		}
		f, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
		if err != nil {
			return w, fmt.Errorf("search: bad weight value %q for %s", v, k)
		}
		switch strings.TrimSpace(k) {
		case "coverage":
			w.Coverage = f
		case "fp":
			w.FPRate = f
		case "energy":
			w.Energy = f
		case "perf":
			w.Perf = f
		default:
			return w, fmt.Errorf("search: unknown weight %q (known: coverage, fp, energy, perf)", k)
		}
	}
	return w, nil
}

// String renders the weights in canonical flag form.
func (w Weights) String() string {
	f := func(x float64) string { return strconv.FormatFloat(x, 'g', -1, 64) }
	return "coverage=" + f(w.Coverage) + ",fp=" + f(w.FPRate) +
		",energy=" + f(w.Energy) + ",perf=" + f(w.Perf)
}

// Metrics are one configuration's objective values, averaged over the
// benchmarks under search by the evaluator.
type Metrics struct {
	// Coverage is the paired SDC coverage in [0, 1] (higher is better).
	Coverage float64 `json:"coverage"`
	// FPRate is the fault-free detector action rate (lower is better).
	FPRate float64 `json:"fp_rate"`
	// EnergyOverhead is the fractional energy overhead vs baseline.
	EnergyOverhead float64 `json:"energy_overhead"`
	// PerfOverhead is the fractional cycle overhead vs baseline.
	PerfOverhead float64 `json:"perf_overhead"`
}

// sane maps NaN/Inf to 0 so a degenerate cell (zero-injection, zero
// baseline) cannot poison dominance comparisons or fitness sums.
func sane(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return x
}

// sanitize returns m with every objective guarded through sane.
func (m Metrics) sanitize() Metrics {
	return Metrics{
		Coverage:       sane(m.Coverage),
		FPRate:         sane(m.FPRate),
		EnergyOverhead: sane(m.EnergyOverhead),
		PerfOverhead:   sane(m.PerfOverhead),
	}
}

// Fitness collapses the objectives under w.
func (m Metrics) Fitness(w Weights) float64 {
	return sane(w.Coverage*m.Coverage - w.FPRate*m.FPRate -
		w.Energy*m.EnergyOverhead - w.Perf*m.PerfOverhead)
}

// Dominates reports Pareto dominance: m is no worse than o on every
// objective (coverage ≥, the three costs ≤) and strictly better on at
// least one.
func (m Metrics) Dominates(o Metrics) bool {
	if m.Coverage < o.Coverage || m.FPRate > o.FPRate ||
		m.EnergyOverhead > o.EnergyOverhead || m.PerfOverhead > o.PerfOverhead {
		return false
	}
	return m.Coverage > o.Coverage || m.FPRate < o.FPRate ||
		m.EnergyOverhead < o.EnergyOverhead || m.PerfOverhead < o.PerfOverhead
}

// Point is one evaluated configuration in the search archive.
type Point struct {
	// Spec is the canonical scheme spec.
	Spec string `json:"spec"`
	// Round is the driver round (0-based) that evaluated the spec.
	Round int `json:"round"`
	Metrics
	// Fitness is the weighted scalar under the run's weights.
	Fitness float64 `json:"fitness"`
	// Front marks membership in the final Pareto front.
	Front bool `json:"front"`
}

// Evaluate scores a batch of proposed configurations, returning one
// Metrics per spec in order. The campaign Evaluator (wrapped by
// harness.NewSearchEval) is the standard implementation; tests supply
// synthetic ones.
type Evaluate func(ctx context.Context, specs []scheme.Spec) ([]Metrics, error)

// Config parameterizes one search run.
type Config struct {
	// Seed drives every mutation draw.
	Seed uint64
	// Budget caps the number of distinct configurations evaluated
	// (benchmark baselines are free). The run stops when the budget is
	// spent or no undominated mutation remains.
	Budget int
	// PopSize is the number of parents kept per round (default 4).
	PopSize int
	// Weights scale the scalar fitness used for parent selection and
	// report ordering.
	Weights Weights
	// Base seeds round 0: the starting population, typically the plain
	// registry schemes under search. Required, non-empty.
	Base []scheme.Spec
	// Params optionally restricts mutation to these parameter names;
	// empty means every Int/Float/Bool parameter the scheme declares.
	Params []string
	// Eval scores proposals (required).
	Eval Evaluate
	// Log receives progress lines; nil disables them.
	Log func(format string, args ...any)
}

// Result is a finished search: the full evaluated archive with front
// membership resolved, front-first.
type Result struct {
	// Points holds every evaluated configuration: front members first
	// (fitness-descending, spec ascending), then dominated points in
	// the same order.
	Points []Point
	// Rounds counts driver rounds executed.
	Rounds int
	// Evaluated counts distinct configurations scored.
	Evaluated int
}

// Front returns the Pareto-front points (the leading run of Points).
func (r *Result) Front() []Point {
	n := 0
	for n < len(r.Points) && r.Points[n].Front {
		n++
	}
	return r.Points[:n]
}

// Run executes the search: evaluate the base population, then rounds
// of mutate-evaluate-prune until the budget is spent or the mutation
// space around the survivors is exhausted.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if cfg.Eval == nil {
		return nil, fmt.Errorf("search: config has no evaluator")
	}
	if len(cfg.Base) == 0 {
		return nil, fmt.Errorf("search: config has no base population")
	}
	if cfg.Budget <= 0 {
		return nil, fmt.Errorf("search: budget must be positive")
	}
	pop := cfg.PopSize
	if pop <= 0 {
		pop = 4
	}
	logf := cfg.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}

	rng := stats.NewRNG(cfg.Seed)
	var archive []Point
	seen := make(map[string]bool)

	// Round 0 pending: the base population, deduplicated in order.
	var pending []scheme.Spec
	for _, sp := range cfg.Base {
		if key := sp.String(); !seen[key] {
			seen[key] = true
			pending = append(pending, sp)
		}
	}
	if len(pending) > cfg.Budget {
		pending = pending[:cfg.Budget]
	}

	rounds := 0
	for len(pending) > 0 {
		ms, err := cfg.Eval(ctx, pending)
		if err != nil {
			return nil, err
		}
		if len(ms) != len(pending) {
			return nil, fmt.Errorf("search: evaluator returned %d metrics for %d specs", len(ms), len(pending))
		}
		for i, sp := range pending {
			m := ms[i].sanitize()
			archive = append(archive, Point{
				Spec:    sp.String(),
				Round:   rounds,
				Metrics: m,
				Fitness: m.Fitness(cfg.Weights),
			})
		}
		rounds++
		markFront(archive)
		front := 0
		for i := range archive {
			if archive[i].Front {
				front++
			}
		}
		logf("search: round %d: %d evaluated, %d on front", rounds, len(archive), front)

		remaining := cfg.Budget - len(archive)
		if remaining <= 0 {
			break
		}
		parents := selectParents(archive, pop)
		pending = propose(rng, parents, cfg.Params, seen, min(pop, remaining))
		if len(pending) == 0 {
			logf("search: mutation space exhausted after %d evaluations", len(archive))
		}
		for _, sp := range pending {
			seen[sp.String()] = true
		}
	}

	sortArchive(archive)
	return &Result{Points: archive, Rounds: rounds, Evaluated: len(archive)}, nil
}

// markFront recomputes every archive point's Front flag by pairwise
// dominance.
func markFront(archive []Point) {
	for i := range archive {
		archive[i].Front = true
		for j := range archive {
			if i != j && archive[j].Metrics.Dominates(archive[i].Metrics) {
				archive[i].Front = false
				break
			}
		}
	}
}

// selectParents picks the next round's parents: front members first,
// then best-fitness dominated points, up to pop, in deterministic
// order (fitness descending, spec ascending).
func selectParents(archive []Point, pop int) []Point {
	sorted := make([]Point, len(archive))
	copy(sorted, archive)
	sortArchive(sorted)
	if len(sorted) > pop {
		sorted = sorted[:pop]
	}
	return sorted
}

// sortArchive orders points front-first, then fitness descending, then
// spec ascending — the canonical report order.
func sortArchive(pts []Point) {
	sort.SliceStable(pts, func(i, j int) bool {
		if pts[i].Front != pts[j].Front {
			return pts[i].Front
		}
		if pts[i].Fitness != pts[j].Fitness {
			return pts[i].Fitness > pts[j].Fitness
		}
		return pts[i].Spec < pts[j].Spec
	})
}
