package search

import (
	"context"

	"faulthound/internal/campaign"
	"faulthound/internal/scheme"
)

// CampaignEval adapts the execute layer to the score layer: each
// proposed spec is evaluated on every benchmark and the objectives are
// averaged (arithmetic mean, matching the experiment tables' mean
// rows). The benchmark list must be non-empty and pre-resolved.
func CampaignEval(ev *campaign.Evaluator, benches []string) Evaluate {
	return func(ctx context.Context, specs []scheme.Spec) ([]Metrics, error) {
		cells := make([]campaign.Cell, 0, len(specs)*len(benches))
		for _, sp := range specs {
			for _, bm := range benches {
				cells = append(cells, campaign.Cell{Bench: bm, Scheme: sp})
			}
		}
		ms, err := ev.Evaluate(ctx, cells)
		if err != nil {
			return nil, err
		}
		out := make([]Metrics, len(specs))
		i := 0
		for si := range specs {
			var agg Metrics
			for range benches {
				m := ms[i]
				i++
				if m.Coverage != nil {
					agg.Coverage += m.Coverage.Coverage
				}
				agg.FPRate += m.FPRate
				agg.EnergyOverhead += m.EnergyOverhead
				agg.PerfOverhead += m.PerfOverhead
			}
			if n := float64(len(benches)); n > 0 {
				agg.Coverage /= n
				agg.FPRate /= n
				agg.EnergyOverhead /= n
				agg.PerfOverhead /= n
			}
			out[si] = agg
		}
		return out, nil
	}
}
