package search

import (
	"context"
	"math"
	"strings"
	"testing"

	"faulthound/internal/scheme"
	"faulthound/internal/stats"
)

func TestParseWeights(t *testing.T) {
	w, err := ParseWeights("")
	if err != nil || w != DefaultWeights() {
		t.Fatalf("empty weights = %+v, %v", w, err)
	}
	w, err = ParseWeights("coverage=2,fp=0.5, energy=0 ,perf=3")
	if err != nil {
		t.Fatal(err)
	}
	if w != (Weights{Coverage: 2, FPRate: 0.5, Energy: 0, Perf: 3}) {
		t.Fatalf("weights = %+v", w)
	}
	for _, bad := range []string{"coverage", "sdc=1", "fp=x"} {
		if _, err := ParseWeights(bad); err == nil {
			t.Errorf("ParseWeights(%q) accepted", bad)
		}
	}
}

func TestDominates(t *testing.T) {
	a := Metrics{Coverage: 0.8, FPRate: 0.01, EnergyOverhead: 0.1, PerfOverhead: 0.05}
	b := Metrics{Coverage: 0.7, FPRate: 0.02, EnergyOverhead: 0.2, PerfOverhead: 0.05}
	if !a.Dominates(b) {
		t.Error("a should dominate b")
	}
	if b.Dominates(a) {
		t.Error("b should not dominate a")
	}
	if a.Dominates(a) {
		t.Error("a point must not dominate itself (no strict improvement)")
	}
	// Trade-off: higher coverage but higher cost — incomparable.
	c := Metrics{Coverage: 0.9, FPRate: 0.05, EnergyOverhead: 0.3, PerfOverhead: 0.1}
	if a.Dominates(c) || c.Dominates(a) {
		t.Error("a and c should be mutually non-dominated")
	}
}

func TestFitnessSanitized(t *testing.T) {
	m := Metrics{Coverage: 1, FPRate: 0, EnergyOverhead: 0, PerfOverhead: 0}
	if got := m.Fitness(DefaultWeights()); got != 1 {
		t.Errorf("fitness = %v, want 1", got)
	}
	bad := Metrics{Coverage: math.NaN(), EnergyOverhead: math.Inf(1), PerfOverhead: math.Inf(-1)}
	got := bad.sanitize()
	if got != (Metrics{}) {
		t.Errorf("sanitize kept NaN/Inf: %+v", got)
	}
	if f := bad.Fitness(DefaultWeights()); math.IsNaN(f) || math.IsInf(f, 0) {
		t.Errorf("fitness of degenerate metrics = %v", f)
	}
}

// syntheticEval scores tcam monotonically: coverage grows and cost
// grows with the table size, so every distinct tcam lands on the
// front and the driver has an unbounded supply of useful mutations.
func syntheticEval(calls *[][]string) Evaluate {
	return func(_ context.Context, specs []scheme.Spec) ([]Metrics, error) {
		var names []string
		out := make([]Metrics, len(specs))
		for i, sp := range specs {
			names = append(names, sp.String())
			v, err := scheme.ValuesOf(sp)
			if err != nil {
				return nil, err
			}
			n := float64(v.Int("tcam"))
			out[i] = Metrics{
				Coverage:       n / (n + 8),
				FPRate:         0.001 * n,
				EnergyOverhead: 0.01 * n,
				PerfOverhead:   0.005 * n,
			}
		}
		*calls = append(*calls, names)
		return out, nil
	}
}

func runSynthetic(t *testing.T, seed uint64, budget int) (*Result, [][]string) {
	t.Helper()
	var calls [][]string
	base, err := scheme.Parse("faulthound")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), Config{
		Seed:    seed,
		Budget:  budget,
		PopSize: 3,
		Weights: DefaultWeights(),
		Base:    []scheme.Spec{base},
		Params:  []string{"tcam"},
		Eval:    syntheticEval(&calls),
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, calls
}

func TestRunDeterministic(t *testing.T) {
	a, callsA := runSynthetic(t, 42, 8)
	b, callsB := runSynthetic(t, 42, 8)
	if len(a.Points) != len(b.Points) {
		t.Fatalf("run sizes differ: %d vs %d", len(a.Points), len(b.Points))
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Errorf("point %d differs: %+v vs %+v", i, a.Points[i], b.Points[i])
		}
	}
	if len(callsA) != len(callsB) {
		t.Fatalf("evaluation batches differ: %d vs %d", len(callsA), len(callsB))
	}
	for i := range callsA {
		if strings.Join(callsA[i], " ") != strings.Join(callsB[i], " ") {
			t.Errorf("batch %d differs: %v vs %v", i, callsA[i], callsB[i])
		}
	}
}

func TestRunRespectsBudget(t *testing.T) {
	res, _ := runSynthetic(t, 1, 5)
	if res.Evaluated > 5 {
		t.Errorf("evaluated %d specs, budget 5", res.Evaluated)
	}
	if res.Evaluated == 0 {
		t.Error("evaluated nothing")
	}
	// Every distinct tcam is mutually non-dominated under the
	// synthetic objectives, so the whole archive is the front.
	for _, p := range res.Points {
		if !p.Front {
			t.Errorf("%s unexpectedly dominated", p.Spec)
		}
	}
	// Archive must be deduplicated.
	seen := map[string]bool{}
	for _, p := range res.Points {
		if seen[p.Spec] {
			t.Errorf("spec %s evaluated twice", p.Spec)
		}
		seen[p.Spec] = true
	}
}

func TestRunConfigErrors(t *testing.T) {
	base := scheme.Spec{Name: "faulthound"}
	eval := func(context.Context, []scheme.Spec) ([]Metrics, error) { return nil, nil }
	cases := []Config{
		{Budget: 3, Base: []scheme.Spec{base}},             // no evaluator
		{Budget: 3, Eval: eval},                            // no base
		{Budget: 0, Eval: eval, Base: []scheme.Spec{base}}, // no budget
	}
	for i, cfg := range cases {
		if _, err := Run(context.Background(), cfg); err == nil {
			t.Errorf("case %d: Run accepted invalid config", i)
		}
	}
}

func TestMutateStaysInRange(t *testing.T) {
	rng := stats.NewRNG(3)
	sp, err := scheme.Parse("faulthound")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		child, ok := mutate(rng, sp, nil)
		if !ok {
			t.Fatal("faulthound should always be mutable")
		}
		if _, err := scheme.Parse(child.String()); err != nil {
			t.Fatalf("mutation produced invalid spec %q: %v", child, err)
		}
		sp = child
	}
}

func TestWithParam(t *testing.T) {
	sp := scheme.FromString("faulthound?delay=6,tcam=16")
	got := withParam(sp, "tcam", "8")
	if got != "faulthound?delay=6,tcam=8" {
		t.Errorf("withParam = %q", got)
	}
	got = withParam(scheme.FromString("faulthound"), "lsq", "off")
	if got != "faulthound?lsq=off" {
		t.Errorf("withParam on bare spec = %q", got)
	}
}

func TestReportArtifacts(t *testing.T) {
	res, _ := runSynthetic(t, 9, 6)
	rep := NewReport("t", []string{"b1"}, Config{Seed: 9, Budget: 6, Weights: DefaultWeights()}, res)
	dir := t.TempDir()
	if err := rep.WriteArtifacts(dir); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(dir + "/" + JSONName)
	if err != nil {
		t.Fatal(err)
	}
	if back.SchemaVersion != SchemaVersion || len(back.Points) != len(rep.Points) {
		t.Errorf("round-trip mismatch: %+v", back)
	}
	csv := string(rep.CSV())
	if !strings.HasPrefix(csv, strings.Join(CSVColumns, ",")+"\n") {
		t.Errorf("csv header wrong:\n%s", csv)
	}
	if strings.Count(csv, "\n") != len(rep.Points)+1 {
		t.Errorf("csv row count wrong:\n%s", csv)
	}
}
