package search

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"faulthound/internal/buildinfo"
)

// SchemaVersion is the pareto artifact contract this package emits
// (internal/contract KindPareto).
const SchemaVersion = "faulthound.pareto/v1"

// Artifact file names inside a run directory.
const (
	CSVName    = "pareto.csv"
	JSONName   = "pareto.json"
	ReportName = "pareto.md"
)

// CSVColumns is the pareto.csv header, in order.
var CSVColumns = []string{
	"spec", "front", "round",
	"coverage", "fp_rate", "energy_overhead", "perf_overhead", "fitness",
}

// Report is the pareto.json artifact: provenance, the search
// configuration that produced the frontier, and the full archive.
// It carries no timestamps — reruns with the same inputs must be
// byte-identical.
type Report struct {
	SchemaVersion string   `json:"schema_version"`
	RunID         string   `json:"run_id"`
	Generator     string   `json:"generator"`
	Seed          uint64   `json:"seed"`
	Budget        int      `json:"budget"`
	Evaluated     int      `json:"evaluated"`
	Rounds        int      `json:"rounds"`
	Benchmarks    []string `json:"benchmarks"`
	Weights       Weights  `json:"weights"`
	Points        []Point  `json:"points"`
}

// NewReport assembles the artifact document for a finished search.
func NewReport(runID string, benchmarks []string, cfg Config, res *Result) *Report {
	return &Report{
		SchemaVersion: SchemaVersion,
		RunID:         runID,
		Generator:     buildinfo.Generator(),
		Seed:          cfg.Seed,
		Budget:        cfg.Budget,
		Evaluated:     res.Evaluated,
		Rounds:        res.Rounds,
		Benchmarks:    benchmarks,
		Weights:       cfg.Weights,
		Points:        res.Points,
	}
}

// Front returns the report's Pareto-front points (the leading run).
func (r *Report) Front() []Point {
	n := 0
	for n < len(r.Points) && r.Points[n].Front {
		n++
	}
	return r.Points[:n]
}

// ftoa is the canonical float encoding shared with the spec syntax.
func ftoa(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// CSV renders the pareto.csv artifact: one row per evaluated point in
// archive order (front first), with the shared canonical float
// encoding so the bytes are reproducible. Fields are RFC 4180-quoted
// by encoding/csv — a parameterized spec contains commas.
func (r *Report) CSV() []byte {
	var b strings.Builder
	w := csv.NewWriter(&b)
	w.Write(CSVColumns)
	for _, p := range r.Points {
		w.Write([]string{
			p.Spec,
			strconv.FormatBool(p.Front),
			strconv.Itoa(p.Round),
			ftoa(p.Coverage),
			ftoa(p.FPRate),
			ftoa(p.EnergyOverhead),
			ftoa(p.PerfOverhead),
			ftoa(p.Fitness),
		})
	}
	w.Flush()
	return []byte(b.String())
}

// JSON renders the stable pareto.json encoding: indented, sorted by
// struct order, trailing newline.
func (r *Report) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Markdown renders the human-readable pareto.md sidecar.
func (r *Report) Markdown() []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "# Pareto search %s\n\n", r.RunID)
	fmt.Fprintf(&b, "- generator: %s\n", r.Generator)
	fmt.Fprintf(&b, "- benchmarks: %s\n", strings.Join(r.Benchmarks, ", "))
	fmt.Fprintf(&b, "- seed: %d, budget: %d, evaluated: %d, rounds: %d\n", r.Seed, r.Budget, r.Evaluated, r.Rounds)
	fmt.Fprintf(&b, "- weights: %s\n\n", r.Weights.String())
	front := r.Front()
	fmt.Fprintf(&b, "## Front (%d non-dominated)\n\n", len(front))
	b.WriteString("| spec | coverage | fp_rate | energy_ovh | perf_ovh | fitness |\n")
	b.WriteString("|---|---|---|---|---|---|\n")
	for _, p := range front {
		fmt.Fprintf(&b, "| `%s` | %.4f | %.6f | %.4f | %.4f | %.4f |\n",
			p.Spec, p.Coverage, p.FPRate, p.EnergyOverhead, p.PerfOverhead, p.Fitness)
	}
	if n := len(r.Points) - len(front); n > 0 {
		fmt.Fprintf(&b, "\n%d dominated configuration(s) omitted — see pareto.csv.\n", n)
	}
	return []byte(b.String())
}

// WriteArtifacts writes pareto.csv, pareto.json, and pareto.md under
// dir, creating it if needed.
func (r *Report) WriteArtifacts(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	jb, err := r.JSON()
	if err != nil {
		return err
	}
	for _, f := range []struct {
		name string
		data []byte
	}{
		{CSVName, r.CSV()},
		{JSONName, jb},
		{ReportName, r.Markdown()},
	} {
		if err := os.WriteFile(filepath.Join(dir, f.name), f.data, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// ReadReport loads a pareto.json document.
func ReadReport(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("search: bad pareto report %s: %w", path, err)
	}
	return &r, nil
}
