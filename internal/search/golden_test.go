package search_test

// End-to-end optimizer determinism: a tiny seeded search over two
// generated benchmarks must produce a non-trivial Pareto front and
// byte-identical pareto.csv for any worker count (the satellite
// acceptance criterion). The golden file under testdata/golden pins
// the artifact bytes; `go test -update-golden` refreshes it.

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"faulthound/internal/harness"
	"faulthound/internal/scheme"
	"faulthound/internal/search"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden artifacts")

// goldenBenches are cheap generated workloads (docs/GENERATED-
// WORKLOADS.md): small segments keep golden preparation fast while
// the stride variant gives the objectives a second data point.
var goldenBenches = []string{"gen?seg=16k", "gen?seg=16k,stride=64"}

func goldenConfig(t *testing.T, workers int) (search.Config, []string) {
	t.Helper()
	o := harness.QuickOptions()
	o.Workers = workers
	o.Fault.Injections = 96
	base, err := scheme.Parse("faulthound?tcam=8")
	if err != nil {
		t.Fatal(err)
	}
	ev := o.NewEvaluator(nil, nil)
	cfg := search.Config{
		Seed:    7,
		Budget:  6,
		PopSize: 3,
		Weights: search.DefaultWeights(),
		Base:    []scheme.Spec{base},
		Params:  []string{"tcam", "delay", "loosen"},
		Eval:    harness.NewSearchEval(ev, goldenBenches),
	}
	return cfg, goldenBenches
}

func runGolden(t *testing.T, workers int) *search.Report {
	t.Helper()
	cfg, benches := goldenConfig(t, workers)
	res, err := search.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return search.NewReport("golden", benches, cfg, res)
}

func TestGoldenParetoDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end search in -short mode")
	}
	rep := runGolden(t, 1)

	if len(rep.Points) == 0 {
		t.Fatal("search evaluated nothing")
	}
	front := rep.Front()
	if len(front) < 2 {
		t.Fatalf("Pareto front has %d member(s), want >= 2:\n%s", len(front), rep.CSV())
	}

	csv := rep.CSV()
	golden := filepath.Join("testdata", "golden", "pareto.csv")
	if *updateGolden {
		jb, err := rep.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, csv, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join("testdata", "golden", "pareto.json"), jb, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run go test ./internal/search -update-golden): %v", err)
	}
	if string(csv) != string(want) {
		t.Errorf("pareto.csv drifted from golden:\n got:\n%s\nwant:\n%s", csv, want)
	}

	// Worker-count independence: the execute layer is bit-identical for
	// any pool size, so the whole search must be too.
	rep4 := runGolden(t, 4)
	if string(rep4.CSV()) != string(csv) {
		t.Errorf("pareto.csv differs between -workers 1 and 4:\n w1:\n%s\n w4:\n%s", csv, rep4.CSV())
	}
}
