package search

import (
	"math"
	"sort"
	"strconv"
	"strings"

	"faulthound/internal/scheme"
	"faulthound/internal/stats"
)

// propose generates up to want novel children by mutating the parents
// round-robin. Every draw comes from rng in a fixed order, so the
// proposal stream is a pure function of the seed and the archive
// state. Parents whose schemes declare no mutable parameter simply
// never produce children.
func propose(rng *stats.RNG, parents []Point, allow []string, seen map[string]bool, want int) []scheme.Spec {
	var out []scheme.Spec
	if want <= 0 || len(parents) == 0 {
		return out
	}
	pending := make(map[string]bool)
	// Bounded attempts: mutation is cheap, evaluation is not, so spend
	// a generous number of draws hunting for unseen children before
	// declaring the neighbourhood exhausted.
	attempts := 32 * want
	for i := 0; len(out) < want && i < attempts; i++ {
		parent := parents[i%len(parents)]
		child, ok := mutate(rng, scheme.FromString(parent.Spec), allow)
		if !ok {
			continue
		}
		key := child.String()
		if key == parent.Spec || seen[key] || pending[key] {
			continue
		}
		pending[key] = true
		out = append(out, child)
	}
	return out
}

// mutate perturbs one randomly chosen parameter of sp, returning the
// canonicalized child. ok is false when the scheme declares no mutable
// parameter or the perturbed spec fails validation.
func mutate(rng *stats.RNG, sp scheme.Spec, allow []string) (scheme.Spec, bool) {
	sc, found := scheme.Lookup(sp.Name)
	if !found {
		return scheme.Spec{}, false
	}
	var params []scheme.Param
	for _, p := range sc.Params {
		if !mutableKind(p.Kind) {
			continue
		}
		if len(allow) > 0 && !contains(allow, p.Name) {
			continue
		}
		params = append(params, p)
	}
	if len(params) == 0 {
		return scheme.Spec{}, false
	}
	p := params[rng.Intn(len(params))]

	vals, err := scheme.ValuesOf(sp)
	if err != nil {
		return scheme.Spec{}, false
	}
	var raw string
	switch p.Kind {
	case scheme.Int:
		raw = strconv.Itoa(mutateInt(rng, vals.Int(p.Name), p))
	case scheme.Float:
		raw = strconv.FormatFloat(mutateFloat(rng, vals.Float(p.Name), p), 'g', -1, 64)
	case scheme.Bool:
		if vals.Bool(p.Name) {
			raw = "off"
		} else {
			raw = "on"
		}
	default:
		return scheme.Spec{}, false
	}

	child, err := scheme.Parse(withParam(sp, p.Name, raw))
	if err != nil {
		return scheme.Spec{}, false
	}
	return child, true
}

// mutableKind reports whether the search perturbs parameters of this
// kind. Size and Str parameters (segment sizes, labels) are skipped:
// their value spaces are either workload-shaped or unordered.
func mutableKind(k scheme.Kind) bool {
	return k == scheme.Int || k == scheme.Float || k == scheme.Bool
}

// mutateInt perturbs an integer parameter: halve, double, or step by
// one, clamped to [Min, 8×max(default, 1)] so the search stays in a
// plausible hardware range.
func mutateInt(rng *stats.RNG, n int, p scheme.Param) int {
	def, _ := strconv.Atoi(p.Default)
	hi := 8 * max(def, 1)
	var m int
	switch rng.Intn(4) {
	case 0:
		m = n / 2
	case 1:
		m = n * 2
	case 2:
		m = n + 1
	default:
		m = n - 1
	}
	return min(max(m, p.Min), hi)
}

// mutateFloat perturbs a float parameter: scale by ½ or 2, or step by
// ±0.1, clamped to [0, 1] for fraction-like parameters (default ≤ 1)
// and [0, 8×default] otherwise. Values are rounded to 4 decimals so
// canonical encodings stay readable.
func mutateFloat(rng *stats.RNG, f float64, p scheme.Param) float64 {
	def, _ := strconv.ParseFloat(p.Default, 64)
	hi := 1.0
	if def > 1 {
		hi = 8 * def
	}
	var m float64
	switch rng.Intn(4) {
	case 0:
		m = f * 0.5
	case 1:
		m = f * 2
	case 2:
		m = f + 0.1
	default:
		m = f - 0.1
	}
	m = math.Round(m*1e4) / 1e4
	return math.Min(math.Max(m, 0), hi)
}

// withParam renders sp with one parameter overridden, ready for
// scheme.Parse to canonicalize (re-encode, sort, elide defaults).
func withParam(sp scheme.Spec, name, raw string) string {
	set := map[string]string{}
	if sp.Query != "" {
		for _, tok := range strings.Split(sp.Query, ",") {
			if k, v, ok := strings.Cut(tok, "="); ok {
				set[k] = v
			}
		}
	}
	set[name] = raw
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	pairs := make([]string, len(keys))
	for i, k := range keys {
		pairs[i] = k + "=" + set[k]
	}
	return sp.Name + "?" + strings.Join(pairs, ",")
}

// contains reports whether list holds s.
func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}
