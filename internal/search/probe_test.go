package search_test

import (
	"context"
	"fmt"
	"testing"

	"faulthound/internal/harness"
	"faulthound/internal/scheme"
)

func TestProbeGrid(t *testing.T) {
	t.Skip("manual probe")
	o := harness.QuickOptions()
	o.Fault.Injections = 96
	benches := []string{"gen?seg=16k", "gen?seg=16k,stride=64"}
	ev := o.NewEvaluator(nil, nil)
	eval := harness.NewSearchEval(ev, benches)
	var specs []scheme.Spec
	for _, s := range []string{
		"faulthound?tcam=2", "faulthound?tcam=4", "faulthound?tcam=8",
		"faulthound?tcam=16", "faulthound?tcam=32", "faulthound?tcam=64",
		"faulthound?loosen=2", "faulthound?loosen=8",
		"faulthound?delay=0", "faulthound?delay=3", "faulthound?delay=14",
		"faulthound?lsq=off", "faulthound?2level=off", "faulthound?squash=off",
	} {
		sp, err := scheme.Parse(s)
		if err != nil {
			t.Fatal(err)
		}
		specs = append(specs, sp)
	}
	ms, err := eval(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	for i, sp := range specs {
		fmt.Printf("%-28s cov=%.4f fp=%.5f en=%.4f perf=%.4f\n",
			sp, ms[i].Coverage, ms[i].FPRate, ms[i].EnergyOverhead, ms[i].PerfOverhead)
	}
}
