// Package metrics is a minimal Prometheus-text-format registry shared
// by the whole stack: counters, gauges, and histograms, optionally
// labeled, rendered deterministically (families sorted by name, series
// by label string) so /metrics output is stable and testable. It is
// stdlib-only by design — the repo bakes in no dependencies — and
// implements just the exposition-format subset the daemon and CLIs
// need. internal/server/metrics aliases this package for backwards
// compatibility.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Value is one metric series: a float64 updated atomically. Counters
// and gauges share the representation; the family's type only changes
// how it is rendered and which mutators are idiomatic.
type Value struct {
	bits atomic.Uint64
}

// Add increments the series by d.
func (v *Value) Add(d float64) {
	for {
		old := v.bits.Load()
		cur := math.Float64frombits(old)
		if v.bits.CompareAndSwap(old, math.Float64bits(cur+d)) {
			return
		}
	}
}

// Inc increments the series by one.
func (v *Value) Inc() { v.Add(1) }

// Set replaces the series value (gauge semantics).
func (v *Value) Set(f float64) { v.bits.Store(math.Float64bits(f)) }

// Get returns the current value.
func (v *Value) Get() float64 { return math.Float64frombits(v.bits.Load()) }

// Histogram is one histogram series: cumulative buckets rendered as
// name_bucket{le="..."} lines plus name_sum and name_count. All
// mutators are atomic; Observe is safe for concurrent use. Beyond the
// exposition format the histogram tracks the exact observed maximum,
// so end-of-run summaries (p50/p95/max) come from the same data the
// daemon exports.
type Histogram struct {
	bounds  []float64 // upper bounds, ascending, excluding +Inf
	labels  map[string]string
	counts  []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	count   atomic.Uint64
	sum     Value
	maxBits atomic.Uint64 // float bits of the observed maximum
}

// NewHistogram returns a standalone histogram with the given ascending
// upper bounds (the +Inf bucket is implicit). Standalone histograms
// back CLI-side summaries; registry-owned ones render on /metrics.
func NewHistogram(bounds []float64) *Histogram {
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
	sort.Float64s(h.bounds)
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v: le is inclusive
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		old := h.maxBits.Load()
		if v <= math.Float64frombits(old) {
			return
		}
		if h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return h.sum.Get() }

// Max returns the exact observed maximum (0 with no observations).
func (h *Histogram) Max() float64 {
	if h.count.Load() == 0 {
		return 0
	}
	return math.Float64frombits(h.maxBits.Load())
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear
// interpolation within the owning bucket, the standard Prometheus
// histogram_quantile estimate. Observations in the +Inf bucket clamp
// to the observed maximum. Returns 0 with no observations.
func (h *Histogram) Quantile(q float64) float64 {
	total := float64(h.count.Load())
	if total == 0 {
		return 0
	}
	rank := q * total
	cum, lower := 0.0, 0.0
	for i, b := range h.bounds {
		c := float64(h.counts[i].Load())
		if cum+c >= rank && c > 0 {
			est := lower + (b-lower)*(rank-cum)/c
			if max := h.Max(); est > max {
				return max
			}
			return est
		}
		cum += c
		lower = b
	}
	return h.Max()
}

// ExpBuckets returns n exponentially spaced upper bounds: start,
// start*factor, start*factor², …
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	b := start
	for i := range out {
		out[i] = b
		b *= factor
	}
	return out
}

// family is one metric name: its TYPE/HELP metadata and all label
// series under it.
type family struct {
	typ    string // "counter" | "gauge" | "histogram"
	help   string
	series map[string]*Value     // keyed by rendered label string ("" = unlabeled)
	hists  map[string]*Histogram // histogram families only
}

// Registry holds metric families.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter returns (creating if needed) the unlabeled counter name.
func (r *Registry) Counter(name, help string) *Value {
	return r.get(name, "counter", help, nil)
}

// Gauge returns (creating if needed) the unlabeled gauge name.
func (r *Registry) Gauge(name, help string) *Value {
	return r.get(name, "gauge", help, nil)
}

// GaugeWith returns (creating if needed) the labeled gauge series.
func (r *Registry) GaugeWith(name, help string, labels map[string]string) *Value {
	return r.get(name, "gauge", help, labels)
}

// CounterWith returns (creating if needed) the labeled counter series.
func (r *Registry) CounterWith(name, help string, labels map[string]string) *Value {
	return r.get(name, "counter", help, labels)
}

// Histogram returns (creating if needed) the unlabeled histogram name.
// bounds only takes effect at creation; later calls reuse the family's
// existing buckets.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	return r.getHist(name, help, bounds, nil)
}

// HistogramWith returns (creating if needed) the labeled histogram
// series. Creating a labeled series eagerly — before any observation —
// makes its zero-count buckets visible on /metrics, so scrapers see
// the family as soon as the work it measures is scheduled.
func (r *Registry) HistogramWith(name, help string, bounds []float64, labels map[string]string) *Histogram {
	return r.getHist(name, help, bounds, labels)
}

func (r *Registry) get(name, typ, help string, labels map[string]string) *Value {
	key := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{typ: typ, help: help, series: make(map[string]*Value)}
		r.families[name] = f
	}
	v := f.series[key]
	if v == nil {
		v = &Value{}
		f.series[key] = v
	}
	return v
}

func (r *Registry) getHist(name, help string, bounds []float64, labels map[string]string) *Histogram {
	key := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{typ: "histogram", help: help, hists: make(map[string]*Histogram)}
		r.families[name] = f
	}
	h := f.hists[key]
	if h == nil {
		h = NewHistogram(bounds)
		if labels != nil {
			h.labels = make(map[string]string, len(labels))
			for k, v := range labels {
				h.labels[k] = v
			}
		}
		f.hists[key] = h
	}
	return h
}

// renderLabels produces the canonical {k="v",...} suffix, keys sorted,
// values escaped per the exposition format ("" for no labels).
func renderLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			sb.WriteByte(',')
		}
		esc := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(labels[k])
		fmt.Fprintf(&sb, `%s="%s"`, k, esc)
	}
	sb.WriteByte('}')
	return sb.String()
}

// renderLabelsLE merges le into the series labels (histogram bucket
// lines carry both).
func renderLabelsLE(labels map[string]string, le string) string {
	merged := make(map[string]string, len(labels)+1)
	for k, v := range labels {
		merged[k] = v
	}
	merged["le"] = le
	return renderLabels(merged)
}

// formatFloat renders a sample value the way Prometheus clients do.
func formatFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// WriteText renders the registry in the Prometheus text exposition
// format, deterministically ordered: families sorted by name, series
// by label string, histogram buckets by bound.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	var out strings.Builder
	for _, n := range names {
		f := r.families[n]
		if f.help != "" {
			fmt.Fprintf(&out, "# HELP %s %s\n", n, f.help)
		}
		fmt.Fprintf(&out, "# TYPE %s %s\n", n, f.typ)
		if f.typ == "histogram" {
			keys := make([]string, 0, len(f.hists))
			for k := range f.hists {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				h := f.hists[k]
				var cum uint64
				for i, b := range h.bounds {
					cum += h.counts[i].Load()
					fmt.Fprintf(&out, "%s_bucket%s %d\n", n, renderLabelsLE(h.labels, formatFloat(b)), cum)
				}
				cum += h.counts[len(h.bounds)].Load()
				fmt.Fprintf(&out, "%s_bucket%s %d\n", n, renderLabelsLE(h.labels, "+Inf"), cum)
				fmt.Fprintf(&out, "%s_sum%s %s\n", n, k, formatFloat(h.Sum()))
				fmt.Fprintf(&out, "%s_count%s %d\n", n, k, cum)
			}
			continue
		}
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&out, "%s%s %s\n", n, k, formatFloat(f.series[k].Get()))
		}
	}
	r.mu.Unlock()
	_, err := io.WriteString(w, out.String())
	return err
}
