package metrics

import (
	"math"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"
)

func TestRegistryText(t *testing.T) {
	r := NewRegistry()
	r.Counter("fh_jobs_done_total", "Completed jobs.").Add(3)
	r.Gauge("fh_jobs_running", "Running jobs.").Set(2)
	r.GaugeWith("fh_fp_rate", "Per-cell FP rate.", map[string]string{"scheme": "faulthound", "bench": "mcf"}).Set(0.25)
	r.GaugeWith("fh_fp_rate", "Per-cell FP rate.", map[string]string{"scheme": "baseline", "bench": "mcf"}).Set(0)

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := `# HELP fh_fp_rate Per-cell FP rate.
# TYPE fh_fp_rate gauge
fh_fp_rate{bench="mcf",scheme="baseline"} 0
fh_fp_rate{bench="mcf",scheme="faulthound"} 0.25
# HELP fh_jobs_done_total Completed jobs.
# TYPE fh_jobs_done_total counter
fh_jobs_done_total 3
# HELP fh_jobs_running Running jobs.
# TYPE fh_jobs_running gauge
fh_jobs_running 2
`
	if got != want {
		t.Fatalf("WriteText:\n%s\nwant:\n%s", got, want)
	}
}

func TestSeriesIdentityAndConcurrency(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c_total", "")
	if b := r.Counter("c_total", ""); a != b {
		t.Fatal("same name resolved to distinct series")
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				a.Inc()
			}
		}()
	}
	wg.Wait()
	if got := a.Get(); got != 8000 {
		t.Fatalf("counter = %v, want 8000", got)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.GaugeWith("g", "", map[string]string{"k": `a"b\c`}).Set(1)
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `g{k="a\"b\\c"} 1`) {
		t.Fatalf("escaping wrong:\n%s", sb.String())
	}
}

func TestHistogramText(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "Latency.", []float64{0.5, 1, 10})
	for _, v := range []float64{0.25, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP lat_seconds Latency.
# TYPE lat_seconds histogram
lat_seconds_bucket{le="0.5"} 3
lat_seconds_bucket{le="1"} 3
lat_seconds_bucket{le="10"} 4
lat_seconds_bucket{le="+Inf"} 5
lat_seconds_sum 56.25
lat_seconds_count 5
`
	if got := sb.String(); got != want {
		t.Fatalf("histogram text:\n%s\nwant:\n%s", got, want)
	}
}

func TestHistogramLabeled(t *testing.T) {
	r := NewRegistry()
	a := r.HistogramWith("inj_seconds", "Per-injection wall time.", []float64{1, 2}, map[string]string{"bench": "mcf"})
	// Eagerly created series render zero-count buckets before any
	// observation — the daemon relies on this for scrape visibility.
	r.HistogramWith("inj_seconds", "Per-injection wall time.", []float64{1, 2}, map[string]string{"bench": "bzip2"})
	a.Observe(1.5)
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	for _, want := range []string{
		`inj_seconds_bucket{bench="bzip2",le="+Inf"} 0`,
		`inj_seconds_count{bench="bzip2"} 0`,
		`inj_seconds_bucket{bench="mcf",le="1"} 0`,
		`inj_seconds_bucket{bench="mcf",le="2"} 1`,
		`inj_seconds_bucket{bench="mcf",le="+Inf"} 1`,
		`inj_seconds_sum{bench="mcf"} 1.5`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("missing %q in:\n%s", want, got)
		}
	}
}

func TestHistogramQuantileAndMax(t *testing.T) {
	h := NewHistogram(ExpBuckets(1, 2, 10)) // 1..512
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	if got := h.Count(); got != 100 {
		t.Fatalf("count = %d", got)
	}
	if got := h.Max(); got != 100 {
		t.Fatalf("max = %v", got)
	}
	p50 := h.Quantile(0.5)
	if p50 < 32 || p50 > 64 {
		t.Fatalf("p50 = %v, want within owning bucket (32, 64]", p50)
	}
	p95 := h.Quantile(0.95)
	if p95 < 64 || p95 > 100 {
		t.Fatalf("p95 = %v, want within (64, 100]", p95)
	}
	if got := h.Quantile(1); got > h.Max() {
		t.Fatalf("q1 = %v exceeds max %v", got, h.Max())
	}
	empty := NewHistogram([]float64{1})
	if empty.Quantile(0.5) != 0 || empty.Max() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestHistogramConcurrency(t *testing.T) {
	h := NewHistogram([]float64{10, 100})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(float64(w*i) / 7)
			}
		}(w)
	}
	wg.Wait()
	if got := h.Count(); got != 8000 {
		t.Fatalf("count = %d, want 8000", got)
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
	}
	if cum != 8000 {
		t.Fatalf("bucket sum = %d, want 8000", cum)
	}
	if math.IsInf(h.Max(), -1) {
		t.Fatal("max never updated")
	}
}

// TestExpositionSortedParseable pins the rendering contract the
// /metrics endpoint depends on: every line parses as a comment or a
// sample, families appear in sorted name order, labels within a sample
// are sorted, and sample values are valid floats.
func TestExpositionSortedParseable(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_total", "Last family.").Inc()
	r.GaugeWith("aa_gauge", "First family.", map[string]string{"z": "1", "a": "2"}).Set(3)
	r.HistogramWith("mm_seconds", "Middle family.", []float64{0.5, 5}, map[string]string{"bench": "mcf", "scheme": "fh"}).Observe(0.7)
	r.Histogram("mm2_seconds", "Unlabeled histogram.", []float64{1}).Observe(2)

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	validateExposition(t, sb.String())
}

var sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^}]*)\})? (-?[0-9.eE+-]+|NaN|[+-]Inf)$`)

// validateExposition is a miniature parser for the Prometheus text
// format: it fails the test on any malformed line, unsorted family, or
// unsorted label set.
func validateExposition(t *testing.T, text string) {
	t.Helper()
	var lastFamily string
	for _, line := range strings.Split(strings.TrimSuffix(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) < 3 {
				t.Fatalf("malformed comment line %q", line)
			}
			if parts[1] == "TYPE" {
				if parts[2] < lastFamily {
					t.Errorf("family %q out of order after %q", parts[2], lastFamily)
				}
				lastFamily = parts[2]
			}
			continue
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("unparseable sample line %q", line)
		}
		if !strings.HasPrefix(m[1], lastFamily) {
			t.Errorf("sample %q does not belong to family %q", m[1], lastFamily)
		}
		if m[3] != "" {
			var keys []string
			for _, kv := range strings.Split(m[3], ",") {
				k, _, ok := strings.Cut(kv, "=")
				if !ok {
					t.Fatalf("malformed label %q in %q", kv, line)
				}
				keys = append(keys, k)
			}
			if !sort.StringsAreSorted(keys) {
				t.Errorf("labels not sorted in %q", line)
			}
		}
	}
}
