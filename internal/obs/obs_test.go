package obs_test

import (
	"testing"
	"time"

	"faulthound/internal/obs"
)

func TestTeeAndWithTrack(t *testing.T) {
	var a, b obs.Collector
	sink := obs.Tee(&a, nil, &b)
	if sink == nil {
		t.Fatal("Tee dropped non-nil sinks")
	}
	tracked := obs.WithTrack(sink, 7)
	obs.Instant(tracked, "inject", 42, "regfile")
	began := obs.Begin(tracked, "injection", "bzip2/faulthound")
	obs.End(tracked, "injection", began, "masked")

	for _, c := range []*obs.Collector{&a, &b} {
		evs := c.Events()
		if len(evs) != 3 {
			t.Fatalf("got %d events, want 3", len(evs))
		}
		for _, e := range evs {
			if e.Track != 7 {
				t.Errorf("event %s track = %d, want 7", e.Name, e.Track)
			}
			if e.Wall.IsZero() {
				t.Errorf("event %s has no wall stamp", e.Name)
			}
		}
		if evs[0].Kind != obs.KindInstant || evs[0].Cycle != 42 {
			t.Errorf("instant malformed: %+v", evs[0])
		}
		if evs[2].Kind != obs.KindEnd || evs[2].Dur < 0 {
			t.Errorf("end malformed: %+v", evs[2])
		}
	}

	if obs.Tee(nil, nil) != nil {
		t.Fatal("Tee of nils should be nil")
	}
	if obs.WithTrack(nil, 3) != nil {
		t.Fatal("WithTrack(nil) should be nil")
	}
}

func TestCollectorConcurrent(t *testing.T) {
	var c obs.Collector
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			s := obs.WithTrack(&c, w)
			for i := 0; i < 100; i++ {
				obs.Instant(s, "tick", uint64(i), "")
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		<-done
	}
	if got := len(c.Events()); got != 400 {
		t.Fatalf("collected %d events, want 400", got)
	}
}

func TestEndMeasuresDuration(t *testing.T) {
	var c obs.Collector
	began := obs.Begin(&c, "span", "")
	time.Sleep(2 * time.Millisecond)
	obs.End(&c, "span", began, "done")
	evs := c.Events()
	if evs[1].Dur < time.Millisecond {
		t.Fatalf("span duration %v implausibly short", evs[1].Dur)
	}
}
