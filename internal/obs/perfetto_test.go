package obs_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"faulthound/internal/harness"
	"faulthound/internal/obs"
	"faulthound/internal/pipeline"
	"faulthound/internal/workload"
)

var update = flag.Bool("update", false, "rewrite golden files")

// chromeTrace mirrors the trace-event JSON shape for validation.
type chromeTrace struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		TS   float64        `json:"ts"`
		PID  int            `json:"pid"`
		TID  int            `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

// validateTrace decodes a trace-event JSON blob and checks the
// structural invariants Perfetto's importer relies on: monotonic
// timestamps and, per track, matched B/E nesting.
func validateTrace(t *testing.T, raw []byte) chromeTrace {
	t.Helper()
	var tr chromeTrace
	if err := json.Unmarshal(raw, &tr); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(tr.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	lastTS := -1.0
	open := make(map[int][]string) // per-track span stack
	for i, ev := range tr.TraceEvents {
		switch ev.Ph {
		case "M":
			continue // metadata carries no timestamp
		case "B":
			open[ev.TID] = append(open[ev.TID], ev.Name)
		case "E":
			stack := open[ev.TID]
			if len(stack) == 0 || stack[len(stack)-1] != ev.Name {
				t.Fatalf("event %d: E %q on track %d does not match open span stack %v", i, ev.Name, ev.TID, stack)
			}
			open[ev.TID] = stack[:len(stack)-1]
		case "i", "X":
		default:
			t.Fatalf("event %d: unexpected phase %q", i, ev.Ph)
		}
		if ev.TS < lastTS {
			t.Fatalf("event %d (%s): ts %v went backwards from %v", i, ev.Name, ev.TS, lastTS)
		}
		lastTS = ev.TS
	}
	for tid, stack := range open {
		if len(stack) != 0 {
			t.Errorf("track %d has unclosed spans %v", tid, stack)
		}
	}
	return tr
}

// TestPerfettoLifecycleTrace drives the exporter with a synthetic
// injection lifecycle across two concurrent tracks and validates the
// emitted JSON end to end.
func TestPerfettoLifecycleTrace(t *testing.T) {
	p := obs.NewPerfetto()
	p.NameTrack(0, "worker-0")
	p.NameTrack(1, "worker-1")
	for w := 0; w < 2; w++ {
		s := obs.WithTrack(obs.Sink(p), w)
		for i := 0; i < 3; i++ {
			began := obs.Begin(s, "injection", "bzip2/faulthound")
			obs.Instant(s, "inject", uint64(100_000+i), "regfile")
			obs.Instant(s, "replay", uint64(100_010+i), "")
			obs.End(s, "injection", began, "masked")
		}
	}
	var buf bytes.Buffer
	if _, err := p.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	tr := validateTrace(t, buf.Bytes())

	var begins, ends, instants, meta int
	for _, ev := range tr.TraceEvents {
		switch ev.Ph {
		case "B":
			begins++
		case "E":
			ends++
		case "i":
			instants++
		case "M":
			meta++
		}
	}
	if begins != 6 || ends != 6 || instants != 12 || meta != 2 {
		t.Fatalf("B/E/i/M = %d/%d/%d/%d, want 6/6/12/2", begins, ends, instants, meta)
	}
}

// TestPerfettoPipelineGolden is the fhsim -trace path in miniature: a
// short deterministic simulation traced through the Perfetto exporter
// must reproduce the committed golden file byte for byte (regenerate
// with go test ./internal/obs/ -run Golden -update).
func TestPerfettoPipelineGolden(t *testing.T) {
	bm, err := workload.Get("bzip2")
	if err != nil {
		t.Fatal(err)
	}
	opts := harness.QuickOptions()
	c, err := opts.BuildCore(bm, harness.FaultHound, 2)
	if err != nil {
		t.Fatal(err)
	}
	p := obs.NewPerfetto()
	p.NameTrack(0, "smt-0")
	p.NameTrack(1, "smt-1")
	c.SetTracer(p.PipelineTracer(pipeline.TraceCommit, pipeline.TraceSquash,
		pipeline.TraceReplay, pipeline.TraceRollback, pipeline.TraceSingleton))
	for i := 0; i < 1500 && !c.AllHalted(); i++ {
		c.Step()
	}
	var buf bytes.Buffer
	if _, err := p.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	validateTrace(t, buf.Bytes())

	golden := filepath.Join("testdata", "pipeline_trace.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("trace differs from golden file %s (regenerate with -update if the change is intended); got %d bytes, want %d",
			golden, buf.Len(), len(want))
	}
}

// TestTracerOrderingAcrossThreads pins the Tracer contract fhsim and
// the exporter rely on: events from a multithreaded core arrive in
// cycle order (the simulation loop is single-threaded), and each SMT
// thread's commit stream has strictly increasing sequence numbers.
func TestTracerOrderingAcrossThreads(t *testing.T) {
	bm, err := workload.Get("mcf")
	if err != nil {
		t.Fatal(err)
	}
	opts := harness.QuickOptions()
	c, err := opts.BuildCore(bm, harness.Baseline, 2)
	if err != nil {
		t.Fatal(err)
	}
	var evs []pipeline.TraceEvent
	c.SetTracer(funcTracer(func(ev pipeline.TraceEvent) { evs = append(evs, ev) }))
	for i := 0; i < 500 && !c.AllHalted(); i++ {
		c.Step()
	}
	if len(evs) == 0 {
		t.Fatal("no trace events")
	}
	var lastCycle uint64
	lastSeq := map[int]uint64{}
	threads := map[int]bool{}
	for i, ev := range evs {
		if ev.Cycle < lastCycle {
			t.Fatalf("event %d: cycle %d after %d", i, ev.Cycle, lastCycle)
		}
		lastCycle = ev.Cycle
		threads[ev.Thread] = true
		if ev.Stage == pipeline.TraceCommit {
			if last, ok := lastSeq[ev.Thread]; ok && ev.Seq <= last {
				t.Fatalf("thread %d committed seq %d after %d", ev.Thread, ev.Seq, last)
			}
			lastSeq[ev.Thread] = ev.Seq
		}
	}
	if len(threads) < 2 {
		t.Fatalf("trace covers %d thread(s), want both SMT contexts", len(threads))
	}
}

type funcTracer func(pipeline.TraceEvent)

func (f funcTracer) Trace(ev pipeline.TraceEvent) { f(ev) }
