package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"

	"faulthound/internal/pipeline"
)

// Perfetto accumulates events in the Chrome trace-event JSON format,
// which ui.perfetto.dev (and chrome://tracing) load directly. It is
// both an obs.Sink (injection-lifecycle events on the wall clock) and
// a pipeline.Tracer (per-cycle pipeline events on the simulated
// clock), so a single exporter serves fhsim pipeline traces and
// fhcampaign lifecycle traces.
//
// Timestamps: trace-event ts is microseconds. Lifecycle events map
// wall time relative to the writer's epoch; pipeline events map one
// simulated cycle to one microsecond, which renders cycle-accurate
// timelines in the UI. The two domains should not be mixed in one
// file.
type Perfetto struct {
	mu    sync.Mutex
	epoch time.Time
	evs   []chromeEvent
	names map[int]string // track (tid) display names
}

// NewPerfetto returns an empty trace whose wall epoch is now.
func NewPerfetto() *Perfetto {
	return &Perfetto{epoch: time.Now(), names: make(map[int]string)}
}

// chromeEvent is one element of the traceEvents array.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// NameTrack sets the display name of a track (a worker or SMT
// thread); it renders as a thread_name metadata event.
func (p *Perfetto) NameTrack(track int, name string) {
	p.mu.Lock()
	p.names[track] = name
	p.mu.Unlock()
}

// Event implements Sink: lifecycle events on the wall-clock timeline.
func (p *Perfetto) Event(e Event) {
	ce := chromeEvent{Name: e.Name, TID: e.Track}
	if !e.Wall.IsZero() {
		ce.TS = float64(e.Wall.Sub(p.epoch).Nanoseconds()) / 1e3
	} else {
		ce.TS = float64(e.Cycle)
	}
	switch e.Kind {
	case KindBegin:
		ce.Ph = "B"
	case KindEnd:
		ce.Ph = "E"
	default:
		ce.Ph = "i"
		ce.S = "t"
	}
	if e.Arg != "" || e.Cycle != 0 {
		ce.Args = make(map[string]any, 2)
		if e.Arg != "" {
			ce.Args["arg"] = e.Arg
		}
		if e.Cycle != 0 {
			ce.Args["cycle"] = e.Cycle
		}
	}
	p.mu.Lock()
	p.evs = append(p.evs, ce)
	p.mu.Unlock()
}

// Trace implements pipeline.Tracer: every pipeline event becomes an
// instant on its thread's track at ts = cycle.
func (p *Perfetto) Trace(ev pipeline.TraceEvent) {
	ce := chromeEvent{
		Name: ev.Stage.String(),
		Ph:   "i",
		S:    "t",
		TS:   float64(ev.Cycle),
		TID:  ev.Thread,
		Args: map[string]any{"pc": ev.PC, "seq": ev.Seq},
	}
	if ev.Detail != "" {
		ce.Args["detail"] = ev.Detail
	}
	p.mu.Lock()
	p.evs = append(p.evs, ce)
	p.mu.Unlock()
}

// PipelineTracer returns a stage-filtered pipeline.Tracer view of the
// writer (no stages means everything), mirroring
// pipeline.WriterTracer's filter.
func (p *Perfetto) PipelineTracer(stages ...pipeline.TraceStage) pipeline.Tracer {
	if len(stages) == 0 {
		return p
	}
	filter := make(map[pipeline.TraceStage]bool, len(stages))
	for _, s := range stages {
		filter[s] = true
	}
	return filteredTracer{p: p, stages: filter}
}

type filteredTracer struct {
	p      *Perfetto
	stages map[pipeline.TraceStage]bool
}

// Trace implements pipeline.Tracer.
func (f filteredTracer) Trace(ev pipeline.TraceEvent) {
	if f.stages[ev.Stage] {
		f.p.Trace(ev)
	}
}

// Len reports the number of buffered events.
func (p *Perfetto) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.evs)
}

// WriteTo renders the trace as one JSON object. Events are stably
// sorted by timestamp, which preserves per-track emission order (each
// track emits monotonically) while giving the file a single monotonic
// timeline.
func (p *Perfetto) WriteTo(w io.Writer) (int64, error) {
	p.mu.Lock()
	evs := append([]chromeEvent(nil), p.evs...)
	tracks := make([]int, 0, len(p.names))
	for track := range p.names {
		tracks = append(tracks, track)
	}
	sort.Ints(tracks)
	for _, track := range tracks {
		evs = append(evs, chromeEvent{
			Name: "thread_name",
			Ph:   "M",
			TID:  track,
			Args: map[string]any{"name": p.names[track]},
		})
	}
	p.mu.Unlock()
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].Ph == "M" || evs[j].Ph == "M" {
			return evs[i].Ph == "M" && evs[j].Ph != "M" // metadata first
		}
		return evs[i].TS < evs[j].TS
	})
	out := struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{TraceEvents: evs}
	b, err := json.MarshalIndent(out, "", " ")
	if err != nil {
		return 0, err
	}
	b = append(b, '\n')
	n, err := w.Write(b)
	return int64(n), err
}

// WriteFile writes the trace to path.
func (p *Perfetto) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := p.WriteTo(f); err != nil {
		f.Close()
		return fmt.Errorf("obs: writing trace %s: %w", path, err)
	}
	return f.Close()
}
