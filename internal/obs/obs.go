// Package obs is the zero-dependency observability layer threaded
// through the FaultHound stack: structured injection-lifecycle events
// (span begin/end around golden-run preparation and each faulty run,
// instants for the injection itself and every detector action), a
// pluggable Sink interface, and a Perfetto/Chrome trace-event JSON
// exporter that also consumes pipeline.TraceEvent — so one fhsim or
// fhcampaign invocation produces a file loadable in ui.perfetto.dev.
//
// Everything is opt-in and nil-safe by convention: producers
// (fault.RunOneObs, campaign.Engine) skip all instrumentation when
// their sink is nil, keeping the disabled path free. Sinks must be
// safe for concurrent use; the campaign engine stamps each event with
// the emitting worker's index as Track. See docs/OBSERVABILITY.md for
// the event vocabulary.
package obs

import (
	"sync"
	"time"
)

// Kind classifies an event: a span boundary or a point event.
type Kind uint8

// Event kinds.
const (
	// KindBegin opens a span on the event's track.
	KindBegin Kind = iota
	// KindEnd closes the innermost open span of the same Name on the
	// event's track; Dur carries the span's measured duration.
	KindEnd
	// KindInstant is a point event (an injection, a detector action).
	KindInstant
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindBegin:
		return "begin"
	case KindEnd:
		return "end"
	case KindInstant:
		return "instant"
	}
	return "?"
}

// Event is one structured observability event. Wall is always stamped
// at emission; Cycle carries the simulated-clock position when the
// event originates inside a faulty run (0 otherwise). Arg is a small
// free-form detail: the campaign cell on spans, the injected structure
// on "inject" instants, the outcome on "injection" End events.
type Event struct {
	Kind  Kind
	Name  string
	Track int
	Wall  time.Time
	// Dur is the span duration, set on KindEnd events only.
	Dur time.Duration
	// Cycle is the simulated cycle of in-run events.
	Cycle uint64
	Arg   string
}

// Sink receives events. Implementations must be safe for concurrent
// use: campaign workers emit from multiple goroutines.
type Sink interface {
	Event(Event)
}

// Begin emits a span-begin event and returns its wall stamp for the
// matching End call. A nil sink is a no-op, so producers need no guard
// around straight-line span emission.
func Begin(s Sink, name, arg string) time.Time {
	now := time.Now()
	if s != nil {
		s.Event(Event{Kind: KindBegin, Name: name, Wall: now, Arg: arg})
	}
	return now
}

// End emits the span-end event matching a Begin at began. A nil sink
// is a no-op.
func End(s Sink, name string, began time.Time, arg string) {
	if s == nil {
		return
	}
	now := time.Now()
	s.Event(Event{Kind: KindEnd, Name: name, Wall: now, Dur: now.Sub(began), Arg: arg})
}

// Instant emits a point event. A nil sink is a no-op.
func Instant(s Sink, name string, cycle uint64, arg string) {
	if s == nil {
		return
	}
	s.Event(Event{Kind: KindInstant, Name: name, Wall: time.Now(), Cycle: cycle, Arg: arg})
}

// Tee fans every event out to each non-nil sink. It returns nil when
// no sink remains, so producers keep their single nil check.
func Tee(sinks ...Sink) Sink {
	var out teeSink
	for _, s := range sinks {
		if s != nil {
			out = append(out, s)
		}
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	}
	return out
}

type teeSink []Sink

// Event implements Sink.
func (t teeSink) Event(e Event) {
	for _, s := range t {
		s.Event(e)
	}
}

// WithTrack returns a sink that stamps every event's Track before
// forwarding — how the campaign engine gives each worker its own
// trace track. A nil inner sink yields nil.
func WithTrack(inner Sink, track int) Sink {
	if inner == nil {
		return nil
	}
	return trackSink{inner: inner, track: track}
}

type trackSink struct {
	inner Sink
	track int
}

// Event implements Sink.
func (t trackSink) Event(e Event) {
	e.Track = t.track
	t.inner.Event(e)
}

// Collector is a Sink that appends events under a lock — test and
// summary plumbing.
type Collector struct {
	mu  sync.Mutex
	evs []Event
}

// Event implements Sink.
func (c *Collector) Event(e Event) {
	c.mu.Lock()
	c.evs = append(c.evs, e)
	c.mu.Unlock()
}

// Events snapshots the collected events.
func (c *Collector) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.evs...)
}
