// Package detect defines the interface between the pipeline simulator
// and a soft-fault detection scheme (FaultHound, PBFS, or none). The
// pipeline feeds the detector the load/store value stream at the two
// check points the paper uses — instruction completion (Section 3.3)
// and commit (Section 3.5) — and the detector answers with a recovery
// action.
package detect

// Kind identifies which operand stream a checked value belongs to. The
// paper checks load addresses, store addresses, and store values
// against separate value localities.
type Kind uint8

// Checked operand kinds.
const (
	LoadAddr Kind = iota
	StoreAddr
	StoreValue
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case LoadAddr:
		return "load-addr"
	case StoreAddr:
		return "store-addr"
	case StoreValue:
		return "store-value"
	}
	return "?"
}

// Action is the recovery the detector requests from the pipeline.
type Action uint8

// Recovery actions.
const (
	// None: the value is inside its neighborhood.
	None Action = iota
	// Replay: light-weight predecessor replay of the delay buffer
	// (likely back-end fault or false positive).
	Replay
	// Rollback: full pipeline squash (likely rename/front-end fault).
	Rollback
	// Singleton: commit-time re-execution of the single load or store
	// from register-file state (LSQ coverage).
	Singleton
)

// String names the action.
func (a Action) String() string {
	switch a {
	case None:
		return "none"
	case Replay:
		return "replay"
	case Rollback:
		return "rollback"
	case Singleton:
		return "singleton"
	}
	return "?"
}

// Event is one checked operand.
type Event struct {
	Kind   Kind
	Value  uint64
	PC     uint64
	Thread int
}

// Stats are the detector-side counters the harness reads.
type Stats struct {
	Checks     uint64 // total operand checks
	Triggers   uint64 // values outside every neighborhood
	Suppressed uint64 // triggers masked by a second-level filter
	Replays    uint64 // replay actions returned
	Rollbacks  uint64 // rollback actions returned
	Singletons uint64 // singleton actions returned
	// TCAMSearches and TCAMUpdates feed the energy model.
	TCAMSearches uint64
	TCAMUpdates  uint64
	// TableReads/TableWrites cover PC-indexed (RAM) filter tables.
	TableReads  uint64
	TableWrites uint64
}

// Detector is a soft-fault detection scheme attached to the pipeline.
// Implementations must be deterministic and support deep copy via Clone
// for tandem fault-injection runs.
type Detector interface {
	// Name identifies the scheme in harness output.
	Name() string
	// OnComplete checks an operand at instruction completion and
	// returns the requested action (None, Replay, or Rollback).
	OnComplete(ev Event) Action
	// OnCommit checks an operand at commit (the LSQ check) and returns
	// None or Singleton.
	OnCommit(ev Event) Action
	// SetLearnOnly, while true, makes checks update the filters but
	// never trigger (the pipeline sets this during replay, Section 3.3).
	SetLearnOnly(on bool)
	// Stats returns a snapshot of the detector counters.
	Stats() Stats
	// Clone returns an independent deep copy.
	Clone() Detector
}

// InPlaceCloner is an optional Detector extension for the snapshot
// arena: CloneInto overwrites dst (a detector of the same concrete type
// and geometry, typically a previous Clone of the same source) with a
// deep copy of the receiver, reusing dst's storage. It reports false —
// without modifying dst — when dst is not a compatible target, in which
// case the caller falls back to Clone.
type InPlaceCloner interface {
	CloneInto(dst Detector) bool
}
