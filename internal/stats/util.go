package stats

// Max64 returns the larger of a and b. It exists so the cmd/ front ends
// share one copy instead of redefining it per main package.
func Max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// Min64 returns the smaller of a and b.
func Min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
