// Package stats provides deterministic random number generation and the
// small statistical helpers used by the simulator and the experiment
// harness: means, rates, and histograms.
//
// Every stochastic component in the repository draws from stats.RNG so
// that experiments regenerate bit-identically from a fixed seed.
package stats

import "math"

// RNG is a splitmix64 pseudo-random generator. It is deliberately not
// math/rand so that the stream is fully specified by this repository and
// immune to stdlib generator changes; determinism of the experiment
// harness depends on it.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Two generators with the
// same seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next 64-bit value in the stream.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("stats: Uint64n with zero n")
	}
	return r.Uint64() % n
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Geometric returns a sample from a geometric distribution with success
// probability p (the number of trials until first success, >= 1). For
// p >= 1 it returns 1.
func (r *RNG) Geometric(p float64) int {
	if p >= 1 {
		return 1
	}
	if p <= 0 {
		panic("stats: Geometric with non-positive p")
	}
	u := r.Float64()
	// Guard against log(0).
	if u == 0 {
		u = math.SmallestNonzeroFloat64
	}
	return 1 + int(math.Log(u)/math.Log(1-p))
}

// Split returns a new generator whose stream is decorrelated from r's,
// for handing to parallel or per-structure consumers.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xd1b54a32d192ed03)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
