package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of xs, or 0 for an empty slice.
// Non-positive entries are clamped to a tiny positive value so that a
// single zero does not annihilate the mean (standard practice when
// averaging speedups that may contain zeros from degenerate runs).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			x = 1e-12
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// HarmonicMean returns the harmonic mean of xs, or 0 for an empty slice
// or any non-positive entry.
func HarmonicMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += 1 / x
	}
	return float64(len(xs)) / s
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. It returns 0 for empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	ys := append([]float64(nil), xs...)
	sort.Float64s(ys)
	if p <= 0 {
		return ys[0]
	}
	if p >= 100 {
		return ys[len(ys)-1]
	}
	rank := p / 100 * float64(len(ys)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return ys[lo]
	}
	frac := rank - float64(lo)
	return ys[lo]*(1-frac) + ys[hi]*frac
}

// Rate is a counter pair used throughout the detectors and the harness:
// occurrences over opportunities.
type Rate struct {
	Num   uint64 // occurrences
	Denom uint64 // opportunities
}

// Add records n occurrences over d opportunities.
func (r *Rate) Add(n, d uint64) {
	r.Num += n
	r.Denom += d
}

// Hit records one occurrence over one opportunity.
func (r *Rate) Hit() { r.Num++; r.Denom++ }

// Miss records one opportunity without an occurrence.
func (r *Rate) Miss() { r.Denom++ }

// Value returns the rate as a fraction in [0, 1], or 0 when there were
// no opportunities.
func (r Rate) Value() float64 {
	if r.Denom == 0 {
		return 0
	}
	return float64(r.Num) / float64(r.Denom)
}

// Percent returns the rate as a percentage.
func (r Rate) Percent() float64 { return r.Value() * 100 }

// String renders the rate as "num/denom (pct%)".
func (r Rate) String() string {
	return fmt.Sprintf("%d/%d (%.2f%%)", r.Num, r.Denom, r.Percent())
}

// Histogram is a fixed-bucket histogram over int64 samples.
type Histogram struct {
	// Bounds are the inclusive upper bounds of each bucket except the
	// last, which is unbounded.
	Bounds []int64
	Counts []uint64
	Total  uint64
	Sum    int64
	Min    int64
	Max    int64
}

// NewHistogram creates a histogram with the given ascending bucket
// bounds. A final overflow bucket is added automatically.
func NewHistogram(bounds ...int64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("stats: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{
		Bounds: append([]int64(nil), bounds...),
		Counts: make([]uint64, len(bounds)+1),
		Min:    math.MaxInt64,
		Max:    math.MinInt64,
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	i := sort.Search(len(h.Bounds), func(i int) bool { return v <= h.Bounds[i] })
	h.Counts[i]++
	h.Total++
	h.Sum += v
	if v < h.Min {
		h.Min = v
	}
	if v > h.Max {
		h.Max = v
	}
}

// MeanValue returns the arithmetic mean of all observed samples.
func (h *Histogram) MeanValue() float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Total)
}

// Fraction returns the fraction of samples in bucket i.
func (h *Histogram) Fraction(i int) float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.Total)
}
