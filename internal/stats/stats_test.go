package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestRNGDifferentSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different seeds coincide %d/100 times", same)
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Intn(13)
		if v < 0 || v >= 13 {
			t.Fatalf("Intn(13) = %d out of range", v)
		}
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestRNGFloat64Uniformity(t *testing.T) {
	r := NewRNG(11)
	var sum float64
	n := 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / float64(n)
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean of uniforms = %v, want ~0.5", mean)
	}
}

func TestRNGGeometricMean(t *testing.T) {
	r := NewRNG(13)
	p := 0.25
	var sum float64
	n := 50000
	for i := 0; i < n; i++ {
		sum += float64(r.Geometric(p))
	}
	mean := sum / float64(n)
	if math.Abs(mean-1/p) > 0.2 {
		t.Fatalf("geometric mean = %v, want ~%v", mean, 1/p)
	}
}

func TestRNGGeometricAtLeastOne(t *testing.T) {
	r := NewRNG(17)
	for i := 0; i < 10000; i++ {
		if r.Geometric(0.9) < 1 {
			t.Fatal("geometric sample < 1")
		}
	}
	if r.Geometric(1.0) != 1 {
		t.Fatal("Geometric(1.0) != 1")
	}
}

func TestRNGSplitDecorrelated(t *testing.T) {
	r := NewRNG(23)
	s := r.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if r.Uint64() == s.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams coincide %d/100 times", same)
	}
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(29)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", got)
	}
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v, want 0", got)
	}
}

func TestGeoMean(t *testing.T) {
	got := GeoMean([]float64{1, 4})
	if math.Abs(got-2) > 1e-9 {
		t.Fatalf("GeoMean = %v, want 2", got)
	}
	if GeoMean(nil) != 0 {
		t.Fatal("GeoMean(nil) != 0")
	}
	// Zero entries are clamped, not fatal.
	if v := GeoMean([]float64{0, 1}); v <= 0 {
		t.Fatalf("GeoMean with zero entry = %v, want > 0", v)
	}
}

func TestHarmonicMean(t *testing.T) {
	got := HarmonicMean([]float64{1, 2})
	want := 4.0 / 3.0
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("HarmonicMean = %v, want %v", got, want)
	}
	if HarmonicMean([]float64{1, 0}) != 0 {
		t.Fatal("HarmonicMean with zero should be 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {50, 3}, {100, 5}, {25, 2},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("Percentile(nil) != 0")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestRate(t *testing.T) {
	var r Rate
	if r.Value() != 0 {
		t.Fatal("empty rate should be 0")
	}
	r.Hit()
	r.Miss()
	r.Miss()
	r.Add(2, 2)
	if r.Num != 3 || r.Denom != 5 {
		t.Fatalf("rate = %d/%d, want 3/5", r.Num, r.Denom)
	}
	if math.Abs(r.Value()-0.6) > 1e-12 {
		t.Fatalf("Value = %v, want 0.6", r.Value())
	}
	if math.Abs(r.Percent()-60) > 1e-9 {
		t.Fatalf("Percent = %v, want 60", r.Percent())
	}
}

// A histogram that never observed a sample (a campaign with zero
// detected injections) must report zero, not NaN, for every derived
// statistic.
func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(10, 20)
	if h.MeanValue() != 0 {
		t.Fatalf("empty MeanValue = %v, want 0", h.MeanValue())
	}
	for i := range h.Counts {
		if h.Fraction(i) != 0 {
			t.Fatalf("empty Fraction(%d) = %v, want 0", i, h.Fraction(i))
		}
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(10, 20, 30)
	for _, v := range []int64{5, 10, 11, 25, 31, 100} {
		h.Observe(v)
	}
	want := []uint64{2, 1, 1, 2}
	for i, w := range want {
		if h.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, h.Counts[i], w, h.Counts)
		}
	}
	if h.Min != 5 || h.Max != 100 {
		t.Fatalf("min/max = %d/%d", h.Min, h.Max)
	}
	if math.Abs(h.MeanValue()-182.0/6.0) > 1e-9 {
		t.Fatalf("mean = %v", h.MeanValue())
	}
	if math.Abs(h.Fraction(0)-2.0/6.0) > 1e-9 {
		t.Fatalf("Fraction(0) = %v", h.Fraction(0))
	}
}

func TestHistogramPanicsOnBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHistogram(10, 10)
}

// Property: percentile is bounded by min and max of the input.
func TestPercentileBoundedProperty(t *testing.T) {
	f := func(raw []uint16, p8 uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, v := range raw {
			xs[i] = float64(v)
			lo = math.Min(lo, xs[i])
			hi = math.Max(hi, xs[i])
		}
		p := float64(p8) / 255 * 100
		got := Percentile(xs, p)
		return got >= lo-1e-9 && got <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: means ordering — harmonic <= geometric <= arithmetic for
// positive inputs.
func TestMeanOrderingProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v) + 1 // strictly positive
		}
		h, g, a := HarmonicMean(xs), GeoMean(xs), Mean(xs)
		return h <= g+1e-6 && g <= a+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: histogram conserves the total count.
func TestHistogramConservationProperty(t *testing.T) {
	f := func(raw []int32) bool {
		h := NewHistogram(-100, 0, 100, 1000)
		for _, v := range raw {
			h.Observe(int64(v))
		}
		var n uint64
		for _, c := range h.Counts {
			n += c
		}
		return n == h.Total && h.Total == uint64(len(raw))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
