package branch

import "testing"

func TestLearnsAlwaysTaken(t *testing.T) {
	p := New(DefaultConfig())
	pc, target := uint64(100), uint64(50)
	// Train past the point where the gshare history saturates (the PHT
	// index is stable only once the 14-bit history is all ones).
	for i := 0; i < 40; i++ {
		pred := p.PredictCond(pc)
		p.Update(pc, pred, true, target, true)
		if !pred.Taken {
			p.RecoverMispredict(pred, true)
		}
	}
	pred := p.PredictCond(pc)
	if !pred.Taken || pred.Target != target {
		t.Fatalf("after training: taken=%v target=%d", pred.Taken, pred.Target)
	}
}

func TestLearnsNeverTaken(t *testing.T) {
	p := New(DefaultConfig())
	pc := uint64(200)
	for i := 0; i < 10; i++ {
		pred := p.PredictCond(pc)
		p.Update(pc, pred, false, 0, true)
	}
	if pred := p.PredictCond(pc); pred.Taken {
		t.Fatal("should predict not-taken after training")
	}
}

func TestColdTakenWithoutBTBFallsThrough(t *testing.T) {
	p := New(DefaultConfig())
	pc := uint64(300)
	// Saturate the direction counter without installing a BTB entry for
	// a different pc mapping... train direction via updates with
	// taken=true (which installs BTB). Then query a different pc that
	// aliases the same PHT entry but not the same BTB entry.
	for i := 0; i < 4; i++ {
		pred := p.PredictCond(pc)
		p.Update(pc, pred, true, 77, true)
	}
	// pc+BTBEntries maps to the same BTB slot but with a different tag.
	alias := pc + uint64(DefaultConfig().BTBEntries)
	pred := p.PredictCond(alias)
	if pred.Taken && pred.Target == 0 {
		t.Fatal("must not predict taken with unknown target")
	}
}

func TestMispredictCounting(t *testing.T) {
	p := New(DefaultConfig())
	pc := uint64(40)
	pred := p.PredictCond(pc) // cold: predicts not-taken
	p.Update(pc, pred, true, 7, true)
	if p.Mispredicts != 1 {
		t.Fatalf("mispredicts = %d, want 1", p.Mispredicts)
	}
	if p.MispredictRate() != 1.0 {
		t.Fatalf("rate = %v", p.MispredictRate())
	}
}

func TestWrongTargetIsMispredict(t *testing.T) {
	p := New(DefaultConfig())
	pc := uint64(60)
	for i := 0; i < 40; i++ {
		pred := p.PredictCond(pc)
		p.Update(pc, pred, true, 10, true)
		if !pred.Taken {
			p.RecoverMispredict(pred, true)
		}
	}
	base := p.Mispredicts
	pred := p.PredictCond(pc)
	if !pred.Taken || pred.Target != 10 {
		t.Fatal("setup: should predict taken to 10")
	}
	p.Update(pc, pred, true, 20, true) // same direction, new target
	if p.Mispredicts != base+1 {
		t.Fatal("wrong target should count as mispredict")
	}
}

func TestRASCallReturn(t *testing.T) {
	p := New(DefaultConfig())
	// Call at pc 10 pushes return address 11.
	p.PredictJump(10, true, false)
	pred := p.PredictJump(50, false, true)
	if !pred.Taken || pred.Target != 11 {
		t.Fatalf("RAS return: %+v", pred)
	}
}

func TestRASNesting(t *testing.T) {
	p := New(DefaultConfig())
	p.PredictJump(10, true, false)
	p.PredictJump(20, true, false)
	if pred := p.PredictJump(30, false, true); pred.Target != 21 {
		t.Fatalf("inner return target = %d, want 21", pred.Target)
	}
	if pred := p.PredictJump(31, false, true); pred.Target != 11 {
		t.Fatalf("outer return target = %d, want 11", pred.Target)
	}
}

func TestRASOverflowKeepsNewest(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RASEntries = 2
	p := New(cfg)
	p.PredictJump(1, true, false) // ret 2 (will be lost)
	p.PredictJump(2, true, false) // ret 3
	p.PredictJump(3, true, false) // ret 4, evicts ret 2
	if pred := p.PredictJump(9, false, true); pred.Target != 4 {
		t.Fatalf("target = %d, want 4", pred.Target)
	}
	if pred := p.PredictJump(9, false, true); pred.Target != 3 {
		t.Fatalf("target = %d, want 3", pred.Target)
	}
}

func TestJumpBTBLearning(t *testing.T) {
	p := New(DefaultConfig())
	pc := uint64(77)
	pred := p.PredictJump(pc, false, false)
	if pred.Taken {
		t.Fatal("cold indirect jump should fall through")
	}
	p.Update(pc, pred, true, 123, false)
	pred = p.PredictJump(pc, false, false)
	if !pred.Taken || pred.Target != 123 {
		t.Fatalf("after BTB install: %+v", pred)
	}
}

func TestCloneIndependence(t *testing.T) {
	p := New(DefaultConfig())
	pc := uint64(5)
	// Train always-taken long enough that the history (and hence the
	// PHT index) reaches a fixed point and saturates.
	for i := 0; i < 100; i++ {
		pred := p.PredictCond(pc)
		p.Update(pc, pred, true, 9, true)
		if !pred.Taken {
			p.RecoverMispredict(pred, true)
		}
	}
	c := p.Clone()
	// Retrain the clone to not-taken.
	for i := 0; i < 8; i++ {
		pred := c.PredictCond(pc)
		c.Update(pc, pred, false, 0, true)
		if pred.Taken {
			c.RecoverMispredict(pred, false)
		}
	}
	if pred := p.PredictCond(pc); !pred.Taken {
		t.Fatal("clone training leaked into original")
	}
}

func TestAlternatingPatternWithHistory(t *testing.T) {
	// Gshare should learn a strict T/N/T/N alternation via history.
	p := New(DefaultConfig())
	pc := uint64(400)
	taken := false
	step := func() bool {
		taken = !taken
		pred := p.PredictCond(pc)
		ok := pred.Taken == taken
		p.Update(pc, pred, taken, 40, true)
		if !ok {
			p.RecoverMispredict(pred, taken)
		}
		return ok
	}
	// Train.
	for i := 0; i < 200; i++ {
		step()
	}
	// Measure.
	correct := 0
	for i := 0; i < 100; i++ {
		if step() {
			correct++
		}
	}
	if correct < 95 {
		t.Fatalf("gshare learned alternation only %d/100", correct)
	}
}

func TestRecoverMispredict(t *testing.T) {
	p := New(DefaultConfig())
	pc := uint64(9)
	pred := p.PredictCond(pc) // cold: not-taken, history gets a 0 bit
	// Fetch more branches on the (wrong) path.
	p.PredictCond(pc + 1)
	p.PredictCond(pc + 2)
	p.Update(pc, pred, true, 5, true)
	p.RecoverMispredict(pred, true)
	if p.History()&1 != 1 {
		t.Fatal("recovered history should end with the resolved outcome")
	}
	if p.History()>>1 != 0 {
		t.Fatal("wrong-path history bits should be discarded")
	}
}
