// Package branch implements the front-end branch prediction hardware of
// the simulated core: a gshare direction predictor, a branch target
// buffer, and a return-address stack. Misprediction recovery (the full
// pipeline rollback whose ~100-200-instruction penalty the paper's
// replay mechanism avoids paying for false positives) is handled by the
// pipeline; this package only predicts and learns.
package branch

// Config sizes the predictor structures.
type Config struct {
	// GshareBits is the log2 of the pattern history table size.
	GshareBits uint
	// BTBEntries is the number of direct-mapped BTB entries.
	BTBEntries int
	// RASEntries is the return-address stack depth.
	RASEntries int
}

// DefaultConfig returns a predictor sized for the Table-2 core.
func DefaultConfig() Config {
	return Config{GshareBits: 14, BTBEntries: 2048, RASEntries: 16}
}

// Predictor is the combined direction/target predictor. One instance
// exists per SMT context (history is thread-private).
type Predictor struct {
	cfg     Config
	history uint64
	pht     []uint8 // 2-bit saturating counters
	btb     []btbEntry
	ras     []uint64
	rasTop  int
	// sh folds every mutating interaction (predictions, training,
	// recoveries) into a running stream tag: two predictors that started
	// equal and carry equal tags have processed the same sequence and
	// hold equal tables. The reconvergence digest compares tags instead
	// of walking the PHT/BTB.
	sh uint64

	Lookups     uint64
	Mispredicts uint64
}

type btbEntry struct {
	pc     uint64
	target uint64
	valid  bool
}

// New creates a predictor.
func New(cfg Config) *Predictor {
	return &Predictor{
		cfg: cfg,
		pht: make([]uint8, 1<<cfg.GshareBits),
		btb: make([]btbEntry, cfg.BTBEntries),
		ras: make([]uint64, cfg.RASEntries),
	}
}

// Prediction is the front end's guess for one branch.
type Prediction struct {
	Taken  bool
	Target uint64
	// phtIndex is remembered so Update trains the same counter the
	// prediction read even after later history updates.
	phtIndex uint64
	// historyBefore snapshots the global history before this branch's
	// speculative bit, so misprediction recovery can rebuild the
	// history with the resolved outcome.
	historyBefore uint64
}

func (p *Predictor) phtIndex(pc uint64) uint64 {
	mask := uint64(1)<<p.cfg.GshareBits - 1
	return (pc ^ p.history) & mask
}

// foldStream mixes one interaction into the stream tag.
func (p *Predictor) foldStream(x uint64) {
	p.sh = mix64(x ^ p.sh)
}

// StreamTag returns the interaction-stream fingerprint.
func (p *Predictor) StreamTag() uint64 { return p.sh }

// Fold mixes every prediction field (including the unexported recovery
// state) into h — used by stream and structural hashing outside the
// package.
func (pr Prediction) Fold(h uint64) uint64 {
	h = mix64(h ^ (pr.Target<<1 | b2u(pr.Taken)))
	h = mix64(h ^ pr.phtIndex)
	h = mix64(h ^ pr.historyBefore)
	return h
}

func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 29
	return x
}

// PredictCond predicts a conditional branch at pc.
func (p *Predictor) PredictCond(pc uint64) Prediction {
	p.foldStream(pc<<3 | 1)
	p.Lookups++
	i := p.phtIndex(pc)
	taken := p.pht[i] >= 2
	pred := Prediction{Taken: taken, phtIndex: i, historyBefore: p.history}
	if taken {
		if e := p.btb[pc%uint64(len(p.btb))]; e.valid && e.pc == pc {
			pred.Target = e.target
		} else {
			// No target known: predict not-taken (fall through).
			pred.Taken = false
		}
	}
	// Speculatively update history with the prediction; recovery on
	// misprediction is modeled by RestoreHistory.
	p.history = p.history<<1 | b2u(pred.Taken)
	return pred
}

// PredictJump predicts an unconditional direct or indirect jump at pc.
// isCall pushes the return address; isRet pops the RAS.
func (p *Predictor) PredictJump(pc uint64, isCall, isRet bool) Prediction {
	p.foldStream(pc<<5 | b2u(isCall)<<4 | b2u(isRet)<<3 | 2)
	p.Lookups++
	if isCall {
		p.push(pc + 1)
	}
	if isRet && p.rasTop > 0 {
		p.rasTop--
		return Prediction{Taken: true, Target: p.ras[p.rasTop]}
	}
	if e := p.btb[pc%uint64(len(p.btb))]; e.valid && e.pc == pc {
		return Prediction{Taken: true, Target: e.target}
	}
	// Unknown target: predict fall-through; the pipeline will redirect
	// at execute (counted as a misprediction).
	return Prediction{Taken: false}
}

func (p *Predictor) push(addr uint64) {
	if p.rasTop < len(p.ras) {
		p.ras[p.rasTop] = addr
		p.rasTop++
		return
	}
	// Overflow: shift down (oldest entry lost).
	copy(p.ras, p.ras[1:])
	p.ras[len(p.ras)-1] = addr
}

// Update trains the predictor with the resolved outcome of a branch
// previously predicted with pred. mispredicted records statistics and
// repairs the speculative history bit.
func (p *Predictor) Update(pc uint64, pred Prediction, taken bool, target uint64, cond bool) {
	p.foldStream(pc<<3 | 3)
	p.foldStream(pred.Fold(target<<2 | b2u(taken)<<1 | b2u(cond)))
	if cond {
		c := p.pht[pred.phtIndex]
		if taken && c < 3 {
			c++
		} else if !taken && c > 0 {
			c--
		}
		p.pht[pred.phtIndex] = c
	}
	if taken {
		p.btb[pc%uint64(len(p.btb))] = btbEntry{pc: pc, target: target, valid: true}
	}
	if pred.Taken != taken || (taken && pred.Target != target) {
		p.Mispredicts++
	}
}

// RecoverMispredict rebuilds the global history after a misprediction:
// everything fetched past the branch is squashed, so the history
// becomes the branch's pre-prediction history plus its resolved
// outcome. Call after Update.
func (p *Predictor) RecoverMispredict(pred Prediction, taken bool) {
	p.foldStream((pred.historyBefore<<1|b2u(taken))<<3 | 4)
	p.history = pred.historyBefore<<1 | b2u(taken)
}

// History returns the current global history register.
func (p *Predictor) History() uint64 { return p.history }

// SetHistory overwrites the global history (full-pipeline rollback
// restores the architectural history).
func (p *Predictor) SetHistory(h uint64) {
	p.foldStream(h<<3 | 5)
	p.history = h
}

// MispredictRate returns mispredictions per lookup.
func (p *Predictor) MispredictRate() float64 {
	if p.Lookups == 0 {
		return 0
	}
	return float64(p.Mispredicts) / float64(p.Lookups)
}

// Clone returns an independent copy (for tandem fault injection).
func (p *Predictor) Clone() *Predictor {
	d := *p
	d.pht = append([]uint8(nil), p.pht...)
	d.btb = append([]btbEntry(nil), p.btb...)
	d.ras = append([]uint64(nil), p.ras...)
	return &d
}

// CloneInto overwrites d with a deep copy of p, reusing d's table
// storage when the geometry matches (the snapshot-arena path).
func (p *Predictor) CloneInto(d *Predictor) {
	pht, btb, ras := d.pht, d.btb, d.ras
	*d = *p
	d.pht = append(pht[:0], p.pht...)
	d.btb = append(btb[:0], p.btb...)
	d.ras = append(ras[:0], p.ras...)
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
