package workload

import (
	"testing"

	"faulthound/internal/pipeline"
	"faulthound/internal/prog"
)

func TestRegistryComplete(t *testing.T) {
	if len(All()) != 14 {
		t.Fatalf("Table 1 has 14 benchmarks, registry has %d", len(All()))
	}
	suites := Suites()
	if len(suites) != 4 {
		t.Fatalf("suites = %v", suites)
	}
	want := map[string]int{SuiteSPECint: 4, SuiteSPECfp: 3, SuiteCommercial: 3, SuiteSPLASH: 4}
	for s, n := range want {
		if got := len(BySuite()[s]); got != n {
			t.Errorf("suite %s has %d benchmarks, want %d", s, got, n)
		}
	}
}

func TestGet(t *testing.T) {
	b, err := Get("mcf")
	if err != nil || b.Name != "mcf" {
		t.Fatalf("Get(mcf) = %+v, %v", b, err)
	}
	if _, err := Get("nope"); err == nil {
		t.Fatal("Get(nope) should fail")
	}
}

// TestAllKernelsRunCleanly is the workload acceptance test: every
// kernel must build, validate, run 20k instructions on the interpreter
// without faulting or halting (kernels loop forever), and run on the
// pipeline committing the same stream.
func TestAllKernelsRunCleanly(t *testing.T) {
	for _, bm := range All() {
		bm := bm
		t.Run(bm.Name, func(t *testing.T) {
			t.Parallel()
			p := bm.Build(prog.DefaultDataBase, 1)
			if err := p.Validate(); err != nil {
				t.Fatal(err)
			}
			it := prog.NewInterp(p)
			it.Run(20000)
			if it.Faulted != nil {
				t.Fatalf("interpreter faulted: %v", it.Faulted)
			}
			if it.Halted {
				t.Fatal("kernel halted; kernels must loop forever")
			}
			if it.Steps != 20000 {
				t.Fatalf("ran %d steps", it.Steps)
			}

			c, err := pipeline.New(pipeline.DefaultConfig(1), []*prog.Program{p}, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !c.RunUntilCommits(0, 10000, 2_000_000) {
				exc, msg := c.Excepted(0)
				t.Fatalf("pipeline stalled at %d commits (excepted=%v %s)", c.Committed(0), exc, msg)
			}
			if exc, msg := c.Excepted(0); exc {
				t.Fatalf("pipeline exception: %s", msg)
			}
			s := c.Stats()
			if s.Loads == 0 {
				t.Fatal("kernel performs no loads")
			}
			if s.Stores == 0 {
				t.Fatal("kernel performs no stores")
			}
		})
	}
}

// TestKernelArchEquivalence cross-checks pipeline vs interpreter for
// every kernel over a window (catching kernel-specific pipeline bugs).
func TestKernelArchEquivalence(t *testing.T) {
	for _, bm := range All() {
		bm := bm
		t.Run(bm.Name, func(t *testing.T) {
			t.Parallel()
			p := bm.Build(prog.DefaultDataBase, 2)
			c, err := pipeline.New(pipeline.DefaultConfig(1), []*prog.Program{p}, nil)
			if err != nil {
				t.Fatal(err)
			}
			const n = 5000
			if !c.RunUntilCommits(0, n, 2_000_000) {
				t.Fatalf("stalled at %d commits", c.Committed(0))
			}
			it := prog.NewInterp(p)
			it.Run(c.Committed(0))
			regs := c.ArchRegs(0)
			for r, v := range it.Regs {
				if regs[r] != v {
					t.Errorf("reg %d: pipeline %#x interp %#x", r, regs[r], v)
				}
			}
		})
	}
}

func TestProgramsDisjointSegments(t *testing.T) {
	bm, _ := Get("bzip2")
	ps := Programs(bm, 2, 1)
	if len(ps) != 2 {
		t.Fatal("want 2 programs")
	}
	if ps[0].DataBase == ps[1].DataBase {
		t.Fatal("segments must be disjoint")
	}
	if ps[0].DataBase+ps[0].DataSize > ps[1].DataBase {
		t.Fatal("segments overlap")
	}
}

func TestBuildDeterminism(t *testing.T) {
	for _, bm := range All() {
		a := bm.Build(prog.DefaultDataBase, 7)
		b := bm.Build(prog.DefaultDataBase, 7)
		if len(a.Code) != len(b.Code) {
			t.Fatalf("%s: nondeterministic code length", bm.Name)
		}
		for i := range a.Code {
			if a.Code[i] != b.Code[i] {
				t.Fatalf("%s: code differs at %d", bm.Name, i)
			}
		}
		if len(a.Data) != len(b.Data) {
			t.Fatalf("%s: nondeterministic data", bm.Name)
		}
	}
}

// TestWorkloadDiversity sanity-checks the characteristic differences
// the suite is built around: mcf misses caches far more than gamess,
// and gamess is FP-heavy while perl is not.
func TestWorkloadDiversity(t *testing.T) {
	run := func(name string) (*pipeline.Core, pipeline.Stats) {
		bm, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		p := bm.Build(prog.DefaultDataBase, 1)
		c, err := pipeline.New(pipeline.DefaultConfig(1), []*prog.Program{p}, nil)
		if err != nil {
			t.Fatal(err)
		}
		c.RunUntilCommits(0, 20000, 5_000_000)
		return c, c.Stats()
	}
	mcf, _ := run("mcf")
	gamess, gs := run("gamess")
	perl, ps := run("perl")

	// Compare misses per committed instruction: mcf is memory-bound,
	// gamess is compute-bound with almost no memory traffic.
	mcfMPKI := float64(mcf.MemStats().L1DMisses) / float64(mcf.CommittedTotal())
	gamessMPKI := float64(gamess.MemStats().L1DMisses) / float64(gamess.CommittedTotal())
	if mcfMPKI < 4*gamessMPKI {
		t.Errorf("mcf should miss much more per instruction than gamess: %v vs %v", mcfMPKI, gamessMPKI)
	}
	if gs.IssuedByClass[3] == 0 { // isa.ClassFP
		t.Error("gamess should issue FP ops")
	}
	if ps.IssuedByClass[3] > gs.IssuedByClass[3]/10 {
		t.Error("perl should be far less FP-heavy than gamess")
	}
	_ = perl
}
