package workload

import (
	"fmt"
	"strings"

	"faulthound/internal/pspec"
	"faulthound/internal/wgen"
)

// resolve.go routes workload spec strings: a fixed benchmark name
// (Table-1 or micro) passes through unchanged, a generated-workload
// spec ("gen?...", "replay?trace=...") goes through internal/wgen and
// comes back canonical. Canonical strings are what campaign cells
// carry, so plain benchmark names keep their historical journal and
// spec-hash bytes.

// AllNames lists every resolvable workload name: Table-1 benchmarks,
// micro-workloads, then the generator names — the known_workloads
// list of error messages and the daemon's 400 shape.
func AllNames() []string {
	var out []string
	for _, b := range registry {
		out = append(out, b.Name)
	}
	for _, b := range Micro() {
		out = append(out, b.Name)
	}
	out = append(out, wgen.Names()...)
	return out
}

// unknown builds the workload-domain unknown-name error, so CLIs and
// the daemon surface the full resolvable list.
func unknown(name string) error {
	return &pspec.UnknownNameError{Domain: wgen.Domain, Name: name, Known: AllNames()}
}

// Resolve returns the benchmark named by a workload spec string:
// fixed benchmarks by name, generated workloads by canonical spec.
// The returned Benchmark's Name is the canonical spec string.
func Resolve(spec string) (Benchmark, error) {
	spec = strings.TrimSpace(spec)
	if b, err := Get(spec); err == nil {
		return b, nil
	}
	if !wgen.IsGenerated(spec) {
		name, _, _ := strings.Cut(spec, "?")
		return Benchmark{}, unknown(strings.TrimSpace(name))
	}
	sp, err := wgen.Parse(spec)
	if err != nil {
		return Benchmark{}, err
	}
	w, err := wgen.Build(sp)
	if err != nil {
		return Benchmark{}, err
	}
	return Benchmark{
		Name:     w.Spec.String(),
		Suite:    "Generated",
		Paper:    "generated: " + resolvedHelp(w.Spec),
		SegBytes: w.SegBytes,
		Build:    w.Build,
	}, nil
}

// resolvedHelp renders the fully-resolved spec for the benchmark's
// description line (best effort; the canonical spec on error).
func resolvedHelp(sp wgen.Spec) string {
	if r, err := wgen.Resolved(sp); err == nil {
		return r
	}
	return sp.String()
}

// Canonical validates one workload spec string and returns its
// canonical form: fixed benchmark names unchanged, generated specs
// canonicalized (sorted params, defaults elided). Sweep syntax is an
// error here; use ExpandSpecs where fan-out is meant.
func Canonical(spec string) (string, error) {
	spec = strings.TrimSpace(spec)
	if _, err := Get(spec); err == nil {
		return spec, nil
	}
	if !wgen.IsGenerated(spec) {
		name, _, _ := strings.Cut(spec, "?")
		return "", unknown(strings.TrimSpace(name))
	}
	sp, err := wgen.Parse(spec)
	if err != nil {
		return "", err
	}
	return sp.String(), nil
}

// ExpandSpecs validates a list of workload spec strings, fanning out
// '|' sweeps in generated specs, and returns canonical strings with
// duplicates removed (first occurrence wins, order preserved).
func ExpandSpecs(specs []string) ([]string, error) {
	var out []string
	seen := map[string]bool{}
	add := func(s string) {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	for _, raw := range specs {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		if _, err := Get(raw); err == nil {
			add(raw)
			continue
		}
		if !wgen.IsGenerated(raw) {
			name, _, _ := strings.Cut(raw, "?")
			return nil, unknown(strings.TrimSpace(name))
		}
		sps, err := wgen.Expand(raw)
		if err != nil {
			return nil, err
		}
		for _, sp := range sps {
			add(sp.String())
		}
	}
	return out, nil
}

// SplitList splits a comma-separated workload list into individual
// spec strings, with generated-spec parameters ("gen?stride=64,seg=256k")
// attaching to their item.
func SplitList(raw string) ([]string, error) { return wgen.SplitList(raw) }

// Catalogue returns the full workload metadata: fixed benchmarks as
// parameterless entries, then the generator registry — the daemon's
// /v1/workloads document.
func Catalogue() []pspec.Metadata {
	var out []pspec.Metadata
	for _, b := range registry {
		out = append(out, pspec.Metadata{Name: b.Name, Help: b.Suite + ": " + b.Paper, Params: []pspec.Param{}})
	}
	for _, b := range Micro() {
		out = append(out, pspec.Metadata{Name: b.Name, Help: b.Suite + ": " + b.Paper, Params: []pspec.Param{}})
	}
	return append(out, wgen.All()...)
}

// Describe renders the resolvable workloads for -list-workloads: the
// fixed benchmarks one line each, then the generator registry with
// parameter metadata (same layout as the scheme registry's Describe).
func Describe() string {
	var sb strings.Builder
	for _, m := range Catalogue() {
		fmt.Fprintf(&sb, "%-26s %s\n", m.Name, m.Help)
		for _, p := range m.Params {
			fmt.Fprintf(&sb, "    %-12s %-6s default %-8s %s\n", p.Name, p.Kind, p.Default, p.Help)
		}
	}
	return sb.String()
}
