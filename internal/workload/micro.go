package workload

import (
	"faulthound/internal/isa"
	"faulthound/internal/prog"
	"faulthound/internal/stats"
)

// Micro-workloads are controlled access-pattern kernels, separate from
// the Table-1 suite, for studying the detectors in isolation: each one
// produces a single, pure value-locality pattern. The ablation benches
// and examples use them where a mixed benchmark would confound the
// effect under study.

// MicroStream returns a unit-stride streaming kernel: sequential load
// addresses (only carry bits toggle), store values equal to a slowly
// incrementing counter — the friendliest possible stream for bit-mask
// filters.
func MicroStream(base, seed uint64) *prog.Program {
	const words = 1024
	b := prog.NewBuilderAt("micro-stream", base, 16<<10)
	rng := stats.NewRNG(seed ^ 0x51)
	for i := uint64(0); i < words; i++ {
		b.Word(i*8, rng.Uint64()&0xff)
	}
	b.MovU64(2, base)
	b.MovI(1, 0)
	b.MovI(3, words)
	b.MovI(5, 0)
	b.Label("loop")
	b.OpI(isa.SLLI, 7, 1, 3)
	b.Op3(isa.ADD, 8, 2, 7)
	b.Ld(4, 8, 0)
	b.Op3(isa.ADD, 5, 5, 4)
	b.OpI(isa.ANDI, 5, 5, 0xff)
	b.St(8, 0, 5)
	b.OpI(isa.ADDI, 1, 1, 1)
	b.Br(isa.BLT, 1, 3, "loop")
	b.MovI(1, 0)
	b.Jmp("loop")
	return b.MustBuild()
}

// MicroChase returns a pure pointer-chasing kernel over a randomized
// cycle: maximally irregular load addresses, no stores except a
// heartbeat — the hardest stream for address filters.
func MicroChase(base, seed uint64) *prog.Program {
	const nodes = 4096
	b := prog.NewBuilderAt("micro-chase", base, 64<<10)
	permutationCycle(b, 0, nodes, seed^0xc4a)
	b.MovU64(2, base)
	b.Op3(isa.ADD, 1, 2, 0)
	b.MovI(9, 0)
	b.Label("loop")
	b.Ld(1, 1, 0)
	b.OpI(isa.ADDI, 9, 9, 1)
	b.OpI(isa.ANDI, 7, 9, 255)
	b.Br(isa.BNE, 7, 0, "loop")
	b.St(2, nodes*8, 9)
	b.Jmp("loop")
	return b.MustBuild()
}

// MicroToggle returns the delinquent-bit torture kernel: a value whose
// low bit toggles with stable runs between toggles, re-arming and
// re-triggering a biased filter forever — the pattern the second-level
// filter exists to suppress (Section 3.2).
func MicroToggle(base, seed uint64) *prog.Program {
	b := prog.NewBuilderAt("micro-toggle", base, 4096)
	b.MovU64(2, base)
	b.MovI(1, 0) // phase counter
	b.MovI(5, 0) // toggling value
	b.Label("loop")
	// Every 4th iteration, flip bit 0 of the stored value.
	b.OpI(isa.ANDI, 7, 1, 3)
	b.Br(isa.BNE, 7, 0, "store")
	b.OpI(isa.XORI, 5, 5, 1)
	b.Label("store")
	b.St(2, 0, 5)
	b.Ld(6, 2, 0)
	b.OpI(isa.ADDI, 1, 1, 1)
	b.Jmp("loop")
	return b.MustBuild()
}

// MicroBranchy returns a data-dependent-branch kernel with ~50%
// mispredict-prone branches — stress for rollback interactions.
func MicroBranchy(base, seed uint64) *prog.Program {
	const words = 512
	b := prog.NewBuilderAt("micro-branchy", base, 8<<10)
	rng := stats.NewRNG(seed ^ 0xb4)
	for i := uint64(0); i < words; i++ {
		b.Word(i*8, rng.Uint64()&1)
	}
	b.MovU64(2, base)
	b.MovI(1, 0)
	b.MovI(3, words)
	b.MovI(5, 0)
	b.Label("loop")
	b.OpI(isa.SLLI, 7, 1, 3)
	b.Op3(isa.ADD, 8, 2, 7)
	b.Ld(4, 8, 0)
	b.Br(isa.BEQ, 4, 0, "skip")
	b.OpI(isa.ADDI, 5, 5, 3)
	b.Jmp("next")
	b.Label("skip")
	b.OpI(isa.ADDI, 5, 5, 1)
	b.Label("next")
	b.St(2, words*8, 5)
	b.OpI(isa.ADDI, 1, 1, 1)
	b.Br(isa.BLT, 1, 3, "loop")
	b.MovI(1, 0)
	b.Jmp("loop")
	return b.MustBuild()
}

// Micro is the registry of micro-workloads (not part of Table 1).
func Micro() []Benchmark {
	return []Benchmark{
		{Name: "micro-stream", Suite: "Micro", Paper: "controlled: unit-stride streaming", SegBytes: 16 << 10, Build: MicroStream},
		{Name: "micro-chase", Suite: "Micro", Paper: "controlled: randomized pointer chase", SegBytes: 64 << 10, Build: MicroChase},
		{Name: "micro-toggle", Suite: "Micro", Paper: "controlled: delinquent-bit toggle", SegBytes: 4 << 10, Build: MicroToggle},
		{Name: "micro-branchy", Suite: "Micro", Paper: "controlled: data-dependent branches", SegBytes: 8 << 10, Build: MicroBranchy},
	}
}
