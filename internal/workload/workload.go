// Package workload provides the Table-1 benchmark suite as synthetic
// kernels in the simulator's ISA. The paper runs SPEC CPU2006, three
// commercial workloads, and SPLASH-2 binaries on GEMS/Opal; those
// binaries cannot run on a from-scratch simulator, so each benchmark is
// substituted by a kernel tuned to its published character — memory
// intensity, branch behavior, and, most importantly for FaultHound, the
// value-locality structure of its load/store address and store value
// streams (DESIGN.md, substitution table).
//
// Every kernel runs an endless outer loop so warmup and measurement
// windows never exhaust the program; experiments bound runs by
// committed-instruction counts.
package workload

import (
	"fmt"

	"faulthound/internal/prog"
	"faulthound/internal/stats"
)

// Suite names group the benchmarks as in Table 1.
const (
	SuiteSPECint    = "SPECint"
	SuiteSPECfp     = "SPECfp"
	SuiteCommercial = "Commercial"
	SuiteSPLASH     = "SPLASH-2"
)

// Benchmark is one Table-1 entry.
type Benchmark struct {
	Name  string
	Suite string
	// Paper documents the Table-1 run/input description for the
	// benchmark this kernel substitutes.
	Paper string
	// SegBytes is the per-thread data segment size; it sets the cache
	// behavior class (fits-in-L1 / fits-in-L2 / misses-to-memory).
	SegBytes uint64
	// Build constructs the kernel with its data segment at base, using
	// seed for deterministic data initialization.
	Build func(base uint64, seed uint64) *prog.Program
}

// registry holds all benchmarks in Table-1 order.
var registry = []Benchmark{
	{Name: "perl", Suite: SuiteSPECint, Paper: "400.perlbench: 50M instructions, SimPoint region", SegBytes: 64 << 10, Build: buildPerl},
	{Name: "bzip2", Suite: SuiteSPECint, Paper: "401.bzip2: 50M instructions, SimPoint region", SegBytes: 32 << 10, Build: buildBzip2},
	{Name: "mcf", Suite: SuiteSPECint, Paper: "429.mcf: 50M instructions, SimPoint region", SegBytes: 512 << 10, Build: buildMcf},
	{Name: "astar", Suite: SuiteSPECint, Paper: "473.astar: 50M instructions, SimPoint region", SegBytes: 128 << 10, Build: buildAstar},
	{Name: "dealII", Suite: SuiteSPECfp, Paper: "447.dealII: 50M instructions, SimPoint region", SegBytes: 64 << 10, Build: buildDealII},
	{Name: "gamess", Suite: SuiteSPECfp, Paper: "416.gamess: 50M instructions, SimPoint region", SegBytes: 16 << 10, Build: buildGamess},
	{Name: "leslie3d", Suite: SuiteSPECfp, Paper: "437.leslie3d: 50M instructions, SimPoint region", SegBytes: 256 << 10, Build: buildLeslie3d},
	{Name: "apache", Suite: SuiteCommercial, Paper: "Apache: 500 tx, 20,000 files, 45,000 clients", SegBytes: 1 << 20, Build: buildApache},
	{Name: "specjbb", Suite: SuiteCommercial, Paper: "SPECjbb: 1000 tx, 90 warehouses", SegBytes: 1 << 20, Build: buildSpecjbb},
	{Name: "oltp", Suite: SuiteCommercial, Paper: "OLTP: 40 tx, 25000 warehouses, 300 connections", SegBytes: 2 << 20, Build: buildOLTP},
	{Name: "ocean", Suite: SuiteSPLASH, Paper: "Ocean: full run, 64x64 grid", SegBytes: 64 << 10, Build: buildOcean},
	{Name: "raytrace", Suite: SuiteSPLASH, Paper: "Raytrace: full run, 64 MB, car.env", SegBytes: 128 << 10, Build: buildRaytrace},
	{Name: "volrend", Suite: SuiteSPLASH, Paper: "Volrend: full run, inputs/head", SegBytes: 128 << 10, Build: buildVolrend},
	{Name: "water-nsq", Suite: SuiteSPLASH, Paper: "Water-nsquared: 1 time step, 216 molecules", SegBytes: 32 << 10, Build: buildWaterNsq},
}

// All returns every benchmark in Table-1 order.
func All() []Benchmark {
	return append([]Benchmark(nil), registry...)
}

// Names returns all benchmark names in order.
func Names() []string {
	out := make([]string, len(registry))
	for i, b := range registry {
		out[i] = b.Name
	}
	return out
}

// Get returns the benchmark with the given name, searching the Table-1
// registry and then the micro-workload suite.
func Get(name string) (Benchmark, error) {
	for _, b := range registry {
		if b.Name == name {
			return b, nil
		}
	}
	for _, b := range Micro() {
		if b.Name == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// Suites returns the suite names in Table-1 order.
func Suites() []string {
	seen := map[string]bool{}
	var out []string
	for _, b := range registry {
		if !seen[b.Suite] {
			seen[b.Suite] = true
			out = append(out, b.Suite)
		}
	}
	return out
}

// BySuite groups benchmarks by suite.
func BySuite() map[string][]Benchmark {
	out := map[string][]Benchmark{}
	for _, b := range registry {
		out[b.Suite] = append(out[b.Suite], b)
	}
	return out
}

// Programs builds `threads` copies of benchmark b with disjoint,
// adjacent data segments (one address space per SMT context).
func Programs(b Benchmark, threads int, seed uint64) []*prog.Program {
	out := make([]*prog.Program, threads)
	for i := 0; i < threads; i++ {
		base := prog.DefaultDataBase + uint64(i)*b.SegBytes
		out[i] = b.Build(base, seed+uint64(i))
	}
	return out
}

// permutationCycle writes a single-cycle permutation over words
// [first, first+count) of the segment, for pointer-chasing kernels:
// word i holds the address of the next element. The permutation is a
// deterministic shuffle from seed.
func permutationCycle(b *prog.Builder, firstWord, count uint64, seed uint64) {
	rng := stats.NewRNG(seed)
	idx := make([]uint64, count)
	for i := range idx {
		idx[i] = uint64(i)
	}
	for i := int(count) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		idx[i], idx[j] = idx[j], idx[i]
	}
	// Link the shuffled sequence into one cycle of absolute addresses.
	for k := uint64(0); k < count; k++ {
		from := firstWord + idx[k]
		to := firstWord + idx[(k+1)%count]
		b.Word(from*8, b.DataBase()+to*8)
	}
}
