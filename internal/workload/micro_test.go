package workload

import (
	"testing"

	"faulthound/internal/core"
	"faulthound/internal/pipeline"
	"faulthound/internal/prog"
)

func TestMicroKernelsRunCleanly(t *testing.T) {
	for _, bm := range Micro() {
		bm := bm
		t.Run(bm.Name, func(t *testing.T) {
			t.Parallel()
			p := bm.Build(prog.DefaultDataBase, 1)
			if err := p.Validate(); err != nil {
				t.Fatal(err)
			}
			it := prog.NewInterp(p)
			it.Run(20000)
			if it.Faulted != nil || it.Halted {
				t.Fatalf("faulted=%v halted=%v", it.Faulted, it.Halted)
			}
			c, err := pipeline.New(pipeline.DefaultConfig(1), []*prog.Program{p}, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !c.RunUntilCommits(0, 8000, 2_000_000) {
				t.Fatalf("stalled at %d", c.Committed(0))
			}
		})
	}
}

// TestMicroPatternsDriveDetectorsAsDesigned verifies each kernel
// produces the filter behavior it is named for.
func TestMicroPatternsDriveDetectorsAsDesigned(t *testing.T) {
	run := func(build func(uint64, uint64) *prog.Program) (*pipeline.Core, *core.FaultHound) {
		p := build(prog.DefaultDataBase, 1)
		det := core.New(core.BackendConfig())
		c, err := pipeline.New(pipeline.DefaultConfig(1), []*prog.Program{p}, det)
		if err != nil {
			t.Fatal(err)
		}
		c.RunUntilCommits(0, 15000, 5_000_000)
		return c, det
	}

	// The acted-on (non-suppressed) rate separates the patterns: the
	// stream's carry-bit alarms are delinquent repeats the second-level
	// filter absorbs, while the chase's are genuinely new neighborhoods.
	acted := func(d *core.FaultHound) float64 {
		s := d.Stats()
		return float64(s.Replays+s.Rollbacks+s.Singletons) / float64(s.Checks)
	}
	_, dStream := run(MicroStream)
	_, dChase := run(MicroChase)
	if acted(dChase) < 2*acted(dStream) {
		t.Errorf("pointer chase (%.3f) should act far more than streaming (%.3f)",
			acted(dChase), acted(dStream))
	}

	// Toggle: the second-level filter must suppress most of the
	// repeated delinquent-bit alarms.
	_, dToggle := run(MicroToggle)
	ds := dToggle.Stats()
	if ds.Triggers > 20 && ds.Suppressed*2 < ds.Triggers {
		t.Errorf("second-level filter suppressed only %d of %d toggle triggers",
			ds.Suppressed, ds.Triggers)
	}
}

func TestMicroRegistry(t *testing.T) {
	if len(Micro()) != 4 {
		t.Fatalf("micro suite has %d kernels", len(Micro()))
	}
	for _, bm := range Micro() {
		if bm.Suite != "Micro" || bm.Build == nil {
			t.Fatalf("malformed micro benchmark %+v", bm.Name)
		}
	}
}
