package workload

import (
	"math"

	"faulthound/internal/isa"
	"faulthound/internal/prog"
	"faulthound/internal/stats"
)

// fbits packs a float64 for data-segment initialization.
func fbits(f float64) uint64 { return math.Float64bits(f) }

// buildDealII substitutes 447.dealII: dense FP linear algebra — a
// matrix-vector product swept repeatedly, with regular unit-stride
// loads and an FP multiply-add chain. Register use: r1=row r2=base
// r3=n r4=col r7/r8=tmp; f0=acc f1=a f2=x.
func buildDealII(base, seed uint64) *prog.Program {
	const n = 64 // 64x64 doubles + vectors inside 64 KB
	b := prog.NewBuilderAt("dealII", base, 64<<10)
	rng := stats.NewRNG(seed ^ 0xdea)
	for i := uint64(0); i < n*n; i++ {
		b.Word(i*8, fbits(rng.Float64()*2-1))
	}
	xOff := int32(n * n * 8)
	yOff := xOff + n*8
	for i := uint64(0); i < n; i++ {
		b.Word(uint64(xOff)+i*8, fbits(rng.Float64()))
	}

	b.MovU64(2, base)
	b.MovI(3, n)
	b.MovI(1, 0)
	b.Label("rows")
	b.Op3(isa.XOR, 5, 5, 5) // f-acc reset via integer zero then i2f
	b.Emit(isa.Inst{Op: isa.I2F, Rd: isa.F(0), Rs1: 5})
	b.MovI(4, 0)
	b.Label("cols")
	// a = A[row*n + col]
	b.Op3(isa.MUL, 7, 1, 3)
	b.Op3(isa.ADD, 7, 7, 4)
	b.OpI(isa.SLLI, 7, 7, 3)
	b.Op3(isa.ADD, 8, 2, 7)
	b.Emit(isa.Inst{Op: isa.LD, Rd: isa.F(1), Rs1: 8})
	// x = X[col]
	b.OpI(isa.SLLI, 7, 4, 3)
	b.Op3(isa.ADD, 8, 2, 7)
	b.Emit(isa.Inst{Op: isa.LD, Rd: isa.F(2), Rs1: 8, Imm: xOff})
	b.Op3(isa.FMUL, isa.F(1), isa.F(1), isa.F(2))
	b.Op3(isa.FADD, isa.F(0), isa.F(0), isa.F(1))
	b.OpI(isa.ADDI, 4, 4, 1)
	b.Br(isa.BLT, 4, 3, "cols")
	// Y[row] = acc
	b.OpI(isa.SLLI, 7, 1, 3)
	b.Op3(isa.ADD, 8, 2, 7)
	b.Emit(isa.Inst{Op: isa.ST, Rs1: 8, Rs2: isa.F(0), Imm: yOff})
	// Frame traffic: solver loop bookkeeping at a fixed address.
	b.St(2, yOff+int32(n)*8+8, 1)
	b.OpI(isa.ADDI, 1, 1, 1)
	b.Br(isa.BLT, 1, 3, "rows")
	b.MovI(1, 0)
	b.Jmp("rows")
	return b.MustBuild()
}

// buildGamess substitutes 416.gamess: quantum-chemistry inner kernels —
// compute-bound FP polynomial evaluation with almost no memory traffic
// (high value locality in the few stores it does). Register use: r1=i
// r2=base r7/r8=tmp; f0=x f1=acc f2..f5=coefficients f6=step.
func buildGamess(base, seed uint64) *prog.Program {
	b := prog.NewBuilderAt("gamess", base, 16<<10)
	b.Word(0, fbits(0.5))
	b.Word(8, fbits(1.3))
	b.Word(16, fbits(-0.7))
	b.Word(24, fbits(0.11))
	b.Word(32, fbits(0.003))
	b.Word(40, fbits(1.0000003))
	for i := uint64(0); i < 64; i++ {
		b.Word(128+i*8, fbits(0.01*float64(i)))
	}

	b.MovU64(2, base)
	b.Emit(isa.Inst{Op: isa.LD, Rd: isa.F(0), Rs1: 2, Imm: 0})  // x
	b.Emit(isa.Inst{Op: isa.LD, Rd: isa.F(2), Rs1: 2, Imm: 8})  // c1
	b.Emit(isa.Inst{Op: isa.LD, Rd: isa.F(3), Rs1: 2, Imm: 16}) // c2
	b.Emit(isa.Inst{Op: isa.LD, Rd: isa.F(4), Rs1: 2, Imm: 24}) // c3
	b.Emit(isa.Inst{Op: isa.LD, Rd: isa.F(5), Rs1: 2, Imm: 32}) // c4
	b.Emit(isa.Inst{Op: isa.LD, Rd: isa.F(6), Rs1: 2, Imm: 40}) // step
	b.MovI(1, 0)

	b.Label("loop")
	// Basis-function table walk: L1-resident loads with high locality
	// (gamess sweeps small coefficient arrays in its integral kernels).
	b.OpI(isa.ANDI, 7, 1, 63)
	b.OpI(isa.SLLI, 7, 7, 3)
	b.Op3(isa.ADD, 8, 2, 7)
	b.Emit(isa.Inst{Op: isa.LD, Rd: isa.F(7), Rs1: 8, Imm: 128})
	b.Op3(isa.FADD, isa.F(1), isa.F(1), isa.F(7))
	b.Emit(isa.Inst{Op: isa.ST, Rs1: 8, Rs2: isa.F(1), Imm: 1024})
	// Horner: acc = ((c4*x + c3)*x + c2)*x + c1
	b.Op3(isa.FMUL, isa.F(1), isa.F(5), isa.F(0))
	b.Op3(isa.FADD, isa.F(1), isa.F(1), isa.F(4))
	b.Op3(isa.FMUL, isa.F(1), isa.F(1), isa.F(0))
	b.Op3(isa.FADD, isa.F(1), isa.F(1), isa.F(3))
	b.Op3(isa.FMUL, isa.F(1), isa.F(1), isa.F(0))
	b.Op3(isa.FADD, isa.F(1), isa.F(1), isa.F(2))
	// x drifts slowly (keeps values in a tight neighborhood)
	b.Op3(isa.FMUL, isa.F(0), isa.F(0), isa.F(6))
	// occasionally store the result
	b.OpI(isa.ADDI, 1, 1, 1)
	b.OpI(isa.ANDI, 7, 1, 127)
	b.Br(isa.BNE, 7, 0, "loop")
	b.Emit(isa.Inst{Op: isa.ST, Rs1: 2, Rs2: isa.F(1), Imm: 64})
	b.Ld(8, 2, 72)
	b.Jmp("loop")
	return b.MustBuild()
}

// buildLeslie3d substitutes 437.leslie3d: a 3D stencil sweep whose load
// addresses mix three index strides, producing the wide-ranging,
// multi-bit-varying address stream behind leslie's low coverage in the
// paper (Figure 8; improves with larger filters). Register use: r1=idx
// r2=base r3=cells r7/r8=tmp; f0..f3 stencil values.
func buildLeslie3d(base, seed uint64) *prog.Program {
	const sx, sy = 1, 32
	const sz = 32 * 32
	const cells = 32 * 32 * 30 // leave z-guard planes inside 256 KB
	b := prog.NewBuilderAt("leslie3d", base, 256<<10)
	rng := stats.NewRNG(seed ^ 0x1e5)
	for i := uint64(0); i < cells+sz+sy+1; i++ {
		b.Word(i*8, fbits(rng.Float64()))
	}

	b.MovU64(2, base)
	b.MovI(3, cells)
	b.MovI(1, sz+sy+1) // start past the low guard
	b.Label("loop")
	b.OpI(isa.SLLI, 7, 1, 3)
	b.Op3(isa.ADD, 8, 2, 7)
	b.Emit(isa.Inst{Op: isa.LD, Rd: isa.F(0), Rs1: 8, Imm: 0})
	b.Emit(isa.Inst{Op: isa.LD, Rd: isa.F(1), Rs1: 8, Imm: 8 * sx})
	b.Emit(isa.Inst{Op: isa.LD, Rd: isa.F(2), Rs1: 8, Imm: 8 * sy})
	b.Emit(isa.Inst{Op: isa.LD, Rd: isa.F(3), Rs1: 8, Imm: 8 * sz})
	b.Op3(isa.FADD, isa.F(1), isa.F(1), isa.F(2))
	b.Op3(isa.FADD, isa.F(1), isa.F(1), isa.F(3))
	b.Emit(isa.Inst{Op: isa.LD, Rd: isa.F(2), Rs1: 8, Imm: -8 * sx})
	b.Emit(isa.Inst{Op: isa.LD, Rd: isa.F(3), Rs1: 8, Imm: -8 * sy})
	b.Op3(isa.FADD, isa.F(1), isa.F(1), isa.F(2))
	b.Op3(isa.FADD, isa.F(1), isa.F(1), isa.F(3))
	b.Op3(isa.FSUB, isa.F(0), isa.F(1), isa.F(0)) // bounded update
	b.Emit(isa.Inst{Op: isa.ST, Rs1: 8, Rs2: isa.F(0), Imm: 0})
	// Stride by a z-plane-and-a-bit each step so consecutive addresses
	// differ in many bit positions (low address locality).
	b.OpI(isa.ADDI, 1, 1, sz+sy+sx)
	b.Br(isa.BLT, 1, 3, "loop")
	b.MovI(1, sz+sy+1)
	b.Jmp("loop")
	return b.MustBuild()
}
