package workload

import (
	"faulthound/internal/isa"
	"faulthound/internal/prog"
	"faulthound/internal/stats"
)

// OceanMP builds a genuinely parallel Ocean: nthreads programs that
// share ONE data segment, each relaxing its own band of the grid and
// meeting at a barrier built from an AMOADD counter with a generation
// word — the real SPLASH-2 structure, exercising the ISA's atomics and
// the multicore system's shared memory.
//
// Memory map (word offsets):
//
//	0                 relaxation factor (0.25)
//	1                 barrier arrival counter
//	2                 barrier generation
//	8 .. 8+cells      the grid
//
// Every returned program has the same DataBase; run them on a
// system.System (or one SMT core) so they share memory.
func OceanMP(base uint64, seed uint64, nthreads int) []*prog.Program {
	const side = 64
	const cells = side * side
	const gridOff = 8 // words

	rng := stats.NewRNG(seed ^ 0x0cead)
	programs := make([]*prog.Program, nthreads)
	band := (side - 2) / nthreads

	for tid := 0; tid < nthreads; tid++ {
		b := prog.NewBuilderAt("ocean-mp", base, 128<<10)
		if tid == 0 {
			// Thread 0 owns data initialization in the image.
			b.Word(0, fbits(0.25))
			for i := uint64(0); i < cells+side+1; i++ {
				b.Word((gridOff+i)*8, fbits(rng.Float64()*10))
			}
		}
		firstRow := 1 + tid*band
		lastRow := firstRow + band
		if tid == nthreads-1 {
			lastRow = side - 1
		}

		// r2=base r1=idx r3=bandEnd r9=generation r7/r8=tmp r12=nthreads
		b.MovU64(2, base)
		b.MovI(12, int32(nthreads))
		b.MovI(9, 0)

		b.Label("iter")
		// Relax this thread's band (every other cell, red-black style).
		b.MovI(1, int32(firstRow*side+1))
		b.MovI(3, int32(lastRow*side-1))
		b.Label("sweep")
		b.OpI(isa.SLLI, 7, 1, 3)
		b.Op3(isa.ADD, 8, 2, 7)
		b.Emit(isa.Inst{Op: isa.LD, Rd: isa.F(0), Rs1: 8, Imm: (gridOff + 1) * 8})
		b.Emit(isa.Inst{Op: isa.LD, Rd: isa.F(1), Rs1: 8, Imm: (gridOff - 1) * 8})
		b.Emit(isa.Inst{Op: isa.LD, Rd: isa.F(2), Rs1: 8, Imm: (gridOff + side) * 8})
		b.Emit(isa.Inst{Op: isa.LD, Rd: isa.F(3), Rs1: 8, Imm: (gridOff - side) * 8})
		b.Op3(isa.FADD, isa.F(0), isa.F(0), isa.F(1))
		b.Op3(isa.FADD, isa.F(2), isa.F(2), isa.F(3))
		b.Op3(isa.FADD, isa.F(0), isa.F(0), isa.F(2))
		b.Emit(isa.Inst{Op: isa.LD, Rd: isa.F(4), Rs1: 2, Imm: 0})
		b.Op3(isa.FMUL, isa.F(0), isa.F(0), isa.F(4))
		b.Emit(isa.Inst{Op: isa.ST, Rs1: 8, Rs2: isa.F(0), Imm: gridOff * 8})
		b.OpI(isa.ADDI, 1, 1, 2)
		b.Br(isa.BLT, 1, 3, "sweep")

		// Barrier: last arriver resets the counter and bumps the
		// generation; everyone else spins on the generation word.
		b.OpI(isa.ADDI, 9, 9, 1) // my next generation
		b.MovI(7, 1)
		b.Emit(isa.Inst{Op: isa.AMOADD, Rd: 6, Rs1: 2, Rs2: 7, Imm: 8}) // arrivals
		b.OpI(isa.ADDI, 6, 6, 1)
		b.Br(isa.BLT, 6, 12, "wait")
		// Last arriver: counter = 0, generation = r9 (release).
		b.St(2, 8, 0)
		b.St(2, 16, 9)
		b.Jmp("iter")
		b.Label("wait")
		b.Ld(7, 2, 16)
		b.Br(isa.BLT, 7, 9, "wait")
		b.Jmp("iter")

		programs[tid] = b.MustBuild()
	}
	return programs
}
