package workload

import (
	"faulthound/internal/isa"
	"faulthound/internal/prog"
	"faulthound/internal/stats"
)

// lcgMul is the multiplier of the in-register LCG the kernels use for
// deterministic pseudo-random control and address streams.
const lcgMul = 6364136223846793005

// emitLCG emits one LCG step: state = state*mulReg + 12345, and leaves
// bits [33,64) of the new state in dst (well-mixed bits).
func emitLCG(b *prog.Builder, dst, state, mulReg isa.Reg) {
	b.Op3(isa.MUL, state, state, mulReg)
	b.OpI(isa.ADDI, state, state, 12345)
	b.OpI(isa.SRLI, dst, state, 33)
}

// buildPerl substitutes 400.perlbench: a bytecode-interpreter kernel —
// an opcode dispatch chain over a bytecode array, a software hash table
// with read-modify-write traffic, and branchy control flow. Register
// use: r1=ip r2=base r3=codeWords r4=op r5=acc r6=h r7/r8=tmp r9=case
// constant r10=lcg-mult r11=lcg-state.
func buildPerl(base, seed uint64) *prog.Program {
	const codeWords = 2048
	const hashWords = 1024
	b := prog.NewBuilderAt("perl", base, 64<<10)
	rng := stats.NewRNG(seed ^ 0x9e1)
	for i := uint64(0); i < codeWords; i++ {
		b.Word(i*8, uint64(rng.Intn(5)))
	}
	hashOff := int32(codeWords * 8)
	frameOff := hashOff + hashWords*8

	b.MovU64(2, base)
	b.MovI(3, codeWords)
	b.MovI(1, 0)
	b.MovI(5, 0)
	b.MovI(6, 0)
	b.MovU64(10, lcgMul)
	b.MovI(11, int32(seed&0x7fffffff|1))

	b.Label("loop")
	b.OpI(isa.SLLI, 7, 1, 3)
	b.Op3(isa.ADD, 8, 2, 7)
	b.Ld(4, 8, 0) // op = code[ip]

	// Dispatch chain (the interpreter's unpredictable indirect branch,
	// expressed as a compare ladder).
	b.MovI(9, 0)
	b.Br(isa.BEQ, 4, 9, "op0")
	b.MovI(9, 1)
	b.Br(isa.BEQ, 4, 9, "op1")
	b.MovI(9, 2)
	b.Br(isa.BEQ, 4, 9, "op2")
	b.MovI(9, 3)
	b.Br(isa.BEQ, 4, 9, "op3")
	// default: acc++
	b.OpI(isa.ADDI, 5, 5, 1)
	b.Jmp("next")

	b.Label("op0") // acc += ip
	b.Op3(isa.ADD, 5, 5, 1)
	b.Jmp("next")

	b.Label("op1") // acc ^= h
	b.Op3(isa.XOR, 5, 5, 6)
	b.Jmp("next")

	b.Label("op2") // hash insert: h = (h*31 + acc) & mask; hash[h] = acc
	b.OpI(isa.SLLI, 7, 6, 5)
	b.Op3(isa.SUB, 7, 7, 6) // h*31
	b.Op3(isa.ADD, 6, 7, 5)
	b.OpI(isa.ANDI, 6, 6, hashWords-1)
	b.OpI(isa.SLLI, 7, 6, 3)
	b.Op3(isa.ADD, 8, 2, 7)
	b.St(8, hashOff, 5)
	b.Jmp("next")

	b.Label("op3") // hash probe: acc += hash[lcg & mask]
	emitLCG(b, 7, 11, 10)
	b.OpI(isa.ANDI, 7, 7, hashWords-1)
	b.OpI(isa.SLLI, 7, 7, 3)
	b.Op3(isa.ADD, 8, 2, 7)
	b.Ld(7, 8, hashOff)
	b.Op3(isa.ADD, 5, 5, 7)

	b.Label("next")
	b.OpI(isa.ANDI, 5, 5, 0xffff) // VM values are small scalars/tags
	// Frame traffic: compiled interpreters spill VM state to the stack
	// every dispatch — a stable address with a slowly-changing value.
	b.St(2, frameOff, 5)
	b.Ld(13, 2, frameOff+8)
	b.OpI(isa.ADDI, 1, 1, 1)
	b.Br(isa.BLT, 1, 3, "loop")
	b.MovI(1, 0)
	b.Jmp("loop")
	return b.MustBuild()
}

// buildBzip2 substitutes 401.bzip2: regular byte-stream transformation
// with a histogram — streaming loads/stores with high spatial locality
// and a data-dependent histogram update. Register use: r1=i r2=base
// r3=words r4=v r5=t r6=running r7/r8=tmp.
func buildBzip2(base, seed uint64) *prog.Program {
	const words = 2048
	b := prog.NewBuilderAt("bzip2", base, 32<<10)
	rng := stats.NewRNG(seed ^ 0xb21)
	for i := uint64(0); i < words; i++ {
		b.Word(i*8, rng.Uint64()&0xffff)
	}
	outOff := int32(words * 8)
	histOff := outOff + words*8/2 // histogram region (256 words used)

	b.MovU64(2, base)
	b.MovI(3, words)
	b.MovI(1, 0)
	b.MovI(6, 1)
	b.Label("loop")
	b.OpI(isa.SLLI, 7, 1, 3)
	b.Op3(isa.ADD, 8, 2, 7)
	b.Ld(4, 8, 0) // v = in[i]
	// t = ((v >> 3) ^ (v << 2) + running) & 0xffff
	b.OpI(isa.SRLI, 5, 4, 3)
	b.OpI(isa.SLLI, 7, 4, 2)
	b.Op3(isa.XOR, 5, 5, 7)
	b.Op3(isa.ADD, 5, 5, 6)
	b.OpI(isa.ANDI, 5, 5, 0xffff)
	// running = running*5 + t
	b.OpI(isa.SLLI, 7, 6, 2)
	b.Op3(isa.ADD, 6, 7, 6)
	b.Op3(isa.ADD, 6, 6, 5)
	// out[i] = t's low byte (bzip2 emits a byte stream)
	b.OpI(isa.ANDI, 9, 5, 0xff)
	b.OpI(isa.SLLI, 7, 1, 3)
	b.Op3(isa.ADD, 8, 2, 7)
	b.St(8, outOff, 9)
	// hist[t & (t>>4) & 255]++ — real byte histograms are heavily
	// skewed toward few hot buckets, not uniform
	b.OpI(isa.SRLI, 7, 5, 4)
	b.Op3(isa.AND, 7, 5, 7)
	b.OpI(isa.ANDI, 7, 7, 255)
	b.OpI(isa.SLLI, 7, 7, 3)
	b.Op3(isa.ADD, 8, 2, 7)
	b.Ld(7, 8, histOff)
	b.OpI(isa.ADDI, 7, 7, 1)
	b.St(8, histOff, 7)
	// Frame traffic: spill the running state to a fixed stack slot.
	b.St(2, histOff+256*8, 6)
	// i = (i+1) % words
	b.OpI(isa.ADDI, 1, 1, 1)
	b.Br(isa.BLT, 1, 3, "loop")
	b.MovI(1, 0)
	b.Jmp("loop")
	return b.MustBuild()
}

// buildMcf substitutes 429.mcf: pointer chasing over a 512 KB
// randomized linked cycle — memory-bound, cache-hostile, with
// low-locality load addresses (mcf's defining trait). Register use:
// r1=p r2=base r5=acc r7=tmp r9=store cursor.
func buildMcf(base, seed uint64) *prog.Program {
	const nodes = 32768 // 256 KB of pointers within the 512 KB segment
	b := prog.NewBuilderAt("mcf", base, 512<<10)
	permutationCycle(b, 0, nodes, seed^0x3cf)

	sumOff := int32(nodes * 8)
	b.MovU64(2, base)
	b.Op3(isa.ADD, 1, 2, 0) // p = base (first node)
	b.MovI(5, 0)
	b.MovI(9, 0)
	b.Label("loop")
	b.Ld(1, 1, 0) // p = *p
	b.Op3(isa.XOR, 5, 5, 1)
	b.Ld(7, 1, 0) // peek next (second chained load)
	b.Op3(isa.XOR, 5, 5, 7)
	// Stable global: network-simplex code reloads shared parameters
	// (costs, bounds) from fixed addresses inside the arc loop.
	b.Ld(8, 2, sumOff+8)
	b.Op3(isa.ADD, 5, 5, 8)
	// occasionally publish the accumulator (store stream)
	b.OpI(isa.ADDI, 9, 9, 1)
	b.OpI(isa.ANDI, 7, 9, 63)
	b.Br(isa.BNE, 7, 0, "loop")
	b.St(2, sumOff, 5)
	b.Jmp("loop")
	return b.MustBuild()
}

// buildAstar substitutes 473.astar: grid pathfinding — neighbor-cost
// loads around a moving position with data-dependent direction
// branches. Register use: r1=pos r2=base r4=cost r5=best r6=dir
// r7/r8=tmp r10=lcg-mult r11=lcg-state r12=gridMask.
func buildAstar(base, seed uint64) *prog.Program {
	const side = 128
	// The walked region is masked to gridWords (a 64-row window of the
	// grid) so the +-1 and +side neighbor offsets stay inside the
	// segment.
	const gridWords = 8192
	b := prog.NewBuilderAt("astar", base, 128<<10)
	rng := stats.NewRNG(seed ^ 0xa57)
	for i := uint64(0); i < gridWords+side+2; i++ {
		b.Word(i*8, uint64(rng.Intn(1000)))
	}

	b.MovU64(2, base)
	b.MovI(1, side+1) // start inside the grid
	b.MovI(5, 1<<30)
	b.MovI(6, 1)
	b.MovU64(10, lcgMul)
	b.MovI(11, int32(seed|1)&0x7fffffff)
	b.MovI(12, gridWords-1)

	b.Label("loop")
	// pos = ((pos + dir) & mask) | 1: masked to the window, forced >= 1
	// so the -8 neighbor offset stays mapped
	b.Op3(isa.ADD, 1, 1, 6)
	b.Op3(isa.AND, 1, 1, 12)
	b.OpI(isa.ORI, 1, 1, 1)
	b.OpI(isa.SLLI, 7, 1, 3)
	b.Op3(isa.ADD, 8, 2, 7)
	b.Ld(4, 8, 0) // cost = grid[pos]
	// neighbor sum: grid[pos+1] + grid[pos+side] (offsets within segment
	// because pos is masked and the extreme rows wrap via the mask)
	b.Ld(7, 8, 8)
	b.Op3(isa.ADD, 4, 4, 7)
	b.Ld(7, 8, -8)
	b.Op3(isa.ADD, 4, 4, 7)
	// best-so-far with data-dependent branch
	b.Br(isa.BGE, 4, 5, "notbest")
	b.Op3(isa.ADD, 5, 4, 0)
	b.St(8, 0, 5) // relax the cell (visited mark)
	b.Label("notbest")
	// Frame traffic: the open-list head and best-cost bookkeeping live
	// at fixed addresses.
	b.St(2, (gridWords+side)*8, 5)
	b.Ld(13, 2, (gridWords+side)*8)
	// direction depends on cost parity (unpredictable)
	b.OpI(isa.ANDI, 7, 4, 1)
	b.Br(isa.BEQ, 7, 0, "east")
	b.MovI(6, side) // south
	b.Jmp("loop")
	b.Label("east")
	b.MovI(6, 1)
	b.Jmp("loop")
	return b.MustBuild()
}
