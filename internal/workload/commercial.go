package workload

import (
	"faulthound/internal/isa"
	"faulthound/internal/prog"
	"faulthound/internal/stats"
)

// buildApache substitutes the Apache web-server workload: a request
// loop that hashes a "URL", walks the served file's blocks, and appends
// to a log — wide-ranging addresses over a 1 MB working set, branchy
// control, store-heavy. Register use: r1=req r2=base r4=fileIdx
// r5=checksum r6=len r7/r8=tmp r9=logPtr r10=lcg-mult r11=lcg-state
// r12=blk.
func buildApache(base, seed uint64) *prog.Program {
	const files = 4096
	const blockWords = 16
	const contentWords = files * blockWords // 512 KB
	b := prog.NewBuilderAt("apache", base, 1<<20)
	rng := stats.NewRNG(seed ^ 0xa9a)
	// File table: per-file pseudo-length 1..blockWords.
	for i := uint64(0); i < files; i++ {
		b.Word(i*8, uint64(rng.Intn(blockWords))+1)
	}
	tableOff := int32(0)
	contentOff := int32(files * 8)
	logOff := contentOff + contentWords*8
	for i := uint64(0); i < 4096; i += 64 { // sparse content init
		b.Word(uint64(contentOff)+i*8, rng.Uint64()&0xffff)
	}

	b.MovU64(2, base)
	b.MovI(9, 0)
	b.MovU64(10, lcgMul)
	b.MovI(11, int32(seed|3)&0x7fffffff)
	b.MovI(1, 0)

	b.Label("request")
	// fileIdx: web traffic is Zipf-like — AND two uniform draws to bias
	// toward a small set of hot files.
	emitLCG(b, 4, 11, 10)
	emitLCG(b, 7, 11, 10)
	b.Op3(isa.AND, 4, 4, 7)
	b.OpI(isa.ANDI, 4, 4, files-1)
	// len = fileTable[fileIdx]
	b.OpI(isa.SLLI, 7, 4, 3)
	b.Op3(isa.ADD, 8, 2, 7)
	b.Ld(6, 8, tableOff)
	// checksum the file's blocks: blk in [0, len)
	b.MovI(5, 0)
	b.MovI(12, 0)
	b.Label("blocks")
	b.Op3(isa.MUL, 7, 4, 0)  // clear r7 (mul by zero reg)
	b.OpI(isa.SLLI, 7, 4, 7) // fileIdx * blockWords * 8
	b.OpI(isa.SLLI, 3, 12, 3)
	b.Op3(isa.ADD, 7, 7, 3)
	b.Op3(isa.ADD, 8, 2, 7)
	b.Ld(7, 8, contentOff)
	b.Op3(isa.ADD, 5, 5, 7)
	b.OpI(isa.ADDI, 12, 12, 1)
	b.Br(isa.BLT, 12, 6, "blocks")
	b.OpI(isa.ANDI, 5, 5, 0xffff) // logged fields are small (status, bytes)
	// log the request: log[logPtr & mask] = checksum
	b.OpI(isa.ANDI, 7, 9, 8191)
	b.OpI(isa.SLLI, 7, 7, 3)
	b.Op3(isa.ADD, 8, 2, 7)
	b.St(8, logOff, 5)
	b.OpI(isa.ADDI, 9, 9, 1)
	// keep-alive branch on checksum parity (unpredictable)
	b.OpI(isa.ANDI, 7, 5, 1)
	b.Br(isa.BEQ, 7, 0, "request")
	b.St(2, logOff+8*8192+16, 9) // connection table slot (stable address)
	b.Jmp("request")
	return b.MustBuild()
}

// buildSpecjbb substitutes SPECjbb: warehouse transactions — a binary
// search over a sorted key array (hard-to-predict branches, hopping
// addresses) followed by an object field update. Register use: r1=key
// r2=base r4=lo r5=hi r6=mid r7/r8=tmp r9=val r10=lcg-mult
// r11=lcg-state.
func buildSpecjbb(base, seed uint64) *prog.Program {
	const keys = 65536 // 512 KB sorted array
	b := prog.NewBuilderAt("specjbb", base, 1<<20)
	for i := uint64(0); i < keys; i += 1 {
		b.Word(i*8, i*7+3) // sorted keys
	}
	objOff := int32(keys * 8)

	b.MovU64(2, base)
	b.MovU64(10, lcgMul)
	b.MovI(11, int32(seed|5)&0x7fffffff)

	b.Label("tx")
	// key = random in range
	emitLCG(b, 1, 11, 10)
	b.OpI(isa.ANDI, 1, 1, keys-1)
	b.OpI(isa.SLLI, 7, 1, 3)
	b.OpI(isa.ADDI, 1, 7, 0) // key*8 proxy (searchable value)
	// binary search for key over keys[0..n)
	b.MovI(4, 0)
	b.MovI(5, keys)
	b.Label("search")
	b.Op3(isa.ADD, 6, 4, 5)
	b.OpI(isa.SRLI, 6, 6, 1) // mid
	b.OpI(isa.SLLI, 7, 6, 3)
	b.Op3(isa.ADD, 8, 2, 7)
	b.Ld(7, 8, 0) // keys[mid]
	b.Br(isa.BGE, 7, 1, "goleft")
	b.OpI(isa.ADDI, 4, 6, 1) // lo = mid+1
	b.Jmp("cont")
	b.Label("goleft")
	b.Op3(isa.ADD, 5, 6, 0) // hi = mid
	b.Label("cont")
	b.Br(isa.BLT, 4, 5, "search")
	// object update at the found slot
	b.OpI(isa.ANDI, 6, 4, 16383)
	b.OpI(isa.SLLI, 7, 6, 3)
	b.Op3(isa.ADD, 8, 2, 7)
	b.Ld(9, 8, objOff)
	b.OpI(isa.ADDI, 9, 9, 1)
	b.St(8, objOff, 9)
	// Warehouse statistics: a fixed hot counter every transaction.
	b.Ld(9, 2, objOff+16384*8+8)
	b.OpI(isa.ADDI, 9, 9, 1)
	b.St(2, objOff+16384*8+8, 9)
	b.Jmp("tx")
	return b.MustBuild()
}

// buildOLTP substitutes the OLTP (TPC-C-like) workload: transactions
// that pick a random record page, read several fields, branch on an
// abort condition, and write back fields plus a redo-log entry — a
// 2 MB working set with frequent L2 misses. Register use: r1=rec
// r2=base r4..r6=fields r7/r8=tmp r9=logPtr r10=lcg-mult r11=lcg-state.
func buildOLTP(base, seed uint64) *prog.Program {
	const records = 32768 // x 7 words < 2 MB
	const recWords = 7
	b := prog.NewBuilderAt("oltp", base, 2<<20)
	rng := stats.NewRNG(seed ^ 0x017)
	for i := uint64(0); i < 2048; i++ { // sparse init
		b.Word(i*recWords*8, rng.Uint64()&0xffff)
	}
	logOff := int32(records * recWords * 8)

	b.MovU64(2, base)
	b.MovI(9, 0)
	b.MovU64(10, lcgMul)
	b.MovI(11, int32(seed|7)&0x7fffffff)

	b.Label("tx")
	// rec = random record
	emitLCG(b, 1, 11, 10)
	b.OpI(isa.ANDI, 1, 1, records-1)
	b.MovI(7, recWords*8)
	b.Op3(isa.MUL, 7, 1, 7)
	b.Op3(isa.ADD, 8, 2, 7)
	// read fields
	b.Ld(4, 8, 0)
	b.Ld(5, 8, 8)
	b.Ld(6, 8, 16)
	// abort check: field parity (data-dependent branch)
	b.Op3(isa.ADD, 7, 4, 5)
	b.OpI(isa.ANDI, 7, 7, 3)
	b.Br(isa.BEQ, 7, 0, "abort")
	// commit: write back updated fields
	b.Op3(isa.ADD, 4, 4, 6)
	b.OpI(isa.ADDI, 5, 5, 1)
	b.St(8, 0, 4)
	b.St(8, 8, 5)
	// redo log append
	b.OpI(isa.ANDI, 7, 9, 4095)
	b.OpI(isa.SLLI, 7, 7, 3)
	b.Op3(isa.ADD, 8, 2, 7)
	b.St(8, logOff, 4)
	// metadata page: LSN counter at a fixed hot address
	b.Ld(7, 2, logOff+4096*8+8)
	b.OpI(isa.ADDI, 7, 7, 1)
	b.St(2, logOff+4096*8+8, 7)
	b.OpI(isa.ADDI, 9, 9, 1)
	b.Jmp("tx")
	b.Label("abort")
	b.OpI(isa.ADDI, 9, 9, 1)
	b.Jmp("tx")
	return b.MustBuild()
}
