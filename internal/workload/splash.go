package workload

import (
	"faulthound/internal/isa"
	"faulthound/internal/prog"
	"faulthound/internal/stats"
)

// buildOcean substitutes SPLASH-2 Ocean (64x64 grid): a red-black 2D
// relaxation sweep — regular unit- and row-stride FP loads/stores with
// high address locality. Register use: r1=idx r2=base r3=limit
// r7/r8=tmp; f0..f4 stencil.
func buildOcean(base, seed uint64) *prog.Program {
	const side = 64
	const cells = side * side
	b := prog.NewBuilderAt("ocean", base, 64<<10)
	rng := stats.NewRNG(seed ^ 0x0cea)
	for i := uint64(0); i < cells+side+1; i++ {
		b.Word(i*8, fbits(rng.Float64()*10))
	}
	b.Word(0, fbits(0.25)) // relaxation factor (also cell 0, unvisited)

	b.MovU64(2, base)
	b.MovI(3, cells)
	b.MovI(1, side+1)
	b.Label("sweep")
	b.OpI(isa.SLLI, 7, 1, 3)
	b.Op3(isa.ADD, 8, 2, 7)
	b.Emit(isa.Inst{Op: isa.LD, Rd: isa.F(0), Rs1: 8, Imm: 8})         // east
	b.Emit(isa.Inst{Op: isa.LD, Rd: isa.F(1), Rs1: 8, Imm: -8})        // west
	b.Emit(isa.Inst{Op: isa.LD, Rd: isa.F(2), Rs1: 8, Imm: 8 * side})  // south
	b.Emit(isa.Inst{Op: isa.LD, Rd: isa.F(3), Rs1: 8, Imm: -8 * side}) // north
	b.Op3(isa.FADD, isa.F(0), isa.F(0), isa.F(1))
	b.Op3(isa.FADD, isa.F(2), isa.F(2), isa.F(3))
	b.Op3(isa.FADD, isa.F(0), isa.F(0), isa.F(2))
	b.Emit(isa.Inst{Op: isa.LD, Rd: isa.F(4), Rs1: 2, Imm: 0}) // 0.25 factor slot
	b.Op3(isa.FMUL, isa.F(0), isa.F(0), isa.F(4))
	b.Emit(isa.Inst{Op: isa.ST, Rs1: 8, Rs2: isa.F(0), Imm: 0})
	b.St(2, (cells+side+2)*8, 1) // loop bookkeeping at a fixed slot
	b.OpI(isa.ADDI, 1, 1, 2)     // red-black: every other cell
	b.Br(isa.BLT, 1, 3, "sweep")
	b.MovI(1, side+1)
	b.Jmp("sweep")
	return b.MustBuild()
}

// buildRaytrace substitutes SPLASH-2 Raytrace: ray-sphere intersection
// tests — per-object FP loads, dot-product arithmetic, and a
// data-dependent hit branch with irregular hit-record stores. Register
// use: r1=obj r2=base r3=objects r5=sign r7/r8=tmp r9=hits; f0..f5.
func buildRaytrace(base, seed uint64) *prog.Program {
	const objects = 512
	const objWords = 4 // cx, cy, cz, r2
	b := prog.NewBuilderAt("raytrace", base, 128<<10)
	rng := stats.NewRNG(seed ^ 0x5a1)
	for i := uint64(0); i < objects*objWords; i++ {
		b.Word(i*8, fbits(rng.Float64()*20-10))
	}
	hitOff := int32(objects * objWords * 8)

	b.MovU64(2, base)
	b.MovI(3, objects)
	b.MovI(1, 0)
	b.MovI(9, 0)
	// Ray origin/direction components drift in f4/f5.
	b.MovI(7, 3)
	b.Emit(isa.Inst{Op: isa.I2F, Rd: isa.F(4), Rs1: 7})
	b.MovI(7, 2)
	b.Emit(isa.Inst{Op: isa.I2F, Rd: isa.F(5), Rs1: 7})

	b.Label("object")
	b.OpI(isa.SLLI, 7, 1, 5) // obj * 4 words * 8
	b.Op3(isa.ADD, 8, 2, 7)
	b.Emit(isa.Inst{Op: isa.LD, Rd: isa.F(0), Rs1: 8, Imm: 0})
	b.Emit(isa.Inst{Op: isa.LD, Rd: isa.F(1), Rs1: 8, Imm: 8})
	b.Emit(isa.Inst{Op: isa.LD, Rd: isa.F(2), Rs1: 8, Imm: 16})
	b.Emit(isa.Inst{Op: isa.LD, Rd: isa.F(3), Rs1: 8, Imm: 24})
	// dist2 = (cx-ox)^2 + (cy-oy)^2 - r2
	b.Op3(isa.FSUB, isa.F(0), isa.F(0), isa.F(4))
	b.Op3(isa.FMUL, isa.F(0), isa.F(0), isa.F(0))
	b.Op3(isa.FSUB, isa.F(1), isa.F(1), isa.F(5))
	b.Op3(isa.FMUL, isa.F(1), isa.F(1), isa.F(1))
	b.Op3(isa.FADD, isa.F(0), isa.F(0), isa.F(1))
	b.Op3(isa.FSUB, isa.F(0), isa.F(0), isa.F(3))
	// hit if dist2 < 0 (sign via F2I)
	b.Emit(isa.Inst{Op: isa.F2I, Rd: 5, Rs1: isa.F(0)})
	b.Br(isa.BGE, 5, 0, "miss")
	// record the hit
	b.OpI(isa.ANDI, 7, 9, 1023)
	b.OpI(isa.SLLI, 7, 7, 3)
	b.Op3(isa.ADD, 8, 2, 7)
	b.St(8, hitOff, 1)
	b.OpI(isa.ADDI, 9, 9, 1)
	b.Label("miss")
	b.OpI(isa.ADDI, 1, 1, 1)
	b.Br(isa.BLT, 1, 3, "object")
	// next ray: bounded origin update (oscillates within the scene)
	b.Op3(isa.FSUB, isa.F(4), isa.F(5), isa.F(4))
	b.Op3(isa.FADD, isa.F(4), isa.F(4), isa.F(2))
	b.Op3(isa.FMIN, isa.F(4), isa.F(4), isa.F(3))
	b.St(2, hitOff+1024*8+8, 9)
	b.MovI(1, 0)
	b.Jmp("object")
	return b.MustBuild()
}

// buildVolrend substitutes SPLASH-2 Volrend: volume rendering — voxel
// sampling at pseudo-random 3D positions, an opacity transfer-table
// lookup, and FP accumulation with occasional image stores. Register
// use: r1=sample r2=base r4=voxel r7/r8=tmp r9=pix r10=lcg-mult
// r11=lcg-state; f0=opacity f1=sample.
func buildVolrend(base, seed uint64) *prog.Program {
	const voxels = 8192
	b := prog.NewBuilderAt("volrend", base, 128<<10)
	rng := stats.NewRNG(seed ^ 0x701)
	for i := uint64(0); i < voxels; i += 2 { // sparse-but-dense-enough init
		b.Word(i*8, uint64(rng.Intn(256)))
	}
	tableOff := int32(voxels * 8)
	for i := uint64(0); i < 256; i++ {
		b.Word(uint64(tableOff)+i*8, fbits(float64(i)/256))
	}
	imageOff := tableOff + 256*8

	b.MovU64(2, base)
	b.MovU64(10, lcgMul)
	b.MovI(11, int32(seed|9)&0x7fffffff)
	b.MovI(9, 0)
	b.Op3(isa.XOR, 7, 7, 7)
	b.Emit(isa.Inst{Op: isa.I2F, Rd: isa.F(0), Rs1: 7})

	b.Label("sample")
	// voxel address from the ray position (pseudo-random walk)
	emitLCG(b, 1, 11, 10)
	b.OpI(isa.ANDI, 1, 1, voxels-1)
	b.OpI(isa.SLLI, 7, 1, 3)
	b.Op3(isa.ADD, 8, 2, 7)
	b.Ld(4, 8, 0)
	// transfer lookup
	b.OpI(isa.ANDI, 4, 4, 255)
	b.OpI(isa.SLLI, 7, 4, 3)
	b.Op3(isa.ADD, 8, 2, 7)
	b.Emit(isa.Inst{Op: isa.LD, Rd: isa.F(1), Rs1: 8, Imm: tableOff})
	b.Op3(isa.FADD, isa.F(0), isa.F(0), isa.F(1))
	// every 16 samples, write the pixel
	b.OpI(isa.ADDI, 9, 9, 1)
	b.OpI(isa.ANDI, 7, 9, 15)
	b.Br(isa.BNE, 7, 0, "sample")
	b.OpI(isa.ANDI, 7, 9, 2047)
	b.OpI(isa.SLLI, 7, 7, 3)
	b.Op3(isa.ADD, 8, 2, 7)
	b.Emit(isa.Inst{Op: isa.ST, Rs1: 8, Rs2: isa.F(0), Imm: imageOff})
	b.St(2, imageOff+2048*8+8, 9) // ray state at a fixed slot
	// next pixel starts transparent
	b.Op3(isa.XOR, 7, 7, 7)
	b.Emit(isa.Inst{Op: isa.I2F, Rd: isa.F(0), Rs1: 7})
	b.Jmp("sample")
	return b.MustBuild()
}

// buildWaterNsq substitutes SPLASH-2 Water-nsquared (216 molecules):
// O(n^2) pairwise interactions — L1-resident FP loads, distance
// arithmetic including a divide, and per-molecule force accumulation.
// Register use: r1=i r2=base r3=n r4=j r7/r8=tmp; f0..f5.
func buildWaterNsq(base, seed uint64) *prog.Program {
	const n = 216
	const molWords = 4
	b := prog.NewBuilderAt("water-nsq", base, 32<<10)
	rng := stats.NewRNG(seed ^ 0x3a7)
	for i := uint64(0); i < n*molWords; i++ {
		b.Word(i*8, fbits(rng.Float64()*5+0.1))
	}
	forceOff := int32(n * molWords * 8)

	b.MovU64(2, base)
	b.MovI(3, n)
	b.MovI(1, 0)
	b.Label("outer")
	b.MovI(4, 0)
	// load molecule i
	b.OpI(isa.SLLI, 7, 1, 5)
	b.Op3(isa.ADD, 8, 2, 7)
	b.Emit(isa.Inst{Op: isa.LD, Rd: isa.F(0), Rs1: 8, Imm: 0})
	b.Emit(isa.Inst{Op: isa.LD, Rd: isa.F(1), Rs1: 8, Imm: 8})
	b.Op3(isa.XOR, 7, 7, 7)
	b.Emit(isa.Inst{Op: isa.I2F, Rd: isa.F(5), Rs1: 7}) // force acc
	b.Label("inner")
	b.OpI(isa.SLLI, 7, 4, 5)
	b.Op3(isa.ADD, 8, 2, 7)
	b.Emit(isa.Inst{Op: isa.LD, Rd: isa.F(2), Rs1: 8, Imm: 0})
	b.Emit(isa.Inst{Op: isa.LD, Rd: isa.F(3), Rs1: 8, Imm: 8})
	// r2 = (xi-xj)^2 + (yi-yj)^2; f = 1/r2 (softened by +eps via data)
	b.Op3(isa.FSUB, isa.F(2), isa.F(0), isa.F(2))
	b.Op3(isa.FMUL, isa.F(2), isa.F(2), isa.F(2))
	b.Op3(isa.FSUB, isa.F(3), isa.F(1), isa.F(3))
	b.Op3(isa.FMUL, isa.F(3), isa.F(3), isa.F(3))
	b.Op3(isa.FADD, isa.F(2), isa.F(2), isa.F(3))
	b.Op3(isa.FADD, isa.F(2), isa.F(2), isa.F(0)) // soften (positive coords)
	b.Op3(isa.FDIV, isa.F(4), isa.F(1), isa.F(2))
	b.Op3(isa.FADD, isa.F(5), isa.F(5), isa.F(4))
	b.OpI(isa.ADDI, 4, 4, 1)
	b.Br(isa.BLT, 4, 3, "inner")
	// store force[i]
	b.OpI(isa.SLLI, 7, 1, 3)
	b.Op3(isa.ADD, 8, 2, 7)
	b.Emit(isa.Inst{Op: isa.ST, Rs1: 8, Rs2: isa.F(5), Imm: forceOff})
	b.St(2, forceOff+int32(n)*8+8, 1) // step bookkeeping, fixed slot
	b.OpI(isa.ADDI, 1, 1, 1)
	b.Br(isa.BLT, 1, 3, "outer")
	b.MovI(1, 0)
	b.Jmp("outer")
	return b.MustBuild()
}
