// Package campaign orchestrates statistical fault-injection campaigns
// at scale: it fans the injections of every benchmark×scheme cell
// across a pool of workers, journals each completed injection so an
// interrupted campaign resumes from where it stopped, and writes a
// provenance-stamped artifact bundle (manifest.json, results.csv,
// summary.json, report.md) that records exactly what produced a number.
//
// Determinism: every injection's randomness is sealed in its pre-drawn
// descriptor (fault.DrawInjections), workers share only read-only
// golden state (fault.Prepared), and results are keyed by (cell,
// descriptor index) — so the artifact bundle is bit-identical for any
// worker count, and a resumed campaign reproduces the uninterrupted
// bundle byte for byte.
package campaign

import (
	"fmt"
	"runtime"

	"faulthound/internal/fault"
	"faulthound/internal/pipeline"
	"faulthound/internal/scheme"
	"faulthound/internal/stats"
)

// BaselineScheme is the scheme name of the unprotected pairing basis.
// Every campaign runs a baseline cell per benchmark: coverage is
// defined against it.
const BaselineScheme = "baseline"

// BaselineSpec is BaselineScheme as a resolved scheme spec — the cell
// key of every pairing-basis cell.
var BaselineSpec = scheme.Spec{Name: BaselineScheme}

// Spec declares a campaign: which benchmark×scheme cells to run and
// with what fault configuration. The spec is stored verbatim in
// manifest.json; a resume run must present an equivalent spec.
type Spec struct {
	// RunID names the campaign (directory names, report headers). The
	// CLI defaults it to a UTC timestamp.
	RunID string `json:"run_id"`
	// Benchmarks lists the workloads, in execution order.
	Benchmarks []string `json:"benchmarks"`
	// Schemes lists the detection schemes under test, as canonical
	// scheme spec strings ("faulthound", "faulthound?tcam=16"). The
	// baseline is implicit: each benchmark always gets a baseline cell
	// first, and listing "baseline" explicitly is allowed but redundant.
	Schemes []string `json:"schemes"`
	// Workers sizes the injection worker pool; <= 0 means GOMAXPROCS.
	// Results do not depend on it.
	Workers int `json:"workers"`
	// Fault parameterizes every cell's campaign. All cells share one
	// seed: identical injection descriptor streams across schemes are
	// what make coverage pairing meaningful.
	Fault fault.Config `json:"fault"`
}

// Cell is one benchmark×scheme campaign of Spec.Fault.Injections
// injections. Scheme is a resolved scheme spec; its canonical string
// form is what journals, manifests, and result bundles record, so a
// plain scheme name serializes exactly as it always has.
type Cell struct {
	Bench  string      `json:"bench"`
	Scheme scheme.Spec `json:"scheme"`
}

// String renders the cell as "bench/scheme-spec".
func (c Cell) String() string { return c.Bench + "/" + c.Scheme.String() }

// CellSource is the plan layer: it decides which cells a run executes.
// The classic path is the static benchmark×scheme cross product of a
// Spec (see Spec.Source); search drivers plan dynamically, proposing
// new batches of cells round by round and handing each batch to the
// engine as a StaticCells plan.
type CellSource interface {
	// Plan returns the cells to execute, in deterministic execution
	// order. The engine calls it exactly once per run.
	Plan() []Cell
}

// StaticCells is the trivial CellSource: a fixed, pre-enumerated cell
// list. It is what Spec.Source produces and what batch evaluators hand
// to the engine.
type StaticCells []Cell

// Plan returns the slice itself.
func (s StaticCells) Plan() []Cell { return s }

// Cells enumerates the campaign cells in deterministic execution
// order: benchmark-major, baseline first, then the spec's schemes in
// order (deduplicated on their canonical spec). Scheme strings are
// parsed syntactically — enumeration is total; validation happens when
// the CoreFactory resolves a cell.
func (s Spec) Cells() []Cell {
	return s.Source().Plan()
}

// Source is the spec's static enumeration as a CellSource — the plan
// layer of a classic campaign.
func (s Spec) Source() CellSource {
	var out StaticCells
	for _, bm := range s.Benchmarks {
		out = append(out, Cell{bm, BaselineSpec})
		seen := map[scheme.Spec]bool{BaselineSpec: true}
		for _, sch := range s.Schemes {
			sp := scheme.FromString(sch)
			if !seen[sp] {
				seen[sp] = true
				out = append(out, Cell{bm, sp})
			}
		}
	}
	return out
}

// WorkerCount resolves the effective pool size: the spec's Workers, or
// GOMAXPROCS when unset. Trace consumers use it to pre-name the
// engine's per-worker tracks.
func (s Spec) WorkerCount() int {
	if s.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return s.Workers
}

// validate rejects specs the engine cannot execute.
func (s Spec) validate() error {
	if len(s.Benchmarks) == 0 {
		return fmt.Errorf("campaign: spec has no benchmarks")
	}
	if s.Fault.Injections <= 0 {
		return fmt.Errorf("campaign: spec has no injections")
	}
	return nil
}

// equivalent reports whether two specs describe the same campaign for
// resume purposes: identical cells and fault configuration. Workers and
// RunID may differ (a resume may use a different pool size).
func (s Spec) equivalent(o Spec) bool {
	a, b := s.Cells(), o.Cells()
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	// Execution-strategy knobs (checkpoint forking, reconvergence
	// early-exit) don't change a campaign's results, are excluded from
	// manifest JSON, and — like Workers — may differ between the
	// original run and a resume.
	sf, of := s.Fault, o.Fault
	sf.CheckpointCycles, of.CheckpointCycles = 0, 0
	sf.EarlyExit, of.EarlyExit = false, false
	return sf == of
}

// CoreFactory builds the deterministic core constructor for one cell.
// It is how the engine stays independent of the experiment harness: the
// harness (or the CLI) supplies scheme resolution and core
// construction.
type CoreFactory func(bench string, sp scheme.Spec) (func() *pipeline.Core, error)

// CellSeed derives a decorrelated RNG for per-cell auxiliary draws
// (shard labels, sampling) from the campaign seed via stats.RNG.Split.
// The cell's injection stream itself always uses Spec.Fault.Seed
// directly — pairing across schemes requires it — but consumers that
// need extra per-cell randomness must go through here so streams stay
// deterministic and decorrelated regardless of cell order or worker
// count.
func CellSeed(seed uint64, c Cell) uint64 {
	rng := stats.NewRNG(seed)
	for _, s := range []string{c.Bench, c.Scheme.String()} {
		for _, b := range []byte(s) {
			rng = stats.NewRNG(rng.Uint64() ^ uint64(b))
		}
	}
	return rng.Split().Uint64()
}
