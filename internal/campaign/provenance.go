package campaign

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"faulthound/internal/buildinfo"
)

// Provenance stamps an artifact bundle with what produced it: the run
// ID, the toolchain, and the source revision. It is embedded in
// manifest.json and echoed by report.md so every number in the bundle
// is traceable.
type Provenance struct {
	RunID     string `json:"run_id"`
	CreatedAt string `json:"created_at"` // RFC 3339, UTC
	GoVersion string `json:"go_version"`
	GitCommit string `json:"git_commit"` // "unknown" outside a git checkout
	// Generator identifies the producing binary ("faulthound/<version>
	// (<commit>)", internal/buildinfo). Optional: bundles predating it
	// (reference-1k) omit the field, and readers render "unknown".
	Generator string `json:"generator,omitempty"`
}

// NewProvenance stamps a bundle with the current toolchain, source
// revision, and wall-clock time.
func NewProvenance(runID string) Provenance {
	return Provenance{
		RunID:     runID,
		CreatedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GitCommit: GitCommit(),
		Generator: buildinfo.Generator(),
	}
}

// DefaultRunID returns a timestamp-based run identifier, unique at
// one-second granularity (the exemplar bundle format's convention).
func DefaultRunID() string {
	return time.Now().UTC().Format("2006-01-02T15-04-05Z")
}

// GitCommit resolves HEAD, or "unknown" when git or the checkout is
// unavailable. Besides provenance stamping, the campaign-serving
// daemon folds it into spec hashes so cached results never cross
// source revisions.
func GitCommit() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// MarshalJSON renders v as stable, indented JSON with a trailing
// newline — the one marshaling every artifact and the fhsim -json
// output share.
func MarshalJSON(v any) ([]byte, error) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WriteJSONFile marshals v with MarshalJSON into path, creating parent
// directories.
func WriteJSONFile(path string, v any) error {
	b, err := MarshalJSON(v)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}
