package campaign_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"faulthound/internal/campaign"
	"faulthound/internal/fault"
	"faulthound/internal/harness"
	"faulthound/internal/obs"
	"faulthound/internal/scheme"
)

// testSpec returns a small two-cell campaign (bzip2 x baseline +
// faulthound) and the harness options that resolve its cores.
func testSpec(t *testing.T, injections int) (campaign.Spec, harness.Options) {
	t.Helper()
	o := harness.QuickOptions()
	spec := o.CampaignSpec([]string{"bzip2"}, []harness.Scheme{harness.FaultHound})
	spec.RunID = "test-run"
	spec.Fault.Injections = injections
	return spec, o
}

func runEngine(t *testing.T, spec campaign.Spec, o harness.Options, dir string, resume bool, progress func(done, total int)) (*campaign.Outcome, error) {
	t.Helper()
	eng := &campaign.Engine{Spec: spec, Factory: o.CampaignFactory(), Progress: progress}
	return eng.Run(context.Background(), dir, resume)
}

func readFile(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestWorkerCountInvariance is the determinism guarantee: the same spec
// produces byte-identical results.csv and summary.json bundles whether
// one worker or many execute it.
func TestWorkerCountInvariance(t *testing.T) {
	spec, o := testSpec(t, 24)
	var bundles [][]byte
	for _, workers := range []int{1, 4} {
		dir := filepath.Join(t.TempDir(), "run")
		s := spec
		s.Workers = workers
		if _, err := runEngine(t, s, o, dir, false, nil); err != nil {
			t.Fatal(err)
		}
		bundles = append(bundles, readFile(t, filepath.Join(dir, campaign.ResultsName)))
		// summary.json must match too (aggregates of the same results).
		bundles = append(bundles, readFile(t, filepath.Join(dir, campaign.SummaryName)))
	}
	if string(bundles[0]) != string(bundles[2]) {
		t.Fatal("results.csv differs between -workers 1 and -workers 4")
	}
	if string(bundles[1]) != string(bundles[3]) {
		t.Fatal("summary.json differs between -workers 1 and -workers 4")
	}
	if len(bundles[0]) == 0 {
		t.Fatal("empty results.csv")
	}
}

// TestResumeReproducesBundle kills a campaign mid-flight (context
// cancel after N results), restarts it with resume, and asserts the
// merged bundle is byte-identical to an uninterrupted run with the
// same seed — the journal-resume guarantee, run under -race in CI.
func TestResumeReproducesBundle(t *testing.T) {
	spec, o := testSpec(t, 24)
	spec.Workers = 4

	// Uninterrupted reference run.
	refDir := filepath.Join(t.TempDir(), "ref")
	if _, err := runEngine(t, spec, o, refDir, false, nil); err != nil {
		t.Fatal(err)
	}
	refCSV := readFile(t, filepath.Join(refDir, campaign.ResultsName))

	// Interrupted run: cancel after 10 completed injections.
	dir := filepath.Join(t.TempDir(), "run")
	ctx, cancel := context.WithCancel(context.Background())
	eng := &campaign.Engine{
		Spec:    spec,
		Factory: o.CampaignFactory(),
		Progress: func(done, total int) {
			if done >= 10 {
				cancel()
			}
		},
	}
	if _, err := eng.Run(ctx, dir, false); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run returned %v, want context.Canceled", err)
	}
	if _, err := os.Stat(filepath.Join(dir, campaign.ResultsName)); !os.IsNotExist(err) {
		t.Fatal("interrupted run should not have written results.csv")
	}
	recs, err := campaign.ReadJournal(filepath.Join(dir, campaign.JournalName))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("interrupted run left an empty journal")
	}

	// Resume and compare.
	out, err := runEngine(t, spec, o, dir, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Resumed < 10 {
		t.Fatalf("resumed %d results, expected >= 10", out.Resumed)
	}
	gotCSV := readFile(t, filepath.Join(dir, campaign.ResultsName))
	if string(gotCSV) != string(refCSV) {
		t.Fatal("resumed results.csv differs from the uninterrupted run")
	}
	if string(readFile(t, filepath.Join(dir, campaign.SummaryName))) !=
		string(readFile(t, filepath.Join(refDir, campaign.SummaryName))) {
		t.Fatal("resumed summary.json differs from the uninterrupted run")
	}
}

// TestResumeSpecMismatch rejects resuming with a different campaign.
func TestResumeSpecMismatch(t *testing.T) {
	spec, o := testSpec(t, 8)
	dir := filepath.Join(t.TempDir(), "run")
	if _, err := runEngine(t, spec, o, dir, false, nil); err != nil {
		t.Fatal(err)
	}
	other := spec
	other.Fault.Seed++
	if _, err := runEngine(t, other, o, dir, true, nil); err == nil {
		t.Fatal("resume with a different seed should fail")
	}
}

// TestBundleArtifacts checks the bundle contents: a parsable manifest
// with provenance, a summary whose cells partition the injections, and
// a report referencing every artifact.
func TestBundleArtifacts(t *testing.T) {
	spec, o := testSpec(t, 12)
	dir := filepath.Join(t.TempDir(), "run")
	out, err := runEngine(t, spec, o, dir, false, nil)
	if err != nil {
		t.Fatal(err)
	}

	man, err := campaign.ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if man.Provenance.RunID != "test-run" || man.Provenance.GoVersion == "" || man.Provenance.GitCommit == "" {
		t.Fatalf("incomplete provenance: %+v", man.Provenance)
	}
	if cells := man.Spec.Cells(); len(cells) != 2 || cells[0].Scheme != campaign.BaselineSpec {
		t.Fatalf("manifest spec cells = %v", cells)
	}

	var sum campaign.Summary
	if err := json.Unmarshal(readFile(t, filepath.Join(dir, campaign.SummaryName)), &sum); err != nil {
		t.Fatal(err)
	}
	if len(sum.Cells) != 2 {
		t.Fatalf("summary has %d cells, want 2", len(sum.Cells))
	}
	for _, c := range sum.Cells {
		if c.Masked+c.Noisy+c.SDC != spec.Fault.Injections {
			t.Fatalf("cell %s/%s outcomes do not partition: %d+%d+%d != %d",
				c.Bench, c.Scheme, c.Masked, c.Noisy, c.SDC, spec.Fault.Injections)
		}
	}
	fh := sum.Cell("bzip2", string(harness.FaultHound))
	if fh == nil || fh.Coverage == nil {
		t.Fatal("faulthound cell has no coverage summary")
	}
	if base := sum.Cell("bzip2", campaign.BaselineScheme); base == nil || base.Coverage != nil {
		t.Fatal("baseline cell should exist without coverage")
	}

	report := string(readFile(t, filepath.Join(dir, campaign.ReportName)))
	for _, want := range []string{"Run ID", campaign.ResultsName, campaign.SummaryName, campaign.JournalName, "## Classification"} {
		if !strings.Contains(report, want) {
			t.Fatalf("report.md missing %q", want)
		}
	}
	if out.Summary.Injections != spec.Fault.Injections {
		t.Fatalf("summary injections = %d", out.Summary.Injections)
	}
}

// TestSummaryMatchesPairCoverage cross-checks the engine's aggregation
// against the fault package's reference pairing.
func TestSummaryMatchesPairCoverage(t *testing.T) {
	spec, o := testSpec(t, 24)
	out, err := runEngine(t, spec, o, "", false, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep := fault.PairCoverage(out.Campaigns[0], out.Campaigns[1])
	fh := out.Summary.Cell("bzip2", string(harness.FaultHound))
	if fh.Coverage.SDCBase != rep.SDCBase || fh.Coverage.Covered != rep.CoveredCount {
		t.Fatalf("summary coverage %+v != PairCoverage %+v", fh.Coverage, rep)
	}
}

// TestJournalTolerance: a truncated final line (killed mid-write) is
// ignored; interior corruption is an error.
func TestJournalTolerance(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "j.jsonl")
	good := `{"kind":"prep","bench":"b","scheme":"s","fp_rate":0.5}` + "\n"
	if err := os.WriteFile(path, []byte(good+`{"kind":"result","bench`), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := campaign.ReadJournal(path)
	if err != nil {
		t.Fatalf("truncated final line should be tolerated: %v", err)
	}
	if len(recs) != 1 || recs[0].Kind != "prep" {
		t.Fatalf("records = %+v", recs)
	}

	if err := os.WriteFile(path, []byte("garbage\n"+good), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := campaign.ReadJournal(path); err == nil {
		t.Fatal("interior corruption should be an error")
	}

	if recs, err := campaign.ReadJournal(filepath.Join(dir, "missing.jsonl")); err != nil || recs != nil {
		t.Fatalf("missing journal: recs=%v err=%v", recs, err)
	}
}

// TestResumeTruncatedJournal is the regression test for a process
// killed mid-append: the journal's trailing record is cut mid-JSON, and
// -resume must warn, skip (and re-execute) that record, repair the
// journal, and still reproduce the uninterrupted bundle byte for byte.
// A second resume of the repaired journal must not see interior
// corruption.
func TestResumeTruncatedJournal(t *testing.T) {
	spec, o := testSpec(t, 24)
	spec.Workers = 2

	// Uninterrupted reference run.
	refDir := filepath.Join(t.TempDir(), "ref")
	if _, err := runEngine(t, spec, o, refDir, false, nil); err != nil {
		t.Fatal(err)
	}

	// Interrupted run, then truncate the journal mid-record.
	dir := filepath.Join(t.TempDir(), "run")
	ctx, cancel := context.WithCancel(context.Background())
	eng := &campaign.Engine{
		Spec:    spec,
		Factory: o.CampaignFactory(),
		Progress: func(done, total int) {
			if done >= 8 {
				cancel()
			}
		},
	}
	if _, err := eng.Run(ctx, dir, false); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run returned %v, want context.Canceled", err)
	}
	jpath := filepath.Join(dir, campaign.JournalName)
	raw := readFile(t, jpath)
	if len(raw) < 40 {
		t.Fatalf("journal too short to truncate: %d bytes", len(raw))
	}
	// Chop the final record roughly in half (strip the trailing newline
	// first so the cut lands mid-JSON).
	body := strings.TrimSuffix(string(raw), "\n")
	last := strings.LastIndexByte(body, '\n') + 1
	cut := last + (len(body)-last)/2
	if err := os.WriteFile(jpath, []byte(body[:cut]), 0o644); err != nil {
		t.Fatal(err)
	}

	var warned []string
	eng2 := &campaign.Engine{
		Spec:    spec,
		Factory: o.CampaignFactory(),
		Warnf:   func(format string, args ...any) { warned = append(warned, fmt.Sprintf(format, args...)) },
	}
	out, err := eng2.Resume(context.Background(), dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(warned) == 0 || !strings.Contains(warned[0], "truncated") {
		t.Fatalf("resume over a truncated journal should warn, got %q", warned)
	}
	if out.Resumed == 0 {
		t.Fatal("resume replayed no journal records")
	}
	if string(readFile(t, filepath.Join(dir, campaign.ResultsName))) !=
		string(readFile(t, filepath.Join(refDir, campaign.ResultsName))) {
		t.Fatal("resumed results.csv differs from the uninterrupted run")
	}
	if string(readFile(t, filepath.Join(dir, campaign.SummaryName))) !=
		string(readFile(t, filepath.Join(refDir, campaign.SummaryName))) {
		t.Fatal("resumed summary.json differs from the uninterrupted run")
	}

	// The repaired journal must be fully parsable: the resume's appends
	// started on a clean line boundary.
	if _, err := campaign.ReadJournal(jpath); err != nil {
		t.Fatalf("journal corrupted by resume appends: %v", err)
	}
}

// TestCellsEnumeration: baseline first per benchmark, duplicates and
// explicit "baseline" entries collapse.
func TestCellsEnumeration(t *testing.T) {
	s := campaign.Spec{
		Benchmarks: []string{"a", "b"},
		Schemes:    []string{"baseline", "x", "x", "y"},
	}
	got := s.Cells()
	want := []campaign.Cell{
		{"a", scheme.Spec{Name: "baseline"}}, {"a", scheme.Spec{Name: "x"}}, {"a", scheme.Spec{Name: "y"}},
		{"b", scheme.Spec{Name: "baseline"}}, {"b", scheme.Spec{Name: "x"}}, {"b", scheme.Spec{Name: "y"}},
	}
	if len(got) != len(want) {
		t.Fatalf("cells = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cells[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestCellSeedDecorrelation: distinct cells derive distinct auxiliary
// seeds, stable across calls.
func TestCellSeedDecorrelation(t *testing.T) {
	fh := scheme.Spec{Name: "faulthound"}
	a := campaign.CellSeed(1, campaign.Cell{Bench: "bzip2", Scheme: fh})
	b := campaign.CellSeed(1, campaign.Cell{Bench: "bzip2", Scheme: campaign.BaselineSpec})
	c := campaign.CellSeed(1, campaign.Cell{Bench: "mcf", Scheme: fh})
	if a == b || a == c || b == c {
		t.Fatalf("cell seeds collide: %x %x %x", a, b, c)
	}
	if a != campaign.CellSeed(1, campaign.Cell{Bench: "bzip2", Scheme: fh}) {
		t.Fatal("cell seed not stable")
	}
}

// TestEngineObs runs a multi-worker campaign with a recording sink and
// checks the lifecycle stream: every track has matched begin/end span
// pairs, every injection span ends with a valid outcome, tracks stay
// within the worker pool, and the span count matches the campaign size.
func TestEngineObs(t *testing.T) {
	spec, o := testSpec(t, 16)
	spec.Workers = 4
	var rec obs.Collector
	eng := &campaign.Engine{Spec: spec, Factory: o.CampaignFactory(), Obs: &rec}
	out, err := eng.Run(context.Background(), "", false)
	if err != nil {
		t.Fatal(err)
	}
	total := len(out.Cells) * spec.Fault.Injections

	valid := map[string]bool{"masked": true, "noisy": true, "sdc": true}
	open := map[int][]string{}
	injections, prepares := 0, 0
	for i, ev := range rec.Events() {
		if ev.Track < 0 || ev.Track >= spec.Workers {
			t.Fatalf("event %d on track %d, worker pool is %d", i, ev.Track, spec.Workers)
		}
		switch ev.Kind {
		case obs.KindBegin:
			open[ev.Track] = append(open[ev.Track], ev.Name)
		case obs.KindEnd:
			stack := open[ev.Track]
			if len(stack) == 0 || stack[len(stack)-1] != ev.Name {
				t.Fatalf("event %d: end %q does not match track %d stack %v", i, ev.Name, ev.Track, stack)
			}
			open[ev.Track] = stack[:len(stack)-1]
			switch ev.Name {
			case "injection":
				injections++
				if !valid[ev.Arg] {
					t.Fatalf("injection span ended with outcome %q", ev.Arg)
				}
			case "prepare":
				prepares++
			}
		}
	}
	for tr, stack := range open {
		if len(stack) != 0 {
			t.Fatalf("track %d left spans open: %v", tr, stack)
		}
	}
	if injections != total {
		t.Fatalf("saw %d injection spans, want %d", injections, total)
	}
	if prepares != len(out.Cells) {
		t.Fatalf("saw %d prepare spans, want %d", prepares, len(out.Cells))
	}
}
