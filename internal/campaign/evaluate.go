package campaign

import (
	"context"
	"fmt"

	"faulthound/internal/energy"
	"faulthound/internal/fault"
	"faulthound/internal/obs"
	"faulthound/internal/pipeline"
	"faulthound/internal/scheme"
)

// TimingMetrics is one cell's fault-free timing run: total cycles to
// the measurement horizon and the energy model's total for the run.
// It feeds the execute layer's perf- and energy-overhead objectives.
type TimingMetrics struct {
	Cycles uint64  `json:"cycles"`
	Energy float64 `json:"energy"`
}

// TimingRunner measures one benchmark×scheme cell's fault-free timing
// run. The harness supplies the standard implementation
// (harness.Options.TimingRunner); the engine stays independent of it.
type TimingRunner func(bench string, sp scheme.Spec) (TimingMetrics, error)

// CellMetrics is the execute layer's verdict on one cell: the
// campaign summary plus the overhead objectives a search driver
// scores. Overheads are relative to the benchmark's baseline cell
// (zero when no TimingRunner is configured, and zero for baseline
// cells by construction).
type CellMetrics struct {
	CellSummary
	// EnergyOverhead is (scheme − baseline) / baseline energy for the
	// fault-free timing run (the Figure-10 recipe).
	EnergyOverhead float64 `json:"energy_overhead"`
	// PerfOverhead is cycles/baselineCycles − 1 for the fault-free
	// timing run (the Figure-9 recipe).
	PerfOverhead float64 `json:"perf_overhead"`
}

// cellRun is one memoized cell execution: the raw campaign and the
// golden-run false-positive rate.
type cellRun struct {
	camp   *fault.Campaign
	fpRate float64
}

// Evaluator is the execute layer: it runs batches of cells through the
// engine and returns per-cell metrics. Raw campaigns and timing runs
// are memoized by cell identity (canonical scheme spec), so a search
// driver that re-proposes a configuration — or keeps pairing new
// schemes against the same baseline — gets cache hits instead of
// re-injection. An Evaluator is driven by one goroutine at a time; the
// parallelism lives inside the engine batches it runs.
type Evaluator struct {
	// Factory builds cores per cell (required).
	Factory CoreFactory
	// Fault parameterizes every batch; all batches share one seed so
	// coverage pairing stays meaningful across rounds.
	Fault fault.Config
	// Workers sizes the engine pool; <= 0 means GOMAXPROCS. Metrics do
	// not depend on it.
	Workers int
	// Timing measures fault-free perf/energy per cell; nil leaves the
	// overhead objectives at zero.
	Timing TimingRunner
	// Prepared, when non-nil, shares golden preparations with other
	// engine users (the serving daemon's cache).
	Prepared *fault.PreparedCache
	// Progress receives engine progress for cells actually executed.
	Progress func(done, total int)
	// Obs forwards injection-lifecycle events to the engine.
	Obs obs.Sink

	runs    map[Cell]cellRun
	timings map[Cell]TimingMetrics
}

// Evaluated reports how many distinct cells the evaluator has executed
// (including baselines) — the size of its campaign memo.
func (ev *Evaluator) Evaluated() int { return len(ev.runs) }

// Evaluate runs the batch and returns one CellMetrics per input cell,
// in input order. Each cell's benchmark baseline is added to the plan
// automatically (coverage and overheads are defined against it);
// previously-evaluated cells are served from the memo, so only the
// novel remainder reaches the engine.
func (ev *Evaluator) Evaluate(ctx context.Context, cells []Cell) ([]CellMetrics, error) {
	if len(cells) == 0 {
		return nil, nil
	}
	if ev.runs == nil {
		ev.runs = make(map[Cell]cellRun)
		ev.timings = make(map[Cell]TimingMetrics)
	}

	// Plan the novel work in deterministic input order: each cell's
	// baseline first (pairing basis), then the cell itself.
	var needed StaticCells
	queued := make(map[Cell]bool)
	want := func(c Cell) {
		if _, ok := ev.runs[c]; ok || queued[c] {
			return
		}
		queued[c] = true
		needed = append(needed, c)
	}
	for _, c := range cells {
		want(Cell{c.Bench, BaselineSpec})
		want(c)
	}

	if len(needed) > 0 {
		eng := &Engine{
			Spec:     Spec{Workers: ev.Workers, Fault: ev.Fault},
			Factory:  ev.Factory,
			Source:   needed,
			Progress: ev.Progress,
			Obs:      ev.Obs,
		}
		if ev.Prepared != nil {
			eng.Prepare = func(c Cell, mk func() *pipeline.Core, cfg fault.Config) (*fault.Prepared, error) {
				return ev.Prepared.Get(fault.PreparedKey{Bench: c.Bench, Scheme: c.Scheme.String(), Cfg: cfg}, mk)
			}
		}
		out, err := eng.Run(ctx, "", false)
		if err != nil {
			return nil, err
		}
		for i, c := range out.Cells {
			ev.runs[c] = cellRun{camp: out.Campaigns[i], fpRate: out.Summary.Cells[i].FPRate}
		}
	}

	// Timing runs for overheads, memoized like campaigns.
	timing := func(c Cell) (TimingMetrics, error) {
		if tm, ok := ev.timings[c]; ok {
			return tm, nil
		}
		tm, err := ev.Timing(c.Bench, c.Scheme)
		if err != nil {
			return TimingMetrics{}, fmt.Errorf("campaign: timing %s: %w", c, err)
		}
		ev.timings[c] = tm
		return tm, nil
	}

	out := make([]CellMetrics, len(cells))
	for i, c := range cells {
		run, ok := ev.runs[c]
		if !ok {
			return nil, fmt.Errorf("campaign: cell %s missing after evaluation", c)
		}
		base := ev.runs[Cell{c.Bench, BaselineSpec}]
		m := CellMetrics{CellSummary: summarizeCell(c, run.camp, base.camp, run.fpRate)}
		if ev.Timing != nil && c.Scheme != BaselineSpec {
			bt, err := timing(Cell{c.Bench, BaselineSpec})
			if err != nil {
				return nil, err
			}
			st, err := timing(c)
			if err != nil {
				return nil, err
			}
			if bt.Cycles > 0 {
				m.PerfOverhead = float64(st.Cycles)/float64(bt.Cycles) - 1
			}
			m.EnergyOverhead = energy.Overhead(st.Energy, bt.Energy)
		}
		out[i] = m
	}
	return out, nil
}
