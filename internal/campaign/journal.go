package campaign

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"faulthound/internal/fault"
)

// JournalName is the journal's file name inside a run directory.
const JournalName = "journal.jsonl"

// Record is one journal line. Kind "prep" records a cell's golden-run
// preparation (its fault-free false-positive rate); kind "result"
// records one completed injection. The journal is append-only: a
// campaign killed mid-flight leaves every completed injection on disk,
// and a resume run replays the journal instead of re-executing them.
type Record struct {
	Kind   string        `json:"kind"` // "prep" | "result"
	Bench  string        `json:"bench"`
	Scheme string        `json:"scheme"`
	Index  int           `json:"index,omitempty"`
	FPRate float64       `json:"fp_rate,omitempty"`
	Result *fault.Result `json:"result,omitempty"`
}

// JournalWriter appends records to a journal file, one JSON object per
// line, serialized by a mutex so worker goroutines can share it. It is
// exported for the cluster coordinator, which merges worker-streamed
// shard results into its own journal through the same writer the
// engine uses.
type JournalWriter struct {
	mu sync.Mutex
	f  *os.File
	w  *bufio.Writer
}

// OpenJournal opens path for appending (creating it if absent).
func OpenJournal(path string) (*JournalWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &JournalWriter{f: f, w: bufio.NewWriter(f)}, nil
}

// Append writes one record and flushes it to the file, so a killed
// process loses at most the record being written.
func (j *JournalWriter) Append(r Record) error {
	b, err := json.Marshal(r)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.w.Write(append(b, '\n')); err != nil {
		return err
	}
	return j.w.Flush()
}

// Close flushes and closes the file.
func (j *JournalWriter) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.w.Flush(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}

// ReadJournal parses a journal file. A truncated final line (the record
// being written when the process died) is ignored; malformed interior
// lines are an error. A missing file yields no records.
func ReadJournal(path string) ([]Record, error) {
	recs, _, err := readJournalTolerant(path)
	return recs, err
}

// RepairJournal reads a journal tolerantly and, when the final record
// is a truncated partial write (process killed mid-append), cuts the
// file back to the last clean line boundary so subsequent appends do
// not glue onto the partial record. It returns the parsed records and
// whether a repair happened. Resume paths — the engine's and the
// cluster coordinator's — share it.
func RepairJournal(path string) ([]Record, bool, error) {
	recs, truncAt, err := readJournalTolerant(path)
	if err != nil {
		return nil, false, err
	}
	if truncAt < 0 {
		return recs, false, nil
	}
	if err := os.Truncate(path, truncAt); err != nil {
		return nil, false, fmt.Errorf("campaign: repairing truncated journal: %w", err)
	}
	return recs, true, nil
}

// readJournalTolerant is ReadJournal plus the byte offset at which a
// truncated trailing record starts (-1 when the journal is clean).
// Resume paths use the offset to warn and to truncate the journal
// before appending — appending after a partial record would glue the
// new record onto it and corrupt both, turning a tolerated trailing
// truncation into a fatal interior one on the next resume.
func readJournalTolerant(path string) ([]Record, int64, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, -1, nil
	}
	if err != nil {
		return nil, -1, err
	}
	defer f.Close()

	var (
		out    []Record
		bad    int   // line number of a malformed line, 1-based; 0 = none
		badAt  int64 // byte offset where the malformed line starts
		line   int
		offset int64
	)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		line++
		start := offset
		offset += int64(len(sc.Bytes())) + 1 // the journal writer always appends '\n'
		if len(sc.Bytes()) == 0 {
			continue
		}
		var r Record
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			if bad != 0 {
				return nil, -1, fmt.Errorf("campaign: journal %s: malformed line %d", path, bad)
			}
			bad, badAt = line, start // tolerated only if it turns out to be the last line
			continue
		}
		if bad != 0 {
			return nil, -1, fmt.Errorf("campaign: journal %s: malformed line %d", path, bad)
		}
		out = append(out, r)
	}
	if err := sc.Err(); err != nil {
		return nil, -1, err
	}
	if bad == 0 {
		badAt = -1
	}
	return out, badAt, nil
}
