package campaign

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"faulthound/internal/fault"
)

// Artifact file names of a bundle besides the manifest and journal.
const (
	ResultsName = "results.csv"
	SummaryName = "summary.json"
	ReportName  = "report.md"
)

// writeBundle writes the post-run artifacts (results.csv, summary.json,
// report.md) of a finished campaign into dir. All three are pure
// functions of the outcome, so an interrupted-then-resumed campaign
// reproduces them byte for byte.
func writeBundle(dir string, out *Outcome) error {
	if err := os.WriteFile(filepath.Join(dir, ResultsName), []byte(ResultsCSV(out)), 0o644); err != nil {
		return err
	}
	if err := WriteJSONFile(filepath.Join(dir, SummaryName), out.Summary); err != nil {
		return err
	}
	man, err := ReadManifest(dir)
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, ReportName), []byte(Report(out, man)), 0o644)
}

// ResultsCSV renders the per-injection results: one row per (cell,
// injection), cell-major in execution order, injections in descriptor
// order. The bin column is the Figure-11 classification of scheme-cell
// results paired against the benchmark's baseline cell; it is empty for
// baseline rows and for injections outside the SDC base.
func ResultsCSV(out *Outcome) string {
	var sb strings.Builder
	sb.WriteString("bench,scheme,index,structure,bit,cycle_offset,in_flight,outcome,hung,detected,triggers,suppressed,replays,rollbacks,singletons,bin\n")
	baseline := make(map[string]*fault.Campaign)
	for i, c := range out.Cells {
		if c.Scheme == BaselineSpec {
			baseline[c.Bench] = out.Campaigns[i]
		}
	}
	for ci, c := range out.Cells {
		base := baseline[c.Bench]
		for i, r := range out.Campaigns[ci].Results {
			bin := ""
			if c.Scheme != BaselineSpec && base != nil && i < len(base.Results) {
				if b, counted := fault.ClassifyPair(base.Results[i], r); counted {
					bin = b.String()
				}
			}
			fmt.Fprintf(&sb, "%s,%s,%d,%s,%d,%d,%t,%s,%t,%t,%d,%d,%d,%d,%d,%s\n",
				c.Bench, c.Scheme, i,
				r.Injection.Structure, r.Injection.Bit, r.Injection.CycleOffset, r.Injection.InFlight,
				r.Outcome, r.Hung, r.Detected,
				r.Triggers, r.Suppressed, r.Replays, r.Rollbacks, r.Singletons, bin)
		}
	}
	return sb.String()
}

// Report renders the human-readable report.md in the exemplar bundle
// style: provenance header, classification and coverage tables, and
// the bundle file list.
func Report(out *Outcome, man *Manifest) string {
	var sb strings.Builder
	sum := out.Summary
	sb.WriteString("# Fault-Injection Campaign Report\n\n")
	fmt.Fprintf(&sb, "- Run ID: `%s`\n", man.Provenance.RunID)
	fmt.Fprintf(&sb, "- Created: `%s`\n", man.Provenance.CreatedAt)
	fmt.Fprintf(&sb, "- Go: `%s`\n", man.Provenance.GoVersion)
	fmt.Fprintf(&sb, "- Commit: `%s`\n", man.Provenance.GitCommit)
	fmt.Fprintf(&sb, "- Seed: `%#x`\n", out.Spec.Fault.Seed)
	fmt.Fprintf(&sb, "- Workers: `%d`\n", out.Spec.WorkerCount())
	fmt.Fprintf(&sb, "- Wall clock: `%s`\n", out.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(&sb, "- Injections per cell: `%d`\n", sum.Injections)
	fmt.Fprintf(&sb, "- Cells: `%d` (%d benchmarks x %d schemes incl. baseline)\n",
		len(out.Cells), len(out.Spec.Benchmarks), len(out.Cells)/max(len(out.Spec.Benchmarks), 1))
	fmt.Fprintf(&sb, "- Resumed results: `%d` of `%d`\n", out.Resumed, len(out.Cells)*sum.Injections)

	sb.WriteString("\n## Classification\n\n")
	sb.WriteString("| benchmark | scheme | masked | noisy | sdc | detected | fp-rate |\n")
	sb.WriteString("|---|---|---|---|---|---|---|\n")
	for _, c := range sum.Cells {
		fmt.Fprintf(&sb, "| %s | %s | %d | %d | %d | %d | %.5f |\n",
			c.Bench, c.Scheme, c.Masked, c.Noisy, c.SDC, c.Detected, c.FPRate)
	}

	if hasCoverage(sum) {
		sb.WriteString("\n## Coverage (vs baseline, over would-be-SDC faults)\n\n")
		sb.WriteString("| benchmark | scheme | sdc-base | covered | coverage | bins |\n")
		sb.WriteString("|---|---|---|---|---|---|\n")
		for _, c := range sum.Cells {
			if c.Coverage == nil {
				continue
			}
			fmt.Fprintf(&sb, "| %s | %s | %d | %d | %.2f%% | %s |\n",
				c.Bench, c.Scheme, c.Coverage.SDCBase, c.Coverage.Covered,
				c.Coverage.Coverage*100, binList(c.Coverage.Bins))
		}
	}

	sb.WriteString("\n## Bundle\n\n")
	for _, f := range []string{ManifestName, JournalName, ResultsName, SummaryName, ReportName} {
		fmt.Fprintf(&sb, "- `%s`\n", f)
	}
	return sb.String()
}

// hasCoverage reports whether any cell carries coverage data.
func hasCoverage(s *Summary) bool {
	for _, c := range s.Cells {
		if c.Coverage != nil {
			return true
		}
	}
	return false
}

// binList renders non-zero bins as "name=n" in fault.BinNames order
// (map iteration order would not be deterministic).
func binList(bins map[string]int) string {
	var parts []string
	for _, b := range fault.BinNames() {
		if n := bins[b.String()]; n > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", b, n))
		}
	}
	// Any unknown keys (forward compatibility) go last, sorted.
	known := map[string]bool{}
	for _, b := range fault.BinNames() {
		known[b.String()] = true
	}
	var extra []string
	for k, n := range bins {
		if !known[k] && n > 0 {
			extra = append(extra, fmt.Sprintf("%s=%d", k, n))
		}
	}
	sort.Strings(extra)
	parts = append(parts, extra...)
	if len(parts) == 0 {
		return "-"
	}
	return strings.Join(parts, " ")
}
