package campaign

import "faulthound/internal/fault"

// CoverageSummary aggregates one scheme cell's paired coverage against
// its benchmark's baseline cell.
type CoverageSummary struct {
	// SDCBase counts injections that are SDC without protection — the
	// coverage denominator.
	SDCBase int `json:"sdc_base"`
	// Covered counts SDC-base faults the scheme corrected, detected, or
	// surfaced as an exception.
	Covered int `json:"covered"`
	// FalseNoisy counts covered faults that surfaced as exceptions.
	FalseNoisy int `json:"false_noisy"`
	// Coverage is Covered / SDCBase in [0, 1].
	Coverage float64 `json:"coverage"`
	// Bins is the Figure-11 breakdown over SDC-base faults, keyed by
	// bin name in fault.BinNames order.
	Bins map[string]int `json:"bins"`
}

// CellSummary aggregates one benchmark×scheme cell.
type CellSummary struct {
	Bench  string `json:"bench"`
	Scheme string `json:"scheme"`
	// Masked/Noisy/SDC is the Figure-7 outcome classification.
	Masked int `json:"masked"`
	Noisy  int `json:"noisy"`
	SDC    int `json:"sdc"`
	// Detected counts injections where the scheme declared a fault.
	Detected int `json:"detected"`
	// FPRate is the golden (fault-free) detector action rate over the
	// campaign window — replays + rollbacks + singletons per committed
	// instruction.
	FPRate float64 `json:"fp_rate"`
	// Coverage is present on scheme cells (nil for baseline).
	Coverage *CoverageSummary `json:"coverage,omitempty"`
}

// Summary is the aggregate view of a campaign — the summary.json
// artifact, and the form the harness's coverage/FP tables consume.
type Summary struct {
	RunID      string        `json:"run_id"`
	Injections int           `json:"injections_per_cell"`
	Cells      []CellSummary `json:"cells"`
}

// Cell returns the summary of one cell, or nil if absent.
func (s *Summary) Cell(bench, scheme string) *CellSummary {
	for i := range s.Cells {
		if s.Cells[i].Bench == bench && s.Cells[i].Scheme == scheme {
			return &s.Cells[i]
		}
	}
	return nil
}

// Coverage returns the coverage fraction of one scheme cell, and
// whether the cell exists and has coverage data.
func (s *Summary) Coverage(bench, scheme string) (float64, bool) {
	c := s.Cell(bench, scheme)
	if c == nil || c.Coverage == nil {
		return 0, false
	}
	return c.Coverage.Coverage, true
}

// FPRate returns the fault-free false-positive rate of one cell, and
// whether the cell exists.
func (s *Summary) FPRate(bench, scheme string) (float64, bool) {
	c := s.Cell(bench, scheme)
	if c == nil {
		return 0, false
	}
	return c.FPRate, true
}

// summarizeCell aggregates one cell's campaign into its summary row.
// base is the benchmark's baseline campaign for coverage pairing; nil
// (or a baseline cell) leaves Coverage unset.
func summarizeCell(c Cell, camp, base *fault.Campaign, fpRate float64) CellSummary {
	cs := CellSummary{Bench: c.Bench, Scheme: c.Scheme.String(), FPRate: fpRate}
	cs.Masked, cs.Noisy, cs.SDC = camp.Classification()
	for _, r := range camp.Results {
		if r.Detected {
			cs.Detected++
		}
	}
	if c.Scheme != BaselineSpec && base != nil {
		rep := fault.PairCoverage(base, camp)
		cov := &CoverageSummary{
			SDCBase:    rep.SDCBase,
			Covered:    rep.CoveredCount,
			FalseNoisy: rep.FalseNoisy,
			Coverage:   rep.Coverage(),
			Bins:       map[string]int{},
		}
		for _, b := range fault.BinNames() {
			cov.Bins[b.String()] = rep.Bins[b]
		}
		cs.Coverage = cov
	}
	return cs
}

// buildSummary aggregates per-cell campaigns into the summary
// artifact. campaigns and fpRates are keyed by the cell's position in
// spec.Cells().
func buildSummary(spec Spec, cells []Cell, campaigns []*fault.Campaign, fpRates []float64) *Summary {
	sum := &Summary{RunID: spec.RunID, Injections: spec.Fault.Injections}
	// Index the baseline campaign per benchmark for pairing.
	baseline := make(map[string]*fault.Campaign)
	for i, c := range cells {
		if c.Scheme == BaselineSpec {
			baseline[c.Bench] = campaigns[i]
		}
	}
	for i, c := range cells {
		sum.Cells = append(sum.Cells, summarizeCell(c, campaigns[i], baseline[c.Bench], fpRates[i]))
	}
	return sum
}
