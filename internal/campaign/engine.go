package campaign

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"faulthound/internal/fault"
	"faulthound/internal/obs"
	"faulthound/internal/pipeline"
	"faulthound/internal/scheme"
)

// ManifestName is the manifest's file name inside a run directory.
const ManifestName = "manifest.json"

// Manifest is the manifest.json artifact: provenance plus the spec
// verbatim. A resume run validates its spec against it.
type Manifest struct {
	Provenance Provenance `json:"provenance"`
	Spec       Spec       `json:"spec"`
}

// ReadManifest loads dir/manifest.json.
func ReadManifest(dir string) (*Manifest, error) {
	b, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("campaign: bad manifest in %s: %w", dir, err)
	}
	return &m, nil
}

// Engine executes a campaign spec. Factory supplies core construction
// per cell; Progress and OnCell are optional observation hooks, both
// invoked serially.
type Engine struct {
	Spec    Spec
	Factory CoreFactory
	// Source overrides the plan layer: the cells to execute. Nil means
	// the classic static enumeration Spec.Source() — benchmark-major,
	// baseline first. A non-nil Source drives the engine from an
	// external plan (a search batch); Spec.Benchmarks/Schemes are then
	// ignored and only Spec.Fault and Spec.Workers apply.
	Source CellSource
	// Progress is called after every completed injection with the
	// cumulative completed count (including journal-resumed results)
	// and the campaign total.
	Progress func(done, total int)
	// OnCell is called when a cell's golden-run preparation starts.
	OnCell func(c Cell)
	// Prepare overrides the golden-run preparation of a cell; nil means
	// fault.Prepare. Long-lived callers (the campaign-serving daemon)
	// route this through a fault.PreparedCache so jobs sharing a cell
	// reuse one prepared golden core.
	Prepare func(c Cell, mk func() *pipeline.Core, cfg fault.Config) (*fault.Prepared, error)
	// Warnf receives non-fatal diagnostics (a truncated journal record
	// skipped during resume); nil logs them to os.Stderr.
	Warnf func(format string, args ...any)
	// Obs receives injection-lifecycle events: a "prepare" span around
	// each cell's golden phase, an "injection" span around every faulty
	// run (End carries the outcome, or "cancelled" on abort), and the
	// per-run instants emitted by fault.RunOneObs ("inject", detector
	// actions, "detect"). Events are stamped with the worker index as
	// their track. Nil disables instrumentation entirely.
	Obs obs.Sink
}

// warnf routes a non-fatal diagnostic to Warnf or stderr.
func (e *Engine) warnf(format string, args ...any) {
	if e.Warnf != nil {
		e.Warnf(format, args...)
		return
	}
	fmt.Fprintf(os.Stderr, format+"\n", args...)
}

// Outcome is a finished campaign: the per-cell results in cell order,
// their aggregate summary, and run metadata.
type Outcome struct {
	Spec      Spec
	Cells     []Cell
	Campaigns []*fault.Campaign
	Summary   *Summary
	// Resumed counts injections restored from the journal instead of
	// executed.
	Resumed int
	// Elapsed is the wall-clock duration of this Run call.
	Elapsed time.Duration
	// Dir is the artifact bundle directory ("" for in-memory runs).
	Dir string
}

// cellState is one cell's lazily-prepared golden run. Preparation
// happens under once when the first worker picks a task of the cell;
// after prepare returns, prepared is read-only and shared by every
// worker (see fault.Prepared).
type cellState struct {
	once     sync.Once
	prepared *fault.Prepared
	err      error
}

type task struct{ cell, inj int }

// Resume continues an interrupted campaign from dir: it loads the
// manifest's spec into the engine (preserving a non-zero
// e.Spec.Workers override — a resume may use a different pool size)
// and replays the journal before executing the remainder. It is the
// exported resume entry point shared by cmd/fhcampaign and the
// campaign-serving daemon.
func (e *Engine) Resume(ctx context.Context, dir string) (*Outcome, error) {
	man, err := ReadManifest(dir)
	if err != nil {
		return nil, err
	}
	workers := e.Spec.Workers
	// Execution-strategy knobs are JSON-excluded (zero in the manifest)
	// and, like Workers, belong to this run rather than the campaign:
	// keep the caller's settings.
	ckpt, early := e.Spec.Fault.CheckpointCycles, e.Spec.Fault.EarlyExit
	e.Spec = man.Spec
	if workers != 0 {
		e.Spec.Workers = workers
	}
	e.Spec.Fault.CheckpointCycles = ckpt
	e.Spec.Fault.EarlyExit = early
	return e.Run(ctx, dir, true)
}

// Run executes the campaign. With dir != "", the run journals into and
// writes its artifact bundle under dir; with resume true, dir must hold
// a prior run's manifest and journal, whose completed injections are
// reused. A cancelled ctx stops the run with ctx.Err(), leaving the
// journal for a later resume.
func (e *Engine) Run(ctx context.Context, dir string, resume bool) (*Outcome, error) {
	start := time.Now()
	if ctx == nil {
		ctx = context.Background()
	}
	source := e.Source
	if source == nil {
		// Classic path: the spec itself is the plan.
		if err := e.Spec.validate(); err != nil {
			return nil, err
		}
		source = e.Spec.Source()
	} else if e.Spec.Fault.Injections <= 0 {
		return nil, fmt.Errorf("campaign: spec has no injections")
	}
	if e.Factory == nil {
		return nil, fmt.Errorf("campaign: engine has no core factory")
	}
	if resume && dir == "" {
		return nil, fmt.Errorf("campaign: resume requires a run directory")
	}

	cells := source.Plan()
	if len(cells) == 0 {
		return nil, fmt.Errorf("campaign: plan has no cells")
	}
	nInj := e.Spec.Fault.Injections
	injs := fault.DrawInjections(e.Spec.Fault)
	cellIdx := make(map[Cell]int, len(cells))
	for i, c := range cells {
		cellIdx[c] = i
	}

	results := make([][]fault.Result, len(cells))
	have := make([][]bool, len(cells))
	for i := range cells {
		results[i] = make([]fault.Result, nInj)
		have[i] = make([]bool, nInj)
	}
	fpRates := make([]float64, len(cells))
	fpKnown := make([]bool, len(cells))

	// Resume: validate the manifest and replay the journal.
	resumed := 0
	if resume {
		man, err := ReadManifest(dir)
		if err != nil {
			return nil, err
		}
		if !e.Spec.equivalent(man.Spec) {
			return nil, fmt.Errorf("campaign: spec does not match the manifest in %s (cells or fault config differ)", dir)
		}
		jpath := filepath.Join(dir, JournalName)
		recs, repaired, err := RepairJournal(jpath)
		if err != nil {
			return nil, err
		}
		if repaired {
			// A process killed mid-append leaves a partial trailing
			// record. RepairJournal dropped it (that injection simply
			// re-executes) and cut the file so our own appends start on
			// a clean line boundary.
			e.warnf("campaign: journal %s: skipping truncated trailing record (process killed mid-write); re-executing that injection", jpath)
		}
		for _, r := range recs {
			ci, ok := cellIdx[Cell{r.Bench, scheme.FromString(r.Scheme)}]
			if !ok {
				return nil, fmt.Errorf("campaign: journal records unknown cell %s/%s", r.Bench, r.Scheme)
			}
			switch r.Kind {
			case "prep":
				fpRates[ci], fpKnown[ci] = r.FPRate, true
			case "result":
				if r.Index < 0 || r.Index >= nInj || r.Result == nil {
					return nil, fmt.Errorf("campaign: journal has bad result record for %s/%s index %d", r.Bench, r.Scheme, r.Index)
				}
				if !have[ci][r.Index] {
					resumed++
				}
				results[ci][r.Index] = *r.Result
				have[ci][r.Index] = true
			default:
				return nil, fmt.Errorf("campaign: journal has unknown record kind %q", r.Kind)
			}
		}
	}

	// Open the bundle directory and journal; a fresh run writes the
	// manifest up front so even an early kill leaves a resumable run.
	var journal *JournalWriter
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
		if !resume {
			man := Manifest{Provenance: NewProvenance(e.Spec.RunID), Spec: e.Spec}
			if err := WriteJSONFile(filepath.Join(dir, ManifestName), man); err != nil {
				return nil, err
			}
		}
		var err error
		journal, err = OpenJournal(filepath.Join(dir, JournalName))
		if err != nil {
			return nil, err
		}
		defer journal.Close()
	}

	// Enumerate outstanding tasks cell-major: workers converge on one
	// cell's injections while the next cell's preparation overlaps with
	// the current cell's tail.
	var tasks []task
	for ci := range cells {
		for i := 0; i < nInj; i++ {
			if !have[ci][i] {
				tasks = append(tasks, task{ci, i})
			}
		}
	}
	total := len(cells) * nInj

	states := make([]*cellState, len(cells))
	for i := range states {
		states[i] = &cellState{}
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		mu       sync.Mutex
		firstErr error
		done     = total - len(tasks)
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}

	// prepare runs a cell's golden phase exactly once and journals its
	// fault-free FP rate. The span lands on the track of whichever
	// worker won the once — the one that actually paid the golden run.
	prepare := func(ci int, sink obs.Sink) *cellState {
		st := states[ci]
		st.once.Do(func() {
			c := cells[ci]
			began := obs.Begin(sink, "prepare", c.String())
			defer func() { obs.End(sink, "prepare", began, "") }()
			if e.OnCell != nil {
				mu.Lock()
				e.OnCell(c)
				mu.Unlock()
			}
			mk, err := e.Factory(c.Bench, c.Scheme)
			if err != nil {
				st.err = fmt.Errorf("campaign: %s: %w", c, err)
				return
			}
			prep := e.Prepare
			if prep == nil {
				prep = func(_ Cell, mk func() *pipeline.Core, cfg fault.Config) (*fault.Prepared, error) {
					return fault.Prepare(mk, cfg)
				}
			}
			p, err := prep(c, mk, e.Spec.Fault)
			if err != nil {
				st.err = fmt.Errorf("campaign: %s: %w", c, err)
				return
			}
			st.prepared = p
			mu.Lock()
			fpRates[ci], fpKnown[ci] = p.FPRate(), true
			mu.Unlock()
			if journal != nil {
				if err := journal.Append(Record{Kind: "prep", Bench: c.Bench, Scheme: c.Scheme.String(), FPRate: p.FPRate()}); err != nil {
					st.err = err
				}
			}
		})
		return st
	}

	workers := e.Spec.WorkerCount()
	if workers > len(tasks) && len(tasks) > 0 {
		workers = len(tasks)
	}
	taskCh := make(chan task)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wsink := obs.WithTrack(e.Obs, w)
			// One snapshot arena per worker: successive injections
			// rebuild the faulty core in the arena instead of deep-cloning
			// the golden state. Results and journal output are
			// bit-identical; the arena survives cell switches (mismatched
			// golden state just falls back to fresh allocation once).
			arena := pipeline.NewSnapshotArena()
			for t := range taskCh {
				st := prepare(t.cell, wsink)
				if st.err != nil {
					fail(st.err)
					return
				}
				// RunOneObsArena polls runCtx inside the faulty run, so a
				// drain (SIGTERM) aborts promptly even mid-injection;
				// the partial injection is simply not journaled.
				began := obs.Begin(wsink, "injection", cells[t.cell].String())
				res, rerr := st.prepared.RunOneObsArena(runCtx, injs[t.inj], wsink, arena)
				if rerr != nil {
					obs.End(wsink, "injection", began, "cancelled")
					return
				}
				obs.End(wsink, "injection", began, res.Outcome.String())
				results[t.cell][t.inj] = res
				have[t.cell][t.inj] = true
				if journal != nil {
					c := cells[t.cell]
					if err := journal.Append(Record{Kind: "result", Bench: c.Bench, Scheme: c.Scheme.String(), Index: t.inj, Result: &res}); err != nil {
						fail(err)
						return
					}
				}
				mu.Lock()
				done++
				if e.Progress != nil {
					e.Progress(done, total)
				}
				mu.Unlock()
			}
		}(w)
	}

feed:
	for _, t := range tasks {
		select {
		case taskCh <- t:
		case <-runCtx.Done():
			break feed
		}
	}
	close(taskCh)
	wg.Wait()

	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	campaigns := make([]*fault.Campaign, len(cells))
	for ci := range cells {
		campaigns[ci] = &fault.Campaign{Config: e.Spec.Fault, Results: results[ci]}
	}
	out := &Outcome{
		Spec:      e.Spec,
		Cells:     cells,
		Campaigns: campaigns,
		Summary:   buildSummary(e.Spec, cells, campaigns, fpRates),
		Resumed:   resumed,
		Elapsed:   time.Since(start),
		Dir:       dir,
	}
	if dir != "" {
		if err := writeBundle(dir, out); err != nil {
			return nil, err
		}
	}
	return out, nil
}
