// Package filter implements the bit-mask filter of PBFS and FaultHound
// (ISCA'15 Figure 1): a per-bit change-tracking state machine plus the
// previous value. Together they encode a ternary value neighborhood —
// "unchanging 0", "unchanging 1", and "changing wildcard" — against
// which incoming values are matched.
//
// The per-bit state machines are stored as two 64-wide bit planes so a
// 64-bit filter transitions all bits in a handful of word operations;
// filter_test.go proves the planes equivalent to the scalar machines in
// package sm by property testing.
package filter

import "math/bits"

// Policy selects the per-bit state machine.
type Policy uint8

const (
	// Sticky is PBFS's one-bit sticky counter: one change saturates the
	// bit at "changing" until FlashClear.
	Sticky Policy = iota
	// Biased2 is the paper's biased two-bit machine (Figure 2b): two
	// consecutive no-changes to re-enter "unchanging".
	Biased2
	// Biased3 is the three-deep biased machine the paper mentions as
	// trading coverage (80% -> 60%) for fewer false positives.
	Biased3
	// Standard4 is the conventional 4-state saturating counter of
	// Figure 2(a) with direct U<->C1 transitions.
	Standard4
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case Sticky:
		return "sticky"
	case Biased2:
		return "biased2"
	case Biased3:
		return "biased3"
	case Standard4:
		return "standard4"
	}
	return "?"
}

// Filter is one 64-bit bit-mask filter. The zero value is unusable; use
// New or Reset.
//
// State encoding per bit, in planes (s1 s0):
//
//	Sticky:    0 = unchanging, 3 = changing (never decays)
//	BiasedN:   k = number of no-changes still needed to re-enter
//	           unchanging (0 = unchanging, N = just changed)
//	Standard4: 0 = U, 1..3 = C1..C3 (inc on change, dec on no-change)
type Filter struct {
	policy Policy
	prev   uint64
	s1, s0 uint64
}

// New returns a filter under policy with all bits "unchanging" and
// previous value v — the state a replacement installs (Section 3.1).
func New(policy Policy, v uint64) *Filter {
	return &Filter{policy: policy, prev: v}
}

// Make is New as a value: the TCAM and filter table store filters in
// flat value slices, so a bank of filters is one allocation and a bank
// clone is one bulk copy.
func Make(policy Policy, v uint64) Filter {
	return Filter{policy: policy, prev: v}
}

// Policy returns the filter's state machine policy.
func (f *Filter) Policy() Policy { return f.policy }

// Prev returns the previous value.
func (f *Filter) Prev() uint64 { return f.prev }

// ChangingMask returns the bit positions currently treated as wildcards.
func (f *Filter) ChangingMask() uint64 { return f.s1 | f.s0 }

// UnchangingMask returns the bit positions that must match Prev.
func (f *Filter) UnchangingMask() uint64 { return ^(f.s1 | f.s0) }

// Match returns the mask of bit positions where v fails to match the
// filter: unchanging positions whose bit differs from the previous
// value. A zero result means the value lies inside the neighborhood.
// Match does not modify the filter.
func (f *Filter) Match(v uint64) uint64 {
	return (v ^ f.prev) & f.UnchangingMask()
}

// MismatchCount returns the number of mismatching bit positions — the
// counting-TCAM distance used for the loosen-vs-replace decision.
func (f *Filter) MismatchCount(v uint64) int {
	return bits.OnesCount64(f.Match(v))
}

// Observe transitions every bit's state machine with v's change status
// relative to the previous value, sets the previous value to v, and
// returns the mask of bits that alarmed (changed while unchanging).
// This is the paper's "update as part of the lookup": it covers the
// fully-matching case, the loosening case (mismatched unchanging bits
// move to "changing"), and ordinary reinforcement of changing bits.
func (f *Filter) Observe(v uint64) (alarms uint64) {
	c := v ^ f.prev
	unchanging := f.UnchangingMask()
	alarms = c & unchanging

	switch f.policy {
	case Sticky:
		// Changed bits saturate to 3; nothing decays.
		f.s1 |= c
		f.s0 |= c
	case Biased2:
		// next = c ? 2 : dec(state); dec: 2->1, 1->0.
		// dec planes: s0' = s1 & ~s0 ; s1' = s1 & s0.
		ds0 := f.s1 & ^f.s0
		ds1 := f.s1 & f.s0
		f.s0 = ds0 & ^c // depth 2 = planes (1,0): s0 bit is 0 on change
		f.s1 = ds1&^c | c
	case Biased3:
		// next = c ? 3 : dec(state).
		ds0 := f.s1 & ^f.s0
		ds1 := f.s1 & f.s0
		f.s0 = ds0&^c | c
		f.s1 = ds1&^c | c
	case Standard4:
		// next = c ? incSat(state) : dec(state).
		// inc: s0' = ~s0 | (s1 & s0) ; s1' = s1 | s0 (saturates at 3).
		is0 := ^f.s0 | (f.s1 & f.s0)
		is1 := f.s1 | f.s0
		ds0 := f.s1 & ^f.s0
		ds1 := f.s1 & f.s0
		f.s0 = is0&c | ds0&^c
		f.s1 = is1&c | ds1&^c
	}
	f.prev = v
	return alarms
}

// Reset re-initializes the filter to all-unchanging with previous value
// v (filter replacement in the TCAM).
func (f *Filter) Reset(v uint64) {
	f.prev = v
	f.s1, f.s0 = 0, 0
}

// FlashClear returns every bit to "unchanging" but keeps the previous
// value — PBFS's periodic clear of the sticky counters.
func (f *Filter) FlashClear() {
	f.s1, f.s0 = 0, 0
}

// StateOf returns the scalar state value (0-3) of bit i, for tests and
// diagnostics.
func (f *Filter) StateOf(i uint) uint8 {
	return uint8((f.s1>>i&1)<<1 | f.s0>>i&1)
}

// Clone returns an independent copy.
func (f *Filter) Clone() *Filter {
	c := *f
	return &c
}
