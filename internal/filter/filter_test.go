package filter

import (
	"math/bits"
	"testing"
	"testing/quick"

	"faulthound/internal/sm"
)

func TestNewFilterMatchesItsValue(t *testing.T) {
	f := New(Biased2, 0xdeadbeef)
	if f.Match(0xdeadbeef) != 0 {
		t.Fatal("fresh filter must match its own value")
	}
	if f.UnchangingMask() != ^uint64(0) {
		t.Fatal("fresh filter must be all-unchanging")
	}
}

func TestMatchReportsMismatchedBits(t *testing.T) {
	f := New(Biased2, 0b1010)
	got := f.Match(0b1001)
	if got != 0b0011 {
		t.Fatalf("mismatch mask = %b, want 0011", got)
	}
	if f.MismatchCount(0b1001) != 2 {
		t.Fatalf("count = %d", f.MismatchCount(0b1001))
	}
}

// Figure 1 of the paper: filter CCUU with previous value 0b0110 encodes
// the subspace **10: values 0010, 0110, 1010, 1110 match.
func TestFigure1Neighborhood(t *testing.T) {
	f := New(Biased2, 0b0110)
	// Drive bits 2 and 3 to "changing" by observing values that toggle
	// only those bits.
	f.Observe(0b1010) // bits 2,3 change
	if f.ChangingMask() != 0b1100 {
		t.Fatalf("changing mask = %b, want 1100", f.ChangingMask())
	}
	for _, v := range []uint64{0b0010, 0b0110, 0b1010, 0b1110} {
		if f.Match(v) != 0 {
			t.Errorf("value %04b should match", v)
		}
	}
	for _, v := range []uint64{0b0000, 0b0111, 0b1001, 0b1111} {
		if f.Match(v) == 0 {
			t.Errorf("value %04b should not match", v)
		}
	}
}

func TestObserveAlarmsOnUnchangingChange(t *testing.T) {
	f := New(Biased2, 0)
	alarms := f.Observe(0b1)
	if alarms != 0b1 {
		t.Fatalf("alarms = %b, want 1", alarms)
	}
	// The alarmed bit is now changing; a further toggle must not alarm.
	if f.Observe(0) != 0 {
		t.Fatal("changing bit must not alarm")
	}
}

func TestObserveUpdatesPrev(t *testing.T) {
	f := New(Biased2, 5)
	f.Observe(9)
	if f.Prev() != 9 {
		t.Fatalf("prev = %d, want 9", f.Prev())
	}
}

func TestBiased2ReEntersUnchangingAfterTwoStableObservations(t *testing.T) {
	f := New(Biased2, 0)
	f.Observe(1) // bit 0 changes -> changing
	f.Observe(1) // no change (1 of 2)
	if f.UnchangingMask()&1 != 0 {
		t.Fatal("one stable observation must not re-enter unchanging")
	}
	f.Observe(1) // no change (2 of 2)
	if f.UnchangingMask()&1 == 0 {
		t.Fatal("two stable observations should re-enter unchanging")
	}
	// Now a flip alarms again.
	if f.Observe(0)&1 == 0 {
		t.Fatal("flip after re-learning should alarm")
	}
}

func TestStickyNeverDecays(t *testing.T) {
	f := New(Sticky, 0)
	f.Observe(1)
	for i := 0; i < 50; i++ {
		f.Observe(1) // stable forever
	}
	if f.ChangingMask()&1 == 0 {
		t.Fatal("sticky bit must stay changing until FlashClear")
	}
	f.FlashClear()
	if f.ChangingMask() != 0 {
		t.Fatal("FlashClear should reset all bits to unchanging")
	}
	if f.Prev() != 1 {
		t.Fatal("FlashClear must keep the previous value")
	}
}

func TestResetReinitializes(t *testing.T) {
	f := New(Biased2, 0)
	f.Observe(0xff)
	f.Reset(42)
	if f.Prev() != 42 || f.ChangingMask() != 0 {
		t.Fatal("Reset should install a fresh all-unchanging filter")
	}
}

func TestCloneIndependence(t *testing.T) {
	f := New(Biased2, 0)
	c := f.Clone()
	f.Observe(0xffff)
	if c.ChangingMask() != 0 {
		t.Fatal("clone shares state with original")
	}
}

// scalarFor builds the sm-package machine equivalent to a policy.
func scalarFor(p Policy) sm.ChangeTracker {
	switch p {
	case Sticky:
		return sm.NewSticky()
	case Biased2:
		return sm.NewBiased(2)
	case Biased3:
		return sm.NewBiased(3)
	case Standard4:
		return sm.NewStandard(4)
	}
	panic("unknown policy")
}

// Property: for every policy, the vectorized bit-plane machine behaves
// identically (alarms and changing classification) to the scalar
// reference machine in package sm, on every bit position, for any
// observation sequence.
func TestPlaneEquivalenceProperty(t *testing.T) {
	for _, pol := range []Policy{Sticky, Biased2, Biased3, Standard4} {
		pol := pol
		f := func(values []uint64) bool {
			fil := New(pol, 0)
			var scalars [64]sm.ChangeTracker
			for i := range scalars {
				scalars[i] = scalarFor(pol)
			}
			prev := uint64(0)
			for _, v := range values {
				alarms := fil.Observe(v)
				c := v ^ prev
				for i := uint(0); i < 64; i++ {
					wantAlarm := scalars[i].Observe(c>>i&1 == 1)
					if bool(wantAlarm) != (alarms>>i&1 == 1) {
						return false
					}
					if scalars[i].Changing() != (fil.ChangingMask()>>i&1 == 1) {
						return false
					}
				}
				prev = v
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
			t.Errorf("%v: %v", pol, err)
		}
	}
}

// Property: Match is consistent with Observe — the alarm mask returned
// by Observe equals the Match result computed immediately before it.
func TestMatchObserveConsistencyProperty(t *testing.T) {
	f := func(values []uint64, polRaw uint8) bool {
		pol := Policy(polRaw % 4)
		fil := New(pol, 0)
		for _, v := range values {
			want := fil.Match(v)
			got := fil.Observe(v)
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: after Observe(v), the filter always matches v (prev == v and
// any previously mismatching bits have become changing).
func TestObserveThenMatchProperty(t *testing.T) {
	f := func(values []uint64, polRaw uint8) bool {
		pol := Policy(polRaw % 4)
		fil := New(pol, 0)
		for _, v := range values {
			fil.Observe(v)
			if fil.Match(v) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: MismatchCount equals popcount of Match.
func TestMismatchCountProperty(t *testing.T) {
	f := func(a, b uint64) bool {
		fil := New(Biased2, a)
		return fil.MismatchCount(b) == bits.OnesCount64(fil.Match(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStateOf(t *testing.T) {
	f := New(Biased3, 0)
	f.Observe(1)
	if f.StateOf(0) != 3 {
		t.Fatalf("state of bit 0 = %d, want 3", f.StateOf(0))
	}
	if f.StateOf(1) != 0 {
		t.Fatalf("state of bit 1 = %d, want 0", f.StateOf(1))
	}
}

func TestPolicyString(t *testing.T) {
	names := map[Policy]string{Sticky: "sticky", Biased2: "biased2", Biased3: "biased3", Standard4: "standard4"}
	for p, want := range names {
		if p.String() != want {
			t.Errorf("%d.String() = %q", p, p.String())
		}
	}
}
