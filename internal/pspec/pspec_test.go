package pspec

import (
	"errors"
	"reflect"
	"strings"
	"testing"
)

// testReg builds a registry exercising every parameter kind. Each test
// gets its own (registries are append-only).
func testReg() *Registry {
	r := NewRegistry("widget")
	r.Register(Entry{
		Name: "alpha",
		Help: "test entry",
		Params: []Param{
			{Name: "n", Kind: Int, Default: "4", Min: 2, Help: "an int"},
			{Name: "f", Kind: Float, Default: "0.5", Help: "a float"},
			{Name: "b", Kind: Bool, Default: "off", Help: "a bool"},
			{Name: "sz", Kind: Size, Default: "64k", Min: 1024, Help: "a size"},
			{Name: "path", Kind: Str, Default: "-", Help: "a string"},
		},
	})
	r.Register(Entry{Name: "beta", Help: "no params"})
	return r
}

// TestKindEncodings: each kind's canonical encoding and rejections —
// notably the Size and Str kinds added for workload specs.
func TestKindEncodings(t *testing.T) {
	r := testReg()
	ok := []struct{ in, want string }{
		{"alpha?n=08", "alpha?n=8"},
		{"alpha?n=4", "alpha"}, // default elides
		{"alpha?f=0.50", "alpha"},
		{"alpha?f=0.25", "alpha?f=0.25"},
		{"alpha?b=TRUE", "alpha?b=on"},
		{"alpha?b=0", "alpha"},
		{"alpha?sz=262144", "alpha?sz=256k"},
		{"alpha?sz=65536", "alpha"},
		{"alpha?sz=2m", "alpha?sz=2m"},
		{"alpha?sz=1536", "alpha?sz=1536"}, // no evenly-dividing suffix
		{"alpha?sz=1G", "alpha?sz=1g"},
		{"alpha?path=results/x.fhws", "alpha?path=results/x.fhws"},
		{"alpha?path=-", "alpha"},
		// Sorted canonical order: b < f < n < path < sz.
		{"alpha?sz=2m,n=8,b=on", "alpha?b=on,n=8,sz=2m"},
	}
	for _, c := range ok {
		sp, err := r.Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if got := sp.String(); got != c.want {
			t.Errorf("Parse(%q) = %q, want %q", c.in, got, c.want)
		}
	}

	bad := []struct{ in, frag string }{
		{"alpha?n=x", "not an integer"},
		{"alpha?n=-1", "negative value"},
		{"alpha?n=1", "below the minimum"},
		{"alpha?f=x", "not a number"},
		{"alpha?b=maybe", "not a boolean"},
		{"alpha?sz=64q", "not a size"},
		{"alpha?sz=512", "below the minimum"},
		{"alpha?path=a b", "spec syntax characters"},
		{"alpha?nope=1", "unknown parameter"},
		{"gamma", "unknown widget"},
		{"?n=1", "empty widget name"},
	}
	for _, c := range bad {
		_, err := r.Parse(c.in)
		if err == nil {
			t.Errorf("Parse(%q): no error", c.in)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("Parse(%q): error %q does not mention %q", c.in, err, c.frag)
		}
	}
}

// TestErrorDomains: both error shapes identify their registry's domain
// (the daemon branches its 400 bodies on it) and expose it via
// SpecErrorDomain through wrapping.
func TestErrorDomains(t *testing.T) {
	r := testReg()
	_, uerr := r.Parse("gamma")
	_, berr := r.Parse("alpha?n=x")

	var u *UnknownNameError
	if !errors.As(uerr, &u) || u.Domain != "widget" {
		t.Fatalf("unknown-name error: %v", uerr)
	}
	if !strings.Contains(uerr.Error(), "alpha") || !strings.Contains(uerr.Error(), "beta") {
		t.Errorf("unknown-name error does not list known names: %v", uerr)
	}
	var b *BadSpecError
	if !errors.As(berr, &b) || b.Domain != "widget" {
		t.Fatalf("bad-spec error: %v", berr)
	}

	for _, err := range []error{uerr, berr} {
		if SpecErrorDomain(err) != "widget" {
			t.Errorf("SpecErrorDomain(%v) = %q", err, SpecErrorDomain(err))
		}
		if SpecErrorDomain(wrap(err)) != "widget" {
			t.Errorf("wrapped domain lost: %v", err)
		}
	}
	if SpecErrorDomain(errors.New("plain")) != "" {
		t.Error("plain error has a domain")
	}
}

func wrap(err error) error { return &wrapped{err} }

type wrapped struct{ err error }

func (w *wrapped) Error() string { return "wrap: " + w.err.Error() }
func (w *wrapped) Unwrap() error { return w.err }

// TestExpandAndValues: sweep fan-out order, Values typed getters with
// defaults, and Explicit/Has.
func TestExpandAndValues(t *testing.T) {
	r := testReg()
	sps, err := r.Expand("alpha?n=2|8,b=on|off")
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, sp := range sps {
		got = append(got, sp.String())
	}
	want := []string{"alpha?b=on,n=2", "alpha?n=2", "alpha?b=on,n=8", "alpha?n=8"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Expand = %v, want %v", got, want)
	}

	sp, err := r.Parse("alpha?sz=2m,path=x.fhws")
	if err != nil {
		t.Fatal(err)
	}
	v, err := r.ValuesOf(sp)
	if err != nil {
		t.Fatal(err)
	}
	if v.Int("n") != 4 || v.Float("f") != 0.5 || v.Bool("b") || v.Size("sz") != 2<<20 || v.Str("path") != "x.fhws" {
		t.Fatalf("typed getters wrong: n=%d f=%v b=%v sz=%d path=%q",
			v.Int("n"), v.Float("f"), v.Bool("b"), v.Size("sz"), v.Str("path"))
	}
	if !v.Explicit("sz") || v.Explicit("n") || !v.Has("f") || v.Has("zzz") {
		t.Fatal("Explicit/Has wrong")
	}

	if _, err := r.Expand("alpha?n=2||8"); err == nil {
		t.Fatal("empty sweep value accepted")
	}
}

// TestSplitListAttachment: '='-bearing tokens without '?' attach to
// the previous item — what lets one comma-separated CLI flag carry
// parameterized specs.
func TestSplitListAttachment(t *testing.T) {
	r := testReg()
	got, err := r.SplitList("alpha?n=8,sz=2m,beta,alpha")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"alpha?n=8,sz=2m", "beta", "alpha"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("SplitList = %v, want %v", got, want)
	}
	if _, err := r.SplitList("n=8,alpha"); err == nil {
		t.Fatal("leading parameter token accepted")
	}
}

// TestParseSize: the exported size syntax.
func TestParseSize(t *testing.T) {
	for raw, want := range map[string]uint64{
		"0": 0, "1024": 1024, "64k": 64 << 10, "2M": 2 << 20, "1g": 1 << 30,
	} {
		n, err := ParseSize(raw)
		if err != nil || n != want {
			t.Errorf("ParseSize(%q) = %d, %v; want %d", raw, n, err, want)
		}
	}
	if _, err := ParseSize("12kb"); err == nil {
		t.Error("ParseSize accepted a bad suffix")
	}
}
