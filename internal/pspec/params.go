package pspec

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind is a parameter's value type.
type Kind uint8

// Parameter kinds.
const (
	Int Kind = iota
	Float
	Bool
	// Size is a byte count with binary k/m/g suffixes: "256k" and
	// "262144" are one value. The canonical encoding uses the largest
	// suffix that divides the value evenly.
	Size
	// Str is a free-form string (a file path, a label). The canonical
	// encoding is the value itself; spec syntax characters are
	// rejected (',' and '|' would be parsed as separators).
	Str
)

// String names the kind ("int", "float", "bool", "size", "str").
func (k Kind) String() string {
	switch k {
	case Int:
		return "int"
	case Float:
		return "float"
	case Bool:
		return "bool"
	case Size:
		return "size"
	case Str:
		return "str"
	}
	return "?"
}

// MarshalJSON encodes the kind as its name, for the self-describing
// metadata endpoints and manifests.
func (k Kind) MarshalJSON() ([]byte, error) {
	return []byte(`"` + k.String() + `"`), nil
}

// Param is the self-describing metadata of one parameter.
type Param struct {
	Name string `json:"name"`
	Kind Kind   `json:"kind"`
	// Default is the canonical encoding of the default value; a spec
	// setting the parameter to it is elided from the canonical form.
	Default string `json:"default"`
	// Min, for Int and Size parameters, is the smallest accepted value
	// (in bytes for Size; both kinds additionally reject negatives).
	Min  int    `json:"min,omitempty"`
	Help string `json:"help"`
}

// encode validates raw against p and returns its canonical encoding.
func encode(p Param, raw string) (string, error) {
	switch p.Kind {
	case Int:
		n, err := strconv.Atoi(raw)
		if err != nil {
			return "", fmt.Errorf("parameter %s: not an integer: %q", p.Name, raw)
		}
		if n < 0 {
			return "", fmt.Errorf("parameter %s: negative value %d", p.Name, n)
		}
		if n < p.Min {
			return "", fmt.Errorf("parameter %s: %d is below the minimum %d", p.Name, n, p.Min)
		}
		return strconv.Itoa(n), nil
	case Float:
		f, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return "", fmt.Errorf("parameter %s: not a number: %q", p.Name, raw)
		}
		return strconv.FormatFloat(f, 'g', -1, 64), nil
	case Bool:
		switch strings.ToLower(raw) {
		case "on", "true", "yes", "1":
			return "on", nil
		case "off", "false", "no", "0":
			return "off", nil
		}
		return "", fmt.Errorf("parameter %s: not a boolean (on/off): %q", p.Name, raw)
	case Size:
		n, err := parseSize(raw)
		if err != nil {
			return "", fmt.Errorf("parameter %s: %v", p.Name, err)
		}
		if n < uint64(p.Min) {
			return "", fmt.Errorf("parameter %s: %d is below the minimum %d", p.Name, n, p.Min)
		}
		return formatSize(n), nil
	case Str:
		if raw == "" {
			return "", fmt.Errorf("parameter %s: empty string", p.Name)
		}
		if strings.ContainsAny(raw, "?=,| ") {
			return "", fmt.Errorf("parameter %s: %q contains spec syntax characters", p.Name, raw)
		}
		return raw, nil
	}
	return "", fmt.Errorf("parameter %s: unknown kind", p.Name)
}

// parseSize parses a byte count with an optional binary suffix
// (k=KiB, m=MiB, g=GiB, case-insensitive).
func parseSize(raw string) (uint64, error) {
	s := strings.ToLower(strings.TrimSpace(raw))
	mult := uint64(1)
	switch {
	case strings.HasSuffix(s, "k"):
		mult, s = 1<<10, s[:len(s)-1]
	case strings.HasSuffix(s, "m"):
		mult, s = 1<<20, s[:len(s)-1]
	case strings.HasSuffix(s, "g"):
		mult, s = 1<<30, s[:len(s)-1]
	}
	n, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("not a size (bytes with optional k/m/g suffix): %q", raw)
	}
	return n * mult, nil
}

// formatSize renders n with the largest binary suffix dividing it
// evenly — the canonical Size encoding ("262144" -> "256k").
func formatSize(n uint64) string {
	switch {
	case n >= 1<<30 && n%(1<<30) == 0:
		return strconv.FormatUint(n>>30, 10) + "g"
	case n >= 1<<20 && n%(1<<20) == 0:
		return strconv.FormatUint(n>>20, 10) + "m"
	case n >= 1<<10 && n%(1<<10) == 0:
		return strconv.FormatUint(n>>10, 10) + "k"
	}
	return strconv.FormatUint(n, 10)
}

// ParseSize exposes the Size syntax for callers outside the spec path
// (CLI flags that want to accept "256k").
func ParseSize(raw string) (uint64, error) { return parseSize(raw) }

// Values is the typed view of one spec's parameters a factory reads:
// explicit settings from the spec query, defaults from the parameter
// metadata. Getters panic on parameter names the entry never
// declared — that is a registration bug, not an input error.
type Values struct {
	entry *Entry
	set   map[string]string // explicit values, canonical encoding
}

func (v Values) raw(name string) (Param, string) {
	for _, p := range v.entry.Params {
		if p.Name == name {
			if s, ok := v.set[name]; ok {
				return p, s
			}
			return p, p.Default
		}
	}
	panic(fmt.Sprintf("pspec: %s has no parameter %q", v.entry.Name, name))
}

// Int returns an Int parameter's value.
func (v Values) Int(name string) int {
	p, s := v.raw(name)
	if p.Kind != Int {
		panic(fmt.Sprintf("pspec: parameter %s.%s is %s, not int", v.entry.Name, name, p.Kind))
	}
	n, _ := strconv.Atoi(s)
	return n
}

// Float returns a Float parameter's value.
func (v Values) Float(name string) float64 {
	p, s := v.raw(name)
	if p.Kind != Float {
		panic(fmt.Sprintf("pspec: parameter %s.%s is %s, not float", v.entry.Name, name, p.Kind))
	}
	f, _ := strconv.ParseFloat(s, 64)
	return f
}

// Bool returns a Bool parameter's value.
func (v Values) Bool(name string) bool {
	p, s := v.raw(name)
	if p.Kind != Bool {
		panic(fmt.Sprintf("pspec: parameter %s.%s is %s, not bool", v.entry.Name, name, p.Kind))
	}
	return s == "on"
}

// Size returns a Size parameter's value in bytes.
func (v Values) Size(name string) uint64 {
	p, s := v.raw(name)
	if p.Kind != Size {
		panic(fmt.Sprintf("pspec: parameter %s.%s is %s, not size", v.entry.Name, name, p.Kind))
	}
	n, _ := parseSize(s)
	return n
}

// Str returns a Str parameter's value.
func (v Values) Str(name string) string {
	p, s := v.raw(name)
	if p.Kind != Str {
		panic(fmt.Sprintf("pspec: parameter %s.%s is %s, not str", v.entry.Name, name, p.Kind))
	}
	return s
}

// Explicit reports whether the spec set the parameter itself (true)
// or the default applies (false). Factories use it for parameters
// whose effective default comes from the host environment.
func (v Values) Explicit(name string) bool {
	v.raw(name) // validate the name
	_, ok := v.set[name]
	return ok
}

// Has reports whether the entry declares the parameter at all —
// registries that share one build function across entries with
// different parameter sets branch on it.
func (v Values) Has(name string) bool {
	for _, p := range v.entry.Params {
		if p.Name == name {
			return true
		}
	}
	return false
}
