// Package pspec is the parameterized-spec core shared by every
// registry of named, tunable things in this repository — detection
// schemes (internal/scheme) and generated workloads (internal/wgen).
// It owns the one spec syntax all of them speak:
//
//	name                      plain entry, all parameters default
//	name?k=v,k=v              parameterized ("gen?stride=64,chase=4")
//	name?k=v1|v2|v3           sensitivity sweep, fanned out by Expand
//
// A parsed Spec is canonical: parameters are sorted by name, values
// are re-encoded in canonical form, and parameters equal to their
// default are elided — so two spellings of the same configuration are
// one spec, one campaign cell, and one server spec-hash. Plain names
// canonicalize to themselves, which is what keeps pre-registry
// artifacts (journals, manifests, spec hashes) byte-identical.
//
// The package is purely syntactic plus metadata: each domain package
// wraps a Registry with its own factory map (scheme.Build constructs
// detectors, wgen.Build constructs programs). Error messages carry the
// registry's Domain noun ("scheme", "workload") so every CLI and the
// daemon surface consistent text.
package pspec

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Spec is one resolved specification: a registered name plus its
// canonically encoded non-default parameters. The zero Spec is
// invalid. Spec is comparable (it is two strings), so it can key maps
// and campaign cells directly.
type Spec struct {
	// Name is the registered entry name ("faulthound", "gen", ...).
	Name string
	// Query is the canonical parameter encoding: "k=v" pairs sorted by
	// key, joined with commas, default-valued parameters elided. Empty
	// when every parameter is at its default.
	Query string
}

// String renders the canonical spec: the bare name, or "name?query".
func (s Spec) String() string {
	if s.Query == "" {
		return s.Name
	}
	return s.Name + "?" + s.Query
}

// MarshalJSON encodes the spec as its canonical string, so a Spec
// inside a manifest, journal, or spec-hash document serializes exactly
// as the bare name used to.
func (s Spec) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// UnmarshalJSON decodes a canonical spec string. Parsing is syntactic
// (FromString): unknown names round-trip so old artifacts stay
// readable; validation happens when the spec is built.
func (s *Spec) UnmarshalJSON(b []byte) error {
	var str string
	if err := json.Unmarshal(b, &str); err != nil {
		return err
	}
	*s = FromString(str)
	return nil
}

// FromString parses a spec string syntactically: split the name at the
// first '?', sort the parameter tokens. It never fails and does not
// consult any registry — use it for trusted, already-canonical input
// (journals, manifests); use Registry.Parse for user input.
func FromString(raw string) Spec {
	raw = strings.TrimSpace(raw)
	name, query, ok := strings.Cut(raw, "?")
	if !ok || query == "" {
		return Spec{Name: name}
	}
	parts := strings.Split(query, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	sort.Strings(parts)
	return Spec{Name: name, Query: strings.Join(parts, ",")}
}

// UnknownNameError reports a spec whose name is not registered. Its
// message carries the registry's domain noun and full name list, so
// every CLI and the daemon surface the same text.
type UnknownNameError struct {
	// Domain is the registry's noun ("scheme", "workload").
	Domain string
	Name   string
	// Known is the registry's name list at error time.
	Known []string
}

func (e *UnknownNameError) Error() string {
	return fmt.Sprintf("unknown %s %q (known: %s)", e.Domain, e.Name, strings.Join(e.Known, ", "))
}

// BadSpecError reports a syntactically or semantically malformed spec
// (bad parameter name, unparsable value, stray token).
type BadSpecError struct {
	// Domain is the registry's noun ("scheme", "workload").
	Domain string
	Spec   string // the offending spec as written
	Reason string
}

func (e *BadSpecError) Error() string {
	return fmt.Sprintf("bad %s spec %q: %s", e.Domain, e.Spec, e.Reason)
}

// SpecErrorDomain returns the domain of the first spec error in err's
// chain ("" when none) — the condition under which the daemon answers
// 400 with the matching known-name list instead of 500, and how it
// tells a bad scheme spec from a bad workload spec.
func SpecErrorDomain(err error) string {
	var u *UnknownNameError
	if errors.As(err, &u) {
		return u.Domain
	}
	var b *BadSpecError
	if errors.As(err, &b) {
		return b.Domain
	}
	return ""
}

// IsSpecError reports whether err (anywhere in its chain) is a spec
// error of any domain.
func IsSpecError(err error) bool {
	return SpecErrorDomain(err) != ""
}
