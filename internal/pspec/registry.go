package pspec

import (
	"fmt"
	"sort"
	"strings"
)

// Entry is one registry entry's self-describing metadata: the name,
// help line, and typed parameter list. Domain packages pair each entry
// with their own factory (detector construction, program generation).
type Entry struct {
	Name   string
	Help   string
	Params []Param
}

// Registry holds named, parameterized entries of one domain and
// implements the shared spec syntax over them. The zero Registry is
// unusable; construct with NewRegistry.
type Registry struct {
	// domain is the noun error messages use ("scheme", "workload").
	domain  string
	entries map[string]*Entry
	order   []string // registration order, the order of Names and help text
}

// NewRegistry creates an empty registry whose error messages speak of
// the given domain noun.
func NewRegistry(domain string) *Registry {
	return &Registry{domain: domain, entries: map[string]*Entry{}}
}

// Domain returns the registry's noun.
func (r *Registry) Domain() string { return r.domain }

// Register adds an entry. It panics on a duplicate name, an
// unparsable parameter default, or other registration bugs —
// registration happens at init time from domain packages only.
func (r *Registry) Register(e Entry) {
	if e.Name == "" {
		panic(fmt.Sprintf("pspec: %s registration needs a name", r.domain))
	}
	if strings.ContainsAny(e.Name, "?=,|/ ") {
		panic(fmt.Sprintf("pspec: %s name %q contains spec syntax characters", r.domain, e.Name))
	}
	if _, dup := r.entries[e.Name]; dup {
		panic(fmt.Sprintf("pspec: duplicate %s registration of %q", r.domain, e.Name))
	}
	seen := map[string]bool{}
	for _, p := range e.Params {
		if p.Name == "" || strings.ContainsAny(p.Name, "?=,|/ ") {
			panic(fmt.Sprintf("pspec: %s %s: bad parameter name %q", r.domain, e.Name, p.Name))
		}
		if seen[p.Name] {
			panic(fmt.Sprintf("pspec: %s %s: duplicate parameter %q", r.domain, e.Name, p.Name))
		}
		seen[p.Name] = true
		if _, err := encode(p, p.Default); err != nil {
			panic(fmt.Sprintf("pspec: %s %s: default of %q: %v", r.domain, e.Name, p.Name, err))
		}
	}
	entry := e
	r.entries[e.Name] = &entry
	r.order = append(r.order, e.Name)
}

// Names lists every registered name in registration order — the
// single source usage strings and error messages derive from.
func (r *Registry) Names() []string {
	return append([]string(nil), r.order...)
}

// Lookup returns an entry by name.
func (r *Registry) Lookup(name string) (*Entry, bool) {
	e, ok := r.entries[name]
	return e, ok
}

// Has reports whether name is registered.
func (r *Registry) Has(name string) bool {
	_, ok := r.entries[name]
	return ok
}

// unknown builds the registry's unknown-name error.
func (r *Registry) unknown(name string) error {
	return &UnknownNameError{Domain: r.domain, Name: name, Known: r.Names()}
}

// bad builds the registry's malformed-spec error.
func (r *Registry) bad(spec, reason string) error {
	return &BadSpecError{Domain: r.domain, Spec: spec, Reason: reason}
}

// param finds an entry's parameter by name.
func (e *Entry) param(name string) (Param, bool) {
	for _, p := range e.Params {
		if p.Name == name {
			return p, true
		}
	}
	return Param{}, false
}

// paramNames renders the entry's parameter list for error messages.
func (e *Entry) paramNames() string {
	if len(e.Params) == 0 {
		return "none"
	}
	names := make([]string, len(e.Params))
	for i, p := range e.Params {
		names[i] = p.Name
	}
	return strings.Join(names, ", ")
}

// canonicalize validates one explicit k=v set against e and returns
// the canonical query (sorted, defaults elided).
func (r *Registry) canonicalize(e *Entry, raw string, set map[string]string) (string, error) {
	var parts []string
	for name, val := range set {
		p, ok := e.param(name)
		if !ok {
			return "", r.bad(raw, fmt.Sprintf(
				"unknown parameter %q (parameters of %s: %s)", name, e.Name, e.paramNames()))
		}
		canon, err := encode(p, val)
		if err != nil {
			return "", r.bad(raw, err.Error())
		}
		if canon == p.Default {
			continue // default values are elided from the canonical form
		}
		parts = append(parts, name+"="+canon)
	}
	sort.Strings(parts)
	return strings.Join(parts, ","), nil
}

// splitSpec splits one spec string into name and raw k=v pairs.
func (r *Registry) splitSpec(raw string) (name string, pairs map[string]string, err error) {
	trimmed := strings.TrimSpace(raw)
	name, query, has := strings.Cut(trimmed, "?")
	name = strings.TrimSpace(name)
	if name == "" {
		return "", nil, r.bad(raw, fmt.Sprintf("empty %s name", r.domain))
	}
	pairs = map[string]string{}
	if !has || query == "" {
		return name, pairs, nil
	}
	for _, tok := range strings.Split(query, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		k, v, ok := strings.Cut(tok, "=")
		k, v = strings.TrimSpace(k), strings.TrimSpace(v)
		if !ok || k == "" || v == "" {
			return "", nil, r.bad(raw, fmt.Sprintf("malformed parameter %q (want k=v)", tok))
		}
		if _, dup := pairs[k]; dup {
			return "", nil, r.bad(raw, fmt.Sprintf("parameter %q set twice", k))
		}
		pairs[k] = v
	}
	return name, pairs, nil
}

// Parse validates one spec string against the registry and returns
// its canonical Spec. Sweep syntax ('|' in a value) is an error here;
// use Expand where fan-out is meant.
func (r *Registry) Parse(raw string) (Spec, error) {
	specs, err := r.Expand(raw)
	if err != nil {
		return Spec{}, err
	}
	if len(specs) != 1 {
		return Spec{}, r.bad(raw, "sweep syntax ('|') is not allowed here")
	}
	return specs[0], nil
}

// Valid reports whether raw parses against the registry.
func (r *Registry) Valid(raw string) bool {
	_, err := r.Parse(raw)
	return err == nil
}

// Expand parses one spec string, fanning out sweep values: a value
// "8|16|32" yields one Spec per alternative. Multiple swept
// parameters produce their cartesian product, later-written
// parameters varying fastest. Every expanded Spec is canonical and
// fully validated.
func (r *Registry) Expand(raw string) ([]Spec, error) {
	name, pairs, err := r.splitSpec(raw)
	if err != nil {
		return nil, err
	}
	e, ok := r.entries[name]
	if !ok {
		return nil, r.unknown(name)
	}
	// Preserve the written parameter order for sweep fan-out.
	type kv struct {
		k    string
		vals []string
	}
	var swept []kv
	for _, p := range e.Params { // deterministic: declaration order
		if v, ok := pairs[p.Name]; ok {
			swept = append(swept, kv{p.Name, strings.Split(v, "|")})
			delete(pairs, p.Name)
		}
	}
	// Anything left names no declared parameter; let canonicalize
	// produce its error (it knows the parameter list).
	for k, v := range pairs {
		swept = append(swept, kv{k, []string{v}})
	}
	for _, s := range swept {
		for _, v := range s.vals {
			if strings.TrimSpace(v) == "" {
				return nil, r.bad(raw, fmt.Sprintf("parameter %q has an empty sweep value", s.k))
			}
		}
	}

	var out []Spec
	set := map[string]string{}
	var rec func(i int) error
	rec = func(i int) error {
		if i == len(swept) {
			q, err := r.canonicalize(e, raw, set)
			if err != nil {
				return err
			}
			sp := Spec{Name: name, Query: q}
			for _, prev := range out {
				if prev == sp {
					return nil // sweep alternatives that canonicalize equal collapse
				}
			}
			out = append(out, sp)
			return nil
		}
		for _, v := range swept[i].vals {
			set[swept[i].k] = strings.TrimSpace(v)
			if err := rec(i + 1); err != nil {
				return err
			}
		}
		delete(set, swept[i].k)
		return nil
	}
	if err := rec(0); err != nil {
		return nil, err
	}
	return out, nil
}

// SplitList splits a comma-separated spec list into individual spec
// strings. Commas double as parameter separators, so a token
// containing '=' (and no '?') is a parameter of the most recent item,
// anything else starts a new spec: "gen?stride=64,chase=4,bzip2" is
// gen with two parameters, then bzip2.
func (r *Registry) SplitList(raw string) ([]string, error) {
	var items []string
	for _, tok := range strings.Split(raw, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		if strings.Contains(tok, "=") && !strings.Contains(tok, "?") {
			if len(items) == 0 {
				return nil, r.bad(raw, fmt.Sprintf("parameter %q before any %s name", tok, r.domain))
			}
			items[len(items)-1] += "," + tok
			continue
		}
		items = append(items, tok)
	}
	return items, nil
}

// ParseList parses a comma-separated spec list, expanding sweeps; see
// SplitList for the comma grammar.
func (r *Registry) ParseList(raw string) ([]Spec, error) {
	items, err := r.SplitList(raw)
	if err != nil {
		return nil, err
	}
	var out []Spec
	for _, it := range items {
		specs, err := r.Expand(it)
		if err != nil {
			return nil, err
		}
		out = append(out, specs...)
	}
	return out, nil
}

// ValuesOf re-validates a canonical spec (it may come from an
// untrusted journal or manifest via FromString) and returns the typed
// parameter view its factory reads.
func (r *Registry) ValuesOf(sp Spec) (Values, error) {
	e, ok := r.entries[sp.Name]
	if !ok {
		return Values{}, r.unknown(sp.Name)
	}
	_, pairs, err := r.splitSpec(sp.String())
	if err != nil {
		return Values{}, err
	}
	set := map[string]string{}
	for k, v := range pairs {
		p, ok := e.param(k)
		if !ok {
			return Values{}, r.bad(sp.String(), fmt.Sprintf(
				"unknown parameter %q (parameters of %s: %s)", k, e.Name, e.paramNames()))
		}
		canon, err := encode(p, v)
		if err != nil {
			return Values{}, r.bad(sp.String(), err.Error())
		}
		set[k] = canon
	}
	return Values{entry: e, set: set}, nil
}

// Resolved renders the spec with every parameter explicit (defaults
// filled in), in declaration order — the self-describing form campaign
// summaries print per cell.
func (r *Registry) Resolved(sp Spec) (string, error) {
	e, ok := r.entries[sp.Name]
	if !ok {
		return sp.String(), r.unknown(sp.Name)
	}
	_, pairs, err := r.splitSpec(sp.String())
	if err != nil {
		return sp.String(), err
	}
	if len(e.Params) == 0 {
		return sp.Name, nil
	}
	parts := make([]string, 0, len(e.Params))
	for _, p := range e.Params {
		val := p.Default
		if v, ok := pairs[p.Name]; ok {
			if canon, err := encode(p, v); err == nil {
				val = canon
			}
		}
		parts = append(parts, p.Name+"="+val)
	}
	return sp.Name + "?" + strings.Join(parts, ","), nil
}

// Usage returns the one-line name list for CLI flag help.
func (r *Registry) Usage() string {
	return strings.Join(r.Names(), ", ")
}

// Describe renders the full self-describing registry: one block per
// entry with its help line and parameter metadata. CLIs print it for
// -list-* flags; the docs mirror it.
func (r *Registry) Describe() string {
	var sb strings.Builder
	for _, name := range r.order {
		e := r.entries[name]
		fmt.Fprintf(&sb, "%-26s %s\n", e.Name, e.Help)
		for _, p := range e.Params {
			def := p.Default
			fmt.Fprintf(&sb, "    %-12s %-6s default %-8s %s\n", p.Name, p.Kind, def, p.Help)
		}
	}
	return sb.String()
}

// Metadata is the JSON form of one entry, served by the daemon's
// catalogue endpoints.
type Metadata struct {
	Name   string  `json:"name"`
	Help   string  `json:"help"`
	Params []Param `json:"params"`
}

// All returns the registry metadata in registration order.
func (r *Registry) All() []Metadata {
	out := make([]Metadata, 0, len(r.order))
	for _, name := range r.order {
		e := r.entries[name]
		params := e.Params
		if params == nil {
			params = []Param{}
		}
		out = append(out, Metadata{Name: e.Name, Help: e.Help, Params: params})
	}
	return out
}
