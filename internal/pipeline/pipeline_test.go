package pipeline

import (
	"testing"

	"faulthound/internal/isa"
	"faulthound/internal/prog"
	"faulthound/internal/stats"
)

// buildSum builds: sum = 0; for i = 1..n { sum += i }; halt. Result in r1.
func buildSum(n int32) *prog.Program {
	b := prog.NewBuilder("sum", 64)
	b.MovI(1, 0)
	b.MovI(2, 1)
	b.MovI(3, n+1)
	b.Label("loop")
	b.Op3(isa.ADD, 1, 1, 2)
	b.OpI(isa.ADDI, 2, 2, 1)
	b.Br(isa.BLT, 2, 3, "loop")
	b.Halt()
	return b.MustBuild()
}

// buildMemLoop builds a loop that walks an array, loading, transforming
// and storing values, exercising loads, stores, and forwarding.
func buildMemLoop(words int32) *prog.Program {
	b := prog.NewBuilder("memloop", uint64(words+8)*8)
	for i := int32(0); i < words; i++ {
		b.Word(uint64(i)*8, uint64(i)*3+1)
	}
	b.MovU64(2, b.DataBase()) // base
	b.MovI(3, 0)              // i
	b.MovI(4, int32(words))   // bound
	b.MovI(6, 0)              // checksum
	b.Label("loop")
	b.OpI(isa.SLLI, 5, 3, 3) // offset
	b.Op3(isa.ADD, 5, 2, 5)  // addr
	b.Ld(7, 5, 0)
	b.OpI(isa.ADDI, 7, 7, 10)
	b.St(5, 0, 7) // a[i] += 10
	b.Ld(8, 5, 0) // reload (forwarding or memory)
	b.Op3(isa.ADD, 6, 6, 8)
	b.OpI(isa.ADDI, 3, 3, 1)
	b.Br(isa.BLT, 3, 4, "loop")
	b.Halt()
	return b.MustBuild()
}

// buildCallProg exercises JAL/JALR and the RAS.
func buildCallProg() *prog.Program {
	b := prog.NewBuilder("calls", 64)
	b.MovI(1, 0)
	b.MovI(2, 20)
	b.MovI(3, 0) // i
	b.Label("loop")
	b.Call("inc")
	b.OpI(isa.ADDI, 3, 3, 1)
	b.Br(isa.BLT, 3, 2, "loop")
	b.Halt()
	b.Label("inc")
	b.OpI(isa.ADDI, 1, 1, 7)
	b.Ret()
	return b.MustBuild()
}

// buildFPProg exercises the FP units and conversions.
func buildFPProg() *prog.Program {
	b := prog.NewBuilder("fp", 64)
	b.MovI(1, 5)
	b.Emit(isa.Inst{Op: isa.I2F, Rd: isa.F(0), Rs1: 1})
	b.MovI(2, 3)
	b.Emit(isa.Inst{Op: isa.I2F, Rd: isa.F(1), Rs1: 2})
	b.Op3(isa.FMUL, isa.F(2), isa.F(0), isa.F(1)) // 15.0
	b.Op3(isa.FADD, isa.F(2), isa.F(2), isa.F(0)) // 20.0
	b.Emit(isa.Inst{Op: isa.F2I, Rd: 3, Rs1: isa.F(2)})
	b.Halt()
	return b.MustBuild()
}

// runBoth runs p on the pipeline (1 thread) and the interpreter and
// fails if architectural register state differs after halt.
func runBoth(t *testing.T, p *prog.Program, maxCycles uint64) (*Core, *prog.Interp) {
	t.Helper()
	cfg := DefaultConfig(1)
	core, err := New(cfg, []*prog.Program{p}, nil)
	if err != nil {
		t.Fatal(err)
	}
	core.Run(maxCycles)
	if !core.Halted(0) {
		t.Fatalf("pipeline did not halt in %d cycles (committed %d)", maxCycles, core.Committed(0))
	}
	it := prog.NewInterp(p)
	it.Run(10_000_000)
	if !it.Halted {
		t.Fatal("interpreter did not halt")
	}
	pregs := core.ArchRegs(0)
	for r := 0; r < isa.NumArchRegs; r++ {
		if pregs[r] != it.Regs[r] {
			t.Errorf("reg %s: pipeline %#x, interp %#x", isa.Reg(r), pregs[r], it.Regs[r])
		}
	}
	if core.Committed(0) != it.Steps {
		t.Errorf("committed %d, interp steps %d", core.Committed(0), it.Steps)
	}
	return core, it
}

func TestPipelineMatchesInterpArithmetic(t *testing.T) {
	core, _ := runBoth(t, buildSum(100), 100000)
	regs := core.ArchRegs(0)
	if regs[1] != 5050 {
		t.Fatalf("sum = %d, want 5050", regs[1])
	}
}

func TestPipelineMatchesInterpMemory(t *testing.T) {
	core, it := runBoth(t, buildMemLoop(40), 200000)
	regs := core.ArchRegs(0)
	if regs[6] != it.Regs[6] || regs[6] == 0 {
		t.Fatalf("checksum = %d, interp %d", regs[6], it.Regs[6])
	}
	// Memory writes must match the interpreter's.
	for a, v := range it.Mem {
		got, err := core.memory.Read(a)
		if err != nil || got != v {
			t.Errorf("mem[%#x] = %d, interp %d (%v)", a, got, v, err)
		}
	}
}

func TestPipelineMatchesInterpCalls(t *testing.T) {
	core, _ := runBoth(t, buildCallProg(), 100000)
	if regs := core.ArchRegs(0); regs[1] != 140 {
		t.Fatalf("r1 = %d, want 140", regs[1])
	}
}

func TestPipelineMatchesInterpFP(t *testing.T) {
	core, _ := runBoth(t, buildFPProg(), 10000)
	if regs := core.ArchRegs(0); regs[3] != 20 {
		t.Fatalf("r3 = %d, want 20", regs[3])
	}
}

func TestPipelineRandomProgramsMatchInterp(t *testing.T) {
	// Pseudo-random straight-line programs over ALU/mem ops: a strong
	// differential test of rename, forwarding, and commit ordering.
	rng := stats.NewRNG(1234)
	for trial := 0; trial < 20; trial++ {
		b := prog.NewBuilder("rand", 1024)
		b.MovU64(2, b.DataBase()) // r2 reserved as the memory base
		reg := func() isa.Reg { return isa.Reg(3 + rng.Intn(8)) }
		for i := 0; i < 120; i++ {
			switch rng.Intn(6) {
			case 0:
				b.MovI(reg(), int32(rng.Intn(1000)))
			case 1:
				b.Op3(isa.ADD, reg(), reg(), reg())
			case 2:
				b.Op3(isa.MUL, reg(), reg(), reg())
			case 3:
				b.OpI(isa.XORI, reg(), reg(), int32(rng.Intn(255)))
			case 4:
				b.St(2, int32(rng.Intn(64))*8, reg())
			case 5:
				b.Ld(reg(), 2, int32(rng.Intn(64))*8)
			}
		}
		b.Halt()
		runBoth(t, b.MustBuild(), 100000)
	}
}

func TestSMTTwoThreadsBothProgress(t *testing.T) {
	cfg := DefaultConfig(2)
	// Per-thread copies with disjoint data segments are not needed for
	// buildSum (no memory traffic); same program twice is the paper's
	// SPEC setup.
	p := buildSum(200)
	core, err := New(cfg, []*prog.Program{p, p}, nil)
	if err != nil {
		t.Fatal(err)
	}
	core.Run(1_000_000)
	for tid := 0; tid < 2; tid++ {
		if !core.Halted(tid) {
			t.Fatalf("thread %d did not halt", tid)
		}
		if regs := core.ArchRegs(tid); regs[1] != 20100 {
			t.Fatalf("thread %d sum = %d, want 20100", tid, regs[1])
		}
	}
}

func TestExceptionOnUnmappedLoad(t *testing.T) {
	b := prog.NewBuilder("fault", 64)
	b.MovI(2, 64) // unmapped low address
	b.Ld(1, 2, 0)
	b.Halt()
	core, err := New(DefaultConfig(1), []*prog.Program{b.MustBuild()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	core.Run(10000)
	exc, msg := core.Excepted(0)
	if !exc {
		t.Fatal("expected a translation exception")
	}
	if msg == "" {
		t.Fatal("expected an exception message")
	}
	if core.Stats().Exceptions != 1 {
		t.Fatalf("exception count = %d", core.Stats().Exceptions)
	}
}

func TestBranchMispredictionRecovery(t *testing.T) {
	// A data-dependent unpredictable branch pattern still produces
	// correct architectural results.
	b := prog.NewBuilder("mispredict", 1024)
	// Fill memory with a pseudo-random pattern the branch depends on.
	rng := stats.NewRNG(7)
	for i := uint64(0); i < 64; i++ {
		b.Word(i*8, rng.Uint64()%2)
	}
	b.MovU64(2, b.DataBase())
	b.MovI(3, 0)  // i
	b.MovI(4, 64) // bound
	b.MovI(5, 0)  // count of ones
	b.Label("loop")
	b.OpI(isa.SLLI, 6, 3, 3)
	b.Op3(isa.ADD, 6, 2, 6)
	b.Ld(7, 6, 0)
	b.Br(isa.BEQ, 7, 0, "skip")
	b.OpI(isa.ADDI, 5, 5, 1)
	b.Label("skip")
	b.OpI(isa.ADDI, 3, 3, 1)
	b.Br(isa.BLT, 3, 4, "loop")
	b.Halt()
	p := b.MustBuild()
	core, _ := runBoth(t, p, 1_000_000)
	if core.Stats().BranchMispredicts == 0 {
		t.Fatal("expected some mispredictions on random data")
	}
}

func TestDelayBufferHoldsCompleted(t *testing.T) {
	core, _ := runBoth(t, buildSum(500), 1_000_000)
	s := core.Stats()
	if s.DelayBufEvictions == 0 && s.DelayBufFlushes == 0 {
		t.Fatal("delay buffer should cycle completed instructions")
	}
}

func TestCloneProducesIdenticalFuture(t *testing.T) {
	p := buildMemLoop(64)
	mk := func() *Core {
		core, err := New(DefaultConfig(1), []*prog.Program{p}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return core
	}
	a := mk()
	for i := 0; i < 500; i++ {
		a.Step()
	}
	b := a.Clone()
	// Advance both identically; their state must stay identical.
	for i := 0; i < 2000; i++ {
		a.Step()
		b.Step()
	}
	if a.Cycle() != b.Cycle() || a.Committed(0) != b.Committed(0) {
		t.Fatalf("divergence: cycles %d/%d commits %d/%d", a.Cycle(), b.Cycle(), a.Committed(0), b.Committed(0))
	}
	if a.ArchHash(0) != b.ArchHash(0) {
		t.Fatal("architectural state diverged between original and clone")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	p := buildSum(1000)
	core, err := New(DefaultConfig(1), []*prog.Program{p}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		core.Step()
	}
	before := core.ArchHash(0)
	cl := core.Clone()
	cl.Run(100000)
	if core.ArchHash(0) != before {
		t.Fatal("running the clone mutated the original")
	}
}

func TestDeterminism(t *testing.T) {
	p := buildMemLoop(64)
	run := func() (uint64, uint64) {
		core, err := New(DefaultConfig(1), []*prog.Program{p}, nil)
		if err != nil {
			t.Fatal(err)
		}
		core.Run(1_000_000)
		return core.Cycle(), core.ArchHash(0)
	}
	c1, h1 := run()
	c2, h2 := run()
	if c1 != c2 || h1 != h2 {
		t.Fatalf("nondeterministic: cycles %d/%d hash %#x/%#x", c1, c2, h1, h2)
	}
}

func TestRunUntilCommits(t *testing.T) {
	p := buildSum(1000)
	core, err := New(DefaultConfig(1), []*prog.Program{p}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !core.RunUntilCommits(0, 100, 1_000_000) {
		t.Fatal("did not reach 100 commits")
	}
	got := core.Committed(0)
	if got < 100 || got > 100+uint64(core.Config().CommitWidth) {
		t.Fatalf("committed %d, want ~100", got)
	}
}

func TestShadowRedundancyConsumesBandwidth(t *testing.T) {
	p := buildSum(2000)
	base, err := New(DefaultConfig(1), []*prog.Program{p}, nil)
	if err != nil {
		t.Fatal(err)
	}
	base.Run(2_000_000)

	cfg := DefaultConfig(1)
	cfg.ShadowRedundancy = 1.0
	srt, err := New(cfg, []*prog.Program{p}, nil)
	if err != nil {
		t.Fatal(err)
	}
	srt.Run(2_000_000)

	if srt.Stats().ShadowOps == 0 {
		t.Fatal("no shadow ops executed")
	}
	// Shadow copies must roughly match committed instructions.
	ratio := float64(srt.Stats().ShadowOps) / float64(srt.Stats().Committed)
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("shadow ratio = %v, want ~1.0", ratio)
	}
	// Redundancy can only slow the core down.
	if srt.Cycle() < base.Cycle() {
		t.Fatalf("SRT run faster than baseline: %d < %d", srt.Cycle(), base.Cycle())
	}
}

func TestFlipRegisterBitPropagates(t *testing.T) {
	// Flip a bit in the architectural mapping of r1 mid-run and verify
	// the final sum changes (the fault propagated to consumers).
	p := buildSum(100)
	clean, err := New(DefaultConfig(1), []*prog.Program{p}, nil)
	if err != nil {
		t.Fatal(err)
	}
	clean.Run(1_000_000)
	want := clean.ArchRegs(0)[1]

	faulty, err := New(DefaultConfig(1), []*prog.Program{p}, nil)
	if err != nil {
		t.Fatal(err)
	}
	faulty.RunUntilCommits(0, 50, 1_000_000)
	// Flip a bit of the loop bound's physical register (r3 is written
	// once and read every iteration, so the flip must change the sum).
	pr := faulty.threads[0].aRAT[3]
	faulty.FlipRegisterBit(uint16(pr), 4)
	faulty.Run(1_000_000)
	if got := faulty.ArchRegs(0)[1]; got == want {
		t.Fatalf("fault was silently lost: sum still %d", got)
	}
}

func TestFlipRATBitChangesMapping(t *testing.T) {
	p := buildSum(100)
	core, err := New(DefaultConfig(1), []*prog.Program{p}, nil)
	if err != nil {
		t.Fatal(err)
	}
	core.RunUntilCommits(0, 20, 1_000_000)
	before := core.threads[0].rat[1]
	if !core.FlipRATBit(0, 1, 0) {
		t.Fatal("flip failed")
	}
	after := core.threads[0].rat[1]
	if before == after {
		t.Fatal("RAT entry unchanged")
	}
	if int(after) >= core.cfg.IntPhysRegs {
		t.Fatalf("corrupted tag %d escaped the integer class", after)
	}
}

func TestFlipRATBitRejectsZeroReg(t *testing.T) {
	p := buildSum(10)
	core, _ := New(DefaultConfig(1), []*prog.Program{p}, nil)
	if core.FlipRATBit(0, isa.RZero, 0) {
		t.Fatal("must not inject into r0's mapping")
	}
}

func TestLSQSitesAndFlip(t *testing.T) {
	p := buildMemLoop(64)
	core, err := New(DefaultConfig(1), []*prog.Program{p}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Step until some LSQ site exists.
	var sites []LSQSite
	for i := 0; i < 20000 && len(sites) == 0; i++ {
		core.Step()
		sites = core.LSQSites()
	}
	if len(sites) == 0 {
		t.Fatal("no LSQ sites found")
	}
	if !core.FlipLSQBit(sites[0], LSQAddr, 2) {
		t.Fatal("flip failed")
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.IntPhysRegs = 40 // too few for 2 threads
	if err := cfg.Validate(); err == nil {
		t.Fatal("expected validation error")
	}
	if _, err := New(cfg, nil, nil); err == nil {
		t.Fatal("New should reject invalid config")
	}
	cfg = DefaultConfig(1)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestStatsBasics(t *testing.T) {
	core, _ := runBoth(t, buildMemLoop(32), 1_000_000)
	s := core.Stats()
	if s.Loads == 0 || s.Stores == 0 || s.Branches == 0 {
		t.Fatalf("class counters: %+v", s)
	}
	if s.IPC() <= 0 || s.CPI() <= 0 {
		t.Fatal("IPC/CPI should be positive")
	}
	ms := core.MemStats()
	if ms.L1DAccesses == 0 || ms.L1IAccesses == 0 {
		t.Fatal("cache counters empty")
	}
}
