package pipeline

// squashUop marks u dead and releases its physical destination and
// queue slots. The caller repairs the RAT and the containing queues.
func (c *Core) squashUop(u *uop) {
	if u.state == stSquashed || u.state == stCommitted {
		return
	}
	c.trace(TraceSquash, u, "")
	if u.replaying {
		u.replaying = false
		c.replayPending--
	}
	u.state = stSquashed
	u.inDelayBuf = false
	c.iqRemove(u)
	c.rf.free(u.dst)
	c.schedWake(u.dst)
	u.dst = physNone
}

// fullSquash rolls the trigger's thread back to its architectural
// state: every uncommitted instruction is squashed, the RAT is restored
// from the architectural RAT, and fetch restarts at the next-to-commit
// PC. This is the recovery PBFS uses for every trigger and FaultHound
// reserves for likely rename faults (Section 3.4). The re-executions up
// to and including the trigger are deemed final (checked learn-only),
// which guarantees forward progress.
func (c *Core) fullSquash(trigger *uop) {
	c.schedTouch()
	t := c.threads[trigger.thread]
	// An executed atomic's read-modify-write cannot be undone: stop the
	// rollback just after the youngest such atomic (it stays and
	// commits; its RAT checkpoint restores the map).
	for i := len(t.rob) - 1; i >= 0; i-- {
		if u := t.rob[i]; u.rmwDone && u.state != stCommitted {
			c.stats.Rollbacks++
			c.squashAfter(u)
			t.pc = u.pc + 1
			return
		}
	}
	c.stats.Rollbacks++
	squashed := 0
	position := uint64(0)
	for _, u := range t.rob {
		if u.state != stCommitted {
			squashed++
			if u == trigger {
				position = t.committed + uint64(squashed)
			}
			c.squashUop(u)
		}
	}
	c.stats.RollbackSquashedUops += uint64(squashed + len(t.fetchQ))
	if c.cfg.RollbackDeemedFinal && position > t.exemptUntil {
		t.exemptUntil = position
	}
	t.fetchBlockedUntil = c.cycle + uint64(c.cfg.RollbackPenalty)
	c.finishThreadSquash(t)
	if c.replayPending == 0 {
		c.detSetLearnOnly(false)
	}
}

// squashThread clears a thread's in-flight state without counting it as
// a detector rollback (used at HALT and exception commit).
func (c *Core) squashThread(t *threadState) {
	c.schedTouch()
	for _, u := range t.rob {
		c.squashUop(u)
	}
	c.finishThreadSquash(t)
	if c.replayPending == 0 {
		c.detSetLearnOnly(false)
	}
}

// finishThreadSquash resets the thread's queues and speculative state.
func (c *Core) finishThreadSquash(t *threadState) {
	t.rob = t.rob[:0]
	t.lsq = t.lsq[:0]
	t.fetchQ = t.fetchQ[:0]
	copy(t.rat, t.aRAT)
	t.pc = t.aPC
	t.pred.SetHistory(t.archHistory)
	t.fetchStopped = false
	c.filterDelayBuf()
	c.filterInFlight()
}

// squashAfter squashes every same-thread instruction younger than b
// (branch misprediction recovery): the RAT is restored from b's
// checkpoint and fetch resumes at the resolved target (set by caller).
func (c *Core) squashAfter(b *uop) {
	c.schedTouch()
	t := c.threads[b.thread]
	keep := t.rob[:0]
	for _, u := range t.rob {
		if u.seq > b.seq {
			c.stats.BranchSquashedUops++
			c.squashUop(u)
		} else {
			keep = append(keep, u)
		}
	}
	t.rob = keep

	keepLSQ := t.lsq[:0]
	for _, u := range t.lsq {
		if u.seq <= b.seq {
			keepLSQ = append(keepLSQ, u)
		}
	}
	t.lsq = keepLSQ

	c.stats.BranchSquashedUops += uint64(len(t.fetchQ))
	t.fetchQ = t.fetchQ[:0]
	if b.ratCkpt != nil {
		copy(t.rat, b.ratCkpt)
	} else {
		copy(t.rat, t.aRAT)
	}
	t.fetchStopped = false
	c.filterDelayBuf()
	c.filterInFlight()
	if c.replayPending == 0 {
		c.detSetLearnOnly(false)
	}
}

// filterDelayBuf drops squashed entries from the delay buffer.
func (c *Core) filterDelayBuf() {
	keep := c.delayBuf[:0]
	for _, u := range c.delayBuf {
		if u.state == stCompleted && u.inDelayBuf {
			keep = append(keep, u)
		}
	}
	c.delayBuf = keep
}

// filterInFlight drops squashed entries from the executing set.
func (c *Core) filterInFlight() {
	keep := c.inFlight[:0]
	for _, u := range c.inFlight {
		if u.state != stSquashed {
			keep = append(keep, u)
		}
	}
	c.inFlight = keep
}
