package pipeline

import "faulthound/internal/mem"

// Clone returns an independent deep copy of the core, preserving uop
// identity across all internal queues. The tandem fault-injection
// runner clones a warmed-up core once per injection instead of
// replaying the warmup.
func (c *Core) Clone() *Core {
	return c.CloneWithMemory(c.memory.Clone())
}

// CloneWithMemory is Clone with the data memory supplied by the caller
// — the multicore construction, where the system clones the shared
// memory once and every core clone references it.
func (c *Core) CloneWithMemory(shared *mem.Memory) *Core {
	// Every live uop is reachable from a thread's ROB or fetch queue
	// (the IQ, LSQ, delay buffer, and executing set alias into those),
	// so current occupancy bounds the bookkeeping exactly and the map
	// never rehashes mid-clone.
	occupancy := 0
	for _, t := range c.threads {
		occupancy += len(t.rob) + len(t.fetchQ)
	}
	seen := make(map[*uop]*uop, occupancy)
	cp := func(u *uop) *uop {
		if u == nil {
			return nil
		}
		if d, ok := seen[u]; ok {
			return d
		}
		d := new(uop)
		*d = *u
		if u.ratCkpt != nil {
			d.ratCkpt = append([]physID(nil), u.ratCkpt...)
		}
		seen[u] = d
		return d
	}
	cpSlice := func(us []*uop) []*uop {
		if us == nil {
			return nil
		}
		out := make([]*uop, len(us))
		for i, u := range us {
			out[i] = cp(u)
		}
		return out
	}

	d := &Core{
		cfg:           c.cfg,
		cycle:         c.cycle,
		seq:           c.seq,
		rf:            c.rf.clone(),
		iq:            cpSlice(c.iq),
		iqUsed:        c.iqUsed,
		inFlight:      cpSlice(c.inFlight),
		delayBuf:      cpSlice(c.delayBuf),
		mshrFree:      append([]uint64(nil), c.mshrFree...),
		memory:        shared,
		hier:          c.hier.Clone(),
		replayPending: c.replayPending,
		commitStall:   c.commitStall,
		shadowAcc:     c.shadowAcc,
		shadowPending: c.shadowPending,
		stats:         c.stats,
	}
	if c.detector != nil {
		d.detector = c.detector.Clone()
	}
	for _, t := range c.threads {
		d.threads = append(d.threads, &threadState{
			id:                t.id,
			prog:              t.prog, // immutable after build
			pc:                t.pc,
			rat:               append([]physID(nil), t.rat...),
			aRAT:              append([]physID(nil), t.aRAT...),
			aPC:               t.aPC,
			pred:              t.pred.Clone(),
			halted:            t.halted,
			fetchStopped:      t.fetchStopped,
			excepted:          t.excepted,
			exceptMsg:         t.exceptMsg,
			fetchQ:            cpSlice(t.fetchQ),
			rob:               cpSlice(t.rob),
			lsq:               cpSlice(t.lsq),
			committed:         t.committed,
			writtenRegs:       t.writtenRegs,
			archHistory:       t.archHistory,
			exemptUntil:       t.exemptUntil,
			fetchBlockedUntil: t.fetchBlockedUntil,
		})
	}
	return d
}
