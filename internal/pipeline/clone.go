package pipeline

import (
	"sort"

	"faulthound/internal/detect"
	"faulthound/internal/mem"
)

// Clone returns an independent deep copy of the core, preserving uop
// identity across all internal queues. The tandem fault-injection
// runner clones a warmed-up core once per injection instead of
// replaying the warmup.
func (c *Core) Clone() *Core {
	return c.cloneWith(c.memory.Clone(), nil)
}

// CloneWithMemory is Clone with the data memory supplied by the caller
// — the multicore construction, where the system clones the shared
// memory once and every core clone references it.
func (c *Core) CloneWithMemory(shared *mem.Memory) *Core {
	return c.cloneWith(shared, nil)
}

// SnapshotArena owns the reusable storage for repeated snapshots of one
// golden core: the destination core itself, a flat uop slab, a RAT
// checkpoint slab, and the per-thread segment table. The queue pointer
// slices live on the destination core's own fields, so capacity the
// previous run grew into (a deep delay buffer, a long LSQ) carries over
// to the next snapshot. A campaign worker keeps one arena and calls
// Snapshot once per injection; everything a snapshot needs after the
// first is already allocated, so a snapshot degenerates to bulk copies.
// Each Snapshot invalidates the previous one (they share storage), and
// an arena must not be shared across goroutines.
type SnapshotArena struct {
	dst  *Core
	slab []uop
	ckpt []physID
	segs []cloneSeg
	// uopPool holds dead fetch-time uop chunks recycled from previous
	// snapshots; the snapshot core's allocator draws from it before
	// asking the heap.
	uopPool [][]uop
}

// NewSnapshotArena returns an empty arena; storage is grown on first
// use and reused afterwards.
func NewSnapshotArena() *SnapshotArena { return &SnapshotArena{} }

// SetCloneBaseline registers base's memory hierarchy as the frozen
// delta-clone anchor for c's (mem.Hierarchy.SetBaseline): an arena
// snapshot restored from c then rewrites only the L2 lines touched
// since the destination's last restore instead of the full tag store.
// Both cores must be frozen fork origins that are never stepped again.
func (c *Core) SetCloneBaseline(base *Core) { c.hier.SetBaseline(base.hier) }

// cloneSeg records where one thread's ROB and fetch queue landed in the
// slab, for remapping the queues that alias into them.
type cloneSeg struct {
	robSrc, fqSrc []*uop
	robDst, fqDst []uop
}

// Snapshot returns a copy of c built inside the arena. The copy's data
// memory is a copy-on-write overlay over c's memory (reused and Reset
// when the arena already holds one), so c must stay immutable while the
// snapshot is in use — the fault runner's Prepared contract. The
// returned core is valid until the next Snapshot on the same arena.
func (c *Core) Snapshot(a *SnapshotArena) *Core {
	if a == nil {
		return c.Clone()
	}
	var m *mem.Memory
	switch {
	case a.dst != nil && a.dst.memory != nil && a.dst.memory.IsOverlayOf(c.memory):
		m = a.dst.memory
		m.Reset()
	case a.dst != nil && a.dst.memory != nil && a.dst.memory.Overlaid():
		// The arena's overlay sits on a different base (the previous
		// snapshot forked from another golden checkpoint, or another
		// cell's golden core): rebase it instead of reallocating, so
		// checkpoint-forked snapshots stay allocation-free too.
		m = a.dst.memory
		m.ResetOnto(c.memory)
	default:
		m = c.memory.Overlay()
	}
	return c.cloneWith(m, a)
}

// ensureLen returns buf resized to n, reallocating only when the
// capacity is insufficient.
func ensureLen[T any](buf *[]T, n int) []T {
	if cap(*buf) < n {
		*buf = make([]T, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// cloneWith builds the deep copy. With a nil arena every piece is
// freshly allocated (Clone/CloneWithMemory); with an arena the
// destination core and all its storage are reused.
//
// The copy leans on two container invariants of the pipeline:
//
//   - Every live uop is reachable from its thread's ROB or fetch queue
//     (dispatchOne moves uops from the fetch queue into the ROB and is
//     the only path into the IQ/LSQ; the delay buffer and executing set
//     hold only dispatched uops). So one slab sized by ROB+fetchQ
//     occupancy holds every uop, with no discovery pass.
//   - ROB and fetch queue are strictly ascending in the globally-unique
//     seq tag, so the aliasing queues (IQ, LSQ, delay buffer, executing
//     set) are remapped by binary search on seq instead of a map.
func (c *Core) cloneWith(shared *mem.Memory, a *SnapshotArena) *Core {
	nUops, nCkpt := 0, 0
	for _, t := range c.threads {
		nUops += len(t.rob) + len(t.fetchQ)
		for _, u := range t.rob {
			nCkpt += len(u.ratCkpt)
		}
		for _, u := range t.fetchQ {
			nCkpt += len(u.ratCkpt)
		}
	}

	var (
		d    *Core
		slab []uop
		ckpt []physID
		segs []cloneSeg
	)
	if a != nil {
		if a.dst == nil {
			a.dst = &Core{}
		}
		d = a.dst
		slab = ensureLen(&a.slab, nUops)
		ckpt = ensureLen(&a.ckpt, nCkpt)
		segs = ensureLen(&a.segs, len(c.threads))
		// Recycle the previous run's fetch-time uop chunks: nothing
		// references them once the queues are rebuilt from the slab
		// below, and the next run's newUop calls reuse them (cleared on
		// hand-out) instead of allocating.
		a.uopPool = append(a.uopPool, d.liveUopChunks...)
		d.liveUopChunks = d.liveUopChunks[:0]
		d.uopChunkPool = &a.uopPool
		d.uopChunk = nil
	} else {
		d = &Core{}
		slab = make([]uop, nUops)
		ckpt = make([]physID, nCkpt)
		segs = make([]cloneSeg, len(c.threads))
	}

	// Pass 1: bulk-copy every thread's ROB and fetch queue into the slab
	// (all uops), carving RAT checkpoints out of the checkpoint slab.
	slabOff, ckptOff := 0, 0
	cloneRun := func(src []*uop) []uop {
		dst := slab[slabOff : slabOff+len(src)]
		slabOff += len(src)
		for i, u := range src {
			dst[i] = *u
			if u.ratCkpt != nil {
				ck := ckpt[ckptOff : ckptOff+len(u.ratCkpt)]
				ckptOff += len(u.ratCkpt)
				copy(ck, u.ratCkpt)
				dst[i].ratCkpt = ck
			}
		}
		return dst
	}
	for i, t := range c.threads {
		segs[i] = cloneSeg{
			robSrc: t.rob, robDst: cloneRun(t.rob),
			fqSrc: t.fetchQ, fqDst: cloneRun(t.fetchQ),
		}
	}

	// Pass 2: remap the aliasing queues onto the slab copies.
	remap := func(u *uop) *uop {
		if u == nil {
			return nil
		}
		s := &segs[u.thread]
		if i := searchSeq(s.robSrc, u.seq); i >= 0 && s.robSrc[i] == u {
			return &s.robDst[i]
		}
		if i := searchSeq(s.fqSrc, u.seq); i >= 0 && s.fqSrc[i] == u {
			return &s.fqDst[i]
		}
		// Unreachable under the container invariant; copy defensively so
		// a future aliasing change degrades to a slower clone, not a
		// shared-mutable-uop bug.
		e := new(uop)
		*e = *u
		if u.ratCkpt != nil {
			e.ratCkpt = append([]physID(nil), u.ratCkpt...)
		}
		return e
	}
	// The pointer-slice rebuilders append into the destination's old
	// slice: the capacity the previous run grew into (a deep delay
	// buffer, an advanced fetch queue) is reused, so steady-state
	// snapshots and runs stop allocating queue storage. Appending into
	// dst is safe — its old contents point at dead slab state.
	remapInto := func(dst, src []*uop) []*uop {
		if src == nil {
			return nil
		}
		dst = dst[:0]
		for _, u := range src {
			dst = append(dst, remap(u))
		}
		return dst
	}
	ptrsInto := func(dst []*uop, seg []uop) []*uop {
		dst = dst[:0]
		for i := range seg {
			dst = append(dst, &seg[i])
		}
		return dst
	}

	d.cfg = c.cfg
	d.cycle = c.cycle
	d.seq = c.seq
	if d.rf != nil {
		c.rf.cloneInto(d.rf)
	} else {
		d.rf = c.rf.clone()
	}
	d.iq = remapInto(d.iq, c.iq)
	d.iqUsed = c.iqUsed
	d.iqMask = c.iqMask
	d.iqDisp = c.iqDisp
	d.iqSched = c.iqSched
	d.iqReady = c.iqReady
	d.iqPend = c.iqPend
	d.rfWait = append(d.rfWait[:0], c.rfWait...)
	d.rfRef = append(d.rfRef[:0], c.rfRef...)
	d.inFlight = remapInto(d.inFlight, c.inFlight)
	d.delayBuf = remapInto(d.delayBuf, c.delayBuf)
	if c.mshrFree == nil {
		d.mshrFree = nil
	} else if a != nil {
		d.mshrFree = append(d.mshrFree[:0], c.mshrFree...)
	} else {
		d.mshrFree = append([]uint64(nil), c.mshrFree...)
	}
	d.memory = shared
	if d.hier != nil {
		c.hier.CloneInto(d.hier)
	} else {
		d.hier = c.hier.Clone()
	}
	if c.detector == nil {
		d.detector = nil
	} else if ip, ok := c.detector.(detect.InPlaceCloner); ok && d.detector != nil && ip.CloneInto(d.detector) {
		// reused in place
	} else {
		d.detector = c.detector.Clone()
	}
	d.detStream = c.detStream
	// Observation hooks never carry over: the fault runner installs its
	// own per-run hooks on the copy.
	d.probe = nil
	d.tracer = nil
	d.commitHook = nil
	d.memHook = nil
	d.replayPending = c.replayPending
	d.commitStall = c.commitStall
	d.shadowAcc = c.shadowAcc
	d.shadowPending = c.shadowPending
	d.stats = c.stats
	d.issueScratch = d.issueScratch[:0]
	d.doneScratch = d.doneScratch[:0]
	d.replayScratch = d.replayScratch[:0]
	// Conservative: the copy has no gather memo to inherit.
	d.schedClean = false

	if cap(d.threads) < len(c.threads) {
		d.threads = make([]*threadState, 0, len(c.threads))
	}
	reuse := d.threads
	d.threads = d.threads[:0]
	for i, t := range c.threads {
		var dt *threadState
		if i < len(reuse) && reuse[i] != nil {
			dt = reuse[i]
		} else {
			dt = &threadState{}
		}
		rat := append(dt.rat[:0], t.rat...)
		aRAT := append(dt.aRAT[:0], t.aRAT...)
		pred := dt.pred
		if pred != nil {
			t.pred.CloneInto(pred)
		} else {
			pred = t.pred.Clone()
		}
		*dt = threadState{
			id:                t.id,
			prog:              t.prog, // immutable after build
			pc:                t.pc,
			rat:               rat,
			aRAT:              aRAT,
			aPC:               t.aPC,
			pred:              pred,
			halted:            t.halted,
			fetchStopped:      t.fetchStopped,
			excepted:          t.excepted,
			exceptMsg:         t.exceptMsg,
			fetchQ:            ptrsInto(dt.fetchQ, segs[i].fqDst),
			rob:               ptrsInto(dt.rob, segs[i].robDst),
			lsq:               remapInto(dt.lsq, t.lsq),
			committed:         t.committed,
			writtenRegs:       t.writtenRegs,
			archHistory:       t.archHistory,
			exemptUntil:       t.exemptUntil,
			fetchBlockedUntil: t.fetchBlockedUntil,
		}
		d.threads = append(d.threads, dt)
	}
	return d
}

// searchSeq finds the index of seq in a seq-ascending uop slice, or -1.
func searchSeq(us []*uop, seq uint64) int {
	i := sort.Search(len(us), func(i int) bool { return us[i].seq >= seq })
	if i < len(us) && us[i].seq == seq {
		return i
	}
	return -1
}
