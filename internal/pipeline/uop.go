package pipeline

import (
	"faulthound/internal/branch"
	"faulthound/internal/isa"
)

// physID indexes the unified physical register file. Integer physical
// registers occupy [0, IntPhysRegs); FP physical registers occupy
// [IntPhysRegs, IntPhysRegs+FPPhysRegs).
type physID uint16

const physNone physID = 0xffff

// uopState tracks an instruction's position in the pipeline.
type uopState uint8

const (
	stFetched uopState = iota
	stDispatched
	stIssued
	stCompleted
	stCommitted
	stSquashed
)

// uop is one in-flight instruction.
type uop struct {
	seq    uint64 // global age (monotonic)
	thread int
	pc     uint64
	inst   isa.Inst

	// Rename state.
	dst    physID // destination physical register (physNone if none)
	oldDst physID // previous mapping of the arch dest, freed at commit
	src    [2]physID
	nsrc   int

	state uopState

	// Front-end prediction and checkpoint (branches only).
	pred    branch.Prediction
	ratCkpt []physID // per-thread RAT snapshot for mispredict recovery
	predPC  uint64   // next PC the front end followed after this uop
	isCall  bool
	isRet   bool

	// Execution results.
	result    uint64
	effAddr   uint64
	storeVal  uint64
	taken     bool
	target    uint64
	excepted  bool // memory translation exception, raised at commit
	exceptMsg string

	// Timing.
	readyAt    uint64 // fetch-queue release cycle
	completeAt uint64 // scheduled completion cycle while executing

	// Queue positions.
	inIQ     bool
	iqSlot   int8 // IQ slot index while inIQ (IQSize <= 64)
	lsqIndex int  // index into the thread's LSQ ring, -1 if none

	// Replay bookkeeping.
	// rmwDone marks an atomic whose read-modify-write has been applied
	// to memory; such a uop can no longer be squashed.
	rmwDone    bool
	inDelayBuf bool
	replaying  bool
	replayed   bool // has been re-executed at least once
	shadow     bool // SRT-iso redundant copy: consumes bandwidth only
	halt       bool
}

// isMem reports whether the uop accesses data memory (including
// atomics, which occupy LSQ entries).
func (u *uop) isMem() bool { return u.inst.IsMem() || u.inst.IsAtomic() }

// isLoad reports whether the uop is a load.
func (u *uop) isLoad() bool { return u.inst.Op == isa.LD }

// isStore reports whether the uop is a store.
func (u *uop) isStore() bool { return u.inst.Op == isa.ST }

// fuClass maps the uop to a functional-unit pool.
func (u *uop) fuClass() isa.Class { return isa.ClassOf(u.inst.Op) }
