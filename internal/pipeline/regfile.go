package pipeline

import "faulthound/internal/isa"

// regFile is the unified physical register file plus free lists. Values
// are architectural: a soft-fault injection flips a bit in val and the
// flip is visible to every subsequent read, while consumers that
// already read (nearby, bypassed consumers) are unaffected — exactly
// the register-file masking behavior Section 3.5 of the paper relies
// on.
type regFile struct {
	val    []uint64
	ready  []bool
	numInt int
	// free lists as LIFO stacks
	freeInt []physID
	freeFP  []physID
}

func newRegFile(numInt, numFP int) *regFile {
	rf := &regFile{
		val:    make([]uint64, numInt+numFP),
		ready:  make([]bool, numInt+numFP),
		numInt: numInt,
	}
	for i := range rf.ready {
		rf.ready[i] = true
	}
	return rf
}

// isFP reports whether p is an FP physical register.
func (rf *regFile) isFP(p physID) bool { return int(p) >= rf.numInt }

// alloc takes a free physical register of the class of arch register r.
// It returns physNone when the class's free list is empty (dispatch
// stalls).
func (rf *regFile) alloc(r isa.Reg) physID {
	if r.IsFP() {
		if n := len(rf.freeFP); n > 0 {
			p := rf.freeFP[n-1]
			rf.freeFP = rf.freeFP[:n-1]
			rf.ready[p] = false
			return p
		}
		return physNone
	}
	if n := len(rf.freeInt); n > 0 {
		p := rf.freeInt[n-1]
		rf.freeInt = rf.freeInt[:n-1]
		rf.ready[p] = false
		return p
	}
	return physNone
}

// free returns p to its free list. Freeing physNone or the shared zero
// register (phys 0) is a no-op.
func (rf *regFile) free(p physID) {
	if p == physNone || p == 0 {
		return
	}
	rf.ready[p] = true
	if rf.isFP(p) {
		rf.freeFP = append(rf.freeFP, p)
	} else {
		rf.freeInt = append(rf.freeInt, p)
	}
}

// write stores v and marks p ready. Writes to the zero register are
// discarded.
func (rf *regFile) write(p physID, v uint64) {
	if p == physNone {
		return
	}
	if p != 0 {
		rf.val[p] = v
	}
	rf.ready[p] = true
}

// read returns the current value of p.
func (rf *regFile) read(p physID) uint64 {
	if p == physNone {
		return 0
	}
	return rf.val[p]
}

// clone returns an independent deep copy.
func (rf *regFile) clone() *regFile {
	return &regFile{
		val:     append([]uint64(nil), rf.val...),
		ready:   append([]bool(nil), rf.ready...),
		numInt:  rf.numInt,
		freeInt: append([]physID(nil), rf.freeInt...),
		freeFP:  append([]physID(nil), rf.freeFP...),
	}
}

// cloneInto overwrites d with a deep copy of rf, reusing d's storage
// (the snapshot-arena path).
func (rf *regFile) cloneInto(d *regFile) {
	d.val = append(d.val[:0], rf.val...)
	d.ready = append(d.ready[:0], rf.ready...)
	d.numInt = rf.numInt
	d.freeInt = append(d.freeInt[:0], rf.freeInt...)
	d.freeFP = append(d.freeFP[:0], rf.freeFP...)
}
