package pipeline

import "math"

// StateDigest is a reconvergence fingerprint of one core at one cycle.
// The fault runner captures digests of the golden trace at a fixed
// cadence during Prepare; after an injection it compares the faulty
// clone against the digest for the same cycle and, on a match, declares
// the fault masked without simulating the rest of the window
// (divergence-bounded replay).
//
// A match is an equality proof in three stages, cheapest-to-fail
// first:
//
//  1. Stream scalars: cycle, the global seq counter, the detector
//     interaction stream, the O(1) memory hash, and the cache
//     hierarchy's access-stream tag. Any divergence in control flow,
//     memory contents, or detector behavior lands here within a few
//     word compares.
//  2. The physical register file, element by element against a full
//     copy of the golden values. A mismatched register is tolerated
//     only when it is provably dead in the current core: on a free
//     list and referenced by no RAT, architectural RAT, in-flight uop
//     operand, or RAT checkpoint. A dead register is overwritten at
//     its next allocation before any read can reach it, so its value
//     cannot influence future behavior (and the architectural hash
//     reads only aRAT-mapped registers, so it cannot leak into the
//     final comparison either).
//  3. A structural fold of everything else: per-thread scalars and
//     rename tables, every in-flight uop's full contents, the
//     positional IQ/LSQ/delay-buffer/executing-set ordering, free
//     lists, ready bits, and MSHR timing.
//
// Stages 1 and 3 are hash compares, so a match is "equal with
// overwhelming probability" rather than a bitwise proof — the same
// standing as the ArchHash comparison the classifier already rests on.
type StateDigest struct {
	Cycle     uint64
	Seq       uint64
	DetStream uint64
	MemHash   uint64
	HierTag   uint64
	// Regs is a full copy of the physical register file values, kept
	// elementwise so MatchesDigest can apply the dead-register
	// allowance instead of failing on a hash of the whole file.
	Regs       []uint64
	StructHash uint64
}

// CaptureDigest records the core's digest at the current cycle. It
// allocates (the register-file copy) and is meant for the golden trace
// during Prepare, not for per-injection hot paths.
func (c *Core) CaptureDigest() StateDigest {
	return StateDigest{
		Cycle:      c.cycle,
		Seq:        c.seq,
		DetStream:  c.detStream,
		MemHash:    c.memory.Hash(),
		HierTag:    c.hier.StreamTag(),
		Regs:       append([]uint64(nil), c.rf.val...),
		StructHash: c.structFold(),
	}
}

// MatchesDigest reports whether the core's state at the current cycle
// provably matches d (see StateDigest). It allocates nothing.
func (c *Core) MatchesDigest(d *StateDigest) bool {
	if c.cycle != d.Cycle || c.seq != d.Seq || c.detStream != d.DetStream ||
		c.memory.Hash() != d.MemHash || c.hier.StreamTag() != d.HierTag {
		return false
	}
	if len(c.rf.val) != len(d.Regs) {
		return false
	}
	for p, v := range c.rf.val {
		if v != d.Regs[p] && !c.regProvablyDead(physID(p)) {
			return false
		}
	}
	return c.structFold() == d.StructHash
}

// regProvablyDead reports whether physical register p is free and
// referenced by nothing that could read it before its next allocation
// rewrites it. Called only for a value mismatch, so the O(free+rob)
// scans run a handful of times per digest check at most.
func (c *Core) regProvablyDead(p physID) bool {
	free := false
	for _, f := range c.rf.freeInt {
		if f == p {
			free = true
			break
		}
	}
	if !free {
		for _, f := range c.rf.freeFP {
			if f == p {
				free = true
				break
			}
		}
	}
	if !free {
		return false
	}
	refs := func(u *uop) bool {
		if u.dst == p || u.oldDst == p {
			return true
		}
		for i := 0; i < u.nsrc; i++ {
			if u.src[i] == p {
				return true
			}
		}
		for _, q := range u.ratCkpt {
			if q == p {
				return true
			}
		}
		return false
	}
	for _, t := range c.threads {
		for _, q := range t.rat {
			if q == p {
				return false
			}
		}
		for _, q := range t.aRAT {
			if q == p {
				return false
			}
		}
		for _, u := range t.rob {
			if refs(u) {
				return false
			}
		}
		for _, u := range t.fetchQ {
			if refs(u) {
				return false
			}
		}
	}
	return true
}

// structFold hashes every piece of core state not covered by the
// digest's scalar and register-file stages: thread scalars, rename
// tables, in-flight uop contents, queue orderings, free lists, ready
// bits, and MSHR/stall/shadow bookkeeping.
func (c *Core) structFold() uint64 {
	h := uint64(0x5f4bf2c7a9d3e681)
	fold := func(x uint64) {
		h = mixDet(x ^ h)
	}
	foldBool := func(b bool) {
		if b {
			fold(3)
		} else {
			fold(5)
		}
	}
	foldUop := func(u *uop) {
		fold(u.seq)
		fold(uint64(u.thread)<<32 | uint64(u.state)<<24 | uint64(uint8(u.nsrc))<<16 | uint64(uint8(u.lsqIndex&0xff))<<8)
		fold(u.pc)
		fold(uint64(u.dst)<<32 | uint64(u.oldDst)<<16 | uint64(u.src[0]))
		fold(uint64(u.src[1]))
		h = u.pred.Fold(h)
		fold(u.predPC)
		var flags uint64
		for i, b := range [...]bool{u.isCall, u.isRet, u.excepted, u.taken,
			u.rmwDone, u.inDelayBuf, u.replaying, u.replayed, u.shadow, u.halt, u.inIQ} {
			if b {
				flags |= 1 << i
			}
		}
		fold(flags)
		fold(u.result)
		fold(u.effAddr)
		fold(u.storeVal)
		fold(u.target)
		fold(u.readyAt)
		fold(u.completeAt)
		for _, q := range u.ratCkpt {
			fold(uint64(q))
		}
		fold(uint64(len(u.ratCkpt)))
	}

	for _, t := range c.threads {
		fold(t.pc)
		fold(t.aPC)
		fold(t.committed)
		fold(t.writtenRegs)
		fold(t.archHistory)
		fold(t.exemptUntil)
		fold(t.fetchBlockedUntil)
		fold(t.pred.StreamTag())
		foldBool(t.halted)
		foldBool(t.fetchStopped)
		foldBool(t.excepted)
		for _, q := range t.rat {
			fold(uint64(q))
		}
		for _, q := range t.aRAT {
			fold(uint64(q))
		}
		fold(uint64(len(t.fetchQ)))
		for _, u := range t.fetchQ {
			foldUop(u)
		}
		fold(uint64(len(t.rob)))
		for _, u := range t.rob {
			foldUop(u)
		}
		// LSQ/IQ/delay-buffer/executing-set entries alias ROB uops whose
		// contents are folded above; here only membership and order
		// matter, keyed by the globally unique seq.
		fold(uint64(len(t.lsq)))
		for _, u := range t.lsq {
			fold(u.seq)
		}
	}
	fold(uint64(c.iqUsed))
	for i, u := range c.iq {
		if u != nil {
			fold(uint64(i)<<32 ^ u.seq)
		}
	}
	fold(uint64(len(c.inFlight)))
	for _, u := range c.inFlight {
		fold(u.seq)
	}
	fold(uint64(len(c.delayBuf)))
	for _, u := range c.delayBuf {
		fold(u.seq)
	}
	for _, r := range c.rf.ready {
		foldBool(r)
	}
	fold(uint64(len(c.rf.freeInt)))
	for _, q := range c.rf.freeInt {
		fold(uint64(q))
	}
	fold(uint64(len(c.rf.freeFP)))
	for _, q := range c.rf.freeFP {
		fold(uint64(q))
	}
	fold(uint64(len(c.mshrFree)))
	for _, v := range c.mshrFree {
		fold(v)
	}
	fold(uint64(c.replayPending)<<32 | uint64(uint32(c.commitStall)))
	fold(uint64(c.shadowPending))
	fold(math.Float64bits(c.shadowAcc))
	return h
}
