package pipeline

import (
	"bytes"
	"strings"
	"testing"

	"faulthound/internal/prog"
)

func TestCountingTracerSeesLifecycle(t *testing.T) {
	p := buildSum(50)
	c, err := New(DefaultConfig(1), []*prog.Program{p}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var ct CountingTracer
	c.SetTracer(&ct)
	c.Run(1_000_000)
	if ct.Counts[TraceFetch] == 0 || ct.Counts[TraceDispatch] == 0 ||
		ct.Counts[TraceIssue] == 0 || ct.Counts[TraceComplete] == 0 ||
		ct.Counts[TraceCommit] == 0 {
		t.Fatalf("lifecycle stages missing: %v", ct.Counts)
	}
	// Commits equal the committed-instruction count.
	if ct.Counts[TraceCommit] != c.CommittedTotal() {
		t.Fatalf("commit events %d != committed %d", ct.Counts[TraceCommit], c.CommittedTotal())
	}
	// Fetch >= dispatch >= commit (speculation discards work).
	if ct.Counts[TraceFetch] < ct.Counts[TraceDispatch] ||
		ct.Counts[TraceDispatch] < ct.Counts[TraceCommit] {
		t.Fatalf("stage ordering violated: %v", ct.Counts)
	}
}

func TestWriterTracerOutput(t *testing.T) {
	p := buildSum(10)
	c, err := New(DefaultConfig(1), []*prog.Program{p}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	c.SetTracer(c.NewWriterTracer(&buf, TraceCommit))
	c.Run(100000)
	out := buf.String()
	if !strings.Contains(out, "commit") {
		t.Fatal("no commit lines")
	}
	if strings.Contains(out, "fetch") {
		t.Fatal("stage filter leaked fetch events")
	}
	// Disassembly appears.
	if !strings.Contains(out, "movi") && !strings.Contains(out, "add") {
		t.Fatalf("no disassembly in trace:\n%s", out)
	}
}

func TestTracerSquashEvents(t *testing.T) {
	// The memory loop's data-dependent behavior produces mispredict
	// squashes.
	p := buildMemLoop(64)
	c, err := New(DefaultConfig(1), []*prog.Program{p}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var ct CountingTracer
	c.SetTracer(&ct)
	c.Run(1_000_000)
	if c.Stats().BranchMispredicts > 0 && ct.Counts[TraceSquash] == 0 {
		t.Fatal("mispredicts occurred but no squash events traced")
	}
}

func TestTracerDetachable(t *testing.T) {
	p := buildSum(10)
	c, err := New(DefaultConfig(1), []*prog.Program{p}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var ct CountingTracer
	c.SetTracer(&ct)
	for i := 0; i < 50; i++ {
		c.Step()
	}
	n := ct.Counts[TraceFetch]
	c.SetTracer(nil)
	c.Run(100000)
	if ct.Counts[TraceFetch] != n {
		t.Fatal("events delivered after detach")
	}
}

func TestTraceStageNames(t *testing.T) {
	for s := TraceFetch; s <= TraceException; s++ {
		if s.String() == "?" {
			t.Fatalf("stage %d unnamed", s)
		}
	}
}
