package pipeline

import (
	"fmt"
	"io"
)

// TraceEvent is one pipeline event delivered to a Tracer.
type TraceEvent struct {
	Cycle  uint64
	Thread int
	Seq    uint64
	PC     uint64
	Stage  TraceStage
	// Detail carries stage-specific context (squash reasons, trigger
	// kinds, values).
	Detail string
}

// TraceStage identifies the pipeline event type.
type TraceStage uint8

// Trace stages.
const (
	TraceFetch TraceStage = iota
	TraceDispatch
	TraceIssue
	TraceComplete
	TraceCommit
	TraceSquash
	TraceReplay
	TraceRollback
	TraceSingleton
	TraceException
)

// String names the stage.
func (s TraceStage) String() string {
	switch s {
	case TraceFetch:
		return "fetch"
	case TraceDispatch:
		return "dispatch"
	case TraceIssue:
		return "issue"
	case TraceComplete:
		return "complete"
	case TraceCommit:
		return "commit"
	case TraceSquash:
		return "squash"
	case TraceReplay:
		return "replay"
	case TraceRollback:
		return "rollback"
	case TraceSingleton:
		return "singleton"
	case TraceException:
		return "exception"
	}
	return "?"
}

// Tracer receives pipeline events. Implementations must be fast; the
// tracer is invoked inline in the simulation loop.
type Tracer interface {
	Trace(ev TraceEvent)
}

// SetTracer attaches a tracer (nil detaches). Tracing is off by
// default and costs nothing when detached.
func (c *Core) SetTracer(t Tracer) { c.tracer = t }

// trace emits an event if a tracer is attached.
func (c *Core) trace(stage TraceStage, u *uop, detail string) {
	if c.tracer == nil {
		return
	}
	ev := TraceEvent{Cycle: c.cycle, Stage: stage, Detail: detail}
	if u != nil {
		ev.Thread = u.thread
		ev.Seq = u.seq
		ev.PC = u.pc
	}
	c.tracer.Trace(ev)
}

// traceThread emits a thread-scoped event with no instruction.
func (c *Core) traceThread(stage TraceStage, tid int, detail string) {
	if c.tracer == nil {
		return
	}
	c.tracer.Trace(TraceEvent{Cycle: c.cycle, Thread: tid, Stage: stage, Detail: detail})
}

// WriterTracer formats events one per line onto an io.Writer.
type WriterTracer struct {
	W io.Writer
	// Stages filters the trace; nil means everything.
	Stages map[TraceStage]bool
	// program disassembly lookup, optional
	Disasm func(thread int, pc uint64) string
}

// Trace implements Tracer.
func (w *WriterTracer) Trace(ev TraceEvent) {
	if w.Stages != nil && !w.Stages[ev.Stage] {
		return
	}
	asm := ""
	if w.Disasm != nil {
		asm = "  " + w.Disasm(ev.Thread, ev.PC)
	}
	detail := ev.Detail
	if detail != "" {
		detail = "  [" + detail + "]"
	}
	fmt.Fprintf(w.W, "%8d t%d %-9s pc=%-5d seq=%-7d%s%s\n",
		ev.Cycle, ev.Thread, ev.Stage, ev.PC, ev.Seq, asm, detail)
}

// NewWriterTracer builds a WriterTracer bound to c's programs for
// disassembly.
func (c *Core) NewWriterTracer(w io.Writer, stages ...TraceStage) *WriterTracer {
	var filter map[TraceStage]bool
	if len(stages) > 0 {
		filter = make(map[TraceStage]bool, len(stages))
		for _, s := range stages {
			filter[s] = true
		}
	}
	return &WriterTracer{
		W:      w,
		Stages: filter,
		Disasm: func(thread int, pc uint64) string {
			code := c.threads[thread].prog.Code
			if pc < uint64(len(code)) {
				return code[pc].String()
			}
			return "<out of range>"
		},
	}
}

// CountingTracer tallies events per stage (tests and quick stats).
type CountingTracer struct {
	Counts [10]uint64
}

// Trace implements Tracer.
func (t *CountingTracer) Trace(ev TraceEvent) { t.Counts[ev.Stage]++ }
