package pipeline

// Stats counts pipeline activity. The harness derives performance
// (CPI/IPC) from Cycles and Committed; the energy model weights the
// event counters.
type Stats struct {
	Cycles     uint64
	Fetched    uint64
	Dispatched uint64
	Issued     uint64
	Completed  uint64
	Committed  uint64

	Loads             uint64
	Stores            uint64
	Branches          uint64
	BranchMispredicts uint64
	Exceptions        uint64
	Halts             uint64

	// FaultHound mechanism activity.
	ReplayTriggers       uint64 // predecessor replays started
	ReplayedUops         uint64 // instructions re-executed by replay
	Rollbacks            uint64 // full-pipeline squashes from the detector
	RollbackSquashedUops uint64 // instructions squashed by those rollbacks
	Singletons           uint64 // commit-time singleton re-executions
	SingletonCorrected   uint64 // singletons whose recomputation differed
	FaultsDeclared       uint64 // detection events (mismatch on singleton)
	DelayBufEvictions    uint64 // normal delay-buffer FIFO exits
	DelayBufFlushes      uint64 // IQ-pressure flushes (lost replay coverage)

	// Branch recovery.
	BranchSquashedUops uint64

	// Structural stalls (cycles a dispatch was blocked).
	IQFullStalls  uint64
	ROBFullStalls uint64
	LSQFullStalls uint64
	RegFullStalls uint64

	// SRT-iso shadow activity.
	ShadowOps uint64

	// Register file traffic for the energy model.
	RegReads  uint64
	RegWrites uint64

	// IssuedByClass counts issued operations per functional class
	// (indexed by isa.Class) for the energy model.
	IssuedByClass [16]uint64
}

// IPC returns committed instructions (architectural, excluding shadow
// ops) per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Committed) / float64(s.Cycles)
}

// CPI returns cycles per committed instruction.
func (s Stats) CPI() float64 {
	if s.Committed == 0 {
		return 0
	}
	return float64(s.Cycles) / float64(s.Committed)
}
