package pipeline

import (
	"fmt"
	"math/bits"

	"faulthound/internal/branch"
	"faulthound/internal/detect"
	"faulthound/internal/isa"
	"faulthound/internal/mem"
	"faulthound/internal/prog"
)

// threadState is the per-SMT-context front-end and in-order state.
type threadState struct {
	id   int
	prog *prog.Program

	pc     uint64 // speculative fetch PC
	rat    []physID
	aRAT   []physID // architectural RAT, updated at commit
	aPC    uint64   // PC of the next instruction to commit
	pred   *branch.Predictor
	halted bool
	// fetchStopped pauses fetch past a HALT or the end of the code;
	// squash-and-redirect clears it.
	fetchStopped bool
	// excepted latches a committed translation exception (the paper's
	// "noisy" fault outcome); the thread stops making progress.
	excepted  bool
	exceptMsg string

	fetchQ []*uop // fetched, waiting for dispatch
	rob    []*uop // in-flight in program order (oldest first)
	lsq    []*uop // loads/stores in program order (oldest first)

	committed uint64
	// writtenRegs is a bitmask of architectural registers the program
	// has committed a write to; ArchHash covers only these (a flip in a
	// never-written register is dead state, not program state).
	writtenRegs uint64
	// archHistory is the committed branch-history register; a full
	// rollback restores the predictor's speculative history from it.
	archHistory uint64
	// fetchBlockedUntil implements the rollback redirect penalty.
	fetchBlockedUntil uint64
	// schedMinStore is per-gather scratch (see issue): the seq of the
	// thread's oldest incomplete store/atomic, recomputed before every
	// IQ scan and read by olderStoresDone. Never cloned or folded.
	schedMinStore uint64
	// exemptUntil is an absolute committed-instruction position: the
	// re-executions of instructions that will commit at or before it
	// are deemed final (Section 2.1: "values re-computed by rollbacks
	// are deemed final") — checked learn-only, never triggering.
	// Covering the prefix up to the rollback's triggering instruction
	// guarantees forward progress: the filters keep evolving, so
	// without it, re-executed instructions re-trigger against drifted
	// filter state and the same rollback repeats forever.
	exemptUntil uint64
}

// Core is one simulated out-of-order SMT core.
type Core struct {
	cfg Config

	cycle uint64
	seq   uint64

	threads []*threadState
	rf      *regFile
	iq      []*uop // nil entries are free
	iqUsed  int
	// iqMask/iqDisp mirror iq as occupancy bitmasks (IQSize <= 64,
	// enforced by Config.validate): iqMask has a bit per occupied slot,
	// iqDisp the subset whose uop is in stDispatched. Insert/remove
	// become O(1) and the issue gather walks set bits instead of
	// scanning every slot for state.
	iqMask uint64
	iqDisp uint64
	// iqSched[i] caches the scheduler-relevant fields of iq[i] — all
	// immutable for the uop's IQ residency — in one compact record, so
	// the per-cycle gather reads 16 hot bytes per waiting entry instead
	// of chasing the 200+-byte uop. Written by iqInsert, copied
	// wholesale on clone, never folded into digests (derivable from
	// iq).
	iqSched [64]iqSchedEnt
	// Event-driven wakeup state: the gather no longer polls ready
	// bits for every waiting entry every cycle. iqReady holds the
	// slots whose renamed sources are all ready, maintained at the
	// points where readiness changes (schedRegister/schedWake/
	// schedAllocated/rebuildSched); iqPend counts each slot's
	// outstanding distinct sources; rfWait maps a physical register
	// to the slots waiting on it; rfRef counts source references from
	// live IQ slots so a register allocation can detect the
	// corrupted-RAT hazard in O(1). All of it is derivable from
	// (iqMask, iqSched, rf.ready) — copied on clone, never folded
	// into digests.
	iqReady uint64
	iqPend  [64]uint8
	rfWait  []uint64
	rfRef   []uint8

	inFlight []*uop // issued, waiting for completeAt
	delayBuf []*uop // completed instructions eligible for replay

	// mshrFree holds the cycle each miss-status register frees up.
	mshrFree []uint64

	memory *mem.Memory
	hier   *mem.Hierarchy

	detector detect.Detector
	// detStream folds every detector interaction (completion/commit
	// checks with their full events, learn-only transitions) into a
	// running stream tag: two cores that started from the same snapshot
	// and carry equal tags have driven their detectors identically, so
	// the detectors hold equal internal state. The reconvergence digest
	// compares this one word instead of the detector's filter tables.
	// Stays zero for a detector-less baseline.
	detStream uint64
	probe     func(detect.Event)
	tracer    Tracer
	// commitHook is called after every retirement with the thread id
	// and its new committed count (fault-injection state comparison).
	commitHook func(tid int, count uint64)
	// memHook is called at every load/store retirement with the
	// committed memory operation (stream recording, internal/wgen).
	memHook func(tid int, store bool, addr, val uint64)

	replayPending int
	commitStall   int

	// SRT-iso shadow model.
	shadowAcc     float64
	shadowPending int

	// Per-cycle scratch buffers, reused so the issue/complete/replay
	// loops allocate nothing in steady state. Never cloned: each core
	// owns its own, and their contents are dead between cycles.
	issueScratch  []*uop
	doneScratch   []*uop
	replayScratch []*uop

	// schedClean memoizes an empty issue gather: it is true only when
	// the previous gather found no issuable candidate AND no event
	// since could have created one (IQ membership change, a uop
	// returning to dispatched, a ready-bit or store-completion change,
	// a commit unblocking an atomic, or a fault flip). Pure
	// memoization: it skips rescanning a provably-unchanged issue
	// queue in stalled cycles and never alters which uops issue, so it
	// is scratch state — never cloned, never folded into digests.
	schedClean bool

	// Chunked allocators for fetch-time uops and dispatch-time RAT
	// checkpoints: carving from a chunk replaces one heap allocation
	// per uop with one per chunk. Slots are handed out exactly once
	// and never recycled (a chunk dies when no live uop references
	// it), and chunks are never shared with clones — cloneWith copies
	// every uop into its own slab and leaves these fields alone, so a
	// clone starts with its own (possibly leftover) chunk.
	uopChunk  []uop
	ckptChunk []physID

	// Arena chunk recycling (snapshot cores only; nil elsewhere):
	// uopChunkPool points at the owning arena's free pool, and
	// liveUopChunks records every chunk handed out since the last
	// snapshot so cloneWith can return them — the previous run's uops
	// are unreachable once the queues are rebuilt from the slab.
	uopChunkPool  *[][]uop
	liveUopChunks [][]uop

	stats Stats
}

// uopChunkSize is how many uops (and roughly how many checkpoint
// words) one allocator chunk holds.
const uopChunkSize = 256

// newUop returns a zeroed uop from the chunk allocator.
func (c *Core) newUop() *uop {
	if len(c.uopChunk) == 0 {
		if p := c.uopChunkPool; p != nil && len(*p) > 0 {
			ch := (*p)[len(*p)-1]
			*p = (*p)[:len(*p)-1]
			clear(ch)
			c.uopChunk = ch
		} else {
			c.uopChunk = make([]uop, uopChunkSize)
		}
		if c.uopChunkPool != nil {
			c.liveUopChunks = append(c.liveUopChunks, c.uopChunk)
		}
	}
	u := &c.uopChunk[0]
	c.uopChunk = c.uopChunk[1:]
	return u
}

// newCkpt returns a fresh n-word RAT-checkpoint slice from the chunk
// allocator, capped so it can never alias a later carve.
func (c *Core) newCkpt(n int) []physID {
	if len(c.ckptChunk) < n {
		c.ckptChunk = make([]physID, n*64)
	}
	s := c.ckptChunk[:n:n]
	c.ckptChunk = c.ckptChunk[n:]
	return s
}

// New builds a core running the given programs, one per SMT context
// (the paper runs two copies of the same program per core, each in its
// own address space — pass per-thread programs with disjoint data
// segments). The shared data memory spans the union of the programs'
// segments. detector may be nil for the fault-intolerant baseline.
func New(cfg Config, programs []*prog.Program, detector detect.Detector) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(programs) != cfg.Threads {
		return nil, fmt.Errorf("pipeline: %d programs for %d threads", len(programs), cfg.Threads)
	}
	base, end := programs[0].DataBase, programs[0].DataBase+programs[0].DataSize
	image := make(map[uint64]uint64)
	for _, p := range programs {
		if p.DataBase < base {
			base = p.DataBase
		}
		if e := p.DataBase + p.DataSize; e > end {
			end = e
		}
		for a, v := range p.Data {
			image[a] = v
		}
	}
	return NewShared(cfg, programs, detector, mem.NewMemory(base, end-base, image))
}

// NewShared builds a core whose data memory is supplied by the caller —
// the multicore construction, where several cores share one memory
// image (package system). The programs' segments must lie inside the
// shared memory. Caches remain private and timing-only, so no
// coherence protocol is needed for correctness; cross-core sharing
// costs only what the shared memory latency model charges.
func NewShared(cfg Config, programs []*prog.Program, detector detect.Detector, shared *mem.Memory) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(programs) != cfg.Threads {
		return nil, fmt.Errorf("pipeline: %d programs for %d threads", len(programs), cfg.Threads)
	}
	c := &Core{
		cfg:      cfg,
		rf:       newRegFile(cfg.IntPhysRegs, cfg.FPPhysRegs),
		iq:       make([]*uop, cfg.IQSize),
		rfWait:   make([]uint64, cfg.IntPhysRegs+cfg.FPPhysRegs),
		rfRef:    make([]uint8, cfg.IntPhysRegs+cfg.FPPhysRegs),
		memory:   shared,
		hier:     mem.NewHierarchy(cfg.Hierarchy),
		detector: detector,
	}

	// Assign initial architectural mappings: physical register 0 is the
	// shared zero register; each thread gets 31 integer and 16 FP
	// physical registers for its initial state.
	nextInt := physID(1)
	nextFP := physID(cfg.IntPhysRegs)
	for tid := 0; tid < cfg.Threads; tid++ {
		t := &threadState{
			id:   tid,
			prog: programs[tid],
			pc:   programs[tid].Entry,
			aPC:  programs[tid].Entry,
			rat:  make([]physID, isa.NumArchRegs),
			aRAT: make([]physID, isa.NumArchRegs),
			pred: branch.New(cfg.Branch),
		}
		t.rat[isa.RZero] = 0
		for r := isa.Reg(1); r < isa.NumIntRegs; r++ {
			t.rat[r] = nextInt
			nextInt++
		}
		for r := isa.F0; r < isa.NumArchRegs; r++ {
			t.rat[r] = nextFP
			nextFP++
		}
		copy(t.aRAT, t.rat)
		c.threads = append(c.threads, t)
	}
	// Remaining registers go to the free lists.
	for p := nextInt; p < physID(cfg.IntPhysRegs); p++ {
		c.rf.freeInt = append(c.rf.freeInt, p)
	}
	for p := nextFP; p < physID(cfg.IntPhysRegs+cfg.FPPhysRegs); p++ {
		c.rf.freeFP = append(c.rf.freeFP, p)
	}
	return c, nil
}

// Config returns the core configuration.
func (c *Core) Config() Config { return c.cfg }

// Stats returns a snapshot of the pipeline counters.
func (c *Core) Stats() Stats { return c.stats }

// MemStats returns the cache/TLB counters.
func (c *Core) MemStats() mem.HierarchyStats { return c.hier.Stats() }

// Detector returns the attached detector (nil for the baseline).
func (c *Core) Detector() detect.Detector { return c.detector }

// DetectorStats returns the detector counters, or the zero value for a
// detector-less baseline.
func (c *Core) DetectorStats() detect.Stats {
	if c.detector == nil {
		return detect.Stats{}
	}
	return c.detector.Stats()
}

// mixDet finalizes one word of the detector stream tag.
func mixDet(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 29
	return x
}

// foldDet mixes one word into the detector-interaction stream tag.
func (c *Core) foldDet(x uint64) { c.detStream = mixDet(x ^ c.detStream) }

// detOnComplete routes a completion-check event to the detector,
// folding the full event into the stream tag. Caller guarantees
// c.detector != nil.
func (c *Core) detOnComplete(ev detect.Event) detect.Action {
	c.foldDet(ev.PC<<8 | uint64(ev.Kind)<<5 | uint64(ev.Thread)<<1 | 1)
	c.foldDet(ev.Value)
	return c.detector.OnComplete(ev)
}

// detOnCommit routes a commit-check event to the detector, folding the
// full event into the stream tag. Caller guarantees c.detector != nil.
func (c *Core) detOnCommit(ev detect.Event) detect.Action {
	c.foldDet(ev.PC<<8 | uint64(ev.Kind)<<5 | uint64(ev.Thread)<<1 | 2)
	c.foldDet(ev.Value)
	return c.detector.OnCommit(ev)
}

// detSetLearnOnly flips the detector's learn-only mode, folding the
// transition into the stream tag. No-op for a detector-less baseline.
func (c *Core) detSetLearnOnly(v bool) {
	if c.detector == nil {
		return
	}
	x := uint64(4)
	if v {
		x |= 1
	}
	c.foldDet(x)
	c.detector.SetLearnOnly(v)
}

// Cycle returns the current cycle number.
func (c *Core) Cycle() uint64 { return c.cycle }

// Committed returns the committed-instruction count of thread tid.
func (c *Core) Committed(tid int) uint64 { return c.threads[tid].committed }

// CommittedTotal returns committed instructions across all threads.
func (c *Core) CommittedTotal() uint64 {
	var n uint64
	for _, t := range c.threads {
		n += t.committed
	}
	return n
}

// Halted reports whether thread tid has committed a HALT or taken an
// exception.
func (c *Core) Halted(tid int) bool {
	t := c.threads[tid]
	return t.halted || t.excepted
}

// AllHalted reports whether no thread can make further progress.
func (c *Core) AllHalted() bool {
	for _, t := range c.threads {
		if !t.halted && !t.excepted {
			return false
		}
	}
	return true
}

// Excepted reports whether thread tid committed a translation
// exception, and its message.
func (c *Core) Excepted(tid int) (bool, string) {
	t := c.threads[tid]
	return t.excepted, t.exceptMsg
}

// BranchMispredictRate returns the mean mispredict rate across threads.
func (c *Core) BranchMispredictRate() float64 {
	var lookups, miss uint64
	for _, t := range c.threads {
		lookups += t.pred.Lookups
		miss += t.pred.Mispredicts
	}
	if lookups == 0 {
		return 0
	}
	return float64(miss) / float64(lookups)
}

// SetProbe installs a callback invoked for every load/store operand
// check event at completion (before the detector sees it). The harness
// uses it for the Figure-6 value-locality characterization.
func (c *Core) SetProbe(fn func(detect.Event)) { c.probe = fn }

// SetCommitHook installs a callback invoked after every retirement with
// the thread id and its new committed-instruction count. The tandem
// fault-injection runner uses it to capture architectural state at an
// exact commit boundary.
func (c *Core) SetCommitHook(fn func(tid int, count uint64)) { c.commitHook = fn }

// SetMemHook installs a callback invoked at every load/store
// retirement with the thread id, direction, effective address, and
// committed value (the loaded value for loads, the stored value for
// stores). The workload generator's stream recorder uses it to capture
// a run's committed memory stream.
func (c *Core) SetMemHook(fn func(tid int, store bool, addr, val uint64)) { c.memHook = fn }

// WarmDetector trains the attached detector's filters over thread 0's
// architectural load/store stream for n instructions using the
// sequential interpreter — a fast-forward functional warmup standing in
// for the paper's multi-million-instruction simulation warmup, which
// saturates the filter state machines (PBFS's sticky counters in
// particular) before measurement. Detector actions are ignored; only
// the filters learn.
func (c *Core) WarmDetector(n uint64) {
	if c.detector == nil || n == 0 {
		return
	}
	t := c.threads[0]
	it := prog.NewInterp(t.prog)
	for i := uint64(0); i < n; i++ {
		pc := it.PC
		in := t.prog.Code[pc]
		if !it.Step() {
			break
		}
		switch in.Op {
		case isa.LD:
			addr := it.Regs[in.Rs1] + uint64(int64(in.Imm))
			c.detOnComplete(detect.Event{Kind: detect.LoadAddr, Value: addr, PC: pc})
		case isa.ST:
			addr := it.Regs[in.Rs1] + uint64(int64(in.Imm))
			c.detOnComplete(detect.Event{Kind: detect.StoreAddr, Value: addr, PC: pc})
			c.detOnComplete(detect.Event{Kind: detect.StoreValue, Value: it.Regs[in.Rs2], PC: pc})
		}
	}
}

// Step advances the simulation by one cycle.
func (c *Core) Step() {
	c.cycle++
	c.stats.Cycles++
	c.commit()
	c.complete()
	c.issue()
	c.dispatch()
	c.fetch()
}

// Run steps the core until every thread halts or maxCycles elapse; it
// returns the number of cycles executed.
func (c *Core) Run(maxCycles uint64) uint64 {
	start := c.cycle
	for c.cycle-start < maxCycles && !c.AllHalted() {
		c.Step()
	}
	return c.cycle - start
}

// RunUntilCommits steps until thread tid has committed at least n
// instructions in total, the thread halts, or maxCycles elapse. It
// reports whether the commit target was reached.
func (c *Core) RunUntilCommits(tid int, n uint64, maxCycles uint64) bool {
	start := c.cycle
	for c.threads[tid].committed < n {
		if c.Halted(tid) || c.cycle-start >= maxCycles {
			return c.threads[tid].committed >= n
		}
		c.Step()
	}
	return true
}

// popFront removes and returns the head of the small FIFO *q, shifting
// the remainder down in place. A tail append plus a head reslice would
// drift through the backing array and reallocate it every cap-len
// operations; for the short queues this is used on (delay buffer,
// fetch queue) the shift is far cheaper than the allocation.
func popFront(q *[]*uop) *uop {
	s := *q
	u := s[0]
	n := copy(s, s[1:])
	*q = s[:n]
	return u
}

// nextSeq allocates a global age tag.
func (c *Core) nextSeq() uint64 {
	c.seq++
	return c.seq
}

// --- Fetch ---

// fetch brings up to FetchWidth instructions from one thread per cycle
// (round-robin) into its fetch queue, following branch predictions.
func (c *Core) fetch() {
	n := len(c.threads)
	for off := 0; off < n; off++ {
		t := c.threads[(int(c.cycle)+off)%n]
		if t.halted || t.excepted {
			continue
		}
		if t.fetchBlockedUntil > c.cycle {
			continue
		}
		if t.fetchStopped {
			// A thread that ran off the end of its code without a HALT
			// wedges once its pipeline drains; treat that as a halt.
			if len(t.rob) == 0 && len(t.fetchQ) == 0 {
				t.halted = true
			}
			continue
		}
		if len(t.fetchQ) >= c.cfg.FetchQueueMax {
			continue
		}
		c.fetchThread(t)
		return // one thread per cycle
	}
}

func (c *Core) fetchThread(t *threadState) {
	// One I-cache access per fetch cycle at the leading PC.
	lat := c.hier.AccessI(t.pc * 8)
	readyAt := c.cycle + uint64(lat) + uint64(c.cfg.FrontEndDepth)

	for k := 0; k < c.cfg.FetchWidth; k++ {
		if t.pc >= uint64(len(t.prog.Code)) {
			t.fetchStopped = true
			return
		}
		in := t.prog.Code[t.pc]
		// newUop hands out zeroed entries (fresh or cleared chunks), so
		// only the non-zero fields need writes — a full struct literal
		// would re-zero all 200+ bytes per fetched instruction.
		u := c.newUop()
		u.seq = c.nextSeq()
		u.thread = t.id
		u.pc = t.pc
		u.inst = in
		u.dst = physNone
		u.oldDst = physNone
		u.lsqIndex = -1
		u.readyAt = readyAt
		c.stats.Fetched++

		nextPC := t.pc + 1
		switch in.Op {
		case isa.BEQ, isa.BNE, isa.BLT, isa.BGE:
			u.pred = t.pred.PredictCond(t.pc)
			if u.pred.Taken {
				nextPC = u.pred.Target
			}
		case isa.JMP:
			u.pred = branch.Prediction{Taken: true, Target: uint64(in.Imm)}
			nextPC = uint64(in.Imm)
		case isa.JAL:
			u.isCall = true
			t.pred.PredictJump(t.pc, true, false) // RAS push
			u.pred = branch.Prediction{Taken: true, Target: uint64(in.Imm)}
			nextPC = uint64(in.Imm)
		case isa.JALR:
			u.isRet = in.Rs1 == isa.RLink
			u.pred = t.pred.PredictJump(t.pc, false, u.isRet)
			if u.pred.Taken {
				nextPC = u.pred.Target
			}
		case isa.HALT:
			u.halt = true
		}
		u.predPC = nextPC
		t.fetchQ = append(t.fetchQ, u)
		t.pc = nextPC
		c.trace(TraceFetch, u, "")

		if u.halt {
			t.fetchStopped = true
			return
		}
		if u.inst.IsBranch() && u.predPC != u.pc+1 {
			return // stop at a predicted-taken branch
		}
	}
}

// --- Dispatch/Rename ---

// dispatch renames and inserts up to DecodeWidth instructions per cycle
// into the ROB/IQ/LSQ, round-robin across threads.
func (c *Core) dispatch() {
	budget := c.cfg.DecodeWidth
	n := len(c.threads)
	for off := 0; off < n && budget > 0; off++ {
		t := c.threads[(int(c.cycle)+off)%n]
		for budget > 0 && len(t.fetchQ) > 0 {
			u := t.fetchQ[0]
			if u.readyAt > c.cycle {
				break
			}
			if !c.dispatchOne(t, u) {
				break // structural stall
			}
			popFront(&t.fetchQ)
			budget--
		}
	}
}

// dispatchOne renames u and allocates its queue entries; it reports
// whether dispatch succeeded (false = structural stall).
func (c *Core) dispatchOne(t *threadState, u *uop) bool {
	if len(t.rob) >= c.cfg.ROBPerThread {
		c.stats.ROBFullStalls++
		return false
	}
	needsIQ := u.inst.Op != isa.NOP && u.inst.Op != isa.HALT
	if needsIQ && c.iqUsed >= len(c.iq) && !c.evictFromDelayBuffer() {
		c.stats.IQFullStalls++
		return false
	}
	if u.isMem() && len(t.lsq) >= c.cfg.LSQPerThread {
		c.stats.LSQFullStalls++
		return false
	}

	// Rename sources.
	srcs := u.inst.SrcRegs()
	u.nsrc = len(srcs)
	for i, r := range srcs {
		u.src[i] = t.rat[r]
	}
	// Allocate destination.
	if u.inst.HasDest() && u.inst.Rd != isa.RZero {
		p := c.rf.alloc(u.inst.Rd)
		if p == physNone {
			c.stats.RegFullStalls++
			return false
		}
		c.schedAllocated(p)
		u.dst = p
		u.oldDst = t.rat[u.inst.Rd]
		t.rat[u.inst.Rd] = p
	}
	// Checkpoint the RAT for branches resolved at execute, and for
	// atomics (a detector rollback stops at an executed atomic and
	// restores its checkpoint instead).
	if u.inst.IsCondBranch() || u.inst.Op == isa.JALR || u.inst.IsAtomic() {
		u.ratCkpt = c.newCkpt(len(t.rat))
		copy(u.ratCkpt, t.rat)
	}

	u.state = stDispatched
	t.rob = append(t.rob, u)
	if u.isMem() {
		u.lsqIndex = len(t.lsq)
		t.lsq = append(t.lsq, u)
	}
	if needsIQ {
		c.iqInsert(u)
	} else {
		// NOP/HALT complete immediately.
		u.state = stCompleted
	}
	c.stats.Dispatched++
	c.trace(TraceDispatch, u, "")
	return true
}

// schedTouch invalidates the empty-gather memo (see schedClean).
func (c *Core) schedTouch() { c.schedClean = false }

// iqSchedEnt is the issue gather's compact view of one IQ entry; see
// Core.iqSched.
type iqSchedEnt struct {
	seq    uint64
	src0   physID
	src1   physID
	nsrc   uint8
	thread uint8
	load   bool
	atomic bool
}

// iqInsert places u into the lowest free IQ slot.
func (c *Core) iqInsert(u *uop) {
	c.schedTouch()
	i := bits.TrailingZeros64(^c.iqMask)
	if i >= len(c.iq) {
		panic("pipeline: iqInsert with no free slot")
	}
	c.iq[i] = u
	c.iqMask |= 1 << uint(i)
	c.iqDisp |= 1 << uint(i) // dispatchOne inserts in stDispatched
	c.iqSched[i] = iqSchedEnt{
		seq:    u.seq,
		src0:   u.src[0],
		src1:   u.src[1],
		nsrc:   uint8(u.nsrc),
		thread: uint8(u.thread),
		load:   u.isLoad(),
		atomic: u.inst.IsAtomic(),
	}
	u.inIQ = true
	u.iqSlot = int8(i)
	c.iqUsed++
	c.schedRegister(i)
}

// iqRemove frees u's IQ slot.
func (c *Core) iqRemove(u *uop) {
	if !u.inIQ {
		return
	}
	c.schedTouch()
	i := uint(u.iqSlot)
	c.schedDeregister(int(i))
	c.iq[i] = nil
	c.iqMask &^= 1 << i
	c.iqDisp &^= 1 << i
	c.iqUsed--
	u.inIQ = false
}

// schedRegister records slot i's wakeup state under the current ready
// bits: each distinct not-ready source counts in iqPend and enrolls
// the slot in rfWait; a slot with none is immediately issue-ready.
// rfRef counts every source reference of a live slot — ready or not —
// so schedAllocated can detect in O(1) that some slot's cached
// readiness might mention a just-allocated register.
func (c *Core) schedRegister(i int) {
	e := &c.iqSched[i]
	bit := uint64(1) << uint(i)
	pend := uint8(0)
	ready := c.rf.ready
	if e.nsrc >= 1 {
		c.rfRef[e.src0]++
		if !ready[e.src0] {
			c.rfWait[e.src0] |= bit
			pend++
		}
	}
	if e.nsrc >= 2 {
		c.rfRef[e.src1]++
		if e.src1 != e.src0 && !ready[e.src1] {
			c.rfWait[e.src1] |= bit
			pend++
		}
	}
	c.iqPend[i] = pend
	if pend == 0 {
		c.iqReady |= bit
	} else {
		c.iqReady &^= bit
	}
}

// schedDeregister erases slot i's wakeup state (unconditional bit
// clears: a source whose wakeup was already consumed simply has no
// bit to clear).
func (c *Core) schedDeregister(i int) {
	e := &c.iqSched[i]
	bit := uint64(1) << uint(i)
	if e.nsrc >= 1 {
		c.rfRef[e.src0]--
		c.rfWait[e.src0] &^= bit
	}
	if e.nsrc >= 2 {
		c.rfRef[e.src1]--
		c.rfWait[e.src1] &^= bit
	}
	c.iqReady &^= bit
}

// schedWake consumes p turning ready: every slot waiting on p drops
// one pending source and becomes issue-ready at zero. Callers pass
// physNone freely (writes and frees of no-destination uops).
func (c *Core) schedWake(p physID) {
	if int(p) >= len(c.rfWait) {
		return
	}
	for m := c.rfWait[p]; m != 0; m &= m - 1 {
		i := bits.TrailingZeros64(m)
		if c.iqPend[i]--; c.iqPend[i] == 0 {
			c.iqReady |= 1 << uint(i)
		}
	}
	c.rfWait[p] = 0
}

// schedAllocated handles the one ready->false transition the wakeup
// bookkeeping cannot see coming: allocating p clears its ready bit,
// invalidating any slot that cached p as ready. Fault-free this never
// happens — rename reads only live mappings, and a live register is
// not freed while a consumer sits in the IQ — so rfRef[p] is zero and
// this is a single branch. A corrupted rename table (FlipRATBit) can
// make a waiting uop source a free register; the fix-up re-derives
// the registration of every live slot referencing p so the cached
// readiness stays exact even then.
func (c *Core) schedAllocated(p physID) {
	if c.rfRef[p] == 0 {
		return
	}
	for m := c.iqMask; m != 0; m &= m - 1 {
		i := bits.TrailingZeros64(m)
		e := &c.iqSched[i]
		if (e.nsrc >= 1 && e.src0 == p) || (e.nsrc >= 2 && e.src1 == p) {
			c.schedDeregister(i)
			c.schedRegister(i)
		}
	}
}

// rebuildSched rebuilds the wakeup state from scratch — used after a
// predecessor replay marks completed destinations not-ready again,
// the one event that flips ready bits under already-registered slots.
func (c *Core) rebuildSched() {
	clear(c.rfWait)
	clear(c.rfRef)
	c.iqReady = 0
	for m := c.iqMask; m != 0; m &= m - 1 {
		c.schedRegister(bits.TrailingZeros64(m))
	}
}

// evictFromDelayBuffer frees an IQ slot occupied by a completed
// instruction when a newly-arriving instruction needs the space: the
// oldest delay-buffer entry is replaced (Section 3.3). The paper
// conservatively squashes the whole buffer on a replacement because its
// hardware cannot tell which younger entries depended on the replaced
// one; this implementation's replay re-issues through ordinary wakeup
// (a marked consumer whose producer is gone simply reads the register
// file), so replacing only the head is safe and preserves far more
// replay coverage.
func (c *Core) evictFromDelayBuffer() bool {
	if len(c.delayBuf) == 0 {
		return false
	}
	old := popFront(&c.delayBuf)
	old.inDelayBuf = false
	c.iqRemove(old)
	c.stats.DelayBufFlushes++
	return c.iqUsed < len(c.iq)
}
