package pipeline

import (
	"testing"

	"faulthound/internal/prog"
)

// Simulator-throughput benchmarks: how fast the model itself runs.
// These guard against performance regressions in the simulation loop
// (the experiment harness executes hundreds of millions of cycles).

func BenchmarkSimCyclesPerSecond(b *testing.B) {
	p := buildMemLoop(64)
	c, err := New(DefaultConfig(1), []*prog.Program{p}, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Step()
		if c.AllHalted() {
			b.StopTimer()
			c, _ = New(DefaultConfig(1), []*prog.Program{p}, nil)
			b.StartTimer()
		}
	}
}

func BenchmarkSimSMT2(b *testing.B) {
	p := buildMemLoop(64)
	c, err := New(DefaultConfig(2), []*prog.Program{p, p}, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Step()
		if c.AllHalted() {
			b.StopTimer()
			c, _ = New(DefaultConfig(2), []*prog.Program{p, p}, nil)
			b.StartTimer()
		}
	}
}

func BenchmarkClone(b *testing.B) {
	p := buildMemLoop(64)
	c, err := New(DefaultConfig(1), []*prog.Program{p}, nil)
	if err != nil {
		b.Fatal(err)
	}
	c.RunUntilCommits(0, 2000, 1_000_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Clone()
	}
}

// BenchmarkSnapshot is BenchmarkClone on the arena path: after the
// first iteration every snapshot rebuilds the previous one's storage in
// place over a CoW memory overlay.
func BenchmarkSnapshot(b *testing.B) {
	p := buildMemLoop(64)
	c, err := New(DefaultConfig(1), []*prog.Program{p}, nil)
	if err != nil {
		b.Fatal(err)
	}
	c.RunUntilCommits(0, 2000, 1_000_000)
	arena := NewSnapshotArena()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Snapshot(arena)
	}
}

func BenchmarkArchHash(b *testing.B) {
	p := buildMemLoop(64)
	c, err := New(DefaultConfig(1), []*prog.Program{p}, nil)
	if err != nil {
		b.Fatal(err)
	}
	c.RunUntilCommits(0, 2000, 1_000_000)
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= c.ArchHash(0)
	}
	_ = sink
}
