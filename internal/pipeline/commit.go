package pipeline

import (
	"faulthound/internal/detect"
	"faulthound/internal/isa"
)

// shadowBacklogCap is the SRT-iso backpressure bound: when this many
// redundant copies are waiting for issue slots, commit stalls (the
// trailing threads cannot fall arbitrarily far behind the leading
// threads).
const shadowBacklogCap = 64

// commit retires up to CommitWidth completed instructions in program
// order per thread, round-robin across threads. Loads and stores are
// re-checked against the filters here (the LSQ coverage of Section
// 3.5); a trigger re-executes the single instruction from register-file
// state and compares, declaring a fault on mismatch.
func (c *Core) commit() {
	if c.commitStall > 0 {
		c.commitStall--
		return
	}
	if c.shadowPending >= shadowBacklogCap {
		return // SRT-iso backpressure
	}
	budget := c.cfg.CommitWidth
	n := len(c.threads)
	for off := 0; off < n && budget > 0; off++ {
		t := c.threads[(int(c.cycle)+off)%n]
		for budget > 0 && len(t.rob) > 0 {
			if !c.commitOne(t) {
				break
			}
			budget--
			if c.commitStall > 0 {
				return // singleton re-execute suspends commit
			}
		}
	}
}

// commitOne retires the oldest instruction of t if it is complete; it
// reports whether an instruction was retired.
func (c *Core) commitOne(t *threadState) bool {
	u := t.rob[0]
	if u.state != stCompleted {
		return false
	}
	// Atomics retire immediately (their memory effect is already
	// applied); everything else waits out the retirement latency.
	if !u.inst.IsAtomic() && c.cycle < u.completeAt+uint64(c.cfg.CommitDelay) {
		return false
	}
	c.schedTouch() // retiring frees registers and can expose an atomic at the ROB head

	if u.excepted {
		// Precise exception at commit: the paper's "noisy" outcome.
		c.trace(TraceException, u, u.exceptMsg)
		t.excepted = true
		t.exceptMsg = u.exceptMsg
		c.stats.Exceptions++
		c.squashThread(t)
		return false
	}

	if u.halt {
		t.halted = true
		c.stats.Halts++
		c.retire(t, u)
		c.squashThread(t) // nothing younger can commit
		return true
	}

	if u.isMem() {
		if act := c.checkCommit(u); act == detect.Singleton {
			c.singletonReexec(u)
		}

		if u.isStore() {
			if err := c.memory.Write(u.effAddr, u.storeVal); err != nil {
				t.excepted = true
				t.exceptMsg = "store translation exception at commit"
				c.stats.Exceptions++
				c.squashThread(t)
				return false
			}
			c.hier.AccessD(u.effAddr, true)
		}
	}

	c.retire(t, u)
	return true
}

// retire applies u's architectural effects and releases its resources.
func (c *Core) retire(t *threadState, u *uop) {
	if u.dst != physNone {
		// Free the previous mapping of the architectural destination.
		// With a rename fault, oldDst read from the corrupted RAT frees
		// the wrong physical register — the post-commit corruption the
		// paper notes is unrecoverable (Section 5.5).
		c.rf.free(u.oldDst)
		c.schedWake(u.oldDst)
		t.aRAT[u.inst.Rd] = u.dst
		t.writtenRegs |= 1 << u.inst.Rd
	}
	if u.taken {
		t.aPC = u.target
	} else {
		t.aPC = u.pc + 1
	}
	if u.inst.IsCondBranch() {
		if u.taken {
			t.archHistory = t.archHistory<<1 | 1
		} else {
			t.archHistory = t.archHistory << 1
		}
	}

	t.rob = t.rob[1:]
	if u.isMem() && len(t.lsq) > 0 && t.lsq[0] == u {
		t.lsq = t.lsq[1:]
	}
	if u.inDelayBuf {
		c.dropFromDelayBuf(u)
	}
	c.iqRemove(u)
	u.state = stCommitted

	t.committed++
	c.stats.Committed++
	c.trace(TraceCommit, u, "")
	if c.commitHook != nil {
		c.commitHook(t.id, t.committed)
	}
	switch {
	case u.isLoad():
		c.stats.Loads++
		if c.memHook != nil {
			c.memHook(t.id, false, u.effAddr, u.result)
		}
	case u.isStore():
		c.stats.Stores++
		if c.memHook != nil {
			c.memHook(t.id, true, u.effAddr, u.storeVal)
		}
	case u.inst.IsBranch():
		c.stats.Branches++
	}

	// SRT-iso: spawn an idealized redundant copy for a ShadowRedundancy
	// fraction of committed instructions (deterministic accumulator).
	if c.cfg.ShadowRedundancy > 0 {
		c.shadowAcc += c.cfg.ShadowRedundancy
		if c.shadowAcc >= 1 {
			c.shadowAcc--
			c.shadowPending++
		}
	}
}

// checkCommit runs the detector's commit-time (LSQ) checks. Atomics
// are exempt: their effect is applied at execute and a singleton
// re-execution would double-apply it.
func (c *Core) checkCommit(u *uop) detect.Action {
	if c.detector == nil || u.inst.IsAtomic() {
		return detect.None
	}
	if t := c.threads[u.thread]; t.committed+1 <= t.exemptUntil {
		return detect.None // deemed final (rollback re-execution)
	}
	act := c.detOnCommit(loadOrStoreAddrEvent(u))
	if u.isStore() {
		if a := c.detOnCommit(storeValueEvent(u)); a > act {
			act = a
		}
	}
	return act
}

// singletonReexec re-executes a single load or store from register-file
// state (all older instructions have committed, so source values are
// architectural), compares against the LSQ copy, corrects it, and
// declares a fault on mismatch (Section 3.5). It suspends normal
// commit/issue briefly.
func (c *Core) singletonReexec(u *uop) {
	c.trace(TraceSingleton, u, "LSQ commit check")
	c.stats.Singletons++
	c.commitStall += c.cfg.SingletonStall

	var s1, s2 uint64
	if u.nsrc > 0 {
		s1 = c.rf.read(u.src[0])
	}
	if u.nsrc > 1 {
		s2 = c.rf.read(u.src[1])
	}
	out := isa.Exec(u.inst, u.pc, s1, s2)

	if u.isStore() {
		if out.EffAddr != u.effAddr || out.Value != u.storeVal {
			// A fault sits in the LSQ copy or the register file; the
			// comparison detects it either way, and the recomputed
			// values correct an LSQ fault before the memory write.
			c.stats.FaultsDeclared++
			c.stats.SingletonCorrected++
			u.effAddr = out.EffAddr
			u.storeVal = out.Value
		}
		return
	}
	// Load: the loaded value has long been consumed, so the singleton
	// only detects (no correction of consumers is possible).
	if out.EffAddr != u.effAddr {
		c.stats.FaultsDeclared++
		return
	}
	if c.memory.Mapped(out.EffAddr) {
		if v, _ := c.memory.Read(out.EffAddr); v != u.result {
			c.stats.FaultsDeclared++
		}
	}
}

// dropFromDelayBuf removes u from the delay buffer.
func (c *Core) dropFromDelayBuf(u *uop) {
	for i, e := range c.delayBuf {
		if e == u {
			c.delayBuf = append(c.delayBuf[:i], c.delayBuf[i+1:]...)
			break
		}
	}
	u.inDelayBuf = false
}
