package pipeline

import (
	"testing"

	"faulthound/internal/detect"
	"faulthound/internal/isa"
	"faulthound/internal/prog"
)

// TestMSHRSerializesMissBursts: with one MSHR, a burst of independent
// misses takes much longer than with eight.
func TestMSHRSerializesMissBursts(t *testing.T) {
	// Loads at 64KB strides: every access misses all caches.
	b := prog.NewBuilder("missburst", 2<<20)
	b.MovU64(2, b.DataBase())
	b.MovI(3, 0)
	b.MovI(4, 20)
	b.Label("loop")
	b.OpI(isa.SLLI, 7, 3, 16) // i * 64KB
	b.Op3(isa.ADD, 8, 2, 7)
	b.Ld(5, 8, 0)
	b.OpI(isa.ADDI, 3, 3, 1)
	b.Br(isa.BLT, 3, 4, "loop")
	b.Halt()
	p := b.MustBuild()

	run := func(mshrs int) uint64 {
		cfg := DefaultConfig(1)
		cfg.MSHRs = mshrs
		c, err := New(cfg, []*prog.Program{p}, nil)
		if err != nil {
			t.Fatal(err)
		}
		c.Run(1_000_000)
		if !c.Halted(0) {
			t.Fatal("did not halt")
		}
		return c.Cycle()
	}
	one := run(1)
	eight := run(8)
	if one < eight+eight/2 {
		t.Fatalf("1 MSHR (%d cycles) should be much slower than 8 (%d)", one, eight)
	}
}

// TestForwardingYoungestOlderStore: a load must receive the value of the
// youngest older store to its address, not an earlier one.
func TestForwardingYoungestOlderStore(t *testing.T) {
	b := prog.NewBuilder("fwd", 4096)
	b.MovU64(2, b.DataBase())
	b.MovI(3, 1)
	b.MovI(4, 2)
	b.St(2, 0, 3) // [base] = 1
	b.St(2, 0, 4) // [base] = 2
	b.Ld(5, 2, 0) // must read 2
	b.Halt()
	c, err := New(DefaultConfig(1), []*prog.Program{b.MustBuild()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.Run(100000)
	if got := c.ArchRegs(0)[5]; got != 2 {
		t.Fatalf("forwarded %d, want 2", got)
	}
}

// TestForwardingDifferentAddressesReadMemory: stores to other addresses
// must not forward.
func TestForwardingDifferentAddressesReadMemory(t *testing.T) {
	b := prog.NewBuilder("fwd2", 4096)
	b.Word(0, 77)
	b.MovU64(2, b.DataBase())
	b.MovI(3, 5)
	b.St(2, 8, 3) // adjacent word
	b.Ld(5, 2, 0) // must read memory (77), not the store
	b.Halt()
	c, err := New(DefaultConfig(1), []*prog.Program{b.MustBuild()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.Run(100000)
	if got := c.ArchRegs(0)[5]; got != 77 {
		t.Fatalf("load read %d, want 77", got)
	}
}

// TestFreeListConservation: after a long run with heavy speculation,
// every physical register is either free or architecturally mapped —
// nothing leaks.
func TestFreeListConservation(t *testing.T) {
	p := buildMemLoop(64)
	c, err := New(DefaultConfig(2), []*prog.Program{p, p}, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.Run(2_000_000)
	if !c.AllHalted() {
		t.Fatal("did not halt")
	}
	total := c.cfg.IntPhysRegs + c.cfg.FPPhysRegs
	seen := make(map[physID]int, total)
	for _, pid := range c.rf.freeInt {
		seen[pid]++
	}
	for _, pid := range c.rf.freeFP {
		seen[pid]++
	}
	for pid, n := range seen {
		if n > 1 {
			t.Fatalf("register %d appears %d times in the free lists", pid, n)
		}
	}
	for _, th := range c.threads {
		for _, pid := range th.aRAT {
			if pid == 0 {
				continue
			}
			if seen[pid] > 0 {
				t.Fatalf("architecturally mapped register %d is also free", pid)
			}
			seen[pid]++
		}
	}
	// Every register accounted for exactly once (plus the zero reg).
	if len(seen)+1 != total {
		t.Fatalf("%d of %d registers accounted for; leak or loss", len(seen)+1, total)
	}
}

// TestRollbackPenaltyDelaysFetch: fetch stays idle for the configured
// bubble after a detector rollback.
func TestRollbackPenaltyDelaysFetch(t *testing.T) {
	p := buildMemLoop(64)
	cfg := DefaultConfig(1)
	cfg.RollbackPenalty = 40
	det := &fakeDetector{completeAct: detect.Rollback, fireEvery: 50}
	c, err := New(cfg, []*prog.Program{p}, det)
	if err != nil {
		t.Fatal(err)
	}
	cLow, err := New(DefaultConfig(1), []*prog.Program{p}, det.Clone())
	if err != nil {
		t.Fatal(err)
	}
	c.Run(3_000_000)
	cLow.Run(3_000_000)
	if !c.Halted(0) || !cLow.Halted(0) {
		t.Fatal("did not halt")
	}
	if c.Cycle() <= cLow.Cycle() {
		t.Fatalf("larger rollback penalty should cost cycles: %d vs %d", c.Cycle(), cLow.Cycle())
	}
}

// TestShadowBackpressureBoundsBacklog: the SRT-iso backlog never grows
// beyond its cap plus one commit burst.
func TestShadowBackpressureBoundsBacklog(t *testing.T) {
	p := buildMemLoop(64)
	cfg := DefaultConfig(1)
	cfg.ShadowRedundancy = 1.0
	c, err := New(cfg, []*prog.Program{p}, nil)
	if err != nil {
		t.Fatal(err)
	}
	maxSeen := 0
	for i := 0; i < 200000 && !c.AllHalted(); i++ {
		c.Step()
		if c.shadowPending > maxSeen {
			maxSeen = c.shadowPending
		}
	}
	if maxSeen > shadowBacklogCap+int(c.cfg.CommitWidth) {
		t.Fatalf("shadow backlog reached %d (cap %d)", maxSeen, shadowBacklogCap)
	}
}

// TestAtomicsMatchInterp: AMOADD/SWAP sequences on one core match the
// sequential interpreter exactly, including under speculation.
func TestAtomicsMatchInterp(t *testing.T) {
	b := prog.NewBuilder("atomics", 4096)
	b.Word(0, 100)
	b.MovU64(2, b.DataBase())
	b.MovI(3, 0)
	b.MovI(4, 50)
	b.MovI(5, 3)
	b.Label("loop")
	b.Emit(isa.Inst{Op: isa.AMOADD, Rd: 6, Rs1: 2, Rs2: 5, Imm: 0})
	b.Op3(isa.ADD, 7, 7, 6)
	// A data-dependent branch between atomics exercises speculation.
	b.OpI(isa.ANDI, 8, 6, 1)
	b.Br(isa.BEQ, 8, 0, "even")
	b.Emit(isa.Inst{Op: isa.SWAP, Rd: 9, Rs1: 2, Rs2: 7, Imm: 8})
	b.Label("even")
	b.OpI(isa.ADDI, 3, 3, 1)
	b.Br(isa.BLT, 3, 4, "loop")
	b.Halt()
	p := b.MustBuild()

	c, err := New(DefaultConfig(1), []*prog.Program{p}, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.Run(1_000_000)
	if !c.Halted(0) {
		t.Fatalf("did not halt (committed %d)", c.Committed(0))
	}
	it := prog.NewInterp(p)
	it.Run(1_000_000)
	if c.ArchRegs(0) != it.Regs {
		t.Fatal("atomic execution diverges from the interpreter")
	}
	for a, v := range it.Mem {
		got, _ := c.memory.Read(a)
		if got != v {
			t.Fatalf("mem[%#x] = %d, interp %d", a, got, v)
		}
	}
}

// TestAtomicUnderDetector: atomics stay correct when FaultHound-style
// scripted actions fire around them.
func TestAtomicUnderDetector(t *testing.T) {
	b := prog.NewBuilder("atomdet", 4096)
	b.MovU64(2, b.DataBase())
	b.MovI(3, 0)
	b.MovI(4, 200)
	b.MovI(5, 1)
	b.Label("loop")
	b.Emit(isa.Inst{Op: isa.AMOADD, Rd: 6, Rs1: 2, Rs2: 5, Imm: 0})
	b.OpI(isa.SLLI, 7, 3, 3)
	b.OpI(isa.ANDI, 7, 7, 511)
	b.Op3(isa.ADD, 8, 2, 7)
	b.St(8, 8, 6)
	b.Ld(9, 8, 8)
	b.OpI(isa.ADDI, 3, 3, 1)
	b.Br(isa.BLT, 3, 4, "loop")
	b.Halt()
	p := b.MustBuild()

	det := &fakeDetector{completeAct: detect.Rollback, fireEvery: 23}
	c, err := New(DefaultConfig(1), []*prog.Program{p}, det)
	if err != nil {
		t.Fatal(err)
	}
	c.Run(2_000_000)
	if !c.Halted(0) {
		t.Fatalf("did not halt (committed %d)", c.Committed(0))
	}
	it := prog.NewInterp(p)
	it.Run(1_000_000)
	// The atomic counter must equal the iteration count exactly — a
	// rollback double-applying an AMOADD would break this.
	got, _ := c.memory.Read(p.DataBase)
	if got != it.Mem[p.DataBase] {
		t.Fatalf("atomic counter %d, interp %d (rollback double-apply?)", got, it.Mem[p.DataBase])
	}
	if c.ArchRegs(0) != it.Regs {
		t.Fatal("registers diverge")
	}
}
