package pipeline

import (
	"testing"

	"faulthound/internal/detect"
	"faulthound/internal/isa"
	"faulthound/internal/prog"
	"faulthound/internal/stats"
)

// fakeDetector scripts detector actions for mechanism tests.
type fakeDetector struct {
	completeAct detect.Action
	commitAct   detect.Action
	fireEvery   uint64 // act on every n-th check (0 = never)
	checks      uint64
	learnOnly   bool
	stats       detect.Stats
}

func (f *fakeDetector) Name() string { return "fake" }

func (f *fakeDetector) OnComplete(detect.Event) detect.Action {
	f.checks++
	f.stats.Checks++
	if f.learnOnly || f.fireEvery == 0 || f.checks%f.fireEvery != 0 {
		return detect.None
	}
	switch f.completeAct {
	case detect.Replay:
		f.stats.Replays++
	case detect.Rollback:
		f.stats.Rollbacks++
	}
	return f.completeAct
}

func (f *fakeDetector) OnCommit(detect.Event) detect.Action {
	if f.learnOnly || f.fireEvery == 0 {
		return detect.None
	}
	if f.commitAct == detect.Singleton {
		f.stats.Singletons++
	}
	return f.commitAct
}

func (f *fakeDetector) SetLearnOnly(on bool) { f.learnOnly = on }
func (f *fakeDetector) Stats() detect.Stats  { return f.stats }
func (f *fakeDetector) Clone() detect.Detector {
	c := *f
	return &c
}

// TestScriptedReplayTransparency drives replays constantly through a
// scripted detector: architectural results must still match the
// interpreter exactly.
func TestScriptedReplayTransparency(t *testing.T) {
	p := buildMemLoop(48)
	det := &fakeDetector{completeAct: detect.Replay, fireEvery: 5}
	c, err := New(DefaultConfig(1), []*prog.Program{p}, det)
	if err != nil {
		t.Fatal(err)
	}
	c.Run(3_000_000)
	if !c.Halted(0) {
		t.Fatalf("did not halt (committed %d)", c.Committed(0))
	}
	if c.Stats().ReplayTriggers == 0 {
		t.Fatal("no replays ran")
	}
	it := prog.NewInterp(p)
	it.Run(10_000_000)
	regs := c.ArchRegs(0)
	for r := 0; r < isa.NumArchRegs; r++ {
		if regs[r] != it.Regs[r] {
			t.Fatalf("reg %d: %#x vs interp %#x", r, regs[r], it.Regs[r])
		}
	}
}

// TestScriptedRollbackTransparency drives full rollbacks through a
// scripted detector: results must match and progress must be guaranteed
// (the deemed-final prefix).
func TestScriptedRollbackTransparency(t *testing.T) {
	p := buildMemLoop(48)
	det := &fakeDetector{completeAct: detect.Rollback, fireEvery: 17}
	c, err := New(DefaultConfig(1), []*prog.Program{p}, det)
	if err != nil {
		t.Fatal(err)
	}
	c.Run(5_000_000)
	if !c.Halted(0) {
		t.Fatalf("rollback storm prevented completion (committed %d, rollbacks %d)",
			c.Committed(0), c.Stats().Rollbacks)
	}
	if c.Stats().Rollbacks == 0 {
		t.Fatal("no rollbacks ran")
	}
	it := prog.NewInterp(p)
	it.Run(10_000_000)
	if c.ArchRegs(0) != it.Regs {
		t.Fatal("architectural divergence under rollbacks")
	}
}

// TestScriptedSingletonTransparency drives commit-time singleton
// re-executions; fault-free they must never declare and never perturb
// state.
func TestScriptedSingletonTransparency(t *testing.T) {
	p := buildMemLoop(48)
	det := &fakeDetector{commitAct: detect.Singleton, fireEvery: 1}
	c, err := New(DefaultConfig(1), []*prog.Program{p}, det)
	if err != nil {
		t.Fatal(err)
	}
	c.Run(3_000_000)
	if !c.Halted(0) {
		t.Fatal("did not halt")
	}
	s := c.Stats()
	if s.Singletons == 0 {
		t.Fatal("no singleton re-executions ran")
	}
	if s.FaultsDeclared != 0 {
		t.Fatalf("fault-free run declared %d faults", s.FaultsDeclared)
	}
	it := prog.NewInterp(p)
	it.Run(10_000_000)
	if c.ArchRegs(0) != it.Regs {
		t.Fatal("architectural divergence under singletons")
	}
}

// TestSingletonCorrectsLSQFault verifies the Section-3.5 correction: a
// store's LSQ value flipped after execute is repaired from register-file
// state before the memory write, and the mismatch is declared.
func TestSingletonCorrectsLSQFault(t *testing.T) {
	p := buildMemLoop(64)
	mk := func() *Core {
		det := &fakeDetector{commitAct: detect.Singleton, fireEvery: 1}
		c, err := New(DefaultConfig(1), []*prog.Program{p}, det)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	golden := mk()
	golden.Run(3_000_000)
	want := golden.ArchHash(0)

	f := mk()
	f.RunUntilCommits(0, 500, 1_000_000)
	// Find a completed store in the LSQ and corrupt its value copy.
	deadline := f.Cycle() + 50000
	var flipped bool
	for f.Cycle() < deadline && !flipped {
		f.Step()
		for _, s := range f.LSQSites() {
			if s.IsStore {
				f.FlipLSQBit(s, LSQData, 13)
				flipped = true
				break
			}
		}
	}
	if !flipped {
		t.Fatal("no LSQ store site appeared")
	}
	f.Run(3_000_000)
	if f.Stats().FaultsDeclared == 0 {
		t.Fatal("LSQ fault was not declared")
	}
	if f.ArchHash(0) != want {
		t.Fatal("LSQ fault was not corrected before the memory write")
	}
}

// TestWarmDetectorTrainsFilters: after WarmDetector, the detector has
// seen checks without the pipeline running.
func TestWarmDetectorTrainsFilters(t *testing.T) {
	p := buildMemLoop(64)
	det := &fakeDetector{}
	c, err := New(DefaultConfig(1), []*prog.Program{p}, det)
	if err != nil {
		t.Fatal(err)
	}
	c.WarmDetector(5000)
	if det.stats.Checks == 0 {
		t.Fatal("WarmDetector produced no checks")
	}
	if c.Cycle() != 0 || c.CommittedTotal() != 0 {
		t.Fatal("WarmDetector must not advance the pipeline")
	}
}

// TestLiveArchRegsExcludesUnwritten: registers never written by the
// program read as zero in the tandem view even if their physical
// registers hold garbage.
func TestLiveArchRegsExcludesUnwritten(t *testing.T) {
	p := buildSum(50)
	c, err := New(DefaultConfig(1), []*prog.Program{p}, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.RunUntilCommits(0, 20, 1_000_000)
	// Corrupt the physical register backing the never-written r20.
	pr := uint16(c.threads[0].aRAT[20])
	h0 := c.ArchHash(0)
	c.FlipRegisterBit(pr, 7)
	if c.ArchHash(0) != h0 {
		t.Fatal("flip in a never-written register changed the live hash")
	}
	if c.LiveArchRegs(0)[20] != 0 {
		t.Fatal("unwritten register should read as zero in the live view")
	}
	// But a written register's flip must show.
	pr1 := uint16(c.threads[0].aRAT[1])
	c.FlipRegisterBit(pr1, 7)
	if c.ArchHash(0) == h0 {
		t.Fatal("flip in a written register must change the live hash")
	}
}

// TestSMTFaultIsolation: a fault in thread 1's register must not change
// thread 0's architectural results.
func TestSMTFaultIsolation(t *testing.T) {
	p := buildSum(300)
	c, err := New(DefaultConfig(2), []*prog.Program{p, p}, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.RunUntilCommits(1, 100, 1_000_000)
	// Flip the loop bound (r3): written once, read every iteration.
	pr := uint16(c.threads[1].aRAT[3])
	c.FlipRegisterBit(pr, 3)
	c.Run(2_000_000)
	if got := c.ArchRegs(0)[1]; got != 45150 {
		t.Fatalf("thread 0 sum corrupted by thread 1 fault: %d", got)
	}
	if got := c.ArchRegs(1)[1]; got == 45150 {
		t.Fatal("thread 1 fault was silently lost")
	}
}

// TestRandomProgramsUnderScriptedActions is a randomized stress test:
// arbitrary straight-line programs must stay architecturally exact under
// scripted replay+singleton activity.
func TestRandomProgramsUnderScriptedActions(t *testing.T) {
	rng := stats.NewRNG(99)
	for trial := 0; trial < 8; trial++ {
		b := prog.NewBuilder("rand", 1024)
		b.MovU64(2, b.DataBase())
		reg := func() isa.Reg { return isa.Reg(3 + rng.Intn(8)) }
		for i := 0; i < 150; i++ {
			switch rng.Intn(6) {
			case 0:
				b.MovI(reg(), int32(rng.Intn(1000)))
			case 1:
				b.Op3(isa.ADD, reg(), reg(), reg())
			case 2:
				b.Op3(isa.MUL, reg(), reg(), reg())
			case 3:
				b.OpI(isa.XORI, reg(), reg(), int32(rng.Intn(255)))
			case 4:
				b.St(2, int32(rng.Intn(64))*8, reg())
			case 5:
				b.Ld(reg(), 2, int32(rng.Intn(64))*8)
			}
		}
		b.Halt()
		p := b.MustBuild()
		det := &fakeDetector{completeAct: detect.Replay, commitAct: detect.Singleton, fireEvery: 3}
		c, err := New(DefaultConfig(1), []*prog.Program{p}, det)
		if err != nil {
			t.Fatal(err)
		}
		c.Run(1_000_000)
		it := prog.NewInterp(p)
		it.Run(1_000_000)
		if c.ArchRegs(0) != it.Regs {
			t.Fatalf("trial %d diverged", trial)
		}
	}
}
