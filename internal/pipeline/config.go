// Package pipeline implements the cycle-level out-of-order core the
// paper's evaluation runs on (GEMS/Opal in the paper; built from
// scratch here). It models the Table-2 configuration: a 4-wide
// fetch/decode/issue/commit SMT core with a 40-entry issue queue,
// 250-entry ROB, 64-entry LSQ, 160+64 physical registers, private
// L1s/L2, gshare branch prediction — plus the FaultHound additions: the
// 7-entry delay buffer with delayed issue-queue exit, predecessor
// replay, full-rollback squash, and the commit-time singleton
// re-execute for LSQ coverage.
package pipeline

import (
	"faulthound/internal/branch"
	"faulthound/internal/mem"
)

// Config is the core configuration (Table 2 of the paper).
type Config struct {
	// Threads is the number of SMT contexts (2 in the paper's runs).
	Threads int

	FetchWidth  int
	DecodeWidth int
	IssueWidth  int
	CommitWidth int

	// FrontEndDepth is the fetch-to-dispatch latency in cycles; it sets
	// the refill part of the rollback penalty.
	FrontEndDepth int

	IQSize        int // shared issue queue entries (40)
	ROBPerThread  int // reorder-buffer entries per thread (250 total / threads)
	LSQPerThread  int // load-store queue entries per thread (64 total / threads)
	IntPhysRegs   int // physical integer registers (160)
	FPPhysRegs    int // physical FP registers (64)
	NumALU        int // 4
	NumMul        int // 2
	NumFPU        int // 2
	NumMemPorts   int // data-cache ports
	DelayBuffer   int // completed-instruction delay buffer (7); 0 disables
	FetchQueueMax int // fetched-but-not-dispatched buffer

	// SingletonStall is the commit-stall in cycles charged per
	// singleton re-execute (the paper: "a cycle or two").
	SingletonStall int

	// MSHRs bounds outstanding L1 misses per core: a missing load
	// queues behind the oldest outstanding miss when all MSHRs are
	// busy. Without this bound, rollback re-execution behaves like
	// perfect-accuracy runahead prefetching and can beat the baseline.
	MSHRs int

	// RollbackPenalty is the fetch-redirect bubble after a full
	// pipeline rollback (rename repair, front-end restart).
	RollbackPenalty int

	// RollbackDeemedFinal treats rollback re-executions as final
	// (checked learn-only, never re-triggering), per Section 2.1 of the
	// paper. It is required for forward progress: the biased state
	// machines re-arm during a deterministic re-execution, so without
	// it a value pattern with stable runs re-triggers the same rollback
	// forever. The cost is a check-blind window after each rollback.
	RollbackDeemedFinal bool

	// CommitDelay is the minimum complete-to-retire latency in cycles.
	// The paper's machine has complete-to-commit times of "several tens
	// of cycles" (Section 3.5), which both the delay buffer's replay
	// coverage and the LSQ fault window rely on; this models that
	// retirement lag without restricting commit bandwidth.
	CommitDelay int

	// ShadowRedundancy, when positive, models SRT-iso: each committed
	// instruction spawns, with this probability, an idealized redundant
	// copy that consumes issue/FU/commit bandwidth and IQ space but has
	// perfect branch prediction and no cache misses. Used only by the
	// SRT comparison runs.
	ShadowRedundancy float64

	Hierarchy mem.HierarchyConfig
	Branch    branch.Config
}

// DefaultConfig returns the paper's Table-2 core with the given SMT
// thread count.
func DefaultConfig(threads int) Config {
	if threads < 1 {
		threads = 1
	}
	return Config{
		Threads:             threads,
		FetchWidth:          4,
		DecodeWidth:         4,
		IssueWidth:          4,
		CommitWidth:         4,
		FrontEndDepth:       5,
		IQSize:              40,
		ROBPerThread:        250 / threads,
		LSQPerThread:        64 / threads,
		IntPhysRegs:         160,
		FPPhysRegs:          64,
		NumALU:              4,
		NumMul:              2,
		NumFPU:              2,
		NumMemPorts:         2,
		DelayBuffer:         7,
		FetchQueueMax:       16,
		SingletonStall:      2,
		CommitDelay:         24,
		MSHRs:               8,
		RollbackPenalty:     16,
		RollbackDeemedFinal: true,
		Hierarchy:           mem.DefaultHierarchyConfig(),
		Branch:              branch.DefaultConfig(),
	}
}

// Validate rejects configurations the simulator cannot run, most
// importantly physical register files too small for the architectural
// mappings of every thread.
func (c Config) Validate() error {
	needInt := 1 + 31*c.Threads // shared zero register + per-thread r1..r31
	if c.IntPhysRegs < needInt+8 {
		return &ConfigError{"IntPhysRegs too small for thread count"}
	}
	needFP := 16 * c.Threads
	if c.FPPhysRegs < needFP+4 {
		return &ConfigError{"FPPhysRegs too small for thread count"}
	}
	if c.Threads < 1 || c.FetchWidth < 1 || c.IssueWidth < 1 || c.CommitWidth < 1 {
		return &ConfigError{"widths and thread count must be positive"}
	}
	if c.IQSize < 4 || c.ROBPerThread < 4 || c.LSQPerThread < 2 {
		return &ConfigError{"queues too small"}
	}
	// The scheduler mirrors IQ occupancy in single-word bitmasks
	// (Core.iqMask/iqDisp); the paper's machine uses 40 entries.
	if c.IQSize > 64 {
		return &ConfigError{"IQSize above 64 unsupported"}
	}
	return nil
}

// ConfigError reports an invalid configuration.
type ConfigError struct{ msg string }

func (e *ConfigError) Error() string { return "pipeline: " + e.msg }
