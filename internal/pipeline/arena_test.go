package pipeline

import (
	"testing"

	"faulthound/internal/prog"
)

// midRunCore builds a memLoop core stepped into a busy mid-run state
// (full ROB, in-flight loads/stores, live delay buffer) so snapshots
// must copy every container faithfully.
func midRunCore(t *testing.T) *Core {
	t.Helper()
	p := buildMemLoop(64)
	core, err := New(DefaultConfig(1), []*prog.Program{p}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		core.Step()
	}
	return core
}

// A snapshot built in an arena must behave exactly like a deep clone:
// same cycles, commits, and architectural hash over a long future — and
// running it must not touch the golden core (its memory is a CoW
// overlay over the golden image).
func TestSnapshotMatchesCloneFuture(t *testing.T) {
	golden := midRunCore(t)
	goldenHash := golden.ArchHash(0)

	deep := golden.Clone()
	arena := NewSnapshotArena()
	snap := golden.Snapshot(arena)

	for i := 0; i < 2000; i++ {
		deep.Step()
		snap.Step()
		if deep.ArchHash(0) != snap.ArchHash(0) {
			t.Fatalf("cycle %d: snapshot diverged from deep clone", i)
		}
	}
	if deep.Cycle() != snap.Cycle() || deep.Committed(0) != snap.Committed(0) {
		t.Fatalf("cycles %d/%d commits %d/%d", deep.Cycle(), snap.Cycle(), deep.Committed(0), snap.Committed(0))
	}
	if deep.Stats() != snap.Stats() {
		t.Fatalf("stats diverged:\n deep %+v\n snap %+v", deep.Stats(), snap.Stats())
	}
	if golden.ArchHash(0) != goldenHash {
		t.Fatal("running the snapshot mutated the golden core")
	}
}

// Reusing one arena for many snapshots must give each run a fresh,
// faithful copy regardless of what the previous run did to the shared
// storage.
func TestSnapshotArenaReuse(t *testing.T) {
	golden := midRunCore(t)
	goldenHash := golden.ArchHash(0)
	arena := NewSnapshotArena()

	for round := 0; round < 5; round++ {
		deep := golden.Clone()
		snap := golden.Snapshot(arena)
		// Run each round a different distance so the arena's buffers are
		// left in varied states (advanced slice headers, grown queues,
		// run-allocated uops) before the next snapshot.
		steps := 400 * (round + 1)
		for i := 0; i < steps; i++ {
			deep.Step()
			snap.Step()
		}
		if deep.ArchHash(0) != snap.ArchHash(0) || deep.Stats() != snap.Stats() {
			t.Fatalf("round %d: arena snapshot diverged from deep clone", round)
		}
		if golden.ArchHash(0) != goldenHash {
			t.Fatalf("round %d: snapshot run mutated the golden core", round)
		}
	}
}

// A snapshot that runs to completion must produce the same final
// architectural state as the golden program would (the memLoop result),
// proving overlay reads fall through to the golden image correctly.
func TestSnapshotRunsToCompletion(t *testing.T) {
	golden := midRunCore(t)
	ref := golden.Clone()
	ref.Run(1_000_000)
	if !ref.Halted(0) {
		t.Fatal("reference clone did not halt")
	}

	snap := golden.Snapshot(NewSnapshotArena())
	snap.Run(1_000_000)
	if !snap.Halted(0) {
		t.Fatal("snapshot did not halt")
	}
	if ref.ArchHash(0) != snap.ArchHash(0) {
		t.Fatal("snapshot finished with different architectural state")
	}
}
