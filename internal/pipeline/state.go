package pipeline

import (
	"math/bits"

	"faulthound/internal/isa"
)

// ArchRegs returns the architectural register values of thread tid
// through its architectural RAT.
func (c *Core) ArchRegs(tid int) [isa.NumArchRegs]uint64 {
	var out [isa.NumArchRegs]uint64
	t := c.threads[tid]
	for r := range out {
		out[r] = c.rf.read(t.aRAT[r])
	}
	out[isa.RZero] = 0
	return out
}

// LiveArchRegs is ArchRegs restricted to registers the program has
// committed a write to; never-written registers read as zero. Tandem
// state comparison uses this view so that a fault parked in dead
// initial state does not count as program corruption.
func (c *Core) LiveArchRegs(tid int) [isa.NumArchRegs]uint64 {
	out := c.ArchRegs(tid)
	t := c.threads[tid]
	for r := range out {
		if t.writtenRegs>>uint(r)&1 == 0 {
			out[r] = 0
		}
	}
	return out
}

// ArchHash folds thread tid's architectural registers and the shared
// memory image into a fingerprint for tandem state comparison.
func (c *Core) ArchHash(tid int) uint64 {
	h := c.memory.Hash()
	regs := c.LiveArchRegs(tid)
	for i, v := range regs {
		x := uint64(i+1)*0x9e3779b97f4a7c15 ^ v
		x ^= x >> 33
		x *= 0xff51afd7ed558ccd
		x ^= x >> 33
		h ^= x
	}
	return h
}

// --- Fault injection sites (Section 4 of the paper) ---

// AllocatedRegs returns the physical registers currently holding live
// state (not on a free list, excluding the zero register).
func (c *Core) AllocatedRegs() []uint16 {
	total := c.cfg.IntPhysRegs + c.cfg.FPPhysRegs
	free := make([]bool, total)
	for _, p := range c.rf.freeInt {
		free[p] = true
	}
	for _, p := range c.rf.freeFP {
		free[p] = true
	}
	out := make([]uint16, 0, total)
	for p := 1; p < total; p++ {
		if !free[p] {
			out = append(out, uint16(p))
		}
	}
	return out
}

// AllRegs returns every physical register id except the zero register —
// the paper's register-file injection population (Section 4 injects
// uniformly over the physical register file, where flips in free
// registers are overwritten at the next allocation and masked).
func (c *Core) AllRegs() []uint16 {
	total := c.cfg.IntPhysRegs + c.cfg.FPPhysRegs
	out := make([]uint16, 0, total-1)
	for p := 1; p < total; p++ {
		out = append(out, uint16(p))
	}
	return out
}

// FlipRegisterBit flips one bit of a physical register value. It
// reports false for the zero register or an out-of-range id.
func (c *Core) FlipRegisterBit(p uint16, bit uint) bool {
	if p == 0 || int(p) >= len(c.rf.val) {
		return false
	}
	c.schedTouch()
	c.rf.val[p] ^= 1 << (bit & 63)
	return true
}

// InFlightDestRegs returns the destination physical registers of
// instructions currently in flight (dispatched through completed, not
// yet committed) — the population that emulates faults in the back-end
// datapath (FU outputs, bypass latches), which land on young values.
func (c *Core) InFlightDestRegs() []uint16 {
	var out []uint16
	for _, t := range c.threads {
		for _, u := range t.rob {
			if u.dst != physNone && u.state != stCommitted && u.state != stSquashed {
				out = append(out, uint16(u.dst))
			}
		}
	}
	return out
}

// LSQField selects which LSQ-held datum a fault flips.
type LSQField uint8

// LSQ fault fields.
const (
	LSQAddr LSQField = iota
	LSQData          // store value
)

// LSQSite describes an occupiable LSQ injection target.
type LSQSite struct {
	Thread  int
	Index   int // position in the thread's LSQ
	IsStore bool
}

// LSQSites returns the LSQ entries whose address (and, for stores,
// value) have been computed but not yet committed — the population for
// LSQ fault injection.
func (c *Core) LSQSites() []LSQSite {
	var out []LSQSite
	for _, t := range c.threads {
		for i, u := range t.lsq {
			if u.state == stCompleted {
				out = append(out, LSQSite{Thread: t.id, Index: i, IsStore: u.isStore()})
			}
		}
	}
	return out
}

// FlipLSQBit flips one bit of an LSQ entry's address or store value. It
// reports whether the site was valid.
func (c *Core) FlipLSQBit(site LSQSite, field LSQField, bit uint) bool {
	t := c.threads[site.Thread]
	if site.Index >= len(t.lsq) {
		return false
	}
	c.schedTouch()
	u := t.lsq[site.Index]
	if u.state != stCompleted {
		return false
	}
	switch field {
	case LSQAddr:
		u.effAddr ^= 1 << (bit & 63)
	case LSQData:
		if !u.isStore() {
			return false
		}
		u.storeVal ^= 1 << (bit & 63)
	}
	return true
}

// FlipRATBit flips one bit of thread tid's speculative rename-table
// entry for architectural register r, wrapping within the register
// class so the corrupted tag still names a physical register (as a real
// rename tag would). It reports whether the flip was applied.
func (c *Core) FlipRATBit(tid int, r isa.Reg, bit uint) bool {
	if r == isa.RZero || !r.Valid() {
		return false
	}
	c.schedTouch()
	t := c.threads[tid]
	classBase, classSize := 0, c.cfg.IntPhysRegs
	if r.IsFP() {
		classBase, classSize = c.cfg.IntPhysRegs, c.cfg.FPPhysRegs
	}
	tagBits := uint(bits.Len(uint(classSize - 1)))
	local := uint64(int(t.rat[r]) - classBase)
	local ^= 1 << (bit % tagBits)
	local %= uint64(classSize)
	t.rat[r] = physID(classBase + int(local))
	return true
}

// RATEntries returns the architectural registers of thread tid whose
// speculative rename-table entries are valid injection targets (all
// but the zero register).
func (c *Core) RATEntries(tid int) []isa.Reg {
	out := make([]isa.Reg, 0, isa.NumArchRegs-1)
	for r := isa.Reg(1); r < isa.NumArchRegs; r++ {
		out = append(out, r)
	}
	return out
}
