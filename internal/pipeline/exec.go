package pipeline

import (
	"math/bits"

	"faulthound/internal/detect"
	"faulthound/internal/isa"
)

// sortBySeq orders uops by their globally-unique age tag with an
// insertion sort: the per-cycle candidate and completion sets are small
// and nearly sorted already (gathered in rough age order), and unlike
// sort.Slice this allocates nothing.
func sortBySeq(us []*uop) {
	for i := 1; i < len(us); i++ {
		u := us[i]
		j := i - 1
		for j >= 0 && us[j].seq > u.seq {
			us[j+1] = us[j]
			j--
		}
		us[j+1] = u
	}
}

// issue selects up to IssueWidth ready instructions (oldest first),
// reads their operands, executes them functionally, and schedules their
// completion. Leftover issue slots drain pending SRT-iso shadow ops.
func (c *Core) issue() {
	// Gather ready candidates from the IQ in age order — unless the
	// previous gather came up empty and nothing since could have
	// created a candidate (schedClean), in which case the scan would
	// provably find nothing and is skipped. The stalled cycles of a
	// long cache miss reduce to this no-op.
	cand := c.issueScratch[:0]
	if !c.schedClean {
		// Memoize each thread's oldest incomplete store/atomic once per
		// cycle: the LSQ is seq-ascending, so the per-load
		// olderStoresDone scan collapses to one compare against it.
		for _, t := range c.threads {
			t.schedMinStore = ^uint64(0)
			for _, s := range t.lsq {
				if (s.isStore() || s.inst.IsAtomic()) && s.state != stCompleted && s.state != stCommitted {
					t.schedMinStore = s.seq
					break
				}
			}
		}
		// Source readiness is event-driven (iqReady, maintained by
		// schedWake and friends): entries stalled on a long-latency
		// producer cost nothing here, cycle after cycle. Only the
		// per-cycle conditions — store ordering and ROB-head atomics
		// — are tested in the loop.
		for m := c.iqDisp & c.iqReady; m != 0; m &= m - 1 {
			i := bits.TrailingZeros64(m)
			e := &c.iqSched[i]
			// Loads wait for every older same-thread store to have
			// computed its address and value (no memory-order
			// speculation): one compare against the per-thread memo.
			// seq == schedMinStore only when the entry is that
			// store/atomic itself.
			if e.load && c.threads[e.thread].schedMinStore < e.seq {
				continue
			}
			// Atomics execute non-speculatively: only at the head of their
			// thread's ROB (everything older has committed).
			if e.atomic {
				rob := c.threads[e.thread].rob
				if len(rob) == 0 || rob[0] != c.iq[i] {
					continue
				}
			}
			cand = append(cand, c.iq[i])
		}
		c.schedClean = len(cand) == 0
	}
	c.issueScratch = cand
	sortBySeq(cand)

	budget := c.cfg.IssueWidth
	// SRT-iso trailing copies contend for issue bandwidth as co-equal
	// threads: when redundant work is pending, it claims up to half the
	// issue width ahead of the leading threads.
	alu, mul, fpu, memPorts := c.cfg.NumALU, c.cfg.NumMul, c.cfg.NumFPU, c.cfg.NumMemPorts
	if c.shadowPending > 0 {
		take := c.cfg.IssueWidth / 2
		if take > c.shadowPending {
			take = c.shadowPending
		}
		c.shadowPending -= take
		c.stats.ShadowOps += uint64(take)
		budget -= take
		alu -= take // redundant copies occupy functional units too
		if alu < 0 {
			alu = 0
		}
	}
	for _, u := range cand {
		if budget == 0 {
			break
		}
		switch u.fuClass() {
		case isa.ClassIntALU, isa.ClassBranch, isa.ClassNop:
			if alu == 0 {
				continue
			}
			alu--
		case isa.ClassIntMul:
			if mul == 0 {
				continue
			}
			mul--
		case isa.ClassFP:
			if fpu == 0 {
				continue
			}
			fpu--
		case isa.ClassLoad, isa.ClassStore, isa.ClassAtomic:
			if memPorts == 0 || alu == 0 {
				continue
			}
			memPorts--
			alu-- // address generation
		}
		budget--
		c.issueOne(u)
	}

	// Idle slots execute SRT-iso shadow copies (idealized redundant
	// instructions: no registers, no cache misses, just bandwidth).
	for budget > 0 && c.shadowPending > 0 {
		budget--
		c.shadowPending--
		c.stats.ShadowOps++
	}
}

// issueOne reads operands, executes u functionally, and schedules its
// completion.
func (c *Core) issueOne(u *uop) {
	u.state = stIssued
	c.iqDisp &^= 1 << uint(u.iqSlot)
	c.stats.Issued++
	c.trace(TraceIssue, u, "")
	c.stats.IssuedByClass[u.fuClass()]++
	c.stats.RegReads += uint64(u.nsrc)

	var s1, s2 uint64
	// Map renamed sources back to the Exec operand positions: src[0] is
	// always Rs1, src[1] (when present) is Rs2.
	if u.nsrc > 0 {
		s1 = c.rf.read(u.src[0])
	}
	if u.nsrc > 1 {
		s2 = c.rf.read(u.src[1])
	}
	out := isa.Exec(u.inst, u.pc, s1, s2)
	lat := uint64(isa.Latency(u.inst.Op))

	switch {
	case u.isLoad():
		u.effAddr = out.EffAddr
		if !c.memory.Mapped(u.effAddr) {
			u.excepted = true
			u.exceptMsg = "load translation exception"
			u.completeAt = c.cycle + lat + 1
			break
		}
		if v, ok := c.forward(u); ok {
			u.result = v
			u.completeAt = c.cycle + lat + uint64(c.cfg.Hierarchy.L1DLatency)
		} else {
			dlat, l1Hit := c.hier.AccessD(u.effAddr, false)
			v, _ := c.memory.Read(u.effAddr)
			u.result = v
			start := c.cycle + lat
			if !l1Hit {
				start = c.allocMSHR(start, uint64(dlat))
			}
			u.completeAt = start + uint64(dlat)
		}
	case u.inst.IsAtomic():
		u.effAddr = out.EffAddr
		u.storeVal = out.Value
		if !c.memory.Mapped(u.effAddr) {
			u.excepted = true
			u.exceptMsg = "atomic translation exception"
			u.completeAt = c.cycle + lat + 1
			break
		}
		// Everything older has committed (ROB-head issue), so the
		// read-modify-write applies directly and atomically.
		old, _ := c.memory.Read(u.effAddr)
		nv := u.storeVal
		if u.inst.Op == isa.AMOADD {
			nv = old + u.storeVal
		}
		c.memory.Write(u.effAddr, nv)
		u.result = old
		u.rmwDone = true
		dlat, _ := c.hier.AccessD(u.effAddr, true)
		u.completeAt = c.cycle + lat + uint64(dlat)
	case u.isStore():
		u.effAddr = out.EffAddr
		u.storeVal = out.Value
		if !c.memory.Mapped(u.effAddr) {
			u.excepted = true
			u.exceptMsg = "store translation exception"
		}
		u.completeAt = c.cycle + lat + 1
	case u.inst.IsBranch():
		u.taken = out.Taken
		u.target = out.Target
		u.result = out.Value // link value for JAL/JALR
		u.completeAt = c.cycle + lat
	default:
		u.result = out.Value
		u.completeAt = c.cycle + lat
	}
	c.inFlight = append(c.inFlight, u)
}

// allocMSHR reserves a miss-status register for a miss wanting to
// start at cycle `want`, returning the actual start cycle (delayed when
// all MSHRs are busy).
func (c *Core) allocMSHR(want, latency uint64) uint64 {
	if c.cfg.MSHRs <= 0 {
		return want
	}
	if c.mshrFree == nil {
		c.mshrFree = make([]uint64, c.cfg.MSHRs)
	}
	best := 0
	for i, f := range c.mshrFree {
		if f < c.mshrFree[best] {
			best = i
		}
	}
	start := want
	if c.mshrFree[best] > start {
		start = c.mshrFree[best]
	}
	// The MSHR is occupied until the fill returns.
	c.mshrFree[best] = start + latency
	return start
}

// forward searches the thread's LSQ for the youngest older completed
// store to the same address (store-to-load forwarding).
func (c *Core) forward(u *uop) (uint64, bool) {
	lsq := c.threads[u.thread].lsq
	for i := len(lsq) - 1; i >= 0; i-- {
		s := lsq[i]
		if s.seq >= u.seq || !s.isStore() {
			continue
		}
		if s.state == stCompleted && s.effAddr == u.effAddr {
			return s.storeVal, true
		}
	}
	return 0, false
}

// complete finishes execution for every uop whose latency expires this
// cycle: write back, resolve branches, run the detector's completion
// checks, and manage the delay buffer.
func (c *Core) complete() {
	if len(c.inFlight) == 0 {
		return
	}
	done := c.doneScratch[:0]
	rest := c.inFlight[:0]
	for _, u := range c.inFlight {
		if u.state == stSquashed {
			continue // dropped by a squash while executing
		}
		if u.completeAt <= c.cycle {
			done = append(done, u)
		} else {
			rest = append(rest, u)
		}
	}
	c.inFlight = rest
	c.doneScratch = done
	sortBySeq(done)

	for _, u := range done {
		// An older instruction completing this same cycle may have
		// squashed u (branch misprediction or detector rollback).
		if u.state == stSquashed {
			continue
		}
		c.completeOne(u)
	}
}

func (c *Core) completeOne(u *uop) {
	c.schedTouch() // a write can wake a consumer; a store completion can unblock a load
	u.state = stCompleted
	c.stats.Completed++
	c.trace(TraceComplete, u, "")

	if u.dst != physNone {
		c.rf.write(u.dst, u.result)
		c.schedWake(u.dst)
		c.stats.RegWrites++
	}

	// Replay bookkeeping must run before checks so the learn-only flag
	// clears when the last replayed instruction finishes.
	if u.replaying {
		u.replaying = false
		u.replayed = true
		c.stats.ReplayedUops++
		c.replayPending--
		if c.replayPending == 0 {
			c.detSetLearnOnly(false)
		}
	}

	if u.inst.IsBranch() {
		c.resolveBranch(u)
		if u.state == stSquashed {
			return // squashed itself? (cannot happen: squashAfter squashes younger only)
		}
	}

	// Detector completion checks for loads and stores (Section 3.3).
	// Replayed and rollback-re-executed values are deemed final: the
	// filters keep learning from them but their triggers are ignored.
	if u.isMem() && !u.excepted {
		if u.replayed || c.isExempt(u) {
			if c.detector != nil {
				c.detSetLearnOnly(true)
				c.checkComplete(u)
				if c.replayPending == 0 {
					c.detSetLearnOnly(false)
				}
			}
		} else if act := c.checkComplete(u); act != detect.None {
			switch act {
			case detect.Replay:
				c.trace(TraceReplay, u, "detector trigger")
				c.triggerReplay(u)
			case detect.Rollback:
				c.trace(TraceRollback, u, "detector trigger")
				c.fullSquash(u)
				return // u itself was squashed by the rollback
			}
		}
	}

	if u.state != stCompleted {
		return // went back to dispatched for replay, or squashed
	}

	// Delay buffer: completed instructions linger in the IQ for
	// potential predecessor replay (delayed exit, Section 3.3).
	// Atomics are excluded: their read-modify-write cannot be
	// re-executed.
	if u.inst.IsAtomic() {
		c.iqRemove(u)
		return
	}
	if c.cfg.DelayBuffer > 0 && u.inIQ {
		c.delayBuf = append(c.delayBuf, u)
		u.inDelayBuf = true
		if len(c.delayBuf) > c.cfg.DelayBuffer {
			old := popFront(&c.delayBuf)
			old.inDelayBuf = false
			c.iqRemove(old)
			c.stats.DelayBufEvictions++
		}
	} else {
		c.iqRemove(u)
	}
}

// resolveBranch trains the predictor and recovers from mispredictions.
func (c *Core) resolveBranch(u *uop) {
	t := c.threads[u.thread]
	actualNext := u.pc + 1
	if u.taken {
		actualNext = u.target
	}
	cond := u.inst.IsCondBranch()
	switch u.inst.Op {
	case isa.BEQ, isa.BNE, isa.BLT, isa.BGE:
		t.pred.Update(u.pc, u.pred, u.taken, u.target, true)
	case isa.JALR:
		t.pred.Update(u.pc, u.pred, true, u.target, false)
	}
	if actualNext != u.predPC {
		c.stats.BranchMispredicts++
		if cond {
			t.pred.RecoverMispredict(u.pred, u.taken)
		}
		c.squashAfter(u)
		t.pc = actualNext
		u.predPC = actualNext // a replayed branch must not re-squash
	}
}

// isExempt reports whether u's value is deemed final because it will
// commit within the exempt prefix of a prior rollback. The position is
// computed from the ROB so wrong-path fetches cannot skew it.
func (c *Core) isExempt(u *uop) bool {
	t := c.threads[u.thread]
	if t.exemptUntil <= t.committed {
		return false
	}
	for i, e := range t.rob {
		if e == u {
			return t.committed+uint64(i)+1 <= t.exemptUntil
		}
	}
	return false
}

// checkComplete runs the probe and the detector's completion checks for
// a memory uop and returns the strongest requested action.
func (c *Core) checkComplete(u *uop) detect.Action {
	act := c.checkCompleteEvent(loadOrStoreAddrEvent(u))
	if u.isStore() {
		if a := c.checkCompleteEvent(storeValueEvent(u)); a > act {
			act = a
		}
	}
	return act
}

func (c *Core) checkCompleteEvent(ev detect.Event) detect.Action {
	if c.probe != nil {
		c.probe(ev)
	}
	if c.detector == nil {
		return detect.None
	}
	return c.detOnComplete(ev)
}

// loadOrStoreAddrEvent and storeValueEvent build the checked-operand
// events for a load or store. Events are passed by value, so the
// completion and commit check paths stay allocation-free — they run for
// every load and store of every simulated cycle.
func loadOrStoreAddrEvent(u *uop) detect.Event {
	k := detect.StoreAddr
	if u.isLoad() {
		k = detect.LoadAddr
	}
	return detect.Event{Kind: k, Value: u.effAddr, PC: u.pc, Thread: u.thread}
}

func storeValueEvent(u *uop) detect.Event {
	return detect.Event{Kind: detect.StoreValue, Value: u.storeVal, PC: u.pc, Thread: u.thread}
}

// triggerReplay starts a predecessor replay: every instruction in the
// delay buffer plus the triggering instruction re-executes through the
// back-end (Section 3.3). Triggers raised while a replay is in flight
// are ignored.
func (c *Core) triggerReplay(trigger *uop) {
	if c.replayPending > 0 {
		return
	}
	c.schedTouch() // replayed uops return to dispatched
	marked := append(append(c.replayScratch[:0], c.delayBuf...), trigger)
	c.replayScratch = marked
	c.delayBuf = c.delayBuf[:0]
	started := 0
	for _, m := range marked {
		if m.state != stCompleted || !m.inIQ || m.inst.IsAtomic() {
			m.inDelayBuf = false
			continue
		}
		m.inDelayBuf = false
		m.state = stDispatched
		c.iqDisp |= 1 << uint(m.iqSlot)
		m.replaying = true
		if m.dst != physNone {
			c.rf.ready[m.dst] = false
		}
		c.replayPending++
		started++
	}
	if started == 0 {
		return
	}
	// Replay flipped completed destinations back to not-ready — the
	// one ready->false transition under already-registered slots —
	// so re-derive the wakeup state wholesale.
	c.rebuildSched()
	c.stats.ReplayTriggers++
	c.detSetLearnOnly(true)
}
