package pipeline

import (
	"testing"

	"faulthound/internal/detect"
	"faulthound/internal/isa"
	"faulthound/internal/prog"
)

// TestFuzzPipelineVsInterp is the heavyweight differential test:
// structured random programs — nested loops, data-dependent branches,
// memory traffic, calls — must produce identical architectural state on
// the out-of-order pipeline and the sequential interpreter.
func TestFuzzPipelineVsInterp(t *testing.T) {
	seeds := 60
	if testing.Short() {
		seeds = 10
	}
	for seed := uint64(0); seed < uint64(seeds); seed++ {
		p := prog.Random(prog.DefaultRandomConfig(), seed)
		it := prog.NewInterp(p)
		it.Run(5_000_000)
		if !it.Halted {
			t.Fatalf("seed %d: reference did not halt", seed)
		}

		c, err := New(DefaultConfig(1), []*prog.Program{p}, nil)
		if err != nil {
			t.Fatal(err)
		}
		c.Run(20_000_000)
		if !c.Halted(0) {
			t.Fatalf("seed %d: pipeline did not halt (committed %d of %d)",
				seed, c.Committed(0), it.Steps)
		}
		if c.Committed(0) != it.Steps {
			t.Fatalf("seed %d: committed %d, reference %d", seed, c.Committed(0), it.Steps)
		}
		regs := c.ArchRegs(0)
		for r := 0; r < isa.NumArchRegs; r++ {
			if regs[r] != it.Regs[r] {
				t.Fatalf("seed %d: reg %s = %#x, reference %#x", seed, isa.Reg(r), regs[r], it.Regs[r])
			}
		}
		for a, v := range it.Mem {
			got, err := c.memory.Read(a)
			if err != nil || got != v {
				t.Fatalf("seed %d: mem[%#x] = %d, reference %d", seed, a, got, v)
			}
		}
	}
}

// TestFuzzUnderDetectorActions repeats the differential test with a
// scripted detector hammering replays, rollbacks, and singletons: the
// recovery machinery must stay architecturally invisible on arbitrary
// control flow.
func TestFuzzUnderDetectorActions(t *testing.T) {
	seeds := 30
	if testing.Short() {
		seeds = 6
	}
	actions := []detect.Action{detect.Replay, detect.Rollback}
	for seed := uint64(100); seed < uint64(100+seeds); seed++ {
		p := prog.Random(prog.DefaultRandomConfig(), seed)
		it := prog.NewInterp(p)
		it.Run(5_000_000)
		if !it.Halted {
			continue
		}
		act := actions[seed%2]
		det := &fakeDetector{completeAct: act, commitAct: detect.Singleton, fireEvery: 7}
		c, err := New(DefaultConfig(1), []*prog.Program{p}, det)
		if err != nil {
			t.Fatal(err)
		}
		c.Run(40_000_000)
		if !c.Halted(0) {
			t.Fatalf("seed %d (%v): pipeline wedged (committed %d of %d)",
				seed, act, c.Committed(0), it.Steps)
		}
		if c.ArchRegs(0) != it.Regs {
			t.Fatalf("seed %d (%v): architectural divergence under detector actions", seed, act)
		}
	}
}
