package fault

import (
	"sort"
	"sync"
	"sync/atomic"

	"faulthound/internal/pipeline"
)

// PreparedKey identifies one reusable golden preparation: the cell it
// belongs to and the exact campaign configuration. Config is a value
// type, so the key is comparable and two jobs that share a bench,
// scheme, and fault config map to the same entry.
type PreparedKey struct {
	Bench  string
	Scheme string
	Cfg    Config
}

// PreparedCache shares golden-run preparations across campaigns. The
// golden phase (detector fast-forward, warmup, hash/background trace)
// dominates small campaigns and is identical for every job with the
// same (bench, scheme, config) cell, and a Prepared is read-only after
// Prepare returns — so a long-lived caller (the campaign-serving
// daemon) can prepare each cell once and fan any number of jobs over
// it. Entries are never evicted; the population is bounded by the
// bench × scheme × config combinations actually served.
type PreparedCache struct {
	mu sync.Mutex
	m  map[PreparedKey]*preparedEntry

	// hits and misses count Get outcomes: a miss is the call that
	// creates a key's entry (and runs Prepare), a hit any later call
	// that reuses it — including callers that block on a preparation
	// still in flight. The daemon exports both on /metrics.
	hits, misses atomic.Uint64
}

type preparedEntry struct {
	once sync.Once
	p    *Prepared
	err  error
}

// NewPreparedCache returns an empty cache.
func NewPreparedCache() *PreparedCache {
	return &PreparedCache{m: make(map[PreparedKey]*preparedEntry)}
}

// Get returns the cached preparation for key, running Prepare(mk,
// key.Cfg) at most once per key even under concurrent callers.
// Preparation errors are cached too: a cell whose golden run fails
// fails every job the same way instead of re-running the warmup.
func (c *PreparedCache) Get(key PreparedKey, mk func() *pipeline.Core) (*Prepared, error) {
	c.mu.Lock()
	e := c.m[key]
	if e == nil {
		e = &preparedEntry{}
		c.m[key] = e
		c.misses.Add(1)
	} else {
		c.hits.Add(1)
	}
	c.mu.Unlock()
	e.once.Do(func() {
		e.p, e.err = Prepare(mk, key.Cfg)
	})
	return e.p, e.err
}

// Len reports the number of cached cells (including failed ones).
func (c *PreparedCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Stats reports the cumulative Get hit and miss counts.
func (c *PreparedCache) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

// Keys lists the cached preparation keys, sorted by bench then scheme
// (map order would not be deterministic). Cluster workers report them
// in their heartbeat status so a locality-aware coordinator can route
// a cell's shards to a worker whose golden state is already warm.
func (c *PreparedCache) Keys() []PreparedKey {
	c.mu.Lock()
	out := make([]PreparedKey, 0, len(c.m))
	for k := range c.m {
		out = append(out, k)
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bench != out[j].Bench {
			return out[i].Bench < out[j].Bench
		}
		return out[i].Scheme < out[j].Scheme
	})
	return out
}
