package fault

import (
	"context"
	"testing"

	"faulthound/internal/core"
	"faulthound/internal/obs"
	"faulthound/internal/pipeline"
	"faulthound/internal/prog"
	"faulthound/internal/workload"
)

// mkCore builds a single-thread core running a workload kernel, with an
// optional FaultHound config.
func mkCore(t *testing.T, bench string, fh *core.Config) func() *pipeline.Core {
	t.Helper()
	bm, err := workload.Get(bench)
	if err != nil {
		t.Fatal(err)
	}
	p := bm.Build(prog.DefaultDataBase, 3)
	return func() *pipeline.Core {
		var det *core.FaultHound
		cfg := pipeline.DefaultConfig(1)
		if fh != nil {
			det = core.New(*fh)
			c, err := pipeline.New(cfg, []*prog.Program{p}, det)
			if err != nil {
				t.Fatal(err)
			}
			return c
		}
		c, err := pipeline.New(cfg, []*prog.Program{p}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
}

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Injections = 80
	cfg.WarmupCycles = 2000
	cfg.MaxCyclesPerRun = 20000
	return cfg
}

func TestDrawInjectionsDeterministic(t *testing.T) {
	cfg := smallConfig()
	a := DrawInjections(cfg)
	b := DrawInjections(cfg)
	if len(a) != cfg.Injections {
		t.Fatalf("drew %d injections", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("injection streams differ for the same seed")
		}
	}
}

func TestDrawInjectionsProportions(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Injections = 5000
	injs := DrawInjections(cfg)
	var counts [3]int
	for _, in := range injs {
		counts[in.Structure]++
	}
	frac := func(s Structure) float64 { return float64(counts[s]) / float64(len(injs)) }
	if f := frac(RenameTable); f < 0.16 || f > 0.24 {
		t.Errorf("rename fraction = %v, want ~0.20", f)
	}
	if f := frac(LSQ); f < 0.05 || f > 0.11 {
		t.Errorf("lsq fraction = %v, want ~0.08", f)
	}
	if f := frac(RegFile); f < 0.66 || f > 0.78 {
		t.Errorf("regfile fraction = %v, want ~0.72", f)
	}
}

func TestCampaignClassification(t *testing.T) {
	camp, err := Run(mkCore(t, "bzip2", nil), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	masked, noisy, sdc := camp.Classification()
	total := masked + noisy + sdc
	if total != len(camp.Results) || total != smallConfig().Injections {
		t.Fatalf("classification does not partition: %d/%d/%d of %d", masked, noisy, sdc, total)
	}
	// The paper's headline: most faults are masked.
	if masked < total/2 {
		t.Errorf("masked = %d of %d; expected a majority", masked, total)
	}
	// Some faults must corrupt state (otherwise the experiment is
	// degenerate).
	if sdc == 0 {
		t.Error("no SDC faults at all; injection seems ineffective")
	}
}

func TestCampaignDeterminism(t *testing.T) {
	mk := mkCore(t, "bzip2", nil)
	a, err := Run(mk, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(mk, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Results {
		if a.Results[i] != b.Results[i] {
			t.Fatalf("result %d differs between identical campaigns", i)
		}
	}
}

func TestCoveragePairing(t *testing.T) {
	cfg := smallConfig()
	cfg.Injections = 120
	base, err := Run(mkCore(t, "bzip2", nil), cfg)
	if err != nil {
		t.Fatal(err)
	}
	fhCfg := core.DefaultConfig()
	det, err := Run(mkCore(t, "bzip2", &fhCfg), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := PairCoverage(base, det)
	if rep.SDCBase == 0 {
		t.Skip("no SDC faults in this small campaign")
	}
	cov := rep.Coverage()
	if cov < 0 || cov > 1 {
		t.Fatalf("coverage = %v out of range", cov)
	}
	// Bin conservation: bins partition the SDC-base faults.
	sum := 0
	for _, b := range BinNames() {
		sum += rep.Bins[b]
	}
	if sum != rep.SDCBase {
		t.Fatalf("bins sum to %d, SDC base is %d", sum, rep.SDCBase)
	}
	t.Logf("SDC=%d coverage=%.2f bins=%v", rep.SDCBase, cov, rep.Bins)
}

func TestFaultHoundCoversSomething(t *testing.T) {
	// On a locality-friendly kernel, FaultHound must cover a meaningful
	// fraction of SDC faults (the paper's headline is 75% overall).
	// SDC faults are ~7% of injections, so the campaign must be large
	// enough to have a meaningful denominator, and warmup long enough
	// that the filters are in steady state (the regime the paper
	// measures).
	cfg := DefaultConfig()
	cfg.Injections = 600
	base, err := Run(mkCore(t, "bzip2", nil), cfg)
	if err != nil {
		t.Fatal(err)
	}
	fhCfg := core.DefaultConfig()
	det, err := Run(mkCore(t, "bzip2", &fhCfg), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := PairCoverage(base, det)
	if rep.SDCBase < 12 {
		t.Skip("too few SDC faults to judge coverage")
	}
	if rep.Coverage() < 0.25 {
		t.Errorf("FaultHound coverage = %.2f (%d/%d); implausibly low",
			rep.Coverage(), rep.CoveredCount, rep.SDCBase)
	}
}

func TestStructureAndOutcomeStrings(t *testing.T) {
	if RegFile.String() != "regfile" || RenameTable.String() != "rename" || LSQ.String() != "lsq" {
		t.Fatal("structure names")
	}
	if Masked.String() != "masked" || Noisy.String() != "noisy" || SDC.String() != "sdc" {
		t.Fatal("outcome names")
	}
	for _, b := range BinNames() {
		if b.String() == "?" {
			t.Fatal("unnamed bin")
		}
	}
}

// TestRunOneObsLifecycle checks the instrumented run path: the result
// matches the plain RunOne of the same injection (a nil sink and a live
// sink must not diverge), and the sink sees the "inject" instant with
// the injection's cycle and structure. When the run is detected, the
// one-time "detect" instant must carry the cycle of the first detector
// action.
func TestRunOneObsLifecycle(t *testing.T) {
	cfg := smallConfig()
	cfg.Injections = 24
	fhCfg := core.DefaultConfig()
	p, err := Prepare(mkCore(t, "bzip2", &fhCfg), cfg)
	if err != nil {
		t.Fatal(err)
	}
	sawDetect := false
	for _, inj := range p.Injections() {
		want := p.RunOne(inj)
		var c obs.Collector
		got, err := p.RunOneObs(context.Background(), inj, &c)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("instrumented run diverged: got %+v, want %+v", got, want)
		}
		evs := c.Events()
		if len(evs) == 0 || evs[0].Name != "inject" || evs[0].Kind != obs.KindInstant {
			t.Fatalf("first event = %+v, want inject instant", evs)
		}
		injectCycle := evs[0].Cycle
		if injectCycle < cfg.WarmupCycles || evs[0].Arg != inj.Structure.String() {
			t.Fatalf("inject instant %+v does not match injection %+v", evs[0], inj)
		}
		var detects int
		for _, ev := range evs[1:] {
			if ev.Name == "detect" {
				detects++
				sawDetect = true
				if ev.Cycle < injectCycle {
					t.Fatalf("detect at cycle %d before injection at %d", ev.Cycle, injectCycle)
				}
			}
		}
		if detects > 1 {
			t.Fatalf("%d detect instants for one run, want at most 1", detects)
		}
	}
	if !sawDetect {
		t.Log("no injection was detected in this draw (latency path unexercised)")
	}
}
