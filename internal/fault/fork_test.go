package fault

import (
	"context"
	"testing"

	"faulthound/internal/core"
)

// legacyConfig is smallConfig with the replay-acceleration knobs off:
// every run fast-forwards from the spread start and simulates its full
// window — the path whose results the accelerated paths must reproduce
// bit for bit.
func legacyConfig() Config {
	cfg := smallConfig()
	cfg.CheckpointCycles = 0
	cfg.EarlyExit = false
	return cfg
}

// TestCheckpointForkEquivalence sweeps CheckpointCycles × EarlyExit and
// asserts every Result — outcome, hang flag, detection flag, and all
// five background-subtracted detector counters — is bit-identical to
// the legacy path's, for both a FaultHound cell and a detector-less
// baseline cell.
func TestCheckpointForkEquivalence(t *testing.T) {
	cells := []struct {
		name string
		fh   *core.Config
	}{
		{"faulthound", func() *core.Config { c := core.DefaultConfig(); return &c }()},
		{"baseline", nil},
	}
	for _, cell := range cells {
		t.Run(cell.name, func(t *testing.T) {
			mk := mkCore(t, "bzip2", cell.fh)
			ref, err := Prepare(mk, legacyConfig())
			if err != nil {
				t.Fatal(err)
			}
			want := make([]Result, len(ref.Injections()))
			for i, inj := range ref.Injections() {
				want[i] = ref.RunOne(inj)
			}

			for _, ckpt := range []uint64{0, 64, 256, 1024} {
				for _, early := range []bool{false, true} {
					if ckpt == 0 && !early {
						continue // the reference itself
					}
					cfg := legacyConfig()
					cfg.CheckpointCycles = ckpt
					cfg.EarlyExit = early
					p, err := Prepare(mk, cfg)
					if err != nil {
						t.Fatal(err)
					}
					arena := p.NewArena()
					for i, inj := range p.Injections() {
						got, err := p.RunOneArena(context.Background(), inj, arena)
						if err != nil {
							t.Fatal(err)
						}
						if got != want[i] {
							t.Fatalf("ckpt=%d early=%v injection %d: got %+v, want %+v",
								ckpt, early, i, got, want[i])
						}
					}
					pf := p.Perf()
					// ckpt=1024 exceeds the 500-cycle spread, so no
					// checkpoint fits inside it and every run legitimately
					// forks from the spread start.
					if ckpt != 0 && ckpt < cfg.SpreadCycles && pf.ForkCyclesSaved == 0 {
						t.Errorf("ckpt=%d early=%v: checkpoint forking saved no cycles", ckpt, early)
					}
					if early && pf.EarlyExits == 0 {
						t.Errorf("ckpt=%d early=%v: no run took the reconvergence early-exit", ckpt, early)
					}
				}
			}
		})
	}
}

// TestForkingArenaParallel drives the checkpoint-forked, early-exiting
// path through the worker pool (one snapshot arena per goroutine,
// consecutive forks rebasing the arena across different checkpoint
// origins) and asserts bit-identity with the serial legacy run. The CI
// race job runs this under -race, pinning that checkpoint cores and
// golden digests are safely shared read-only.
func TestForkingArenaParallel(t *testing.T) {
	fh := core.DefaultConfig()
	mk := mkCore(t, "ocean", &fh)

	ref, err := Run(mk, legacyConfig())
	if err != nil {
		t.Fatal(err)
	}

	cfg := legacyConfig()
	cfg.CheckpointCycles = 64
	cfg.EarlyExit = true
	camp, err := RunParallel(context.Background(), mk, cfg, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(camp.Results) != len(ref.Results) {
		t.Fatalf("got %d results, want %d", len(camp.Results), len(ref.Results))
	}
	for i := range ref.Results {
		if camp.Results[i] != ref.Results[i] {
			t.Fatalf("injection %d: got %+v, want %+v", i, camp.Results[i], ref.Results[i])
		}
	}
}
