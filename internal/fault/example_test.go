package fault_test

import (
	"fmt"

	"faulthound/internal/core"
	"faulthound/internal/fault"
	"faulthound/internal/pipeline"
	"faulthound/internal/prog"
	"faulthound/internal/workload"
)

// Example runs a miniature tandem campaign: classify injected faults on
// an unprotected core, then measure how many of the would-be-SDC faults
// FaultHound covers.
func Example() {
	bm, _ := workload.Get("bzip2")
	program := bm.Build(prog.DefaultDataBase, 1)

	mk := func(protected bool) func() *pipeline.Core {
		return func() *pipeline.Core {
			var det *core.FaultHound
			if protected {
				det = core.New(core.DefaultConfig())
			}
			var c *pipeline.Core
			var err error
			if protected {
				c, err = pipeline.New(pipeline.DefaultConfig(1), []*prog.Program{program}, det)
			} else {
				c, err = pipeline.New(pipeline.DefaultConfig(1), []*prog.Program{program}, nil)
			}
			if err != nil {
				panic(err)
			}
			return c
		}
	}

	cfg := fault.DefaultConfig()
	cfg.Injections = 200

	base, err := fault.Run(mk(false), cfg)
	if err != nil {
		panic(err)
	}
	det, err := fault.Run(mk(true), cfg)
	if err != nil {
		panic(err)
	}

	masked, noisy, sdc := base.Classification()
	rep := fault.PairCoverage(base, det)
	fmt.Println("outcomes partition the campaign:", masked+noisy+sdc == cfg.Injections)
	fmt.Println("most faults are masked:", masked > cfg.Injections/2)
	fmt.Println("coverage denominator is the SDC count:", rep.SDCBase == sdc)
	fmt.Println("coverage in range:", rep.Coverage() >= 0 && rep.Coverage() <= 1)
	// Output:
	// outcomes partition the campaign: true
	// most faults are masked: true
	// coverage denominator is the SDC count: true
	// coverage in range: true
}
