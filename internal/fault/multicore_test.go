package fault

import (
	"testing"

	"faulthound/internal/core"
	"faulthound/internal/detect"
	"faulthound/internal/pipeline"
	"faulthound/internal/prog"
	"faulthound/internal/system"
	"faulthound/internal/workload"
)

// mkSystem builds a 2-core machine running the shared-memory parallel
// Ocean, with or without FaultHound per core.
func mkSystem(t *testing.T, protected bool) func() *system.System {
	t.Helper()
	return func() *system.System {
		programs := workload.OceanMP(prog.DefaultDataBase, 9, 4)
		var mk func(int) detect.Detector
		if protected {
			mk = func(int) detect.Detector { return core.New(core.DefaultConfig()) }
		}
		s, err := system.New(system.Config{Cores: 2, Core: pipeline.DefaultConfig(2)}, programs, mk)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
}

func mpConfig() Config {
	cfg := DefaultConfig()
	cfg.Injections = 60
	cfg.WarmupCycles = 8000
	cfg.DetectorWarmupInstr = 50_000
	cfg.MaxCyclesPerRun = 30000
	return cfg
}

func TestSystemCampaignNoopDeterminism(t *testing.T) {
	old := noopInjections
	noopInjections = true
	defer func() { noopInjections = old }()
	camp, err := RunSystem(mkSystem(t, false), mpConfig())
	if err != nil {
		t.Fatal(err)
	}
	m, n, s := camp.Classification()
	if s != 0 {
		t.Fatalf("multicore tandem nondeterminism: %d/%d/%d masked/noisy/sdc", m, n, s)
	}
}

func TestSystemCampaignClassifies(t *testing.T) {
	camp, err := RunSystem(mkSystem(t, false), mpConfig())
	if err != nil {
		t.Fatal(err)
	}
	m, n, s := camp.Classification()
	if m+n+s != mpConfig().Injections {
		t.Fatalf("partition broken: %d/%d/%d", m, n, s)
	}
	if m == 0 {
		t.Fatal("no masked faults at all")
	}
	t.Logf("multicore campaign: %d masked, %d noisy, %d SDC", m, n, s)
}

func TestSystemCampaignPairsWithDetector(t *testing.T) {
	cfg := mpConfig()
	cfg.Injections = 120
	base, err := RunSystem(mkSystem(t, false), cfg)
	if err != nil {
		t.Fatal(err)
	}
	det, err := RunSystem(mkSystem(t, true), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := PairCoverage(base, det)
	if rep.SDCBase == 0 {
		t.Skip("no SDC faults in this small multicore campaign")
	}
	if rep.Coverage() < 0 || rep.Coverage() > 1 {
		t.Fatalf("coverage out of range: %v", rep.Coverage())
	}
	t.Logf("multicore coverage: %.0f%% of %d SDC faults", rep.Coverage()*100, rep.SDCBase)
}
