package fault

import (
	"context"
	"sync"
	"testing"
)

// TestRunParallelMatchesSerial proves the worker pool is a pure
// scheduling change: for any worker count the results are bit-identical
// to the serial runner's.
func TestRunParallelMatchesSerial(t *testing.T) {
	mk := mkCore(t, "bzip2", nil)
	cfg := smallConfig()
	serial, err := Run(mk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4, 8} {
		par, err := RunParallel(context.Background(), mk, cfg, workers, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(par.Results) != len(serial.Results) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(par.Results), len(serial.Results))
		}
		for i := range serial.Results {
			if par.Results[i] != serial.Results[i] {
				t.Fatalf("workers=%d: result %d differs from serial run", workers, i)
			}
		}
	}
}

// TestPreparedSharedState proves the Prepare/RunOne split's contract:
// after preparation, the golden core, hash trace, and detector
// background are read-only, so goroutines sharing one Prepared must
// not race (run with -race) and must reproduce the serial results.
func TestPreparedSharedState(t *testing.T) {
	mk := mkCore(t, "bzip2", nil)
	cfg := smallConfig()
	p, err := Prepare(mk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	injs := p.Injections()
	want := make([]Result, len(injs))
	for i, inj := range injs {
		want[i] = p.RunOne(inj)
	}

	const workers = 8
	got := make([]Result, len(injs))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(injs); i += workers {
				got[i] = p.RunOne(injs[i])
			}
		}(w)
	}
	wg.Wait()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("concurrent result %d differs from serial", i)
		}
	}
}

// TestRunAllCancel checks that a cancelled context aborts the pool with
// ctx.Err instead of hanging or returning partial results as success.
func TestRunAllCancel(t *testing.T) {
	mk := mkCore(t, "bzip2", nil)
	p, err := Prepare(mk, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.RunAll(ctx, 2, nil); err != context.Canceled {
		t.Fatalf("RunAll on cancelled ctx = %v, want context.Canceled", err)
	}
}

// TestPreparedFPRate sanity-checks the golden fault-free FP
// measurement: a baseline core (no detector) has rate zero, and the
// rate is never negative.
func TestPreparedFPRate(t *testing.T) {
	p, err := Prepare(mkCore(t, "bzip2", nil), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if p.FPRate() != 0 {
		t.Fatalf("baseline FP rate = %v, want 0", p.FPRate())
	}
}
