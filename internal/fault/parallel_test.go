package fault

import (
	"context"
	"sync"
	"testing"
	"time"

	"faulthound/internal/core"
)

// TestRunParallelMatchesSerial proves the worker pool is a pure
// scheduling change: for any worker count the results are bit-identical
// to the serial runner's.
func TestRunParallelMatchesSerial(t *testing.T) {
	mk := mkCore(t, "bzip2", nil)
	cfg := smallConfig()
	serial, err := Run(mk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4, 8} {
		par, err := RunParallel(context.Background(), mk, cfg, workers, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(par.Results) != len(serial.Results) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(par.Results), len(serial.Results))
		}
		for i := range serial.Results {
			if par.Results[i] != serial.Results[i] {
				t.Fatalf("workers=%d: result %d differs from serial run", workers, i)
			}
		}
	}
}

// TestPreparedSharedState proves the Prepare/RunOne split's contract:
// after preparation, the golden core, hash trace, and detector
// background are read-only, so goroutines sharing one Prepared must
// not race (run with -race) and must reproduce the serial results.
func TestPreparedSharedState(t *testing.T) {
	mk := mkCore(t, "bzip2", nil)
	cfg := smallConfig()
	p, err := Prepare(mk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	injs := p.Injections()
	want := make([]Result, len(injs))
	for i, inj := range injs {
		want[i] = p.RunOne(inj)
	}

	const workers = 8
	got := make([]Result, len(injs))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(injs); i += workers {
				got[i] = p.RunOne(injs[i])
			}
		}(w)
	}
	wg.Wait()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("concurrent result %d differs from serial", i)
		}
	}
}

// TestRunAllCancel checks that a cancelled context aborts the pool with
// ctx.Err instead of hanging or returning partial results as success.
func TestRunAllCancel(t *testing.T) {
	mk := mkCore(t, "bzip2", nil)
	p, err := Prepare(mk, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.RunAll(ctx, 2, nil); err != context.Canceled {
		t.Fatalf("RunAll on cancelled ctx = %v, want context.Canceled", err)
	}
}

// TestRunOneCtxPromptCancel checks that cancellation lands inside a
// single injection, not only at the next descriptor boundary: an
// injection whose clone-advance phase would run for ~2^40 cycles must
// abort within the poll interval once the context is cancelled.
func TestRunOneCtxPromptCancel(t *testing.T) {
	p, err := Prepare(mkCore(t, "bzip2", nil), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	long := p.Injections()[0]
	long.CycleOffset = 1 << 40 // days of simulation if not cancelled
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := p.RunOneCtx(ctx, long)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the run get deep into the injection
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("RunOneCtx = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("RunOneCtx did not return promptly after cancel")
	}
}

// TestRunOneCtxMatchesRunOne: the cancellation poll is pure control
// flow — an uncancelled RunOneCtx returns exactly RunOne's result.
func TestRunOneCtxMatchesRunOne(t *testing.T) {
	p, err := Prepare(mkCore(t, "bzip2", nil), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, inj := range p.Injections()[:8] {
		got, err := p.RunOneCtx(context.Background(), inj)
		if err != nil {
			t.Fatal(err)
		}
		if want := p.RunOne(inj); got != want {
			t.Fatalf("RunOneCtx = %+v, want %+v", got, want)
		}
	}
}

// TestPreparedFPRate sanity-checks the golden fault-free FP
// measurement: a baseline core (no detector) has rate zero, and the
// rate is never negative.
func TestPreparedFPRate(t *testing.T) {
	p, err := Prepare(mkCore(t, "bzip2", nil), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if p.FPRate() != 0 {
		t.Fatalf("baseline FP rate = %v, want 0", p.FPRate())
	}
}

// TestRunOneArenaMatchesRunOne proves the snapshot arena is a pure
// allocation-profile change: a reused arena must reproduce the
// deep-clone results bit-for-bit across many injections, including a
// detector-equipped campaign (exercising the in-place detector clone).
func TestRunOneArenaMatchesRunOne(t *testing.T) {
	fh := core.DefaultConfig()
	for _, det := range []*core.Config{nil, &fh} {
		p, err := Prepare(mkCore(t, "bzip2", det), smallConfig())
		if err != nil {
			t.Fatal(err)
		}
		arena := p.NewArena()
		for i, inj := range p.Injections()[:24] {
			got, err := p.RunOneArena(context.Background(), inj, arena)
			if err != nil {
				t.Fatal(err)
			}
			if want := p.RunOne(inj); got != want {
				t.Fatalf("det=%v inj %d: arena = %+v, want %+v", det != nil, i, got, want)
			}
		}
	}
}

// TestArenaSurvivesCampaignSwitch: a campaign worker's arena outlives
// cell boundaries — reusing one arena across two different prepared
// golden runs (different benchmark, detector present vs absent) must
// fall back to fresh allocation, not corrupt results.
func TestArenaSurvivesCampaignSwitch(t *testing.T) {
	fh := core.DefaultConfig()
	pa, err := Prepare(mkCore(t, "bzip2", &fh), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	pb, err := Prepare(mkCore(t, "mcf", nil), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	arena := pa.NewArena()
	for round := 0; round < 3; round++ {
		for _, p := range []*Prepared{pa, pb} {
			inj := p.Injections()[round]
			got, err := p.RunOneArena(context.Background(), inj, arena)
			if err != nil {
				t.Fatal(err)
			}
			if want := p.RunOne(inj); got != want {
				t.Fatalf("round %d: arena after switch = %+v, want %+v", round, got, want)
			}
		}
	}
}
