package fault

import (
	"fmt"

	"faulthound/internal/stats"
	"faulthound/internal/system"
)

// RunSystem runs a fault-injection campaign on a whole multicore
// machine — the paper's methodology for the multithreaded benchmarks,
// where "faults are injected in all the cores, each of which runs two
// threads". Injections distribute uniformly across cores; the tandem
// comparison covers the shared memory and every hardware thread's live
// architectural registers, clocked by core 0 / thread 0's commit count.
//
// mk must build a fresh, deterministic machine.
func RunSystem(mk func() *system.System, cfg Config) (*Campaign, error) {
	injs := DrawInjections(cfg)

	golden := mk()
	golden.WarmDetectors(cfg.DetectorWarmupInstr)
	golden.Run(cfg.WarmupCycles)
	if golden.AllHalted() {
		return nil, fmt.Errorf("fault: golden system halted during warmup")
	}
	if exc, msg := golden.AnyExcepted(); exc {
		return nil, fmt.Errorf("fault: golden system excepted during warmup: %s", msg)
	}

	// Golden hash trace, keyed by core-0/thread-0 commit count.
	gold := golden.Clone()
	hashes := make(map[uint64]uint64)
	hashes[gold.Core(0).Committed(0)] = gold.ArchHash()
	gold.Core(0).SetCommitHook(func(tid int, count uint64) {
		if tid == 0 {
			hashes[count] = gold.ArchHash()
		}
	})
	for i := uint64(0); i < cfg.SpreadCycles; i++ {
		gold.Step()
	}
	maxInjCount := gold.Core(0).Committed(0)
	target := maxInjCount + cfg.WindowInstr + 64
	for gold.Core(0).Committed(0) < target && !gold.AllHalted() {
		gold.Step()
	}

	camp := &Campaign{Config: cfg, Results: make([]Result, 0, len(injs))}
	for _, inj := range injs {
		camp.Results = append(camp.Results, runOneSystem(golden, inj, cfg, hashes))
	}
	return camp, nil
}

// runOneSystem is the per-injection tandem step for a multicore
// machine.
func runOneSystem(golden *system.System, inj Injection, cfg Config, goldenHash map[uint64]uint64) Result {
	f := golden.Clone()
	for i := uint64(0); i < inj.CycleOffset; i++ {
		f.Step()
	}
	// Choose the victim core deterministically from the site seed, then
	// inject into it with the standard site logic.
	rng := stats.NewRNG(inj.SiteSeed ^ 0xc0e)
	victim := f.Core(rng.Intn(f.Cores()))
	applyInjection(victim, inj)

	ps0 := aggregateFaultStats(f)

	injCount := f.Core(0).Committed(0)
	target := injCount + cfg.WindowInstr
	done := false
	var hash uint64
	f.Core(0).SetCommitHook(func(tid int, count uint64) {
		if tid == 0 && count == target {
			done = true
			hash = f.ArchHash()
		}
	})

	res := Result{Injection: inj}
	var cycles uint64
	for !done {
		if cycles >= cfg.MaxCyclesPerRun || f.AllHalted() {
			break
		}
		f.Step()
		cycles++
	}

	ps := aggregateFaultStats(f)
	res.Detected = ps > ps0

	if exc, _ := f.AnyExcepted(); exc {
		res.Outcome = Noisy
		return res
	}
	if !done {
		res.Outcome = Noisy
		res.Hung = true
		return res
	}
	if want, ok := goldenHash[target]; ok && hash == want {
		res.Outcome = Masked
	} else {
		res.Outcome = SDC
	}
	return res
}

// aggregateFaultStats sums declared faults across cores.
func aggregateFaultStats(s *system.System) uint64 {
	var n uint64
	for i := 0; i < s.Cores(); i++ {
		n += s.Core(i).Stats().FaultsDeclared
	}
	return n
}
