package fault

// Bin categorizes what happened to an SDC fault under a detection
// scheme — the Figure-11 breakdown.
type Bin uint8

// Figure-11 categories.
const (
	// Covered: the scheme corrected the fault (state matched golden) or
	// detected it (declared a fault).
	Covered Bin = iota
	// SecondLevelMasked: a trigger occurred but the second-level filter
	// suppressed it — the deliberate coverage cost of reducing false
	// positives (Section 3.2).
	SecondLevelMasked
	// CompletedReg: a register-file fault triggered a replay, but the
	// corrupted producer had left the delay buffer (completed or
	// committed register) so replay could not correct it.
	CompletedReg
	// UncoveredRename: a rename-table fault the squash mechanism did
	// not catch (late reads of faulty tags corrupt state after commit).
	UncoveredRename
	// NoTrigger: the fault stayed inside every filter's neighborhood
	// ("changing" bit positions), so no trigger ever fired.
	NoTrigger
	// Other: remaining uncovered faults.
	Other

	numBins
)

// String names the bin.
func (b Bin) String() string {
	switch b {
	case Covered:
		return "covered"
	case SecondLevelMasked:
		return "2nd-level-masked"
	case CompletedReg:
		return "completed-reg"
	case UncoveredRename:
		return "uncovered-rename"
	case NoTrigger:
		return "no-trigger"
	case Other:
		return "other"
	}
	return "?"
}

// BinNames lists every bin in display order.
func BinNames() []Bin {
	return []Bin{Covered, SecondLevelMasked, CompletedReg, UncoveredRename, NoTrigger, Other}
}

// CoverageReport pairs a baseline (no-detector) campaign with a
// detector campaign, injection by injection.
type CoverageReport struct {
	// SDCBase counts faults that are SDC without any protection — the
	// coverage denominator.
	SDCBase int
	// CoveredCount counts SDC-base faults the scheme corrected or
	// detected.
	CoveredCount int
	// FalseNoisy counts SDC-base faults that became exceptions under
	// the scheme (counted as covered: the exception is a detection).
	FalseNoisy int
	// Bins is the Figure-11 breakdown over SDC-base faults.
	Bins [numBins]int
}

// Coverage returns covered / SDC-base in [0, 1].
func (r CoverageReport) Coverage() float64 {
	if r.SDCBase == 0 {
		return 0
	}
	return float64(r.CoveredCount) / float64(r.SDCBase)
}

// BinFraction returns the fraction of SDC-base faults in bin b.
func (r CoverageReport) BinFraction(b Bin) float64 {
	if r.SDCBase == 0 {
		return 0
	}
	return float64(r.Bins[b]) / float64(r.SDCBase)
}

// ClassifyPair classifies one (baseline, detector) result pair for the
// same injection descriptor. It returns the Figure-11 bin of the
// detector result and whether the pair counts toward the SDC base (the
// baseline outcome was SDC); the bin is meaningful only when counted.
//
// A fault is Covered when the detector run ends with golden state
// (corrected), a declared fault (detected), or an exception/hang
// (surfaced). Like the paper's tandem methodology, this is a state
// comparison: recovery via the scheme's own recovery machinery is
// credited regardless of which trigger invoked it.
func ClassifyPair(b, d Result) (bin Bin, counted bool) {
	if b.Outcome != SDC {
		return Covered, false // coverage is measured over would-be-SDC faults
	}
	if d.Outcome == Masked || d.Detected || d.Outcome == Noisy {
		return Covered, true
	}
	return classifyUncovered(d), true
}

// PairCoverage builds the coverage report from a baseline campaign (no
// detector) and a detector campaign run with the same Config (hence the
// same injection descriptor stream).
func PairCoverage(base, det *Campaign) CoverageReport {
	var rep CoverageReport
	n := len(base.Results)
	if len(det.Results) < n {
		n = len(det.Results)
	}
	for i := 0; i < n; i++ {
		b, d := base.Results[i], det.Results[i]
		bin, counted := ClassifyPair(b, d)
		if !counted {
			continue
		}
		rep.SDCBase++
		rep.Bins[bin]++
		if bin == Covered {
			rep.CoveredCount++
			if d.Outcome == Noisy {
				// Counted as covered: the exception is a detection.
				rep.FalseNoisy++
			}
		}
	}
	return rep
}

// classifyUncovered assigns an uncovered SDC fault to its Figure-11
// category from the detector-run evidence.
func classifyUncovered(d Result) Bin {
	switch {
	case d.Injection.Structure == RenameTable:
		return UncoveredRename
	case d.Triggers == 0:
		return NoTrigger
	case d.Suppressed > 0 && d.Replays == 0 && d.Rollbacks == 0 && d.Singletons == 0:
		return SecondLevelMasked
	case d.Injection.Structure == RegFile && (d.Replays > 0 || d.Singletons > 0):
		return CompletedReg
	default:
		return Other
	}
}
