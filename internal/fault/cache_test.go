package fault

import (
	"sync"
	"sync/atomic"
	"testing"

	"faulthound/internal/pipeline"
)

// TestPreparedCacheSharesPreparation: one Prepare per key, the same
// *Prepared pointer for every caller, distinct entries per key.
func TestPreparedCacheSharesPreparation(t *testing.T) {
	cache := NewPreparedCache()
	cfg := smallConfig()
	mk := mkCore(t, "bzip2", nil)
	// Prepare calls the core constructor exactly once, so counting
	// constructor calls counts golden-run preparations.
	var builds atomic.Int32
	counted := func() *pipeline.Core {
		builds.Add(1)
		return mk()
	}

	key := PreparedKey{Bench: "bzip2", Scheme: "baseline", Cfg: cfg}
	const callers = 8
	got := make([]*Prepared, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := cache.Get(key, counted)
			if err != nil {
				t.Error(err)
				return
			}
			got[i] = p
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if got[i] != got[0] {
			t.Fatal("cache returned distinct Prepared values for one key")
		}
	}
	if n := builds.Load(); n != 1 {
		t.Fatalf("prepared %d times for one key, want 1", n)
	}
	if cache.Len() != 1 {
		t.Fatalf("cache has %d entries, want 1", cache.Len())
	}
	// Exactly one caller created the entry; the other seven reused it.
	if hits, misses := cache.Stats(); hits != callers-1 || misses != 1 {
		t.Fatalf("stats = %d hits / %d misses, want %d / 1", hits, misses, callers-1)
	}

	// A different config is a different cell.
	other := key
	other.Cfg.Seed++
	p2, err := cache.Get(other, mk)
	if err != nil {
		t.Fatal(err)
	}
	if p2 == got[0] {
		t.Fatal("different keys shared one Prepared")
	}
	if cache.Len() != 2 {
		t.Fatalf("cache has %d entries, want 2", cache.Len())
	}
	if hits, misses := cache.Stats(); hits != callers-1 || misses != 2 {
		t.Fatalf("stats after second key = %d hits / %d misses, want %d / 2", hits, misses, callers-1)
	}

	// A repeat Get on the second key is a pure hit.
	if _, err := cache.Get(other, mk); err != nil {
		t.Fatal(err)
	}
	if hits, misses := cache.Stats(); hits != callers || misses != 2 {
		t.Fatalf("stats after repeat = %d hits / %d misses, want %d / 2", hits, misses, callers)
	}
}
