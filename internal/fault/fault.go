// Package fault implements the paper's fault-injection methodology
// (Section 4): tandem golden/faulty simulation with single-bit flips
// into the physical register file (emulating back-end control and
// datapath faults), the load-store queue, and the rename table, in
// McPAT-derived area proportions (front-end 20%, back-end 80% of which
// LSQ 8%). A fault is classified after a run window of committed
// instructions by comparing architectural state against the golden run:
// a differing exception stream is "noisy", identical state is "masked",
// and the rest is silent data corruption (SDC) — the faults the
// detection schemes are measured on.
package fault

import (
	"context"
	"fmt"
	"strconv"
	"sync/atomic"

	"faulthound/internal/detect"
	"faulthound/internal/isa"
	"faulthound/internal/obs"
	"faulthound/internal/pipeline"
	"faulthound/internal/stats"
)

// Structure identifies the injected structure.
type Structure uint8

// Injection structures (Section 4).
const (
	RegFile Structure = iota
	RenameTable
	LSQ
)

// String names the structure.
func (s Structure) String() string {
	switch s {
	case RegFile:
		return "regfile"
	case RenameTable:
		return "rename"
	case LSQ:
		return "lsq"
	}
	return "?"
}

// Outcome is the architectural consequence of one injected fault.
type Outcome uint8

// Fault outcomes (Figure 7 categories).
const (
	// Masked: state after the run window equals the golden run's.
	Masked Outcome = iota
	// Noisy: the fault raised a translation exception (or hung the
	// pipeline, detectable by a watchdog) — detected "for free".
	Noisy
	// SDC: silent data corruption — state differs with no exception.
	SDC
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case Masked:
		return "masked"
	case Noisy:
		return "noisy"
	case SDC:
		return "sdc"
	}
	return "?"
}

// Config parameterizes a campaign. The paper injects 15,000 faults per
// run; the default here is scaled down for tractable reproduction and
// can be raised.
type Config struct {
	// Injections is the number of single-bit faults.
	Injections int
	// WarmupCycles runs the golden core before the injection region
	// (cache and filter warmup, Table 1's warmup role).
	WarmupCycles uint64
	// SpreadCycles is the injection window: each fault lands at a
	// uniformly random cycle within this many cycles after warmup (the
	// paper uses a 500-cycle period).
	SpreadCycles uint64
	// WindowInstr is the run window after injection before state
	// comparison (the paper uses 1000 instructions).
	WindowInstr uint64
	// FrontEndPct and LSQPct set the injection proportions; the
	// remainder goes to the register file. Paper: 20% front end, 8%
	// LSQ (of the total), 72% register file.
	FrontEndPct float64
	LSQPct      float64
	// InFlightBias is the fraction of register-file-class injections
	// directed at in-flight destination registers. The paper injects
	// into the register file to "also emulate faults in the back-end
	// control and datapath" — faults in FU outputs and bypass latches
	// land on young, in-flight values, which is what this bias models.
	InFlightBias float64
	// DetectorWarmupInstr fast-forwards the detector's filters over the
	// architectural value stream before the timing warmup (standing in
	// for the paper's 50M-instruction runs, which saturate the filter
	// state machines).
	DetectorWarmupInstr uint64
	// MaxCyclesPerRun bounds each faulty run (hang watchdog).
	MaxCyclesPerRun uint64
	// Seed drives every random choice; identical seeds give identical
	// injection descriptor streams across schemes, pairing campaigns.
	Seed uint64

	// CheckpointCycles snapshots the golden trace every this-many
	// cycles during Prepare; each faulty run then forks from the
	// nearest checkpoint at or before its injection cycle instead of
	// fast-forwarding from the spread-window start. 0 disables
	// checkpoint forking. Results are bit-identical for every setting —
	// only the fork distance (and Prepare's memory footprint) changes.
	//
	// Execution-strategy knob, not a campaign parameter: excluded from
	// JSON so spec hashes, manifests, and journals are unaffected.
	CheckpointCycles uint64 `json:"-"`
	// EarlyExit enables reconvergence early-exit (divergence-bounded
	// replay): a faulty run is classified Masked as soon as its state
	// provably reconverges with the recorded golden trace, without
	// simulating the rest of the window. Bit-identical to the full run
	// by construction (see pipeline.StateDigest). Same JSON exclusion
	// as CheckpointCycles.
	EarlyExit bool `json:"-"`
}

// DefaultConfig returns the paper's parameters with a scaled-down
// injection count.
func DefaultConfig() Config {
	return Config{
		Injections:          400,
		WarmupCycles:        100000,
		SpreadCycles:        500,
		WindowInstr:         1000,
		FrontEndPct:         0.20,
		LSQPct:              0.08,
		InFlightBias:        0.4,
		DetectorWarmupInstr: 1_000_000,
		MaxCyclesPerRun:     60000,
		Seed:                0xfa17,
		CheckpointCycles:    64,
		EarlyExit:           true,
	}
}

// Injection is one pre-drawn fault descriptor. Drawing all descriptors
// from the seed up front (independent of simulator state) keeps
// campaigns with different detectors paired injection-by-injection.
type Injection struct {
	Structure   Structure
	CycleOffset uint64
	Bit         uint
	// InFlight directs a register-file fault at an in-flight
	// destination register (datapath emulation) instead of an arbitrary
	// allocated register.
	InFlight bool
	// SiteSeed selects the concrete site (which register, LSQ entry,
	// or RAT entry) among the candidates alive at injection time.
	SiteSeed uint64
}

// DrawInjections derives the descriptor list from cfg.
func DrawInjections(cfg Config) []Injection {
	rng := stats.NewRNG(cfg.Seed)
	out := make([]Injection, cfg.Injections)
	for i := range out {
		inj := Injection{
			CycleOffset: rng.Uint64n(cfg.SpreadCycles),
			Bit:         uint(rng.Intn(64)),
			SiteSeed:    rng.Uint64(),
		}
		p := rng.Float64()
		switch {
		case p < cfg.FrontEndPct:
			inj.Structure = RenameTable
		case p < cfg.FrontEndPct+cfg.LSQPct:
			inj.Structure = LSQ
		default:
			inj.Structure = RegFile
			inj.InFlight = rng.Bool(cfg.InFlightBias)
		}
		out[i] = inj
	}
	return out
}

// Result records one injected fault's consequence.
type Result struct {
	Injection Injection
	Outcome   Outcome
	// Hung marks a watchdog timeout (folded into Noisy).
	Hung bool
	// Detected is true when the detector declared a fault (the
	// singleton comparison of Section 3.5) during the window.
	Detected bool
	// Detector activity over the window in EXCESS of the golden run's
	// background (false-positive) activity over the same commit range —
	// the activity attributable to the fault, for the Figure-11
	// breakdown. Clamped at zero.
	Triggers, Suppressed, Replays, Rollbacks, Singletons uint64
}

// sub returns a-b clamped at zero.
func sub(a, b uint64) uint64 {
	if a < b {
		return 0
	}
	return a - b
}

// Campaign is the outcome of one injection campaign.
type Campaign struct {
	Config  Config
	Results []Result
}

// Classification returns the Figure-7 fractions.
func (c *Campaign) Classification() (masked, noisy, sdc int) {
	for _, r := range c.Results {
		switch r.Outcome {
		case Masked:
			masked++
		case Noisy:
			noisy++
		case SDC:
			sdc++
		}
	}
	return
}

// Prepared is a fault campaign after golden-run preparation: the
// warmed golden core, the golden architectural-hash trace, the
// detector's false-positive background, and (when enabled) the
// golden-checkpoint ring and reconvergence digests. Every field except
// the atomic perf counters is read-only after Prepare returns, so any
// number of goroutines may call RunOne concurrently — each injection
// clones the shared golden core and mutates only its own clone.
type Prepared struct {
	cfg    Config
	injs   []Injection
	golden *pipeline.Core
	// hashes and background are keyed by thread-0 commit count and are
	// never written after Prepare.
	hashes     map[uint64]uint64
	background map[uint64]detect.Stats
	// fpRate is the golden (fault-free) detector action rate over the
	// traced window — the campaign's false-positive measurement, free
	// because the golden run executes the window anyway.
	fpRate float64

	// baseCycle is golden's cycle at the clone point — the origin every
	// injection offset, checkpoint index, and digest index is relative
	// to.
	baseCycle uint64
	// ckpts[j] is a deep clone of the golden trace at baseCycle +
	// (j+1)*cfg.CheckpointCycles; empty when forking is off.
	ckpts []*pipeline.Core
	// digestEvery is the golden-digest cadence in cycles (0 when
	// EarlyExit is off); digests[i] is the golden trace's state at
	// baseCycle + i*digestEvery.
	digestEvery uint64
	digests     []digestRec
	// endRecs maps a thread-0 commit count to the golden trace's state
	// at the end of the cycle that retired it — the extrapolation
	// record an early-exiting run reads its final counters from.
	endRecs map[uint64]endRec

	perf perfCounters
}

// digestRec is one golden reconvergence digest plus the golden
// detector counters at the same cycle. A faulty run that matches all
// three has provably rejoined the golden trajectory.
type digestRec struct {
	pd  pipeline.StateDigest
	det detect.Stats
	fd  uint64 // pipeline Stats.FaultsDeclared
}

// endRec is the golden trace's state at the end of the cycle that
// retired a given thread-0 commit: the cycle itself (for the hang
// predicate) and the counters a converged run will end the window
// with.
type endRec struct {
	cycle uint64
	det   detect.Stats
	fd    uint64
}

// digestCadence is how many cycles apart golden reconvergence digests
// are recorded. Smaller catches reconvergence sooner (more window
// cycles saved) but costs more Prepare time and memory; 16 keeps the
// added golden-trace work under a few percent while bounding the
// post-reconvergence overshoot to 15 cycles.
const digestCadence = 16

// Prepare performs the golden-run phase of a campaign: detector
// fast-forward, pipeline warmup, and the golden hash/background trace
// over the injection spread plus run window. mk must build a fresh,
// deterministic core (program + detector). The returned Prepared is
// immutable and safe for concurrent RunOne calls.
func Prepare(mk func() *pipeline.Core, cfg Config) (*Prepared, error) {
	golden := mk()
	golden.WarmDetector(cfg.DetectorWarmupInstr)
	golden.Run(cfg.WarmupCycles)
	if golden.AllHalted() {
		return nil, fmt.Errorf("fault: golden run halted during warmup")
	}
	if exc, msg := golden.Excepted(0); exc {
		return nil, fmt.Errorf("fault: golden run excepted during warmup: %s", msg)
	}

	// Record, at every commit count the faulty runs can target, the
	// golden architectural hash and the golden detector counters (the
	// false-positive background against which fault-attributable
	// activity is measured). The trace runs on a throwaway clone so the
	// shared golden core itself is never stepped — and therefore never
	// mutated — after this function returns.
	gold := golden.Clone()
	p := &Prepared{
		cfg:        cfg,
		injs:       DrawInjections(cfg),
		golden:     golden,
		hashes:     make(map[uint64]uint64),
		background: make(map[uint64]detect.Stats),
		baseCycle:  golden.Cycle(),
	}
	hashes, background := p.hashes, p.background
	// pendingCommits collects the thread-0 commit counts retired inside
	// the cycle being stepped; the step helper drains them into endRecs
	// once the cycle finishes, so each record carries true end-of-cycle
	// counters (commit-hook counters are mid-cycle: later commits and
	// completion checks in the same cycle still move them).
	var pendingCommits []uint64
	gold.SetCommitHook(func(tid int, count uint64) {
		if tid == 0 {
			hashes[count] = gold.ArchHash(0)
			if d := gold.Detector(); d != nil {
				background[count] = d.Stats()
			}
			pendingCommits = append(pendingCommits, count)
		}
	})
	// Anchor the background at the clone point so injections at offset
	// zero (injCount == warmup commit count) subtract correctly.
	hashes[golden.Committed(0)] = golden.ArchHash(0)
	if d := golden.Detector(); d != nil {
		background[golden.Committed(0)] = d.Stats()
	}
	if cfg.EarlyExit {
		p.digestEvery = digestCadence
		p.endRecs = make(map[uint64]endRec)
		p.digests = append(p.digests, digestRec{
			pd:  gold.CaptureDigest(),
			det: gold.DetectorStats(),
			fd:  gold.Stats().FaultsDeclared,
		})
	}
	// step advances the golden trace one cycle and records the
	// reconvergence bookkeeping at end-of-cycle boundaries: a digest
	// every digestCadence cycles, an endRec per retired instruction,
	// and a deep checkpoint every CheckpointCycles cycles inside the
	// injection spread.
	step := func() {
		gold.Step()
		off := gold.Cycle() - p.baseCycle
		if p.digestEvery != 0 {
			if off%p.digestEvery == 0 {
				p.digests = append(p.digests, digestRec{
					pd:  gold.CaptureDigest(),
					det: gold.DetectorStats(),
					fd:  gold.Stats().FaultsDeclared,
				})
			}
			for _, cnt := range pendingCommits {
				p.endRecs[cnt] = endRec{
					cycle: gold.Cycle(),
					det:   gold.DetectorStats(),
					fd:    gold.Stats().FaultsDeclared,
				}
			}
		}
		pendingCommits = pendingCommits[:0]
		if n := cfg.CheckpointCycles; n != 0 && off%n == 0 && off+1 <= cfg.SpreadCycles {
			p.ckpts = append(p.ckpts, gold.Clone())
		}
	}
	ds0 := gold.DetectorStats()
	commits0 := gold.Committed(0)
	for i := uint64(0); i < cfg.SpreadCycles; i++ {
		step()
	}
	maxInjCount := gold.Committed(0)
	target := maxInjCount + cfg.WindowInstr + 64
	for gold.Committed(0) < target && !gold.AllHalted() {
		step()
	}
	if exc, msg := gold.Excepted(0); exc {
		return nil, fmt.Errorf("fault: golden run excepted in window: %s", msg)
	}
	ds := gold.DetectorStats()
	if commits := gold.Committed(0) - commits0; commits > 0 {
		p.fpRate = float64(ds.Replays+ds.Rollbacks+ds.Singletons-
			ds0.Replays-ds0.Rollbacks-ds0.Singletons) / float64(commits)
	}
	// Every fork origin is frozen from here on; anchor them all to the
	// spread-start snapshot so a worker's per-run hierarchy restore
	// rewrites only the L2 lines its last window touched instead of the
	// whole tag store (mem.Cache.SetBaseline).
	p.golden.SetCloneBaseline(p.golden)
	for _, ck := range p.ckpts {
		ck.SetCloneBaseline(p.golden)
	}
	return p, nil
}

// Config returns the campaign configuration.
func (p *Prepared) Config() Config { return p.cfg }

// Injections returns the pre-drawn descriptor list. The slice is shared
// and must not be modified.
func (p *Prepared) Injections() []Injection { return p.injs }

// FPRate returns the golden run's fault-free detector action rate
// (replays + rollbacks + singletons per committed instruction) over the
// traced window.
func (p *Prepared) FPRate() float64 { return p.fpRate }

// NewArena returns a snapshot arena for this campaign's golden core.
// An arena makes successive runs on the same goroutine nearly
// allocation-free: the faulty core's containers, detector tables, and
// cache tags are rebuilt in place, and its memory is a copy-on-write
// overlay over the immutable golden image instead of an eager copy.
// Each arena serves one goroutine at a time; give every worker its
// own.
func (p *Prepared) NewArena() *pipeline.SnapshotArena {
	return pipeline.NewSnapshotArena()
}

// Perf aggregates the replay-acceleration effect over every run so far
// on one Prepared: how much pre-injection fast-forwarding checkpoint
// forking removed and how many runs reconvergence early-exit cut
// short.
type Perf struct {
	// Runs is the number of completed (uncancelled) injection runs.
	Runs uint64
	// EarlyExits counts runs classified by reconvergence early-exit.
	EarlyExits uint64
	// ForkCyclesSaved is the total pre-injection cycles not simulated
	// because runs forked from a checkpoint; OffsetCycles is the total
	// they would have simulated from the spread start.
	ForkCyclesSaved uint64
	OffsetCycles    uint64
}

// EarlyExitFrac returns the fraction of runs ended by reconvergence
// early-exit.
func (pf Perf) EarlyExitFrac() float64 {
	if pf.Runs == 0 {
		return 0
	}
	return float64(pf.EarlyExits) / float64(pf.Runs)
}

// ForkSavedFrac returns the fraction of pre-injection fast-forward
// cycles eliminated by checkpoint forking.
func (pf Perf) ForkSavedFrac() float64 {
	if pf.OffsetCycles == 0 {
		return 0
	}
	return float64(pf.ForkCyclesSaved) / float64(pf.OffsetCycles)
}

// perfCounters is Perf's concurrent-update form: RunOne callers on any
// number of goroutines add to it without coordination.
type perfCounters struct {
	runs            atomic.Uint64
	earlyExits      atomic.Uint64
	forkCyclesSaved atomic.Uint64
	offsetCycles    atomic.Uint64
}

// Perf returns a snapshot of the acceleration counters.
func (p *Prepared) Perf() Perf {
	return Perf{
		Runs:            p.perf.runs.Load(),
		EarlyExits:      p.perf.earlyExits.Load(),
		ForkCyclesSaved: p.perf.forkCyclesSaved.Load(),
		OffsetCycles:    p.perf.offsetCycles.Load(),
	}
}

// RunOne executes one injection: it clones the shared golden core,
// advances to the injection cycle, flips the bit, runs the window, and
// classifies. Safe to call from multiple goroutines.
func (p *Prepared) RunOne(inj Injection) Result {
	res, _ := p.runOne(nil, inj, nil, nil)
	return res
}

// RunOneCtx is RunOne with prompt cancellation: the faulty run polls
// ctx every cancelPollSteps simulated cycles and aborts mid-injection
// with ctx.Err() instead of running out the window (or the hang
// watchdog) first. An uncancelled call returns exactly RunOne's result
// — the poll is pure control flow.
func (p *Prepared) RunOneCtx(ctx context.Context, inj Injection) (Result, error) {
	return p.runOne(ctx, inj, nil, nil)
}

// RunOneObs is RunOneCtx with injection-lifecycle observability: when
// sink is non-nil the faulty run emits structured events — an
// "inject" instant at the flip (Cycle = injection cycle, Arg = the
// structure), an instant per detector action in the window ("replay",
// "rollback", "singleton"), and a "detect" instant at the first such
// action (Arg = the action kind), from which sinks derive detection
// latency in cycles. A nil sink is exactly RunOneCtx — the disabled
// path costs one pointer test.
func (p *Prepared) RunOneObs(ctx context.Context, inj Injection, sink obs.Sink) (Result, error) {
	return p.runOne(ctx, inj, sink, nil)
}

// RunOneArena is RunOneCtx drawing the faulty core from arena instead
// of a fresh deep clone. Results are bit-identical; only the
// allocation profile changes. The arena must not be shared with a
// concurrent call — one arena per goroutine. A nil arena falls back to
// a deep clone.
func (p *Prepared) RunOneArena(ctx context.Context, inj Injection, arena *pipeline.SnapshotArena) (Result, error) {
	return p.runOne(ctx, inj, nil, arena)
}

// RunOneObsArena is RunOneObs drawing the faulty core from arena; see
// RunOneArena for the sharing rule.
func (p *Prepared) RunOneObsArena(ctx context.Context, inj Injection, sink obs.Sink, arena *pipeline.SnapshotArena) (Result, error) {
	return p.runOne(ctx, inj, sink, arena)
}

// Run executes a campaign serially: mk must build a fresh,
// deterministic core (program + detector); the same mk with the same
// cfg yields identical results. RunParallel produces bit-identical
// results on any worker count.
func Run(mk func() *pipeline.Core, cfg Config) (*Campaign, error) {
	p, err := Prepare(mk, cfg)
	if err != nil {
		return nil, err
	}
	camp := &Campaign{Config: cfg, Results: make([]Result, 0, len(p.injs))}
	for _, inj := range p.injs {
		camp.Results = append(camp.Results, p.RunOne(inj))
	}
	return camp, nil
}

// cancelPollSteps is how many simulated cycles a faulty run advances
// between context polls in runOne. Small enough that cancellation
// lands well inside one injection (a hung run is MaxCyclesPerRun
// cycles), large enough that the poll is free.
const cancelPollSteps = 512

// pollCancel is the shared cancellation poll of runOne's fast-forward
// and window loops: every cancelPollSteps iterations it surfaces ctx's
// error so a run aborts mid-injection instead of running out the
// window. A nil ctx disables polling; an uncancelled run is untouched
// — the poll is pure control flow.
func pollCancel(ctx context.Context, i uint64) error {
	if ctx != nil && i%cancelPollSteps == 0 {
		return ctx.Err()
	}
	return nil
}

// actionTracer forwards the faulty run's detector actions (replay,
// rollback, singleton) to an obs sink and marks the first one — the
// detection point — with a "detect" instant. It is attached to the
// clone only when a sink is present, so untraced runs never pay for
// it.
type actionTracer struct {
	sink     obs.Sink
	detected bool
}

// Trace implements pipeline.Tracer.
func (t *actionTracer) Trace(ev pipeline.TraceEvent) {
	switch ev.Stage {
	case pipeline.TraceReplay, pipeline.TraceRollback, pipeline.TraceSingleton:
	default:
		return
	}
	obs.Instant(t.sink, ev.Stage.String(), ev.Cycle, "")
	if !t.detected {
		t.detected = true
		obs.Instant(t.sink, "detect", ev.Cycle, ev.Stage.String())
	}
}

// runOne forks a faulty core off the golden trace (from the nearest
// checkpoint at or before the injection cycle when forking is on),
// advances to the injection cycle, flips the bit, runs the window, and
// classifies — exiting the window early when the faulty state provably
// reconverges with the recorded golden trace. Every Prepared field it
// reads is immutable; the fork is this call's private mutable state. A
// nil ctx disables cancellation; a nil sink disables lifecycle events;
// a non-nil arena reuses its storage for the faulty core (Snapshot
// falls back to a deep clone when nil).
func (p *Prepared) runOne(ctx context.Context, inj Injection, sink obs.Sink, arena *pipeline.SnapshotArena) (Result, error) {
	cfg := p.cfg

	// Fork from the nearest golden checkpoint at or before the
	// injection cycle: the fast-forward shrinks from O(CycleOffset) to
	// O(CycleOffset mod CheckpointCycles). The checkpoint is a
	// deterministic clone of the same trace the spread-start snapshot
	// would have stepped through, so the forked run is bit-identical.
	origin := p.golden
	forkOff := uint64(0)
	if n := cfg.CheckpointCycles; n != 0 {
		if j := inj.CycleOffset / n; j > 0 && len(p.ckpts) > 0 {
			if j > uint64(len(p.ckpts)) {
				j = uint64(len(p.ckpts))
			}
			origin = p.ckpts[j-1]
			forkOff = j * n
		}
	}
	f := origin.Snapshot(arena)
	for i, ff := uint64(0), inj.CycleOffset-forkOff; i < ff; i++ {
		if err := pollCancel(ctx, i); err != nil {
			return Result{}, err
		}
		f.Step()
	}
	applyInjection(f, inj)
	if sink != nil {
		obs.Instant(sink, "inject", f.Cycle(), inj.Structure.String())
		if forkOff != 0 {
			obs.Instant(sink, "fork", f.Cycle(), strconv.FormatUint(forkOff, 10))
		}
		f.SetTracer(&actionTracer{sink: sink})
	}

	var ds0 detect.Stats
	if d := f.Detector(); d != nil {
		ds0 = d.Stats()
	}
	ps0 := f.Stats()

	injCount := f.Committed(0)
	target := injCount + cfg.WindowInstr
	done := false
	var hash uint64
	// The hash must be captured inside the commit hook — at the exact
	// retirement boundary — to line up with the golden trace, which is
	// recorded the same way (later commits in the same cycle would skew
	// a post-cycle hash).
	f.SetCommitHook(func(tid int, count uint64) {
		if tid == 0 && count == target {
			done = true
			hash = f.ArchHash(0)
		}
	})

	res := Result{Injection: inj}
	start := f.Cycle()
	// Reconvergence early-exit precondition: the golden trace retired
	// this run's target commit at er.cycle, and a run that rejoins the
	// golden trajectory finishes there — so require that a converged
	// run would also have completed under the legacy hang watchdog
	// (er.cycle-start is exactly the legacy loop's completion-cycle
	// test). Then matching a golden digest proves the rest of the
	// window replays the golden trace: the hash comparison at target
	// must come out equal (Masked) and the final counters are the
	// golden trace's own, recorded in er.
	er, erOK := endRec{}, false
	if p.digestEvery != 0 {
		er, erOK = p.endRecs[target]
	}
	canEarly := erOK && er.cycle-start <= cfg.MaxCyclesPerRun
	earlyExit := false
	// Failed reconvergence checks back off exponentially (capped): a
	// run whose divergence is sticky — a flipped stale field that
	// neither propagates nor gets overwritten — would otherwise pay a
	// full structural fold at every digest boundary for its whole
	// window. Backing off is sound because a reconverged clone is the
	// golden trajectory and keeps matching at every later boundary, so
	// a delayed check fires with the identical result.
	nextIdx, stride := uint64(0), uint64(1)
	for !done {
		cyc := f.Cycle()
		if cyc-start >= cfg.MaxCyclesPerRun || f.AllHalted() {
			break
		}
		if err := pollCancel(ctx, cyc-start); err != nil {
			return Result{}, err
		}
		if canEarly && (cyc-p.baseCycle)%p.digestEvery == 0 {
			if idx := (cyc - p.baseCycle) / p.digestEvery; idx >= nextIdx && idx < uint64(len(p.digests)) {
				rec := &p.digests[idx]
				if rec.pd.Cycle == cyc && f.DetectorStats() == rec.det &&
					f.Stats().FaultsDeclared == rec.fd && f.MatchesDigest(&rec.pd) {
					earlyExit = true
					break
				}
				nextIdx = idx + stride
				if stride < 16 {
					stride <<= 1
				}
			}
		}
		f.Step()
	}
	if earlyExit && sink != nil {
		obs.Instant(sink, "early-exit", f.Cycle(), strconv.FormatUint(er.cycle-f.Cycle(), 10))
	}

	if d := f.Detector(); d != nil {
		ds := d.Stats()
		if earlyExit {
			// The run matched the golden digest counters exactly, so its
			// window finishes with exactly the golden trace's end-of-run
			// counters.
			ds = er.det
		}
		// Subtract the golden run's background activity over the same
		// commit range so the counters reflect fault-attributable work.
		var bg detect.Stats
		if b1, ok := p.background[target]; ok {
			b0 := p.background[injCount]
			bg = detect.Stats{
				Triggers:   b1.Triggers - b0.Triggers,
				Suppressed: b1.Suppressed - b0.Suppressed,
				Replays:    b1.Replays - b0.Replays,
				Rollbacks:  b1.Rollbacks - b0.Rollbacks,
				Singletons: b1.Singletons - b0.Singletons,
			}
		}
		res.Triggers = sub(ds.Triggers-ds0.Triggers, bg.Triggers)
		res.Suppressed = sub(ds.Suppressed-ds0.Suppressed, bg.Suppressed)
		res.Replays = sub(ds.Replays-ds0.Replays, bg.Replays)
		res.Rollbacks = sub(ds.Rollbacks-ds0.Rollbacks, bg.Rollbacks)
		res.Singletons = sub(ds.Singletons-ds0.Singletons, bg.Singletons)
	}
	fd := f.Stats().FaultsDeclared
	if earlyExit {
		fd = er.fd
	}
	res.Detected = fd > ps0.FaultsDeclared

	p.perf.runs.Add(1)
	p.perf.forkCyclesSaved.Add(forkOff)
	p.perf.offsetCycles.Add(inj.CycleOffset)

	if earlyExit {
		// Reconverged: the run's remaining trajectory is the golden
		// trace's, whose hash at target equals goldenHash[target] by
		// construction, and which neither excepts nor hangs in the
		// window (Prepare errors out otherwise).
		p.perf.earlyExits.Add(1)
		res.Outcome = Masked
		return res, nil
	}
	if exc, _ := f.Excepted(0); exc {
		res.Outcome = Noisy
		return res, nil
	}
	if !done {
		res.Outcome = Noisy
		res.Hung = true
		return res, nil
	}
	want, ok := p.hashes[target]
	if ok && hash == want {
		res.Outcome = Masked
	} else {
		res.Outcome = SDC
	}
	return res, nil
}

// noopInjections suppresses the actual flip (tandem-determinism test
// hook).
var noopInjections = false

// applyInjection flips the descriptor's bit in the live structure.
// When the preferred structure has no live site (an empty LSQ), the
// fault falls back to the register file, keeping the campaign size
// fixed.
func applyInjection(c *pipeline.Core, inj Injection) {
	if noopInjections {
		return
	}
	rng := stats.NewRNG(inj.SiteSeed)
	switch inj.Structure {
	case RenameTable:
		// Architectural registers r1..r47 (never the zero register).
		r := isa.Reg(1 + rng.Intn(isa.NumArchRegs-1))
		c.FlipRATBit(0, r, inj.Bit)
		return
	case LSQ:
		sites := c.LSQSites()
		if len(sites) > 0 {
			site := sites[rng.Intn(len(sites))]
			field := pipeline.LSQAddr
			if site.IsStore && rng.Bool(0.5) {
				field = pipeline.LSQData
			}
			c.FlipLSQBit(site, field, inj.Bit)
			return
		}
		// fall through to the register file
	}
	// The register-file population is the whole physical file (the
	// paper's Section-4 model): flips in free registers are overwritten
	// at the next allocation and classify as masked. The InFlight share
	// emulates back-end datapath faults by targeting live in-flight
	// destination values instead.
	regs := c.AllRegs()
	if inj.InFlight {
		if inflight := c.InFlightDestRegs(); len(inflight) > 0 {
			regs = inflight
		}
	}
	if len(regs) == 0 {
		return
	}
	c.FlipRegisterBit(regs[rng.Intn(len(regs))], inj.Bit)
}
