package fault

import (
	"context"
	"runtime"
	"sync"

	"faulthound/internal/pipeline"
)

// RunAll executes every injection of the prepared campaign across a
// pool of workers goroutines and returns the results in descriptor
// order. Because each injection's randomness is sealed in its
// descriptor (SiteSeed) and workers share only the read-only golden
// state, the results are bit-identical to Run's for any worker count.
//
// workers <= 0 selects GOMAXPROCS. progress, when non-nil, is invoked
// serially (under the pool's lock) after each completed injection with
// the running completed count and the campaign total. A cancelled ctx
// stops scheduling new injections and returns ctx.Err().
func (p *Prepared) RunAll(ctx context.Context, workers int, progress func(done, total int)) (*Campaign, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(p.injs) && len(p.injs) > 0 {
		workers = len(p.injs)
	}

	results := make([]Result, len(p.injs))
	idx := make(chan int)
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		done int
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One snapshot arena per worker: successive injections on
			// this goroutine rebuild the faulty core in place instead of
			// deep-cloning the golden state each time. Results stay
			// bit-identical (Snapshot is semantically a clone).
			arena := p.NewArena()
			for i := range idx {
				// RunOneArena polls ctx inside the faulty run, so a
				// cancelled campaign returns promptly even when the
				// current injection would otherwise hang until the
				// watchdog (MaxCyclesPerRun cycles away).
				res, err := p.RunOneArena(ctx, p.injs[i], arena)
				if err != nil {
					return
				}
				results[i] = res
				mu.Lock()
				done++
				if progress != nil {
					progress(done, len(p.injs))
				}
				mu.Unlock()
			}
		}()
	}

	var err error
feed:
	for i := range p.injs {
		select {
		case idx <- i:
		case <-ctx.Done():
			err = ctx.Err()
			break feed
		}
	}
	close(idx)
	wg.Wait()
	if err == nil {
		// Cancellation can land after the last index was fed; the
		// workers abort mid-injection and the feed loop never sees it.
		err = ctx.Err()
	}
	if err != nil {
		return nil, err
	}
	return &Campaign{Config: p.cfg, Results: results}, nil
}

// RunParallel is Run with a worker pool: Prepare once, then fan the
// injections across workers goroutines. Results are bit-identical to
// Run's regardless of worker count.
func RunParallel(ctx context.Context, mk func() *pipeline.Core, cfg Config, workers int, progress func(done, total int)) (*Campaign, error) {
	p, err := Prepare(mk, cfg)
	if err != nil {
		return nil, err
	}
	return p.RunAll(ctx, workers, progress)
}
