package fault

import (
	"runtime"
	"testing"

	"faulthound/internal/core"
	"faulthound/internal/pipeline"
	"faulthound/internal/prog"
	"faulthound/internal/workload"
)

// Guard benchmarks for the injection engine's hot path: the per-run
// snapshot (clone) plus the faulty window. Campaign wall time is
// dominated by these, so they are tracked in BENCH_simcore.json via
// scripts/bench.sh (docs/PERFORMANCE.md).

// benchPrepared builds a warmed FaultHound campaign once per benchmark.
func benchPrepared(b *testing.B) *Prepared {
	b.Helper()
	bm, err := workload.Get("bzip2")
	if err != nil {
		b.Fatal(err)
	}
	p := bm.Build(prog.DefaultDataBase, 3)
	fhCfg := core.DefaultConfig()
	mk := func() *pipeline.Core {
		c, err := pipeline.New(pipeline.DefaultConfig(1), []*prog.Program{p}, core.New(fhCfg))
		if err != nil {
			b.Fatal(err)
		}
		return c
	}
	cfg := DefaultConfig()
	cfg.WarmupCycles = 20000
	cfg.DetectorWarmupInstr = 100000
	cfg.MaxCyclesPerRun = 30000
	prep, err := Prepare(mk, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return prep
}

// BenchmarkRunOne measures one complete injection — snapshot of the
// golden core, advance to the fault cycle, flip, run the window,
// classify — exactly as a campaign worker executes it, per-worker
// snapshot arena included. allocs/op here is the per-injection
// overhead that remains after the CoW/arena path.
func BenchmarkRunOne(b *testing.B) {
	p := benchPrepared(b)
	injs := p.Injections()
	arena := p.NewArena()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = p.RunOneArena(nil, injs[i%len(injs)], arena)
	}
}

// BenchmarkRunOneDeepClone is BenchmarkRunOne without the arena — the
// eager deep-clone path — kept as the baseline the arena numbers are
// compared against.
func BenchmarkRunOneDeepClone(b *testing.B) {
	p := benchPrepared(b)
	injs := p.Injections()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.RunOne(injs[i%len(injs)])
	}
}

// BenchmarkPreparedParallel measures sustained injections/sec with a
// full GOMAXPROCS worker pool over one prepared golden run — the
// steady-state regime of fhcampaign and fhserved, one snapshot arena
// per worker goroutine as in fault.RunAll.
func BenchmarkPreparedParallel(b *testing.B) {
	p := benchPrepared(b)
	injs := p.Injections()
	workers := runtime.GOMAXPROCS(0)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		arena := p.NewArena()
		i := 0
		for pb.Next() {
			_, _ = p.RunOneArena(nil, injs[i%len(injs)], arena)
			i++
		}
	})
	b.StopTimer()
	_ = workers
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "inj/s")
	// Acceleration quality ride-alongs, gated next to injections_per_sec
	// in BENCH_simcore.json: the fraction of runs classified at
	// reconvergence, and the fraction of pre-injection fast-forward
	// cycles skipped by checkpoint forking.
	pf := p.Perf()
	b.ReportMetric(pf.EarlyExitFrac(), "early-exit-frac")
	b.ReportMetric(pf.ForkSavedFrac(), "fork-saved-frac")
}
