package fault

import "testing"

// synth builds a paired base/detector campaign from outcome tuples.
func synth(rows []struct {
	base Result
	det  Result
}) (*Campaign, *Campaign) {
	b := &Campaign{}
	d := &Campaign{}
	for _, r := range rows {
		b.Results = append(b.Results, r.base)
		d.Results = append(d.Results, r.det)
	}
	return b, d
}

func TestPairCoverageCountsOnlyBaseSDC(t *testing.T) {
	b, d := synth([]struct {
		base Result
		det  Result
	}{
		{Result{Outcome: Masked}, Result{Outcome: SDC}}, // not SDC-base: ignored
		{Result{Outcome: Noisy}, Result{Outcome: SDC}},  // ignored
		{Result{Outcome: SDC}, Result{Outcome: Masked}}, // covered (corrected)
		{Result{Outcome: SDC}, Result{Outcome: SDC}},    // uncovered
	})
	rep := PairCoverage(b, d)
	if rep.SDCBase != 2 {
		t.Fatalf("SDCBase = %d, want 2", rep.SDCBase)
	}
	if rep.CoveredCount != 1 || rep.Coverage() != 0.5 {
		t.Fatalf("covered = %d, coverage = %v", rep.CoveredCount, rep.Coverage())
	}
}

func TestPairCoverageDetectionCounts(t *testing.T) {
	b, d := synth([]struct {
		base Result
		det  Result
	}{
		// State still corrupt, but the singleton declared the fault:
		// detection counts as coverage.
		{Result{Outcome: SDC}, Result{Outcome: SDC, Detected: true}},
	})
	rep := PairCoverage(b, d)
	if rep.CoveredCount != 1 {
		t.Fatal("declared fault must count as covered")
	}
}

func TestPairCoverageNoisyUnderScheme(t *testing.T) {
	b, d := synth([]struct {
		base Result
		det  Result
	}{
		// The scheme's recovery surfaced the fault as an exception.
		{Result{Outcome: SDC}, Result{Outcome: Noisy}},
	})
	rep := PairCoverage(b, d)
	if rep.CoveredCount != 1 || rep.FalseNoisy != 1 {
		t.Fatalf("covered=%d falseNoisy=%d", rep.CoveredCount, rep.FalseNoisy)
	}
}

func TestClassifyUncoveredBins(t *testing.T) {
	cases := []struct {
		det  Result
		want Bin
	}{
		{Result{Injection: Injection{Structure: RenameTable}}, UncoveredRename},
		{Result{Injection: Injection{Structure: RegFile}}, NoTrigger}, // Triggers == 0
		{Result{Injection: Injection{Structure: RegFile}, Triggers: 3, Suppressed: 3}, SecondLevelMasked},
		{Result{Injection: Injection{Structure: RegFile}, Triggers: 2, Replays: 2}, CompletedReg},
		{Result{Injection: Injection{Structure: LSQ}, Triggers: 1, Rollbacks: 1}, Other},
	}
	for i, c := range cases {
		if got := classifyUncovered(c.det); got != c.want {
			t.Errorf("case %d: bin = %v, want %v", i, got, c.want)
		}
	}
}

func TestBinFractionAndConservation(t *testing.T) {
	b, d := synth([]struct {
		base Result
		det  Result
	}{
		{Result{Outcome: SDC}, Result{Outcome: Masked, Triggers: 1}},
		{Result{Outcome: SDC}, Result{Outcome: SDC, Injection: Injection{Structure: RenameTable}}},
		{Result{Outcome: SDC}, Result{Outcome: SDC}},
	})
	rep := PairCoverage(b, d)
	var sum float64
	total := 0
	for _, bin := range BinNames() {
		sum += rep.BinFraction(bin)
		total += rep.Bins[bin]
	}
	if total != rep.SDCBase {
		t.Fatalf("bins total %d, SDC base %d", total, rep.SDCBase)
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("bin fractions sum to %v", sum)
	}
}

func TestPairCoverageEmpty(t *testing.T) {
	rep := PairCoverage(&Campaign{}, &Campaign{})
	if rep.SDCBase != 0 || rep.Coverage() != 0 || rep.BinFraction(Covered) != 0 {
		t.Fatal("empty pairing should be all zeros")
	}
}

func TestPairCoverageLengthMismatch(t *testing.T) {
	b, _ := synth([]struct {
		base Result
		det  Result
	}{
		{Result{Outcome: SDC}, Result{}},
		{Result{Outcome: SDC}, Result{}},
	})
	d := &Campaign{Results: []Result{{Outcome: Masked, Triggers: 1}}}
	rep := PairCoverage(b, d)
	if rep.SDCBase != 1 {
		t.Fatalf("pairing should truncate to the shorter campaign, got %d", rep.SDCBase)
	}
}
