// Package energy implements the event-based energy model used in place
// of McPAT/CACTI (Section 4 of the paper). Each pipeline, cache, and
// filter event carries a per-access energy in consistent abstract units
// (roughly pJ-class magnitudes at a 32 nm node); the model sums them
// over the counters the simulator collects. The paper's energy claims
// are relative overheads over the no-fault-tolerance baseline, which an
// event model in consistent units reproduces; absolute joules are out
// of scope.
//
// Two analytic helpers mirror CACTI's role: RAMReadEnergy scales a RAM
// read with the square root of capacity (calibrated so a 32 KB array
// costs the model's L1 D access energy — the paper notes PBFS's
// 2K-entry, 32 KB tables cost about an L1 D access), and
// TCAMSearchEnergy scales a ternary search linearly with the searched
// bit count.
package energy

import (
	"math"

	"faulthound/internal/detect"
	"faulthound/internal/isa"
	"faulthound/internal/mem"
	"faulthound/internal/pipeline"
)

// Model holds the per-event energies (abstract units).
type Model struct {
	Fetch          float64 // per fetched instruction (I-cache + decode share)
	Rename         float64 // per dispatched instruction
	IssueOp        float64 // per issued operation (IQ wakeup/select)
	ALUOp          float64
	MulOp          float64
	FPUOp          float64
	RegRead        float64
	RegWrite       float64
	LSQOp          float64 // per load/store completion or commit access
	L1Access       float64
	L2Access       float64
	MemAccess      float64
	CommitOp       float64 // per retired instruction (ROB access)
	StaticPerCycle float64

	ShadowOp float64 // per SRT-iso redundant op (issue+FU+commit bundle)

	// Detector structures.
	TCAMEntries int // for the analytic TCAM search energy
	TCAMBits    int
	TableBytes  int     // PC-indexed filter table size (per table)
	SecondLevel float64 // per trigger, second-level filter access
}

// Default returns the calibrated model.
func Default() Model {
	return Model{
		Fetch:          16,
		Rename:         8,
		IssueOp:        6,
		ALUOp:          10,
		MulOp:          30,
		FPUOp:          25,
		RegRead:        4,
		RegWrite:       6,
		LSQOp:          6,
		L1Access:       20,
		L2Access:       100,
		MemAccess:      400,
		CommitOp:       6,
		StaticPerCycle: 40,
		// A redundant instruction costs a full instruction's dynamic
		// energy (fetch through commit) minus the cache accesses its
		// load-value queue avoids, plus its share of the lengthened
		// occupancy — calibrated so full-redundancy SRT lands at the
		// paper's ~56% energy overhead (Section 1).
		ShadowOp:    90,
		TCAMEntries: 32,
		TCAMBits:    64,
		TableBytes:  2048 * 16, // 2K entries x (64-bit filter + 64-bit prev)
		SecondLevel: 1,
	}
}

// RAMReadEnergy returns the per-read energy of a RAM array of the given
// capacity, calibrated so 32 KB costs the default L1 access energy.
func RAMReadEnergy(sizeBytes int) float64 {
	if sizeBytes <= 0 {
		return 0
	}
	return 20 * math.Sqrt(float64(sizeBytes)/32768)
}

// TCAMSearchEnergy returns the per-search energy of a counting TCAM
// with the given geometry: every entry compares every bit on each
// search (match-line + search-line activity), plus a fixed priority-
// encode term. A 32x64 TCAM costs ~5 units — small next to an L1
// access, which is FaultHound's energy argument for tiny clustered
// filters.
func TCAMSearchEnergy(entries, bits int) float64 {
	return 0.002*float64(entries)*float64(bits) + 1
}

// Breakdown is the per-component energy of one run.
type Breakdown struct {
	Fetch    float64
	Rename   float64
	Issue    float64
	Exec     float64
	RegFile  float64
	LSQ      float64
	Caches   float64
	Commit   float64
	Static   float64
	Shadow   float64
	Detector float64
}

// Total sums all components.
func (b Breakdown) Total() float64 {
	return b.Fetch + b.Rename + b.Issue + b.Exec + b.RegFile + b.LSQ +
		b.Caches + b.Commit + b.Static + b.Shadow + b.Detector
}

// Compute sums the model over one run's counters. ds may be the zero
// value for a detector-less baseline.
func (m Model) Compute(ps pipeline.Stats, ms mem.HierarchyStats, ds detect.Stats) Breakdown {
	var b Breakdown
	b.Fetch = m.Fetch * float64(ps.Fetched)
	b.Rename = m.Rename * float64(ps.Dispatched)
	b.Issue = m.IssueOp * float64(ps.Issued)

	b.Exec = m.ALUOp*float64(ps.IssuedByClass[isa.ClassIntALU]+
		ps.IssuedByClass[isa.ClassBranch]+
		ps.IssuedByClass[isa.ClassLoad]+
		ps.IssuedByClass[isa.ClassStore]+
		ps.IssuedByClass[isa.ClassAtomic]) +
		m.MulOp*float64(ps.IssuedByClass[isa.ClassIntMul]) +
		m.FPUOp*float64(ps.IssuedByClass[isa.ClassFP])

	b.RegFile = m.RegRead*float64(ps.RegReads) + m.RegWrite*float64(ps.RegWrites)
	b.LSQ = m.LSQOp * float64(ps.IssuedByClass[isa.ClassLoad]+
		ps.IssuedByClass[isa.ClassStore]+ps.IssuedByClass[isa.ClassAtomic]+
		ps.Loads+ps.Stores)
	b.Caches = m.L1Access*float64(ms.L1IAccesses+ms.L1DAccesses) +
		m.L2Access*float64(ms.L2Accesses) +
		m.MemAccess*float64(ms.L2Misses)
	b.Commit = m.CommitOp * float64(ps.Committed)
	b.Static = m.StaticPerCycle * float64(ps.Cycles)
	b.Shadow = m.ShadowOp * float64(ps.ShadowOps)

	tcamSearch := TCAMSearchEnergy(m.TCAMEntries, m.TCAMBits)
	tableRead := RAMReadEnergy(m.TableBytes)
	b.Detector = tcamSearch*float64(ds.TCAMSearches+ds.TCAMUpdates) +
		tableRead*float64(ds.TableReads+ds.TableWrites) +
		m.SecondLevel*float64(ds.Triggers)
	return b
}

// Overhead returns (scheme - baseline) / baseline for two totals.
func Overhead(scheme, baseline float64) float64 {
	if baseline == 0 {
		return 0
	}
	return (scheme - baseline) / baseline
}
