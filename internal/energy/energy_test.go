package energy

import (
	"math"
	"testing"

	"faulthound/internal/detect"
	"faulthound/internal/isa"
	"faulthound/internal/mem"
	"faulthound/internal/pipeline"
	"faulthound/internal/prog"
)

func TestRAMReadEnergyCalibration(t *testing.T) {
	// 32 KB is calibrated to the L1 access energy (20 units): the
	// paper's observation that a 2K-entry PBFS table costs about an L1
	// access per lookup.
	if got := RAMReadEnergy(32 << 10); math.Abs(got-20) > 1e-9 {
		t.Fatalf("RAMReadEnergy(32KB) = %v, want 20", got)
	}
	// Sqrt scaling: 4x capacity costs 2x energy.
	if got := RAMReadEnergy(128 << 10); math.Abs(got-40) > 1e-9 {
		t.Fatalf("RAMReadEnergy(128KB) = %v, want 40", got)
	}
	if RAMReadEnergy(0) != 0 {
		t.Fatal("zero capacity should cost nothing")
	}
}

func TestTCAMSearchSmall(t *testing.T) {
	// FaultHound's 32x64 TCAM must be far cheaper per access than the
	// PBFS table — that is the clustering energy argument.
	tcam := TCAMSearchEnergy(32, 64)
	table := RAMReadEnergy(2048 * 16)
	if tcam >= table/3 {
		t.Fatalf("TCAM (%v) should be much cheaper than the 2K table (%v)", tcam, table)
	}
	// Energy grows with geometry.
	if TCAMSearchEnergy(64, 64) <= tcam {
		t.Fatal("bigger TCAM should cost more")
	}
}

func TestComputeComponents(t *testing.T) {
	m := Default()
	var ps pipeline.Stats
	ps.Fetched = 100
	ps.Dispatched = 90
	ps.Issued = 80
	ps.IssuedByClass[isa.ClassIntALU] = 50
	ps.IssuedByClass[isa.ClassIntMul] = 10
	ps.IssuedByClass[isa.ClassFP] = 5
	ps.IssuedByClass[isa.ClassLoad] = 10
	ps.IssuedByClass[isa.ClassStore] = 5
	ps.RegReads = 150
	ps.RegWrites = 70
	ps.Committed = 85
	ps.Loads = 10
	ps.Stores = 5
	ps.Cycles = 60
	var ms mem.HierarchyStats
	ms.L1IAccesses = 30
	ms.L1DAccesses = 15
	ms.L2Accesses = 4
	ms.L2Misses = 1
	var ds detect.Stats
	ds.TCAMSearches = 20
	ds.TCAMUpdates = 20
	ds.Triggers = 2

	b := m.Compute(ps, ms, ds)
	if b.Fetch != 1600 {
		t.Fatalf("fetch = %v", b.Fetch)
	}
	if b.Exec != 10*65+30*10+25*5 {
		t.Fatalf("exec = %v", b.Exec)
	}
	if b.Detector <= 0 {
		t.Fatal("detector energy missing")
	}
	if b.Total() <= b.Fetch {
		t.Fatal("total should include all components")
	}
	// Sum check.
	sum := b.Fetch + b.Rename + b.Issue + b.Exec + b.RegFile + b.LSQ +
		b.Caches + b.Commit + b.Static + b.Shadow + b.Detector
	if math.Abs(sum-b.Total()) > 1e-9 {
		t.Fatal("Total does not equal the sum of components")
	}
}

func TestShadowEnergyCounted(t *testing.T) {
	m := Default()
	var ps pipeline.Stats
	ps.ShadowOps = 1000
	b := m.Compute(ps, mem.HierarchyStats{}, detect.Stats{})
	if b.Shadow != m.ShadowOp*1000 {
		t.Fatalf("shadow = %v", b.Shadow)
	}
}

func TestOverhead(t *testing.T) {
	if got := Overhead(125, 100); math.Abs(got-0.25) > 1e-9 {
		t.Fatalf("Overhead = %v", got)
	}
	if got := Overhead(80, 100); math.Abs(got-(-0.2)) > 1e-9 {
		t.Fatalf("negative overhead = %v, want -0.2", got)
	}
	// Degenerate cells (zero injections, missing baseline) report zero
	// energy; the overhead must stay finite instead of dividing by it.
	if Overhead(1, 0) != 0 || Overhead(0, 0) != 0 {
		t.Fatal("zero baseline should yield 0")
	}
}

// Integration: a real pipeline run yields a sane, positive breakdown,
// and shadow redundancy strictly increases total energy.
func TestEnergyOnRealRun(t *testing.T) {
	p := buildLoop(t)
	run := func(shadow float64) float64 {
		cfg := pipeline.DefaultConfig(1)
		cfg.ShadowRedundancy = shadow
		c, err := pipeline.New(cfg, []*prog.Program{p}, nil)
		if err != nil {
			t.Fatal(err)
		}
		c.Run(1_000_000)
		b := Default().Compute(c.Stats(), c.MemStats(), detect.Stats{})
		if b.Total() <= 0 || b.Fetch <= 0 || b.Caches <= 0 || b.Static <= 0 {
			t.Fatalf("degenerate breakdown: %+v", b)
		}
		return b.Total()
	}
	base := run(0)
	srt := run(1.0)
	if srt <= base {
		t.Fatalf("full redundancy should cost more energy: %v <= %v", srt, base)
	}
	// The paper's SRT energy overhead is large (tens of percent).
	if Overhead(srt, base) < 0.10 {
		t.Fatalf("SRT energy overhead implausibly small: %v", Overhead(srt, base))
	}
}

func buildLoop(t *testing.T) *prog.Program {
	t.Helper()
	b := prog.NewBuilder("eloop", 1024)
	b.MovU64(2, b.DataBase())
	b.MovI(3, 0)
	b.MovI(4, 2000)
	b.Label("loop")
	b.OpI(isa.ANDI, 5, 3, 63)
	b.OpI(isa.SLLI, 5, 5, 3)
	b.Op3(isa.ADD, 5, 2, 5)
	b.Ld(6, 5, 0)
	b.OpI(isa.ADDI, 6, 6, 1)
	b.St(5, 0, 6)
	b.OpI(isa.ADDI, 3, 3, 1)
	b.Br(isa.BLT, 3, 4, "loop")
	b.Halt()
	return b.MustBuild()
}
