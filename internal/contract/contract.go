// Package contract is the versioned artifact-surface layer: JSON-schema
// contracts (v1) for every machine-readable artifact the campaign stack
// emits — a bundle's summary.json and manifest.json, its results.csv
// column layout, the derived report/quality.json, the committed
// BENCH_simcore.json guard numbers, and the golden spec-hash maps —
// plus a validator API and the ValidateBundle entry point the fhreport
// CLI and the CI release gates run. The contracts exist so the layers
// above (distributed fabric, parameter-space search) can evolve without
// silently corrupting the artifact surface; see docs/CONTRACTS.md for
// the compatibility policy.
package contract

import (
	"embed"
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"faulthound/internal/fault"
)

//go:embed schemas/*.schema.json
var schemaFS embed.FS

// Kind names an artifact contract.
type Kind string

// The v1 artifact kinds.
const (
	KindSummary  Kind = "summary"
	KindManifest Kind = "manifest"
	KindBench    Kind = "bench"
	KindQuality  Kind = "quality"
	KindHashes   Kind = "hashes"
	KindPareto   Kind = "pareto"
)

// Schema versions — the $id of each kind's current contract.
const (
	SummaryV1  = "faulthound.summary/v1"
	ManifestV1 = "faulthound.manifest/v1"
	BenchV1    = "faulthound.bench/v1"
	QualityV1  = "faulthound.quality/v1"
	HashesV1   = "faulthound.hashes/v1"
	ParetoV1   = "faulthound.pareto/v1"
)

// ReportDirName is the derived-report subdirectory of a bundle; the
// report files inside it are sidecars — generating them never mutates
// the bundle's own artifacts.
const (
	ReportDirName   = "report"
	QualityJSONName = "quality.json"
	QualityMDName   = "quality.md"
)

var schemas = func() map[Kind]*Schema {
	out := make(map[Kind]*Schema)
	for kind, file := range map[Kind]string{
		KindSummary:  "summary.v1.schema.json",
		KindManifest: "manifest.v1.schema.json",
		KindBench:    "bench.v1.schema.json",
		KindQuality:  "quality.v1.schema.json",
		KindHashes:   "hashes.v1.schema.json",
		KindPareto:   "pareto.v1.schema.json",
	} {
		b, err := schemaFS.ReadFile("schemas/" + file)
		if err != nil {
			panic(fmt.Sprintf("contract: embedded schema %s: %v", file, err))
		}
		var s Schema
		if err := json.Unmarshal(b, &s); err != nil {
			panic(fmt.Sprintf("contract: embedded schema %s: %v", file, err))
		}
		if err := s.compile(); err != nil {
			panic(err.Error())
		}
		out[kind] = &s
	}
	return out
}()

// SchemaFor returns a kind's compiled contract (nil for an unknown
// kind). The returned schema is shared; treat it as read-only.
func SchemaFor(kind Kind) *Schema { return schemas[kind] }

// ValidateJSON checks raw JSON bytes against a kind's contract.
func ValidateJSON(kind Kind, data []byte) error {
	s := schemas[kind]
	if s == nil {
		return fmt.Errorf("contract: unknown artifact kind %q", kind)
	}
	var doc any
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("contract: %s: unparsable JSON: %w", kind, err)
	}
	if vs := s.Validate(doc); len(vs) > 0 {
		msgs := make([]string, len(vs))
		for i, v := range vs {
			msgs[i] = v.String()
		}
		return fmt.Errorf("contract: %s violates %s:\n  %s", kind, s.ID, strings.Join(msgs, "\n  "))
	}
	return nil
}

// ValidateJSONFile reads path and checks it against a kind's contract.
func ValidateJSONFile(kind Kind, path string) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := ValidateJSON(kind, b); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

// SniffKind maps an artifact file name to its contract kind: the bundle
// artifacts by their fixed names, BENCH_simcore.json, quality.json, and
// the *_golden.json spec-hash maps. Unknown names return "" —
// journal.jsonl and report.md deliberately have no JSON contract.
func SniffKind(name string) Kind {
	switch base := filepath.Base(name); {
	case base == "summary.json":
		return KindSummary
	case base == "manifest.json":
		return KindManifest
	case base == QualityJSONName:
		return KindQuality
	case base == "pareto.json":
		return KindPareto
	case strings.HasPrefix(base, "BENCH_"):
		return KindBench
	case strings.HasSuffix(base, "_golden.json"):
		return KindHashes
	}
	return ""
}

// resultsColumns is the results.csv column contract: ordered names and
// cell validators. The CSV layout is append-only — v1 readers key on
// the header, so new columns may only be added at the end (and a new
// column bumps the contract to v2 if existing columns move).
var resultsColumns = []struct {
	name  string
	check func(s string) error
}{
	{"bench", nonEmpty},
	{"scheme", nonEmpty},
	{"index", integer},
	{"structure", enum("regfile", "rename", "lsq")},
	{"bit", integer},
	{"cycle_offset", integer},
	{"in_flight", boolean},
	{"outcome", enum("masked", "noisy", "sdc")},
	{"hung", boolean},
	{"detected", boolean},
	{"triggers", integer},
	{"suppressed", integer},
	{"replays", integer},
	{"rollbacks", integer},
	{"singletons", integer},
	{"bin", binName},
}

func nonEmpty(s string) error {
	if s == "" {
		return errors.New("must be non-empty")
	}
	return nil
}

func integer(s string) error {
	if _, err := strconv.ParseUint(s, 10, 64); err != nil {
		return fmt.Errorf("%q is not a non-negative integer", s)
	}
	return nil
}

func boolean(s string) error {
	if s != "true" && s != "false" {
		return fmt.Errorf("%q is not a boolean", s)
	}
	return nil
}

func enum(vals ...string) func(string) error {
	return func(s string) error {
		for _, v := range vals {
			if s == v {
				return nil
			}
		}
		return fmt.Errorf("%q not in {%s}", s, strings.Join(vals, ", "))
	}
}

// binName admits the empty string (baseline rows, non-SDC-base rows)
// or any Figure-11 bin name.
func binName(s string) error {
	if s == "" {
		return nil
	}
	for _, b := range fault.BinNames() {
		if s == b.String() {
			return nil
		}
	}
	return fmt.Errorf("%q is not a known classification bin", s)
}

// numberCell admits any finite decimal value, signed included —
// overheads and fitness can legitimately be negative.
func numberCell(s string) error {
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return fmt.Errorf("%q is not a number", s)
	}
	if f != f || f > 1.7e308 || f < -1.7e308 {
		return fmt.Errorf("%q is not finite", s)
	}
	return nil
}

// unitInterval admits a number in [0, 1] (coverage fractions).
func unitInterval(s string) error {
	f, err := strconv.ParseFloat(s, 64)
	if err != nil || f < 0 || f > 1 {
		return fmt.Errorf("%q is not a fraction in [0, 1]", s)
	}
	return nil
}

// paretoColumns is the pareto.csv column contract (docs/OPTIMIZE.md):
// one row per evaluated configuration, front members first.
var paretoColumns = []struct {
	name  string
	check func(s string) error
}{
	{"spec", nonEmpty},
	{"front", boolean},
	{"round", integer},
	{"coverage", unitInterval},
	{"fp_rate", numberCell},
	{"energy_overhead", numberCell},
	{"perf_overhead", numberCell},
	{"fitness", numberCell},
}

// ParetoColumns returns the v1 pareto.csv header, in order.
func ParetoColumns() []string {
	out := make([]string, len(paretoColumns))
	for i, c := range paretoColumns {
		out[i] = c.name
	}
	return out
}

// ValidateParetoCSV checks a pareto.csv stream against the column
// contract: exact header, typed cells, and the front-first row
// ordering the artifact promises. It returns the row count (header
// excluded).
func ValidateParetoCSV(r io.Reader) (rows int, err error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(paretoColumns)
	header, err := cr.Read()
	if err != nil {
		return 0, fmt.Errorf("contract: pareto.csv: reading header: %w", err)
	}
	for i, c := range paretoColumns {
		if header[i] != c.name {
			return 0, fmt.Errorf("contract: pareto.csv: column %d is %q, contract wants %q", i, header[i], c.name)
		}
	}
	sawDominated := false
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return rows, nil
		}
		if err != nil {
			return rows, fmt.Errorf("contract: pareto.csv: %w", err)
		}
		rows++
		for i, c := range paretoColumns {
			if err := c.check(rec[i]); err != nil {
				return rows, fmt.Errorf("contract: pareto.csv row %d, column %s: %w", rows, c.name, err)
			}
		}
		if rec[1] == "false" {
			sawDominated = true
		} else if sawDominated {
			return rows, fmt.Errorf("contract: pareto.csv row %d: front row after a dominated row (rows must be front-first)", rows)
		}
	}
}

// ResultsColumns returns the v1 results.csv header, in order.
func ResultsColumns() []string {
	out := make([]string, len(resultsColumns))
	for i, c := range resultsColumns {
		out[i] = c.name
	}
	return out
}

// ValidateResultsCSV checks a results.csv stream against the column
// contract: exact header, and every row's cells typed. It returns the
// row count (header excluded) for cross-checks.
func ValidateResultsCSV(r io.Reader) (rows int, err error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(resultsColumns)
	header, err := cr.Read()
	if err != nil {
		return 0, fmt.Errorf("contract: results.csv: reading header: %w", err)
	}
	for i, c := range resultsColumns {
		if header[i] != c.name {
			return 0, fmt.Errorf("contract: results.csv: column %d is %q, contract wants %q", i, header[i], c.name)
		}
	}
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return rows, nil
		}
		if err != nil {
			return rows, fmt.Errorf("contract: results.csv: %w", err)
		}
		rows++
		for i, c := range resultsColumns {
			if err := c.check(rec[i]); err != nil {
				return rows, fmt.Errorf("contract: results.csv row %d, column %s: %w", rows, c.name, err)
			}
		}
	}
}

// ValidateBundle validates a campaign bundle directory against the v1
// contracts: manifest.json, summary.json, and results.csv must exist
// and conform; report/quality.json is validated when present (it is an
// optional derived sidecar). Beyond per-file shape it cross-checks the
// artifacts against each other — run IDs agree, the row count equals
// cells x injections — so a bundle assembled from mismatched runs
// fails even though each file is individually well-formed. Every
// violation is reported, joined into one error.
func ValidateBundle(dir string) error {
	var errs []error

	manifest := struct {
		Provenance struct {
			RunID string `json:"run_id"`
		} `json:"provenance"`
		Spec struct {
			RunID      string   `json:"run_id"`
			Benchmarks []string `json:"benchmarks"`
			Schemes    []string `json:"schemes"`
			Fault      struct {
				Injections int
			} `json:"fault"`
		} `json:"spec"`
	}{}
	manB, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err == nil {
		err = ValidateJSONFile(KindManifest, filepath.Join(dir, "manifest.json"))
	}
	if err != nil {
		errs = append(errs, err)
	} else if err := json.Unmarshal(manB, &manifest); err != nil {
		// Decode for cross-checks only after the contract holds.
		errs = append(errs, err)
	}

	summary := struct {
		RunID      string `json:"run_id"`
		Injections int    `json:"injections_per_cell"`
		Cells      []any  `json:"cells"`
	}{}
	sumB, err := os.ReadFile(filepath.Join(dir, "summary.json"))
	if err == nil {
		err = ValidateJSONFile(KindSummary, filepath.Join(dir, "summary.json"))
	}
	if err != nil {
		errs = append(errs, err)
	} else if err := json.Unmarshal(sumB, &summary); err != nil {
		errs = append(errs, err)
	}

	rows := -1
	if f, err := os.Open(filepath.Join(dir, "results.csv")); err != nil {
		errs = append(errs, err)
	} else {
		rows, err = ValidateResultsCSV(f)
		f.Close()
		if err != nil {
			errs = append(errs, err)
		}
	}

	// Cross-checks, only over artifacts that individually validated.
	if manifest.Spec.RunID != "" && summary.RunID != "" {
		if manifest.Provenance.RunID != summary.RunID {
			errs = append(errs, fmt.Errorf("contract: run_id mismatch: manifest %q vs summary %q",
				manifest.Provenance.RunID, summary.RunID))
		}
		if manifest.Spec.Fault.Injections != summary.Injections {
			errs = append(errs, fmt.Errorf("contract: injections_per_cell mismatch: manifest %d vs summary %d",
				manifest.Spec.Fault.Injections, summary.Injections))
		}
		if want := len(summary.Cells) * summary.Injections; rows >= 0 && rows != want {
			errs = append(errs, fmt.Errorf("contract: results.csv has %d rows, summary implies %d (%d cells x %d injections)",
				rows, want, len(summary.Cells), summary.Injections))
		}
	}

	// The derived report is optional; when present it must conform and
	// agree with the summary.
	qPath := filepath.Join(dir, ReportDirName, QualityJSONName)
	if qB, err := os.ReadFile(qPath); err == nil {
		if verr := ValidateJSON(KindQuality, qB); verr != nil {
			errs = append(errs, fmt.Errorf("%s: %w", qPath, verr))
		} else {
			q := struct {
				RunID string `json:"run_id"`
			}{}
			if json.Unmarshal(qB, &q) == nil && summary.RunID != "" && q.RunID != summary.RunID {
				errs = append(errs, fmt.Errorf("contract: run_id mismatch: quality report %q vs summary %q", q.RunID, summary.RunID))
			}
		}
	}

	// Pareto-search sidecars (pareto.json + pareto.csv) are optional:
	// when an optimize run left them beside the bundle they must
	// conform and agree with each other.
	if _, err := os.Stat(filepath.Join(dir, "pareto.json")); err == nil {
		if err := ValidateParetoDir(dir); err != nil {
			errs = append(errs, err)
		}
	}

	return errors.Join(errs...)
}

// ValidateParetoDir validates a Pareto-search artifact directory:
// pareto.json must conform to its contract, pareto.csv to the column
// contract, and the two must agree — the CSV carries exactly one row
// per archive point and the same number of front members. fhreport
// validate routes directories holding a pareto.json without a
// manifest.json here.
func ValidateParetoDir(dir string) error {
	var errs []error

	report := struct {
		Evaluated int `json:"evaluated"`
		Points    []struct {
			Front bool `json:"front"`
		} `json:"points"`
	}{}
	jPath := filepath.Join(dir, "pareto.json")
	jB, err := os.ReadFile(jPath)
	if err == nil {
		err = ValidateJSON(KindPareto, jB)
		if err != nil {
			err = fmt.Errorf("%s: %w", jPath, err)
		}
	}
	if err != nil {
		errs = append(errs, err)
	} else if err := json.Unmarshal(jB, &report); err != nil {
		errs = append(errs, err)
	}

	rows := -1
	if f, err := os.Open(filepath.Join(dir, "pareto.csv")); err != nil {
		errs = append(errs, err)
	} else {
		rows, err = ValidateParetoCSV(f)
		f.Close()
		if err != nil {
			errs = append(errs, err)
		}
	}

	if len(report.Points) > 0 {
		if report.Evaluated != len(report.Points) {
			errs = append(errs, fmt.Errorf("contract: pareto.json: evaluated %d but %d points", report.Evaluated, len(report.Points)))
		}
		if rows >= 0 && rows != len(report.Points) {
			errs = append(errs, fmt.Errorf("contract: pareto.csv has %d rows, pareto.json has %d points", rows, len(report.Points)))
		}
		front := 0
		for _, p := range report.Points {
			if p.Front {
				front++
			}
		}
		if front == 0 {
			errs = append(errs, fmt.Errorf("contract: pareto.json: no front members"))
		}
	}

	return errors.Join(errs...)
}
