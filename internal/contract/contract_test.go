package contract

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const (
	referenceBundle = "../../results/campaigns/reference-1k"
	benchGuard      = "../../results/bench/BENCH_simcore.json"
	spechashGolden  = "../server/testdata/spechash_golden.json"
	wspecGolden     = "../server/testdata/wspec_golden.json"
	paretoGolden    = "../search/testdata/golden"
)

// TestSchemaEngine exercises each validation rule of the embedded
// mini-schema dialect through hand-built schemas.
func TestSchemaEngine(t *testing.T) {
	compile := func(t *testing.T, src string) *Schema {
		t.Helper()
		var s Schema
		if err := json.Unmarshal([]byte(src), &s); err != nil {
			t.Fatal(err)
		}
		if err := s.compile(); err != nil {
			t.Fatal(err)
		}
		return &s
	}
	cases := []struct {
		name    string
		schema  string
		doc     string
		wantErr string // substring of a violation; "" = valid
	}{
		{"type ok", `{"type":"string"}`, `"hi"`, ""},
		{"type mismatch", `{"type":"string"}`, `42`, "want type string"},
		{"type list", `{"type":["array","null"]}`, `null`, ""},
		{"integer rejects fraction", `{"type":"integer"}`, `1.5`, "integer"},
		{"integer admits whole float", `{"type":"integer"}`, `3.0`, ""},
		{"required missing", `{"type":"object","required":["a"],"properties":{"a":{"type":"integer"}}}`, `{}`, "missing required"},
		{"unknown field", `{"type":"object","additionalProperties":false,"properties":{"a":{}}}`, `{"a":1,"b":2}`, "not in contract"},
		{"additional schema", `{"type":"object","additionalProperties":{"type":"integer"}}`, `{"x":"no"}`, "want type integer"},
		{"enum ok", `{"enum":["masked","sdc"]}`, `"sdc"`, ""},
		{"enum miss", `{"enum":["masked","sdc"]}`, `"noisy"`, "enum"},
		{"minimum", `{"type":"number","minimum":0}`, `-1`, "minimum"},
		{"maximum", `{"type":"number","maximum":1}`, `1.2`, "maximum"},
		{"pattern ok", `{"type":"string","pattern":"^[0-9a-f]{4}$"}`, `"a0f3"`, ""},
		{"pattern miss", `{"type":"string","pattern":"^[0-9a-f]{4}$"}`, `"zzzz"`, "pattern"},
		{"items", `{"type":"array","items":{"type":"string"}}`, `[1]`, "want type string"},
		{"minItems", `{"type":"array","minItems":2}`, `["a"]`, "at least 2"},
		{"nested path", `{"type":"object","properties":{"a":{"type":"object","properties":{"b":{"type":"integer"}}}}}`, `{"a":{"b":"x"}}`, "/a/b"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := compile(t, tc.schema)
			var doc any
			if err := json.Unmarshal([]byte(tc.doc), &doc); err != nil {
				t.Fatal(err)
			}
			vs := s.Validate(doc)
			if tc.wantErr == "" {
				if len(vs) != 0 {
					t.Fatalf("want valid, got %v", vs)
				}
				return
			}
			found := false
			for _, v := range vs {
				if strings.Contains(v.String(), tc.wantErr) {
					found = true
				}
			}
			if !found {
				t.Fatalf("want a violation containing %q, got %v", tc.wantErr, vs)
			}
		})
	}
}

// TestCompileRejectsUnknownType guards the schema loader itself: a
// typo'd type name in an embedded schema must fail compile, not
// silently admit everything.
func TestCompileRejectsUnknownType(t *testing.T) {
	var s Schema
	if err := json.Unmarshal([]byte(`{"type":"strng"}`), &s); err != nil {
		t.Fatal(err)
	}
	if err := s.compile(); err == nil {
		t.Fatal("compile accepted unknown type name")
	}
}

// TestCommittedArtifactsConform is the release gate in test form:
// every committed machine-readable artifact validates against its v1
// contract — the reference bundle, the bench guard numbers, and the
// spec-hash goldens.
func TestCommittedArtifactsConform(t *testing.T) {
	if err := ValidateBundle(referenceBundle); err != nil {
		t.Errorf("reference bundle: %v", err)
	}
	for _, f := range []string{benchGuard, spechashGolden, wspecGolden} {
		kind := SniffKind(f)
		if kind == "" {
			t.Fatalf("SniffKind(%s) = \"\"", f)
		}
		if err := ValidateJSONFile(kind, f); err != nil {
			t.Errorf("%s: %v", f, err)
		}
	}
}

// TestSchemaBreakIsCaught mutates the committed summary in the ways a
// careless writer change would — dropped required field, renamed
// field, wrong type — and checks each violates the contract.
func TestSchemaBreakIsCaught(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join(referenceBundle, "summary.json"))
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(f func(m map[string]any)) []byte {
		var m map[string]any
		if err := json.Unmarshal(raw, &m); err != nil {
			t.Fatal(err)
		}
		f(m)
		b, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if err := ValidateJSON(KindSummary, raw); err != nil {
		t.Fatalf("pristine summary rejected: %v", err)
	}
	for name, doc := range map[string][]byte{
		"missing run_id": mutate(func(m map[string]any) { delete(m, "run_id") }),
		"renamed field":  mutate(func(m map[string]any) { m["runid"] = m["run_id"]; delete(m, "run_id") }),
		"wrong type":     mutate(func(m map[string]any) { m["injections_per_cell"] = "250" }),
		"negative count": mutate(func(m map[string]any) { m["injections_per_cell"] = -1 }),
		"smuggled field": mutate(func(m map[string]any) { m["extra"] = true }),
		"negative fp_rate": mutate(func(m map[string]any) {
			cell := m["cells"].([]any)[0].(map[string]any)
			cell["fp_rate"] = -0.5
		}),
	} {
		if err := ValidateJSON(KindSummary, doc); err == nil {
			t.Errorf("%s: contract accepted the break", name)
		}
	}
}

// TestResultsCSVContract checks the column contract end to end on the
// committed results.csv plus targeted corruptions.
func TestResultsCSVContract(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join(referenceBundle, "results.csv"))
	if err != nil {
		t.Fatal(err)
	}
	rows, err := ValidateResultsCSV(strings.NewReader(string(raw)))
	if err != nil {
		t.Fatalf("committed results.csv rejected: %v", err)
	}
	if rows != 1000 {
		t.Fatalf("reference results.csv has %d rows, want 1000", rows)
	}

	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	for name, doc := range map[string]string{
		"reordered header": strings.Join(append([]string{"scheme,bench" + lines[0][len("bench,scheme"):]}, lines[1:]...), "\n"),
		"bad outcome":      lines[0] + "\n" + strings.Replace(lines[1], "masked", "exploded", 1),
		"short row":        lines[0] + "\nbzip2,baseline,0\n",
	} {
		if _, err := ValidateResultsCSV(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: contract accepted the break", name)
		}
	}
}

// TestParetoArtifactsConform validates the committed Pareto-search
// golden directory (internal/search/testdata/golden) the same way the
// release gate does, plus targeted corruptions of the CSV contract.
func TestParetoArtifactsConform(t *testing.T) {
	if err := ValidateParetoDir(paretoGolden); err != nil {
		t.Errorf("pareto golden: %v", err)
	}
	raw, err := os.ReadFile(filepath.Join(paretoGolden, "pareto.csv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) < 3 {
		t.Fatalf("pareto golden has %d rows, want a multi-point archive", len(lines)-1)
	}
	last := lines[len(lines)-1]
	for name, doc := range map[string]string{
		"reordered header": strings.Join(append([]string{"front,spec" + lines[0][len("spec,front"):]}, lines[1:]...), "\n"),
		"bad front flag":   lines[0] + "\n" + strings.Replace(lines[1], ",true,", ",yes,", 1),
		"coverage above 1": lines[0] + "\nfaulthound,true,0,1.5,0,0,0,0\n",
		"front after dominated": strings.Join(append(append([]string{lines[0]}, last),
			strings.Replace(lines[1], ",false,", ",true,", 1)), "\n"),
	} {
		if _, err := ValidateParetoCSV(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: contract accepted the break", name)
		}
	}
}

func TestSniffKind(t *testing.T) {
	for name, want := range map[string]Kind{
		"summary.json":                  KindSummary,
		"some/dir/manifest.json":        KindManifest,
		"report/quality.json":           KindQuality,
		"opt/pareto.json":               KindPareto,
		"results/BENCH_simcore.json":    KindBench,
		"testdata/spechash_golden.json": KindHashes,
		"journal.jsonl":                 "",
		"report.md":                     "",
	} {
		if got := SniffKind(name); got != want {
			t.Errorf("SniffKind(%q) = %q, want %q", name, got, want)
		}
	}
}

// TestValidateBundleCrossChecks builds a bundle whose files are each
// individually valid but mutually inconsistent, which per-file schema
// validation cannot catch.
func TestValidateBundleCrossChecks(t *testing.T) {
	dir := t.TempDir()
	copyMutated := func(src, dst string, f func(m map[string]any)) {
		t.Helper()
		raw, err := os.ReadFile(src)
		if err != nil {
			t.Fatal(err)
		}
		var m map[string]any
		if err := json.Unmarshal(raw, &m); err != nil {
			t.Fatal(err)
		}
		if f != nil {
			f(m)
		}
		b, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(dst, b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	copyMutated(filepath.Join(referenceBundle, "manifest.json"), filepath.Join(dir, "manifest.json"), nil)
	copyMutated(filepath.Join(referenceBundle, "summary.json"), filepath.Join(dir, "summary.json"),
		func(m map[string]any) { m["run_id"] = "someone-else" })
	raw, err := os.ReadFile(filepath.Join(referenceBundle, "results.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "results.csv"), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	err = ValidateBundle(dir)
	if err == nil || !strings.Contains(err.Error(), "run_id mismatch") {
		t.Fatalf("want run_id mismatch, got %v", err)
	}
}
