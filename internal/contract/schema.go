package contract

import (
	"encoding/json"
	"fmt"
	"math"
	"regexp"
	"sort"
	"strings"
)

// Schema is the JSON-schema subset the artifact contracts use: enough
// to pin object shape (properties, required, additionalProperties),
// scalar types and ranges, array items, enums, and string patterns.
// It is stdlib-only by design — the repo takes no dependencies — and
// deliberately strict: anything outside this subset in a schema file
// is a load-time error, not a silently ignored keyword.
type Schema struct {
	// ID names the contract and carries its version, e.g.
	// "faulthound.summary/v1".
	ID          string `json:"$id,omitempty"`
	Description string `json:"description,omitempty"`

	// Type lists the admissible JSON types: "object", "array",
	// "string", "number", "integer", "boolean", "null". Empty admits
	// any type.
	Type TypeList `json:"type,omitempty"`

	// Object keywords.
	Required   []string           `json:"required,omitempty"`
	Properties map[string]*Schema `json:"properties,omitempty"`
	// AdditionalProperties controls fields beyond Properties: nil
	// allows anything, `false` forbids, a schema constrains (the shape
	// of map-valued fields like coverage bins).
	AdditionalProperties *Additional `json:"additionalProperties,omitempty"`

	// Array keywords.
	Items    *Schema `json:"items,omitempty"`
	MinItems *int    `json:"minItems,omitempty"`

	// Scalar keywords.
	Enum    []any    `json:"enum,omitempty"`
	Minimum *float64 `json:"minimum,omitempty"`
	Maximum *float64 `json:"maximum,omitempty"`
	Pattern string   `json:"pattern,omitempty"`

	pattern *regexp.Regexp
}

// TypeList is one type name or a list of them.
type TypeList []string

// UnmarshalJSON accepts "string" and ["string", "null"] forms.
func (t *TypeList) UnmarshalJSON(b []byte) error {
	var one string
	if err := json.Unmarshal(b, &one); err == nil {
		*t = TypeList{one}
		return nil
	}
	var many []string
	if err := json.Unmarshal(b, &many); err != nil {
		return fmt.Errorf("type must be a string or string list")
	}
	*t = TypeList(many)
	return nil
}

// Additional is the additionalProperties keyword: a boolean or a
// schema.
type Additional struct {
	Allowed bool
	Schema  *Schema
}

// UnmarshalJSON accepts `true`, `false`, or a schema object.
func (a *Additional) UnmarshalJSON(b []byte) error {
	var allowed bool
	if err := json.Unmarshal(b, &allowed); err == nil {
		a.Allowed = allowed
		return nil
	}
	a.Schema = &Schema{}
	if err := json.Unmarshal(b, a.Schema); err != nil {
		return fmt.Errorf("additionalProperties must be a boolean or a schema")
	}
	a.Allowed = true
	return nil
}

// compile recursively prepares the schema (regexps) and rejects
// unknown type names — a mistyped contract should fail loudly at
// load, not admit everything at validation.
func (s *Schema) compile() error {
	for _, t := range s.Type {
		switch t {
		case "object", "array", "string", "number", "integer", "boolean", "null":
		default:
			return fmt.Errorf("contract: schema %s: unknown type %q", s.ID, t)
		}
	}
	if s.Pattern != "" {
		re, err := regexp.Compile(s.Pattern)
		if err != nil {
			return fmt.Errorf("contract: schema %s: bad pattern: %w", s.ID, err)
		}
		s.pattern = re
	}
	for _, sub := range s.Properties {
		if err := sub.compile(); err != nil {
			return err
		}
	}
	if s.AdditionalProperties != nil && s.AdditionalProperties.Schema != nil {
		if err := s.AdditionalProperties.Schema.compile(); err != nil {
			return err
		}
	}
	if s.Items != nil {
		return s.Items.compile()
	}
	return nil
}

// Violation is one point where a document breaks its contract.
type Violation struct {
	// Path locates the offending value, JSON-pointer style ("/cells/2/fp_rate").
	Path string
	// Msg says what the contract wanted.
	Msg string
}

func (v Violation) String() string {
	p := v.Path
	if p == "" {
		p = "/"
	}
	return p + ": " + v.Msg
}

// Validate checks a decoded JSON document (the `any` shapes
// encoding/json produces) against the schema and returns every
// violation, not just the first.
func (s *Schema) Validate(doc any) []Violation {
	var out []Violation
	s.validate(doc, "", &out)
	return out
}

func jsonType(v any) string {
	switch v.(type) {
	case nil:
		return "null"
	case bool:
		return "boolean"
	case float64, json.Number:
		return "number"
	case string:
		return "string"
	case []any:
		return "array"
	case map[string]any:
		return "object"
	}
	return fmt.Sprintf("%T", v)
}

func number(v any) (float64, bool) {
	switch n := v.(type) {
	case float64:
		return n, true
	case json.Number:
		f, err := n.Float64()
		return f, err == nil
	}
	return 0, false
}

func (s *Schema) validate(v any, path string, out *[]Violation) {
	add := func(format string, args ...any) {
		*out = append(*out, Violation{Path: path, Msg: fmt.Sprintf(format, args...)})
	}

	if len(s.Type) > 0 {
		got := jsonType(v)
		ok := false
		for _, t := range s.Type {
			if t == got || (t == "integer" && got == "number") {
				ok = true
				break
			}
		}
		if !ok {
			add("want type %s, got %s", strings.Join(s.Type, "|"), got)
			return
		}
		if got == "number" && s.Type.only("integer") {
			if f, _ := number(v); f != math.Trunc(f) {
				add("want an integer, got %v", f)
				return
			}
		}
	}

	if len(s.Enum) > 0 {
		ok := false
		for _, e := range s.Enum {
			if scalarEqual(e, v) {
				ok = true
				break
			}
		}
		if !ok {
			add("value %v not in enum %v", v, s.Enum)
		}
	}

	if f, isNum := number(v); isNum {
		if s.Minimum != nil && f < *s.Minimum {
			add("value %v below minimum %v", f, *s.Minimum)
		}
		if s.Maximum != nil && f > *s.Maximum {
			add("value %v above maximum %v", f, *s.Maximum)
		}
	}

	if str, ok := v.(string); ok && s.pattern != nil && !s.pattern.MatchString(str) {
		add("value %q does not match pattern %s", str, s.Pattern)
	}

	if arr, ok := v.([]any); ok {
		if s.MinItems != nil && len(arr) < *s.MinItems {
			add("array has %d items, want at least %d", len(arr), *s.MinItems)
		}
		if s.Items != nil {
			for i, item := range arr {
				s.Items.validate(item, fmt.Sprintf("%s/%d", path, i), out)
			}
		}
	}

	if obj, ok := v.(map[string]any); ok {
		for _, req := range s.Required {
			if _, present := obj[req]; !present {
				add("missing required field %q", req)
			}
		}
		// Deterministic violation order: sorted keys.
		keys := make([]string, 0, len(obj))
		for k := range obj {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			sub, declared := s.Properties[k]
			switch {
			case declared:
				sub.validate(obj[k], path+"/"+k, out)
			case s.AdditionalProperties == nil:
				// Undeclared fields allowed.
			case !s.AdditionalProperties.Allowed:
				*out = append(*out, Violation{Path: path + "/" + k, Msg: "field not in contract"})
			case s.AdditionalProperties.Schema != nil:
				s.AdditionalProperties.Schema.validate(obj[k], path+"/"+k, out)
			}
		}
	}
}

// only reports whether the type list is exactly {t}, modulo "null".
func (t TypeList) only(want string) bool {
	for _, x := range t {
		if x != want && x != "null" {
			return false
		}
	}
	return true
}

// scalarEqual compares enum members against document scalars.
func scalarEqual(a, b any) bool {
	if fa, ok := number(a); ok {
		fb, okb := number(b)
		return okb && fa == fb
	}
	return a == b
}
