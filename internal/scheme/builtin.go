package scheme

import (
	"strconv"

	"faulthound/internal/core"
	"faulthound/internal/detect"
	"faulthound/internal/pbfs"
	"faulthound/internal/pipeline"
	"faulthound/internal/srt"
)

// This file registers the schemes of the paper's evaluation. Every
// variant that used to be a hard-coded harness enum constant is a
// registry entry here, parameterized over the sensitivity knobs the
// paper sweeps (TCAM filter entries, delay-buffer slots, LSQ checks,
// the second-level filter).

// Shared parameter metadata of the FaultHound family.
var (
	paramTCAM = Param{Name: "tcam", Kind: Int, Default: "32", Min: 1,
		Help: "entries per TCAM filter bank (paper sweeps 8-64, Table 2 uses 32)"}
	paramDelay = Param{Name: "delay", Kind: Int, Default: "7",
		Help: "delay-buffer slots, the replay window (paper sweeps 6-8; 0 disables)"}
	paramLSQ = Param{Name: "lsq", Kind: Bool, Default: "on",
		Help: "commit-time LSQ singleton checks (Section 3.5)"}
	param2Level = Param{Name: "2level", Kind: Bool, Default: "on",
		Help: "second-level delinquent-bit filter (Section 3.2)"}
	paramSquash = Param{Name: "squash", Kind: Bool, Default: "on",
		Help: "per-entry squash state machines escalating rename faults to rollback (Section 3.4)"}
	paramLoosen = Param{Name: "loosen", Kind: Int, Default: "4", Min: 1,
		Help: "max mismatch bits for loosening the closest filter instead of replacing one"}
)

// fhApply folds the shared FaultHound-family parameters into cfg and
// returns the pipeline hook for the delay parameter.
func fhApply(cfg *core.Config, sp Spec, v Values) func(*pipeline.Config) {
	cfg.Name = sp.String()
	entries := v.Int("tcam")
	cfg.Addr.Entries, cfg.Value.Entries = entries, entries
	loosen := v.Int("loosen")
	cfg.Addr.LoosenThreshold, cfg.Value.LoosenThreshold = loosen, loosen
	delay := v.Int("delay")
	return func(pc *pipeline.Config) { pc.DelayBuffer = delay }
}

// registerFH registers one FaultHound-family scheme over a base
// config. The extra parameters (lsq, 2level, squash) are declared only
// where the base config has the mechanism enabled — its ablations are
// separate registered schemes already.
func registerFH(name, help string, base func() core.Config, params ...Param) {
	Register(Scheme{
		Name:   name,
		Help:   help,
		Params: append([]Param{paramTCAM, paramDelay, paramLoosen}, params...),
		Build: func(sp Spec, v Values, _ Env) (Instance, error) {
			cfg := base()
			pipe := fhApply(&cfg, sp, v)
			if hasParam(v, "lsq") {
				cfg.NoLSQ = !v.Bool("lsq")
			}
			if hasParam(v, "2level") {
				on := v.Bool("2level")
				cfg.Addr.SecondLevel, cfg.Value.SecondLevel = on, on
			}
			if hasParam(v, "squash") {
				on := v.Bool("squash")
				cfg.Addr.SquashMachines, cfg.Value.SquashMachines = on, on
				cfg.BackendOnly = !on
			}
			return Instance{
				NewDetector: func() detect.Detector { return core.New(cfg) },
				Configure:   pipe,
			}, nil
		},
	})
}

// hasParam reports whether the scheme declares the parameter at all.
func hasParam(v Values, name string) bool { return v.Has(name) }

// registerPBFS registers one PBFS table variant.
func registerPBFS(name, help string, base func() pbfs.Config) {
	defaults := base()
	Register(Scheme{
		Name: name,
		Help: help,
		Params: []Param{
			{Name: "entries", Kind: Int, Default: itoa(defaults.Addr.Entries), Min: 1,
				Help: "entries per PC-indexed filter table"},
			{Name: "clear", Kind: Int, Default: itoa(int(defaults.Addr.ClearInterval)),
				Help: "flash-clear interval in lookups (0 disables)"},
		},
		Build: func(sp Spec, v Values, _ Env) (Instance, error) {
			cfg := base()
			cfg.Name = sp.String()
			entries, clear := v.Int("entries"), uint64(v.Int("clear"))
			cfg.Addr.Entries, cfg.Value.Entries = entries, entries
			cfg.Addr.ClearInterval, cfg.Value.ClearInterval = clear, clear
			return Instance{NewDetector: func() detect.Detector { return pbfs.New(cfg) }}, nil
		},
	})
}

func itoa(n int) string { return strconv.Itoa(n) }

func init() {
	// Registration order is the order of KnownSchemes, usage strings,
	// and error messages — the harness's historical order.
	Register(Scheme{
		Name: "baseline",
		Help: "unprotected pipeline, no detector (the pairing basis of every campaign)",
		Build: func(Spec, Values, Env) (Instance, error) {
			return Instance{}, nil
		},
	})
	registerPBFS("pbfs",
		"perturbation-based fault screening, one-bit sticky counters (Racunas et al., HPCA'07)",
		pbfs.Default)
	registerPBFS("pbfs-biased",
		"PBFS tables with the paper's biased two-bit state machine (Figure 8)",
		pbfs.Biased)
	registerFH("faulthound-backend",
		"FaultHound without rename-fault squash escalation (Figure 8)",
		core.BackendConfig, paramLSQ, param2Level)
	registerFH("faulthound",
		"full FaultHound: clustered TCAMs, 2nd-level filter, replay, squash machines, LSQ checks",
		core.DefaultConfig, paramLSQ, param2Level, paramSquash)
	Register(Scheme{
		Name: "srt-iso",
		Help: "idealized partial-redundancy SRT matched to FaultHound's coverage (Section 4)",
		Params: []Param{
			{Name: "coverage", Kind: Float, Default: "0.75",
				Help: "fraction of committed instructions re-executed redundantly"},
		},
		Build: func(_ Spec, v Values, env Env) (Instance, error) {
			cov := v.Float("coverage")
			if !v.Explicit("coverage") && env.SRTCoverage > 0 {
				cov = env.SRTCoverage
			}
			m := srt.Iso(cov)
			return Instance{Configure: func(pc *pipeline.Config) { m.Configure(pc) }}, nil
		},
	})
	Register(Scheme{
		Name: "srt",
		Help: "full-redundancy SRT (coverage 1.0)",
		Build: func(Spec, Values, Env) (Instance, error) {
			m := srt.Full()
			return Instance{Configure: func(pc *pipeline.Config) { m.Configure(pc) }}, nil
		},
	})
	registerFH("fh-be",
		"alias of faulthound-backend in Figure 12 naming",
		core.BackendConfig, paramLSQ, param2Level)
	registerFH("fh-be-nolsq",
		"backend-only FaultHound without commit-time LSQ checks (Figure 12-right)",
		core.NoLSQConfig, param2Level)
	registerFH("fh-be-no2level",
		"backend-only FaultHound without the second-level filter (Figure 12-left)",
		core.No2LevelConfig, paramLSQ)
	Register(Scheme{
		Name: "fh-be-nocluster-no2level",
		Help: "PC-indexed biased tables with replay recovery, i.e. PBFS-biased plus replay (Figure 12-left)",
		Params: []Param{
			{Name: "entries", Kind: Int, Default: "2048", Min: 1,
				Help: "entries per PC-indexed table (replaces the TCAMs)"},
			paramDelay,
			paramLSQ,
		},
		Build: func(sp Spec, v Values, _ Env) (Instance, error) {
			cfg := core.NoClusterNo2LevelConfig()
			cfg.Name = sp.String()
			cfg.TableEntries = v.Int("entries")
			cfg.NoLSQ = !v.Bool("lsq")
			delay := v.Int("delay")
			return Instance{
				NewDetector: func() detect.Detector { return core.New(cfg) },
				Configure:   func(pc *pipeline.Config) { pc.DelayBuffer = delay },
			}, nil
		},
	})
	registerFH("fh-be-full-rollback",
		"backend-only FaultHound answering every trigger with a full rollback (Figure 12-middle)",
		core.FullRollbackConfig, paramLSQ, param2Level)
}
