package scheme

import (
	"fmt"

	"faulthound/internal/detect"
	"faulthound/internal/pipeline"
	"faulthound/internal/pspec"
)

// Kind is a parameter's value type (shared pspec.Kind).
type Kind = pspec.Kind

// Parameter kinds.
const (
	Int   = pspec.Int
	Float = pspec.Float
	Bool  = pspec.Bool
)

// Param is the self-describing metadata of one scheme parameter.
type Param = pspec.Param

// Values is the typed view of one spec's parameters a factory reads:
// explicit settings from the spec query, defaults from the parameter
// metadata.
type Values = pspec.Values

// Metadata is the JSON form of the registry, served by the daemon's
// /v1/schemes endpoint.
type Metadata = pspec.Metadata

// Env carries host-supplied tunables a factory may consult for
// parameters the spec leaves unset. It keeps scheme-specific policy
// (like the harness's SRT coverage matching) out of the callers.
type Env struct {
	// SRTCoverage, when nonzero, overrides srt-iso's default coverage
	// (the paper matches the coverage of the scheme under comparison).
	SRTCoverage float64
}

// Instance is one built scheme, ready to construct cores.
type Instance struct {
	// Spec is the canonical spec the instance was built from.
	Spec Spec
	// NewDetector builds a fresh detector (nil for schemes that are
	// pure pipeline configurations: baseline and the SRT models).
	NewDetector func() detect.Detector
	// Configure mutates the pipeline configuration (nil when the
	// scheme needs no pipeline changes).
	Configure func(*pipeline.Config)
}

// Scheme is one registry entry: the name, help line, parameter
// metadata, and the factory.
type Scheme struct {
	Name   string
	Help   string
	Params []Param
	// Build constructs the instance. sp is the canonical spec (for
	// labeling), v the typed parameter view, env the host tunables.
	Build func(sp Spec, v Values, env Env) (Instance, error)
}

var (
	// reg owns the spec syntax (parse/canonicalize/expand/describe);
	// schemes pairs each entry with its factory.
	reg     = pspec.NewRegistry(Domain)
	schemes = map[string]*Scheme{}
)

// Register adds a scheme to the registry. It panics on a duplicate
// name, an unparsable parameter default, or other registration bugs —
// registration happens at init time from this package only.
func Register(s Scheme) {
	if s.Name == "" || s.Build == nil {
		panic("scheme: Register needs a name and a build function")
	}
	reg.Register(pspec.Entry{Name: s.Name, Help: s.Help, Params: s.Params})
	sc := s
	schemes[s.Name] = &sc
}

// Names lists every registered scheme name in registration order —
// the single source KnownSchemes, usage strings, and error messages
// derive from.
func Names() []string { return reg.Names() }

// Lookup returns a scheme's registry entry.
func Lookup(name string) (*Scheme, bool) {
	sc, ok := schemes[name]
	return sc, ok
}

// Parse validates one spec string against the registry and returns
// its canonical Spec. Sweep syntax ('|' in a value) is an error here;
// use Expand where fan-out is meant.
func Parse(raw string) (Spec, error) { return reg.Parse(raw) }

// Valid reports whether raw parses against the registry.
func Valid(raw string) bool { return reg.Valid(raw) }

// Expand parses one spec string, fanning out sweep values: a value
// "8|16|32" yields one Spec per alternative. Multiple swept
// parameters produce their cartesian product, later-written
// parameters varying fastest. Every expanded Spec is canonical and
// fully validated.
func Expand(raw string) ([]Spec, error) { return reg.Expand(raw) }

// ParseList parses a comma-separated scheme list, expanding sweeps.
// Commas double as parameter separators, so a token containing '=' is
// a parameter of the most recent scheme, anything else starts a new
// spec: "faulthound?tcam=16,delay=6,pbfs" is faulthound with two
// parameters, then pbfs.
func ParseList(raw string) ([]Spec, error) { return reg.ParseList(raw) }

// Build constructs the instance of a canonical spec. The spec is
// re-validated (it may come from an untrusted journal or manifest via
// FromString).
func Build(sp Spec, env Env) (Instance, error) {
	v, err := reg.ValuesOf(sp)
	if err != nil {
		return Instance{}, err
	}
	sc, ok := schemes[sp.Name]
	if !ok {
		// reg and schemes are registered together; reaching here means
		// ValuesOf accepted a name Register never saw.
		return Instance{}, fmt.Errorf("scheme: no factory for %q", sp.Name)
	}
	inst, err := sc.Build(sp, v, env)
	if err != nil {
		return Instance{}, err
	}
	inst.Spec = sp
	return inst, nil
}

// ValuesOf validates a canonical spec against the registry and
// returns its typed parameter view (explicit settings plus defaults).
// Consumers that need a parameter's effective value without building
// the full instance — the energy model's TCAM sizing, the search
// driver's mutation space — go through here.
func ValuesOf(sp Spec) (Values, error) { return reg.ValuesOf(sp) }

// Resolved renders the spec with every parameter explicit (defaults
// filled in), in declaration order — the self-describing form campaign
// summaries print per cell.
func Resolved(sp Spec) (string, error) { return reg.Resolved(sp) }

// Usage returns the one-line scheme list for CLI flag help.
func Usage() string { return reg.Usage() }

// Describe renders the full self-describing registry: one block per
// scheme with its help line and parameter metadata. CLIs print it for
// -list-schemes; docs/SCHEMES.md mirrors it.
func Describe() string { return reg.Describe() }

// All returns the registry metadata in registration order.
func All() []Metadata { return reg.All() }
