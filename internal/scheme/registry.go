package scheme

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"faulthound/internal/detect"
	"faulthound/internal/pipeline"
)

// Kind is a parameter's value type.
type Kind uint8

// Parameter kinds.
const (
	Int Kind = iota
	Float
	Bool
)

// String names the kind ("int", "float", "bool").
func (k Kind) String() string {
	switch k {
	case Int:
		return "int"
	case Float:
		return "float"
	case Bool:
		return "bool"
	}
	return "?"
}

// MarshalJSON encodes the kind as its name, for the self-describing
// metadata endpoint and manifests.
func (k Kind) MarshalJSON() ([]byte, error) {
	return []byte(`"` + k.String() + `"`), nil
}

// Param is the self-describing metadata of one scheme parameter.
type Param struct {
	Name string `json:"name"`
	Kind Kind   `json:"kind"`
	// Default is the canonical encoding of the default value; a spec
	// setting the parameter to it is elided from the canonical form.
	Default string `json:"default"`
	// Min, for Int parameters, is the smallest accepted value (all int
	// parameters additionally reject negatives).
	Min  int    `json:"min,omitempty"`
	Help string `json:"help"`
}

// Values is the typed view of one spec's parameters a factory reads:
// explicit settings from the spec query, defaults from the parameter
// metadata. Getters panic on parameter names the scheme never
// declared — that is a registration bug, not an input error.
type Values struct {
	sc  *Scheme
	set map[string]string // explicit values, canonical encoding
}

func (v Values) raw(name string) (Param, string) {
	for _, p := range v.sc.Params {
		if p.Name == name {
			if s, ok := v.set[name]; ok {
				return p, s
			}
			return p, p.Default
		}
	}
	panic(fmt.Sprintf("scheme: %s has no parameter %q", v.sc.Name, name))
}

// Int returns an Int parameter's value.
func (v Values) Int(name string) int {
	p, s := v.raw(name)
	if p.Kind != Int {
		panic(fmt.Sprintf("scheme: parameter %s.%s is %s, not int", v.sc.Name, name, p.Kind))
	}
	n, _ := strconv.Atoi(s)
	return n
}

// Float returns a Float parameter's value.
func (v Values) Float(name string) float64 {
	p, s := v.raw(name)
	if p.Kind != Float {
		panic(fmt.Sprintf("scheme: parameter %s.%s is %s, not float", v.sc.Name, name, p.Kind))
	}
	f, _ := strconv.ParseFloat(s, 64)
	return f
}

// Bool returns a Bool parameter's value.
func (v Values) Bool(name string) bool {
	p, s := v.raw(name)
	if p.Kind != Bool {
		panic(fmt.Sprintf("scheme: parameter %s.%s is %s, not bool", v.sc.Name, name, p.Kind))
	}
	return s == "on"
}

// Explicit reports whether the spec set the parameter itself (true)
// or the default applies (false). Factories use it for parameters
// whose effective default comes from the host environment.
func (v Values) Explicit(name string) bool {
	v.raw(name) // validate the name
	_, ok := v.set[name]
	return ok
}

// Env carries host-supplied tunables a factory may consult for
// parameters the spec leaves unset. It keeps scheme-specific policy
// (like the harness's SRT coverage matching) out of the callers.
type Env struct {
	// SRTCoverage, when nonzero, overrides srt-iso's default coverage
	// (the paper matches the coverage of the scheme under comparison).
	SRTCoverage float64
}

// Instance is one built scheme, ready to construct cores.
type Instance struct {
	// Spec is the canonical spec the instance was built from.
	Spec Spec
	// NewDetector builds a fresh detector (nil for schemes that are
	// pure pipeline configurations: baseline and the SRT models).
	NewDetector func() detect.Detector
	// Configure mutates the pipeline configuration (nil when the
	// scheme needs no pipeline changes).
	Configure func(*pipeline.Config)
}

// Scheme is one registry entry: the name, help line, parameter
// metadata, and the factory.
type Scheme struct {
	Name   string
	Help   string
	Params []Param
	// Build constructs the instance. sp is the canonical spec (for
	// labeling), v the typed parameter view, env the host tunables.
	Build func(sp Spec, v Values, env Env) (Instance, error)
}

var (
	registry = map[string]*Scheme{}
	order    []string // registration order, the order of Names and help text
)

// Register adds a scheme to the registry. It panics on a duplicate
// name, an unparsable parameter default, or other registration bugs —
// registration happens at init time from this package only.
func Register(s Scheme) {
	if s.Name == "" || s.Build == nil {
		panic("scheme: Register needs a name and a build function")
	}
	if strings.ContainsAny(s.Name, "?=,|/ ") {
		panic(fmt.Sprintf("scheme: name %q contains spec syntax characters", s.Name))
	}
	if _, dup := registry[s.Name]; dup {
		panic(fmt.Sprintf("scheme: duplicate registration of %q", s.Name))
	}
	seen := map[string]bool{}
	for _, p := range s.Params {
		if p.Name == "" || strings.ContainsAny(p.Name, "?=,|/ ") {
			panic(fmt.Sprintf("scheme: %s: bad parameter name %q", s.Name, p.Name))
		}
		if seen[p.Name] {
			panic(fmt.Sprintf("scheme: %s: duplicate parameter %q", s.Name, p.Name))
		}
		seen[p.Name] = true
		if _, err := encode(p, p.Default); err != nil {
			panic(fmt.Sprintf("scheme: %s: default of %q: %v", s.Name, p.Name, err))
		}
	}
	sc := s
	registry[s.Name] = &sc
	order = append(order, s.Name)
}

// Names lists every registered scheme name in registration order —
// the single source KnownSchemes, usage strings, and error messages
// derive from.
func Names() []string {
	return append([]string(nil), order...)
}

// Lookup returns a scheme's registry entry.
func Lookup(name string) (*Scheme, bool) {
	sc, ok := registry[name]
	return sc, ok
}

// encode validates raw against p and returns its canonical encoding.
func encode(p Param, raw string) (string, error) {
	switch p.Kind {
	case Int:
		n, err := strconv.Atoi(raw)
		if err != nil {
			return "", fmt.Errorf("parameter %s: not an integer: %q", p.Name, raw)
		}
		if n < 0 {
			return "", fmt.Errorf("parameter %s: negative value %d", p.Name, n)
		}
		if n < p.Min {
			return "", fmt.Errorf("parameter %s: %d is below the minimum %d", p.Name, n, p.Min)
		}
		return strconv.Itoa(n), nil
	case Float:
		f, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return "", fmt.Errorf("parameter %s: not a number: %q", p.Name, raw)
		}
		return strconv.FormatFloat(f, 'g', -1, 64), nil
	case Bool:
		switch strings.ToLower(raw) {
		case "on", "true", "yes", "1":
			return "on", nil
		case "off", "false", "no", "0":
			return "off", nil
		}
		return "", fmt.Errorf("parameter %s: not a boolean (on/off): %q", p.Name, raw)
	}
	return "", fmt.Errorf("parameter %s: unknown kind", p.Name)
}

// param finds a scheme's parameter by name.
func (s *Scheme) param(name string) (Param, bool) {
	for _, p := range s.Params {
		if p.Name == name {
			return p, true
		}
	}
	return Param{}, false
}

// paramNames renders the scheme's parameter list for error messages.
func (s *Scheme) paramNames() string {
	if len(s.Params) == 0 {
		return "none"
	}
	names := make([]string, len(s.Params))
	for i, p := range s.Params {
		names[i] = p.Name
	}
	return strings.Join(names, ", ")
}

// canonicalize validates one explicit k=v set against sc and returns
// the canonical query (sorted, defaults elided).
func canonicalize(sc *Scheme, raw string, set map[string]string) (string, error) {
	var parts []string
	for name, val := range set {
		p, ok := sc.param(name)
		if !ok {
			return "", &BadSpecError{Spec: raw, Reason: fmt.Sprintf(
				"unknown parameter %q (parameters of %s: %s)", name, sc.Name, sc.paramNames())}
		}
		canon, err := encode(p, val)
		if err != nil {
			return "", &BadSpecError{Spec: raw, Reason: err.Error()}
		}
		if canon == p.Default {
			continue // default values are elided from the canonical form
		}
		parts = append(parts, name+"="+canon)
	}
	sort.Strings(parts)
	return strings.Join(parts, ","), nil
}

// splitSpec splits one spec string into name and raw k=v pairs.
func splitSpec(raw string) (name string, pairs map[string]string, err error) {
	trimmed := strings.TrimSpace(raw)
	name, query, has := strings.Cut(trimmed, "?")
	name = strings.TrimSpace(name)
	if name == "" {
		return "", nil, &BadSpecError{Spec: raw, Reason: "empty scheme name"}
	}
	pairs = map[string]string{}
	if !has {
		return name, pairs, nil
	}
	if query == "" {
		return name, pairs, nil
	}
	for _, tok := range strings.Split(query, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		k, v, ok := strings.Cut(tok, "=")
		k, v = strings.TrimSpace(k), strings.TrimSpace(v)
		if !ok || k == "" || v == "" {
			return "", nil, &BadSpecError{Spec: raw, Reason: fmt.Sprintf("malformed parameter %q (want k=v)", tok)}
		}
		if _, dup := pairs[k]; dup {
			return "", nil, &BadSpecError{Spec: raw, Reason: fmt.Sprintf("parameter %q set twice", k)}
		}
		pairs[k] = v
	}
	return name, pairs, nil
}

// Parse validates one spec string against the registry and returns
// its canonical Spec. Sweep syntax ('|' in a value) is an error here;
// use Expand where fan-out is meant.
func Parse(raw string) (Spec, error) {
	specs, err := Expand(raw)
	if err != nil {
		return Spec{}, err
	}
	if len(specs) != 1 {
		return Spec{}, &BadSpecError{Spec: raw, Reason: "sweep syntax ('|') is not allowed here"}
	}
	return specs[0], nil
}

// Valid reports whether raw parses against the registry.
func Valid(raw string) bool {
	_, err := Parse(raw)
	return err == nil
}

// Expand parses one spec string, fanning out sweep values: a value
// "8|16|32" yields one Spec per alternative. Multiple swept
// parameters produce their cartesian product, later-written
// parameters varying fastest. Every expanded Spec is canonical and
// fully validated.
func Expand(raw string) ([]Spec, error) {
	name, pairs, err := splitSpec(raw)
	if err != nil {
		return nil, err
	}
	sc, ok := registry[name]
	if !ok {
		return nil, &UnknownSchemeError{Name: name}
	}
	// Preserve the written parameter order for sweep fan-out.
	type kv struct {
		k    string
		vals []string
	}
	var swept []kv
	for _, p := range sc.Params { // deterministic: declaration order
		if v, ok := pairs[p.Name]; ok {
			swept = append(swept, kv{p.Name, strings.Split(v, "|")})
			delete(pairs, p.Name)
		}
	}
	// Anything left names no declared parameter; let canonicalize
	// produce its error (it knows the parameter list).
	for k, v := range pairs {
		swept = append(swept, kv{k, []string{v}})
	}
	for _, s := range swept {
		for _, v := range s.vals {
			if strings.TrimSpace(v) == "" {
				return nil, &BadSpecError{Spec: raw, Reason: fmt.Sprintf("parameter %q has an empty sweep value", s.k)}
			}
		}
	}

	var out []Spec
	set := map[string]string{}
	var rec func(i int) error
	rec = func(i int) error {
		if i == len(swept) {
			q, err := canonicalize(sc, raw, set)
			if err != nil {
				return err
			}
			sp := Spec{Name: name, Query: q}
			for _, prev := range out {
				if prev == sp {
					return nil // sweep alternatives that canonicalize equal collapse
				}
			}
			out = append(out, sp)
			return nil
		}
		for _, v := range swept[i].vals {
			set[swept[i].k] = strings.TrimSpace(v)
			if err := rec(i + 1); err != nil {
				return err
			}
		}
		delete(set, swept[i].k)
		return nil
	}
	if err := rec(0); err != nil {
		return nil, err
	}
	return out, nil
}

// ParseList parses a comma-separated scheme list, expanding sweeps.
// Commas double as parameter separators, so a token containing '=' is
// a parameter of the most recent scheme, anything else starts a new
// spec: "faulthound?tcam=16,delay=6,pbfs" is faulthound with two
// parameters, then pbfs.
func ParseList(raw string) ([]Spec, error) {
	var items []string
	for _, tok := range strings.Split(raw, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		if strings.Contains(tok, "=") && !strings.Contains(tok, "?") {
			if len(items) == 0 {
				return nil, &BadSpecError{Spec: raw, Reason: fmt.Sprintf("parameter %q before any scheme name", tok)}
			}
			items[len(items)-1] += "," + tok
			continue
		}
		items = append(items, tok)
	}
	var out []Spec
	for _, it := range items {
		specs, err := Expand(it)
		if err != nil {
			return nil, err
		}
		out = append(out, specs...)
	}
	return out, nil
}

// Build constructs the instance of a canonical spec. The spec is
// re-validated (it may come from an untrusted journal or manifest via
// FromString).
func Build(sp Spec, env Env) (Instance, error) {
	sc, ok := registry[sp.Name]
	if !ok {
		return Instance{}, &UnknownSchemeError{Name: sp.Name}
	}
	_, pairs, err := splitSpec(sp.String())
	if err != nil {
		return Instance{}, err
	}
	set := map[string]string{}
	for k, v := range pairs {
		p, ok := sc.param(k)
		if !ok {
			return Instance{}, &BadSpecError{Spec: sp.String(), Reason: fmt.Sprintf(
				"unknown parameter %q (parameters of %s: %s)", k, sc.Name, sc.paramNames())}
		}
		canon, err := encode(p, v)
		if err != nil {
			return Instance{}, &BadSpecError{Spec: sp.String(), Reason: err.Error()}
		}
		set[k] = canon
	}
	inst, err := sc.Build(sp, Values{sc: sc, set: set}, env)
	if err != nil {
		return Instance{}, err
	}
	inst.Spec = sp
	return inst, nil
}

// Resolved renders the spec with every parameter explicit (defaults
// filled in), in declaration order — the self-describing form campaign
// summaries print per cell.
func Resolved(sp Spec) (string, error) {
	sc, ok := registry[sp.Name]
	if !ok {
		return sp.String(), &UnknownSchemeError{Name: sp.Name}
	}
	_, pairs, err := splitSpec(sp.String())
	if err != nil {
		return sp.String(), err
	}
	if len(sc.Params) == 0 {
		return sp.Name, nil
	}
	parts := make([]string, 0, len(sc.Params))
	for _, p := range sc.Params {
		val := p.Default
		if v, ok := pairs[p.Name]; ok {
			if canon, err := encode(p, v); err == nil {
				val = canon
			}
		}
		parts = append(parts, p.Name+"="+val)
	}
	return sp.Name + "?" + strings.Join(parts, ","), nil
}

// Usage returns the one-line scheme list for CLI flag help.
func Usage() string {
	return strings.Join(Names(), ", ")
}

// Describe renders the full self-describing registry: one block per
// scheme with its help line and parameter metadata. CLIs print it for
// -list-schemes; docs/SCHEMES.md mirrors it.
func Describe() string {
	var sb strings.Builder
	for _, name := range order {
		sc := registry[name]
		fmt.Fprintf(&sb, "%-26s %s\n", sc.Name, sc.Help)
		for _, p := range sc.Params {
			def := p.Default
			fmt.Fprintf(&sb, "    %-12s %-6s default %-8s %s\n", p.Name, p.Kind, def, p.Help)
		}
	}
	return sb.String()
}

// Metadata is the JSON form of the registry, served by the daemon's
// /v1/schemes endpoint.
type Metadata struct {
	Name   string  `json:"name"`
	Help   string  `json:"help"`
	Params []Param `json:"params"`
}

// All returns the registry metadata in registration order.
func All() []Metadata {
	out := make([]Metadata, 0, len(order))
	for _, name := range order {
		sc := registry[name]
		params := sc.Params
		if params == nil {
			params = []Param{}
		}
		out = append(out, Metadata{Name: sc.Name, Help: sc.Help, Params: params})
	}
	return out
}
