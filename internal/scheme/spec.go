// Package scheme is the registry of fault-tolerance schemes: it maps
// scheme names to factories that build detectors and pipeline
// configurations from typed, validated parameters. The spec syntax
// every layer shares —
//
//	name                      plain scheme, all parameters default
//	name?k=v,k=v              parameterized ("faulthound?tcam=16,delay=6,lsq=off")
//	name?k=v1|v2|v3           sensitivity sweep, fanned out by Expand
//
// — lives in internal/pspec, shared with the generated-workload
// registry (internal/wgen); this package binds it to the "scheme"
// domain and the detector factories.
//
// A parsed Spec is canonical: parameters are sorted by name, values
// are re-encoded in canonical form, and parameters equal to their
// default are elided — so "faulthound?delay=7,tcam=32" and
// "faulthound" are one spec, one campaign cell, and one server
// spec-hash. Plain scheme names canonicalize to themselves, which is
// what keeps pre-registry artifacts (journals, manifests, spec
// hashes) byte-identical.
//
// The registry binding (Register, Parse, Build, Names) lives in
// registry.go; the built-in schemes of the paper's evaluation are
// registered by builtin.go. See docs/SCHEMES.md.
package scheme

import "faulthound/internal/pspec"

// Domain is this registry's noun in spec error messages.
const Domain = "scheme"

// Spec is one resolved scheme specification: a scheme name plus its
// canonically encoded non-default parameters. It is pspec.Spec — the
// shared canonical spec type — so journals and manifests serialize it
// as the canonical string.
type Spec = pspec.Spec

// FromString parses a spec string syntactically: split the name at the
// first '?', sort the parameter tokens. It never fails and does not
// consult the registry — use it for trusted, already-canonical input
// (journals, manifests); use Parse for user input.
func FromString(raw string) Spec { return pspec.FromString(raw) }

// UnknownSchemeError reports a spec whose scheme name is not
// registered. Its message carries the full list of known schemes, so
// every CLI and the daemon surface the same text.
type UnknownSchemeError = pspec.UnknownNameError

// BadSpecError reports a syntactically or semantically malformed
// scheme spec (bad parameter name, unparsable value, stray token).
type BadSpecError = pspec.BadSpecError

// IsSpecError reports whether err (anywhere in its chain) is a scheme
// spec error — the condition under which the daemon answers 400 with
// the known-scheme list instead of 500. Spec errors of other domains
// (workload specs) are not scheme spec errors.
func IsSpecError(err error) bool {
	return pspec.SpecErrorDomain(err) == Domain
}
