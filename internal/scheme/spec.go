// Package scheme is the registry of fault-tolerance schemes: it maps
// scheme names to factories that build detectors and pipeline
// configurations from typed, validated parameters, and it owns the
// one spec syntax every layer shares —
//
//	name                      plain scheme, all parameters default
//	name?k=v,k=v              parameterized ("faulthound?tcam=16,delay=6,lsq=off")
//	name?k=v1|v2|v3           sensitivity sweep, fanned out by Expand
//
// A parsed Spec is canonical: parameters are sorted by name, values
// are re-encoded in canonical form, and parameters equal to their
// default are elided — so "faulthound?delay=7,tcam=32" and
// "faulthound" are one spec, one campaign cell, and one server
// spec-hash. Plain scheme names canonicalize to themselves, which is
// what keeps pre-registry artifacts (journals, manifests, spec
// hashes) byte-identical.
//
// The registry itself (Register, Parse, Build, Names) lives in
// registry.go; the built-in schemes of the paper's evaluation are
// registered by builtin.go. See docs/SCHEMES.md.
package scheme

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Spec is one resolved scheme specification: a scheme name plus its
// canonically encoded non-default parameters. The zero Spec is
// invalid. Spec is comparable (it is two strings), so it can key maps
// and campaign cells directly.
type Spec struct {
	// Name is the registered scheme name ("faulthound", "pbfs", ...).
	Name string
	// Query is the canonical parameter encoding: "k=v" pairs sorted by
	// key, joined with commas, default-valued parameters elided. Empty
	// when every parameter is at its default.
	Query string
}

// String renders the canonical spec: the bare name, or "name?query".
func (s Spec) String() string {
	if s.Query == "" {
		return s.Name
	}
	return s.Name + "?" + s.Query
}

// MarshalJSON encodes the spec as its canonical string, so a Spec
// inside a manifest, journal, or spec-hash document serializes exactly
// as the bare scheme name used to.
func (s Spec) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// UnmarshalJSON decodes a canonical spec string. Parsing is syntactic
// (FromString): unknown names round-trip so old artifacts stay
// readable; validation happens when the spec is built.
func (s *Spec) UnmarshalJSON(b []byte) error {
	var str string
	if err := json.Unmarshal(b, &str); err != nil {
		return err
	}
	*s = FromString(str)
	return nil
}

// FromString parses a spec string syntactically: split the name at the
// first '?', sort the parameter tokens. It never fails and does not
// consult the registry — use it for trusted, already-canonical input
// (journals, manifests); use Parse for user input.
func FromString(raw string) Spec {
	raw = strings.TrimSpace(raw)
	name, query, ok := strings.Cut(raw, "?")
	if !ok || query == "" {
		return Spec{Name: name}
	}
	parts := strings.Split(query, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	sort.Strings(parts)
	return Spec{Name: name, Query: strings.Join(parts, ",")}
}

// UnknownSchemeError reports a spec whose scheme name is not
// registered. Its message carries the full list of known schemes, so
// every CLI and the daemon surface the same text.
type UnknownSchemeError struct{ Name string }

func (e *UnknownSchemeError) Error() string {
	return fmt.Sprintf("unknown scheme %q (known: %s)", e.Name, strings.Join(Names(), ", "))
}

// BadSpecError reports a syntactically or semantically malformed
// scheme spec (bad parameter name, unparsable value, stray token).
type BadSpecError struct {
	Spec   string // the offending spec as written
	Reason string
}

func (e *BadSpecError) Error() string {
	return fmt.Sprintf("bad scheme spec %q: %s", e.Spec, e.Reason)
}

// IsSpecError reports whether err (anywhere in its chain) is a scheme
// spec error — the condition under which the daemon answers 400 with
// the known-scheme list instead of 500.
func IsSpecError(err error) bool {
	var u *UnknownSchemeError
	var b *BadSpecError
	return errors.As(err, &u) || errors.As(err, &b)
}
