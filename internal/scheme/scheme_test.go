package scheme

import (
	"encoding/json"
	"strings"
	"testing"

	"faulthound/internal/pipeline"
)

// TestCanonicalization: parameter order is irrelevant, defaults are
// elided, value encodings normalize.
func TestCanonicalization(t *testing.T) {
	cases := []struct{ in, want string }{
		{"faulthound", "faulthound"},
		{"faulthound?tcam=16,delay=6", "faulthound?delay=6,tcam=16"},
		{"faulthound?delay=6,tcam=16", "faulthound?delay=6,tcam=16"},
		{"faulthound?tcam=32,delay=7", "faulthound"}, // all defaults elide
		{"faulthound?lsq=off", "faulthound?lsq=off"},
		{"faulthound?lsq=false", "faulthound?lsq=off"}, // bool encodings normalize
		{"faulthound?lsq=on", "faulthound"},
		{"faulthound?tcam=016", "faulthound?tcam=16"}, // int encodings normalize
		{"srt-iso?coverage=0.850", "srt-iso?coverage=0.85"},
		{"srt-iso?coverage=0.75", "srt-iso"},
		{"pbfs?entries=1024", "pbfs?entries=1024"},
		{"pbfs?entries=2048", "pbfs"},
		{"baseline", "baseline"},
		{" faulthound?tcam=16 , delay=6 ", "faulthound?delay=6,tcam=16"},
	}
	for _, c := range cases {
		sp, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if sp.String() != c.want {
			t.Errorf("Parse(%q) = %q, want %q", c.in, sp.String(), c.want)
		}
	}

	a, _ := Parse("faulthound?tcam=16,delay=6")
	b, _ := Parse("faulthound?delay=6,tcam=16")
	if a != b {
		t.Errorf("equivalent specs not comparable-equal: %v vs %v", a, b)
	}
}

// TestParseErrors: unknown schemes and malformed parameters produce
// the shared error text with the known-scheme list.
func TestParseErrors(t *testing.T) {
	if _, err := Parse("bogus"); err == nil || !strings.Contains(err.Error(), "unknown scheme") ||
		!strings.Contains(err.Error(), "faulthound") {
		t.Errorf("unknown scheme error = %v", err)
	}
	for _, in := range []string{
		"faulthound?bogus=1",       // unknown parameter
		"faulthound?tcam=x",        // not an integer
		"faulthound?tcam=0",        // below minimum
		"faulthound?tcam=-4",       // negative
		"faulthound?lsq=7",         // not a bool
		"faulthound?tcam",          // missing value
		"faulthound?tcam=1,tcam=2", // duplicate
		"?tcam=1",                  // empty name
	} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) accepted", in)
		} else if !IsSpecError(err) {
			t.Errorf("Parse(%q) error not a spec error: %v", in, err)
		}
	}
	if IsSpecError(nil) {
		t.Error("nil is a spec error")
	}
}

// TestExpand: sweep values fan out in written order; cartesian
// products vary later parameters fastest; duplicates collapse.
func TestExpand(t *testing.T) {
	specs, err := Expand("faulthound?tcam=8|16|32")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"faulthound?tcam=8", "faulthound?tcam=16", "faulthound"}
	if len(specs) != len(want) {
		t.Fatalf("expanded to %v", specs)
	}
	for i, w := range want {
		if specs[i].String() != w {
			t.Errorf("specs[%d] = %q, want %q", i, specs[i], w)
		}
	}

	specs, err = Expand("faulthound?tcam=8|16,delay=6|7")
	if err != nil {
		t.Fatal(err)
	}
	want = []string{
		"faulthound?delay=6,tcam=8", "faulthound?tcam=8",
		"faulthound?delay=6,tcam=16", "faulthound?tcam=16",
	}
	if len(specs) != len(want) {
		t.Fatalf("cartesian expanded to %v", specs)
	}
	for i, w := range want {
		if specs[i].String() != w {
			t.Errorf("cartesian specs[%d] = %q, want %q", i, specs[i], w)
		}
	}

	if _, err := Parse("faulthound?tcam=8|16"); err == nil {
		t.Error("Parse accepted sweep syntax")
	}
	if _, err := Expand("faulthound?tcam=8||16"); err == nil {
		t.Error("empty sweep value accepted")
	}
}

// TestParseList: commas separate schemes and parameters; '='-bearing
// tokens attach to the previous scheme.
func TestParseList(t *testing.T) {
	specs, err := ParseList("faulthound?tcam=16,delay=6,pbfs,baseline")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"faulthound?delay=6,tcam=16", "pbfs", "baseline"}
	if len(specs) != len(want) {
		t.Fatalf("list parsed to %v", specs)
	}
	for i, w := range want {
		if specs[i].String() != w {
			t.Errorf("list[%d] = %q, want %q", i, specs[i], w)
		}
	}
	if _, err := ParseList("tcam=16,faulthound"); err == nil {
		t.Error("leading parameter accepted")
	}
	specs, err = ParseList("faulthound?tcam=8|16,pbfs")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 3 {
		t.Fatalf("sweep in list parsed to %v", specs)
	}
}

// TestFromStringAndJSON: syntactic round-trips, including unknown
// names (old artifacts must stay readable).
func TestFromStringAndJSON(t *testing.T) {
	if sp := FromString("faulthound"); sp != (Spec{Name: "faulthound"}) {
		t.Errorf("FromString plain = %+v", sp)
	}
	if sp := FromString("x?b=2,a=1"); sp.String() != "x?a=1,b=2" {
		t.Errorf("FromString sorts: %q", sp.String())
	}
	b, err := json.Marshal(Spec{Name: "faulthound", Query: "tcam=16"})
	if err != nil || string(b) != `"faulthound?tcam=16"` {
		t.Errorf("MarshalJSON = %s, %v", b, err)
	}
	var sp Spec
	if err := json.Unmarshal([]byte(`"faulthound?tcam=16"`), &sp); err != nil || sp.Query != "tcam=16" {
		t.Errorf("UnmarshalJSON = %+v, %v", sp, err)
	}
	if err := json.Unmarshal([]byte(`"baseline"`), &sp); err != nil || sp != (Spec{Name: "baseline"}) {
		t.Errorf("UnmarshalJSON plain = %+v, %v", sp, err)
	}
}

// TestBuildInstances: every registered scheme builds from its plain
// spec; detector presence matches the scheme class; parameters reach
// the built artifacts.
func TestBuildInstances(t *testing.T) {
	withDetector := map[string]bool{
		"pbfs": true, "pbfs-biased": true, "faulthound-backend": true,
		"faulthound": true, "fh-be": true, "fh-be-nolsq": true,
		"fh-be-no2level": true, "fh-be-nocluster-no2level": true,
		"fh-be-full-rollback": true,
		"baseline":            false, "srt-iso": false, "srt": false,
	}
	for _, name := range Names() {
		inst, err := Build(Spec{Name: name}, Env{})
		if err != nil {
			t.Errorf("Build(%s): %v", name, err)
			continue
		}
		want, known := withDetector[name]
		if !known {
			t.Errorf("scheme %s missing from the detector expectation table", name)
			continue
		}
		if got := inst.NewDetector != nil; got != want {
			t.Errorf("scheme %s: detector presence = %v, want %v", name, got, want)
		}
		if inst.NewDetector != nil {
			if d := inst.NewDetector(); d == nil {
				t.Errorf("scheme %s: NewDetector returned nil", name)
			} else if d.Name() != name {
				t.Errorf("scheme %s: detector name = %q", name, d.Name())
			}
		}
	}

	// The delay parameter reaches the pipeline configuration.
	inst, err := Build(MustParse("faulthound?delay=5"), Env{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := pipeline.DefaultConfig(1)
	inst.Configure(&cfg)
	if cfg.DelayBuffer != 5 {
		t.Errorf("delay parameter not applied: DelayBuffer = %d", cfg.DelayBuffer)
	}

	// srt-iso: env coverage applies only when the spec is silent.
	inst, _ = Build(Spec{Name: "srt-iso"}, Env{SRTCoverage: 0.5})
	cfg = pipeline.DefaultConfig(1)
	inst.Configure(&cfg)
	if cfg.ShadowRedundancy != 0.5 {
		t.Errorf("env coverage not applied: %v", cfg.ShadowRedundancy)
	}
	inst, _ = Build(MustParse("srt-iso?coverage=0.9"), Env{SRTCoverage: 0.5})
	cfg = pipeline.DefaultConfig(1)
	inst.Configure(&cfg)
	if cfg.ShadowRedundancy != 0.9 {
		t.Errorf("explicit coverage not applied: %v", cfg.ShadowRedundancy)
	}

	// Build re-validates specs arriving via FromString.
	if _, err := Build(FromString("nope?x=1"), Env{}); err == nil {
		t.Error("Build accepted an unknown scheme")
	}
	if _, err := Build(FromString("faulthound?tcam=zap"), Env{}); err == nil {
		t.Error("Build accepted a bad parameter value")
	}
}

// TestResolvedAndMetadata: the self-describing forms cover every
// parameter.
func TestResolvedAndMetadata(t *testing.T) {
	r, err := Resolved(MustParse("faulthound?tcam=8"))
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"tcam=8", "delay=7", "lsq=on", "2level=on", "squash=on", "loosen=4"} {
		if !strings.Contains(r, frag) {
			t.Errorf("Resolved missing %q: %s", frag, r)
		}
	}
	if r, _ := Resolved(Spec{Name: "baseline"}); r != "baseline" {
		t.Errorf("Resolved(baseline) = %q", r)
	}

	all := All()
	if len(all) != len(Names()) {
		t.Fatalf("All() has %d entries, Names() %d", len(all), len(Names()))
	}
	b, err := json.Marshal(all)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{`"faulthound"`, `"tcam"`, `"int"`, `"default":"32"`} {
		if !strings.Contains(string(b), frag) {
			t.Errorf("metadata JSON missing %s", frag)
		}
	}
	if !strings.Contains(Describe(), "tcam") || !strings.Contains(Usage(), "faulthound") {
		t.Error("Describe/Usage incomplete")
	}
}

// MustParse is a test helper: Parse or panic.
func MustParse(s string) Spec {
	sp, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return sp
}
