// Package wgen is the generated-workload registry: it maps workload
// generator names to factories that build deterministic programs from
// typed, validated parameters, speaking the same canonical spec syntax
// as the scheme registry (internal/pspec):
//
//	gen?stride=64,chase=4,vlocal=0.85,seg=256k,phase=2,plant=3
//	gen?stride=8|64|512           sensitivity sweep, fanned out by Expand
//	replay?trace=stream.fhws      re-feed a recorded memory stream
//
// A canonical workload spec is a campaign cell's Bench string: it flows
// CLI flag → spec hash → journal/results.csv/summary.json exactly like
// a scheme spec, and the same spec string reproduces a bit-identical
// program (and therefore a bit-identical committed stream) regardless
// of worker count or host.
//
// The stream recorder (record.go) captures a run's committed
// load/store address+value stream through pipeline.Core.SetMemHook;
// the replay builder (replay.go) turns such a stream back into a
// program, enabling differential tests that run two detector schemes
// over byte-identical streams. See docs/GENERATED-WORKLOADS.md.
package wgen

import (
	"fmt"
	"strings"

	"faulthound/internal/prog"
	"faulthound/internal/pspec"
)

// Domain is this registry's noun in spec error messages; the daemon
// keys its known_workloads 400 shape off it.
const Domain = "workload"

// Spec is a canonical workload spec (shared pspec.Spec).
type Spec = pspec.Spec

// Workload is one built generated workload, ready to construct
// per-thread programs exactly like a workload.Benchmark.
type Workload struct {
	// Spec is the canonical spec the workload was built from; its
	// string form is the campaign cell's Bench label.
	Spec Spec
	// SegBytes is the per-thread data segment size.
	SegBytes uint64
	// Build constructs the program with its data segment at base,
	// using seed for deterministic initialization.
	Build func(base, seed uint64) *prog.Program
}

// Generator is one registry entry: name, help line, parameter
// metadata, and the factory.
type Generator struct {
	Name   string
	Help   string
	Params []pspec.Param
	// Build constructs the workload. sp is the canonical spec (for
	// labeling), v the typed parameter view.
	Build func(sp Spec, v pspec.Values) (Workload, error)
}

var (
	reg      = pspec.NewRegistry(Domain)
	builders = map[string]*Generator{}
)

// register adds a generator at init time.
func register(g Generator) {
	if g.Name == "" || g.Build == nil {
		panic("wgen: register needs a name and a build function")
	}
	reg.Register(pspec.Entry{Name: g.Name, Help: g.Help, Params: g.Params})
	gen := g
	builders[g.Name] = &gen
}

// Names lists every registered generator name in registration order.
func Names() []string { return reg.Names() }

// IsGenerated reports whether a workload spec string names a
// registered generator — the test internal/workload uses to route a
// Bench string here instead of the Table-1 registry. Only the name
// part is consulted, so malformed parameters still come back through
// Build as workload spec errors rather than "unknown benchmark".
func IsGenerated(raw string) bool {
	name, _, _ := strings.Cut(strings.TrimSpace(raw), "?")
	return reg.Has(strings.TrimSpace(name))
}

// FromString parses a spec string syntactically without consulting
// the registry — for trusted, already-canonical input (journals,
// campaign cells); use Parse for user input.
func FromString(raw string) Spec { return pspec.FromString(raw) }

// Parse validates one workload spec string and returns its canonical
// Spec. Sweep syntax ('|') is an error here; use Expand for fan-out.
func Parse(raw string) (Spec, error) { return reg.Parse(raw) }

// Valid reports whether raw parses against the registry.
func Valid(raw string) bool { return reg.Valid(raw) }

// Expand parses one workload spec string, fanning out '|' sweep
// values into the cartesian product of canonical Specs.
func Expand(raw string) ([]Spec, error) { return reg.Expand(raw) }

// SplitList splits a comma-separated workload list into individual
// spec strings ('=' tokens without '?' attach to the previous item).
func SplitList(raw string) ([]string, error) { return reg.SplitList(raw) }

// Build constructs the workload of a spec. The spec is re-validated
// (it may come from an untrusted journal or manifest via FromString).
func Build(sp Spec) (Workload, error) {
	v, err := reg.ValuesOf(sp)
	if err != nil {
		return Workload{}, err
	}
	g, ok := builders[sp.Name]
	if !ok {
		return Workload{}, fmt.Errorf("wgen: no factory for %q", sp.Name)
	}
	w, err := g.Build(sp, v)
	if err != nil {
		return Workload{}, err
	}
	w.Spec = sp
	return w, nil
}

// Resolved renders the spec with every parameter explicit (defaults
// filled in), in declaration order.
func Resolved(sp Spec) (string, error) { return reg.Resolved(sp) }

// Usage returns the one-line generator list for CLI flag help.
func Usage() string { return reg.Usage() }

// Describe renders the full self-describing registry for
// -list-workloads; docs/GENERATED-WORKLOADS.md mirrors it.
func Describe() string { return reg.Describe() }

// All returns the registry metadata in registration order, served by
// the daemon's /v1/workloads endpoint alongside the fixed benchmarks.
func All() []pspec.Metadata { return reg.All() }

// IsSpecError reports whether err (anywhere in its chain) is a
// workload spec error — the condition under which the daemon answers
// 400 with the known-workload list instead of 500.
func IsSpecError(err error) bool {
	return pspec.SpecErrorDomain(err) == Domain
}

// badSpec builds a workload-domain spec error for factories.
func badSpec(sp Spec, reason string) error {
	return &pspec.BadSpecError{Domain: Domain, Spec: sp.String(), Reason: reason}
}
