package wgen

import (
	"bytes"
	"math"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"faulthound/internal/pipeline"
	"faulthound/internal/prog"
)

// TestStreamEncodeDecode: the wire format round-trips edge-case ops
// (zero and max values, descending addresses — negative deltas) and
// the hash is a pure function of the op sequence.
func TestStreamEncodeDecode(t *testing.T) {
	s := &Stream{
		Workload: "gen?stride=64",
		Seed:     7,
		Ops: []MemOp{
			{Store: false, Addr: 0x10000, Val: 0},
			{Store: true, Addr: 0x10008, Val: math.MaxUint64},
			{Store: false, Addr: 0x08000, Val: 1}, // negative delta
			{Store: true, Addr: 0x08000, Val: 0x3a7},
		},
	}
	var buf bytes.Buffer
	if err := s.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadStream(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Fatalf("round trip: got %+v, want %+v", got, s)
	}
	if got.Hash() != s.Hash() {
		t.Fatal("hash changed across a round trip")
	}

	// The hash fingerprints ops only: a different label hashes equal, a
	// different op does not.
	relabel := &Stream{Workload: "other", Seed: 9, Ops: s.Ops}
	if relabel.Hash() != s.Hash() {
		t.Error("hash depends on the header")
	}
	mut := &Stream{Ops: append([]MemOp(nil), s.Ops...)}
	mut.Ops[2].Val++
	if mut.Hash() == s.Hash() {
		t.Error("hash missed an op mutation")
	}
}

// TestStreamReadRejects: corrupt artifacts fail loudly, not quietly.
func TestStreamReadRejects(t *testing.T) {
	s := &Stream{Workload: "gen", Ops: []MemOp{{Addr: 8, Val: 1}}}
	var buf bytes.Buffer
	if err := s.Write(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	for name, b := range map[string][]byte{
		"empty":      {},
		"bad magic":  []byte("NOPE1\n{}\n"),
		"bad header": []byte(streamMagic + "{oops\n"),
		"truncated":  full[:len(full)-1],
	} {
		if _, err := ReadStream(bytes.NewReader(b)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// recordRun builds a single-thread core over p and records the first
// max committed thread-0 memory ops.
func recordRun(t *testing.T, p *prog.Program, label string, max int) *Stream {
	t.Helper()
	c, err := pipeline.New(pipeline.DefaultConfig(1), []*prog.Program{p}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder(label, 3, max)
	rec.Attach(c)
	for !rec.Full() && !c.AllHalted() && c.Cycle() < 5_000_000 {
		c.Run(4096)
	}
	if !rec.Full() {
		t.Fatalf("recorded only %d of %d ops", len(rec.Stream().Ops), max)
	}
	return rec.Stream()
}

// genStream records a gen-workload stream of n ops.
func genStream(t *testing.T, raw string, n int) *Stream {
	t.Helper()
	sp, err := Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	w, err := Build(sp)
	if err != nil {
		t.Fatal(err)
	}
	return recordRun(t, w.Build(prog.DefaultDataBase, 3), sp.String(), n)
}

// TestRecordReplayRoundTrip is the regression test for the replay
// contract: a replayed stream's first pass re-commits the recorded
// load/store sequence byte for byte — same ops, same hash — even at a
// different data base.
func TestRecordReplayRoundTrip(t *testing.T) {
	const n = 600
	s1 := genStream(t, "gen?stride=64,chase=2,vlocal=0.7,seg=32k,plant=2", n)

	path := filepath.Join(t.TempDir(), "s1.fhws")
	if err := s1.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	disk, err := ReadStreamFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(disk.Ops, s1.Ops) {
		t.Fatal("artifact round trip changed the ops")
	}

	w, err := FromStream(disk)
	if err != nil {
		t.Fatal(err)
	}
	s2 := recordRun(t, w.Build(prog.DefaultDataBase, 0), "replay", n)
	if !reflect.DeepEqual(s2.Ops, s1.Ops) {
		t.Fatal("replayed stream is not byte-identical to the recording")
	}
	if s2.Hash() != s1.Hash() {
		t.Fatalf("replay hash %s, want %s", s2.Hash(), s1.Hash())
	}

	// Replay is base-independent: same op sequence modulo the base
	// shift, so the hash computed over rebased addresses differs but
	// the op count and store/load pattern match.
	lo := s1.Ops[0].Addr
	for _, op := range s1.Ops {
		if op.Addr < lo {
			lo = op.Addr
		}
	}
	const altBase = prog.DefaultDataBase + 1<<20
	s3 := recordRun(t, w.Build(altBase, 0), "replay", n)
	for i := range s3.Ops {
		if s3.Ops[i].Store != s1.Ops[i].Store || s3.Ops[i].Addr-altBase != s1.Ops[i].Addr-lo {
			t.Fatalf("op %d: rebased replay diverged", i)
		}
	}

	// The replay spec is rejected when the trace is missing, with a
	// workload-domain error (the CLI and daemon both branch on it).
	if _, err := Build(FromString("replay?trace=" + filepath.Join(t.TempDir(), "gone.fhws"))); err == nil || !IsSpecError(err) {
		t.Fatalf("missing trace: err = %v, want workload spec error", err)
	}
}

// TestFromStreamValidation: replay rejects streams it cannot honor.
func TestFromStreamValidation(t *testing.T) {
	if _, err := FromStream(&Stream{}); err == nil {
		t.Error("empty stream accepted")
	}
	if _, err := FromStream(&Stream{Ops: []MemOp{{Addr: 12}}}); err == nil ||
		!strings.Contains(err.Error(), "unaligned") {
		t.Errorf("unaligned address: err = %v", err)
	}
	if _, err := FromStream(&Stream{Ops: []MemOp{{Addr: 0}, {Addr: replaySegMax + 8}}}); err == nil ||
		!strings.Contains(err.Error(), "footprint") {
		t.Errorf("oversized footprint: err = %v", err)
	}
}
