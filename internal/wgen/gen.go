package wgen

import (
	"fmt"
	"hash/fnv"

	"faulthound/internal/isa"
	"faulthound/internal/prog"
	"faulthound/internal/pspec"
	"faulthound/internal/stats"
)

// The gen generator produces a parameterized access-pattern kernel
// whose knobs map onto the stream properties that drive FaultHound's
// coverage and false-positive behavior (PAPER.md §3-5): address
// regularity (stride, chase — PRESAGE's structured-address axis),
// store-value locality (vlocal), working-set size (seg), filter
// re-learning pressure (phase), delinquent-bit pressure (plant,
// the pattern the second-level filter exists to suppress), and the
// access inter-arrival process (arrive/rate: uniform back-to-back,
// poisson, or gamma-shaped gaps drawn at build time).

// genUnroll is the number of stream elements emitted per inner-loop
// pass; the build-time RNG picks each element's store-value source, so
// the value-local fraction is realized across the unrolled block.
const genUnroll = 8

const (
	genSegMin = 4096     // below this the kernel degenerates
	genSegMax = 16 << 20 // keeps offsets and data images sane

	// genGapMax bounds one drawn inter-arrival gap (in filler
	// instructions) so a tail sample cannot bloat the program.
	genGapMax = 64
)

// genRateMin keeps the mean gap (≈ 1/rate) within genGapMax.
const genRateMin = 1.0 / genGapMax

func init() {
	register(Generator{
		Name: "gen",
		Help: "parameterized access-pattern kernel (stride/chase/value-locality)",
		Params: []pspec.Param{
			{Name: "stride", Kind: pspec.Int, Default: "8", Min: 8,
				Help: "stream stride in bytes (multiple of 8)"},
			{Name: "chase", Kind: pspec.Int, Default: "0",
				Help: "pointer-chase loads per stream element (0-8)"},
			{Name: "vlocal", Kind: pspec.Float, Default: "0.9",
				Help: "fraction of stores writing the stable value (0-1)"},
			{Name: "seg", Kind: pspec.Size, Default: "64k", Min: genSegMin,
				Help: "per-thread data segment size"},
			{Name: "phase", Kind: pspec.Int, Default: "1", Min: 1,
				Help: "program phases cycled per outer iteration (1-16)"},
			{Name: "plant", Kind: pspec.Int, Default: "0",
				Help: "planted delinquent-bit toggle slots (0-64)"},
			{Name: "arrive", Kind: pspec.Str, Default: "uniform",
				Help: "inter-access arrival process: uniform (back-to-back), poisson, gamma"},
			{Name: "rate", Kind: pspec.Float, Default: "0.25",
				Help: "mean accesses per instruction slot for poisson/gamma arrivals (1/64-1]"},
		},
		Build: buildGen,
	})
}

// genLayout is the validated segment geometry shared by the program
// builder; everything derives from the canonical parameters, never
// from the host.
type genLayout struct {
	stride, chase, phases, plant int
	vlocal                       float64
	segBytes                     uint64
	arrive                       string
	rate                         float64

	segWords    uint64
	chaseWords  uint64 // pointer-chase cycle at the segment start
	streamBase  uint64 // first stream word
	regionWords uint64 // stream words per phase
	blockSpan   uint64 // bytes walked per phase pass (multiple of unroll*stride)
}

func genPlan(sp Spec, v pspec.Values) (genLayout, error) {
	l := genLayout{
		stride:   v.Int("stride"),
		chase:    v.Int("chase"),
		phases:   v.Int("phase"),
		plant:    v.Int("plant"),
		vlocal:   v.Float("vlocal"),
		segBytes: v.Size("seg"),
		arrive:   v.Str("arrive"),
		rate:     v.Float("rate"),
	}
	switch {
	case l.stride%8 != 0:
		return l, badSpec(sp, fmt.Sprintf("stride %d is not a multiple of 8", l.stride))
	case l.chase > 8:
		return l, badSpec(sp, fmt.Sprintf("chase %d exceeds the maximum 8", l.chase))
	case l.vlocal < 0 || l.vlocal > 1:
		return l, badSpec(sp, fmt.Sprintf("vlocal %g is outside [0, 1]", l.vlocal))
	case l.segBytes > genSegMax:
		return l, badSpec(sp, fmt.Sprintf("seg %d exceeds the maximum %d", l.segBytes, uint64(genSegMax)))
	case l.phases > 16:
		return l, badSpec(sp, fmt.Sprintf("phase %d exceeds the maximum 16", l.phases))
	case l.plant > 64:
		return l, badSpec(sp, fmt.Sprintf("plant %d exceeds the maximum 64", l.plant))
	case l.arrive != "uniform" && l.arrive != "poisson" && l.arrive != "gamma":
		return l, badSpec(sp, fmt.Sprintf("arrive %q is not uniform, poisson, or gamma", l.arrive))
	case l.rate < genRateMin || l.rate > 1:
		return l, badSpec(sp, fmt.Sprintf("rate %g is outside [%g, 1]", l.rate, genRateMin))
	}
	l.segWords = l.segBytes / 8
	if l.chase > 0 {
		l.chaseWords = l.segWords / 4
		if l.chaseWords > 1024 {
			l.chaseWords = 1024
		}
	}
	l.streamBase = l.chaseWords
	streamWords := l.segWords - l.chaseWords - uint64(l.plant)
	l.regionWords = streamWords / uint64(l.phases)
	step := uint64(genUnroll * l.stride)
	l.blockSpan = l.regionWords * 8 / step * step
	if l.blockSpan < step {
		return l, badSpec(sp, fmt.Sprintf(
			"seg too small: each of %d phases needs at least %d bytes of stream (stride %d)",
			l.phases, step, l.stride))
	}
	return l, nil
}

// specSeed folds the canonical spec into the build seed so distinct
// specs get distinct (but reproducible) data images.
func specSeed(sp Spec, seed uint64) uint64 {
	h := fnv.New64a()
	h.Write([]byte(sp.String()))
	return seed ^ h.Sum64()
}

func buildGen(sp Spec, v pspec.Values) (Workload, error) {
	l, err := genPlan(sp, v)
	if err != nil {
		return Workload{}, err
	}
	return Workload{
		SegBytes: l.segBytes,
		Build: func(base, seed uint64) *prog.Program {
			return genProgram(sp, l, base, seed)
		},
	}, nil
}

func genProgram(sp Spec, l genLayout, base, seed uint64) *prog.Program {
	b := prog.NewBuilderAt(sp.String(), base, l.segBytes)
	rng := stats.NewRNG(specSeed(sp, seed))

	// Data image: a pointer-chase cycle at the front, low-entropy
	// words in the stream region (capped — uninitialized words read 0,
	// which is just more value locality).
	if l.chaseWords > 0 {
		permutationCycle(b, 0, l.chaseWords, rng.Uint64())
	}
	initWords := l.segWords - l.streamBase - uint64(l.plant)
	if initWords > 4096 {
		initWords = 4096
	}
	for i := uint64(0); i < initWords; i++ {
		b.Word((l.streamBase+i)*8, rng.Uint64()&0xff)
	}

	// r2 base, r4 load temp, r5 stable value, r6 chase pointer,
	// r7 scratch, r8 stream cursor, r9 iteration counter, r10 phase
	// limit, r12 toggle value, r13 noisy value.
	b.MovU64(2, base)
	b.MovI(5, 0)
	b.MovI(9, 0)
	b.MovI(12, 0)
	b.MovI(13, 0x3a7)
	if l.chase > 0 {
		b.MovU64(6, base)
	}
	b.Label("top")
	for p := 0; p < l.phases; p++ {
		regionBase := base + (l.streamBase+uint64(p)*l.regionWords)*8
		b.MovU64(8, regionBase)
		b.MovU64(10, regionBase+l.blockSpan)
		loop := fmt.Sprintf("phase%d", p)
		b.Label(loop)
		for i := 0; i < genUnroll; i++ {
			off := int32(i * l.stride)
			emitGap(b, rng, l)
			b.Ld(4, 8, off)
			b.Op3(isa.ADD, 5, 5, 4)
			b.OpI(isa.ANDI, 5, 5, 0xff)
			for c := 0; c < l.chase; c++ {
				b.Ld(6, 6, 0)
			}
			if rng.Float64() < l.vlocal {
				b.St(8, off, 5) // value-local store
			} else {
				// High-entropy store: mix the loaded value in and
				// perturb with a build-time constant.
				b.Op3(isa.ADD, 13, 13, 4)
				b.OpI(isa.XORI, 13, 13, int32(rng.Intn(1<<12))|1)
				b.St(8, off, 13)
			}
		}
		b.OpI(isa.ADDI, 8, 8, int32(genUnroll*l.stride))
		b.Br(isa.BLT, 8, 10, loop)
	}
	b.OpI(isa.ADDI, 9, 9, 1)
	if l.plant > 0 {
		// Delinquent-bit pressure: every 4th outer iteration, flip bit
		// 0 of the planted value — stable runs between toggles re-arm
		// a biased filter forever (Section 3.2).
		b.OpI(isa.ANDI, 7, 9, 3)
		b.Br(isa.BNE, 7, 0, "planted")
		b.OpI(isa.XORI, 12, 12, 1)
		b.Label("planted")
		for t := 0; t < l.plant; t++ {
			b.St(2, int32(l.segBytes-8*uint64(t+1)), 12)
		}
	}
	b.Jmp("top")
	return b.MustBuild()
}

// emitGap inserts one drawn inter-arrival gap before a stream element:
// gap-many filler instructions (r7 scratch increments) that space the
// memory accesses out in commit order. The draw comes from the build
// RNG, so the same spec+seed reproduces the same schedule. uniform is
// the back-to-back legacy behavior and consumes no draws, keeping
// pre-arrival canonical specs byte-identical programs.
func emitGap(b *prog.Builder, rng *stats.RNG, l genLayout) {
	gap := 0
	switch l.arrive {
	case "poisson":
		// Bernoulli(rate) per slot ⇒ geometric inter-arrival times with
		// mean 1/rate slots (one of which is the access itself).
		gap = rng.Geometric(l.rate) - 1
	case "gamma":
		// Erlang-2 shape: the sum of two geometrics at twice the rate
		// keeps the mean but narrows the spread (less bursty than
		// poisson, the classic gamma-arrival middle ground).
		p := 2 * l.rate
		if p > 1 {
			p = 1
		}
		gap = (rng.Geometric(p) - 1) + (rng.Geometric(p) - 1)
	default: // uniform: back to back
		return
	}
	if gap > genGapMax {
		gap = genGapMax
	}
	for g := 0; g < gap; g++ {
		b.OpI(isa.ADDI, 7, 7, 1)
	}
}

// permutationCycle writes a single-cycle permutation over words
// [firstWord, firstWord+count) holding absolute next-element
// addresses, for the pointer-chase region (same construction as the
// micro-chase kernel).
func permutationCycle(b *prog.Builder, firstWord, count, seed uint64) {
	rng := stats.NewRNG(seed)
	idx := make([]uint64, count)
	for i := range idx {
		idx[i] = uint64(i)
	}
	for i := int(count) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		idx[i], idx[j] = idx[j], idx[i]
	}
	for k := uint64(0); k < count; k++ {
		from := firstWord + idx[k]
		to := firstWord + idx[(k+1)%count]
		b.Word(from*8, b.DataBase()+to*8)
	}
}
