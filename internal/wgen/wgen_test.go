package wgen

import (
	"reflect"
	"strings"
	"testing"

	"faulthound/internal/prog"
)

// TestGenCanonicalization: parameter order sorts, default-valued
// parameters elide (so the plain name is the canonical all-defaults
// spelling), and size values render with the largest evenly-dividing
// suffix. Canonical strings are campaign cell Bench labels and spec-
// hash inputs, so these spellings are frozen.
func TestGenCanonicalization(t *testing.T) {
	cases := []struct{ in, want string }{
		{"gen", "gen"},
		{"gen?stride=8", "gen"},            // default elides
		{"gen?vlocal=0.9,stride=8", "gen"}, // all defaults elide
		{"gen?stride=64", "gen?stride=64"},
		{"gen?vlocal=0.85,stride=64", "gen?stride=64,vlocal=0.85"}, // sorted
		{"gen?seg=262144", "gen?seg=256k"},                         // size canonical suffix
		{"gen?seg=64k", "gen"},                                     // default size elides
		{"gen?chase=4,plant=3,phase=2", "gen?chase=4,phase=2,plant=3"},
		{" gen?stride=64 ", "gen?stride=64"},
	}
	for _, c := range cases {
		sp, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if got := sp.String(); got != c.want {
			t.Errorf("Parse(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestGenSweepExpand: '|' fans out the cartesian product, with later-
// declared parameters varying fastest, and canonically-equal alternates
// deduplicate.
func TestGenSweepExpand(t *testing.T) {
	sps, err := Expand("gen?stride=8|64,phase=1|2")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"gen", "gen?phase=2", "gen?stride=64", "gen?phase=2,stride=64"}
	var got []string
	for _, sp := range sps {
		got = append(got, sp.String())
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Expand = %v, want %v", got, want)
	}

	// 8 and 08 are one canonical spec; the duplicate collapses.
	sps, err = Expand("gen?stride=8|08")
	if err != nil {
		t.Fatal(err)
	}
	if len(sps) != 1 || sps[0].String() != "gen" {
		t.Fatalf("dedup Expand = %v", sps)
	}

	if _, err := Parse("gen?stride=8|64"); err == nil {
		t.Fatal("Parse accepted sweep syntax")
	}
}

// TestGenBadSpecs: every rejection is a workload-domain spec error
// (the daemon's known_workloads 400 shape keys on the domain), and the
// message names the offending constraint.
func TestGenBadSpecs(t *testing.T) {
	cases := []struct{ in, frag string }{
		{"nope", "unknown workload"},
		{"gen?bogus=1", "unknown parameter"},
		{"gen?stride=zap", "not an integer"},
		{"gen?stride=4", "below the minimum"},
		{"gen?seg=1g", "exceeds the maximum"},
		{"gen?vlocal=1.5", "outside [0, 1]"},
		{"gen?chase=9", "exceeds the maximum"},
		{"gen?phase=17", "exceeds the maximum"},
		{"gen?plant=65", "exceeds the maximum"},
		{"gen?stride=12", "not a multiple of 8"},
		{"gen?seg=4k,stride=1024", "seg too small"},
		{"replay", "needs trace="},
	}
	for _, c := range cases {
		_, err := func() (Workload, error) {
			sp, err := Parse(c.in)
			if err != nil {
				return Workload{}, err
			}
			return Build(sp)
		}()
		if err == nil {
			t.Errorf("%q: no error", c.in)
			continue
		}
		if !IsSpecError(err) {
			t.Errorf("%q: error %v is not a workload spec error", c.in, err)
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%q: error %q does not mention %q", c.in, err, c.frag)
		}
	}
}

// TestGenProgramDeterminism: the same canonical spec, base, and seed
// build byte-identical programs (the property that makes a spec string
// a reproducible cell identity); a different spec or seed does not.
func TestGenProgramDeterminism(t *testing.T) {
	build := func(raw string, seed uint64) *prog.Program {
		t.Helper()
		sp, err := Parse(raw)
		if err != nil {
			t.Fatal(err)
		}
		w, err := Build(sp)
		if err != nil {
			t.Fatal(err)
		}
		p := w.Build(0x10000, seed)
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
		return p
	}

	const spec = "gen?stride=64,chase=2,vlocal=0.7,seg=32k,phase=2,plant=3"
	p1 := build(spec, 3)
	p2 := build(spec, 3)
	if !reflect.DeepEqual(p1.Code, p2.Code) || !reflect.DeepEqual(p1.Data, p2.Data) {
		t.Fatal("same spec+seed built different programs")
	}

	if p3 := build(spec, 4); reflect.DeepEqual(p1.Data, p3.Data) {
		t.Error("different seed built an identical data image")
	}
	if p4 := build("gen?stride=64,chase=2,vlocal=0.2,seg=32k,phase=2,plant=3", 3); reflect.DeepEqual(p1.Code, p4.Code) {
		t.Error("different vlocal built identical code")
	}
}

// TestGenArrivals: the arrival-process knobs canonicalize (defaults
// elide, so pre-arrival spec strings and hashes are unchanged),
// validate, build deterministically, and actually shape the emitted
// code — poisson/gamma insert filler gaps, uniform stays byte-
// identical to a spec that never mentions the knobs.
func TestGenArrivals(t *testing.T) {
	for _, c := range []struct{ in, want string }{
		{"gen?arrive=uniform", "gen"},                              // default elides
		{"gen?rate=0.25", "gen"},                                   // default elides
		{"gen?arrive=poisson", "gen?arrive=poisson"},               // explicit survives
		{"gen?rate=0.5,arrive=gamma", "gen?arrive=gamma,rate=0.5"}, // sorted
	} {
		sp, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if got := sp.String(); got != c.want {
			t.Errorf("Parse(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"gen?arrive=bursty", "gen?arrive=poisson,rate=0", "gen?arrive=poisson,rate=1.5", "gen?arrive=poisson,rate=0.01"} {
		sp, err := Parse(bad)
		if err == nil {
			_, err = Build(sp)
		}
		if err == nil || !IsSpecError(err) {
			t.Errorf("%q: err = %v, want workload spec error", bad, err)
		}
	}

	build := func(raw string, seed uint64) *prog.Program {
		t.Helper()
		sp, err := Parse(raw)
		if err != nil {
			t.Fatal(err)
		}
		w, err := Build(sp)
		if err != nil {
			t.Fatal(err)
		}
		return w.Build(0x10000, seed)
	}
	// uniform is the legacy back-to-back schedule: spelled out or
	// elided, it canonicalizes away and the program matches a spec that
	// predates the knobs (any non-default rate is a distinct canonical
	// spec and deliberately reseeds the image).
	plain := build("gen?seg=16k", 3)
	if uni := build("gen?seg=16k,arrive=uniform,rate=0.25", 3); !reflect.DeepEqual(plain.Code, uni.Code) {
		t.Error("explicit uniform arrivals changed the program")
	}
	for _, arrive := range []string{"poisson", "gamma"} {
		spec := "gen?seg=16k,arrive=" + arrive
		a := build(spec, 3)
		if b := build(spec, 3); !reflect.DeepEqual(a.Code, b.Code) || !reflect.DeepEqual(a.Data, b.Data) {
			t.Errorf("%s: same spec+seed built different programs", arrive)
		}
		if len(a.Code) <= len(plain.Code) {
			t.Errorf("%s: no gap instructions emitted (%d <= %d)", arrive, len(a.Code), len(plain.Code))
		}
		if c := build(spec, 4); reflect.DeepEqual(a.Code, c.Code) {
			t.Errorf("%s: different seed drew an identical schedule", arrive)
		}
	}
	// A slower rate means longer gaps on average, hence more code.
	slow := build("gen?seg=16k,arrive=poisson,rate=0.0625", 3)
	fast := build("gen?seg=16k,arrive=poisson,rate=1", 3)
	if len(slow.Code) <= len(fast.Code) {
		t.Errorf("rate did not scale gaps: slow %d <= fast %d instructions", len(slow.Code), len(fast.Code))
	}
}

// TestSplitList: comma-separated workload lists keep generated-spec
// parameters attached to their item.
func TestSplitList(t *testing.T) {
	got, err := SplitList("gen?stride=64,seg=256k,bzip2,gen?plant=3")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"gen?stride=64,seg=256k", "bzip2", "gen?plant=3"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("SplitList = %v, want %v", got, want)
	}
	if _, err := SplitList("stride=64,gen"); err == nil {
		t.Fatal("leading parameter token was accepted")
	}
}

// TestResolvedAndMetadata: Resolved fills every default in declaration
// order, and the registry metadata (the /v1/workloads document) carries
// the typed parameter lists.
func TestResolvedAndMetadata(t *testing.T) {
	sp, err := Parse("gen?stride=64")
	if err != nil {
		t.Fatal(err)
	}
	r, err := Resolved(sp)
	if err != nil {
		t.Fatal(err)
	}
	want := "gen?stride=64,chase=0,vlocal=0.9,seg=64k,phase=1,plant=0,arrive=uniform,rate=0.25"
	if r != want {
		t.Fatalf("Resolved = %q, want %q", r, want)
	}

	if !IsGenerated("gen?anything") || !IsGenerated("replay") || IsGenerated("bzip2") {
		t.Fatal("IsGenerated misroutes")
	}

	var gen bool
	for _, m := range All() {
		if m.Name == "gen" && len(m.Params) == 8 {
			gen = true
		}
	}
	if !gen {
		t.Fatalf("registry metadata missing gen params: %+v", All())
	}
}
