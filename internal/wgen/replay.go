package wgen

import (
	"fmt"

	"faulthound/internal/prog"
	"faulthound/internal/pspec"
)

// The replay generator re-feeds a recorded committed memory stream:
// every address and store value is baked into the program as an
// immediate, so the committed load/store address stream and store
// values are identical on every pass and across any worker count —
// the byte-identical-stream property differential detector tests need
// (RepTFD's replay idea, PAPERS.md). Load values match the recording
// exactly on the first pass (the data image holds each address's
// first-loaded value) and stay self-consistent afterwards.

func init() {
	register(Generator{
		Name: "replay",
		Help: "re-feed a recorded committed load/store stream",
		Params: []pspec.Param{
			{Name: "trace", Kind: pspec.Str, Default: "-",
				Help: "stream artifact path (required; from fhsim -record)"},
		},
		Build: buildReplay,
	})
}

func buildReplay(sp Spec, v pspec.Values) (Workload, error) {
	path := v.Str("trace")
	if !v.Explicit("trace") || path == "-" {
		return Workload{}, badSpec(sp, "replay needs trace=<path> (record one with fhsim -record)")
	}
	s, err := ReadStreamFile(path)
	if err != nil {
		return Workload{}, badSpec(sp, err.Error())
	}
	w, err := FromStream(s)
	if err != nil {
		return Workload{}, err
	}
	w.Spec = sp
	return w, nil
}

// replaySegMax bounds the replayed footprint (offsets are int32 and
// the data image is materialized per thread).
const replaySegMax = 64 << 20

// FromStream builds the replay workload for an in-memory stream —
// what buildReplay uses after reading the artifact, and what
// differential tests call directly.
func FromStream(s *Stream) (Workload, error) {
	if len(s.Ops) == 0 {
		return Workload{}, fmt.Errorf("wgen: replay of an empty stream")
	}
	lo, hi := s.Ops[0].Addr, s.Ops[0].Addr
	for _, op := range s.Ops {
		if op.Addr%8 != 0 {
			return Workload{}, fmt.Errorf("wgen: replay: unaligned address %#x", op.Addr)
		}
		if op.Addr < lo {
			lo = op.Addr
		}
		if op.Addr > hi {
			hi = op.Addr
		}
	}
	span := hi + 8 - lo
	if span > replaySegMax {
		return Workload{}, fmt.Errorf("wgen: replay footprint %d exceeds %d bytes", span, uint64(replaySegMax))
	}
	ops := append([]MemOp(nil), s.Ops...)
	return Workload{
		Spec:     Spec{Name: "replay"},
		SegBytes: span,
		Build: func(base, _ uint64) *prog.Program {
			return replayProgram(ops, lo, span, base)
		},
	}, nil
}

func replayProgram(ops []MemOp, lo, span, base uint64) *prog.Program {
	b := prog.NewBuilderAt("replay", base, span)
	// Data image: each address's first access, when it is a load, read
	// that value from the initial image in the recorded run.
	seen := map[uint64]bool{}
	for _, op := range ops {
		if !seen[op.Addr] {
			seen[op.Addr] = true
			if !op.Store {
				b.Word(op.Addr-lo, op.Val)
			}
		}
	}
	// r2 base, r4 load sink, r5 store value.
	b.MovU64(2, base)
	b.Label("loop")
	for _, op := range ops {
		off := int32(op.Addr - lo)
		if op.Store {
			b.MovU64(5, op.Val)
			b.St(2, off, 5)
		} else {
			b.Ld(4, 2, off)
		}
	}
	b.Jmp("loop")
	return b.MustBuild()
}
