package wgen

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"faulthound/internal/pipeline"
)

// MemOp is one committed memory operation of a recorded stream.
type MemOp struct {
	Store bool
	Addr  uint64
	// Val is the loaded value for loads, the stored value for stores.
	Val uint64
}

// Stream is a recorded committed load/store stream: the exact
// sequence of thread-0 memory operations a run retired, with the
// workload and seed that produced it.
type Stream struct {
	// Workload is the canonical spec (or benchmark name) recorded.
	Workload string
	// Seed is the data-initialization seed of the recorded run.
	Seed uint64
	Ops  []MemOp
}

// streamMagic heads the artifact file; the '1' is the format version.
const streamMagic = "FHWS1\n"

// streamHeader is the JSON header line following the magic.
type streamHeader struct {
	Workload string `json:"workload"`
	Seed     uint64 `json:"seed"`
	Ops      int    `json:"ops"`
}

// DefaultRecordOps bounds a recording when the caller does not: long
// enough to span detector warmup plus a measurement window, small
// enough that the replay program stays compact.
const DefaultRecordOps = 4096

// Recorder captures a core's committed memory stream through
// pipeline.Core.SetMemHook. It records thread 0 only (per-thread
// programs are independent copies; one thread's stream is the
// workload's character) and stops itself at Max ops.
type Recorder struct {
	stream Stream
	max    int
}

// NewRecorder creates a recorder for up to max ops (DefaultRecordOps
// when max <= 0), labeled with the recorded workload spec and seed.
func NewRecorder(workload string, seed uint64, max int) *Recorder {
	if max <= 0 {
		max = DefaultRecordOps
	}
	return &Recorder{stream: Stream{Workload: workload, Seed: seed}, max: max}
}

// Attach installs the recorder on a core.
func (r *Recorder) Attach(c *pipeline.Core) {
	c.SetMemHook(func(tid int, store bool, addr, val uint64) {
		if tid != 0 || len(r.stream.Ops) >= r.max {
			return
		}
		r.stream.Ops = append(r.stream.Ops, MemOp{Store: store, Addr: addr, Val: val})
	})
}

// Full reports whether the recorder has reached its op bound.
func (r *Recorder) Full() bool { return len(r.stream.Ops) >= r.max }

// Stream returns the recorded stream.
func (r *Recorder) Stream() *Stream { return &r.stream }

// encodeOps renders the op sequence in the compact wire form: one
// flag byte, zigzag-varint address delta from the previous op, varint
// value. Addresses cluster, so deltas stay short.
func encodeOps(ops []MemOp) []byte {
	var buf bytes.Buffer
	var tmp [binary.MaxVarintLen64]byte
	prev := uint64(0)
	for _, op := range ops {
		flag := byte(0)
		if op.Store {
			flag = 1
		}
		buf.WriteByte(flag)
		buf.Write(tmp[:binary.PutVarint(tmp[:], int64(op.Addr-prev))])
		buf.Write(tmp[:binary.PutUvarint(tmp[:], op.Val)])
		prev = op.Addr
	}
	return buf.Bytes()
}

// Hash returns the hex SHA-256 of the encoded op sequence — a
// base-independent fingerprint two streams can be compared by (the
// header, which carries the workload label, is excluded).
func (s *Stream) Hash() string {
	sum := sha256.Sum256(encodeOps(s.Ops))
	return hex.EncodeToString(sum[:])
}

// Write serializes the stream: magic, one JSON header line, then the
// encoded ops.
func (s *Stream) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(streamMagic); err != nil {
		return err
	}
	hdr, err := json.Marshal(streamHeader{Workload: s.Workload, Seed: s.Seed, Ops: len(s.Ops)})
	if err != nil {
		return err
	}
	bw.Write(hdr)
	bw.WriteByte('\n')
	bw.Write(encodeOps(s.Ops))
	return bw.Flush()
}

// WriteFile writes the stream artifact to path.
func (s *Stream) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadStream parses a stream artifact.
func ReadStream(r io.Reader) (*Stream, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(streamMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("stream: short magic: %w", err)
	}
	if string(magic) != streamMagic {
		return nil, fmt.Errorf("stream: bad magic %q (want %q)", magic, streamMagic)
	}
	line, err := br.ReadBytes('\n')
	if err != nil {
		return nil, fmt.Errorf("stream: header: %w", err)
	}
	var hdr streamHeader
	if err := json.Unmarshal(line, &hdr); err != nil {
		return nil, fmt.Errorf("stream: header: %w", err)
	}
	if hdr.Ops < 0 || hdr.Ops > 1<<24 {
		return nil, fmt.Errorf("stream: implausible op count %d", hdr.Ops)
	}
	s := &Stream{Workload: hdr.Workload, Seed: hdr.Seed, Ops: make([]MemOp, 0, hdr.Ops)}
	prev := uint64(0)
	for i := 0; i < hdr.Ops; i++ {
		flag, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("stream: op %d: %w", i, err)
		}
		if flag > 1 {
			return nil, fmt.Errorf("stream: op %d: bad flag %d", i, flag)
		}
		delta, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("stream: op %d: addr: %w", i, err)
		}
		val, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("stream: op %d: val: %w", i, err)
		}
		addr := prev + uint64(delta)
		s.Ops = append(s.Ops, MemOp{Store: flag == 1, Addr: addr, Val: val})
		prev = addr
	}
	return s, nil
}

// ReadStreamFile parses the stream artifact at path.
func ReadStreamFile(path string) (*Stream, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadStream(f)
}
