package report

import (
	"context"
	"fmt"
	"sync"

	"faulthound/internal/campaign"
	"faulthound/internal/fault"
	"faulthound/internal/obs"
	"faulthound/internal/pipeline"
	"faulthound/internal/scheme"
)

// Recorder is an obs.Sink that captures detection latencies from the
// injection-lifecycle event stream: it pairs each "inject" instant
// with the following "detect" instant on the same track (the same
// vocabulary the daemon's Prometheus histograms consume, docs/OBSERVABILITY.md)
// and records the cycle delta. Safe for concurrent use.
type Recorder struct {
	mu     sync.Mutex
	tracks map[int]*recorderTrack
	// samples accumulates latencies in completion order; Replayer
	// resets the recorder per injection, so ordering never matters.
	samples []uint64
}

type recorderTrack struct {
	injectCycle uint64
	haveInject  bool
	detected    bool
}

// Event implements obs.Sink.
func (r *Recorder) Event(ev obs.Event) {
	if ev.Kind != obs.KindInstant {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.tracks == nil {
		r.tracks = make(map[int]*recorderTrack)
	}
	st := r.tracks[ev.Track]
	if st == nil {
		st = &recorderTrack{}
		r.tracks[ev.Track] = st
	}
	switch ev.Name {
	case "inject":
		st.injectCycle, st.haveInject, st.detected = ev.Cycle, true, false
	case "detect":
		if st.haveInject && !st.detected && ev.Cycle >= st.injectCycle {
			st.detected = true
			r.samples = append(r.samples, ev.Cycle-st.injectCycle)
		}
	}
}

// Samples snapshots the recorded latencies.
func (r *Recorder) Samples() []uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]uint64(nil), r.samples...)
}

// Replayer derives a bundle's detection latencies by re-executing
// exactly its detected injections: descriptors are re-drawn from the
// manifest's fault config (pre-drawn descriptors are a pure function
// of the seed), the cell's golden run is re-prepared through Factory,
// and each detected injection replays under a Recorder sink. Replay is
// deterministic, so the same bundle always yields the same latencies —
// and a replayed outcome that disagrees with the bundle's results.csv
// is reported as an error, because it means the current source tree no
// longer reproduces the bundle (golden drift).
type Replayer struct {
	// Factory resolves cells to core constructors
	// (harness.Options.CampaignFactory in the CLIs and the daemon).
	Factory campaign.CoreFactory
	// Fault is the bundle's fault config (manifest spec).
	Fault fault.Config
	// Prepare overrides golden-run preparation; nil means
	// fault.Prepare. The daemon routes this through its
	// fault.PreparedCache so report generation reuses warm golden state.
	Prepare func(bench, schemeSpec string, mk func() *pipeline.Core, cfg fault.Config) (*fault.Prepared, error)
	// Outcome, when non-nil, receives each replayed injection's outcome
	// for cross-checking against the bundle (index, outcome string).
	Outcome func(bench, schemeSpec string, index int, outcome string)
}

// NewReplayer builds a Replayer over a bundle's manifest.
func NewReplayer(man *campaign.Manifest, factory campaign.CoreFactory) *Replayer {
	return &Replayer{Factory: factory, Fault: man.Spec.Fault}
}

// CellLatencies implements LatencyProvider.
func (r *Replayer) CellLatencies(bench, schemeSpec string, detected []int) ([]uint64, bool, error) {
	if r.Factory == nil || len(detected) == 0 {
		return nil, false, nil
	}
	sp, err := scheme.Parse(schemeSpec)
	if err != nil {
		// Old bundles may carry spec strings the current registry no
		// longer parses; fall back syntactically rather than failing the
		// whole report.
		sp = scheme.FromString(schemeSpec)
	}
	mk, err := r.Factory(bench, sp)
	if err != nil {
		return nil, false, fmt.Errorf("resolving cell: %w", err)
	}
	prep := r.Prepare
	if prep == nil {
		prep = func(_, _ string, mk func() *pipeline.Core, cfg fault.Config) (*fault.Prepared, error) {
			return fault.Prepare(mk, cfg)
		}
	}
	p, err := prep(bench, schemeSpec, mk, r.Fault)
	if err != nil {
		return nil, false, fmt.Errorf("preparing golden run: %w", err)
	}

	injs := p.Injections()
	arena := p.NewArena()
	samples := make([]uint64, 0, len(detected))
	for _, idx := range detected {
		if idx < 0 || idx >= len(injs) {
			return nil, false, fmt.Errorf("detected index %d outside the %d drawn descriptors", idx, len(injs))
		}
		rec := &Recorder{}
		res, err := p.RunOneObsArena(context.Background(), injs[idx], rec, arena)
		if err != nil {
			return nil, false, err
		}
		if r.Outcome != nil {
			r.Outcome(bench, schemeSpec, idx, res.Outcome.String())
		}
		if !res.Detected {
			return nil, false, fmt.Errorf("replayed injection %d was not detected — the bundle does not reproduce on this source tree (golden drift)", idx)
		}
		got := rec.Samples()
		if len(got) == 0 {
			// Detected via the singleton end-of-window comparison with no
			// in-window detector action: no latency sample to take.
			continue
		}
		samples = append(samples, got[0])
	}
	return samples, true, nil
}
