package report

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"faulthound/internal/contract"
)

// Delta is one metric whose value differs between two quality reports
// (or two bench files). Cell is "bench/scheme" ("" for file-level
// metrics).
type Delta struct {
	Cell   string
	Metric string
	A, B   float64
}

// String renders the delta for CLI output.
func (d Delta) String() string {
	where := d.Metric
	if d.Cell != "" {
		where = d.Cell + " " + d.Metric
	}
	return fmt.Sprintf("%s: %g -> %g (%+.2f%%)", where, d.B, d.A, d.RelChange()*100)
}

// RelChange is (A-B)/|B| (0 when both are zero; +Inf when only B is).
func (d Delta) RelChange() float64 {
	if d.A == d.B {
		return 0
	}
	if d.B == 0 {
		return math.Inf(sign(d.A))
	}
	return (d.A - d.B) / math.Abs(d.B)
}

func sign(f float64) int {
	if f < 0 {
		return -1
	}
	return 1
}

// Within reports whether the delta is inside a relative tolerance:
// |A-B| <= tol * max(|A|, |B|).
func (d Delta) Within(tol float64) bool {
	return math.Abs(d.A-d.B) <= tol*math.Max(math.Abs(d.A), math.Abs(d.B))
}

// metrics flattens a cell into named numeric metrics, in a fixed
// order.
func (c *CellQuality) metrics() []Delta {
	var out []Delta
	add := func(name string, v float64) { out = append(out, Delta{Metric: name, A: v}) }
	add("outcomes.masked", float64(c.Outcomes.Masked))
	add("outcomes.noisy", float64(c.Outcomes.Noisy))
	add("outcomes.sdc", float64(c.Outcomes.SDC))
	add("detected", float64(c.Detected))
	add("fp_rate", c.FPRate)
	if c.Coverage != nil {
		add("coverage.sdc_base", float64(c.Coverage.SDCBase))
		add("coverage.covered", float64(c.Coverage.Covered))
		add("coverage.coverage", c.Coverage.Coverage)
	}
	if c.Latency != nil {
		add("latency.count", float64(c.Latency.Count))
		add("latency.p50", float64(c.Latency.P50))
		add("latency.p95", float64(c.Latency.P95))
		add("latency.max", float64(c.Latency.Max))
		for _, b := range c.Latency.Hist {
			add(fmt.Sprintf("latency.hist.le%d", b.Le), float64(b.Count))
		}
	}
	if c.Confusion != nil {
		for _, row := range []struct {
			name string
			o    Outcomes
		}{{"masked", c.Confusion.Masked}, {"noisy", c.Confusion.Noisy}, {"sdc", c.Confusion.SDC}} {
			add("confusion."+row.name+".masked", float64(row.o.Masked))
			add("confusion."+row.name+".noisy", float64(row.o.Noisy))
			add("confusion."+row.name+".sdc", float64(row.o.SDC))
		}
	}
	return out
}

// Diff compares two quality reports metric by metric and returns every
// difference: changed values, plus metrics or whole cells present on
// one side only (rendered with NaN on the missing side). A report
// diffed against itself returns nil.
func Diff(a, b *Quality) []Delta {
	var out []Delta
	if a.Injections != b.Injections {
		out = append(out, Delta{Metric: "injections_per_cell", A: float64(a.Injections), B: float64(b.Injections)})
	}

	index := func(q *Quality) map[string]*CellQuality {
		m := make(map[string]*CellQuality, len(q.Cells))
		for i := range q.Cells {
			c := &q.Cells[i]
			m[c.Bench+"/"+c.Scheme] = c
		}
		return m
	}
	am, bm := index(a), index(b)
	keys := make([]string, 0, len(am))
	for k := range am {
		keys = append(keys, k)
	}
	for k := range bm {
		if _, ok := am[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)

	for _, k := range keys {
		ac, bc := am[k], bm[k]
		switch {
		case ac == nil:
			out = append(out, Delta{Cell: k, Metric: "cell", A: math.NaN(), B: 0})
		case bc == nil:
			out = append(out, Delta{Cell: k, Metric: "cell", A: 0, B: math.NaN()})
		default:
			ams, bms := ac.metrics(), bc.metrics()
			an := map[string]float64{}
			for _, m := range ams {
				an[m.Metric] = m.A
			}
			bn := map[string]float64{}
			for _, m := range bms {
				bn[m.Metric] = m.A
			}
			names := make([]string, 0, len(an))
			for _, m := range ams {
				names = append(names, m.Metric)
			}
			for _, m := range bms {
				if _, ok := an[m.Metric]; !ok {
					names = append(names, m.Metric)
				}
			}
			for _, name := range names {
				av, aok := an[name]
				bv, bok := bn[name]
				switch {
				case !aok:
					out = append(out, Delta{Cell: k, Metric: name, A: math.NaN(), B: bv})
				case !bok:
					out = append(out, Delta{Cell: k, Metric: name, A: av, B: math.NaN()})
				case av != bv:
					out = append(out, Delta{Cell: k, Metric: name, A: av, B: bv})
				}
			}
		}
	}
	return out
}

// Exceeds filters deltas to those outside a relative tolerance.
// Missing-side deltas (NaN) always exceed.
func Exceeds(deltas []Delta, tol float64) []Delta {
	var out []Delta
	for _, d := range deltas {
		if math.IsNaN(d.A) || math.IsNaN(d.B) || !d.Within(tol) {
			out = append(out, d)
		}
	}
	return out
}

// BenchGated lists the BENCH_simcore.json metrics the release gate
// treats as higher-is-better regressions: injections/sec and simulated
// cycles/sec guard the two hot loops, and the checkpoint-forking and
// reconvergence-early-exit fractions guard the acceleration that the
// injection throughput depends on (a silent drop in either frac shows
// up here even before it fully erodes injections_per_sec). Metrics
// absent from the reference file are not gated, so pre-acceleration
// references stay comparable.
var BenchGated = []string{
	"injections_per_sec",
	"sim_cycles_per_sec",
	"early_exit_frac",
	"checkpoint_fork_cycles_saved_frac",
}

// CompareBench validates two BENCH_simcore.json payloads against the
// bench contract and returns (all metric deltas, gated regressions):
// a gated regression is a BenchGated metric whose got value falls more
// than tol below ref (relative). Non-gated metrics and improvements
// never regress.
func CompareBench(got, ref []byte, tol float64) (deltas, regressions []Delta, err error) {
	parse := func(b []byte) (map[string]float64, error) {
		if err := contract.ValidateJSON(contract.KindBench, b); err != nil {
			return nil, err
		}
		var m map[string]float64
		if err := json.Unmarshal(b, &m); err != nil {
			return nil, err
		}
		return m, nil
	}
	g, err := parse(got)
	if err != nil {
		return nil, nil, fmt.Errorf("got: %w", err)
	}
	r, err := parse(ref)
	if err != nil {
		return nil, nil, fmt.Errorf("ref: %w", err)
	}
	names := make([]string, 0, len(r))
	for k := range r {
		names = append(names, k)
	}
	sort.Strings(names)
	gated := map[string]bool{}
	for _, m := range BenchGated {
		gated[m] = true
	}
	for _, name := range names {
		d := Delta{Metric: name, A: g[name], B: r[name]}
		if d.A != d.B {
			deltas = append(deltas, d)
		}
		if gated[name] && d.A < d.B*(1-tol) {
			regressions = append(regressions, d)
		}
	}
	return deltas, regressions, nil
}
