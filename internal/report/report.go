// Package report derives detector-quality reports from campaign
// artifact bundles: per benchmark×scheme cell, the outcome
// classification, SDC detection coverage, false-positive rate,
// detection-latency percentiles, and a confusion matrix of the cell's
// outcomes against the baseline cell's golden classification of the
// same injection descriptors (the replay-vs-golden comparison framing
// of RepTFD, PAPERS.md). Reports are derived sidecars written under
// <bundle>/report/ — generating one never mutates the bundle's own
// artifacts — and quality.json conforms to the faulthound.quality/v1
// contract (internal/contract, docs/CONTRACTS.md).
//
// Detection latency is not recorded in results.csv; it is re-derived
// through the obs layer by replaying exactly the detected injections
// from the bundle's manifest spec and capturing the "inject"/"detect"
// instants fault.RunOneObs emits (see Replayer). Replay is
// deterministic, so the report is a pure function of the bundle — the
// golden test and the CI drift gate depend on that.
package report

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"

	"faulthound/internal/campaign"
	"faulthound/internal/contract"
)

// Outcomes is a Figure-7 classification triple.
type Outcomes struct {
	Masked int `json:"masked"`
	Noisy  int `json:"noisy"`
	SDC    int `json:"sdc"`
}

// Coverage echoes the summary's paired SDC coverage.
type Coverage struct {
	SDCBase  int     `json:"sdc_base"`
	Covered  int     `json:"covered"`
	Coverage float64 `json:"coverage"`
}

// Latency summarizes a cell's detection latencies in cycles
// (injection to first detector action), nearest-rank percentiles over
// the replayed samples plus a cumulative power-of-two histogram.
type Latency struct {
	Count int    `json:"count"`
	P50   uint64 `json:"p50"`
	P95   uint64 `json:"p95"`
	Max   uint64 `json:"max"`
	// Hist is the cumulative bucket distribution: Hist[i].Count
	// samples had latency <= Hist[i].Le cycles, with Le doubling from
	// 1 up to the first power of two covering Max (so the last bucket
	// always equals Count). Optional in the quality.v1 contract:
	// pre-histogram reports stay valid.
	Hist []HistBucket `json:"histogram,omitempty"`
}

// HistBucket is one cumulative detection-latency bucket.
type HistBucket struct {
	Le    uint64 `json:"le"`
	Count int    `json:"count"`
}

// Confusion is the 3×3 outcome matrix of a scheme cell against its
// benchmark's baseline cell: Confusion[baseline outcome][scheme
// outcome] over the shared descriptor stream. Row sums reproduce the
// baseline cell's classification, column sums the scheme cell's.
type Confusion struct {
	Masked Outcomes `json:"masked"`
	Noisy  Outcomes `json:"noisy"`
	SDC    Outcomes `json:"sdc"`
}

// CellQuality is one benchmark×scheme cell of the quality report.
type CellQuality struct {
	Bench    string   `json:"bench"`
	Scheme   string   `json:"scheme"`
	Outcomes Outcomes `json:"outcomes"`
	Detected int      `json:"detected"`
	FPRate   float64  `json:"fp_rate"`
	// Coverage and Confusion are present on scheme cells only — both
	// are defined against the benchmark's baseline cell.
	Coverage *Coverage `json:"coverage,omitempty"`
	// Latency is present when a latency provider supplied samples
	// (detected > 0 and replay available).
	Latency   *Latency   `json:"detection_latency_cycles,omitempty"`
	Confusion *Confusion `json:"confusion,omitempty"`
}

// Source is the bundle provenance echoed into the report.
type Source struct {
	CreatedAt string `json:"created_at"`
	GoVersion string `json:"go_version"`
	GitCommit string `json:"git_commit"`
}

// Quality is the report/quality.json artifact.
type Quality struct {
	SchemaVersion string        `json:"schema_version"`
	RunID         string        `json:"run_id"`
	Generator     string        `json:"generator"`
	Source        Source        `json:"source"`
	Injections    int           `json:"injections_per_cell"`
	Cells         []CellQuality `json:"cells"`
}

// LatencyProvider supplies detection latencies (cycles) for one cell's
// detected injections, identified by descriptor index. ok=false means
// the provider cannot serve this cell (the report omits latency there).
type LatencyProvider interface {
	CellLatencies(bench, scheme string, detected []int) (samples []uint64, ok bool, err error)
}

// Options parameterizes Generate.
type Options struct {
	// Latency supplies per-cell detection latencies; nil omits the
	// latency section (the report is still contract-valid).
	Latency LatencyProvider
}

// row is one parsed results.csv line (the columns the report needs).
type row struct {
	index    int
	outcome  string
	detected bool
}

// Generate builds the quality report of a campaign bundle from its
// manifest.json, summary.json, and results.csv. It is a pure function
// of the bundle (plus the deterministic replay the latency provider
// performs), so regenerating a committed bundle's report must be
// byte-identical — the CI drift gate enforces exactly that.
func Generate(dir string, opts Options) (*Quality, error) {
	man, err := campaign.ReadManifest(dir)
	if err != nil {
		return nil, err
	}
	sumB, err := os.ReadFile(filepath.Join(dir, campaign.SummaryName))
	if err != nil {
		return nil, err
	}
	if err := contract.ValidateJSON(contract.KindSummary, sumB); err != nil {
		return nil, err
	}
	var sum campaign.Summary
	if err := json.Unmarshal(sumB, &sum); err != nil {
		return nil, fmt.Errorf("report: %s: %w", campaign.SummaryName, err)
	}
	cells, err := readResults(filepath.Join(dir, campaign.ResultsName))
	if err != nil {
		return nil, err
	}

	gen := man.Provenance.Generator
	if gen == "" {
		gen = "unknown"
	}
	q := &Quality{
		SchemaVersion: contract.QualityV1,
		RunID:         sum.RunID,
		Generator:     gen,
		Source: Source{
			CreatedAt: man.Provenance.CreatedAt,
			GoVersion: man.Provenance.GoVersion,
			GitCommit: man.Provenance.GitCommit,
		},
		Injections: sum.Injections,
	}

	for _, cs := range sum.Cells {
		key := cellKey{cs.Bench, cs.Scheme}
		rows := cells[key]
		if len(rows) != sum.Injections {
			return nil, fmt.Errorf("report: cell %s/%s has %d results.csv rows, summary says %d",
				cs.Bench, cs.Scheme, len(rows), sum.Injections)
		}
		cq := CellQuality{
			Bench:    cs.Bench,
			Scheme:   cs.Scheme,
			Outcomes: Outcomes{Masked: cs.Masked, Noisy: cs.Noisy, SDC: cs.SDC},
			Detected: cs.Detected,
			FPRate:   cs.FPRate,
		}
		if cs.Coverage != nil {
			cq.Coverage = &Coverage{
				SDCBase:  cs.Coverage.SDCBase,
				Covered:  cs.Coverage.Covered,
				Coverage: cs.Coverage.Coverage,
			}
		}
		if cs.Scheme != campaign.BaselineScheme {
			base := cells[cellKey{cs.Bench, campaign.BaselineScheme}]
			if len(base) != sum.Injections {
				return nil, fmt.Errorf("report: cell %s/%s has no complete baseline cell to pair against", cs.Bench, cs.Scheme)
			}
			cq.Confusion = confusion(base, rows)
		}
		if opts.Latency != nil && cs.Detected > 0 {
			var detected []int
			for _, r := range rows {
				if r.detected {
					detected = append(detected, r.index)
				}
			}
			samples, ok, err := opts.Latency.CellLatencies(cs.Bench, cs.Scheme, detected)
			if err != nil {
				return nil, fmt.Errorf("report: latency for %s/%s: %w", cs.Bench, cs.Scheme, err)
			}
			if ok && len(samples) > 0 {
				cq.Latency = summarizeLatency(samples)
			}
		}
		q.Cells = append(q.Cells, cq)
	}
	return q, nil
}

type cellKey struct{ bench, scheme string }

// readResults parses results.csv into per-cell rows ordered by
// descriptor index, after checking the column contract.
func readResults(path string) (map[cellKey][]row, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if _, err := contract.ValidateResultsCSV(f); err != nil {
		return nil, err
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}

	cols := map[string]int{}
	for i, name := range contract.ResultsColumns() {
		cols[name] = i
	}
	cr := csv.NewReader(f)
	if _, err := cr.Read(); err != nil { // header, already validated
		return nil, err
	}
	out := map[cellKey][]row{}
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		idx, _ := strconv.Atoi(rec[cols["index"]])
		key := cellKey{rec[cols["bench"]], rec[cols["scheme"]]}
		out[key] = append(out[key], row{
			index:    idx,
			outcome:  rec[cols["outcome"]],
			detected: rec[cols["detected"]] == "true",
		})
	}
	for key, rows := range out {
		sort.Slice(rows, func(i, j int) bool { return rows[i].index < rows[j].index })
		out[key] = rows
	}
	return out, nil
}

// confusion tallies scheme outcomes against baseline outcomes over the
// shared descriptor indices. Both slices are index-ordered and equal
// length (Generate checks).
func confusion(base, scheme []row) *Confusion {
	var m Confusion
	rowFor := func(outcome string) *Outcomes {
		switch outcome {
		case "masked":
			return &m.Masked
		case "noisy":
			return &m.Noisy
		}
		return &m.SDC
	}
	for i := range base {
		r := rowFor(base[i].outcome)
		switch scheme[i].outcome {
		case "masked":
			r.Masked++
		case "noisy":
			r.Noisy++
		default:
			r.SDC++
		}
	}
	return &m
}

// summarizeLatency computes nearest-rank percentiles over the samples.
func summarizeLatency(samples []uint64) *Latency {
	s := append([]uint64(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	rank := func(q float64) uint64 {
		i := int(q*float64(len(s))+0.999999) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(s) {
			i = len(s) - 1
		}
		return s[i]
	}
	lat := &Latency{
		Count: len(s),
		P50:   rank(0.50),
		P95:   rank(0.95),
		Max:   s[len(s)-1],
	}
	// Cumulative power-of-two buckets over the sorted samples: each
	// boundary's count is the index of the first sample above it.
	idx := 0
	for le := uint64(1); ; le <<= 1 {
		for idx < len(s) && s[idx] <= le {
			idx++
		}
		lat.Hist = append(lat.Hist, HistBucket{Le: le, Count: idx})
		if le >= lat.Max {
			break
		}
	}
	return lat
}

// WriteFiles renders q into dir's report/ sidecar directory —
// quality.json (contract faulthound.quality/v1) and quality.md — and
// returns their paths. It validates the JSON against the contract
// before writing: a generator bug must not ship a non-conforming
// artifact.
func WriteFiles(dir string, q *Quality) (jsonPath, mdPath string, err error) {
	return WriteDir(filepath.Join(dir, contract.ReportDirName), q)
}

// WriteDir renders q's quality.json and quality.md into exactly rdir
// (fhreport bundle -out redirects the sidecar outside the bundle, e.g.
// for the CI drift gate's regenerate-and-compare).
func WriteDir(rdir string, q *Quality) (jsonPath, mdPath string, err error) {
	b, err := campaign.MarshalJSON(q)
	if err != nil {
		return "", "", err
	}
	if err := contract.ValidateJSON(contract.KindQuality, b); err != nil {
		return "", "", fmt.Errorf("report: generated quality.json violates its own contract: %w", err)
	}
	if err := os.MkdirAll(rdir, 0o755); err != nil {
		return "", "", err
	}
	jsonPath = filepath.Join(rdir, contract.QualityJSONName)
	mdPath = filepath.Join(rdir, contract.QualityMDName)
	if err := os.WriteFile(jsonPath, b, 0o644); err != nil {
		return "", "", err
	}
	if err := os.WriteFile(mdPath, []byte(Markdown(q)), 0o644); err != nil {
		return "", "", err
	}
	return jsonPath, mdPath, nil
}
