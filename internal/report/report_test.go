package report

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"faulthound/internal/campaign"
	"faulthound/internal/contract"
	"faulthound/internal/harness"
	"faulthound/internal/obs"
)

const referenceBundle = "../../results/campaigns/reference-1k"

// reference1kQuality generates the reference bundle's quality report
// with full latency replay, once per test binary.
var reference1kQuality = func() func(t *testing.T) *Quality {
	var q *Quality
	var err error
	done := false
	return func(t *testing.T) *Quality {
		t.Helper()
		if !done {
			done = true
			man, merr := campaign.ReadManifest(referenceBundle)
			if merr != nil {
				t.Fatal(merr)
			}
			rep := NewReplayer(man, harness.DefaultOptions().CampaignFactory())
			q, err = Generate(referenceBundle, Options{Latency: rep})
		}
		if err != nil {
			t.Fatal(err)
		}
		return q
	}
}()

// TestReference1kGolden regenerates the committed reference bundle's
// report sidecar and requires byte identity with the committed files —
// the report is a pure function of the bundle, and this is the CI
// drift gate in test form.
func TestReference1kGolden(t *testing.T) {
	q := reference1kQuality(t)
	out := t.TempDir()
	jsonPath, mdPath, err := WriteDir(out, q)
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]string{
		{jsonPath, filepath.Join(referenceBundle, contract.ReportDirName, contract.QualityJSONName)},
		{mdPath, filepath.Join(referenceBundle, contract.ReportDirName, contract.QualityMDName)},
	} {
		got, err := os.ReadFile(pair[0])
		if err != nil {
			t.Fatal(err)
		}
		want, err := os.ReadFile(pair[1])
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Errorf("%s drifted from committed golden %s:\n--- got ---\n%s\n--- want ---\n%s",
				pair[0], pair[1], got, want)
		}
	}
}

// TestQualityInternalConsistency cross-checks the derived report
// against the bundle's own summary: outcomes echo the summary cells,
// confusion rows sum to the baseline classification and columns to the
// scheme's, and latency sample counts never exceed detections.
func TestQualityInternalConsistency(t *testing.T) {
	q := reference1kQuality(t)
	if q.SchemaVersion != contract.QualityV1 {
		t.Errorf("schema_version = %q", q.SchemaVersion)
	}
	if q.RunID != "reference-1k" || q.Injections != 250 || len(q.Cells) != 4 {
		t.Fatalf("unexpected header: %+v", q)
	}
	base := map[string]Outcomes{}
	for _, c := range q.Cells {
		if c.Scheme == campaign.BaselineScheme {
			base[c.Bench] = c.Outcomes
			if c.Coverage != nil || c.Confusion != nil {
				t.Errorf("%s/baseline carries scheme-only sections", c.Bench)
			}
		}
	}
	for _, c := range q.Cells {
		total := c.Outcomes.Masked + c.Outcomes.Noisy + c.Outcomes.SDC
		if total != q.Injections {
			t.Errorf("%s/%s outcomes sum to %d, want %d", c.Bench, c.Scheme, total, q.Injections)
		}
		if c.Scheme == campaign.BaselineScheme {
			continue
		}
		if c.Confusion == nil {
			t.Errorf("%s/%s has no confusion matrix", c.Bench, c.Scheme)
			continue
		}
		rowSums := Outcomes{
			Masked: c.Confusion.Masked.Masked + c.Confusion.Masked.Noisy + c.Confusion.Masked.SDC,
			Noisy:  c.Confusion.Noisy.Masked + c.Confusion.Noisy.Noisy + c.Confusion.Noisy.SDC,
			SDC:    c.Confusion.SDC.Masked + c.Confusion.SDC.Noisy + c.Confusion.SDC.SDC,
		}
		if rowSums != base[c.Bench] {
			t.Errorf("%s/%s confusion rows sum to %+v, baseline classified %+v", c.Bench, c.Scheme, rowSums, base[c.Bench])
		}
		colSums := Outcomes{
			Masked: c.Confusion.Masked.Masked + c.Confusion.Noisy.Masked + c.Confusion.SDC.Masked,
			Noisy:  c.Confusion.Masked.Noisy + c.Confusion.Noisy.Noisy + c.Confusion.SDC.Noisy,
			SDC:    c.Confusion.Masked.SDC + c.Confusion.Noisy.SDC + c.Confusion.SDC.SDC,
		}
		if colSums != c.Outcomes {
			t.Errorf("%s/%s confusion columns sum to %+v, cell classified %+v", c.Bench, c.Scheme, colSums, c.Outcomes)
		}
		if c.Detected > 0 {
			if c.Latency == nil {
				t.Errorf("%s/%s detected %d but has no latency section", c.Bench, c.Scheme, c.Detected)
			} else if c.Latency.Count > c.Detected {
				t.Errorf("%s/%s has %d latency samples for %d detections", c.Bench, c.Scheme, c.Latency.Count, c.Detected)
			} else if c.Latency.P50 > c.Latency.P95 || c.Latency.P95 > c.Latency.Max {
				t.Errorf("%s/%s percentiles unordered: %+v", c.Bench, c.Scheme, c.Latency)
			}
		}
	}
}

// TestSelfDiffIsEmpty is the acceptance criterion for fhreport diff: a
// report diffed against itself has zero deltas.
func TestSelfDiffIsEmpty(t *testing.T) {
	q := reference1kQuality(t)
	if deltas := Diff(q, q); len(deltas) != 0 {
		t.Fatalf("self-diff produced %d deltas: %v", len(deltas), deltas)
	}
}

// TestDiffFindsChanges perturbs a copy and checks Diff pinpoints every
// change, with Exceeds honoring the tolerance.
func TestDiffFindsChanges(t *testing.T) {
	a := reference1kQuality(t)
	b := *a
	b.Cells = append([]CellQuality(nil), a.Cells...)
	for i := range b.Cells {
		if b.Cells[i].Scheme != campaign.BaselineScheme {
			cq := b.Cells[i]
			cq.FPRate *= 1.05 // +5%
			cq.Detected++
			b.Cells[i] = cq
			break
		}
	}
	deltas := Diff(&b, a)
	if len(deltas) != 2 {
		t.Fatalf("want 2 deltas, got %v", deltas)
	}
	names := map[string]bool{}
	for _, d := range deltas {
		names[d.Metric] = true
	}
	if !names["fp_rate"] || !names["detected"] {
		t.Fatalf("wrong metrics flagged: %v", deltas)
	}
	// 10% tolerance forgives the 5% fp_rate drift but never the integer
	// detection-count change (a +1 on 1 or 19 detections is >10%... use
	// a cell-agnostic check: the exceeding set must still name detected).
	over := Exceeds(deltas, 0.10)
	foundDetected := false
	for _, d := range over {
		if d.Metric == "fp_rate" {
			t.Errorf("10%% tolerance flagged the 5%% fp_rate drift: %v", d)
		}
		if d.Metric == "detected" {
			foundDetected = true
		}
	}
	if !foundDetected {
		t.Error("tolerance filtering dropped the detection-count change")
	}
	if got := Exceeds(deltas, 0); len(got) != len(deltas) {
		t.Errorf("zero tolerance kept %d of %d deltas", len(got), len(deltas))
	}
}

// TestDiffMissingCell checks one-sided cells surface as deltas rather
// than being silently skipped.
func TestDiffMissingCell(t *testing.T) {
	a := reference1kQuality(t)
	b := *a
	b.Cells = a.Cells[:len(a.Cells)-1]
	deltas := Diff(a, &b)
	found := false
	for _, d := range deltas {
		if d.Metric == "cell" && math.IsNaN(d.B) {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing cell not reported: %v", deltas)
	}
	if len(Exceeds(deltas, 1e9)) == 0 {
		t.Error("missing cell passed under a huge tolerance")
	}
}

// TestCompareBench exercises the throughput gate: identical files
// pass, a small dip passes under 10%, a 20% dip on a gated metric
// fails, and a dip on a non-gated metric does not.
func TestCompareBench(t *testing.T) {
	ref, err := os.ReadFile("../../results/bench/BENCH_simcore.json")
	if err != nil {
		t.Fatal(err)
	}
	if _, regs, err := CompareBench(ref, ref, 0.10); err != nil || len(regs) != 0 {
		t.Fatalf("self-compare: regs=%v err=%v", regs, err)
	}
	scale := func(metric string, factor float64) []byte {
		b := mutateJSON(t, ref, metric, factor)
		return b
	}
	if _, regs, err := CompareBench(scale("injections_per_sec", 0.95), ref, 0.10); err != nil || len(regs) != 0 {
		t.Fatalf("5%% dip gated at 10%%: regs=%v err=%v", regs, err)
	}
	if _, regs, err := CompareBench(scale("injections_per_sec", 0.80), ref, 0.10); err != nil || len(regs) != 1 {
		t.Fatalf("20%% dip not gated: regs=%v err=%v", regs, err)
	}
	if _, regs, err := CompareBench(scale("clones_per_sec_arena", 0.50), ref, 0.10); err != nil || len(regs) != 0 {
		t.Fatalf("non-gated metric gated: regs=%v err=%v", regs, err)
	}
	if _, _, err := CompareBench([]byte(`{"injections_per_sec": 1}`), ref, 0.10); err == nil {
		t.Fatal("contract-violating bench JSON accepted")
	}
}

// mutateJSON scales one numeric field of a flat JSON object.
func mutateJSON(t *testing.T, raw []byte, key string, factor float64) []byte {
	t.Helper()
	var m map[string]float64
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if _, ok := m[key]; !ok {
		t.Fatalf("no field %q", key)
	}
	m[key] *= factor
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestSummarizeLatency pins the nearest-rank percentile convention and
// the cumulative power-of-two histogram (doubling boundaries from 1 up
// to the first power covering the max; last bucket equals the count).
func TestSummarizeLatency(t *testing.T) {
	l := summarizeLatency([]uint64{40, 10, 20, 30})
	want := Latency{Count: 4, P50: 20, P95: 40, Max: 40, Hist: []HistBucket{
		{Le: 1, Count: 0}, {Le: 2, Count: 0}, {Le: 4, Count: 0}, {Le: 8, Count: 0},
		{Le: 16, Count: 1}, {Le: 32, Count: 3}, {Le: 64, Count: 4},
	}}
	if !reflect.DeepEqual(*l, want) {
		t.Fatalf("got %+v, want %+v", *l, want)
	}
	l = summarizeLatency([]uint64{7})
	want = Latency{Count: 1, P50: 7, P95: 7, Max: 7, Hist: []HistBucket{
		{Le: 1, Count: 0}, {Le: 2, Count: 0}, {Le: 4, Count: 0}, {Le: 8, Count: 1},
	}}
	if !reflect.DeepEqual(*l, want) {
		t.Fatalf("got %+v, want %+v", *l, want)
	}
}

// TestRecorder checks inject/detect pairing: per-track, first detect
// wins, re-injection re-arms, and foreign events are ignored.
func TestRecorder(t *testing.T) {
	r := &Recorder{}
	ev := func(name string, track int, cycle uint64) {
		r.Event(obs.Event{Kind: obs.KindInstant, Name: name, Track: track, Cycle: cycle})
	}
	ev("inject", 1, 100)
	ev("replay", 1, 104) // not a detect
	ev("detect", 1, 106)
	ev("detect", 1, 109) // second detect ignored
	ev("inject", 2, 200)
	ev("inject", 1, 300) // re-arm track 1
	ev("detect", 1, 301)
	ev("detect", 2, 250)
	got := r.Samples()
	want := map[uint64]bool{6: true, 1: true, 50: true}
	if len(got) != 3 {
		t.Fatalf("got %v", got)
	}
	for _, s := range got {
		if !want[s] {
			t.Fatalf("unexpected sample %d in %v", s, got)
		}
	}
}
