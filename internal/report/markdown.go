package report

import (
	"fmt"
	"strings"
)

// Markdown renders the quality report in the exemplar benchmark-report
// style (SNIPPETS.md; the bundle's own report.md): a provenance
// header, one quality-metrics table over every cell, and a confusion
// matrix per scheme cell. Pure function of q — the committed
// reference-1k report is a golden file.
func Markdown(q *Quality) string {
	var sb strings.Builder
	sb.WriteString("# Detector Quality Report\n\n")
	fmt.Fprintf(&sb, "- Run ID: `%s`\n", q.RunID)
	fmt.Fprintf(&sb, "- Schema: `%s`\n", q.SchemaVersion)
	fmt.Fprintf(&sb, "- Generator: `%s`\n", q.Generator)
	fmt.Fprintf(&sb, "- Bundle created: `%s`\n", q.Source.CreatedAt)
	fmt.Fprintf(&sb, "- Bundle toolchain: `%s`, commit `%s`\n", q.Source.GoVersion, q.Source.GitCommit)
	fmt.Fprintf(&sb, "- Injections per cell: `%d`\n", q.Injections)
	fmt.Fprintf(&sb, "- Cells: `%d`\n", len(q.Cells))

	sb.WriteString("\n## Quality metrics\n\n")
	sb.WriteString("Coverage is over the baseline cell's would-be-SDC faults; fp-rate is\n")
	sb.WriteString("the fault-free detector action rate per committed instruction;\n")
	sb.WriteString("latency is injection to first detector action, in cycles.\n\n")
	sb.WriteString("| benchmark | scheme | masked | noisy | sdc | detected | coverage | fp-rate | lat p50 | lat p95 | lat max |\n")
	sb.WriteString("|---|---|---|---|---|---|---|---|---|---|---|\n")
	for _, c := range q.Cells {
		cov := "-"
		if c.Coverage != nil {
			cov = fmt.Sprintf("%.2f%%", c.Coverage.Coverage*100)
		}
		p50, p95, mx := "-", "-", "-"
		if c.Latency != nil {
			p50 = fmt.Sprintf("%d", c.Latency.P50)
			p95 = fmt.Sprintf("%d", c.Latency.P95)
			mx = fmt.Sprintf("%d", c.Latency.Max)
		}
		fmt.Fprintf(&sb, "| %s | %s | %d | %d | %d | %d | %s | %.5f | %s | %s | %s |\n",
			c.Bench, c.Scheme, c.Outcomes.Masked, c.Outcomes.Noisy, c.Outcomes.SDC,
			c.Detected, cov, c.FPRate, p50, p95, mx)
	}

	wroteLatHeader := false
	for _, c := range q.Cells {
		if c.Latency == nil || len(c.Latency.Hist) == 0 {
			continue
		}
		if !wroteLatHeader {
			sb.WriteString("\n## Detection-latency distribution\n\n")
			sb.WriteString("Cumulative power-of-two buckets per cell: `<=N:k` means k of the\n")
			sb.WriteString("cell's detections completed within N cycles of the injection.\n\n")
			wroteLatHeader = true
		}
		parts := make([]string, 0, len(c.Latency.Hist))
		for _, b := range c.Latency.Hist {
			parts = append(parts, fmt.Sprintf("<=%d:%d", b.Le, b.Count))
		}
		fmt.Fprintf(&sb, "- %s — %s: `%s`\n", c.Bench, c.Scheme, strings.Join(parts, " "))
	}

	wroteHeader := false
	for _, c := range q.Cells {
		if c.Confusion == nil {
			continue
		}
		if !wroteHeader {
			sb.WriteString("\n## Confusion vs baseline golden classification\n\n")
			sb.WriteString("Rows are the baseline cell's outcome for a descriptor, columns the\n")
			sb.WriteString("scheme cell's outcome for the same descriptor; row sums reproduce the\n")
			sb.WriteString("baseline classification, column sums the scheme's.\n")
			wroteHeader = true
		}
		fmt.Fprintf(&sb, "\n### %s — %s\n\n", c.Bench, c.Scheme)
		fmt.Fprintf(&sb, "| baseline \\ %s | masked | noisy | sdc |\n", c.Scheme)
		sb.WriteString("|---|---|---|---|\n")
		for _, row := range []struct {
			name string
			o    Outcomes
		}{
			{"masked", c.Confusion.Masked},
			{"noisy", c.Confusion.Noisy},
			{"sdc", c.Confusion.SDC},
		} {
			fmt.Fprintf(&sb, "| %s | %d | %d | %d |\n", row.name, row.o.Masked, row.o.Noisy, row.o.SDC)
		}
	}
	return sb.String()
}
