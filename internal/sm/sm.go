// Package sm implements the change-tracking state machines that underlie
// FaultHound's and PBFS's bit-mask filters (ISCA'15, Section 2.1 and
// Section 3, Figure 2):
//
//   - Sticky: PBFS's one-bit sticky counter. One observed change moves a
//     bit permanently to "changing" until a periodic flash clear.
//   - Standard: the conventional saturating counter of Figure 2(a), with
//     direct to-and-fro transitions between "unchanging" and the first
//     "changing" state.
//   - Biased: the biased two-bit machine of Figure 2(b) that requires two
//     consecutive no-changes after a change to re-enter "unchanging", but
//     only a single change to leave it. Exiting "unchanging" raises the
//     alarm; a change in the intermediate state does not (the paper's
//     deliberate, small coverage loss).
//   - Suppressor: the N-state biased alarm machine used by the
//     second-level filter (one per bit position, Section 3.2) and by the
//     squash state machines (one per first-level filter, Section 3.4). It
//     allows an alarm through only after several consecutive no-alarm
//     observations.
//
// All machines implement ChangeTracker so filters can be parameterized
// for the PBFS/PBFS-biased/FaultHound comparisons and for the
// state-machine ablation benches.
package sm

// Alarm reports whether an observation raised the machine's alarm (a
// change seen while the tracked bit was considered unchanging).
type Alarm bool

// ChangeTracker is a per-bit machine that observes a stream of
// change/no-change events and classifies the bit as changing (wildcard)
// or unchanging (must match the previous value).
type ChangeTracker interface {
	// Observe records whether the bit changed relative to the previous
	// value and reports whether this observation raises an alarm.
	Observe(changed bool) Alarm
	// Changing reports whether the bit is currently treated as a
	// wildcard for matching purposes.
	Changing() bool
	// Reset returns the machine to its initial "unchanging" state (used
	// by PBFS's periodic flash clear and by filter replacement).
	Reset()
}

// Sticky is PBFS's one-bit sticky counter: it saturates at "changing"
// upon the first observed change and stays there until Reset.
type Sticky struct {
	changing bool
}

// NewSticky returns a sticky counter in the "unchanging" state.
func NewSticky() *Sticky { return &Sticky{} }

// Observe implements ChangeTracker.
func (s *Sticky) Observe(changed bool) Alarm {
	if !changed {
		return false
	}
	if s.changing {
		return false
	}
	s.changing = true
	return true
}

// Changing implements ChangeTracker.
func (s *Sticky) Changing() bool { return s.changing }

// Reset implements ChangeTracker.
func (s *Sticky) Reset() { s.changing = false }

// Standard is the conventional saturating counter of Figure 2(a): one
// "unchanging" state U and nStates-1 "changing" states C1..Cn with
// symmetric, direct transitions. The alarm fires on the U -> C1 exit.
type Standard struct {
	state   int
	nStates int
}

// NewStandard returns a standard counter with n total states (n >= 2),
// initialized to "unchanging".
func NewStandard(n int) *Standard {
	if n < 2 {
		panic("sm: Standard needs at least 2 states")
	}
	return &Standard{nStates: n}
}

// Observe implements ChangeTracker.
func (s *Standard) Observe(changed bool) Alarm {
	if changed {
		alarm := s.state == 0
		if s.state < s.nStates-1 {
			s.state++
		}
		return Alarm(alarm)
	}
	if s.state > 0 {
		s.state--
	}
	return false
}

// Changing implements ChangeTracker.
func (s *Standard) Changing() bool { return s.state > 0 }

// Reset implements ChangeTracker.
func (s *Standard) Reset() { s.state = 0 }

// Biased is the biased state machine of Figure 2(b). A change from any
// state moves directly to the deepest "changing" state; Depth consecutive
// no-changes are required to re-enter "unchanging". Only the exit from
// "unchanging" raises the alarm, so a change observed in an intermediate
// state is absorbed silently. The paper uses Depth = 2 ("two-bit"); its
// Section 3 notes that a three-deep machine drops coverage from ~80% to
// ~60%, which the ablation bench reproduces.
type Biased struct {
	// state 0 = unchanging; state k (1..Depth) = k no-changes still
	// needed to reach unchanging.
	state int
	depth int
}

// NewBiased returns a biased machine requiring depth consecutive
// no-changes after a change (depth >= 1), initialized to "unchanging".
func NewBiased(depth int) *Biased {
	if depth < 1 {
		panic("sm: Biased needs depth >= 1")
	}
	return &Biased{depth: depth}
}

// Observe implements ChangeTracker.
func (b *Biased) Observe(changed bool) Alarm {
	if changed {
		alarm := b.state == 0
		b.state = b.depth
		return Alarm(alarm)
	}
	if b.state > 0 {
		b.state--
	}
	return false
}

// Changing implements ChangeTracker.
func (b *Biased) Changing() bool { return b.state > 0 }

// Reset implements ChangeTracker.
func (b *Biased) Reset() { b.state = 0 }

// Depth returns the configured no-change run length.
func (b *Biased) Depth() int { return b.depth }

// Suppressor is the N-state biased alarm machine of Sections 3.2 and
// 3.4. It is observed once per replay trigger: participated=true when
// the tracked entity (a bit position for the second-level filter, a
// first-level filter for the squash machines) raised or matched the
// trigger. A participation is allowed through only when the machine has
// seen Quiet consecutive non-participations; any participation re-arms
// the full quiet requirement. With 8 states the paper requires 7
// consecutive no-alarms.
type Suppressor struct {
	state  int // 0 = fully quiet (allow); >0 = recently alarmed
	states int
}

// NewSuppressor returns a suppressor with n states (n >= 2): after a
// participation, n-1 consecutive non-participations are needed before
// the next participation is allowed through.
func NewSuppressor(n int) *Suppressor {
	if n < 2 {
		panic("sm: Suppressor needs at least 2 states")
	}
	return &Suppressor{states: n}
}

// NewSuppressors returns a bank of n suppressors with the given state
// count as one flat allocation — the TCAM stores its second-level and
// squash machines this way so cloning a detector is a bulk copy.
func NewSuppressors(n, states int) []Suppressor {
	if states < 2 {
		panic("sm: Suppressor needs at least 2 states")
	}
	bank := make([]Suppressor, n)
	for i := range bank {
		bank[i].states = states
	}
	return bank
}

// Observe records one trigger-time observation and reports whether a
// participation is allowed through (i.e., not suppressed). For
// participated=false it always returns false.
func (s *Suppressor) Observe(participated bool) (allowed bool) {
	if participated {
		allowed = s.state == 0
		s.state = s.states - 1
		return allowed
	}
	if s.state > 0 {
		s.state--
	}
	return false
}

// Quiet reports whether the machine would currently allow a
// participation through.
func (s *Suppressor) Quiet() bool { return s.state == 0 }

// Reset returns the suppressor to the fully quiet state.
func (s *Suppressor) Reset() { s.state = 0 }

// States returns the configured state count.
func (s *Suppressor) States() int { return s.states }
