package sm

import (
	"testing"
	"testing/quick"
)

func TestStickyFirstChangeAlarms(t *testing.T) {
	s := NewSticky()
	if s.Changing() {
		t.Fatal("sticky should start unchanging")
	}
	if !s.Observe(true) {
		t.Fatal("first change should alarm")
	}
	if !s.Changing() {
		t.Fatal("should be changing after first change")
	}
}

func TestStickyStaysSaturated(t *testing.T) {
	s := NewSticky()
	s.Observe(true)
	// Arbitrarily many no-changes must not unstick it.
	for i := 0; i < 100; i++ {
		if s.Observe(false) {
			t.Fatal("no-change must never alarm")
		}
	}
	if !s.Changing() {
		t.Fatal("sticky counter must stay saturated until Reset")
	}
	if s.Observe(true) {
		t.Fatal("second change must not alarm (low coverage by design)")
	}
}

func TestStickyReset(t *testing.T) {
	s := NewSticky()
	s.Observe(true)
	s.Reset()
	if s.Changing() {
		t.Fatal("Reset should return to unchanging")
	}
	if !s.Observe(true) {
		t.Fatal("change after Reset should alarm again")
	}
}

func TestStandardDirectTransitions(t *testing.T) {
	s := NewStandard(4) // U, C1, C2, C3 as in Figure 2(a)
	if !s.Observe(true) {
		t.Fatal("U->C1 should alarm")
	}
	if s.Observe(false) {
		t.Fatal("C1->U should not alarm")
	}
	if s.Changing() {
		t.Fatal("one no-change should suffice to re-enter U (the non-biased flaw)")
	}
	// Toggling values alarm on every change: the false-positive storm the
	// paper attributes to the standard counter.
	alarms := 0
	for i := 0; i < 10; i++ {
		if s.Observe(true) {
			alarms++
		}
		s.Observe(false)
	}
	if alarms != 10 {
		t.Fatalf("toggling should alarm every time with standard counter, got %d/10", alarms)
	}
}

func TestStandardSaturation(t *testing.T) {
	s := NewStandard(4)
	for i := 0; i < 10; i++ {
		s.Observe(true)
	}
	// From C3, three no-changes are needed to reach U.
	s.Observe(false)
	s.Observe(false)
	if !s.Changing() {
		t.Fatal("should still be changing after 2 no-changes from saturation")
	}
	s.Observe(false)
	if s.Changing() {
		t.Fatal("should be unchanging after 3 no-changes from C3")
	}
}

func TestStandardPanicsOnTooFewStates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewStandard(1)
}

func TestBiasedRequiresTwoNoChanges(t *testing.T) {
	b := NewBiased(2)
	if !b.Observe(true) {
		t.Fatal("exit from unchanging should alarm")
	}
	b.Observe(false)
	if !b.Changing() {
		t.Fatal("one no-change must not re-enter unchanging (the bias)")
	}
	b.Observe(false)
	if b.Changing() {
		t.Fatal("two consecutive no-changes should re-enter unchanging")
	}
}

func TestBiasedIntermediateChangeSilent(t *testing.T) {
	b := NewBiased(2)
	b.Observe(true)  // U -> changing, alarm
	b.Observe(false) // intermediate
	if b.Observe(true) {
		t.Fatal("change in the intermediate state must not alarm (paper's coverage loss)")
	}
}

func TestBiasedTogglingSuppressed(t *testing.T) {
	// change, no-change, change, no-change... alarms exactly once with
	// the biased machine; the standard counter would alarm every time.
	b := NewBiased(2)
	alarms := 0
	for i := 0; i < 20; i++ {
		if b.Observe(true) {
			alarms++
		}
		b.Observe(false)
	}
	if alarms != 1 {
		t.Fatalf("toggling should alarm exactly once, got %d", alarms)
	}
}

func TestBiasedDepth3SlowerToUnchanging(t *testing.T) {
	b := NewBiased(3)
	b.Observe(true)
	b.Observe(false)
	b.Observe(false)
	if !b.Changing() {
		t.Fatal("depth-3 machine needs 3 no-changes")
	}
	b.Observe(false)
	if b.Changing() {
		t.Fatal("3 no-changes should suffice for depth 3")
	}
	if b.Depth() != 3 {
		t.Fatalf("Depth() = %d", b.Depth())
	}
}

func TestBiasedReset(t *testing.T) {
	b := NewBiased(2)
	b.Observe(true)
	b.Reset()
	if b.Changing() {
		t.Fatal("Reset should return to unchanging")
	}
}

func TestBiasedPanicsOnBadDepth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBiased(0)
}

func TestSuppressorAllowsFirstAlarm(t *testing.T) {
	s := NewSuppressor(8)
	if !s.Quiet() {
		t.Fatal("should start quiet")
	}
	if !s.Observe(true) {
		t.Fatal("first participation should be allowed")
	}
	if s.Quiet() {
		t.Fatal("should not be quiet right after a participation")
	}
}

func TestSuppressorRequiresSevenQuiets(t *testing.T) {
	s := NewSuppressor(8)
	s.Observe(true) // allowed; re-arms
	// The next participation is suppressed until 7 non-participations.
	for i := 0; i < 6; i++ {
		s.Observe(false)
	}
	if s.Observe(true) {
		t.Fatal("participation after only 6 quiets must be suppressed")
	}
	for i := 0; i < 7; i++ {
		s.Observe(false)
	}
	if !s.Observe(true) {
		t.Fatal("participation after 7 quiets must be allowed")
	}
}

func TestSuppressorParticipationReArms(t *testing.T) {
	s := NewSuppressor(8)
	s.Observe(true)
	for i := 0; i < 5; i++ {
		s.Observe(false)
	}
	s.Observe(true) // suppressed, but must re-arm the full quiet count
	for i := 0; i < 6; i++ {
		s.Observe(false)
	}
	if s.Observe(true) {
		t.Fatal("re-armed suppressor must still suppress after 6 quiets")
	}
}

func TestSuppressorNonParticipationNeverAllowed(t *testing.T) {
	s := NewSuppressor(4)
	for i := 0; i < 20; i++ {
		if s.Observe(false) {
			t.Fatal("non-participation must never return allowed")
		}
	}
}

func TestSuppressorReset(t *testing.T) {
	s := NewSuppressor(8)
	s.Observe(true)
	s.Reset()
	if !s.Quiet() {
		t.Fatal("Reset should return to quiet")
	}
	if s.States() != 8 {
		t.Fatalf("States() = %d", s.States())
	}
}

func TestSuppressorPanicsOnTooFewStates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSuppressor(1)
}

// Property: for any observation sequence, an alarm can only occur on a
// changed observation, and only when the machine was unchanging just
// before it.
func TestAlarmOnlyOnExitProperty(t *testing.T) {
	check := func(mk func() ChangeTracker) func(seq []bool) bool {
		return func(seq []bool) bool {
			m := mk()
			for _, changed := range seq {
				wasUnchanging := !m.Changing()
				alarm := m.Observe(changed)
				if bool(alarm) && (!changed || !wasUnchanging) {
					return false
				}
			}
			return true
		}
	}
	for name, mk := range map[string]func() ChangeTracker{
		"sticky":   func() ChangeTracker { return NewSticky() },
		"standard": func() ChangeTracker { return NewStandard(4) },
		"biased":   func() ChangeTracker { return NewBiased(2) },
		"biased3":  func() ChangeTracker { return NewBiased(3) },
	} {
		if err := quick.Check(check(mk), nil); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// Property: a change always leaves every machine in the changing state.
func TestChangeEntersChangingProperty(t *testing.T) {
	f := func(seq []bool) bool {
		machines := []ChangeTracker{NewSticky(), NewStandard(4), NewBiased(2)}
		for _, changed := range seq {
			for _, m := range machines {
				m.Observe(changed)
				if changed && !m.Changing() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the biased machine alarms at most once per "burst": between
// two alarms there must be at least Depth consecutive no-changes.
func TestBiasedAlarmSpacingProperty(t *testing.T) {
	f := func(seq []bool, depth8 uint8) bool {
		depth := int(depth8%3) + 1
		b := NewBiased(depth)
		runOfNoChange := depth // initially unchanging
		for _, changed := range seq {
			alarm := b.Observe(changed)
			if bool(alarm) && runOfNoChange < depth {
				return false
			}
			if changed {
				runOfNoChange = 0
			} else if runOfNoChange < depth {
				runOfNoChange++
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: suppressor allows a participation only after >= n-1
// consecutive non-participations (or at start).
func TestSuppressorSpacingProperty(t *testing.T) {
	f := func(seq []bool, n8 uint8) bool {
		n := int(n8%7) + 2
		s := NewSuppressor(n)
		quiets := n - 1 // initially quiet
		for _, part := range seq {
			allowed := s.Observe(part)
			if allowed && quiets < n-1 {
				return false
			}
			if part {
				quiets = 0
			} else if quiets < n-1 {
				quiets++
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
