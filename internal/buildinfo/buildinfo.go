// Package buildinfo identifies the binary that produced an artifact:
// a version, source commit, and build date, injected at link time via
//
//	go build -ldflags "\
//	  -X faulthound/internal/buildinfo.Version=v1.2.3 \
//	  -X faulthound/internal/buildinfo.Commit=abc1234 \
//	  -X faulthound/internal/buildinfo.Date=2026-08-08T00:00:00Z"
//
// Unstamped builds (plain `go build`, `go run`, `go test`) fall back
// to the module's embedded VCS metadata when present. The rendered
// Generator string is stamped into every artifact bundle's
// manifest.json ("generator"), echoed by /healthz, and printed by the
// CLIs' -version flags, so any number in any artifact traces back to
// the binary that produced it (docs/CONTRACTS.md).
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
)

// Link-time variables. Defaults mark a development build.
var (
	// Version is the release tag, or "dev" when unstamped.
	Version = "dev"
	// Commit is the source revision; empty falls back to the VCS
	// metadata Go embeds in module builds.
	Commit = ""
	// Date is the build date (RFC 3339); empty falls back to the VCS
	// commit time when embedded.
	Date = ""
)

// Info is the resolved build identity.
type Info struct {
	Version string `json:"version"`
	Commit  string `json:"commit,omitempty"`
	Date    string `json:"date,omitempty"`
	Go      string `json:"go"`
}

var resolveOnce = sync.OnceValue(func() Info {
	info := Info{Version: Version, Commit: Commit, Date: Date, Go: runtime.Version()}
	if bi, ok := debug.ReadBuildInfo(); ok {
		var modified bool
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				if info.Commit == "" {
					info.Commit = s.Value
				}
			case "vcs.time":
				if info.Date == "" {
					info.Date = s.Value
				}
			case "vcs.modified":
				modified = s.Value == "true"
			}
		}
		if modified && info.Commit != "" && !strings.HasSuffix(info.Commit, "+dirty") {
			info.Commit += "+dirty"
		}
	}
	return info
})

// Resolve returns the build identity, folding in embedded VCS metadata
// for unstamped builds.
func Resolve() Info { return resolveOnce() }

// Generator renders the identity as the one-line provenance string the
// artifact contracts carry ("faulthound/<version> (<commit>)"). It is
// deliberately compact: it lands in every manifest.json.
func Generator() string {
	info := Resolve()
	g := "faulthound/" + info.Version
	if c := info.Commit; c != "" {
		if len(c) > 12 && !strings.HasSuffix(c, "+dirty") {
			c = c[:12]
		}
		g += fmt.Sprintf(" (%s)", c)
	}
	return g
}
