package buildinfo

import (
	"strings"
	"testing"
)

func TestResolve(t *testing.T) {
	info := Resolve()
	if info.Version == "" {
		t.Error("empty version; the dev default should apply")
	}
	if !strings.HasPrefix(info.Go, "go") {
		t.Errorf("Go = %q", info.Go)
	}
	if info != Resolve() {
		t.Error("Resolve is not stable across calls")
	}
}

func TestGeneratorFormat(t *testing.T) {
	g := Generator()
	if !strings.HasPrefix(g, "faulthound/") {
		t.Fatalf("Generator() = %q, want faulthound/<version> prefix", g)
	}
	// Any commit suffix is parenthesized and short enough for a
	// manifest line.
	if i := strings.IndexByte(g, '('); i >= 0 && !strings.HasSuffix(g, ")") {
		t.Fatalf("unbalanced commit suffix: %q", g)
	}
}
