// Package srt models the SRT comparator of the paper's evaluation —
// specifically SRT-iso, the idealized, partial-redundancy variant of
// Reinhardt & Mukherjee's Simultaneous and Redundantly Threaded
// processor that Section 4 defines:
//
//   - the trailing threads incur no branch mispredictions (branch
//     outcome queue) and no cache misses (load-value queue);
//   - leading/trailing synchronization for checking loads and stores is
//     free;
//   - to compare fairly against FaultHound's partial coverage, the
//     trailing threads re-execute only a Coverage fraction of the
//     committed instructions.
//
// The pipeline implements this as "shadow" operations: each committed
// instruction spawns, with probability Coverage, an idealized redundant
// copy that consumes issue/FU/commit bandwidth (resource pressure on
// the leading threads) and energy, but no registers or cache state.
// This package configures that mode and documents the model.
package srt

import "faulthound/internal/pipeline"

// Model describes one SRT variant.
type Model struct {
	// Name labels the scheme in harness output.
	Name string
	// Coverage is the fraction of committed instructions re-executed
	// redundantly: 1.0 is full SRT; SRT-iso uses the coverage of the
	// scheme it is compared against (the paper matches FaultHound's
	// measured coverage).
	Coverage float64
}

// Full returns the full-redundancy SRT detection model (coverage 1.0).
func Full() Model { return Model{Name: "srt", Coverage: 1.0} }

// Iso returns SRT-iso scaled to the given coverage.
func Iso(coverage float64) Model {
	if coverage < 0 {
		coverage = 0
	}
	if coverage > 1 {
		coverage = 1
	}
	return Model{Name: "srt-iso", Coverage: coverage}
}

// Configure applies the model to a pipeline configuration.
func (m Model) Configure(cfg *pipeline.Config) {
	cfg.ShadowRedundancy = m.Coverage
}

// DetectionCoverage returns the fault coverage the model provides: SRT
// detects every fault in the instructions it re-executes, so coverage
// equals the redundant fraction.
func (m Model) DetectionCoverage() float64 { return m.Coverage }
