package srt

import (
	"testing"

	"faulthound/internal/pipeline"
	"faulthound/internal/prog"
	"faulthound/internal/workload"
)

func TestModels(t *testing.T) {
	if Full().Coverage != 1.0 || Full().Name != "srt" {
		t.Fatal("Full model wrong")
	}
	if Iso(0.75).Coverage != 0.75 || Iso(0.75).Name != "srt-iso" {
		t.Fatal("Iso model wrong")
	}
	if Iso(-1).Coverage != 0 || Iso(2).Coverage != 1 {
		t.Fatal("Iso should clamp coverage")
	}
	if Full().DetectionCoverage() != 1.0 {
		t.Fatal("detection coverage mismatch")
	}
}

func TestConfigure(t *testing.T) {
	cfg := pipeline.DefaultConfig(2)
	Iso(0.6).Configure(&cfg)
	if cfg.ShadowRedundancy != 0.6 {
		t.Fatalf("ShadowRedundancy = %v", cfg.ShadowRedundancy)
	}
}

// TestRedundancyScalesWork checks the model end-to-end: higher coverage
// means proportionally more shadow work and never a faster run.
func TestRedundancyScalesWork(t *testing.T) {
	bm, err := workload.Get("bzip2")
	if err != nil {
		t.Fatal(err)
	}
	p := bm.Build(prog.DefaultDataBase, 1)
	run := func(cov float64) (uint64, uint64) {
		cfg := pipeline.DefaultConfig(1)
		Iso(cov).Configure(&cfg)
		c, err := pipeline.New(cfg, []*prog.Program{p}, nil)
		if err != nil {
			t.Fatal(err)
		}
		c.RunUntilCommits(0, 20000, 5_000_000)
		return c.Stats().ShadowOps, c.Cycle()
	}
	s0, c0 := run(0)
	sHalf, _ := run(0.5)
	sFull, cFull := run(1.0)
	if s0 != 0 {
		t.Fatal("no redundancy should mean no shadow ops")
	}
	if sHalf == 0 || sFull == 0 {
		t.Fatal("redundancy produced no shadow ops")
	}
	ratio := float64(sFull) / float64(sHalf)
	if ratio < 1.7 || ratio > 2.3 {
		t.Fatalf("full/half shadow ratio = %v, want ~2", ratio)
	}
	if cFull < c0 {
		t.Fatal("redundancy cannot speed the run up")
	}
}
