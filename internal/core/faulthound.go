// Package core implements the FaultHound detector — the paper's primary
// contribution. It combines the five mechanisms of Section 3:
//
//  1. Clustered, value-indexed filters: two small counting TCAMs (one
//     for load/store addresses, one for store values).
//  2. A second-level filter per TCAM that masks delinquent bit
//     positions (inside package tcam).
//  3. Predecessor replay as the default trigger response (the pipeline
//     executes it; this package requests it).
//  4. Squash state machines that escalate likely rename faults to a
//     full rollback.
//  5. Commit-time LSQ checks answered with a singleton re-execute.
//
// Every ablation of Figures 8-12 is a Config variant: backend-only,
// no-cluster (PC-indexed tables), no-second-level, full-rollback, and
// no-LSQ.
package core

import (
	"faulthound/internal/detect"
	"faulthound/internal/filter"
	"faulthound/internal/ftable"
	"faulthound/internal/tcam"
)

// Config selects the FaultHound variant.
type Config struct {
	// Name labels the detector in harness output.
	Name string
	// Addr and Value configure the two TCAMs (Table 2: 32-entry,
	// 64-bit, biased two-bit machines, second-level filters, squash
	// state machines).
	Addr  tcam.Config
	Value tcam.Config
	// BackendOnly disables the rename-fault squash escalation: every
	// allowed trigger replays (FaultHound-backend in Figure 8).
	BackendOnly bool
	// NoLSQ disables the commit-time checks (FH-BE-noLSQ in Figure 12).
	NoLSQ bool
	// FullRollback answers every allowed trigger with a full rollback
	// instead of a replay (FH-BE-full-rollback in Figure 12).
	FullRollback bool
	// NoCluster replaces the TCAMs with PC-indexed tables using the
	// biased state machine (FH-BE-nocluster in Figure 12); TableEntries
	// sizes them.
	NoCluster    bool
	TableEntries int
}

// DefaultConfig returns full FaultHound with the paper's Table-2
// parameters.
func DefaultConfig() Config {
	return Config{Name: "faulthound", Addr: tcam.DefaultConfig(), Value: tcam.DefaultConfig()}
}

// BackendConfig returns FaultHound-backend: no rename-fault rollbacks.
func BackendConfig() Config {
	c := DefaultConfig()
	c.Name = "faulthound-backend"
	c.BackendOnly = true
	c.Addr.SquashMachines = false
	c.Value.SquashMachines = false
	return c
}

// No2LevelConfig returns FH-BE-no2level (Figure 12-left).
func No2LevelConfig() Config {
	c := BackendConfig()
	c.Name = "fh-be-no2level"
	c.Addr.SecondLevel = false
	c.Value.SecondLevel = false
	return c
}

// NoClusterNo2LevelConfig returns FH-BE-nocluster-no2level (Figure
// 12-left): PC-indexed biased tables with replay recovery, i.e.
// PBFS-biased plus replay.
func NoClusterNo2LevelConfig() Config {
	c := No2LevelConfig()
	c.Name = "fh-be-nocluster-no2level"
	c.NoCluster = true
	c.TableEntries = 2048
	return c
}

// FullRollbackConfig returns FH-BE-full-rollback (Figure 12-middle).
func FullRollbackConfig() Config {
	c := BackendConfig()
	c.Name = "fh-be-full-rollback"
	c.FullRollback = true
	return c
}

// NoLSQConfig returns FH-BE-noLSQ (Figure 12-right).
func NoLSQConfig() Config {
	c := BackendConfig()
	c.Name = "fh-be-nolsq"
	c.NoLSQ = true
	return c
}

// FaultHound is the detector.
type FaultHound struct {
	cfg   Config
	addr  *tcam.TCAM
	value *tcam.TCAM
	// PC-indexed fallbacks for the no-cluster ablation.
	addrTab  *ftable.Table
	valueTab *ftable.Table

	learnOnly bool
	stats     detect.Stats
}

// New creates a FaultHound detector from cfg.
func New(cfg Config) *FaultHound {
	if cfg.Name == "" {
		cfg.Name = "faulthound"
	}
	f := &FaultHound{cfg: cfg}
	if cfg.NoCluster {
		entries := cfg.TableEntries
		if entries == 0 {
			entries = 2048
		}
		tc := ftable.Config{Entries: entries, Policy: filter.Biased2}
		f.addrTab = ftable.New(tc)
		f.valueTab = ftable.New(tc)
	} else {
		f.addr = tcam.New(cfg.Addr)
		f.value = tcam.New(cfg.Value)
	}
	return f
}

// Name implements detect.Detector.
func (f *FaultHound) Name() string { return f.cfg.Name }

// Config returns the detector configuration.
func (f *FaultHound) Config() Config { return f.cfg }

// lookup dispatches a checked operand to the right filter bank.
func (f *FaultHound) lookup(ev detect.Event) tcam.Result {
	if f.cfg.NoCluster {
		tab := f.addrTab
		if ev.Kind == detect.StoreValue {
			tab = f.valueTab
		}
		f.stats.TableReads++
		f.stats.TableWrites++
		trig, mask := tab.Lookup(ev.PC, ev.Value)
		if f.learnOnly {
			trig = false
		}
		return tcam.Result{Trigger: trig, MismatchMask: mask}
	}
	tc := f.addr
	if ev.Kind == detect.StoreValue {
		tc = f.value
	}
	f.stats.TCAMSearches++
	f.stats.TCAMUpdates++
	return tc.Lookup(ev.Value)
}

// OnComplete implements the completion-time check of Section 3.3: an
// allowed trigger replays the delay buffer, unless the squash state
// machine flags a likely rename fault (Section 3.4), which needs a full
// rollback.
func (f *FaultHound) OnComplete(ev detect.Event) detect.Action {
	f.stats.Checks++
	res := f.lookup(ev)
	if !res.Trigger {
		return detect.None
	}
	f.stats.Triggers++
	if res.Suppressed {
		f.stats.Suppressed++
		return detect.None
	}
	if res.SquashAllowed && !f.cfg.BackendOnly {
		f.stats.Rollbacks++
		return detect.Rollback
	}
	if f.cfg.FullRollback {
		f.stats.Rollbacks++
		return detect.Rollback
	}
	f.stats.Replays++
	return detect.Replay
}

// OnCommit implements the LSQ check of Section 3.5: an allowed trigger
// re-executes the single load or store from register-file state. The
// check probes the filters without re-training them — the value was
// already learned at completion.
func (f *FaultHound) OnCommit(ev detect.Event) detect.Action {
	if f.cfg.NoLSQ {
		return detect.None
	}
	f.stats.Checks++
	var trigger, suppressed bool
	if f.cfg.NoCluster {
		tab := f.addrTab
		if ev.Kind == detect.StoreValue {
			tab = f.valueTab
		}
		f.stats.TableReads++
		trigger, _ = tab.Lookup(ev.PC, ev.Value) // tables have no probe path
		if f.learnOnly {
			trigger = false
		}
	} else {
		tc := f.addr
		if ev.Kind == detect.StoreValue {
			tc = f.value
		}
		f.stats.TCAMSearches++
		trigger, suppressed = tc.Probe(ev.Value)
	}
	if !trigger || suppressed {
		if trigger {
			f.stats.Triggers++
			f.stats.Suppressed++
		}
		return detect.None
	}
	f.stats.Triggers++
	f.stats.Singletons++
	return detect.Singleton
}

// SetLearnOnly implements detect.Detector: during a replay the filters
// keep learning but triggers are ignored (Section 3.3).
func (f *FaultHound) SetLearnOnly(on bool) {
	f.learnOnly = on
	if f.cfg.NoCluster {
		return
	}
	f.addr.SetLearnOnly(on)
	f.value.SetLearnOnly(on)
}

// Stats implements detect.Detector.
func (f *FaultHound) Stats() detect.Stats { return f.stats }

// TCAMStats returns the raw TCAM counters (zero values in no-cluster
// mode).
func (f *FaultHound) TCAMStats() (addr, value tcam.Stats) {
	if f.cfg.NoCluster {
		return tcam.Stats{}, tcam.Stats{}
	}
	return f.addr.Stats(), f.value.Stats()
}

// Clone implements detect.Detector.
func (f *FaultHound) Clone() detect.Detector {
	c := &FaultHound{cfg: f.cfg, learnOnly: f.learnOnly, stats: f.stats}
	if f.cfg.NoCluster {
		c.addrTab = f.addrTab.Clone()
		c.valueTab = f.valueTab.Clone()
	} else {
		c.addr = f.addr.Clone()
		c.value = f.value.Clone()
	}
	return c
}

// CloneInto implements detect.InPlaceCloner: overwrite dst (a previous
// Clone of this detector) reusing its filter-bank storage.
func (f *FaultHound) CloneInto(dst detect.Detector) bool {
	c, ok := dst.(*FaultHound)
	if !ok || c.cfg.NoCluster != f.cfg.NoCluster {
		return false
	}
	c.cfg, c.learnOnly, c.stats = f.cfg, f.learnOnly, f.stats
	if f.cfg.NoCluster {
		f.addrTab.CloneInto(c.addrTab)
		f.valueTab.CloneInto(c.valueTab)
	} else {
		f.addr.CloneInto(c.addr)
		f.value.CloneInto(c.value)
	}
	return true
}
