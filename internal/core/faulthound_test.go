package core

import (
	"testing"

	"faulthound/internal/detect"
	"faulthound/internal/isa"
	"faulthound/internal/pipeline"
	"faulthound/internal/prog"
)

func ev(kind detect.Kind, pc, v uint64) detect.Event {
	return detect.Event{Kind: kind, PC: pc, Value: v}
}

func TestStableStreamNeverActs(t *testing.T) {
	f := New(DefaultConfig())
	for i := 0; i < 100; i++ {
		if act := f.OnComplete(ev(detect.LoadAddr, 10, 0x1000)); act != detect.None {
			t.Fatalf("stable stream acted: %v", act)
		}
	}
}

func TestFreshOutlierReplays(t *testing.T) {
	f := New(BackendConfig())
	for i := 0; i < 10; i++ {
		f.OnComplete(ev(detect.LoadAddr, 10, 0x1000))
	}
	// A flip in a long-unchanging bit: replay.
	if act := f.OnComplete(ev(detect.LoadAddr, 10, 0x1000^(1<<40))); act != detect.Replay {
		t.Fatalf("outlier should replay: %v", act)
	}
}

func TestValueIndexedClusteringSharesLearning(t *testing.T) {
	// Unlike the PC-indexed tables, two different PCs producing the
	// same value stream share one filter: the second PC never triggers.
	f := New(BackendConfig())
	f.OnComplete(ev(detect.LoadAddr, 1, 0x1000))
	if act := f.OnComplete(ev(detect.LoadAddr, 2, 0x1000)); act != detect.None {
		t.Fatalf("clustering failed: %v", act)
	}
}

func TestSeparateAddrAndValueTCAMs(t *testing.T) {
	f := New(DefaultConfig())
	f.OnComplete(ev(detect.StoreAddr, 10, 0x10000000))
	// A small store value is far from the address's neighborhood; with
	// a shared TCAM it would trigger or pollute. Separate TCAMs learn
	// independently (first touch installs, no trigger).
	if act := f.OnComplete(ev(detect.StoreValue, 10, 3)); act != detect.None {
		t.Fatalf("value TCAM polluted: %v", act)
	}
	if act := f.OnComplete(ev(detect.StoreValue, 10, 3)); act != detect.None {
		t.Fatalf("value TCAM should know 3: %v", act)
	}
}

func TestCommitTriggerIsSingleton(t *testing.T) {
	f := New(DefaultConfig())
	for i := 0; i < 10; i++ {
		f.OnComplete(ev(detect.StoreValue, 10, 0x40))
	}
	if act := f.OnCommit(ev(detect.StoreValue, 10, 0x40)); act != detect.None {
		t.Fatalf("matching commit check acted: %v", act)
	}
	if act := f.OnCommit(ev(detect.StoreValue, 10, 0x40^(1<<50))); act != detect.Singleton {
		t.Fatalf("commit outlier should be singleton: %v", act)
	}
}

func TestNoLSQDisablesCommitChecks(t *testing.T) {
	f := New(NoLSQConfig())
	f.OnComplete(ev(detect.StoreValue, 10, 0x40))
	if act := f.OnCommit(ev(detect.StoreValue, 10, 0xffffffffffff)); act != detect.None {
		t.Fatalf("noLSQ variant answered a commit check: %v", act)
	}
}

func TestFullRollbackVariant(t *testing.T) {
	f := New(FullRollbackConfig())
	f.OnComplete(ev(detect.LoadAddr, 10, 0x1000))
	if act := f.OnComplete(ev(detect.LoadAddr, 10, 0x1000^(1<<40))); act != detect.Rollback {
		t.Fatalf("full-rollback variant should roll back: %v", act)
	}
}

func TestBackendOnlyNeverRollsBack(t *testing.T) {
	f := New(BackendConfig())
	// Hammer with far-apart values; whatever triggers must never be a
	// rollback.
	for i := uint64(0); i < 200; i++ {
		act := f.OnComplete(ev(detect.LoadAddr, i, i*0x123456789))
		if act == detect.Rollback {
			t.Fatal("backend-only variant rolled back")
		}
	}
}

func TestRenameFaultPatternRollsBack(t *testing.T) {
	// Full FaultHound (second-level filter off, to isolate the squash
	// machines): establish two stable neighborhoods, then present a
	// trigger whose closest filter has been quiet — the squash machine
	// escalates to rollback (likely rename fault).
	cfg := DefaultConfig()
	cfg.Addr.SecondLevel = false
	cfg.Value.SecondLevel = false
	f := New(cfg)
	for i := 0; i < 20; i++ {
		f.OnComplete(ev(detect.LoadAddr, 1, 0x10000000))
	}
	f.OnComplete(ev(detect.LoadAddr, 2, 0xffffffff00000000))
	for i := 0; i < 20; i++ {
		f.OnComplete(ev(detect.LoadAddr, 2, 0xffffffff00000000))
	}
	// The unintended value is far from every neighborhood
	// (replacement-level): a true identity change.
	act := f.OnComplete(ev(detect.LoadAddr, 1, 0x00ff00ff00ff00ff))
	if act != detect.Rollback {
		t.Fatalf("identity-changing trigger should roll back: %v", act)
	}
}

func TestNoClusterVariantUsesTables(t *testing.T) {
	f := New(NoClusterNo2LevelConfig())
	f.OnComplete(ev(detect.LoadAddr, 1, 0x1000))
	f.OnComplete(ev(detect.LoadAddr, 2, 0x1000))
	// PC-spreading: PC 2's entry learned independently, so a change at
	// PC 2 triggers even though PC 1 saw the same stream.
	act := f.OnComplete(ev(detect.LoadAddr, 2, 0x1008))
	if act != detect.Replay {
		t.Fatalf("nocluster variant should replay per-PC: %v", act)
	}
	if s := f.Stats(); s.TableReads == 0 || s.TCAMSearches != 0 {
		t.Fatalf("wrong filter bank used: %+v", s)
	}
}

func TestLearnOnlyIgnoresTriggers(t *testing.T) {
	f := New(DefaultConfig())
	f.OnComplete(ev(detect.LoadAddr, 1, 0x1000))
	f.SetLearnOnly(true)
	if act := f.OnComplete(ev(detect.LoadAddr, 1, 0xffffffffffffffff)); act != detect.None {
		t.Fatalf("learn-only acted: %v", act)
	}
	f.SetLearnOnly(false)
}

func TestStatsConservation(t *testing.T) {
	f := New(DefaultConfig())
	for i := uint64(0); i < 500; i++ {
		f.OnComplete(ev(detect.LoadAddr, i%7, (i%5)*0x100000+0x10000000))
	}
	s := f.Stats()
	if s.Triggers != s.Suppressed+s.Replays+s.Rollbacks+s.Singletons {
		t.Fatalf("trigger accounting broken: %+v", s)
	}
	if s.TCAMSearches == 0 {
		t.Fatal("TCAM searches not counted")
	}
}

func TestCloneIndependence(t *testing.T) {
	f := New(DefaultConfig())
	f.OnComplete(ev(detect.LoadAddr, 1, 100))
	c := f.Clone()
	c.OnComplete(ev(detect.LoadAddr, 1, 0xffffffffffffffff))
	if f.Stats().Checks != 1 {
		t.Fatal("clone leaked into original")
	}
	if act := f.OnComplete(ev(detect.LoadAddr, 1, 100)); act != detect.None {
		t.Fatal("original filters disturbed")
	}
}

// --- Integration with the pipeline ---

// buildWorkload builds a program with memory traffic and data-dependent
// branches, enough to exercise replays.
func buildWorkload(words int32) *prog.Program {
	b := prog.NewBuilder("wl", uint64(words+8)*8)
	for i := int32(0); i < words; i++ {
		b.Word(uint64(i)*8, uint64(i*i)%251)
	}
	b.MovU64(2, b.DataBase())
	b.MovI(3, 0)
	b.MovI(4, int32(words))
	b.MovI(6, 0)
	b.Label("loop")
	b.OpI(isa.SLLI, 5, 3, 3)
	b.Op3(isa.ADD, 5, 2, 5)
	b.Ld(7, 5, 0)
	b.Op3(isa.ADD, 6, 6, 7)
	b.OpI(isa.XORI, 7, 7, 0x55)
	b.St(5, 0, 7)
	b.OpI(isa.ADDI, 3, 3, 1)
	b.Br(isa.BLT, 3, 4, "loop")
	b.Halt()
	return b.MustBuild()
}

// TestFaultFreeTransparency is the central integration invariant: with
// FaultHound attached and no faults injected, false-positive replays,
// rollbacks, and singleton re-executions must leave the architectural
// results identical to the sequential interpreter's.
func TestFaultFreeTransparency(t *testing.T) {
	for _, cfg := range []Config{
		DefaultConfig(), BackendConfig(), No2LevelConfig(),
		NoClusterNo2LevelConfig(), FullRollbackConfig(), NoLSQConfig(),
	} {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			p := buildWorkload(128)
			pcfg := pipeline.DefaultConfig(1)
			c, err := pipeline.New(pcfg, []*prog.Program{p}, New(cfg))
			if err != nil {
				t.Fatal(err)
			}
			c.Run(2_000_000)
			if !c.Halted(0) {
				t.Fatal("did not halt")
			}
			if exc, msg := c.Excepted(0); exc {
				t.Fatalf("spurious exception: %s", msg)
			}
			it := prog.NewInterp(p)
			it.Run(10_000_000)
			regs := c.ArchRegs(0)
			for r := 0; r < isa.NumArchRegs; r++ {
				if regs[r] != it.Regs[r] {
					t.Errorf("reg %s: pipeline %#x, interp %#x", isa.Reg(r), regs[r], it.Regs[r])
				}
			}
			if c.Committed(0) != it.Steps {
				t.Errorf("committed %d, interp %d", c.Committed(0), it.Steps)
			}
		})
	}
}

// TestReplaysActuallyHappen checks that the integration produces replay
// activity on a value-noisy workload without corrupting state.
func TestReplaysActuallyHappen(t *testing.T) {
	p := buildWorkload(256)
	c, err := pipeline.New(pipeline.DefaultConfig(1), []*prog.Program{p}, New(BackendConfig()))
	if err != nil {
		t.Fatal(err)
	}
	c.Run(3_000_000)
	ds := c.Detector().Stats()
	if ds.Checks == 0 {
		t.Fatal("no detector checks ran")
	}
	ps := c.Stats()
	if ds.Replays > 0 && ps.ReplayTriggers == 0 {
		t.Fatal("detector requested replays but the pipeline ran none")
	}
}
