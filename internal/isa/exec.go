package isa

import "math"

// Outcome is the architectural effect of executing one instruction,
// given its source operand values. Memory instructions report an
// effective address; the pipeline performs the actual access.
type Outcome struct {
	// Value is the result written to Rd (if HasDest), or the value to
	// be stored for ST.
	Value uint64
	// EffAddr is the effective address for LD/ST.
	EffAddr uint64
	// Taken reports whether a control transfer redirects the PC.
	// Unconditional jumps are always taken.
	Taken bool
	// Target is the next instruction index when Taken.
	Target uint64
	// Halt reports thread termination.
	Halt bool
}

// Exec computes the architectural outcome of in at instruction index pc
// with source operand values s1 (Rs1) and s2 (Rs2). Operand values for
// registers the instruction does not read are ignored. Exec is a pure
// function: all state effects (register write, memory access, PC
// update) are applied by the caller.
func Exec(in Inst, pc uint64, s1, s2 uint64) Outcome {
	imm := uint64(int64(in.Imm)) // sign-extended
	switch in.Op {
	case NOP:
		return Outcome{}
	case ADD:
		return Outcome{Value: s1 + s2}
	case SUB:
		return Outcome{Value: s1 - s2}
	case AND:
		return Outcome{Value: s1 & s2}
	case OR:
		return Outcome{Value: s1 | s2}
	case XOR:
		return Outcome{Value: s1 ^ s2}
	case SLL:
		return Outcome{Value: s1 << (s2 & 63)}
	case SRL:
		return Outcome{Value: s1 >> (s2 & 63)}
	case SRA:
		return Outcome{Value: uint64(int64(s1) >> (s2 & 63))}
	case CMPLT:
		return Outcome{Value: b2u(int64(s1) < int64(s2))}
	case CMPLTU:
		return Outcome{Value: b2u(s1 < s2)}
	case CMPEQ:
		return Outcome{Value: b2u(s1 == s2)}
	case ADDI:
		return Outcome{Value: s1 + imm}
	case ANDI:
		return Outcome{Value: s1 & imm}
	case ORI:
		return Outcome{Value: s1 | imm}
	case XORI:
		return Outcome{Value: s1 ^ imm}
	case SLLI:
		return Outcome{Value: s1 << (imm & 63)}
	case SRLI:
		return Outcome{Value: s1 >> (imm & 63)}
	case SRAI:
		return Outcome{Value: uint64(int64(s1) >> (imm & 63))}
	case MOVI:
		return Outcome{Value: imm}
	case MUL:
		return Outcome{Value: s1 * s2}
	case DIV:
		if s2 == 0 {
			return Outcome{Value: ^uint64(0)}
		}
		return Outcome{Value: uint64(int64(s1) / int64(s2))}
	case REM:
		if s2 == 0 {
			return Outcome{Value: s1}
		}
		return Outcome{Value: uint64(int64(s1) % int64(s2))}
	case FADD:
		return Outcome{Value: fop(s1, s2, func(a, b float64) float64 { return a + b })}
	case FSUB:
		return Outcome{Value: fop(s1, s2, func(a, b float64) float64 { return a - b })}
	case FMUL:
		return Outcome{Value: fop(s1, s2, func(a, b float64) float64 { return a * b })}
	case FDIV:
		return Outcome{Value: fop(s1, s2, func(a, b float64) float64 { return a / b })}
	case FMIN:
		return Outcome{Value: fop(s1, s2, math.Min)}
	case FMAX:
		return Outcome{Value: fop(s1, s2, math.Max)}
	case I2F:
		return Outcome{Value: math.Float64bits(float64(int64(s1)))}
	case F2I:
		f := math.Float64frombits(s1)
		if math.IsNaN(f) {
			return Outcome{Value: 0}
		}
		return Outcome{Value: uint64(int64(f))}
	case LD:
		return Outcome{EffAddr: s1 + imm}
	case ST:
		return Outcome{EffAddr: s1 + imm, Value: s2}
	case AMOADD, SWAP:
		// The read-modify-write itself is applied by the pipeline or
		// interpreter at the memory; Value carries the operand.
		return Outcome{EffAddr: s1 + imm, Value: s2}
	case BEQ:
		return branch(s1 == s2, imm)
	case BNE:
		return branch(s1 != s2, imm)
	case BLT:
		return branch(int64(s1) < int64(s2), imm)
	case BGE:
		return branch(int64(s1) >= int64(s2), imm)
	case JMP:
		return Outcome{Taken: true, Target: imm}
	case JAL:
		return Outcome{Value: pc + 1, Taken: true, Target: imm}
	case JALR:
		return Outcome{Value: pc + 1, Taken: true, Target: s1}
	case HALT:
		return Outcome{Halt: true}
	}
	return Outcome{}
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func fop(a, b uint64, f func(float64, float64) float64) uint64 {
	return math.Float64bits(f(math.Float64frombits(a), math.Float64frombits(b)))
}

func branch(taken bool, target uint64) Outcome {
	return Outcome{Taken: taken, Target: target}
}
