// Package isa defines the 64-bit RISC instruction set executed by the
// pipeline simulator. It plays the role GEMS/Opal's SPARC ISA plays in
// the paper: a simple RISC ISA (the paper notes decode is under 3% of
// pipeline area for such ISAs, which is why FaultHound does not cover
// decode).
//
// The ISA has 32 integer registers (R0 hardwired to zero) and 16
// floating-point registers, addressed through a single 6-bit register
// namespace (0-31 integer, 32-47 FP). Instructions are fixed 64-bit
// words; see Encode/Decode. All memory accesses are 8-byte.
package isa

import "fmt"

// Reg identifies an architectural register in the unified namespace.
type Reg uint8

// Register namespace layout.
const (
	NumIntRegs  = 32
	NumFPRegs   = 16
	NumArchRegs = NumIntRegs + NumFPRegs

	// RZero is hardwired to zero: writes are discarded, reads yield 0.
	RZero Reg = 0
	// RLink is the conventional link register for JAL/JALR.
	RLink Reg = 31
	// F0 is the first floating-point register.
	F0 Reg = NumIntRegs
)

// IsFP reports whether r names a floating-point register.
func (r Reg) IsFP() bool { return r >= F0 && r < NumArchRegs }

// Valid reports whether r is within the architectural namespace.
func (r Reg) Valid() bool { return r < NumArchRegs }

// String renders the register in assembly form (r0..r31, f0..f15).
func (r Reg) String() string {
	if r.IsFP() {
		return fmt.Sprintf("f%d", r-F0)
	}
	return fmt.Sprintf("r%d", r)
}

// F returns the FP register with index i (0..15).
func F(i int) Reg { return F0 + Reg(i) }

// Op is an operation code.
type Op uint8

// Operation codes. The zero value is NOP so that zeroed instruction
// memory decodes harmlessly.
const (
	NOP Op = iota

	// Integer ALU, register-register.
	ADD
	SUB
	AND
	OR
	XOR
	SLL
	SRL
	SRA
	CMPLT  // rd = (int64(rs1) < int64(rs2)) ? 1 : 0
	CMPLTU // rd = (rs1 < rs2) ? 1 : 0
	CMPEQ  // rd = (rs1 == rs2) ? 1 : 0

	// Integer ALU, register-immediate.
	ADDI
	ANDI
	ORI
	XORI
	SLLI
	SRLI
	SRAI
	MOVI // rd = sign-extended imm

	// Integer multiply/divide (separate functional units).
	MUL
	DIV // rd = rs1 / rs2 (signed); division by zero yields all-ones
	REM // rd = rs1 % rs2 (signed); modulo by zero yields rs1

	// Floating point (operands are float64 bit patterns).
	FADD
	FSUB
	FMUL
	FDIV
	FMIN
	FMAX
	I2F // rd(fp) = float64(int64(rs1))
	F2I // rd(int) = int64(float64 bits of rs1)

	// Memory (8-byte). LD: rd = mem[rs1+imm]. ST: mem[rs1+imm] = rs2.
	LD
	ST

	// Atomics (8-byte, sequentially consistent; executed at ROB head),
	// modeled on SPARC's atomic primitives.
	// AMOADD: rd = mem[rs1+imm]; mem[rs1+imm] = rd + rs2.
	// SWAP:   rd = mem[rs1+imm]; mem[rs1+imm] = rs2.
	AMOADD
	SWAP

	// Control flow. Branch targets and jump targets are absolute
	// instruction indices carried in imm.
	BEQ // if rs1 == rs2 goto imm
	BNE
	BLT  // signed
	BGE  // signed
	JMP  // goto imm
	JAL  // rd = pc+1; goto imm (call)
	JALR // rd = pc+1; goto rs1 (indirect; return when rs1 = link)

	// HALT retires the thread.
	HALT

	numOps
)

var opNames = [...]string{
	NOP: "nop", ADD: "add", SUB: "sub", AND: "and", OR: "or", XOR: "xor",
	SLL: "sll", SRL: "srl", SRA: "sra", CMPLT: "cmplt", CMPLTU: "cmpltu",
	CMPEQ: "cmpeq", ADDI: "addi", ANDI: "andi", ORI: "ori", XORI: "xori",
	SLLI: "slli", SRLI: "srli", SRAI: "srai", MOVI: "movi", MUL: "mul",
	DIV: "div", REM: "rem", FADD: "fadd", FSUB: "fsub", FMUL: "fmul",
	FDIV: "fdiv", FMIN: "fmin", FMAX: "fmax", I2F: "i2f", F2I: "f2i",
	LD: "ld", ST: "st", AMOADD: "amoadd", SWAP: "swap",
	BEQ: "beq", BNE: "bne", BLT: "blt", BGE: "bge",
	JMP: "jmp", JAL: "jal", JALR: "jalr", HALT: "halt",
}

// String returns the mnemonic.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Valid reports whether o is a defined operation.
func (o Op) Valid() bool { return o < numOps }

// Class groups operations by the functional unit and pipeline handling
// they require.
type Class uint8

// Functional classes.
const (
	ClassNop Class = iota
	ClassIntALU
	ClassIntMul // MUL, DIV, REM
	ClassFP
	ClassLoad
	ClassStore
	ClassBranch // conditional branches and jumps
	ClassHalt
	// ClassAtomic covers read-modify-write memory operations, executed
	// non-speculatively at the head of the reorder buffer.
	ClassAtomic
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassNop:
		return "nop"
	case ClassIntALU:
		return "alu"
	case ClassIntMul:
		return "mul"
	case ClassFP:
		return "fp"
	case ClassLoad:
		return "load"
	case ClassStore:
		return "store"
	case ClassBranch:
		return "branch"
	case ClassHalt:
		return "halt"
	case ClassAtomic:
		return "atomic"
	}
	return "?"
}

// ClassOf returns the functional class of op.
func ClassOf(op Op) Class {
	switch op {
	case NOP:
		return ClassNop
	case MUL, DIV, REM:
		return ClassIntMul
	case FADD, FSUB, FMUL, FDIV, FMIN, FMAX, I2F, F2I:
		return ClassFP
	case LD:
		return ClassLoad
	case ST:
		return ClassStore
	case AMOADD, SWAP:
		return ClassAtomic
	case BEQ, BNE, BLT, BGE, JMP, JAL, JALR:
		return ClassBranch
	case HALT:
		return ClassHalt
	default:
		return ClassIntALU
	}
}

// Latency returns the execute latency in cycles for op (Table 2-class
// machine: ALU 1, MUL 3, DIV 12, FP 4, FDIV 12; loads add cache
// latency on top of the 1-cycle address generation).
func Latency(op Op) int {
	switch ClassOf(op) {
	case ClassIntMul:
		if op == MUL {
			return 3
		}
		return 12 // DIV, REM
	case ClassFP:
		if op == FDIV {
			return 12
		}
		return 4
	case ClassLoad, ClassStore, ClassAtomic:
		return 1 // address generation; memory latency added by the cache model
	default:
		return 1
	}
}

// Inst is one decoded instruction.
type Inst struct {
	Op  Op
	Rd  Reg
	Rs1 Reg
	Rs2 Reg
	Imm int32
}

// HasDest reports whether the instruction writes a destination register.
// Writes to RZero are architecturally discarded but still allocate a
// destination in the pipeline, so this reflects the format, not RZero.
func (in Inst) HasDest() bool {
	switch in.Op {
	case NOP, ST, BEQ, BNE, BLT, BGE, JMP, HALT:
		return false
	}
	return true
}

// SrcRegs returns the architectural source registers read by the
// instruction (0, 1, or 2 of them).
func (in Inst) SrcRegs() []Reg {
	switch in.Op {
	case NOP, MOVI, JMP, JAL, HALT:
		return nil
	case ADDI, ANDI, ORI, XORI, SLLI, SRLI, SRAI, LD, I2F, F2I, JALR:
		return []Reg{in.Rs1}
	default:
		return []Reg{in.Rs1, in.Rs2}
	}
}

// NumSrcs returns the number of architectural sources.
func (in Inst) NumSrcs() int {
	switch in.Op {
	case NOP, MOVI, JMP, JAL, HALT:
		return 0
	case ADDI, ANDI, ORI, XORI, SLLI, SRLI, SRAI, LD, I2F, F2I, JALR:
		return 1
	default:
		return 2
	}
}

// IsBranch reports whether the instruction is any control transfer.
func (in Inst) IsBranch() bool { return ClassOf(in.Op) == ClassBranch }

// IsCondBranch reports whether the instruction is a conditional branch.
func (in Inst) IsCondBranch() bool {
	switch in.Op {
	case BEQ, BNE, BLT, BGE:
		return true
	}
	return false
}

// IsMem reports whether the instruction accesses data memory.
func (in Inst) IsMem() bool {
	return in.Op == LD || in.Op == ST
}

// IsAtomic reports whether the instruction is a read-modify-write.
func (in Inst) IsAtomic() bool {
	return in.Op == AMOADD || in.Op == SWAP
}

// String renders the instruction in assembly form.
func (in Inst) String() string {
	switch in.Op {
	case NOP, HALT:
		return in.Op.String()
	case MOVI:
		return fmt.Sprintf("%s %s, %d", in.Op, in.Rd, in.Imm)
	case ADDI, ANDI, ORI, XORI, SLLI, SRLI, SRAI:
		return fmt.Sprintf("%s %s, %s, %d", in.Op, in.Rd, in.Rs1, in.Imm)
	case LD:
		return fmt.Sprintf("ld %s, [%s%+d]", in.Rd, in.Rs1, in.Imm)
	case ST:
		return fmt.Sprintf("st [%s%+d], %s", in.Rs1, in.Imm, in.Rs2)
	case AMOADD, SWAP:
		return fmt.Sprintf("%s %s, [%s%+d], %s", in.Op, in.Rd, in.Rs1, in.Imm, in.Rs2)
	case BEQ, BNE, BLT, BGE:
		return fmt.Sprintf("%s %s, %s, @%d", in.Op, in.Rs1, in.Rs2, in.Imm)
	case JMP:
		return fmt.Sprintf("jmp @%d", in.Imm)
	case JAL:
		return fmt.Sprintf("jal %s, @%d", in.Rd, in.Imm)
	case JALR:
		return fmt.Sprintf("jalr %s, %s", in.Rd, in.Rs1)
	case I2F, F2I:
		return fmt.Sprintf("%s %s, %s", in.Op, in.Rd, in.Rs1)
	default:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, in.Rd, in.Rs1, in.Rs2)
	}
}
