package isa

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRegNamespace(t *testing.T) {
	if RZero != 0 {
		t.Fatal("RZero must be register 0")
	}
	if F(0) != F0 || !F(0).IsFP() {
		t.Fatal("F(0) should be the first FP register")
	}
	if Reg(5).IsFP() {
		t.Fatal("r5 is not FP")
	}
	if !F(15).Valid() || Reg(NumArchRegs).Valid() {
		t.Fatal("validity bounds wrong")
	}
	if Reg(3).String() != "r3" || F(2).String() != "f2" {
		t.Fatalf("register naming: %s %s", Reg(3), F(2))
	}
}

func TestClassOf(t *testing.T) {
	cases := map[Op]Class{
		NOP: ClassNop, ADD: ClassIntALU, ADDI: ClassIntALU, MOVI: ClassIntALU,
		MUL: ClassIntMul, DIV: ClassIntMul, REM: ClassIntMul,
		FADD: ClassFP, FDIV: ClassFP, I2F: ClassFP, F2I: ClassFP,
		LD: ClassLoad, ST: ClassStore,
		BEQ: ClassBranch, JMP: ClassBranch, JAL: ClassBranch, JALR: ClassBranch,
		HALT: ClassHalt,
	}
	for op, want := range cases {
		if got := ClassOf(op); got != want {
			t.Errorf("ClassOf(%s) = %s, want %s", op, got, want)
		}
	}
}

func TestLatencies(t *testing.T) {
	if Latency(ADD) != 1 || Latency(MUL) != 3 || Latency(DIV) != 12 {
		t.Fatal("integer latencies wrong")
	}
	if Latency(FADD) != 4 || Latency(FDIV) != 12 {
		t.Fatal("FP latencies wrong")
	}
	if Latency(LD) != 1 || Latency(ST) != 1 {
		t.Fatal("memory AGU latency wrong")
	}
}

func TestSrcRegsAndDest(t *testing.T) {
	cases := []struct {
		in    Inst
		nsrc  int
		hasRd bool
	}{
		{Inst{Op: ADD, Rd: 1, Rs1: 2, Rs2: 3}, 2, true},
		{Inst{Op: ADDI, Rd: 1, Rs1: 2, Imm: 5}, 1, true},
		{Inst{Op: MOVI, Rd: 1, Imm: 5}, 0, true},
		{Inst{Op: LD, Rd: 1, Rs1: 2}, 1, true},
		{Inst{Op: ST, Rs1: 2, Rs2: 3}, 2, false},
		{Inst{Op: BEQ, Rs1: 1, Rs2: 2}, 2, false},
		{Inst{Op: JMP}, 0, false},
		{Inst{Op: JAL, Rd: RLink}, 0, true},
		{Inst{Op: JALR, Rd: RZero, Rs1: RLink}, 1, true},
		{Inst{Op: NOP}, 0, false},
		{Inst{Op: HALT}, 0, false},
	}
	for _, c := range cases {
		if got := c.in.NumSrcs(); got != c.nsrc {
			t.Errorf("%s: NumSrcs = %d, want %d", c.in, got, c.nsrc)
		}
		if got := len(c.in.SrcRegs()); got != c.nsrc {
			t.Errorf("%s: len(SrcRegs) = %d, want %d", c.in, got, c.nsrc)
		}
		if got := c.in.HasDest(); got != c.hasRd {
			t.Errorf("%s: HasDest = %v, want %v", c.in, got, c.hasRd)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	ins := []Inst{
		{Op: ADD, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: MOVI, Rd: 7, Imm: -12345},
		{Op: LD, Rd: 4, Rs1: 5, Imm: 1024},
		{Op: ST, Rs1: 5, Rs2: 6, Imm: -8},
		{Op: BEQ, Rs1: 1, Rs2: 2, Imm: 42},
		{Op: FADD, Rd: F(1), Rs1: F(2), Rs2: F(3)},
		{Op: HALT},
	}
	for _, in := range ins {
		got, err := Decode(Encode(in))
		if err != nil {
			t.Fatalf("%s: %v", in, err)
		}
		if got != in {
			t.Errorf("round trip: got %+v, want %+v", got, in)
		}
	}
}

func TestDecodeRejectsBadWords(t *testing.T) {
	bad := []uint64{
		uint64(numOps) << opShift,                                    // undefined opcode
		Encode(Inst{Op: ADD}) | 1<<33,                                // reserved bits set
		Encode(Inst{Op: ADD, Rd: Reg(0x30)}) | uint64(0x30)<<rdShift, // reg 48 out of range
	}
	for _, w := range bad {
		if _, err := Decode(w); err == nil {
			t.Errorf("Decode(%#x) should fail", w)
		}
	}
}

func TestMustDecodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustDecode(uint64(numOps) << opShift)
}

// Property: Encode/Decode round-trip for every syntactically valid
// instruction.
func TestEncodeDecodeProperty(t *testing.T) {
	f := func(op8, rd, rs1, rs2 uint8, imm int32) bool {
		in := Inst{
			Op:  Op(op8 % uint8(numOps)),
			Rd:  Reg(rd % NumArchRegs),
			Rs1: Reg(rs1 % NumArchRegs),
			Rs2: Reg(rs2 % NumArchRegs),
			Imm: imm,
		}
		got, err := Decode(Encode(in))
		return err == nil && got == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func neg(v int64) uint64 { return uint64(-v) }

func TestExecIntALU(t *testing.T) {
	cases := []struct {
		op     Op
		s1, s2 uint64
		imm    int32
		want   uint64
	}{
		{ADD, 3, 4, 0, 7},
		{SUB, 3, 4, 0, ^uint64(0)},
		{AND, 0b1100, 0b1010, 0, 0b1000},
		{OR, 0b1100, 0b1010, 0, 0b1110},
		{XOR, 0b1100, 0b1010, 0, 0b0110},
		{SLL, 1, 8, 0, 256},
		{SRL, 256, 8, 0, 1},
		{SRA, neg(256), 4, 0, neg(16)},
		{CMPLT, neg(1), 0, 0, 1},
		{CMPLTU, neg(1), 0, 0, 0},
		{CMPEQ, 5, 5, 0, 1},
		{ADDI, 10, 0, -3, 7},
		{MOVI, 0, 0, -1, ^uint64(0)},
		{SLLI, 1, 0, 12, 4096},
		{MUL, 7, 6, 0, 42},
		{DIV, neg(42), 6, 0, neg(7)},
		{REM, 43, 6, 0, 1},
	}
	for _, c := range cases {
		in := Inst{Op: c.op, Rd: 1, Rs1: 2, Rs2: 3, Imm: c.imm}
		got := Exec(in, 0, c.s1, c.s2)
		if got.Value != c.want {
			t.Errorf("%s(%d,%d,imm=%d) = %d, want %d", c.op, c.s1, c.s2, c.imm, got.Value, c.want)
		}
	}
}

func TestExecDivideByZero(t *testing.T) {
	if got := Exec(Inst{Op: DIV}, 0, 5, 0); got.Value != ^uint64(0) {
		t.Fatalf("DIV by zero = %d", got.Value)
	}
	if got := Exec(Inst{Op: REM}, 0, 5, 0); got.Value != 5 {
		t.Fatalf("REM by zero = %d", got.Value)
	}
}

func TestExecFP(t *testing.T) {
	b := math.Float64bits
	cases := []struct {
		op     Op
		s1, s2 float64
		want   float64
	}{
		{FADD, 1.5, 2.5, 4.0},
		{FSUB, 1.5, 2.5, -1.0},
		{FMUL, 3, 4, 12},
		{FDIV, 1, 4, 0.25},
		{FMIN, 2, -3, -3},
		{FMAX, 2, -3, 2},
	}
	for _, c := range cases {
		got := Exec(Inst{Op: c.op}, 0, b(c.s1), b(c.s2))
		if math.Float64frombits(got.Value) != c.want {
			t.Errorf("%s(%v,%v) = %v, want %v", c.op, c.s1, c.s2, math.Float64frombits(got.Value), c.want)
		}
	}
}

func TestExecConversions(t *testing.T) {
	got := Exec(Inst{Op: I2F}, 0, neg(7), 0)
	if math.Float64frombits(got.Value) != -7.0 {
		t.Fatalf("I2F(-7) = %v", math.Float64frombits(got.Value))
	}
	got = Exec(Inst{Op: F2I}, 0, math.Float64bits(-7.9), 0)
	if int64(got.Value) != -7 {
		t.Fatalf("F2I(-7.9) = %d", int64(got.Value))
	}
	got = Exec(Inst{Op: F2I}, 0, math.Float64bits(math.NaN()), 0)
	if got.Value != 0 {
		t.Fatalf("F2I(NaN) = %d, want 0", got.Value)
	}
}

func TestExecMemory(t *testing.T) {
	got := Exec(Inst{Op: LD, Rd: 1, Rs1: 2, Imm: -16}, 0, 1000, 0)
	if got.EffAddr != 984 {
		t.Fatalf("LD effaddr = %d", got.EffAddr)
	}
	got = Exec(Inst{Op: ST, Rs1: 2, Rs2: 3, Imm: 8}, 0, 1000, 77)
	if got.EffAddr != 1008 || got.Value != 77 {
		t.Fatalf("ST effaddr=%d value=%d", got.EffAddr, got.Value)
	}
}

func TestExecBranches(t *testing.T) {
	cases := []struct {
		op     Op
		s1, s2 uint64
		taken  bool
	}{
		{BEQ, 5, 5, true},
		{BEQ, 5, 6, false},
		{BNE, 5, 6, true},
		{BLT, neg(1), 0, true},
		{BLT, 0, neg(1), false},
		{BGE, 3, 3, true},
	}
	for _, c := range cases {
		got := Exec(Inst{Op: c.op, Imm: 99}, 10, c.s1, c.s2)
		if got.Taken != c.taken {
			t.Errorf("%s(%d,%d).Taken = %v, want %v", c.op, c.s1, c.s2, got.Taken, c.taken)
		}
		if c.taken && got.Target != 99 {
			t.Errorf("%s target = %d, want 99", c.op, got.Target)
		}
	}
}

func TestExecJumps(t *testing.T) {
	got := Exec(Inst{Op: JMP, Imm: 20}, 5, 0, 0)
	if !got.Taken || got.Target != 20 {
		t.Fatalf("JMP: %+v", got)
	}
	got = Exec(Inst{Op: JAL, Rd: RLink, Imm: 20}, 5, 0, 0)
	if !got.Taken || got.Target != 20 || got.Value != 6 {
		t.Fatalf("JAL: %+v", got)
	}
	got = Exec(Inst{Op: JALR, Rd: RZero, Rs1: RLink}, 5, 42, 0)
	if !got.Taken || got.Target != 42 || got.Value != 6 {
		t.Fatalf("JALR: %+v", got)
	}
}

func TestExecHalt(t *testing.T) {
	if got := Exec(Inst{Op: HALT}, 0, 0, 0); !got.Halt {
		t.Fatal("HALT should report Halt")
	}
}

// Property: Exec never reports Taken for non-branch classes and never
// reports Halt except for HALT.
func TestExecClassConsistencyProperty(t *testing.T) {
	f := func(op8 uint8, s1, s2 uint64, imm int32) bool {
		op := Op(op8 % uint8(numOps))
		in := Inst{Op: op, Rd: 1, Rs1: 2, Rs2: 3, Imm: imm}
		out := Exec(in, 100, s1, s2)
		if out.Taken && ClassOf(op) != ClassBranch {
			return false
		}
		if out.Halt != (op == HALT) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInstStrings(t *testing.T) {
	cases := map[string]Inst{
		"add r1, r2, r3":  {Op: ADD, Rd: 1, Rs1: 2, Rs2: 3},
		"movi r7, -5":     {Op: MOVI, Rd: 7, Imm: -5},
		"ld r4, [r5+16]":  {Op: LD, Rd: 4, Rs1: 5, Imm: 16},
		"st [r5-8], r6":   {Op: ST, Rs1: 5, Rs2: 6, Imm: -8},
		"beq r1, r2, @42": {Op: BEQ, Rs1: 1, Rs2: 2, Imm: 42},
		"halt":            {Op: HALT},
	}
	for want, in := range cases {
		if got := in.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}
