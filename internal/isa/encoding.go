package isa

import "fmt"

// Instruction word layout (64 bits):
//
//	[63:56] opcode
//	[55:50] rd
//	[49:44] rs1
//	[43:38] rs2
//	[37:32] reserved (must be zero)
//	[31:0]  imm (two's complement)
const (
	opShift  = 56
	rdShift  = 50
	rs1Shift = 44
	rs2Shift = 38
	regMask  = 0x3f
)

// Encode packs the instruction into its 64-bit word.
func Encode(in Inst) uint64 {
	return uint64(in.Op)<<opShift |
		uint64(in.Rd&regMask)<<rdShift |
		uint64(in.Rs1&regMask)<<rs1Shift |
		uint64(in.Rs2&regMask)<<rs2Shift |
		uint64(uint32(in.Imm))
}

// Decode unpacks a 64-bit instruction word. It returns an error for an
// undefined opcode, an out-of-range register, or nonzero reserved bits.
func Decode(w uint64) (Inst, error) {
	in := Inst{
		Op:  Op(w >> opShift),
		Rd:  Reg(w >> rdShift & regMask),
		Rs1: Reg(w >> rs1Shift & regMask),
		Rs2: Reg(w >> rs2Shift & regMask),
		Imm: int32(uint32(w)),
	}
	if !in.Op.Valid() {
		return Inst{}, fmt.Errorf("isa: undefined opcode %d", uint8(in.Op))
	}
	if w>>32&regMask != 0 {
		return Inst{}, fmt.Errorf("isa: nonzero reserved bits in %#x", w)
	}
	for _, r := range []Reg{in.Rd, in.Rs1, in.Rs2} {
		if !r.Valid() {
			return Inst{}, fmt.Errorf("isa: register %d out of range in %#x", r, w)
		}
	}
	return in, nil
}

// MustDecode is Decode for known-good words; it panics on error.
func MustDecode(w uint64) Inst {
	in, err := Decode(w)
	if err != nil {
		panic(err)
	}
	return in
}
