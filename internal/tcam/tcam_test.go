package tcam

import (
	"testing"
	"testing/quick"

	"faulthound/internal/filter"
)

// cfg returns a small config with the given features toggled.
func cfg(entries int, second, squash bool) Config {
	c := DefaultConfig()
	c.Entries = entries
	c.SecondLevel = second
	c.SquashMachines = squash
	return c
}

func TestColdLookupInstallsWithoutTrigger(t *testing.T) {
	tc := New(cfg(4, false, false))
	res := tc.Lookup(100)
	if res.Trigger {
		t.Fatal("first lookup must not trigger")
	}
	f, used := tc.Entry(0)
	if !used || f.Prev() != 100 {
		t.Fatal("first lookup should install the value")
	}
}

func TestMatchingValueNoTrigger(t *testing.T) {
	tc := New(cfg(4, false, false))
	tc.Lookup(100)
	if res := tc.Lookup(100); res.Trigger {
		t.Fatal("identical value should match")
	}
}

func TestNearbyValueLoosens(t *testing.T) {
	tc := New(cfg(4, false, false))
	tc.Lookup(0b1000)
	// One bit different: within the loosen threshold (4).
	res := tc.Lookup(0b1001)
	if !res.Trigger {
		t.Fatal("new neighborhood bit should trigger")
	}
	if res.Replaced {
		t.Fatal("1-bit mismatch should loosen, not replace")
	}
	if tc.Stats().Loosened != 1 {
		t.Fatalf("stats: %+v", tc.Stats())
	}
	// The differing bit is now a wildcard: both values match.
	if res := tc.Lookup(0b1000); res.Trigger {
		t.Fatal("loosened filter should accept the old value")
	}
}

func TestFarValueReplaces(t *testing.T) {
	tc := New(cfg(4, false, false))
	tc.Lookup(0)
	res := tc.Lookup(0xffffffffffffffff) // 64 mismatches > threshold 4
	if !res.Trigger || !res.Replaced {
		t.Fatalf("far value should replace: %+v", res)
	}
	// Installed into a free entry; the original filter survives.
	if res := tc.Lookup(0); res.Trigger {
		t.Fatal("original neighborhood should survive a replacement into a free entry")
	}
}

func TestLRUReplacementWhenFull(t *testing.T) {
	c := cfg(2, false, false)
	tc := New(c)
	// Fill both entries with far-apart neighborhoods.
	tc.Lookup(0x0000000000000000)
	tc.Lookup(0x00000000ffffffff)
	// Touch entry 0 to make entry 1 the LRU.
	tc.Lookup(0x0000000000000000)
	// A third far value must evict entry 1.
	tc.Lookup(0xffffffff00000000)
	if res := tc.Lookup(0x0000000000000000); res.Trigger {
		t.Fatal("MRU neighborhood evicted instead of LRU")
	}
	if res := tc.Lookup(0x00000000ffffffff); !res.Trigger {
		t.Fatal("LRU neighborhood should have been evicted")
	}
}

func TestClusteringReinforcesSharedFilter(t *testing.T) {
	// Values from a strided stream cluster into very few filters (the
	// inverted organization of Section 3.1), and the stride's
	// periodically-toggling carry bits — the paper's delinquent bit
	// positions — are mostly suppressed by the second-level filter.
	tc := New(cfg(16, true, false))
	base := uint64(0x10000000)
	rawLate, allowedLate := 0, 0
	for i := uint64(0); i < 400; i++ {
		res := tc.Lookup(base + i*8)
		if i >= 200 && res.Trigger {
			rawLate++
			if !res.Suppressed {
				allowedLate++
			}
		}
	}
	used := 0
	for i := 0; i < 16; i++ {
		if _, u := tc.Entry(i); u {
			used++
		}
	}
	if used > 8 {
		t.Fatalf("stride stream spread over %d filters; clustering should use few", used)
	}
	if rawLate > 0 && allowedLate*2 > rawLate {
		t.Fatalf("second-level filter too weak: %d/%d late triggers allowed", allowedLate, rawLate)
	}
}

func TestSecondLevelSuppressesDelinquentBit(t *testing.T) {
	c := cfg(4, true, false)
	tc := New(c)
	tc.Lookup(0)
	// Bit 0 toggles with long stable runs: each toggle re-triggers after
	// the biased machine re-learns "unchanging". The second-level filter
	// should suppress the repeats.
	suppressed, allowed := 0, 0
	v := uint64(0)
	for round := 0; round < 20; round++ {
		v ^= 1
		res := tc.Lookup(v)
		if res.Trigger {
			if res.Suppressed {
				suppressed++
			} else {
				allowed++
			}
		}
		// Stable run so the bit re-enters "unchanging".
		for k := 0; k < 3; k++ {
			tc.Lookup(v)
		}
	}
	if allowed == 0 {
		t.Fatal("the very first trigger should be allowed")
	}
	if suppressed == 0 {
		t.Fatal("repeated delinquent-bit triggers should be suppressed")
	}
	if suppressed < allowed {
		t.Fatalf("suppression too weak: %d suppressed vs %d allowed", suppressed, allowed)
	}
}

func TestSecondLevelAllowsQuietBit(t *testing.T) {
	c := cfg(8, true, false)
	tc := New(c)
	// Establish a stable neighborhood.
	for i := 0; i < 10; i++ {
		tc.Lookup(0x40)
	}
	// A never-before-mismatched bit (bit 3) flips: must be allowed.
	res := tc.Lookup(0x48)
	if !res.Trigger || res.Suppressed {
		t.Fatalf("fresh bit flip should be an allowed trigger: %+v", res)
	}
}

func TestSquashMachineDetectsIdentityChange(t *testing.T) {
	c := cfg(4, false, true)
	tc := New(c)
	// Two neighborhoods; traffic alternates within neighborhood A.
	for i := 0; i < 20; i++ {
		tc.Lookup(0x1000)
	}
	tc.Lookup(0xffffffff00000000) // install far neighborhood B
	for i := 0; i < 20; i++ {
		tc.Lookup(0xffffffff00000000)
	}
	// A replacement-level trigger (far from every filter, an identity
	// change) after a quiet run signals a likely rename fault.
	res := tc.Lookup(0x00ff00ff00ff00ff)
	if !res.Trigger || !res.Replaced {
		t.Fatalf("expected replacement-level trigger: %+v", res)
	}
	if !res.SquashAllowed {
		t.Fatal("identity change after quiet run should allow squash")
	}
	// A small (loosen-level) mismatch is natural drift: never a squash.
	tc2 := New(cfg(4, false, true))
	for i := 0; i < 20; i++ {
		tc2.Lookup(0x1000)
	}
	res = tc2.Lookup(0x1008)
	if !res.Trigger {
		t.Fatal("expected trigger")
	}
	if res.SquashAllowed {
		t.Fatal("loosen-level trigger must not squash")
	}
}

func TestLearnOnlySuppressesTriggers(t *testing.T) {
	tc := New(cfg(4, true, true))
	tc.Lookup(0)
	tc.SetLearnOnly(true)
	res := tc.Lookup(0xffffffffffffffff)
	if res.Trigger || res.Suppressed || res.SquashAllowed {
		t.Fatalf("learn-only lookup must not act: %+v", res)
	}
	if tc.Stats().Triggers != 0 {
		t.Fatal("learn-only lookups must not count triggers")
	}
	tc.SetLearnOnly(false)
	// But the value was learned: it matches now.
	if res := tc.Lookup(0xffffffffffffffff); res.Trigger {
		t.Fatal("learn-only lookup should still have installed the value")
	}
}

func TestPeriodicClear(t *testing.T) {
	c := cfg(4, false, false)
	c.PeriodicClear = 10
	tc := New(c)
	tc.Lookup(0)
	tc.Lookup(1) // loosens bit 0 to changing
	for i := 0; i < 12; i++ {
		tc.Lookup(1)
	}
	if tc.Stats().FlashClears == 0 {
		t.Fatal("expected at least one flash clear")
	}
}

func TestStatsAccounting(t *testing.T) {
	tc := New(cfg(2, true, true))
	tc.Lookup(0)
	tc.Lookup(0xffffffffffffffff)
	s := tc.Stats()
	if s.Lookups != 2 {
		t.Fatalf("lookups = %d", s.Lookups)
	}
	if s.Triggers != 1 {
		t.Fatalf("triggers = %d", s.Triggers)
	}
	if s.Replaced != 1 {
		t.Fatalf("replaced = %d", s.Replaced)
	}
}

func TestCloneIndependence(t *testing.T) {
	tc := New(DefaultConfig())
	tc.Lookup(100)
	c := tc.Clone()
	c.Lookup(0xffffffffffffffff)
	if tc.Stats().Lookups != 1 {
		t.Fatal("clone lookup leaked into original stats")
	}
	if res := tc.Lookup(100); res.Trigger {
		t.Fatal("original filters disturbed by clone")
	}
}

func TestPanicsOnZeroEntries(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{Entries: 0})
}

// Property: a lookup of a value twice in a row never triggers the
// second time (Observe guarantees the winning filter matches v).
func TestRepeatLookupNeverTriggersProperty(t *testing.T) {
	f := func(values []uint64) bool {
		tc := New(cfg(8, false, false))
		for _, v := range values {
			tc.Lookup(v)
			if res := tc.Lookup(v); res.Trigger {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: stats conservation — every trigger is exactly one of
// suppressed, replay, or squash (outside learn-only mode).
func TestTriggerAccountingProperty(t *testing.T) {
	f := func(values []uint64) bool {
		tc := New(New(DefaultConfig()).cfg)
		for _, v := range values {
			tc.Lookup(v)
		}
		s := tc.Stats()
		return s.Triggers == s.Suppressed+s.Replays+s.Squashes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: the number of used entries never exceeds the configured
// entry count and lookups never panic, for any value stream.
func TestBoundedEntriesProperty(t *testing.T) {
	f := func(values []uint64, e8 uint8) bool {
		entries := int(e8%8) + 1
		tc := New(cfg(entries, true, true))
		for _, v := range values {
			tc.Lookup(v)
		}
		used := 0
		for i := 0; i < entries; i++ {
			if _, u := tc.Entry(i); u {
				used++
			}
		}
		return used <= entries
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSeparateAddressValuePolicies(t *testing.T) {
	// The package supports distinct configurations per TCAM as the
	// paper requires separate address and value TCAMs.
	a := New(Config{Entries: 16, Policy: filter.Biased2, LoosenThreshold: 4})
	v := New(Config{Entries: 32, Policy: filter.Sticky, LoosenThreshold: 2})
	if a.Config().Entries == v.Config().Entries {
		t.Fatal("configs should be independent")
	}
}

// Property: Probe never mutates state and agrees with the trigger
// decision an immediately following Lookup makes.
func TestProbeConsistencyProperty(t *testing.T) {
	f := func(warm []uint64, v uint64) bool {
		tc := New(DefaultConfig())
		for _, w := range warm {
			tc.Lookup(w)
		}
		before := tc.Clone()
		pt, _ := tc.Probe(v)
		// Probe must not change any observable behavior.
		if bt, _ := before.Probe(v); bt != pt {
			return false
		}
		res := tc.Lookup(v)
		resB := before.Lookup(v)
		return res.Trigger == resB.Trigger && pt == res.Trigger
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestProbeColdAndLearnOnly(t *testing.T) {
	tc := New(DefaultConfig())
	if trig, _ := tc.Probe(123); trig {
		t.Fatal("cold probe must not trigger")
	}
	tc.Lookup(0)
	tc.SetLearnOnly(true)
	if trig, _ := tc.Probe(0xffffffffffffffff); trig {
		t.Fatal("learn-only probe must not trigger")
	}
}

func TestSecondLevelUnionMode(t *testing.T) {
	c := DefaultConfig()
	c.SecondLevelUnion = true
	tc := New(c)
	// Union training considers every filter's mismatch bits, so it arms
	// suppressors faster; the lookup path must still be well-formed.
	for i := uint64(0); i < 200; i++ {
		tc.Lookup(0x1000 + (i%7)*0x40)
	}
	s := tc.Stats()
	if s.Triggers != s.Suppressed+s.Replays+s.Squashes {
		t.Fatalf("accounting broken in union mode: %+v", s)
	}
}
