package tcam_test

import (
	"fmt"

	"faulthound/internal/tcam"
)

// Example demonstrates the clustered, value-indexed filter organization
// of Section 3.1: a strided address stream settles into a filter whose
// low bits are wildcards, and a genuinely foreign value triggers.
func Example() {
	tc := tcam.New(tcam.DefaultConfig())

	// A stable neighborhood: stack-slot-like addresses.
	for i := 0; i < 10; i++ {
		tc.Lookup(0x7fff1000)
	}
	res := tc.Lookup(0x7fff1000)
	fmt.Println("stable value triggers:", res.Trigger)

	// A single-bit deviation from a learned neighborhood — the
	// signature of a soft fault.
	res = tc.Lookup(0x7fff1000 ^ 1<<40)
	fmt.Println("bit-40 flip triggers:", res.Trigger)

	// Output:
	// stable value triggers: false
	// bit-40 flip triggers: true
}
