package tcam

import (
	"testing"

	"faulthound/internal/filter"
)

func BenchmarkLookupMatch(b *testing.B) {
	tc := New(DefaultConfig())
	tc.Lookup(0x10000000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tc.Lookup(0x10000000)
	}
}

func BenchmarkLookupStride(b *testing.B) {
	tc := New(DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tc.Lookup(0x10000000 + uint64(i%4096)*8)
	}
}

func BenchmarkProbe(b *testing.B) {
	tc := New(DefaultConfig())
	for i := uint64(0); i < 64; i++ {
		tc.Lookup(0x10000000 + i*8)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tc.Probe(0x10000000 + uint64(i%4096)*8)
	}
}

func BenchmarkFilterObserve(b *testing.B) {
	f := filter.New(filter.Biased2, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Observe(uint64(i))
	}
}
