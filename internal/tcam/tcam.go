// Package tcam implements FaultHound's inverted filter organization
// (ISCA'15 Section 3.1): a small counting ternary CAM of bit-mask
// filters searched by value, so that similar values cluster into the
// same filter and reinforce its learning. The TCAM carries the
// second-level filter that masks delinquent bit positions (Section 3.2)
// and the per-entry squash state machines that distinguish rename
// faults from false positives (Section 3.4).
package tcam

import (
	"math/bits"

	"faulthound/internal/filter"
	"faulthound/internal/sm"
)

// Config sizes one TCAM (the paper uses two: one for load/store
// addresses, one for store values).
type Config struct {
	// Entries is the filter count; the paper finds 16-32 sufficient
	// even for commercial workloads (Table 2 uses 32).
	Entries int
	// Policy selects the per-bit state machine (Biased2 in FaultHound).
	Policy filter.Policy
	// LoosenThreshold is the maximum mismatch bit count for which the
	// closest filter is loosened instead of a filter being replaced
	// (the paper uses 4).
	LoosenThreshold int
	// SecondLevel enables the delinquent-bit second-level filter.
	SecondLevel bool
	// SecondLevelStates is the per-bit suppressor state count (8 in the
	// paper: 7 consecutive no-alarms required).
	SecondLevelStates int
	// SecondLevelUnion, when true, trains the second-level filter on
	// the union of all filters' mismatch bits instead of only the
	// closest filter's (an interpretation knob; default false).
	SecondLevelUnion bool
	// SquashMachines enables the per-entry squash state machines.
	SquashMachines bool
	// SquashStates is the squash machine state count (8 in the paper).
	SquashStates int
	// SquashMinMismatch is the minimum mismatch bit count for a trigger
	// to be eligible for squash escalation: a rename fault substitutes
	// a value from a different neighborhood, so its mismatch is wide,
	// while natural drift loosens one or two bits. 0 means
	// LoosenThreshold+1 (replacement-level only).
	SquashMinMismatch int
	// PeriodicClear, if nonzero, flash-clears all filters every that
	// many lookups (PBFS-style; unused by FaultHound).
	PeriodicClear uint64
}

// DefaultConfig returns the paper's Table-2 TCAM configuration.
func DefaultConfig() Config {
	return Config{
		Entries:           32,
		Policy:            filter.Biased2,
		LoosenThreshold:   4,
		SecondLevel:       true,
		SecondLevelStates: 8,
		SquashMachines:    true,
		SquashStates:      8,
		SquashMinMismatch: 3,
	}
}

// Result reports the outcome of one TCAM lookup.
type Result struct {
	// Trigger is true when the value fell outside every filter's
	// neighborhood (a potential fault or a new value neighborhood).
	Trigger bool
	// Suppressed is true when a trigger was masked by the second-level
	// filter (a likely delinquent-bit false positive). A suppressed
	// trigger causes no replay.
	Suppressed bool
	// SquashAllowed is true when the squash state machine of the
	// closest-matching filter identifies a likely rename fault, which
	// requires a full rollback rather than a replay.
	SquashAllowed bool
	// BestIndex is the index of the fully-matching or closest filter.
	BestIndex int
	// MismatchMask holds the mismatching bit positions of the closest
	// filter on a trigger (zero on a match).
	MismatchMask uint64
	// Replaced is true when the lookup installed a new filter in place
	// of an existing one (mismatch count above the loosen threshold).
	Replaced bool
}

// Stats counts TCAM activity for the harness and the energy model.
type Stats struct {
	Lookups      uint64
	Triggers     uint64 // raw first-level triggers
	Suppressed   uint64 // masked by the second-level filter
	Replays      uint64 // triggers that proceed as replays
	Squashes     uint64 // triggers escalated to rollback
	Loosened     uint64
	Replaced     uint64
	FlashClears  uint64
	LearnLookups uint64 // lookups during replay (learn-only)
}

// TCAM is one counting ternary CAM of bit-mask filters. All mutable
// state lives in flat value slices plus a used bitmask, so the TCAM is
// cloned with a few bulk copies and the search loops skip cold entries
// without a branch per slot — Lookup and Probe run on every load,
// store, and store-value check, and detector clones run once per
// injection.
type TCAM struct {
	cfg     Config
	filters []filter.Filter
	used    uint64 // bit i set = entry i holds a live filter
	age     []uint64
	stamp   uint64
	second  []sm.Suppressor // one per bit position
	squash  []sm.Suppressor // one per entry
	stats   Stats
	// learnOnly suppresses trigger actions while filters keep learning
	// (FaultHound ignores triggers during replay, Section 3.3).
	learnOnly bool
}

// New creates a TCAM from cfg. Entries is capped at 64 by the used
// bitmask; the paper's design space tops out at 32 (Table 2).
func New(cfg Config) *TCAM {
	if cfg.Entries <= 0 {
		panic("tcam: need at least one entry")
	}
	if cfg.Entries > 64 {
		panic("tcam: at most 64 entries (used bitmask)")
	}
	t := &TCAM{
		cfg:     cfg,
		filters: make([]filter.Filter, cfg.Entries),
		age:     make([]uint64, cfg.Entries),
	}
	for i := range t.filters {
		t.filters[i] = filter.Make(cfg.Policy, 0)
	}
	if cfg.SecondLevel {
		t.second = sm.NewSuppressors(64, cfg.SecondLevelStates)
	}
	if cfg.SquashMachines {
		t.squash = sm.NewSuppressors(cfg.Entries, cfg.SquashStates)
	}
	return t
}

// Config returns the TCAM configuration.
func (t *TCAM) Config() Config { return t.cfg }

// Stats returns a snapshot of the activity counters.
func (t *TCAM) Stats() Stats { return t.stats }

// SetLearnOnly controls replay-time behavior: when true, lookups update
// the filters but never report triggers (and do not train the
// second-level or squash machines).
func (t *TCAM) SetLearnOnly(v bool) { t.learnOnly = v }

// Lookup searches the TCAM for v, updates the winning filter as part of
// the lookup, and reports the outcome. This is the complete per-value
// operation of Section 3.1, including the second-level filter and
// squash machine decisions.
func (t *TCAM) Lookup(v uint64) Result {
	t.stats.Lookups++
	if t.cfg.PeriodicClear != 0 && t.stats.Lookups%t.cfg.PeriodicClear == 0 {
		t.FlashClear()
	}
	t.stamp++

	// Cold start: install the value in a free entry, no trigger.
	if t.used == 0 {
		t.install(v)
		return Result{BestIndex: 0}
	}

	// Counting-TCAM search over the live entries only (the used mask
	// walks set bits, so cold slots cost nothing) for the
	// closest-matching filter and, if requested, the union of
	// mismatching bits. An exact match ends the search early: no later
	// entry can beat count zero, ties keep the first minimal entry
	// either way, and the union mask is only ever consumed on the
	// trigger path, which an exact match never takes.
	best, bestCount := -1, 65
	bestMask := uint64(0)
	var unionMask uint64
	for m := t.used; m != 0; m &= m - 1 {
		i := bits.TrailingZeros64(m)
		mask := t.filters[i].Match(v)
		if t.cfg.SecondLevelUnion {
			unionMask |= mask
		}
		n := bits.OnesCount64(mask)
		if n < bestCount {
			best, bestCount, bestMask = i, n, mask
			if n == 0 {
				break
			}
		}
	}

	if bestCount == 0 {
		// Inside a neighborhood: reinforce the winning filter.
		t.filters[best].Observe(v)
		t.age[best] = t.stamp
		return Result{BestIndex: best}
	}

	// Trigger: the value is outside every neighborhood.
	res := Result{Trigger: true, BestIndex: best, MismatchMask: bestMask}

	// Update or replace, as part of the lookup (Figure 3).
	if bestCount <= t.cfg.LoosenThreshold {
		t.filters[best].Observe(v)
		t.age[best] = t.stamp
		t.stats.Loosened++
	} else if free := t.freeEntry(); free >= 0 {
		t.filters[free].Reset(v)
		t.used |= 1 << uint(free)
		t.age[free] = t.stamp
		res.Replaced = true
		res.BestIndex = free
		t.stats.Replaced++
	} else {
		victim := t.lruEntry()
		t.filters[victim].Reset(v)
		t.age[victim] = t.stamp
		res.Replaced = true
		res.BestIndex = victim
		t.stats.Replaced++
	}

	if t.learnOnly {
		// Triggers are ignored during replay to avoid repeated replay
		// triggers; the state machines are not trained either.
		t.stats.LearnLookups++
		res.Trigger = false
		res.MismatchMask = 0
		res.Replaced = false
		return res
	}

	t.stats.Triggers++

	// Second-level filter: the trigger is allowed when the majority of
	// its mismatching bit positions have been quiet. Natural value
	// drift re-offends in the same (delinquent) bit positions and is
	// suppressed; a fault — injected or propagated — mismatches mostly
	// quiet positions and passes (Section 3.2). Every bit's suppressor
	// is trained regardless.
	if t.second != nil {
		trainMask := bestMask
		if t.cfg.SecondLevelUnion {
			trainMask = unionMask
		}
		quiet, total := 0, 0
		for b := range t.second {
			participated := trainMask>>uint(b)&1 == 1
			allowed := t.second[b].Observe(participated)
			if participated {
				total++
				if allowed {
					quiet++
				}
			}
		}
		if quiet*2 <= total {
			res.Suppressed = true
			t.stats.Suppressed++
			return res
		}
	}

	// Squash machines: observed on every replay trigger; the closest
	// filter participating after a quiet run marks a likely rename
	// fault. A rename fault substitutes an unintended value from a
	// different neighborhood, so only replacement-level triggers (far
	// from every filter — a real identity change) can escalate; the
	// small mismatches of natural drift never do.
	if t.squash != nil {
		minMM := t.cfg.SquashMinMismatch
		if minMM <= 0 {
			minMM = t.cfg.LoosenThreshold + 1
		}
		wide := bits.OnesCount64(bestMask) >= minMM
		for i := range t.squash {
			allowed := t.squash[i].Observe(i == res.BestIndex)
			if i == res.BestIndex && allowed && wide {
				res.SquashAllowed = true
			}
		}
	}
	if res.SquashAllowed {
		t.stats.Squashes++
	} else {
		t.stats.Replays++
	}
	return res
}

func (t *TCAM) install(v uint64) {
	t.filters[0].Reset(v)
	t.used |= 1
	t.age[0] = t.stamp
}

func (t *TCAM) freeEntry() int {
	i := bits.TrailingZeros64(^t.used)
	if i >= len(t.filters) {
		return -1
	}
	return i
}

func (t *TCAM) lruEntry() int {
	victim, va := 0, t.age[0]
	for i := 1; i < len(t.age); i++ {
		if t.age[i] < va {
			victim, va = i, t.age[i]
		}
	}
	return victim
}

// Probe searches the TCAM for v without mutating any state: no filter
// updates, no replacement, no state-machine training. It reports
// whether v would trigger and whether the second-level filter would
// suppress that trigger. The commit-time LSQ check uses this (the
// filters already learned the value at completion; re-training them at
// commit would double-count every stable observation and skew the
// delinquent-bit suppressors).
func (t *TCAM) Probe(v uint64) (trigger, suppressed bool) {
	if t.used == 0 || t.learnOnly {
		return false, false
	}
	bestCount := 65
	bestMask := uint64(0)
	for m := t.used; m != 0; m &= m - 1 {
		i := bits.TrailingZeros64(m)
		mask := t.filters[i].Match(v)
		n := bits.OnesCount64(mask)
		if n < bestCount {
			bestCount, bestMask = n, mask
			if n == 0 {
				// Exact match: no trigger, nothing else to consult.
				return false, false
			}
		}
	}
	if t.second != nil {
		quiet, total := 0, 0
		for m := bestMask; m != 0; m &= m - 1 {
			total++
			if t.second[bits.TrailingZeros64(m)].Quiet() {
				quiet++
			}
		}
		if quiet*2 <= total {
			return true, true
		}
	}
	return true, false
}

// FlashClear returns every filter's bits to "unchanging" (keeping
// previous values), PBFS-style.
func (t *TCAM) FlashClear() {
	for m := t.used; m != 0; m &= m - 1 {
		t.filters[bits.TrailingZeros64(m)].FlashClear()
	}
	t.stats.FlashClears++
}

// Entry exposes filter i for diagnostics and tests. The pointer is into
// the TCAM's filter bank and is invalidated by Clone/CloneInto.
func (t *TCAM) Entry(i int) (f *filter.Filter, used bool) {
	return &t.filters[i], t.used>>uint(i)&1 == 1
}

// Clone returns an independent deep copy. With all state in value
// slices this is four bulk copies and no per-entry allocation.
func (t *TCAM) Clone() *TCAM {
	return &TCAM{
		cfg:       t.cfg,
		filters:   append([]filter.Filter(nil), t.filters...),
		used:      t.used,
		age:       append([]uint64(nil), t.age...),
		stamp:     t.stamp,
		second:    append([]sm.Suppressor(nil), t.second...),
		squash:    append([]sm.Suppressor(nil), t.squash...),
		stats:     t.stats,
		learnOnly: t.learnOnly,
	}
}

// CloneInto overwrites dst with a deep copy of t, reusing dst's slice
// capacity when the geometry matches — the per-injection snapshot path.
// Nil slices stay nil: appending to a reused dst's empty slice would
// turn a disabled second-level/squash bank (nil in the source) into a
// non-nil empty one, and the `!= nil` feature checks would then index
// out of range when an arena is reused across differently-configured
// cells.
func (t *TCAM) CloneInto(dst *TCAM) {
	filters, age, second, squash := dst.filters, dst.age, dst.second, dst.squash
	*dst = *t
	dst.filters = append(filters[:0], t.filters...)
	dst.age = append(age[:0], t.age...)
	dst.second, dst.squash = nil, nil
	if t.second != nil {
		dst.second = append(second[:0], t.second...)
	}
	if t.squash != nil {
		dst.squash = append(squash[:0], t.squash...)
	}
}
