package cluster

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Policy picks the worker a range is leased to. Pick receives the
// registry snapshot (sorted by worker ID) and the cell the range
// belongs to ("bench/scheme"), and returns the index of the chosen
// candidate, or -1 when no worker can take the lease right now (all
// dead or at capacity) — the scheduler retries after the next
// registry event.
//
// Implementations must only choose candidates that are Alive with
// Free() > 0; eligible() is the shared filter.
type Policy interface {
	Name() string
	Pick(cands []Candidate, cell string) int
}

// eligible lists the indices of candidates that can take a lease.
func eligible(cands []Candidate) []int {
	var out []int
	for i, c := range cands {
		if c.Alive && c.Free() > 0 {
			out = append(out, i)
		}
	}
	return out
}

// RoundRobin rotates leases across eligible workers in ID order,
// independent of load — the classic fair baseline.
type RoundRobin struct {
	mu   sync.Mutex
	next int
}

// Name implements Policy.
func (*RoundRobin) Name() string { return "round-robin" }

// Pick implements Policy.
func (p *RoundRobin) Pick(cands []Candidate, _ string) int {
	el := eligible(cands)
	if len(el) == 0 {
		return -1
	}
	p.mu.Lock()
	i := el[p.next%len(el)]
	p.next++
	p.mu.Unlock()
	return i
}

// LeastLoaded picks the eligible worker with the smallest Load()
// (coordinator-side leases + worker-reported inflight + queued jobs),
// breaking ties by worker ID for determinism.
type LeastLoaded struct{}

// Name implements Policy.
func (LeastLoaded) Name() string { return "least-loaded" }

// Pick implements Policy.
func (LeastLoaded) Pick(cands []Candidate, _ string) int {
	best := -1
	for _, i := range eligible(cands) {
		if best == -1 || cands[i].Load() < cands[best].Load() {
			best = i
		}
	}
	return best
}

// CacheAware prefers a worker whose fault.PreparedCache already holds
// the cell's golden preparation (heartbeats report warm cells): a warm
// worker skips the detector fast-forward and timing warmup entirely.
// Among warm workers — or among all eligible workers when none is
// warm — it falls back to least-loaded.
type CacheAware struct{}

// Name implements Policy.
func (CacheAware) Name() string { return "cache-aware" }

// Pick implements Policy.
func (CacheAware) Pick(cands []Candidate, cell string) int {
	el := eligible(cands)
	if len(el) == 0 {
		return -1
	}
	pick := func(idx []int) int {
		best := -1
		for _, i := range idx {
			if best == -1 || cands[i].Load() < cands[best].Load() {
				best = i
			}
		}
		return best
	}
	var warm []int
	for _, i := range el {
		if cands[i].Warm(cell) {
			warm = append(warm, i)
		}
	}
	if len(warm) > 0 {
		return pick(warm)
	}
	return pick(el)
}

// PolicyNames lists the built-in routing policies.
func PolicyNames() []string {
	names := []string{"round-robin", "least-loaded", "cache-aware"}
	sort.Strings(names)
	return names
}

// PolicyByName resolves a routing policy from its flag value.
func PolicyByName(name string) (Policy, error) {
	switch name {
	case "round-robin", "":
		return &RoundRobin{}, nil
	case "least-loaded":
		return LeastLoaded{}, nil
	case "cache-aware":
		return CacheAware{}, nil
	}
	return nil, fmt.Errorf("cluster: unknown routing policy %q (known: %s)",
		name, strings.Join(PolicyNames(), ", "))
}
