package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"faulthound/internal/campaign"
	"faulthound/internal/fault"
	"faulthound/internal/harness"
	"faulthound/internal/obs/metrics"
)

// newTestWorker builds a worker over the quick harness factory with
// its own prepared cache.
func newTestWorker(t *testing.T, o harness.Options, slots int) *Worker {
	t.Helper()
	return &Worker{Factory: o.CampaignFactory(), Cache: fault.NewPreparedCache(), Slots: slots}
}

// register adds a worker's httptest server to a registry under id.
func register(reg *Registry, w *Worker, id, url string) {
	reg.Register(w.Status(id, url))
}

// readBundleFiles loads the byte-compared artifacts of a bundle.
func readBundleFiles(t *testing.T, dir string) (results, summary []byte) {
	t.Helper()
	results, err := os.ReadFile(filepath.Join(dir, campaign.ResultsName))
	if err != nil {
		t.Fatal(err)
	}
	summary, err = os.ReadFile(filepath.Join(dir, campaign.SummaryName))
	if err != nil {
		t.Fatal(err)
	}
	return results, summary
}

// TestShardedReference1kByteIdentical is the acceptance scenario for
// the distributed fabric: the committed reference-1k campaign runs
// sharded across two in-process workers, one worker is killed
// mid-campaign (its ranges must be re-leased to the survivor), and the
// merged bundle's results.csv and summary.json must be byte-identical
// to the committed single-node bundle.
func TestShardedReference1kByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full reference campaign; skipped with -short")
	}
	refDir := filepath.Join("..", "..", "results", "campaigns", "reference-1k")
	man, err := campaign.ReadManifest(refDir)
	if err != nil {
		t.Fatalf("reading committed reference bundle: %v", err)
	}
	opts := harness.DefaultOptions()

	w1 := newTestWorker(t, opts, 2)
	w2 := newTestWorker(t, opts, 2)
	ts1 := httptest.NewServer(w1.Handler())
	ts2 := httptest.NewServer(w2.Handler())
	defer ts2.Close()

	reg := NewRegistry(nil)
	reg.ExpireAfter = time.Hour // no heartbeats in this test; death is detected via the stream
	register(reg, w1, "w1", ts1.URL)
	register(reg, w2, "w2", ts2.URL)

	coord := &Coordinator{Registry: reg, Policy: &RoundRobin{}, RangeSize: 32}
	coord.RegisterMetrics(metrics.NewRegistry())

	// Kill w1 (connection reset, no goodbye) once a tenth of the
	// campaign has merged. ts1.Close waits for its in-flight handlers,
	// which notice the dead connections and bail out mid-injection.
	var kill sync.Once
	killed := make(chan struct{})
	eng := &campaign.Engine{
		Spec:    man.Spec,
		Factory: opts.CampaignFactory(),
		Progress: func(done, total int) {
			if done >= total/10 {
				kill.Do(func() {
					ts1.CloseClientConnections()
					ts1.Close()
					close(killed)
				})
			}
		},
		Warnf: func(format string, args ...any) { t.Logf(format, args...) },
	}

	dir := t.TempDir()
	out, err := coord.RunCampaign(context.Background(), eng, dir, false)
	if err != nil {
		t.Fatalf("sharded campaign failed: %v", err)
	}
	select {
	case <-killed:
	default:
		t.Fatal("worker w1 was never killed; the test did not exercise re-leasing")
	}
	if got := coord.mExpired.Get(); got < 1 {
		t.Fatalf("fh_cluster_leases_expired_total = %v, want >= 1 (w1's leases must expire)", got)
	}
	if out.Summary == nil {
		t.Fatal("outcome has no summary")
	}

	gotResults, gotSummary := readBundleFiles(t, dir)
	wantResults, wantSummary := readBundleFiles(t, refDir)
	if !bytes.Equal(gotResults, wantResults) {
		t.Errorf("sharded results.csv differs from the committed reference bundle")
	}
	if !bytes.Equal(gotSummary, wantSummary) {
		t.Errorf("sharded summary.json differs from the committed reference bundle")
	}
}

// TestCoordinatorCrashResume interrupts a sharded campaign partway
// (coordinator-side cancellation, as a crash would) and finishes it
// with a second coordinator in resume mode; the merged bundle must be
// byte-identical to an unsharded single-node run of the same spec.
func TestCoordinatorCrashResume(t *testing.T) {
	opts := harness.QuickOptions()
	spec := campaign.Spec{
		RunID:      "shard-resume",
		Benchmarks: []string{"bzip2"},
		Schemes:    []string{"faulthound"},
		Workers:    2,
		Fault:      opts.Fault,
	}
	spec.Fault.Injections = 40

	w := newTestWorker(t, opts, 2)
	ts := httptest.NewServer(w.Handler())
	defer ts.Close()
	reg := NewRegistry(nil)
	reg.ExpireAfter = time.Hour
	register(reg, w, "w", ts.URL)

	coord := &Coordinator{Registry: reg, RangeSize: 8}
	coord.RegisterMetrics(metrics.NewRegistry())

	// First attempt: cancel once a quarter of the injections merged.
	ctx, cancel := context.WithCancel(context.Background())
	eng := &campaign.Engine{
		Spec:    spec,
		Factory: opts.CampaignFactory(),
		Progress: func(done, total int) {
			if done >= total/4 {
				cancel()
			}
		},
	}
	dir := t.TempDir()
	if _, err := coord.RunCampaign(ctx, eng, dir, false); err == nil {
		t.Fatal("cancelled sharded campaign reported success")
	}
	cancel()

	// Second coordinator (fresh state, same registry) resumes from the
	// journal and completes.
	coord2 := &Coordinator{Registry: reg, RangeSize: 8}
	coord2.RegisterMetrics(metrics.NewRegistry())
	eng2 := &campaign.Engine{Spec: spec, Factory: opts.CampaignFactory()}
	out, err := coord2.RunCampaign(context.Background(), eng2, dir, true)
	if err != nil {
		t.Fatalf("resumed sharded campaign failed: %v", err)
	}
	if out.Resumed == 0 {
		t.Fatal("resume replayed nothing; the first attempt's journal was lost")
	}

	// Reference: plain single-node engine run.
	refEng := &campaign.Engine{Spec: spec, Factory: opts.CampaignFactory()}
	refDir := t.TempDir()
	if _, err := refEng.Run(context.Background(), refDir, false); err != nil {
		t.Fatalf("single-node reference run failed: %v", err)
	}
	gotResults, gotSummary := readBundleFiles(t, dir)
	wantResults, wantSummary := readBundleFiles(t, refDir)
	if !bytes.Equal(gotResults, wantResults) {
		t.Error("resumed sharded results.csv differs from the single-node run")
	}
	if !bytes.Equal(gotSummary, wantSummary) {
		t.Error("resumed sharded summary.json differs from the single-node run")
	}
}

// TestWorkerShardStream drives one worker's /v1/cluster/run endpoint
// directly and checks the stream shape: a prep record, one result per
// descriptor index in order, and a terminal done record.
func TestWorkerShardStream(t *testing.T) {
	opts := harness.QuickOptions()
	w := newTestWorker(t, opts, 1)
	ts := httptest.NewServer(w.Handler())
	defer ts.Close()

	cfg := opts.Fault
	cfg.Injections = 10
	req := ShardRequest{LeaseID: "t", RunID: "t", Bench: "bzip2", Scheme: "faulthound", From: 3, To: 8, Fault: cfg}
	b, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/cluster/run", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("shard rejected: HTTP %d", resp.StatusCode)
	}
	var kinds []string
	var indices []int
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		var rec StreamRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		if rec.Kind == KindPing {
			continue
		}
		kinds = append(kinds, rec.Kind)
		if rec.Kind == KindResult {
			if rec.Result == nil {
				t.Fatalf("result record without payload at index %d", rec.Index)
			}
			indices = append(indices, rec.Index)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(kinds) == 0 || kinds[0] != KindPrep {
		t.Fatalf("stream kinds %v, want prep first", kinds)
	}
	if kinds[len(kinds)-1] != KindDone {
		t.Fatalf("stream kinds %v, want done last", kinds)
	}
	want := []int{3, 4, 5, 6, 7}
	if fmt.Sprint(indices) != fmt.Sprint(want) {
		t.Fatalf("result indices %v, want %v", indices, want)
	}

	// Out-of-range and nameless shards are rejected before any work.
	for _, bad := range []ShardRequest{
		{LeaseID: "t", Bench: "bzip2", Scheme: "faulthound", From: 5, To: 99, Fault: cfg},
		{LeaseID: "t", From: 0, To: 1, Fault: cfg},
	} {
		bb, _ := json.Marshal(bad)
		resp, err := http.Post(ts.URL+"/v1/cluster/run", "application/json", bytes.NewReader(bb))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad shard %+v: HTTP %d, want 400", bad, resp.StatusCode)
		}
	}
}

// TestRegistryLifecycle covers heartbeat expiry, failure marking, and
// the re-register handshake against a fake clock.
func TestRegistryLifecycle(t *testing.T) {
	now := time.Unix(1000, 0)
	reg := NewRegistry(metrics.NewRegistry().Gauge("alive", "test"))
	reg.now = func() time.Time { return now }

	reg.Register(WorkerStatus{ID: "a", Addr: "http://a", Slots: 2})
	reg.Register(WorkerStatus{ID: "b", Addr: "http://b", Slots: 1})
	if n := reg.AliveCount(); n != 2 {
		t.Fatalf("alive after register = %d, want 2", n)
	}

	// b goes silent past the expiry window; a keeps heartbeating.
	now = now.Add(8 * time.Second)
	if !reg.Heartbeat(WorkerStatus{ID: "a", Addr: "http://a", Slots: 2}) {
		t.Fatal("heartbeat for a known worker rejected")
	}
	now = now.Add(4 * time.Second)
	cands := reg.Snapshot()
	if len(cands) != 2 || !cands[0].Alive || cands[1].Alive {
		t.Fatalf("after expiry: %+v, want a alive and b expired", cands)
	}

	// Heartbeats from unknown workers demand a re-register.
	if reg.Heartbeat(WorkerStatus{ID: "ghost", Addr: "http://ghost"}) {
		t.Fatal("heartbeat for an unknown worker accepted")
	}

	// A failed stream takes a worker out immediately; the next
	// heartbeat brings it back.
	reg.MarkFailed("a")
	if reg.AliveCount() != 0 {
		t.Fatal("marked-failed worker still alive")
	}
	reg.Heartbeat(WorkerStatus{ID: "a", Addr: "http://a", Slots: 2})
	if reg.AliveCount() != 1 {
		t.Fatal("heartbeat did not clear the failure mark")
	}

	// Lease accounting clamps at zero and feeds Candidate.Free.
	reg.AddLeases("a", 2)
	if free := reg.Snapshot()[0].Free(); free != 0 {
		t.Fatalf("free slots with 2 leases on 2 slots = %d, want 0", free)
	}
	reg.AddLeases("a", -3)
	if got := reg.Snapshot()[0].Leases; got != 0 {
		t.Fatalf("lease count went negative: %d", got)
	}
}

// TestPolicies checks each routing policy against a fabricated fleet.
func TestPolicies(t *testing.T) {
	cands := []Candidate{
		{Status: WorkerStatus{ID: "a", Slots: 2, Inflight: 1}, Alive: true},                                        // load 1
		{Status: WorkerStatus{ID: "b", Slots: 2}, Alive: true, Leases: 2},                                          // full
		{Status: WorkerStatus{ID: "c", Slots: 2, QueueDepth: 3}, Alive: true},                                      // load 3
		{Status: WorkerStatus{ID: "d", Slots: 2, WarmCells: []string{"mcf/faulthound"}, Inflight: 2}, Alive: true}, // load 2, warm
		{Status: WorkerStatus{ID: "e", Slots: 4}, Alive: false},                                                    // dead
	}

	rr := &RoundRobin{}
	var seq []string
	for i := 0; i < 6; i++ {
		seq = append(seq, cands[rr.Pick(cands, "x")].Status.ID)
	}
	want := []string{"a", "c", "d", "a", "c", "d"}
	if fmt.Sprint(seq) != fmt.Sprint(want) {
		t.Fatalf("round-robin sequence %v, want %v (b full, e dead)", seq, want)
	}

	if got := cands[LeastLoaded{}.Pick(cands, "x")].Status.ID; got != "a" {
		t.Fatalf("least-loaded picked %s, want a", got)
	}

	if got := cands[CacheAware{}.Pick(cands, "mcf/faulthound")].Status.ID; got != "d" {
		t.Fatalf("cache-aware picked %s for a warm cell, want d", got)
	}
	if got := cands[CacheAware{}.Pick(cands, "bzip2/faulthound")].Status.ID; got != "a" {
		t.Fatalf("cache-aware picked %s for a cold cell, want least-loaded a", got)
	}

	if (LeastLoaded{}).Pick([]Candidate{{Status: WorkerStatus{ID: "z"}, Alive: false}}, "x") != -1 {
		t.Fatal("policy picked a dead worker")
	}

	for _, name := range PolicyNames() {
		p, err := PolicyByName(name)
		if err != nil || p.Name() != name {
			t.Fatalf("PolicyByName(%q) = %v, %v", name, p, err)
		}
	}
	if _, err := PolicyByName("bogus"); err == nil {
		t.Fatal("unknown policy name accepted")
	}
}

// TestCoordinatorRegistryHandlers round-trips the register/heartbeat/
// workers endpoints over HTTP, the way a Joiner drives them.
func TestCoordinatorRegistryHandlers(t *testing.T) {
	reg := NewRegistry(nil)
	coord := &Coordinator{Registry: reg}
	ts := httptest.NewServer(coord.Handler())
	defer ts.Close()

	post := func(path string, st WorkerStatus) int {
		b, _ := json.Marshal(st)
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if code := post("/v1/cluster/heartbeat", WorkerStatus{ID: "w", Addr: "http://w"}); code != http.StatusNotFound {
		t.Fatalf("heartbeat before register: HTTP %d, want 404", code)
	}
	if code := post("/v1/cluster/register", WorkerStatus{ID: "w", Addr: "http://w", Slots: 3}); code != http.StatusOK {
		t.Fatalf("register: HTTP %d", code)
	}
	if code := post("/v1/cluster/heartbeat", WorkerStatus{ID: "w", Addr: "http://w", Slots: 3}); code != http.StatusOK {
		t.Fatalf("heartbeat after register: HTTP %d", code)
	}
	if code := post("/v1/cluster/register", WorkerStatus{}); code != http.StatusBadRequest {
		t.Fatalf("anonymous register: HTTP %d, want 400", code)
	}

	resp, err := http.Get(ts.URL + "/v1/cluster/workers")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Workers []struct {
			WorkerStatus
			Alive bool `json:"alive"`
		} `json:"workers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.Workers) != 1 || body.Workers[0].ID != "w" || !body.Workers[0].Alive {
		t.Fatalf("workers listing %+v, want one live worker w", body.Workers)
	}
}

// TestJoinerRejoins runs a Joiner against a coordinator that forgets
// its registry mid-stream (restart), checking the worker re-registers
// and its readiness signal tracks membership.
func TestJoinerRejoins(t *testing.T) {
	opts := harness.QuickOptions()
	w := newTestWorker(t, opts, 1)

	reg := NewRegistry(nil)
	coord := &Coordinator{Registry: reg}
	ts := httptest.NewServer(coord.Handler())
	defer ts.Close()

	j := &Joiner{Worker: w, Coordinator: ts.URL, ID: "w", Addr: "http://w", Interval: 5 * time.Millisecond}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { j.Run(ctx); close(done) }()

	waitFor := func(cond func() bool, what string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	waitFor(func() bool { return w.Joined() && reg.AliveCount() == 1 }, "initial join")

	// Coordinator "restarts": wipe the registry. The next heartbeat is
	// a 404 and the joiner must re-register.
	reg.mu.Lock()
	reg.workers = make(map[string]*workerEntry)
	reg.mu.Unlock()
	waitFor(func() bool { return reg.AliveCount() == 1 }, "re-register after registry loss")

	cancel()
	<-done
}
