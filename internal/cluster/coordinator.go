package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"faulthound/internal/campaign"
	"faulthound/internal/obs/metrics"
)

// Coordinator shards campaigns across registered workers. It plugs
// into the serving daemon as its campaign runner: the front door
// (submission, dedup, queueing, status, SSE, bundles) is unchanged,
// and only the execution step is replaced — partition the outstanding
// descriptor indices into leases, stream results back from workers
// into the job's journal, and finish by replaying that journal through
// campaign.Engine.Resume, which writes the bundle via the exact
// single-node path. Byte-identity with an unsharded run and
// resumability after a coordinator crash both follow from the journal
// being the only state.
type Coordinator struct {
	// Registry tracks the worker fleet. Required.
	Registry *Registry
	// Policy routes ranges to workers; nil means round-robin.
	Policy Policy
	// LeaseTTL is the maximum stream silence before a lease is
	// declared stalled and re-leased (workers ping every second during
	// golden preparation). Zero means DefaultLeaseTTL.
	LeaseTTL time.Duration
	// RangeSize is the maximum descriptors per lease. Zero means
	// DefaultRangeSize. Smaller ranges re-lease less work after a
	// worker death but cost more per-lease overhead.
	RangeSize int
	// MaxAttempts bounds how often one range is re-leased before the
	// job fails. Zero means DefaultMaxAttempts.
	MaxAttempts int
	// HTTP overrides the shard-dispatch transport (nil means a client
	// without timeouts — shard streams are long-lived; the lease TTL
	// handles stalls).
	HTTP *http.Client
	// Log receives lease lifecycle logs; nil discards them.
	Log *slog.Logger

	// Metrics series; nil fields are allowed (Register wires them).
	mLeases  *metrics.Value
	mExpired *metrics.Value
	mMerged  *metrics.Value
	mMerge   *metrics.Histogram
}

// Defaults for Coordinator knobs.
const (
	DefaultLeaseTTL    = 30 * time.Second
	DefaultRangeSize   = 64
	DefaultMaxAttempts = 8
)

func (c *Coordinator) leaseTTL() time.Duration {
	if c.LeaseTTL > 0 {
		return c.LeaseTTL
	}
	return DefaultLeaseTTL
}

func (c *Coordinator) rangeSize() int {
	if c.RangeSize > 0 {
		return c.RangeSize
	}
	return DefaultRangeSize
}

func (c *Coordinator) maxAttempts() int {
	if c.MaxAttempts > 0 {
		return c.MaxAttempts
	}
	return DefaultMaxAttempts
}

func (c *Coordinator) policy() Policy {
	if c.Policy != nil {
		return c.Policy
	}
	return &RoundRobin{}
}

func (c *Coordinator) client() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{}
}

func (c *Coordinator) log() *slog.Logger {
	if c.Log != nil {
		return c.Log
	}
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// RegisterMetrics wires the coordinator's series into a registry
// (documented in docs/CLUSTER.md and asserted by scripts/smoke_cluster.sh).
func (c *Coordinator) RegisterMetrics(reg *metrics.Registry) {
	c.mLeases = reg.Counter("fh_cluster_leases_granted_total", "Range leases granted to workers (including re-leases).")
	c.mExpired = reg.Counter("fh_cluster_leases_expired_total", "Leases lost to worker death or stream stall and re-leased.")
	c.mMerged = reg.Counter("fh_cluster_records_merged_total", "Worker-streamed result records merged into job journals.")
	c.mMerge = reg.Histogram("fh_cluster_merge_seconds",
		"Wall time of the final journal-replay merge that writes a sharded job's bundle.", metrics.ExpBuckets(0.001, 2, 14))
	if c.Registry != nil && c.Registry.alive == nil {
		c.Registry.alive = reg.Gauge("fh_cluster_workers_alive", "Workers registered and heartbeating within the expiry window.")
	}
}

// Handler returns the coordinator's registry endpoints, mounted next
// to the daemon's API:
//
//	POST /v1/cluster/register   worker announces itself
//	POST /v1/cluster/heartbeat  periodic status (404 for unknown IDs)
//	GET  /v1/cluster/workers    registry snapshot
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/cluster/register", func(w http.ResponseWriter, r *http.Request) {
		st, err := decodeStatus(w, r)
		if err != nil {
			return
		}
		c.Registry.Register(st)
		c.log().Info("worker registered", "worker", st.ID, "slots", st.Slots)
		writeJSON(w, http.StatusOK, map[string]any{"ok": true})
	})
	mux.HandleFunc("POST /v1/cluster/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		st, err := decodeStatus(w, r)
		if err != nil {
			return
		}
		if !c.Registry.Heartbeat(st) {
			writeJSON(w, http.StatusNotFound, map[string]any{"error": "unknown worker; re-register"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"ok": true})
	})
	mux.HandleFunc("GET /v1/cluster/workers", func(w http.ResponseWriter, _ *http.Request) {
		type wireWorker struct {
			WorkerStatus
			Alive  bool `json:"alive"`
			Leases int  `json:"leases"`
		}
		var out []wireWorker
		for _, cand := range c.Registry.Snapshot() {
			out = append(out, wireWorker{cand.Status, cand.Alive, cand.Leases})
		}
		writeJSON(w, http.StatusOK, map[string]any{"workers": out})
	})
	return mux
}

func decodeStatus(w http.ResponseWriter, r *http.Request) (WorkerStatus, error) {
	var st WorkerStatus
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&st); err != nil {
		http.Error(w, "bad worker status: "+err.Error(), http.StatusBadRequest)
		return st, err
	}
	if st.ID == "" || st.Addr == "" {
		err := fmt.Errorf("cluster: worker status has no id/addr")
		http.Error(w, err.Error(), http.StatusBadRequest)
		return st, err
	}
	return st, nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	b, _ := json.Marshal(v)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(b)
}

// lease is one outstanding contiguous descriptor range of one cell.
type lease struct {
	cell     int // index into the campaign's cell list
	from, to int // descriptor range [from, to)
	attempts int
}

// leaseResult reports a finished lease goroutine back to the scheduler.
type leaseResult struct {
	l        *lease
	workerID string
	err      error // nil: range fully merged
	expired  bool  // worker death or stall (vs. worker-reported error)
}

// RunCampaign executes one campaign across the worker fleet. Its
// signature matches server.Runner, so cmd/fhserved wires it straight
// into the daemon's job loop. The engine supplies the normalized spec
// and the Progress/Warnf hooks; dir is the job's bundle directory.
func (c *Coordinator) RunCampaign(ctx context.Context, eng *campaign.Engine, dir string, resume bool) (*campaign.Outcome, error) {
	start := time.Now()
	if dir == "" {
		return nil, fmt.Errorf("cluster: sharded runs require a job directory")
	}
	spec := eng.Spec
	if resume {
		man, err := campaign.ReadManifest(dir)
		if err != nil {
			return nil, err
		}
		workers := spec.Workers
		spec = man.Spec
		if workers != 0 {
			spec.Workers = workers
		}
		eng.Spec = spec
	}
	cells := spec.Cells()
	nInj := spec.Fault.Injections
	if len(cells) == 0 || nInj <= 0 {
		return nil, fmt.Errorf("cluster: spec has no cells or injections")
	}

	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if !resume {
		man := campaign.Manifest{Provenance: campaign.NewProvenance(spec.RunID), Spec: spec}
		if err := campaign.WriteJSONFile(filepath.Join(dir, campaign.ManifestName), man); err != nil {
			return nil, err
		}
	}

	// Replay whatever a previous coordinator run merged: the journal is
	// the coordinator's only state, shared byte-for-byte with the
	// single-node engine.
	jpath := filepath.Join(dir, campaign.JournalName)
	recs, repaired, err := campaign.RepairJournal(jpath)
	if err != nil {
		return nil, err
	}
	if repaired && eng.Warnf != nil {
		eng.Warnf("cluster: journal %s: dropped truncated trailing record", jpath)
	}
	cellIdx := make(map[string]int, len(cells))
	for i, cl := range cells {
		cellIdx[CellKey(cl.Bench, cl.Scheme.String())] = i
	}
	have := make([][]bool, len(cells))
	for i := range have {
		have[i] = make([]bool, nInj)
	}
	fpKnown := make([]bool, len(cells))
	resumedAtStart := 0
	for _, r := range recs {
		ci, ok := cellIdx[CellKey(r.Bench, r.Scheme)]
		if !ok {
			return nil, fmt.Errorf("cluster: journal records unknown cell %s/%s", r.Bench, r.Scheme)
		}
		switch r.Kind {
		case "prep":
			fpKnown[ci] = true
		case "result":
			if r.Index < 0 || r.Index >= nInj || r.Result == nil {
				return nil, fmt.Errorf("cluster: journal has bad result record for %s at index %d", r.Bench, r.Index)
			}
			if !have[ci][r.Index] {
				resumedAtStart++
			}
			have[ci][r.Index] = true
		}
	}

	journal, err := campaign.OpenJournal(jpath)
	if err != nil {
		return nil, err
	}

	// Partition the outstanding indices of each cell into contiguous
	// ranges of at most RangeSize descriptors, cell-major — the same
	// deterministic order the single-node engine enumerates tasks in.
	var pending []*lease
	for ci := range cells {
		i := 0
		for i < nInj {
			if have[ci][i] {
				i++
				continue
			}
			j := i
			for j < nInj && !have[ci][j] && j-i < c.rangeSize() {
				j++
			}
			pending = append(pending, &lease{cell: ci, from: i, to: j})
			i = j
		}
	}
	total := len(cells) * nInj
	done := resumedAtStart

	if err := c.dispatch(ctx, eng, spec, cells, journal, pending, have, fpKnown, &done, total); err != nil {
		journal.Close()
		return nil, err
	}
	if err := journal.Close(); err != nil {
		return nil, err
	}

	// Merge: every (cell, index) is journaled, so the engine's resume
	// path replays it all without executing a single injection and
	// writes results.csv/summary.json/report.md exactly as a
	// single-node run would.
	mergeStart := time.Now()
	out, err := eng.Resume(ctx, dir)
	if err != nil {
		return nil, err
	}
	if c.mMerge != nil {
		c.mMerge.Observe(time.Since(mergeStart).Seconds())
	}
	// Resumed (as reported upward) means "restored from a previous
	// interrupted run", not "merged from workers" — the final replay
	// restores everything by construction.
	out.Resumed = resumedAtStart
	out.Elapsed = time.Since(start)
	return out, nil
}

// dispatch runs the lease scheduler until every pending range is
// merged or the context/attempt budget ends.
func (c *Coordinator) dispatch(ctx context.Context, eng *campaign.Engine, spec campaign.Spec,
	cells []campaign.Cell, journal *campaign.JournalWriter,
	pending []*lease, have [][]bool, fpKnown []bool, done *int, total int) error {

	// Every lease goroutine runs under dctx and ends with exactly one
	// blocking send on resCh; cancelling dctx aborts their streams, so
	// the drain below always terminates.
	dctx, dcancel := context.WithCancel(ctx)
	defer dcancel()
	resCh := make(chan leaseResult)
	active := 0
	var firstErr error
	fail := func(err error) {
		if firstErr == nil {
			firstErr = err
		}
	}

	// merge folds one streamed record into the journal and the merge
	// state; lease goroutines call it directly, serialized internally.
	var mergeErr error
	merge := c.merger(eng, cells, journal, have, fpKnown, done, total, &mergeErr)

	for (len(pending) > 0 || active > 0) && firstErr == nil {
		// Grant as many leases as the fleet can take right now.
		granted := true
		for granted && len(pending) > 0 {
			granted = false
			cands := c.Registry.Snapshot()
			l := pending[0]
			cell := CellKey(cells[l.cell].Bench, cells[l.cell].Scheme.String())
			if i := c.policy().Pick(cands, cell); i >= 0 {
				pending = pending[1:]
				w := cands[i].Status
				c.Registry.AddLeases(w.ID, 1)
				if c.mLeases != nil {
					c.mLeases.Inc()
				}
				active++
				granted = true
				go c.runLease(dctx, spec, cells, l, w, merge, resCh)
			}
		}

		if active == 0 {
			// Nothing running and nothing grantable: the fleet is empty
			// or saturated-and-dead. Wait for a worker to (re)appear.
			select {
			case <-ctx.Done():
				fail(ctx.Err())
			case <-time.After(200 * time.Millisecond):
			}
			continue
		}

		select {
		case <-ctx.Done():
			// The journal keeps everything merged so far; the deferred
			// drain below collects the aborted leases.
			fail(ctx.Err())
		case r := <-resCh:
			active--
			c.Registry.AddLeases(r.workerID, -1)
			if mergeErr != nil {
				fail(mergeErr)
			}
			if r.err == nil {
				continue
			}
			if r.expired {
				if c.mExpired != nil {
					c.mExpired.Inc()
				}
				c.Registry.MarkFailed(r.workerID)
			}
			// Re-lease the unmerged remainder. Streams are ordered, so
			// the merged part of the range is a prefix.
			rest := *r.l
			for rest.from < rest.to && have[rest.cell][rest.from] {
				rest.from++
			}
			if rest.from >= rest.to {
				continue // lost the race to a duplicate lease; all merged
			}
			rest.attempts++
			if rest.attempts >= c.maxAttempts() {
				fail(fmt.Errorf("cluster: range %s[%d,%d) failed %d times, last: %w",
					CellKey(cells[rest.cell].Bench, cells[rest.cell].Scheme.String()), rest.from, rest.to, rest.attempts, r.err))
				continue
			}
			c.log().Warn("re-leasing range", "cell", cells[rest.cell].String(),
				"from", rest.from, "to", rest.to, "attempt", rest.attempts, "err", r.err)
			pending = append(pending, &rest)
		}
	}

	// Cancel and collect whatever is still running (no-op on a clean
	// finish: active is already zero).
	dcancel()
	for active > 0 {
		r := <-resCh
		c.Registry.AddLeases(r.workerID, -1)
		active--
	}
	if firstErr != nil {
		return firstErr
	}
	if mergeErr != nil {
		return mergeErr
	}
	return nil
}

// merger returns the synchronized record-merge closure shared by all
// lease goroutines.
func (c *Coordinator) merger(eng *campaign.Engine, cells []campaign.Cell,
	journal *campaign.JournalWriter, have [][]bool, fpKnown []bool,
	done *int, total int, mergeErr *error) func(cell int, rec StreamRecord) {

	var mu = make(chan struct{}, 1)
	mu <- struct{}{}
	return func(ci int, rec StreamRecord) {
		<-mu
		defer func() { mu <- struct{}{} }()
		cl := cells[ci]
		switch rec.Kind {
		case KindPrep:
			if fpKnown[ci] {
				return
			}
			fpKnown[ci] = true
			if err := journal.Append(campaign.Record{
				Kind: "prep", Bench: cl.Bench, Scheme: cl.Scheme.String(), FPRate: rec.FPRate,
			}); err != nil && *mergeErr == nil {
				*mergeErr = err
			}
		case KindResult:
			if rec.Index < 0 || rec.Index >= len(have[ci]) || rec.Result == nil {
				if *mergeErr == nil {
					*mergeErr = fmt.Errorf("cluster: worker streamed bad result record (index %d)", rec.Index)
				}
				return
			}
			if have[ci][rec.Index] {
				return // duplicate from a re-lease race; byte-equal by determinism
			}
			if err := journal.Append(campaign.Record{
				Kind: "result", Bench: cl.Bench, Scheme: cl.Scheme.String(), Index: rec.Index, Result: rec.Result,
			}); err != nil {
				if *mergeErr == nil {
					*mergeErr = err
				}
				return
			}
			have[ci][rec.Index] = true
			*done++
			if c.mMerged != nil {
				c.mMerged.Inc()
			}
			if eng.Progress != nil {
				eng.Progress(*done, total)
			}
		}
	}
}

// runLease executes one lease against one worker: POST the shard,
// consume the record stream (any line renews the lease timer), and
// report the outcome to the scheduler.
func (c *Coordinator) runLease(ctx context.Context, spec campaign.Spec, cells []campaign.Cell,
	l *lease, w WorkerStatus, merge func(int, StreamRecord), resCh chan<- leaseResult) {

	// The scheduler receives every result, draining until active==0
	// even on error/cancellation exits, so this send never orphans —
	// and it must be unconditional or that drain would deadlock.
	report := func(err error, expired bool) {
		resCh <- leaseResult{l: l, workerID: w.ID, err: err, expired: expired}
	}

	cl := cells[l.cell]
	req := ShardRequest{
		LeaseID: fmt.Sprintf("%s/%s[%d,%d)#%d", spec.RunID, cl, l.from, l.to, l.attempts),
		RunID:   spec.RunID,
		Bench:   cl.Bench,
		Scheme:  cl.Scheme.String(),
		From:    l.from,
		To:      l.to,
		Fault:   spec.Fault,
	}
	body, err := json.Marshal(req)
	if err != nil {
		report(err, false)
		return
	}
	leaseCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	hreq, err := http.NewRequestWithContext(leaseCtx, http.MethodPost, w.Addr+"/v1/cluster/run", bytes.NewReader(body))
	if err != nil {
		report(err, false)
		return
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.client().Do(hreq)
	if err != nil {
		report(fmt.Errorf("cluster: dialing worker %s: %w", w.ID, err), true)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<12))
		report(fmt.Errorf("cluster: worker %s rejected shard: HTTP %d: %s", w.ID, resp.StatusCode, bytes.TrimSpace(b)), false)
		return
	}

	// Reader goroutine feeds lines; the select loop below enforces the
	// lease TTL between lines. cancel() tears the body down, which
	// stops the reader.
	lineCh := make(chan []byte)
	readErr := make(chan error, 1)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
		for sc.Scan() {
			line := make([]byte, len(sc.Bytes()))
			copy(line, sc.Bytes())
			select {
			case lineCh <- line:
			case <-leaseCtx.Done():
				return
			}
		}
		readErr <- sc.Err()
		close(lineCh)
	}()

	ttl := c.leaseTTL()
	timer := time.NewTimer(ttl)
	defer timer.Stop()
	for {
		select {
		case <-ctx.Done():
			report(ctx.Err(), false)
			return
		case <-timer.C:
			cancel()
			report(fmt.Errorf("cluster: lease %s stalled on worker %s (no record within %s)", req.LeaseID, w.ID, ttl), true)
			return
		case line, ok := <-lineCh:
			if !ok {
				// EOF before "done": the worker died mid-stream.
				err := <-readErr
				if err == nil {
					err = io.ErrUnexpectedEOF
				}
				report(fmt.Errorf("cluster: lease %s stream from %s ended early: %w", req.LeaseID, w.ID, err), true)
				return
			}
			if !timer.Stop() {
				<-timer.C
			}
			timer.Reset(ttl)
			var rec StreamRecord
			if err := json.Unmarshal(line, &rec); err != nil {
				cancel()
				report(fmt.Errorf("cluster: lease %s: bad stream line from %s: %w", req.LeaseID, w.ID, err), true)
				return
			}
			switch rec.Kind {
			case KindPing:
				// keepalive only
			case KindPrep, KindResult:
				merge(l.cell, rec)
			case KindDone:
				report(nil, false)
				return
			case KindError:
				report(fmt.Errorf("cluster: worker %s failed lease %s: %s", w.ID, req.LeaseID, rec.Error), false)
				return
			default:
				// Forward compatibility: ignore unknown kinds.
			}
		}
	}
}
