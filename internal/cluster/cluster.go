// Package cluster shards one fault-injection campaign across many
// fhserved nodes. A coordinator partitions a campaign's pre-drawn
// injection descriptors into contiguous per-cell index ranges, leases
// each range to a registered worker, and merges the streamed-back
// results into the job's journal — so the finished bundle is produced
// by the exact single-node journal/resume path and is byte-identical
// to an unsharded run, and a coordinator crash mid-campaign is itself
// resumable from the merged journal.
//
// The protocol is three HTTP endpoints layered on the existing daemon:
//
//	POST /v1/cluster/register   worker announces itself (idempotent)
//	POST /v1/cluster/heartbeat  periodic worker status (load, warm cells)
//	GET  /v1/cluster/workers    registry snapshot (ops/debug)
//
// on the coordinator, plus one on each worker:
//
//	POST /v1/cluster/run        execute a shard, streaming JSONL records
//
// A shard executes descriptors [From, To) of one benchmark×scheme cell
// with the campaign's full fault config: the worker draws the same
// descriptor stream from the same seed, so descriptor index i names
// the same injection everywhere and the merge is a trivial set-union
// keyed by (cell, index). Workers stream one record per completed
// injection; any received line renews the range's lease, and a lease
// whose stream dies or stalls past the TTL is re-leased to a
// surviving worker (duplicate records from re-lease races are
// idempotent — deterministic execution makes them byte-equal).
//
// Routing is a pluggable Policy: round-robin, least-loaded (from the
// worker-reported inflight/queue depth), or cache-aware (prefer a
// worker whose fault.PreparedCache already holds the cell's golden
// state, reported as warm cells in heartbeats).
package cluster

import (
	"fmt"

	"faulthound/internal/fault"
)

// ShardRequest is the body of POST /v1/cluster/run: one contiguous
// descriptor range of one cell, with everything a worker needs to
// reproduce the exact injection stream.
type ShardRequest struct {
	// LeaseID names this lease for logs and debugging; the worker
	// echoes it back in error records.
	LeaseID string `json:"lease_id"`
	// RunID is the campaign's run ID (logging only).
	RunID string `json:"run_id"`
	// Bench and Scheme name the cell; Scheme is a canonical scheme
	// spec string.
	Bench  string `json:"bench"`
	Scheme string `json:"scheme"`
	// From and To bound the descriptor index range [From, To).
	From int `json:"from"`
	To   int `json:"to"`
	// Fault is the campaign's full fault configuration; the worker
	// draws the descriptor stream from it (seed included) so index i
	// is the same injection on every node.
	Fault fault.Config `json:"fault"`
}

// Validate rejects malformed shard requests before any work runs.
func (r ShardRequest) Validate() error {
	if r.Bench == "" || r.Scheme == "" {
		return fmt.Errorf("cluster: shard names no cell")
	}
	if r.From < 0 || r.To <= r.From || r.To > r.Fault.Injections {
		return fmt.Errorf("cluster: shard range [%d,%d) out of bounds for %d injections", r.From, r.To, r.Fault.Injections)
	}
	return nil
}

// Stream record kinds. "prep" and "result" carry campaign journal
// payloads; "ping" renews the lease during long golden preparations;
// "done" terminates a successful stream; "error" reports a worker-side
// failure (the range is re-leased elsewhere).
const (
	KindPrep   = "prep"
	KindResult = "result"
	KindPing   = "ping"
	KindDone   = "done"
	KindError  = "error"
)

// StreamRecord is one JSONL line of a shard's response stream. Prep
// and result records map 1:1 onto campaign.Record; the bench/scheme of
// the lease's cell are implied and filled in by the coordinator at
// merge time.
type StreamRecord struct {
	Kind string `json:"kind"`
	// Index is the descriptor index of a result record.
	Index int `json:"index,omitempty"`
	// FPRate is the cell's fault-free false-positive rate (prep).
	FPRate float64 `json:"fp_rate,omitempty"`
	// Result is the completed injection (result).
	Result *fault.Result `json:"result,omitempty"`
	// Error describes a worker-side failure (error).
	Error string `json:"error,omitempty"`
}

// WorkerStatus is what a worker reports at registration and in every
// heartbeat: identity, capacity, current load, and which cells its
// prepared-golden-state cache already holds.
type WorkerStatus struct {
	// ID is the worker's stable identity — its advertised base URL,
	// which is also where the coordinator dials shards.
	ID string `json:"id"`
	// Addr is the worker's base URL ("http://host:port").
	Addr string `json:"addr"`
	// Slots is the number of shards the worker executes concurrently.
	Slots int `json:"slots"`
	// Inflight is the number of shards executing right now.
	Inflight int `json:"inflight"`
	// QueueDepth is the worker daemon's own pending-job count (a
	// worker also serves its normal front door).
	QueueDepth int `json:"queue_depth"`
	// WarmCells lists "bench/scheme" cells whose golden preparation is
	// cached (fault.PreparedCache.Keys), for locality-aware routing.
	WarmCells []string `json:"warm_cells,omitempty"`
	// CacheHits and CacheMisses are the prepared cache's cumulative
	// tallies.
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
}

// CellKey renders the "bench/scheme" form WarmCells uses.
func CellKey(bench, scheme string) string { return bench + "/" + scheme }
