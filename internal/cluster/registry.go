package cluster

import (
	"sort"
	"sync"
	"time"

	"faulthound/internal/obs/metrics"
)

// Registry is the coordinator's worker table. Workers appear by
// registering, refresh themselves with heartbeats, and expire (stop
// receiving leases) when no heartbeat arrives within ExpireAfter. A
// worker whose shard stream fails is marked failed immediately — the
// scheduler must not wait a full heartbeat period to route around a
// dead node.
type Registry struct {
	// ExpireAfter is the heartbeat silence after which a worker is
	// considered dead. Zero means DefaultExpireAfter.
	ExpireAfter time.Duration

	// now overrides time.Now in tests.
	now func() time.Time

	mu      sync.Mutex
	workers map[string]*workerEntry

	// alive is the exported fh_cluster_workers_alive gauge; nil is
	// allowed (tests).
	alive *metrics.Value
}

// DefaultExpireAfter is the default heartbeat-expiry window. Worker
// heartbeats default to a third of it, so a worker survives two lost
// heartbeats.
const DefaultExpireAfter = 10 * time.Second

type workerEntry struct {
	status   WorkerStatus
	lastSeen time.Time
	// leases is the coordinator-side count of ranges currently leased
	// to this worker (maintained by the scheduler, not the worker).
	leases int
	// failed marks a worker whose shard stream errored; cleared by the
	// next successful heartbeat or registration.
	failed bool
}

// NewRegistry returns an empty registry. The gauge is optional; when
// non-nil it tracks the live worker count.
func NewRegistry(alive *metrics.Value) *Registry {
	return &Registry{workers: make(map[string]*workerEntry), now: time.Now, alive: alive}
}

func (r *Registry) expiry() time.Duration {
	if r.ExpireAfter > 0 {
		return r.ExpireAfter
	}
	return DefaultExpireAfter
}

// Register adds or refreshes a worker. Registration clears a failure
// mark: a restarted worker re-registers under the same ID.
func (r *Registry) Register(st WorkerStatus) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.workers[st.ID]
	if e == nil {
		e = &workerEntry{}
		r.workers[st.ID] = e
	}
	e.status = st
	e.lastSeen = r.now()
	e.failed = false
	r.updateGaugeLocked()
}

// Heartbeat refreshes a worker's status. It reports false for an
// unknown ID — the worker should re-register (the coordinator may have
// restarted and lost its table).
func (r *Registry) Heartbeat(st WorkerStatus) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.workers[st.ID]
	if e == nil {
		return false
	}
	e.status = st
	e.lastSeen = r.now()
	e.failed = false
	r.updateGaugeLocked()
	return true
}

// MarkFailed flags a worker whose shard stream died. The worker stops
// receiving leases until its next heartbeat proves it alive.
func (r *Registry) MarkFailed(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e := r.workers[id]; e != nil {
		e.failed = true
	}
	r.updateGaugeLocked()
}

// AddLeases adjusts the coordinator-side active-lease count of a
// worker (+1 on grant, -1 on completion or failure).
func (r *Registry) AddLeases(id string, d int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e := r.workers[id]; e != nil {
		e.leases += d
		if e.leases < 0 {
			e.leases = 0
		}
	}
}

// Candidate is a scheduling view of one worker, passed to routing
// policies.
type Candidate struct {
	Status WorkerStatus
	// Alive is true when the worker heartbeated within the expiry
	// window and is not marked failed.
	Alive bool
	// Leases is the coordinator-side count of ranges currently leased
	// to the worker.
	Leases int
}

// Free reports remaining shard capacity.
func (c Candidate) Free() int {
	slots := c.Status.Slots
	if slots <= 0 {
		slots = 1
	}
	return slots - c.Leases
}

// Load is the least-loaded ordering key: ranges the coordinator has
// leased here plus the worker's own reported inflight shards and
// queued front-door jobs.
func (c Candidate) Load() int {
	return c.Leases + c.Status.Inflight + c.Status.QueueDepth
}

// Warm reports whether the worker's prepared cache holds the cell.
func (c Candidate) Warm(cell string) bool {
	for _, w := range c.Status.WarmCells {
		if w == cell {
			return true
		}
	}
	return false
}

// Snapshot lists every registered worker as a candidate, sorted by ID
// for deterministic policy input.
func (r *Registry) Snapshot() []Candidate {
	r.mu.Lock()
	defer r.mu.Unlock()
	cutoff := r.now().Add(-r.expiry())
	out := make([]Candidate, 0, len(r.workers))
	for _, e := range r.workers {
		out = append(out, Candidate{
			Status: e.status,
			Alive:  !e.failed && e.lastSeen.After(cutoff),
			Leases: e.leases,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Status.ID < out[j].Status.ID })
	return out
}

// AliveCount reports the number of live workers — the coordinator's
// readiness signal.
func (r *Registry) AliveCount() int {
	n := 0
	for _, c := range r.Snapshot() {
		if c.Alive {
			n++
		}
	}
	return n
}

// updateGaugeLocked refreshes the alive-workers gauge.
func (r *Registry) updateGaugeLocked() {
	if r.alive == nil {
		return
	}
	cutoff := r.now().Add(-r.expiry())
	n := 0
	for _, e := range r.workers {
		if !e.failed && e.lastSeen.After(cutoff) {
			n++
		}
	}
	r.alive.Set(float64(n))
}
