package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync/atomic"
	"time"

	"faulthound/internal/campaign"
	"faulthound/internal/fault"
	"faulthound/internal/pipeline"
	"faulthound/internal/scheme"
)

// Worker executes shard leases on behalf of a coordinator. It shares
// the daemon's fault.PreparedCache, so a cell prepared for one lease
// (or for a direct front-door job) is warm for every later lease of
// the same cell — the locality the cache-aware routing policy exploits.
type Worker struct {
	// Factory resolves cells to core constructors (the daemon's
	// campaign factory).
	Factory campaign.CoreFactory
	// Cache is the shared golden-preparation cache. Required.
	Cache *fault.PreparedCache
	// Slots is the advertised concurrent shard capacity (<= 0 means 1).
	Slots int
	// QueueDepth reports the daemon's own pending-job count for
	// heartbeats; nil means 0.
	QueueDepth func() int
	// Log receives operational logs; nil discards them.
	Log *slog.Logger

	inflight atomic.Int64
	joined   atomic.Bool
}

func (w *Worker) log() *slog.Logger {
	if w.Log != nil {
		return w.Log
	}
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// Status snapshots the worker's heartbeat payload.
func (w *Worker) Status(id, addr string) WorkerStatus {
	slots := w.Slots
	if slots <= 0 {
		slots = 1
	}
	st := WorkerStatus{
		ID:       id,
		Addr:     addr,
		Slots:    slots,
		Inflight: int(w.inflight.Load()),
	}
	if w.QueueDepth != nil {
		st.QueueDepth = w.QueueDepth()
	}
	hits, misses := w.Cache.Stats()
	st.CacheHits, st.CacheMisses = hits, misses
	for _, k := range w.Cache.Keys() {
		st.WarmCells = append(st.WarmCells, CellKey(k.Bench, k.Scheme))
	}
	return st
}

// Joined reports whether the last registration/heartbeat round trip
// with the coordinator succeeded — the worker's readiness signal.
func (w *Worker) Joined() bool { return w.joined.Load() }

// Handler returns the worker's cluster endpoint:
//
//	POST /v1/cluster/run  execute a shard, streaming JSONL StreamRecords
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/cluster/run", w.handleRun)
	return mux
}

// handleRun executes one shard and streams records as they complete.
// The response is written incrementally: one JSON line per prep/result,
// "ping" keepalives while the golden preparation runs, and a final
// "done" (or "error") line. The client disconnecting cancels the shard
// via the request context (fault.RunOneArena polls it mid-injection).
func (w *Worker) handleRun(rw http.ResponseWriter, r *http.Request) {
	var req ShardRequest
	dec := json.NewDecoder(http.MaxBytesReader(rw, r.Body, 1<<20))
	if err := dec.Decode(&req); err != nil {
		http.Error(rw, "bad shard request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if err := req.Validate(); err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	sp := scheme.FromString(req.Scheme)
	mk, err := w.Factory(req.Bench, sp)
	if err != nil {
		http.Error(rw, fmt.Sprintf("cluster: cannot build cell %s/%s: %v", req.Bench, req.Scheme, err), http.StatusBadRequest)
		return
	}

	w.inflight.Add(1)
	defer w.inflight.Add(-1)
	log := w.log().With("lease", req.LeaseID, "cell", CellKey(req.Bench, req.Scheme), "from", req.From, "to", req.To)
	log.Debug("shard starting")

	rw.Header().Set("Content-Type", "application/x-ndjson")
	rw.WriteHeader(http.StatusOK)
	flusher, _ := rw.(http.Flusher)
	send := func(rec StreamRecord) error {
		b, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		if _, err := rw.Write(append(b, '\n')); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	}
	fail := func(err error) {
		log.Warn("shard failed", "err", err)
		send(StreamRecord{Kind: KindError, Error: err.Error()})
	}

	// The golden preparation can take seconds (detector fast-forward +
	// warmup); stream pings while it runs so the coordinator's lease
	// timer keeps renewing.
	type prepOut struct {
		p   *fault.Prepared
		err error
	}
	prepCh := make(chan prepOut, 1)
	go func() {
		p, err := w.Cache.Get(fault.PreparedKey{Bench: req.Bench, Scheme: req.Scheme, Cfg: req.Fault}, mk)
		prepCh <- prepOut{p, err}
	}()
	var prep prepOut
	ticker := time.NewTicker(time.Second)
	defer ticker.Stop()
wait:
	for {
		select {
		case prep = <-prepCh:
			break wait
		case <-r.Context().Done():
			return
		case <-ticker.C:
			if err := send(StreamRecord{Kind: KindPing}); err != nil {
				return
			}
		}
	}
	if prep.err != nil {
		fail(prep.err)
		return
	}
	if err := send(StreamRecord{Kind: KindPrep, FPRate: prep.p.FPRate()}); err != nil {
		return
	}

	// Execute the range sequentially. Parallelism comes from the
	// coordinator dispatching up to Slots concurrent leases per worker;
	// keeping one goroutine per lease keeps the stream ordered and the
	// progress granularity exact.
	injs := prep.p.Injections()
	arena := pipeline.NewSnapshotArena()
	for i := req.From; i < req.To; i++ {
		res, err := prep.p.RunOneArena(r.Context(), injs[i], arena)
		if err != nil {
			// Client gone or shutting down; nothing useful to send.
			return
		}
		if err := send(StreamRecord{Kind: KindResult, Index: i, Result: &res}); err != nil {
			return
		}
	}
	send(StreamRecord{Kind: KindDone})
	log.Debug("shard done")
}

// Joiner maintains a worker's membership in a coordinator's registry:
// it registers, then heartbeats until the context ends, re-registering
// whenever the coordinator restarts (heartbeat returns 404) or a send
// fails.
type Joiner struct {
	// Worker supplies the status payloads.
	Worker *Worker
	// Coordinator is the coordinator's base URL.
	Coordinator string
	// ID and Addr identify this worker (its advertised base URL).
	ID, Addr string
	// Interval is the heartbeat period; zero means a third of
	// DefaultExpireAfter.
	Interval time.Duration
	// HTTP overrides the transport (nil means a short-timeout client).
	HTTP *http.Client
	// Log receives join-state transitions; nil discards them.
	Log *slog.Logger
}

func (j *Joiner) interval() time.Duration {
	if j.Interval > 0 {
		return j.Interval
	}
	return DefaultExpireAfter / 3
}

func (j *Joiner) client() *http.Client {
	if j.HTTP != nil {
		return j.HTTP
	}
	return &http.Client{Timeout: 5 * time.Second}
}

func (j *Joiner) log() *slog.Logger {
	if j.Log != nil {
		return j.Log
	}
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// post sends one registry message and reports the HTTP status.
func (j *Joiner) post(ctx context.Context, path string) (int, error) {
	st := j.Worker.Status(j.ID, j.Addr)
	b, err := json.Marshal(st)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, j.Coordinator+path, bytes.NewReader(b))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := j.client().Do(req)
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<12))
	resp.Body.Close()
	return resp.StatusCode, nil
}

// Run registers and heartbeats until ctx ends. It never returns an
// error: a coordinator that is down is retried forever (the worker
// keeps serving its own front door meanwhile), and Joined() reports
// the current membership state for readiness probes.
func (j *Joiner) Run(ctx context.Context) {
	registered := false
	tick := time.NewTicker(j.interval())
	defer tick.Stop()
	for {
		path := "/v1/cluster/heartbeat"
		if !registered {
			path = "/v1/cluster/register"
		}
		code, err := j.post(ctx, path)
		switch {
		case err != nil:
			if registered || j.Worker.Joined() {
				j.log().Warn("coordinator unreachable", "coordinator", j.Coordinator, "err", err)
			}
			registered = false
			j.Worker.joined.Store(false)
		case code == http.StatusNotFound && registered:
			// Coordinator restarted and lost the registry: re-register
			// on the next round.
			j.log().Info("coordinator lost registration; re-registering")
			registered = false
			j.Worker.joined.Store(false)
		case code >= 200 && code < 300:
			if !registered {
				j.log().Info("joined coordinator", "coordinator", j.Coordinator, "id", j.ID)
			}
			registered = true
			j.Worker.joined.Store(true)
		default:
			j.log().Warn("registry request rejected", "path", path, "status", code)
			registered = false
			j.Worker.joined.Store(false)
		}
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
	}
}
