// Package system assembles multiple cores into the paper's Table-2
// machine: 8 cores, each 2-way SMT, sharing one memory image. The
// multithreaded benchmarks (SPLASH-2 and the commercial workloads) run
// one software thread per SMT context across all cores; detectors are
// per-core, as FaultHound's hardware is.
//
// Caches are private and timing-only (architectural data lives in the
// shared memory), so cross-core sharing is architecturally coherent by
// construction; the timing model omits coherence misses, which none of
// the paper's mechanisms interact with.
package system

import (
	"fmt"

	"faulthound/internal/detect"
	"faulthound/internal/mem"
	"faulthound/internal/pipeline"
	"faulthound/internal/prog"
)

// Config describes the machine.
type Config struct {
	// Cores is the core count (Table 2 uses 8).
	Cores int
	// Core is the per-core configuration (Threads sets the SMT width).
	Core pipeline.Config
}

// DefaultConfig returns the paper's 8-core, 2-way-SMT machine.
func DefaultConfig() Config {
	return Config{Cores: 8, Core: pipeline.DefaultConfig(2)}
}

// System is a running multicore machine.
type System struct {
	cfg    Config
	cores  []*pipeline.Core
	memory *mem.Memory
}

// New builds a system running the given programs, one per hardware
// thread (len(programs) must equal Cores x Core.Threads). All programs
// share one memory image spanning the union of their data segments;
// give threads disjoint segments unless they intentionally share.
// mkDetector builds one detector per core (nil for no detection).
func New(cfg Config, programs []*prog.Program, mkDetector func(core int) detect.Detector) (*System, error) {
	if cfg.Cores < 1 {
		return nil, fmt.Errorf("system: need at least one core")
	}
	want := cfg.Cores * cfg.Core.Threads
	if len(programs) != want {
		return nil, fmt.Errorf("system: %d programs for %d hardware threads", len(programs), want)
	}

	base, end := programs[0].DataBase, programs[0].DataBase+programs[0].DataSize
	image := make(map[uint64]uint64)
	for _, p := range programs {
		if p.DataBase < base {
			base = p.DataBase
		}
		if e := p.DataBase + p.DataSize; e > end {
			end = e
		}
		for a, v := range p.Data {
			image[a] = v
		}
	}
	shared := mem.NewMemory(base, end-base, image)

	s := &System{cfg: cfg, memory: shared}
	for i := 0; i < cfg.Cores; i++ {
		var det detect.Detector
		if mkDetector != nil {
			det = mkDetector(i)
		}
		slice := programs[i*cfg.Core.Threads : (i+1)*cfg.Core.Threads]
		c, err := pipeline.NewShared(cfg.Core, slice, det, shared)
		if err != nil {
			return nil, fmt.Errorf("system: core %d: %w", i, err)
		}
		s.cores = append(s.cores, c)
	}
	return s, nil
}

// Cores returns the core count.
func (s *System) Cores() int { return len(s.cores) }

// Core returns core i.
func (s *System) Core(i int) *pipeline.Core { return s.cores[i] }

// Memory returns the shared memory image.
func (s *System) Memory() *mem.Memory { return s.memory }

// Step advances every core by one cycle (cores are cycle-synchronous).
func (s *System) Step() {
	for _, c := range s.cores {
		c.Step()
	}
}

// Run steps the system until every hardware thread halts or maxCycles
// elapse; it returns the cycles executed.
func (s *System) Run(maxCycles uint64) uint64 {
	var n uint64
	for n < maxCycles && !s.AllHalted() {
		s.Step()
		n++
	}
	return n
}

// RunUntilCommits steps until core 0's thread 0 commits n instructions
// or maxCycles elapse; it reports whether the target was reached.
func (s *System) RunUntilCommits(n, maxCycles uint64) bool {
	var cycles uint64
	for s.cores[0].Committed(0) < n {
		if cycles >= maxCycles || s.AllHalted() {
			return s.cores[0].Committed(0) >= n
		}
		s.Step()
		cycles++
	}
	return true
}

// AllHalted reports whether every hardware thread has halted.
func (s *System) AllHalted() bool {
	for _, c := range s.cores {
		if !c.AllHalted() {
			return false
		}
	}
	return true
}

// CommittedTotal sums committed instructions across all cores.
func (s *System) CommittedTotal() uint64 {
	var n uint64
	for _, c := range s.cores {
		n += c.CommittedTotal()
	}
	return n
}

// Stats aggregates the per-core pipeline counters.
func (s *System) Stats() pipeline.Stats {
	var agg pipeline.Stats
	for _, c := range s.cores {
		st := c.Stats()
		agg.Cycles = st.Cycles // synchronous: same on every core
		agg.Fetched += st.Fetched
		agg.Dispatched += st.Dispatched
		agg.Issued += st.Issued
		agg.Completed += st.Completed
		agg.Committed += st.Committed
		agg.Loads += st.Loads
		agg.Stores += st.Stores
		agg.Branches += st.Branches
		agg.BranchMispredicts += st.BranchMispredicts
		agg.Exceptions += st.Exceptions
		agg.ReplayTriggers += st.ReplayTriggers
		agg.ReplayedUops += st.ReplayedUops
		agg.Rollbacks += st.Rollbacks
		agg.RollbackSquashedUops += st.RollbackSquashedUops
		agg.Singletons += st.Singletons
		agg.FaultsDeclared += st.FaultsDeclared
		agg.ShadowOps += st.ShadowOps
		agg.RegReads += st.RegReads
		agg.RegWrites += st.RegWrites
		for i := range st.IssuedByClass {
			agg.IssuedByClass[i] += st.IssuedByClass[i]
		}
	}
	return agg
}

// Clone returns an independent deep copy of the whole machine: the
// shared memory is cloned once and every core clone references it. The
// multicore fault-injection runner uses this.
func (s *System) Clone() *System {
	m := s.memory.Clone()
	d := &System{cfg: s.cfg, memory: m}
	for _, c := range s.cores {
		d.cores = append(d.cores, c.CloneWithMemory(m))
	}
	return d
}

// ArchHash folds the shared memory and every hardware thread's live
// architectural registers into one fingerprint for tandem comparison.
func (s *System) ArchHash() uint64 {
	h := s.memory.Hash()
	for ci, c := range s.cores {
		for tid := 0; tid < s.cfg.Core.Threads; tid++ {
			regs := c.LiveArchRegs(tid)
			for i, v := range regs {
				x := (uint64(ci*64+tid*48+i) + 1) * 0x9e3779b97f4a7c15
				x ^= v + 0x2545f4914f6cdd1d
				x ^= x >> 33
				x *= 0xff51afd7ed558ccd
				x ^= x >> 33
				h ^= x
			}
		}
	}
	return h
}

// WarmDetectors fast-forwards every core's detector over its thread-0
// program (see pipeline.Core.WarmDetector).
func (s *System) WarmDetectors(n uint64) {
	for _, c := range s.cores {
		c.WarmDetector(n)
	}
}

// AnyExcepted reports whether any hardware thread took an exception,
// and one of the messages.
func (s *System) AnyExcepted() (bool, string) {
	for _, c := range s.cores {
		for tid := 0; tid < s.cfg.Core.Threads; tid++ {
			if exc, msg := c.Excepted(tid); exc {
				return true, msg
			}
		}
	}
	return false, ""
}
