package system

import (
	"testing"

	"faulthound/internal/core"
	"faulthound/internal/detect"
	"faulthound/internal/pipeline"
	"faulthound/internal/prog"
	"faulthound/internal/workload"
)

func TestSystemRunsIndependentPrograms(t *testing.T) {
	// 2 cores x 2 SMT threads, each running its own copy of a kernel
	// with disjoint segments (the paper's SPEC setup, scaled down).
	cfg := Config{Cores: 2, Core: pipeline.DefaultConfig(2)}
	bm, err := workload.Get("bzip2")
	if err != nil {
		t.Fatal(err)
	}
	programs := workload.Programs(bm, 4, 1)
	s, err := New(cfg, programs, nil)
	if err != nil {
		t.Fatal(err)
	}
	s.RunUntilCommits(5000, 2_000_000)
	if s.Core(0).Committed(0) < 5000 {
		t.Fatalf("core 0 committed only %d", s.Core(0).Committed(0))
	}
	// Every hardware thread makes progress.
	for i := 0; i < 2; i++ {
		if s.Core(i).CommittedTotal() == 0 {
			t.Fatalf("core %d made no progress", i)
		}
	}
	agg := s.Stats()
	if agg.Committed != s.CommittedTotal() {
		t.Fatal("aggregate commit count mismatch")
	}
}

func TestSystemRejectsBadShape(t *testing.T) {
	bm, _ := workload.Get("bzip2")
	programs := workload.Programs(bm, 2, 1)
	if _, err := New(Config{Cores: 2, Core: pipeline.DefaultConfig(2)}, programs, nil); err == nil {
		t.Fatal("expected error for wrong program count")
	}
	if _, err := New(Config{Cores: 0}, nil, nil); err == nil {
		t.Fatal("expected error for zero cores")
	}
}

// TestOceanMPBarrierCorrectness is the shared-memory acceptance test:
// four threads on two cores relax a shared grid with AMOADD barriers;
// all threads must advance through many barrier generations together.
func TestOceanMPBarrierCorrectness(t *testing.T) {
	const nthreads = 4
	programs := workload.OceanMP(prog.DefaultDataBase, 1, nthreads)
	cfg := Config{Cores: 2, Core: pipeline.DefaultConfig(2)}
	s, err := New(cfg, programs, nil)
	if err != nil {
		t.Fatal(err)
	}
	s.Run(400_000)
	// The generation word counts completed barrier rounds.
	gen, err := s.Memory().Read(prog.DefaultDataBase + 16)
	if err != nil {
		t.Fatal(err)
	}
	if gen < 3 {
		t.Fatalf("only %d barrier generations completed; barrier broken?", gen)
	}
	// The arrival counter must be consistent: between 0 and nthreads.
	arrivals, _ := s.Memory().Read(prog.DefaultDataBase + 8)
	if arrivals > nthreads {
		t.Fatalf("arrival counter %d exceeds thread count: atomicity broken", arrivals)
	}
	for i := 0; i < 2; i++ {
		if exc, msg := s.Core(i).Excepted(0); exc {
			t.Fatalf("core %d excepted: %s", i, msg)
		}
	}
}

// TestOceanMPDeterministic: the multicore run is bit-deterministic.
func TestOceanMPDeterministic(t *testing.T) {
	run := func() uint64 {
		programs := workload.OceanMP(prog.DefaultDataBase, 7, 4)
		s, err := New(Config{Cores: 2, Core: pipeline.DefaultConfig(2)}, programs, nil)
		if err != nil {
			t.Fatal(err)
		}
		s.Run(150_000)
		return s.Memory().Hash() ^ s.CommittedTotal()
	}
	if run() != run() {
		t.Fatal("multicore run is not deterministic")
	}
}

// TestSystemWithDetectors attaches FaultHound per core (as the paper's
// hardware would be) and checks transparency of the parallel run.
func TestSystemWithDetectors(t *testing.T) {
	const nthreads = 4
	mk := func(withDet bool) (uint64, uint64) {
		programs := workload.OceanMP(prog.DefaultDataBase, 3, nthreads)
		var mkDet func(int) detect.Detector
		if withDet {
			mkDet = func(int) detect.Detector { return core.New(core.DefaultConfig()) }
		}
		s, err := New(Config{Cores: 2, Core: pipeline.DefaultConfig(2)}, programs, mkDet)
		if err != nil {
			t.Fatal(err)
		}
		s.Run(200_000)
		gen, _ := s.Memory().Read(prog.DefaultDataBase + 16)
		return gen, s.CommittedTotal()
	}
	genBase, _ := mk(false)
	genDet, _ := mk(true)
	if genDet == 0 {
		t.Fatal("no barrier progress under FaultHound")
	}
	// FaultHound may slow the run (fewer generations) but must not
	// break the barrier protocol.
	if genDet > genBase {
		t.Logf("note: detector run advanced further (%d vs %d)", genDet, genBase)
	}
}

func TestSystemCloneIdenticalFuture(t *testing.T) {
	programs := workload.OceanMP(prog.DefaultDataBase, 5, 4)
	s, err := New(Config{Cores: 2, Core: pipeline.DefaultConfig(2)}, programs, nil)
	if err != nil {
		t.Fatal(err)
	}
	s.Run(20_000)
	c := s.Clone()
	for i := 0; i < 30_000; i++ {
		s.Step()
		c.Step()
	}
	if s.ArchHash() != c.ArchHash() {
		t.Fatal("system clone diverged from original under identical stepping")
	}
	// And independence: running the clone further must not affect the
	// original.
	h := s.ArchHash()
	c.Run(10_000)
	if s.ArchHash() != h {
		t.Fatal("running the clone mutated the original")
	}
}
