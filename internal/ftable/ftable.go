// Package ftable implements the PC-indexed, direct-mapped bit-mask
// filter table of PBFS (ISCA'15 Section 2.1). Each entry holds one
// filter (per-bit state machines plus previous value); the entry is
// selected by the checking instruction's PC, so similar values from
// nearby instructions spread over multiple entries — the limitation
// FaultHound's inverted (value-indexed) TCAM organization removes.
//
// The same structure with the biased state machine serves as the
// PBFS-biased baseline and the FH-BE-nocluster ablation of Figure 12.
package ftable

import "faulthound/internal/filter"

// Config sizes one table.
type Config struct {
	// Entries is the direct-mapped entry count (the PBFS paper and the
	// FaultHound comparison use 2K entries per table).
	Entries int
	// Policy selects the per-bit state machine (Sticky for PBFS,
	// Biased2 for PBFS-biased).
	Policy filter.Policy
	// ClearInterval, if nonzero, flash-clears all filters every that
	// many lookups (required for sticky counters to regain coverage).
	ClearInterval uint64
}

// DefaultPBFS returns the configuration of the original PBFS: 2K
// entries of one-bit sticky counters with a periodic flash clear.
func DefaultPBFS() Config {
	return Config{Entries: 2048, Policy: filter.Sticky, ClearInterval: 1 << 18}
}

// DefaultBiased returns PBFS-biased: the same table with the paper's
// biased two-bit state machine and no periodic clear.
func DefaultBiased() Config {
	return Config{Entries: 2048, Policy: filter.Biased2}
}

// Stats counts table activity for the harness and energy model.
type Stats struct {
	Lookups     uint64
	Triggers    uint64
	Installs    uint64 // first-touch initializations
	FlashClears uint64
}

// Table is one PC-indexed filter table.
type Table struct {
	cfg     Config
	filters []filter.Filter
	used    []bool
	stats   Stats
}

// New creates a table from cfg.
func New(cfg Config) *Table {
	if cfg.Entries <= 0 {
		panic("ftable: need at least one entry")
	}
	t := &Table{
		cfg:     cfg,
		filters: make([]filter.Filter, cfg.Entries),
		used:    make([]bool, cfg.Entries),
	}
	for i := range t.filters {
		t.filters[i] = filter.Make(cfg.Policy, 0)
	}
	return t
}

// Config returns the table configuration.
func (t *Table) Config() Config { return t.cfg }

// Stats returns a snapshot of the counters.
func (t *Table) Stats() Stats { return t.stats }

// Lookup checks value v against the filter selected by pc and updates
// it as part of the lookup. It returns whether the value fell outside
// the entry's neighborhood (a trigger) and the mismatching bit mask.
func (t *Table) Lookup(pc, v uint64) (trigger bool, mismatch uint64) {
	t.stats.Lookups++
	if t.cfg.ClearInterval != 0 && t.stats.Lookups%t.cfg.ClearInterval == 0 {
		t.FlashClear()
	}
	i := int(pc % uint64(t.cfg.Entries))
	f := &t.filters[i]
	if !t.used[i] {
		f.Reset(v)
		t.used[i] = true
		t.stats.Installs++
		return false, 0
	}
	mismatch = f.Match(v)
	f.Observe(v)
	if mismatch != 0 {
		t.stats.Triggers++
		return true, mismatch
	}
	return false, 0
}

// FlashClear resets every filter's bits to "unchanging", keeping
// previous values (PBFS's periodic clear).
func (t *Table) FlashClear() {
	for i := range t.filters {
		if t.used[i] {
			t.filters[i].FlashClear()
		}
	}
	t.stats.FlashClears++
}

// Clone returns an independent deep copy. The filter bank is a value
// slice, so this is two bulk copies and no per-entry allocation.
func (t *Table) Clone() *Table {
	return &Table{
		cfg:     t.cfg,
		filters: append([]filter.Filter(nil), t.filters...),
		used:    append([]bool(nil), t.used...),
		stats:   t.stats,
	}
}

// CloneInto overwrites dst with a deep copy of t, reusing dst's slice
// capacity when the geometry matches — the per-injection snapshot path.
func (t *Table) CloneInto(dst *Table) {
	filters, used := dst.filters, dst.used
	*dst = *t
	dst.filters = append(filters[:0], t.filters...)
	dst.used = append(used[:0], t.used...)
}
