package ftable

import (
	"testing"
	"testing/quick"

	"faulthound/internal/filter"
)

func small(policy filter.Policy) Config {
	return Config{Entries: 16, Policy: policy}
}

func TestFirstTouchInstallsWithoutTrigger(t *testing.T) {
	tb := New(small(filter.Sticky))
	if trig, _ := tb.Lookup(100, 0xabc); trig {
		t.Fatal("first touch must not trigger")
	}
	if tb.Stats().Installs != 1 {
		t.Fatalf("installs = %d", tb.Stats().Installs)
	}
}

func TestSamePCSameValueNoTrigger(t *testing.T) {
	tb := New(small(filter.Sticky))
	tb.Lookup(100, 0xabc)
	if trig, _ := tb.Lookup(100, 0xabc); trig {
		t.Fatal("repeat value must not trigger")
	}
}

func TestChangedValueTriggersOnce(t *testing.T) {
	tb := New(small(filter.Sticky))
	tb.Lookup(100, 0b0000)
	trig, mask := tb.Lookup(100, 0b0001)
	if !trig || mask != 1 {
		t.Fatalf("trigger=%v mask=%b", trig, mask)
	}
	// Sticky: the bit saturates at changing; later flips never trigger.
	for i := 0; i < 10; i++ {
		if trig, _ := tb.Lookup(100, uint64(i%2)); trig {
			t.Fatal("sticky counter must not re-trigger until clear")
		}
	}
}

func TestPCSpreadingSeparatesSimilarValues(t *testing.T) {
	// The PC-indexed weakness FaultHound fixes: two instructions with
	// identical value streams learn independently, so both trigger.
	tb := New(small(filter.Biased2))
	tb.Lookup(1, 0x1000)
	tb.Lookup(2, 0x1000)
	t1, _ := tb.Lookup(1, 0x1008)
	t2, _ := tb.Lookup(2, 0x1008)
	if !t1 || !t2 {
		t.Fatal("both PC entries should trigger independently (no clustering)")
	}
}

func TestDirectMappedAliasing(t *testing.T) {
	tb := New(small(filter.Biased2))
	tb.Lookup(5, 0)                  // entry 5
	trig, _ := tb.Lookup(21, 0xffff) // 21 % 16 == 5: aliases
	if !trig {
		t.Fatal("aliased PC with a far value should trigger")
	}
}

func TestPeriodicClearRestoresDetection(t *testing.T) {
	cfg := small(filter.Sticky)
	cfg.ClearInterval = 8
	tb := New(cfg)
	tb.Lookup(3, 0)
	tb.Lookup(3, 1) // bit 0 goes sticky-changing
	for i := 0; i < 10; i++ {
		tb.Lookup(3, 1) // stable; crosses the clear interval
	}
	if tb.Stats().FlashClears == 0 {
		t.Fatal("expected a periodic clear")
	}
	// After the clear the counters are unchanging again: a flip triggers.
	if trig, _ := tb.Lookup(3, 0); !trig {
		t.Fatal("flip after clear should trigger again")
	}
}

func TestCloneIndependence(t *testing.T) {
	tb := New(small(filter.Biased2))
	tb.Lookup(7, 100)
	c := tb.Clone()
	c.Lookup(7, 0xffffffff)
	if tb.Stats().Lookups != 1 {
		t.Fatal("clone lookup leaked into original")
	}
	if trig, _ := tb.Lookup(7, 100); trig {
		t.Fatal("original entry disturbed by clone")
	}
}

func TestPanicsOnZeroEntries(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{})
}

// Property: looking up the same (pc, value) twice in a row never
// triggers the second time.
func TestRepeatNeverTriggersProperty(t *testing.T) {
	f := func(pairs []struct {
		PC uint16
		V  uint64
	}) bool {
		tb := New(small(filter.Biased2))
		for _, p := range pairs {
			tb.Lookup(uint64(p.PC), p.V)
			if trig, _ := tb.Lookup(uint64(p.PC), p.V); trig {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: triggers never exceed lookups, and installs never exceed
// the entry count.
func TestStatsBoundsProperty(t *testing.T) {
	f := func(vals []uint64) bool {
		tb := New(small(filter.Sticky))
		for i, v := range vals {
			tb.Lookup(uint64(i), v)
		}
		s := tb.Stats()
		return s.Triggers <= s.Lookups && s.Installs <= 16
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
