package server

import (
	"net/http"
	"os"
	"path/filepath"
	"sync"

	"faulthound/internal/campaign"
	"faulthound/internal/contract"
	"faulthound/internal/fault"
	"faulthound/internal/pipeline"
	"faulthound/internal/report"
)

// reportMu single-flights sidecar generation: two concurrent report
// requests for the same fresh bundle must not both replay it. The
// critical section re-checks the cache, so losers serve the winner's
// files.
var reportMu sync.Mutex

// handleReport serves a completed job's detector-quality report
// (docs/OBSERVABILITY.md "Quality reports"): quality.json by default,
// quality.md with ?format=md. The report is a derived sidecar under
// <bundle>/report/ — generated on first request (replaying detected
// injections through the shared prepared cache for latencies) and
// served from disk afterwards, exactly the files fhreport bundle
// writes. 409 until the job is done: the report is a pure function of
// a complete bundle.
func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	j := s.jobFor(w, r)
	if j == nil {
		return
	}
	j.mu.Lock()
	state := j.state
	j.mu.Unlock()
	if state != StateDone {
		writeError(w, http.StatusConflict, "job is "+state+"; the quality report needs a complete bundle")
		return
	}

	name := contract.QualityJSONName
	ctype := "application/json"
	if r.URL.Query().Get("format") == "md" {
		name = contract.QualityMDName
		ctype = "text/markdown; charset=utf-8"
	}
	path := filepath.Join(j.dir, contract.ReportDirName, name)
	if _, err := os.Stat(path); err != nil {
		if err := s.generateReport(j); err != nil {
			writeError(w, http.StatusInternalServerError, "generating report: "+err.Error())
			return
		}
	}
	w.Header().Set("Content-Type", ctype)
	http.ServeFile(w, r, path)
}

// generateReport writes a job bundle's report sidecar, sharing the
// daemon's golden-preparation cache with the campaign engine.
func (s *Server) generateReport(j *job) error {
	reportMu.Lock()
	defer reportMu.Unlock()
	if _, err := os.Stat(filepath.Join(j.dir, contract.ReportDirName, contract.QualityJSONName)); err == nil {
		return nil // lost the race; the winner's sidecar serves
	}
	man, err := campaign.ReadManifest(j.dir)
	if err != nil {
		return err
	}
	rep := report.NewReplayer(man, s.cfg.Factory)
	rep.Prepare = func(bench, schemeSpec string, mk func() *pipeline.Core, cfg fault.Config) (*fault.Prepared, error) {
		return s.prepared.Get(fault.PreparedKey{Bench: bench, Scheme: schemeSpec, Cfg: cfg}, mk)
	}
	q, err := report.Generate(j.dir, report.Options{Latency: rep})
	if err != nil {
		return err
	}
	_, _, err = report.WriteFiles(j.dir, q)
	return err
}
