package server

import (
	"sync"
	"time"
)

// TokenBucket is the daemon's submission admission gate: Allow spends
// one token, tokens refill at Rate per second up to Burst. A drained
// bucket turns submissions into structured 429s at the HTTP layer
// (counted in fh_admission_rejects_total{reason="rate"}), shielding
// the queue — and the engines behind it — from submission storms.
type TokenBucket struct {
	rate  float64
	burst float64

	// now overrides time.Now in tests.
	now func() time.Time

	mu     sync.Mutex
	tokens float64
	last   time.Time
}

// NewTokenBucket builds a full bucket admitting rate submissions per
// second with bursts up to burst. Non-positive rate or burst are
// clamped to minimal sane values (callers gate "off" by not
// constructing a bucket at all).
func NewTokenBucket(rate float64, burst int) *TokenBucket {
	if rate <= 0 {
		rate = 1
	}
	if burst <= 0 {
		burst = 1
	}
	b := &TokenBucket{rate: rate, burst: float64(burst), now: time.Now}
	b.tokens = b.burst
	b.last = b.now()
	return b
}

// refillLocked advances the bucket to now.
func (b *TokenBucket) refillLocked() {
	now := b.now()
	b.tokens += now.Sub(b.last).Seconds() * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = now
}

// Allow spends one token if available.
func (b *TokenBucket) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked()
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// RetryAfter reports how long until the next token accrues — the
// Retry-After hint on a 429.
func (b *TokenBucket) RetryAfter() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked()
	if b.tokens >= 1 {
		return 0
	}
	return time.Duration((1 - b.tokens) / b.rate * float64(time.Second))
}
