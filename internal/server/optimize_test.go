package server

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"faulthound/internal/contract"
	"faulthound/internal/harness"
)

// TestOptimizeEndpoint drives POST /v1/optimize end to end: a small
// seeded search over a generated workload, a cached repeat that must
// return identical points, contract-valid artifacts on disk, and a
// rescan that must not mistake the optimize cache for jobs.
func TestOptimizeEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real injections")
	}
	o := harness.QuickOptions()
	o.Fault.Injections = 48
	cfg := testConfig(t)
	cfg.BaseFault = o.Fault
	cfg.Timing = o.TimingRunner()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain(context.Background())
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	cl := NewClient(ts.URL)
	ctx := context.Background()

	req := OptimizeRequest{
		Benchmarks: []string{"gen?seg=16k"},
		Schemes:    []string{"faulthound?tcam=8"},
		Budget:     3,
		Seed:       7,
		Params:     []string{"tcam"},
	}
	rep, err := cl.Optimize(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SchemaVersion != "faulthound.pareto/v1" {
		t.Errorf("schema_version = %q", rep.SchemaVersion)
	}
	if len(rep.Front()) == 0 || rep.Evaluated == 0 || rep.Evaluated > 3 {
		t.Errorf("degenerate result: %d front, %d evaluated", len(rep.Front()), rep.Evaluated)
	}

	// The repeat must be a cache hit with identical points.
	rep2, err := cl.Optimize(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Points) != len(rep.Points) {
		t.Fatalf("cached repeat returned %d points, want %d", len(rep2.Points), len(rep.Points))
	}
	for i := range rep.Points {
		if rep.Points[i] != rep2.Points[i] {
			t.Errorf("point %d differs on cached repeat: %+v vs %+v", i, rep.Points[i], rep2.Points[i])
		}
	}
	if got := s.mOptHits.Get(); got != 1 {
		t.Errorf("optimize cache hits = %v, want 1", got)
	}

	// Artifacts land under Root/optimize/<hash> and conform.
	entries, err := os.ReadDir(filepath.Join(cfg.Root, OptimizeDirName))
	if err != nil || len(entries) != 1 {
		t.Fatalf("optimize cache dirs = %v, %v", entries, err)
	}
	dir := filepath.Join(cfg.Root, OptimizeDirName, entries[0].Name())
	if err := contract.ValidateParetoDir(dir); err != nil {
		t.Errorf("cached artifacts: %v", err)
	}

	// A restart's rescan must not treat the optimize cache as jobs.
	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Drain(context.Background())
	if jobs := s2.Jobs(); len(jobs) != 0 {
		t.Errorf("rescan invented %d jobs from the optimize cache", len(jobs))
	}

	// Bad requests are 400s, not searches.
	for name, bad := range map[string]OptimizeRequest{
		"no benchmarks":    {Schemes: []string{"faulthound"}},
		"unknown scheme":   {Benchmarks: []string{"gen?seg=16k"}, Schemes: []string{"nope"}},
		"baseline only":    {Benchmarks: []string{"gen?seg=16k"}, Schemes: []string{"baseline"}},
		"unknown workload": {Benchmarks: []string{"nope"}, Schemes: []string{"faulthound"}},
		"bad weights":      {Benchmarks: []string{"gen?seg=16k"}, Schemes: []string{"faulthound"}, Weights: "sdc=1"},
	} {
		if _, err := cl.Optimize(ctx, bad); !isHTTPStatus(err, http.StatusBadRequest) {
			t.Errorf("%s: err = %v, want 400", name, err)
		}
	}
}

// TestOptimizeUnavailable checks the endpoint answers 503 when the
// daemon has no timing runner (a worker-role daemon, or a config that
// never wired one).
func TestOptimizeUnavailable(t *testing.T) {
	s, err := New(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/optimize", "application/json",
		bytes.NewReader([]byte(`{"benchmarks":["bzip2"],"schemes":["faulthound"]}`)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("status = %d, want 503", resp.StatusCode)
	}
}

// isHTTPStatus reports whether err is an apiError with the given code.
func isHTTPStatus(err error, code int) bool {
	ae, ok := err.(*apiError)
	return ok && ae.Code == code
}
