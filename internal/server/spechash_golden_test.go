package server

import (
	"encoding/json"
	"os"
	"testing"

	"faulthound/internal/campaign"
	"faulthound/internal/fault"
	"faulthound/internal/scheme"
)

// TestSpecHashGolden pins the spec hash of every plain scheme name
// against values captured before the scheme registry existed, when
// cells carried bare strings. These hashes are job identities: the
// daemon's on-disk result cache and published bundle URLs key on them,
// so a plain scheme name must hash byte-identically forever. The
// golden file is testdata/spechash_golden.json; it must never be
// regenerated to make this test pass.
func TestSpecHashGolden(t *testing.T) {
	b, err := os.ReadFile("testdata/spechash_golden.json")
	if err != nil {
		t.Fatal(err)
	}
	var golden map[string]string
	if err := json.Unmarshal(b, &golden); err != nil {
		t.Fatal(err)
	}

	base := fault.DefaultConfig()
	specFor := func(schemes []string) campaign.Spec {
		return campaign.Spec{
			Benchmarks: []string{"bzip2", "mcf"},
			Schemes:    schemes,
			Fault:      base,
		}
	}

	for _, name := range scheme.Names() {
		want, ok := golden[name]
		if !ok {
			t.Errorf("scheme %s has no golden hash — a NEW scheme needs a golden entry (hash it once and append); an EXISTING scheme missing here means the golden file was damaged", name)
			continue
		}
		norm, err := NormalizeSpec(specFor([]string{name}), base)
		if err != nil {
			t.Errorf("scheme %s: %v", name, err)
			continue
		}
		if got := SpecHash(norm, "golden-commit"); got != want {
			t.Errorf("scheme %s: spec hash %s, want golden %s — plain-name spec hashes are frozen (cache keys, bundle URLs)", name, got, want)
		}
	}

	// A multi-benchmark, multi-scheme spec exercises cell enumeration
	// order end to end.
	multi := campaign.Spec{
		Benchmarks: []string{"bzip2", "mcf", "astar"},
		Schemes:    []string{"pbfs", "faulthound", "fh-be-nolsq"},
		Fault:      base,
	}
	norm, err := NormalizeSpec(multi, base)
	if err != nil {
		t.Fatal(err)
	}
	if got := SpecHash(norm, "golden-commit"); got != golden["multi"] {
		t.Errorf("multi-cell spec hash %s, want golden %s", got, golden["multi"])
	}
}
