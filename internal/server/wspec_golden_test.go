package server

import (
	"encoding/json"
	"os"
	"testing"

	"faulthound/internal/campaign"
	"faulthound/internal/fault"
)

// wspecGoldenSpecs are the generated-workload submissions whose spec
// hashes are frozen. Keys are golden-file entries; the benchmark lists
// deliberately mix spellings that must canonicalize to one hash
// (parameter order, elided defaults, size suffixes, sweeps).
var wspecGoldenSpecs = map[string][]string{
	"gen-plain":    {"gen"},
	"gen-defaults": {"gen?stride=8,vlocal=0.9,seg=64k"}, // canonicalizes to "gen"
	"gen-stride64": {"gen?stride=64"},
	"gen-full":     {"gen?plant=3,chase=4,seg=262144,phase=2,vlocal=0.85,stride=64"},
	"gen-sweep":    {"gen?stride=8|64"},
	"mixed":        {"bzip2", "gen?stride=64", "mcf"},
	"replay-trace": {"replay?trace=stream.fhws"},
}

// TestWspecHashGolden pins the spec hash of generated-workload
// submissions against values captured when internal/wgen was
// introduced. Like scheme spec hashes (TestSpecHashGolden), these are
// job identities: the daemon's result cache and bundle URLs key on
// them, so a canonical workload spec must hash byte-identically
// forever. The golden file is testdata/wspec_golden.json; it must
// never be regenerated to make this test pass — a mismatch means the
// workload canonicalization or hash changed, which orphans cached
// results.
func TestWspecHashGolden(t *testing.T) {
	b, err := os.ReadFile("testdata/wspec_golden.json")
	if err != nil {
		t.Fatal(err)
	}
	var golden map[string]string
	if err := json.Unmarshal(b, &golden); err != nil {
		t.Fatal(err)
	}
	if len(golden) != len(wspecGoldenSpecs) {
		t.Errorf("golden file has %d entries, test has %d — new entries may be appended (hash once), never rewritten", len(golden), len(wspecGoldenSpecs))
	}

	base := fault.DefaultConfig()
	for name, benches := range wspecGoldenSpecs {
		want, ok := golden[name]
		if !ok {
			t.Errorf("case %s has no golden hash — a NEW case needs a golden entry (hash it once and append)", name)
			continue
		}
		norm, err := NormalizeSpec(campaign.Spec{
			Benchmarks: benches,
			Schemes:    []string{"faulthound"},
			Fault:      base,
		}, base)
		if err != nil {
			t.Errorf("case %s: %v", name, err)
			continue
		}
		if got := SpecHash(norm, "golden-commit"); got != want {
			t.Errorf("case %s: spec hash %s, want golden %s — canonical workload spec hashes are frozen (cache keys, bundle URLs)", name, got, want)
		}
	}

	// The two spellings of the all-defaults gen workload are one job.
	if golden["gen-plain"] != golden["gen-defaults"] {
		t.Error("gen-plain and gen-defaults differ: default-elision is part of the frozen canonical form")
	}
}
