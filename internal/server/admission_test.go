package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestTokenBucket drives the bucket against a fake clock: burst spends
// down, refill accrues at the configured rate, RetryAfter predicts the
// next token.
func TestTokenBucket(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewTokenBucket(1, 2)
	b.now = func() time.Time { return now }
	b.last = now // rebase the real-clock state onto the fake clock

	if !b.Allow() || !b.Allow() {
		t.Fatal("burst of 2 rejected")
	}
	if b.Allow() {
		t.Fatal("empty bucket admitted")
	}
	if ra := b.RetryAfter(); ra <= 0 || ra > time.Second {
		t.Fatalf("RetryAfter on empty bucket = %v, want (0, 1s]", ra)
	}
	now = now.Add(1500 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("refilled token rejected")
	}
	if b.Allow() {
		t.Fatal("bucket refilled faster than its rate")
	}
	// Refill clamps at burst.
	now = now.Add(time.Hour)
	if !b.Allow() || !b.Allow() {
		t.Fatal("full bucket rejected its burst")
	}
	if b.Allow() {
		t.Fatal("bucket exceeded its burst after a long idle")
	}
}

// TestAdmissionRateLimit429 submits past the admission gate's burst
// and checks the structured rejection: HTTP 429, Retry-After header,
// machine-readable body, and the labeled reject counter.
func TestAdmissionRateLimit429(t *testing.T) {
	cfg := testConfig(t)
	cfg.RateLimit = 0.001 // one token per ~17 minutes: no refill mid-test
	cfg.RateBurst = 1
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func() *http.Response {
		b, _ := json.Marshal(testSpec(4))
		resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	resp := post()
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: HTTP %d, want 202", resp.StatusCode)
	}

	resp = post()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second submit: HTTP %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 has no Retry-After header")
	}
	var body struct {
		Error             string `json:"error"`
		Reason            string `json:"reason"`
		RetryAfterSeconds int    `json:"retry_after_seconds"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Reason != "rate" || body.Error == "" || body.RetryAfterSeconds < 1 {
		t.Fatalf("429 body %+v, want reason=rate with error and retry_after_seconds", body)
	}

	// The labeled counter moved, and both reasons are pre-registered.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(mresp.Body)
	text := buf.String()
	if !strings.Contains(text, `fh_admission_rejects_total{reason="rate"} 1`) {
		t.Fatalf("metrics missing rate reject count:\n%s", text)
	}
	if !strings.Contains(text, `fh_admission_rejects_total{reason="queue_full"} 0`) {
		t.Fatalf("metrics missing pre-registered queue_full series:\n%s", text)
	}
}

// TestHealthz checks the identity endpoint in both directions: a
// default daemon is a ready "single"; a coordinator whose readiness
// hook says no serves 503 with its detail merged in.
func TestHealthz(t *testing.T) {
	s, err := New(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(url string) (int, map[string]any) {
		resp, err := http.Get(url + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body
	}

	code, body := get(ts.URL)
	if code != http.StatusOK {
		t.Fatalf("healthz: HTTP %d, want 200", code)
	}
	if body["role"] != "single" || body["ready"] != true || body["status"] != "ok" {
		t.Fatalf("healthz body %+v, want ready single", body)
	}
	if body["go"] == "" || body["commit"] != "test-commit" {
		t.Fatalf("healthz body %+v, want build info", body)
	}

	cfg2 := testConfig(t)
	cfg2.Role = "coordinator"
	cfg2.Ready = func() (bool, map[string]any) {
		return false, map[string]any{"workers_alive": 0}
	}
	s2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Drain(context.Background())
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()

	code, body = get(ts2.URL)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("unready healthz: HTTP %d, want 503", code)
	}
	if body["role"] != "coordinator" || body["ready"] != false || body["workers_alive"] != float64(0) {
		t.Fatalf("unready healthz body %+v", body)
	}
}
