package server

import (
	"strings"
	"sync"

	"faulthound/internal/obs"
	"faulthound/internal/server/metrics"
)

// Metric names and help strings for the per-injection series. They are
// package-level so runJob can register every cell's series eagerly (a
// scrape before the first observation still sees the zero-count
// buckets the smoke test asserts on).
const (
	injDurName  = "fhserved_injection_duration_seconds"
	injDurHelp  = "Wall time of individual faulty runs."
	detLatName  = "fhserved_detection_latency_cycles"
	detLatHelp  = "Cycles from fault injection to the first detector action."
	outcomeName = "fhserved_injection_outcomes_total"
	outcomeHelp = "Injections by classified outcome."
)

// injDurBuckets spans 1ms..8s doubling; a faulty run is a bounded
// replayed window, so the tail is short.
func injDurBuckets() []float64 { return metrics.ExpBuckets(0.001, 2, 14) }

// detLatBuckets spans 1..4096 cycles doubling; FaultHound's detection
// window is a few pipeline drains at most.
func detLatBuckets() []float64 { return metrics.ExpBuckets(1, 2, 13) }

// metricsSink folds a campaign engine's lifecycle event stream into
// the daemon's registry. One instance serves one engine run: tracks
// are that engine's worker indices, so per-track state (which cell the
// open injection span belongs to, the injection cycle) is keyed by
// Event.Track. All methods are called from engine worker goroutines.
type metricsSink struct {
	reg      *metrics.Value // fhserved_injections_inflight gauge
	registry *metrics.Registry

	mu     sync.Mutex
	tracks map[int]*trackState
}

type trackState struct {
	bench, scheme string
	injectCycle   uint64
	haveInject    bool
}

func newMetricsSink(reg *metrics.Registry, inflight *metrics.Value) *metricsSink {
	return &metricsSink{reg: inflight, registry: reg, tracks: make(map[int]*trackState)}
}

func (m *metricsSink) Event(ev obs.Event) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.tracks[ev.Track]
	if st == nil {
		st = &trackState{}
		m.tracks[ev.Track] = st
	}
	switch {
	case ev.Kind == obs.KindBegin && ev.Name == "injection":
		st.bench, st.scheme, _ = strings.Cut(ev.Arg, "/")
		st.haveInject = false
		m.reg.Add(1)
	case ev.Kind == obs.KindInstant && ev.Name == "inject":
		st.injectCycle, st.haveInject = ev.Cycle, true
	case ev.Kind == obs.KindInstant && ev.Name == "detect":
		if st.haveInject && ev.Cycle >= st.injectCycle {
			m.registry.HistogramWith(detLatName, detLatHelp, detLatBuckets(),
				map[string]string{"bench": st.bench, "scheme": st.scheme}).
				Observe(float64(ev.Cycle - st.injectCycle))
		}
	case ev.Kind == obs.KindEnd && ev.Name == "injection":
		m.reg.Add(-1)
		if ev.Arg == "cancelled" {
			return
		}
		labels := map[string]string{"bench": st.bench, "scheme": st.scheme}
		m.registry.HistogramWith(injDurName, injDurHelp, injDurBuckets(), labels).
			Observe(ev.Dur.Seconds())
		m.registry.CounterWith(outcomeName, outcomeHelp,
			map[string]string{"bench": st.bench, "scheme": st.scheme, "outcome": ev.Arg}).Inc()
	}
}
