package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"faulthound/internal/campaign"
)

// Client talks to a campaign-serving daemon. It is the programmatic
// form of the HTTP API; cmd/fhcampaign -addr is built on it.
type Client struct {
	// Base is the daemon's base URL, e.g. "http://localhost:8080".
	Base string
	// HTTP overrides the transport (nil means http.DefaultClient).
	HTTP *http.Client
}

// NewClient normalizes addr ("host:port" or a full URL) into a Client.
func NewClient(addr string) *Client {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return &Client{Base: strings.TrimRight(addr, "/")}
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// apiError is a non-2xx daemon response.
type apiError struct {
	Code int
	Msg  string
}

func (e *apiError) Error() string {
	return fmt.Sprintf("server: HTTP %d: %s", e.Code, e.Msg)
}

func decodeError(resp *http.Response) error {
	defer resp.Body.Close()
	var body struct {
		Error string `json:"error"`
	}
	b, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if json.Unmarshal(b, &body) != nil || body.Error == "" {
		body.Error = strings.TrimSpace(string(b))
	}
	return &apiError{Code: resp.StatusCode, Msg: body.Error}
}

// Submit posts a campaign spec and returns the created (or
// deduplicated) job's status.
func (c *Client) Submit(ctx context.Context, spec campaign.Spec) (*JobStatus, error) {
	b, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+"/v1/campaigns", bytes.NewReader(b))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return nil, decodeError(resp)
	}
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Status fetches a job's current status.
func (c *Client) Status(ctx context.Context, id string) (*JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/v1/campaigns/"+id, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Watch consumes the job's JSONL event stream, invoking onEvent per
// line (nil is allowed), until the stream ends; it then returns the
// job's final status.
func (c *Client) Watch(ctx context.Context, id string, onEvent func(Event)) (*JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/v1/campaigns/"+id+"/events", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			continue
		}
		if onEvent != nil {
			onEvent(ev)
		}
	}
	resp.Body.Close()
	if err := sc.Err(); err != nil && ctx.Err() == nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return c.Status(ctx, id)
}

// BundleFile fetches one artifact file of a completed job.
func (c *Client) BundleFile(ctx context.Context, id, name string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/v1/campaigns/"+id+"/bundle/"+name, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

// Summary fetches and parses a completed job's summary.json.
func (c *Client) Summary(ctx context.Context, id string) (*campaign.Summary, error) {
	b, err := c.BundleFile(ctx, id, campaign.SummaryName)
	if err != nil {
		return nil, err
	}
	var sum campaign.Summary
	if err := json.Unmarshal(b, &sum); err != nil {
		return nil, err
	}
	return &sum, nil
}
