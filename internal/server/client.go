package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"

	"faulthound/internal/campaign"
	"faulthound/internal/search"
)

// Client talks to a campaign-serving daemon. It is the programmatic
// form of the HTTP API; cmd/fhcampaign -addr is built on it.
//
// With Retries > 0 the client rides out transient failures: Submit and
// Status repeat on connection errors, 429s, and 5xx responses with
// jittered exponential backoff (Submit is safe to repeat — the spec
// hash deduplicates), and Watch reconnects a dropped event stream and
// resumes from the job's live state. 429s honor the server's
// Retry-After hint.
type Client struct {
	// Base is the daemon's base URL, e.g. "http://localhost:8080".
	Base string
	// HTTP overrides the transport (nil means http.DefaultClient).
	HTTP *http.Client
	// Retries is the number of additional attempts after a transient
	// failure; 0 means fail fast.
	Retries int
	// RetryBase is the first backoff delay, doubling per attempt with
	// ±50% jitter, capped at 5s. Zero means 200ms.
	RetryBase time.Duration

	// sleep overrides the backoff wait in tests.
	sleep func(context.Context, time.Duration) error
}

// NewClient normalizes addr ("host:port" or a full URL) into a Client.
func NewClient(addr string) *Client {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return &Client{Base: strings.TrimRight(addr, "/")}
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// apiError is a non-2xx daemon response.
type apiError struct {
	Code int
	Msg  string
	// RetryAfter is the server's Retry-After hint (429s), if any.
	RetryAfter time.Duration
}

func (e *apiError) Error() string {
	return fmt.Sprintf("server: HTTP %d: %s", e.Code, e.Msg)
}

func decodeError(resp *http.Response) error {
	defer resp.Body.Close()
	var body struct {
		Error string `json:"error"`
	}
	b, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if json.Unmarshal(b, &body) != nil || body.Error == "" {
		body.Error = strings.TrimSpace(string(b))
	}
	e := &apiError{Code: resp.StatusCode, Msg: body.Error}
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
		e.RetryAfter = time.Duration(secs) * time.Second
	}
	return e
}

// transient reports whether err is worth retrying: any transport-level
// failure (connection refused, reset), plus 429 and 5xx responses.
func transient(err error) bool {
	var ae *apiError
	if errors.As(err, &ae) {
		return ae.Code == http.StatusTooManyRequests || ae.Code >= 500
	}
	return true
}

// backoff waits out attempt's delay: floor (a server Retry-After hint,
// may be zero) or jittered exponential, whichever is larger.
func (c *Client) backoff(ctx context.Context, attempt int, floor time.Duration) error {
	base := c.RetryBase
	if base <= 0 {
		base = 200 * time.Millisecond
	}
	d := base << min(attempt, 10)
	if d > 5*time.Second {
		d = 5 * time.Second
	}
	d = time.Duration(float64(d) * (0.5 + rand.Float64())) // 0.5x–1.5x
	if d < floor {
		d = floor
	}
	if c.sleep != nil {
		return c.sleep(ctx, d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// retry runs op up to 1+Retries times, backing off between transient
// failures.
func (c *Client) retry(ctx context.Context, op func() error) error {
	for attempt := 0; ; attempt++ {
		err := op()
		if err == nil || ctx.Err() != nil || attempt >= c.Retries || !transient(err) {
			return err
		}
		var floor time.Duration
		var ae *apiError
		if errors.As(err, &ae) {
			floor = ae.RetryAfter
		}
		if c.backoff(ctx, attempt, floor) != nil {
			return err
		}
	}
}

// Submit posts a campaign spec and returns the created (or
// deduplicated) job's status. Repeats are harmless: the canonical spec
// hash dedups on the server, so a retried submit attaches to the job
// the lost response created.
func (c *Client) Submit(ctx context.Context, spec campaign.Spec) (*JobStatus, error) {
	b, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	var st *JobStatus
	err = c.retry(ctx, func() error {
		st, err = c.submitOnce(ctx, b)
		return err
	})
	return st, err
}

func (c *Client) submitOnce(ctx context.Context, body []byte) (*JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+"/v1/campaigns", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return nil, decodeError(resp)
	}
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Status fetches a job's current status.
func (c *Client) Status(ctx context.Context, id string) (*JobStatus, error) {
	var st *JobStatus
	err := c.retry(ctx, func() error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/v1/campaigns/"+id, nil)
		if err != nil {
			return err
		}
		resp, err := c.http().Do(req)
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return decodeError(resp)
		}
		defer resp.Body.Close()
		st = new(JobStatus)
		return json.NewDecoder(resp.Body).Decode(st)
	})
	if err != nil {
		return nil, err
	}
	return st, nil
}

// terminalState reports whether a stream may legitimately end at state.
func terminalState(state string) bool {
	switch state {
	case StateDone, StateFailed, StateInterrupted:
		return true
	}
	return false
}

// Watch consumes the job's JSONL event stream, invoking onEvent per
// line (nil is allowed), until the job reaches a terminal state; it
// then returns the job's final status. A stream that dies mid-job
// (daemon restart, proxy hiccup) is reconnected with backoff when
// Retries > 0; a connection that made progress resets the attempt
// budget, so a long campaign survives any number of isolated drops.
func (c *Client) Watch(ctx context.Context, id string, onEvent func(Event)) (*JobStatus, error) {
	for attempt := 0; ; {
		terminal, progressed, err := c.watchOnce(ctx, id, onEvent)
		if terminal {
			return c.Status(ctx, id)
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if err == nil {
			err = io.ErrUnexpectedEOF
		}
		if !transient(err) {
			return nil, err
		}
		if progressed {
			attempt = 0
		}
		if attempt >= c.Retries {
			return nil, fmt.Errorf("server: watching job %s: stream ended before a terminal state: %w", id, err)
		}
		var floor time.Duration
		var ae *apiError
		if errors.As(err, &ae) {
			floor = ae.RetryAfter
		}
		if c.backoff(ctx, attempt, floor) != nil {
			return nil, err
		}
		attempt++
	}
}

// watchOnce consumes one connection's worth of the event stream.
func (c *Client) watchOnce(ctx context.Context, id string, onEvent func(Event)) (terminal, progressed bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/v1/campaigns/"+id+"/events", nil)
	if err != nil {
		return false, false, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return false, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false, false, decodeError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			continue
		}
		progressed = true
		if onEvent != nil {
			onEvent(ev)
		}
		if ev.Type == "state" && terminalState(ev.State) {
			terminal = true
		}
	}
	return terminal, progressed, sc.Err()
}

// BundleFile fetches one artifact file of a completed job.
func (c *Client) BundleFile(ctx context.Context, id, name string) ([]byte, error) {
	var out []byte
	err := c.retry(ctx, func() error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/v1/campaigns/"+id+"/bundle/"+name, nil)
		if err != nil {
			return err
		}
		resp, err := c.http().Do(req)
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return decodeError(resp)
		}
		defer resp.Body.Close()
		out, err = io.ReadAll(resp.Body)
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Optimize runs a Pareto search on the daemon (POST /v1/optimize) and
// returns the resulting report. The call blocks until the search
// finishes; repeats are harmless — the daemon caches results by
// request hash, so a retried request is served from disk.
func (c *Client) Optimize(ctx context.Context, oreq OptimizeRequest) (*search.Report, error) {
	body, err := json.Marshal(oreq)
	if err != nil {
		return nil, err
	}
	var rep *search.Report
	err = c.retry(ctx, func() error {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+"/v1/optimize", bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := c.http().Do(req)
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return decodeError(resp)
		}
		defer resp.Body.Close()
		rep = new(search.Report)
		return json.NewDecoder(resp.Body).Decode(rep)
	})
	if err != nil {
		return nil, err
	}
	return rep, nil
}

// Summary fetches and parses a completed job's summary.json.
func (c *Client) Summary(ctx context.Context, id string) (*campaign.Summary, error) {
	b, err := c.BundleFile(ctx, id, campaign.SummaryName)
	if err != nil {
		return nil, err
	}
	var sum campaign.Summary
	if err := json.Unmarshal(b, &sum); err != nil {
		return nil, err
	}
	return &sum, nil
}
