package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// retryClient returns a client with instant backoff that records every
// sleep it would have taken.
func retryClient(url string, retries int) (*Client, *[]time.Duration) {
	var slept []time.Duration
	c := NewClient(url)
	c.Retries = retries
	c.sleep = func(_ context.Context, d time.Duration) error {
		slept = append(slept, d)
		return nil
	}
	return c, &slept
}

// TestClientSubmitRetry submits against a daemon that fails twice
// (connection reset, then a 503) before accepting — the client must
// ride it out and return the job status from the third attempt.
func TestClientSubmitRetry(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch calls.Add(1) {
		case 1:
			// Kill the connection without a response: the transport
			// surfaces EOF/reset, the classic mid-restart failure.
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Fatal("recorder cannot hijack")
			}
			conn, _, _ := hj.Hijack()
			conn.Close()
		case 2:
			http.Error(w, "restarting", http.StatusServiceUnavailable)
		default:
			w.WriteHeader(http.StatusAccepted)
			json.NewEncoder(w).Encode(JobStatus{ID: "job-1", State: StateQueued})
		}
	}))
	defer ts.Close()

	cl, slept := retryClient(ts.URL, 3)
	st, err := cl.Submit(context.Background(), testSpec(4))
	if err != nil {
		t.Fatalf("submit with retries failed: %v", err)
	}
	if st.ID != "job-1" {
		t.Fatalf("submit returned %+v", st)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3", got)
	}
	if len(*slept) != 2 {
		t.Fatalf("client backed off %d times, want 2 (%v)", len(*slept), *slept)
	}
	// Jittered exponential: each delay is within [0.5x, 1.5x] of its
	// 200ms<<attempt base.
	for i, d := range *slept {
		base := 200 * time.Millisecond << i
		if d < base/2 || d > base*3/2 {
			t.Fatalf("backoff %d was %v, want within [%v, %v]", i, d, base/2, base*3/2)
		}
	}
}

// TestClientSubmitRetryExhausted checks the failure path: a daemon
// that never recovers exhausts the attempt budget and surfaces the
// last error.
func TestClientSubmitRetryExhausted(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		calls.Add(1)
		http.Error(w, "down", http.StatusBadGateway)
	}))
	defer ts.Close()

	cl, _ := retryClient(ts.URL, 2)
	if _, err := cl.Submit(context.Background(), testSpec(4)); err == nil {
		t.Fatal("submit against a dead daemon succeeded")
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3 (1 + 2 retries)", got)
	}
}

// TestClientSubmitNoRetryOn400 checks that permanent rejections are
// not retried: a 400 must fail immediately.
func TestClientSubmitNoRetryOn400(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"bad spec"}`, http.StatusBadRequest)
	}))
	defer ts.Close()

	cl, slept := retryClient(ts.URL, 5)
	if _, err := cl.Submit(context.Background(), testSpec(4)); err == nil {
		t.Fatal("bad spec accepted")
	}
	if calls.Load() != 1 || len(*slept) != 0 {
		t.Fatalf("400 was retried: %d calls, %d sleeps", calls.Load(), len(*slept))
	}
}

// TestClientRetryHonorsRetryAfter checks that a 429's Retry-After hint
// floors the backoff delay.
func TestClientRetryHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "7")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":"rate limited","reason":"rate","retry_after_seconds":7}`)
			return
		}
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(JobStatus{ID: "job-2", State: StateQueued})
	}))
	defer ts.Close()

	cl, slept := retryClient(ts.URL, 1)
	st, err := cl.Submit(context.Background(), testSpec(4))
	if err != nil || st.ID != "job-2" {
		t.Fatalf("submit after 429: %+v, %v", st, err)
	}
	if len(*slept) != 1 || (*slept)[0] < 7*time.Second {
		t.Fatalf("429 backoff %v, want >= 7s from Retry-After", *slept)
	}
}

// TestClientWatchReconnect kills the event stream mid-job (as a daemon
// restart would) and checks the client reconnects and follows the job
// to completion.
func TestClientWatchReconnect(t *testing.T) {
	var streams atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/campaigns/j1/events", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		if streams.Add(1) == 1 {
			// First connection: some progress, then the stream dies
			// without a terminal state.
			enc.Encode(Event{Type: "progress", State: StateRunning, Done: 1, Total: 4})
			enc.Encode(Event{Type: "progress", State: StateRunning, Done: 2, Total: 4})
			return
		}
		enc.Encode(Event{Type: "progress", State: StateRunning, Done: 3, Total: 4})
		enc.Encode(Event{Type: "state", State: StateDone, Done: 4, Total: 4})
	})
	mux.HandleFunc("GET /v1/campaigns/j1", func(w http.ResponseWriter, _ *http.Request) {
		json.NewEncoder(w).Encode(JobStatus{ID: "j1", State: StateDone, Done: 4, Total: 4})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	cl, slept := retryClient(ts.URL, 2)
	var events []Event
	st, err := cl.Watch(context.Background(), "j1", func(ev Event) { events = append(events, ev) })
	if err != nil {
		t.Fatalf("watch with reconnect failed: %v", err)
	}
	if st.State != StateDone {
		t.Fatalf("final state %s, want done", st.State)
	}
	if streams.Load() != 2 {
		t.Fatalf("server saw %d stream connections, want 2", streams.Load())
	}
	if len(events) != 4 {
		t.Fatalf("client saw %d events across reconnect, want 4 (%+v)", len(events), events)
	}
	if len(*slept) != 1 {
		t.Fatalf("client backed off %d times, want 1", len(*slept))
	}
}

// TestClientWatchGivesUp checks the budget: a stream that keeps dying
// without progress fails once retries are exhausted.
func TestClientWatchGivesUp(t *testing.T) {
	var streams atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/campaigns/j2/events", func(w http.ResponseWriter, _ *http.Request) {
		streams.Add(1)
		// Empty stream, no terminal event: connect-then-die forever.
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	cl, _ := retryClient(ts.URL, 2)
	if _, err := cl.Watch(context.Background(), "j2", nil); err == nil {
		t.Fatal("watch against a dying stream succeeded")
	}
	if streams.Load() != 3 {
		t.Fatalf("server saw %d stream connections, want 3 (1 + 2 retries)", streams.Load())
	}
}
