package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"faulthound/internal/buildinfo"
	"faulthound/internal/campaign"
	"faulthound/internal/scheme"
	"faulthound/internal/wgen"
	"faulthound/internal/workload"
)

// bundleFiles is the whitelist the bundle endpoint serves — exactly
// the artifact set a campaign writes (plus the daemon's status file is
// deliberately excluded).
var bundleFiles = []string{
	campaign.ManifestName,
	campaign.JournalName,
	campaign.ResultsName,
	campaign.SummaryName,
	campaign.ReportName,
}

// Handler returns the daemon's HTTP API:
//
//	POST /v1/campaigns              submit a spec (202 new, 200 dedup/cache hit)
//	GET  /v1/campaigns              list jobs
//	GET  /v1/campaigns/{id}         job status
//	GET  /v1/campaigns/{id}/events  progress stream (JSONL, or SSE via Accept)
//	GET  /v1/campaigns/{id}/bundle/ bundle file list; append a file name to fetch it
//	GET  /v1/campaigns/{id}/report  detector-quality report (?format=md for markdown)
//	GET  /v1/jobs/{id}/report       alias of the campaign report route
//	POST /v1/optimize               run (or serve cached) a Pareto search (docs/OPTIMIZE.md)
//	GET  /v1/schemes                scheme registry metadata (names, parameters)
//	GET  /v1/workloads              workload catalogue (benchmarks + generators)
//	GET  /metrics                   Prometheus text format
//	GET  /healthz                   liveness
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/campaigns", s.handleSubmit)
	mux.HandleFunc("POST /v1/optimize", s.handleOptimize)
	mux.HandleFunc("GET /v1/campaigns", s.handleList)
	mux.HandleFunc("GET /v1/schemes", s.handleSchemes)
	mux.HandleFunc("GET /v1/workloads", s.handleWorkloads)
	mux.HandleFunc("GET /v1/campaigns/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/campaigns/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/campaigns/{id}/bundle/", s.handleBundleIndex)
	mux.HandleFunc("GET /v1/campaigns/{id}/bundle/{file}", s.handleBundleFile)
	mux.HandleFunc("GET /v1/campaigns/{id}/report", s.handleReport)
	mux.HandleFunc("GET /v1/jobs/{id}/report", s.handleReport)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// handleHealthz reports liveness plus identity: the daemon's cluster
// role, build info, and readiness (200 ready, 503 not — load-balancer
// and smoke-test friendly). Config.Ready supplies the verdict and any
// role-specific detail (live worker count, joined state).
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	role := s.cfg.Role
	if role == "" {
		role = "single"
	}
	ready := true
	var detail map[string]any
	if s.cfg.Ready != nil {
		ready, detail = s.cfg.Ready()
	}
	body := map[string]any{
		"status":         "ok",
		"ready":          ready,
		"role":           role,
		"go":             runtime.Version(),
		"commit":         s.cfg.GitCommit,
		"version":        buildinfo.Resolve().Version,
		"generator":      buildinfo.Generator(),
		"uptime_seconds": int64(time.Since(s.start).Seconds()),
	}
	code := http.StatusOK
	if !ready {
		body["status"] = "unavailable"
		code = http.StatusServiceUnavailable
	}
	for k, v := range detail {
		body[k] = v
	}
	writeJSON(w, code, body)
}

// reject429 answers an admission-gate rejection: Retry-After header,
// machine-readable JSON body, and the labeled reject counter.
func (s *Server) reject429(w http.ResponseWriter, reason, msg string, retry time.Duration) {
	s.rejectAdmission(reason)
	secs := int(retry / time.Second)
	if retry%time.Second != 0 || secs < 1 {
		secs++ // round up; Retry-After is integer seconds and 0 is useless
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeJSON(w, http.StatusTooManyRequests, map[string]any{
		"error":               msg,
		"reason":              reason,
		"retry_after_seconds": secs,
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	b, err := campaign.MarshalJSON(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(b)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.admission != nil && !s.admission.Allow() {
		s.reject429(w, "rate", "submission rate limit exceeded", s.admission.RetryAfter())
		return
	}
	var spec campaign.Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad spec JSON: "+err.Error())
		return
	}
	j, hit, err := s.Submit(spec)
	switch {
	case err == nil:
	case isBadSpec(err):
		// Unknown or malformed specs get the structured form: the
		// error plus the matching registry's name list, so a client
		// can correct the submission without a round trip to the docs.
		if scheme.IsSpecError(err) {
			writeJSON(w, http.StatusBadRequest, map[string]any{
				"error":         err.Error(),
				"known_schemes": scheme.Names(),
			})
			return
		}
		if wgen.IsSpecError(err) {
			writeJSON(w, http.StatusBadRequest, map[string]any{
				"error":           err.Error(),
				"known_workloads": workload.AllNames(),
			})
			return
		}
		writeError(w, http.StatusBadRequest, err.Error())
		return
	case isQueueFull(err):
		s.reject429(w, "queue_full", err.Error(), 5*time.Second)
		return
	default:
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	st := j.status()
	st.CacheHit = hit
	code := http.StatusAccepted
	if hit {
		code = http.StatusOK
	}
	writeJSON(w, code, st)
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.Jobs()})
}

// handleSchemes serves the self-describing registry metadata: every
// scheme name with its help line and typed parameter list.
func (s *Server) handleSchemes(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"schemes": scheme.All()})
}

// handleWorkloads serves the workload catalogue: the fixed benchmarks
// as parameterless entries, then the generated-workload registry with
// its typed parameter lists.
func (s *Server) handleWorkloads(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"workloads": workload.Catalogue()})
}

func (s *Server) jobFor(w http.ResponseWriter, r *http.Request) *job {
	j := s.Job(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job")
	}
	return j
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j := s.jobFor(w, r); j != nil {
		writeJSON(w, http.StatusOK, j.status())
	}
}

// handleEvents streams job progress until the job reaches a terminal
// state (or the client goes away). Plain JSONL by default; SSE frames
// when the client asks for text/event-stream.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.jobFor(w, r)
	if j == nil {
		return
	}
	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	send := func(ev Event) bool {
		b, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if sse {
			_, err = fmt.Fprintf(w, "data: %s\n\n", b)
		} else {
			_, err = fmt.Fprintf(w, "%s\n", b)
		}
		if err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}

	ch, cancel := j.subscribe()
	defer cancel()
	for {
		select {
		case <-r.Context().Done():
			return
		case ev := <-ch:
			if !send(ev) {
				return
			}
		case <-j.doneCh:
			// Drain anything buffered, then emit the final snapshot so
			// the last line a client reads is the terminal state even if
			// lossy progress events were dropped.
			for {
				select {
				case ev := <-ch:
					if !send(ev) {
						return
					}
					continue
				default:
				}
				break
			}
			send(j.event("state"))
			return
		}
	}
}

func (s *Server) handleBundleIndex(w http.ResponseWriter, r *http.Request) {
	j := s.jobFor(w, r)
	if j == nil {
		return
	}
	var files []string
	for _, f := range bundleFiles {
		if _, err := os.Stat(filepath.Join(j.dir, f)); err == nil {
			files = append(files, f)
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": j.id, "files": files})
}

func (s *Server) handleBundleFile(w http.ResponseWriter, r *http.Request) {
	j := s.jobFor(w, r)
	if j == nil {
		return
	}
	name := r.PathValue("file")
	ok := false
	for _, f := range bundleFiles {
		if name == f {
			ok = true
			break
		}
	}
	if !ok {
		writeError(w, http.StatusNotFound, "not a bundle file")
		return
	}
	path := filepath.Join(j.dir, name)
	if _, err := os.Stat(path); err != nil {
		writeError(w, http.StatusNotFound, "artifact not written yet")
		return
	}
	http.ServeFile(w, r, path)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.scrape()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WriteText(w)
}
