package server

import (
	"sync"
	"time"

	"faulthound/internal/campaign"
)

// Job states. A job is terminal in StateDone and StateFailed;
// StateInterrupted jobs hold a journal on disk and are requeued (as
// resumes) when the daemon restarts.
const (
	StateQueued      = "queued"
	StateRunning     = "running"
	StateDone        = "done"
	StateFailed      = "failed"
	StateInterrupted = "interrupted"
)

// Event is one line of a job's progress stream (JSONL, or SSE data
// payloads). Type is "state" for lifecycle transitions and "progress"
// for injection completions; terminal events carry the final state and
// any error.
type Event struct {
	Type  string `json:"type"` // "state" | "progress"
	State string `json:"state"`
	Done  int    `json:"done"`
	Total int    `json:"total"`
	Error string `json:"error,omitempty"`
}

// JobStatus is the wire form of a job, returned by POST /v1/campaigns
// and GET /v1/campaigns/{id}.
type JobStatus struct {
	// ID is the canonical spec hash — identical submissions share it.
	ID    string `json:"id"`
	RunID string `json:"run_id"`
	State string `json:"state"`
	Done  int    `json:"done"`
	Total int    `json:"total"`
	// Resumed counts journal-replayed injections of the current run.
	Resumed int `json:"resumed,omitempty"`
	// CacheHit marks a POST response served by dedup or the result
	// cache instead of a fresh execution.
	CacheHit bool   `json:"cache_hit,omitempty"`
	Error    string `json:"error,omitempty"`
	// Bundle is the URL path prefix of the artifact bundle once the
	// job is done.
	Bundle    string `json:"bundle,omitempty"`
	CreatedAt string `json:"created_at,omitempty"`
	ElapsedMS int64  `json:"elapsed_ms,omitempty"`
}

// job is the server-side state of one campaign.
type job struct {
	id   string // spec hash
	spec campaign.Spec
	dir  string

	mu       sync.Mutex
	state    string
	resume   bool // continue from an on-disk journal
	done     int
	total    int
	resumed  int
	err      error
	created  time.Time
	started  time.Time
	finished time.Time
	subs     map[chan Event]struct{}
	// doneCh closes when the job reaches a terminal or interrupted
	// state, releasing event streams and waiters.
	doneCh chan struct{}
}

func newJob(id string, spec campaign.Spec, dir string) *job {
	return &job{
		id:     id,
		spec:   spec,
		dir:    dir,
		state:  StateQueued,
		total:  len(spec.Cells()) * spec.Fault.Injections,
		subs:   make(map[chan Event]struct{}),
		doneCh: make(chan struct{}),
	}
}

// status snapshots the wire form.
func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.statusLocked()
}

func (j *job) statusLocked() JobStatus {
	st := JobStatus{
		ID:      j.id,
		RunID:   j.spec.RunID,
		State:   j.state,
		Done:    j.done,
		Total:   j.total,
		Resumed: j.resumed,
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	if !j.created.IsZero() {
		st.CreatedAt = j.created.UTC().Format(time.RFC3339)
	}
	if j.state == StateDone {
		st.Bundle = "/v1/campaigns/" + j.id + "/bundle/"
	}
	if !j.started.IsZero() {
		end := j.finished
		if end.IsZero() {
			end = time.Now()
		}
		st.ElapsedMS = end.Sub(j.started).Milliseconds()
	}
	return st
}

// event snapshots the stream form.
func (j *job) event(typ string) Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.eventLocked(typ)
}

func (j *job) eventLocked(typ string) Event {
	ev := Event{Type: typ, State: j.state, Done: j.done, Total: j.total}
	if j.err != nil {
		ev.Error = j.err.Error()
	}
	return ev
}

// subscribe registers a progress listener. The channel is buffered and
// lossy for progress events (a slow consumer drops ticks, never blocks
// the engine); the terminal state is always observable via doneCh plus
// a final snapshot.
func (j *job) subscribe() (ch chan Event, cancel func()) {
	ch = make(chan Event, 64)
	j.mu.Lock()
	j.subs[ch] = struct{}{}
	ch <- j.eventLocked("state")
	j.mu.Unlock()
	return ch, func() {
		j.mu.Lock()
		delete(j.subs, ch)
		j.mu.Unlock()
	}
}

// broadcastLocked fans ev to subscribers without blocking.
func (j *job) broadcastLocked(ev Event) {
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// setState transitions the job and notifies subscribers. Terminal (and
// interrupted) states close doneCh.
func (j *job) setState(state string, err error) {
	j.mu.Lock()
	j.state = state
	j.err = err
	switch state {
	case StateRunning:
		j.started = time.Now()
	case StateDone, StateFailed, StateInterrupted:
		j.finished = time.Now()
	}
	j.broadcastLocked(j.eventLocked("state"))
	terminal := state == StateDone || state == StateFailed || state == StateInterrupted
	var doneCh chan struct{}
	if terminal {
		doneCh = j.doneCh
	}
	j.mu.Unlock()
	if doneCh != nil {
		select {
		case <-doneCh:
		default:
			close(doneCh)
		}
	}
}

// progress records an engine progress callback.
func (j *job) progress(done, total int) {
	j.mu.Lock()
	j.done, j.total = done, total
	j.broadcastLocked(j.eventLocked("progress"))
	j.mu.Unlock()
}
