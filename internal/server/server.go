// Package server is the campaign-serving daemon behind cmd/fhserved:
// an HTTP front-end that accepts campaign specs, runs them on a
// bounded job queue backed by the campaign engine's worker pool, and
// serves status, streaming progress, completed artifact bundles, and
// Prometheus-format metrics.
//
// Jobs are identified by a canonical spec hash (normalized spec JSON +
// seed + git commit), so identical submissions deduplicate: a spec
// that is already queued or running attaches to the in-flight job, and
// one that already completed is served from the on-disk result cache
// without re-executing. Golden-run preparations are shared across jobs
// through a fault.PreparedCache. On SIGTERM the daemon drains: running
// engines cancel promptly (mid-injection), their journals stay on
// disk, and a restarted daemon rescans its data root and resumes every
// unfinished job through the engine's resume path.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"faulthound/internal/campaign"
	"faulthound/internal/fault"
	"faulthound/internal/pipeline"
	"faulthound/internal/server/metrics"
)

// StatusName is the per-job state file inside a job directory. It
// carries the normalized spec and last known state so a restarted
// daemon can rebuild its job table (and requeue unfinished work)
// without any external database.
const StatusName = "status.json"

// persistedStatus is the on-disk form of a job's state.
type persistedStatus struct {
	SpecHash   string        `json:"spec_hash"`
	State      string        `json:"state"`
	Spec       campaign.Spec `json:"spec"`
	Error      string        `json:"error,omitempty"`
	CreatedAt  string        `json:"created_at"`
	FinishedAt string        `json:"finished_at,omitempty"`
}

// Runner executes one campaign on behalf of the daemon's job loop.
// The engine arrives fully wired (normalized spec, factory,
// progress/observer hooks); dir is the job's bundle directory and
// resume says whether an on-disk manifest/journal should be continued.
// The default runner is the local engine; cmd/fhserved -coordinator
// swaps in cluster.Coordinator.RunCampaign to shard the campaign
// across workers instead.
type Runner func(ctx context.Context, eng *campaign.Engine, dir string, resume bool) (*campaign.Outcome, error)

// Config parameterizes a Server.
type Config struct {
	// Root is the data directory: one subdirectory per job, named by
	// spec hash, holding the artifact bundle plus status.json.
	Root string
	// Factory resolves benchmark/scheme names to core constructors
	// (harness.Options.CampaignFactory in the daemon).
	Factory campaign.CoreFactory
	// BaseFault fills zero-valued fault fields of submitted specs.
	BaseFault fault.Config
	// Jobs is the number of concurrently executing campaigns (each one
	// fans its injections over its own worker pool). Default 1.
	Jobs int
	// Workers overrides every job's injection worker pool size
	// (0 keeps the spec's choice, which itself defaults to GOMAXPROCS).
	Workers int
	// QueueDepth bounds the pending-job queue; submissions beyond it
	// are rejected with a structured 429. Default 64.
	QueueDepth int
	// MaxInjections rejects specs whose total injection count
	// (cells × injections) exceeds it; 0 means unlimited.
	MaxInjections int
	// GitCommit stamps spec hashes; empty means the checkout's HEAD.
	GitCommit string
	// Log receives structured operational logs (job state transitions
	// at Debug/Info, anomalies at Warn/Error); nil discards them.
	Log *slog.Logger
	// Runner overrides campaign execution (nil runs the engine
	// in-process; the coordinator mode shards across workers).
	Runner Runner
	// Prepared shares a golden-preparation cache with other subsystems
	// (the cluster worker); nil builds a private one.
	Prepared *fault.PreparedCache
	// Timing measures fault-free perf/energy per cell for the optimize
	// endpoint's overhead objectives (harness.Options.TimingRunner in
	// the daemon); nil answers POST /v1/optimize with 503.
	Timing campaign.TimingRunner
	// Role names this daemon's cluster role for /healthz:
	// "single" (default), "coordinator", or "worker".
	Role string
	// Ready overrides the /healthz readiness verdict; nil means always
	// ready. The detail map is merged into the health payload.
	Ready func() (bool, map[string]any)
	// RateLimit admits at most this many submissions per second
	// (bursting to RateBurst) before the daemon answers 429; 0 disables
	// the gate. Queue overflow 429s are always on.
	RateLimit float64
	// RateBurst is the admission gate's burst size; default 10.
	RateBurst int
}

// Server is the campaign-serving daemon's engine-facing half; Handler
// exposes it over HTTP.
type Server struct {
	cfg       Config
	log       *slog.Logger
	reg       *metrics.Registry
	prepared  *fault.PreparedCache
	admission *TokenBucket

	mu    sync.Mutex
	jobs  map[string]*job // by spec hash
	order []string        // submission order, for listing
	queue chan *job

	// optMu serializes Pareto searches (the driver is single-threaded
	// by contract; parallelism lives in each evaluation's worker pool).
	optMu sync.Mutex

	runCtx  context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup
	started bool

	start time.Time

	// Metrics series (names documented in docs/SERVER.md).
	mQueued      *metrics.Value
	mRunning     *metrics.Value
	mSubmitted   *metrics.Value
	mExecuted    *metrics.Value
	mFailed      *metrics.Value
	mCacheHits   *metrics.Value
	mResumedJobs *metrics.Value
	mInjections  *metrics.Value
	mInjRate     *metrics.Value
	mInflight    *metrics.Value
	mPrepHits    *metrics.Value
	mPrepMisses  *metrics.Value
	mOptRuns     *metrics.Value
	mOptHits     *metrics.Value
	mQueueWait   *metrics.Histogram

	// injections-per-second window state (guarded by rateMu).
	rateMu       sync.Mutex
	rateLastTime time.Time
	rateLastInj  float64
}

// New builds a Server over cfg.Root, rescanning it for completed
// bundles (which become cache entries) and unfinished jobs (which are
// requeued, resuming from their journals once Start is called).
func New(cfg Config) (*Server, error) {
	if cfg.Factory == nil {
		return nil, fmt.Errorf("server: config has no core factory")
	}
	if cfg.Root == "" {
		return nil, fmt.Errorf("server: config has no data root")
	}
	if cfg.Jobs <= 0 {
		cfg.Jobs = 1
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.GitCommit == "" {
		cfg.GitCommit = campaign.GitCommit()
	}
	if err := os.MkdirAll(cfg.Root, 0o755); err != nil {
		return nil, err
	}
	log := cfg.Log
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	prepared := cfg.Prepared
	if prepared == nil {
		prepared = fault.NewPreparedCache()
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:      cfg,
		log:      log,
		reg:      metrics.NewRegistry(),
		prepared: prepared,
		jobs:     make(map[string]*job),
		runCtx:   ctx,
		cancel:   cancel,
		start:    time.Now(),
	}
	if cfg.RateLimit > 0 {
		burst := cfg.RateBurst
		if burst <= 0 {
			burst = 10
		}
		s.admission = NewTokenBucket(cfg.RateLimit, burst)
	}
	s.mQueued = s.reg.Gauge("fhserved_jobs_queued", "Jobs waiting in the queue.")
	s.mRunning = s.reg.Gauge("fhserved_jobs_running", "Jobs currently executing.")
	s.mSubmitted = s.reg.Counter("fhserved_jobs_submitted_total", "Spec submissions accepted (including cache hits).")
	s.mExecuted = s.reg.Counter("fhserved_jobs_done_total", "Jobs executed to completion by this process.")
	s.mFailed = s.reg.Counter("fhserved_jobs_failed_total", "Jobs that ended in an error.")
	s.mCacheHits = s.reg.Counter("fhserved_cache_hits_total", "Submissions served by spec-hash dedup or the result cache.")
	s.mResumedJobs = s.reg.Counter("fhserved_jobs_resumed_total", "Jobs requeued from journals at startup.")
	s.mInjections = s.reg.Counter("fhserved_injections_total", "Injections executed (journal replays excluded).")
	s.mInjRate = s.reg.Gauge("fhserved_injections_per_second", "Injection throughput since the previous /metrics scrape.")
	s.mInflight = s.reg.Gauge("fhserved_injections_inflight", "Faulty runs executing right now, across all jobs.")
	s.mPrepHits = s.reg.Counter("fhserved_prepared_cache_hits_total", "Golden-run preparations reused from the prepared cache.")
	s.mPrepMisses = s.reg.Counter("fhserved_prepared_cache_misses_total", "Golden-run preparations executed (cache fills).")
	s.mOptRuns = s.reg.Counter("fhserved_optimize_runs_total", "Pareto searches executed to completion.")
	s.mOptHits = s.reg.Counter("fhserved_optimize_cache_hits_total", "Optimize requests served from the request-hash cache.")
	s.mQueueWait = s.reg.Histogram("fhserved_job_queue_wait_seconds",
		"Seconds a job waited between submission and execution start.", metrics.ExpBuckets(0.01, 2, 16))
	// Pre-register both reject reasons so scrapes render zeros before
	// the first rejection.
	for _, reason := range []string{"queue_full", "rate"} {
		s.reg.CounterWith(admissionRejectsName, admissionRejectsHelp, map[string]string{"reason": reason})
	}
	s.rateLastTime = s.start

	if err := s.rescan(); err != nil {
		cancel()
		return nil, err
	}
	// Size the queue after the rescan so every requeued job fits.
	pending := 0
	for _, id := range s.order {
		if s.jobs[id].state == StateQueued {
			pending++
		}
	}
	s.queue = make(chan *job, cfg.QueueDepth+pending)
	for _, id := range s.order {
		if j := s.jobs[id]; j.state == StateQueued {
			s.queue <- j
		}
	}
	return s, nil
}

// rescan rebuilds the job table from cfg.Root: done jobs become cache
// entries, anything unfinished is marked queued (resuming when a
// manifest/journal exists).
func (s *Server) rescan() error {
	entries, err := os.ReadDir(s.cfg.Root)
	if err != nil {
		return err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		// The optimize cache is keyed by request hash, not spec hash:
		// its directories are not jobs.
		if e.IsDir() && e.Name() != OptimizeDirName {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		dir := filepath.Join(s.cfg.Root, name)
		var ps persistedStatus
		b, err := os.ReadFile(filepath.Join(dir, StatusName))
		if err != nil {
			s.log.Warn("skipping job dir: unreadable status file", "dir", name, "err", err)
			continue
		}
		if err := json.Unmarshal(b, &ps); err != nil || ps.SpecHash == "" {
			s.log.Warn("skipping job dir: malformed status file", "dir", name)
			continue
		}
		j := newJob(ps.SpecHash, ps.Spec, dir)
		j.created = time.Now()
		switch ps.State {
		case StateDone:
			if bundleComplete(dir) {
				j.done = j.total
				j.setState(StateDone, nil) // close doneCh for waiters
			} else {
				s.log.Warn("job marked done but bundle incomplete; requeueing", "job", name)
				j.state = StateQueued
				j.resume = hasManifest(dir)
			}
		case StateFailed:
			j.state = StateFailed
			if ps.Error != "" {
				j.err = fmt.Errorf("%s", ps.Error)
			}
			j.setState(StateFailed, j.err)
		default: // queued, running, interrupted: unfinished
			j.state = StateQueued
			j.resume = hasManifest(dir)
			if j.resume {
				s.mResumedJobs.Inc()
				s.log.Info("requeueing unfinished job", "job", ps.SpecHash, "resume", true)
			}
		}
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
		if j.state == StateQueued {
			s.mQueued.Add(1)
		}
	}
	return nil
}

// Start launches the job runners. It is separate from New so tests
// (and the daemon) can inspect the rescanned state first.
func (s *Server) Start() {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.mu.Unlock()
	for i := 0; i < s.cfg.Jobs; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for {
				select {
				case <-s.runCtx.Done():
					return
				case j := <-s.queue:
					s.runJob(j)
				}
			}
		}()
	}
}

// Drain stops the server gracefully: running engines are cancelled
// (their journals persist for resume), queued jobs stay queued on
// disk, and the runners exit. It returns when every runner has
// stopped or ctx expires.
func (s *Server) Drain(ctx context.Context) error {
	s.cancel()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: drain timed out: %w", ctx.Err())
	}
}

// Unfinished lists the spec hashes whose jobs are not terminal — what
// a restarted daemon will resume.
func (s *Server) Unfinished() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for _, id := range s.order {
		switch s.jobs[id].status().State {
		case StateDone, StateFailed:
		default:
			out = append(out, id)
		}
	}
	return out
}

// Submit normalizes and hashes spec, then returns the matching job:
// an existing one (cache hit — done, queued, or running all dedup) or
// a freshly enqueued one. The bool reports whether the submission was
// served by dedup/cache. A failed job is retried, not served from
// cache.
func (s *Server) Submit(spec campaign.Spec) (*job, bool, error) {
	norm, err := NormalizeSpec(spec, s.cfg.BaseFault)
	if err != nil {
		return nil, false, wrapBadSpec(err)
	}
	if len(norm.Benchmarks) == 0 {
		return nil, false, errBadSpec("spec has no benchmarks")
	}
	if norm.Fault.Injections <= 0 {
		return nil, false, errBadSpec("spec has no injections")
	}
	cells := norm.Cells()
	if s.cfg.MaxInjections > 0 && len(cells)*norm.Fault.Injections > s.cfg.MaxInjections {
		return nil, false, errBadSpec(fmt.Sprintf("spec wants %d injections, limit is %d",
			len(cells)*norm.Fault.Injections, s.cfg.MaxInjections))
	}
	// Resolve every cell up front so an unknown bench or scheme is a
	// 400 at submit time, not a failed job later.
	for _, c := range cells {
		if _, err := s.cfg.Factory(c.Bench, c.Scheme); err != nil {
			return nil, false, wrapBadSpec(err)
		}
	}
	id := SpecHash(norm, s.cfg.GitCommit)
	// The run ID derives from the hash so a cold run and a cache hit
	// (and an uninterrupted vs. drained-and-resumed run) produce
	// byte-identical summary.json.
	norm.RunID = "job-" + id[:12]
	if s.cfg.Workers > 0 {
		norm.Workers = s.cfg.Workers
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	s.mSubmitted.Inc()
	if j := s.jobs[id]; j != nil {
		st := j.status()
		if st.State != StateFailed {
			s.mCacheHits.Inc()
			return j, true, nil
		}
		// Retry a failed job in place.
		j.mu.Lock()
		j.resume = hasManifest(j.dir)
		j.done, j.resumed = 0, 0
		j.doneCh = make(chan struct{})
		j.mu.Unlock()
		j.setState(StateQueued, nil)
		if err := s.enqueueLocked(j); err != nil {
			return nil, false, err
		}
		return j, false, nil
	}

	dir := filepath.Join(s.cfg.Root, id)
	j := newJob(id, norm, dir)
	j.created = time.Now()
	if err := s.persist(j); err != nil {
		return nil, false, err
	}
	if err := s.enqueueLocked(j); err != nil {
		return nil, false, err
	}
	s.jobs[id] = j
	s.order = append(s.order, id)
	return j, false, nil
}

// errQueueFull is returned (wrapped) when the bounded queue rejects a
// submission.
var errQueueFull = fmt.Errorf("server: job queue is full")

// Admission-gate rejection counter (reason="queue_full" | "rate").
const (
	admissionRejectsName = "fh_admission_rejects_total"
	admissionRejectsHelp = "Submissions rejected with 429 by the admission gate, by reason."
)

// rejectAdmission counts one admission-gate rejection.
func (s *Server) rejectAdmission(reason string) {
	s.reg.CounterWith(admissionRejectsName, admissionRejectsHelp, map[string]string{"reason": reason}).Inc()
}

// badSpecError marks a submission rejected at validation time. It
// wraps the underlying cause so callers (the HTTP layer) can inspect
// the chain — a scheme.IsSpecError cause turns the 400 body into the
// structured known-schemes form.
type badSpecError struct{ err error }

func errBadSpec(msg string) error     { return &badSpecError{errors.New(msg)} }
func wrapBadSpec(err error) error     { return &badSpecError{err} }
func (e *badSpecError) Error() string { return "server: bad spec: " + e.err.Error() }
func (e *badSpecError) Unwrap() error { return e.err }
func isBadSpec(err error) bool        { var b *badSpecError; return errors.As(err, &b) }
func isQueueFull(err error) bool      { return err == errQueueFull }
func (s *Server) enqueueLocked(j *job) error {
	select {
	case s.queue <- j:
		s.mQueued.Add(1)
		return nil
	default:
		return errQueueFull
	}
}

// Job returns a job by spec hash.
func (s *Server) Job(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// Jobs lists all jobs in submission order.
func (s *Server) Jobs() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobStatus, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].status())
	}
	return out
}

// Registry exposes the metrics registry (the /metrics handler and the
// daemon's own gauges write through it).
func (s *Server) Registry() *metrics.Registry { return s.reg }

// runJob executes one campaign through the engine, reporting progress
// into the job and the metrics registry.
func (s *Server) runJob(j *job) {
	s.mQueued.Add(-1)
	s.mRunning.Add(1)
	defer s.mRunning.Add(-1)
	s.mQueueWait.Observe(time.Since(j.created).Seconds())
	j.setState(StateRunning, nil)
	s.persist(j)
	s.log.Debug("job starting", "job", j.id,
		"cells", len(j.spec.Cells()), "injections", j.spec.Fault.Injections, "resume", j.resume)

	// Register the job's labeled series up front so a scrape during the
	// run (or after a run with zero detections) still renders them.
	for _, c := range j.spec.Cells() {
		labels := map[string]string{"bench": c.Bench, "scheme": c.Scheme.String()}
		s.reg.HistogramWith(injDurName, injDurHelp, injDurBuckets(), labels)
		s.reg.HistogramWith(detLatName, detLatHelp, detLatBuckets(), labels)
		for _, o := range []string{"masked", "noisy", "sdc"} {
			s.reg.CounterWith(outcomeName, outcomeHelp,
				map[string]string{"bench": c.Bench, "scheme": c.Scheme.String(), "outcome": o})
		}
	}

	eng := &campaign.Engine{
		Spec:    j.spec,
		Factory: s.cfg.Factory,
		Progress: func(done, total int) {
			j.progress(done, total)
			s.mInjections.Inc()
		},
		Prepare: func(c campaign.Cell, mk func() *pipeline.Core, cfg fault.Config) (*fault.Prepared, error) {
			return s.prepared.Get(fault.PreparedKey{Bench: c.Bench, Scheme: c.Scheme.String(), Cfg: cfg}, mk)
		},
		Warnf: func(format string, args ...any) { s.log.Warn(fmt.Sprintf(format, args...)) },
		Obs:   newMetricsSink(s.reg, s.mInflight),
	}

	run := s.cfg.Runner
	if run == nil {
		run = func(ctx context.Context, eng *campaign.Engine, dir string, resume bool) (*campaign.Outcome, error) {
			if resume {
				return eng.Resume(ctx, dir)
			}
			return eng.Run(ctx, dir, false)
		}
	}
	out, err := run(s.runCtx, eng, j.dir, j.resume)
	switch {
	case err != nil && s.runCtx.Err() != nil:
		// Drain: the journal holds every completed injection; a
		// restarted daemon requeues this job as a resume.
		j.setState(StateInterrupted, nil)
		s.persist(j)
		s.log.Info("job interrupted by drain", "job", j.id, "journal", filepath.Join(j.dir, campaign.JournalName))
	case err != nil:
		s.mFailed.Inc()
		j.setState(StateFailed, err)
		s.persist(j)
		s.log.Error("job failed", "job", j.id, "err", err)
	default:
		j.mu.Lock()
		j.resumed = out.Resumed
		j.done = j.total
		j.mu.Unlock()
		s.mExecuted.Inc()
		s.recordSummary(out.Summary)
		j.setState(StateDone, nil)
		s.persist(j)
		s.log.Info("job done", "job", j.id, "elapsed", out.Elapsed.Round(time.Millisecond), "resumed", out.Resumed)
	}
}

// recordSummary feeds per-cell results into the labeled gauges.
func (s *Server) recordSummary(sum *campaign.Summary) {
	for _, c := range sum.Cells {
		labels := map[string]string{"bench": c.Bench, "scheme": c.Scheme}
		s.reg.GaugeWith("fhserved_bench_fp_rate",
			"Fault-free false-positive rate of the cell's last completed job.", labels).Set(c.FPRate)
		if c.Coverage != nil {
			s.reg.GaugeWith("fhserved_bench_coverage",
				"SDC coverage of the cell's last completed job.", labels).Set(c.Coverage.Coverage)
		}
	}
}

// persist writes the job's status.json (best effort during state
// churn; the next transition rewrites it).
func (s *Server) persist(j *job) error {
	j.mu.Lock()
	ps := persistedStatus{
		SpecHash:  j.id,
		State:     j.state,
		Spec:      j.spec,
		CreatedAt: j.created.UTC().Format(time.RFC3339),
	}
	if j.err != nil {
		ps.Error = j.err.Error()
	}
	if !j.finished.IsZero() {
		ps.FinishedAt = j.finished.UTC().Format(time.RFC3339)
	}
	dir := j.dir
	j.mu.Unlock()
	if err := campaign.WriteJSONFile(filepath.Join(dir, StatusName), ps); err != nil {
		s.log.Warn("writing status file failed", "job", ps.SpecHash, "err", err)
		return err
	}
	return nil
}

// scrape refreshes the derived series the /metrics handler serves:
// the injections-per-second gauge from the counter delta since the
// previous scrape, and the prepared-cache counters from the cache's
// own tallies.
func (s *Server) scrape() {
	hits, misses := s.prepared.Stats()
	s.mPrepHits.Set(float64(hits))
	s.mPrepMisses.Set(float64(misses))
	s.rateMu.Lock()
	defer s.rateMu.Unlock()
	now := time.Now()
	cur := s.mInjections.Get()
	if dt := now.Sub(s.rateLastTime).Seconds(); dt > 0 {
		s.mInjRate.Set((cur - s.rateLastInj) / dt)
	}
	s.rateLastTime, s.rateLastInj = now, cur
}

// bundleComplete reports whether dir holds every post-run artifact.
func bundleComplete(dir string) bool {
	for _, f := range []string{campaign.ManifestName, campaign.ResultsName, campaign.SummaryName, campaign.ReportName} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			return false
		}
	}
	return true
}

// hasManifest reports whether dir can be resumed (the engine writes
// the manifest before the first injection).
func hasManifest(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, campaign.ManifestName))
	return err == nil
}
