package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"faulthound/internal/campaign"
	"faulthound/internal/harness"
)

// testConfig returns a server config over a fresh root with the quick
// harness factory and a pinned git commit (so hashes are stable across
// roots within one test).
func testConfig(t *testing.T) Config {
	t.Helper()
	o := harness.QuickOptions()
	return Config{
		Root:      t.TempDir(),
		Factory:   o.CampaignFactory(),
		BaseFault: o.Fault,
		GitCommit: "test-commit",
	}
}

// testSpec is a deliberately messy submission: explicit baseline,
// duplicate scheme, a RunID and worker count — everything
// normalization must erase — over a small two-cell campaign.
func testSpec(injections int) campaign.Spec {
	o := harness.QuickOptions()
	f := o.Fault
	f.Injections = injections
	return campaign.Spec{
		RunID:      "client-chosen",
		Benchmarks: []string{"bzip2"},
		Schemes:    []string{"baseline", "faulthound", "faulthound"},
		Workers:    2,
		Fault:      f,
	}
}

func waitDone(t *testing.T, j *job, timeout time.Duration) JobStatus {
	t.Helper()
	select {
	case <-j.doneCh:
	case <-time.After(timeout):
		t.Fatalf("job %s did not finish within %s (state %s)", j.id, timeout, j.status().State)
	}
	return j.status()
}

// TestServerEndToEnd is the acceptance scenario: two identical specs
// submitted concurrently over HTTP — one executes, the other is served
// by the spec-hash cache; the bundle equals a cold run byte for byte;
// /metrics reports exactly one executed job and one cache hit.
func TestServerEndToEnd(t *testing.T) {
	s, err := New(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain(context.Background())
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	cl := NewClient(ts.URL)
	ctx := context.Background()

	spec := testSpec(12)
	var (
		wg  sync.WaitGroup
		sts [2]*JobStatus
		ers [2]error
	)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sts[i], ers[i] = cl.Submit(ctx, spec)
		}(i)
	}
	wg.Wait()
	for i, err := range ers {
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if sts[0].ID != sts[1].ID {
		t.Fatalf("identical specs got different job IDs: %s vs %s", sts[0].ID, sts[1].ID)
	}
	if sts[0].CacheHit == sts[1].CacheHit {
		t.Fatalf("want exactly one cache hit, got %v and %v", sts[0].CacheHit, sts[1].CacheHit)
	}
	id := sts[0].ID

	// Watch the event stream to completion.
	var events []Event
	final, err := cl.Watch(ctx, id, func(ev Event) { events = append(events, ev) })
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone {
		t.Fatalf("final state %s (error %q)", final.State, final.Error)
	}
	if final.Total != 24 || final.Done != 24 {
		t.Fatalf("final progress %d/%d, want 24/24", final.Done, final.Total)
	}
	if len(events) == 0 {
		t.Fatal("event stream was empty")
	}
	last := events[len(events)-1]
	if last.State != StateDone {
		t.Fatalf("last streamed event state %s, want done", last.State)
	}
	prev := -1
	for _, ev := range events {
		if ev.Done < prev {
			t.Fatalf("progress went backwards: %d after %d", ev.Done, prev)
		}
		prev = ev.Done
	}

	// A third submission is now a pure result-cache hit.
	st3, err := cl.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !st3.CacheHit || st3.State != StateDone {
		t.Fatalf("post-completion submit: cache_hit=%v state=%s", st3.CacheHit, st3.State)
	}

	// The served bundle equals a cold run on a fresh server, byte for
	// byte (results.csv and summary.json are deterministic artifacts).
	gotCSV, err := cl.BundleFile(ctx, id, campaign.ResultsName)
	if err != nil {
		t.Fatal(err)
	}
	gotSum, err := cl.BundleFile(ctx, id, campaign.SummaryName)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotCSV) == 0 {
		t.Fatal("empty results.csv")
	}

	s2, err := New(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Drain(context.Background())
	s2.Start()
	j2, hit, err := s2.Submit(spec)
	if err != nil || hit {
		t.Fatalf("cold submit: hit=%v err=%v", hit, err)
	}
	waitDone(t, j2, 2*time.Minute)
	coldCSV := readFile(t, j2.dir+"/"+campaign.ResultsName)
	coldSum := readFile(t, j2.dir+"/"+campaign.SummaryName)
	if string(gotCSV) != string(coldCSV) {
		t.Fatal("cached results.csv differs from a cold run")
	}
	if string(gotSum) != string(coldSum) {
		t.Fatal("cached summary.json differs from a cold run")
	}

	// Metrics: exactly one executed job, exactly two cache hits (the
	// concurrent duplicate plus the post-completion resubmit).
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text := readAll(t, resp)
	for _, want := range []string{
		"fhserved_jobs_done_total 1",
		"fhserved_cache_hits_total 2",
		"fhserved_jobs_submitted_total 3",
		"fhserved_jobs_failed_total 0",
		`fhserved_bench_fp_rate{bench="bzip2",scheme="faulthound"}`,
		"# TYPE fhserved_injections_per_second gauge",
		// Instrumentation layer: per-injection histograms and labeled
		// outcome counters, plus prepared-cache tallies at scrape time.
		"# TYPE fhserved_injection_duration_seconds histogram",
		`fhserved_injection_duration_seconds_bucket{bench="bzip2",le="+Inf",scheme="faulthound"}`,
		`fhserved_detection_latency_cycles_bucket{bench="bzip2",le="+Inf",scheme="faulthound"}`,
		`fhserved_injection_outcomes_total{bench="bzip2",outcome="masked",scheme="faulthound"}`,
		"fhserved_prepared_cache_misses_total 2",
		"fhserved_injections_inflight 0",
		"# TYPE fhserved_job_queue_wait_seconds histogram",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q:\n%s", want, text)
		}
	}
}

// TestServerDrainResume is the SIGTERM half of the acceptance
// scenario: drain mid-campaign journals the in-flight job, a restarted
// server requeues and resumes it, and the final bundle is
// byte-identical to an uninterrupted run.
func TestServerDrainResume(t *testing.T) {
	spec := testSpec(40)

	// Uninterrupted reference run on its own root.
	refCfg := testConfig(t)
	ref, err := New(refCfg)
	if err != nil {
		t.Fatal(err)
	}
	ref.Start()
	refJob, _, err := ref.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, refJob, 2*time.Minute)
	ref.Drain(context.Background())
	refCSV := readFile(t, refJob.dir+"/"+campaign.ResultsName)
	refSum := readFile(t, refJob.dir+"/"+campaign.SummaryName)

	// Interrupted run: drain once a few injections have completed.
	cfg := testConfig(t)
	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s1.Start()
	j1, _, err := s1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	ch, cancel := j1.subscribe()
	progressed := false
	deadline := time.After(2 * time.Minute)
	for !progressed {
		select {
		case ev := <-ch:
			if ev.Type == "progress" && ev.Done >= 8 {
				progressed = true
			} else if ev.State == StateDone {
				t.Fatal("job finished before the drain could interrupt it")
			}
		case <-deadline:
			t.Fatal("no progress before deadline")
		}
	}
	cancel()
	if err := s1.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := j1.status(); st.State != StateInterrupted {
		t.Fatalf("post-drain state %s, want interrupted", st.State)
	}
	if got := s1.Unfinished(); len(got) != 1 || got[0] != j1.id {
		t.Fatalf("unfinished = %v, want [%s]", got, j1.id)
	}

	// Restart over the same root: the job requeues as a resume and
	// completes without resubmission.
	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	j2 := s2.Job(j1.id)
	if j2 == nil {
		t.Fatal("restarted server lost the interrupted job")
	}
	if !j2.resume {
		t.Fatal("requeued job is not marked for resume")
	}
	s2.Start()
	st := waitDone(t, j2, 2*time.Minute)
	s2.Drain(context.Background())
	if st.State != StateDone {
		t.Fatalf("resumed job state %s (error %q)", st.State, st.Error)
	}
	if st.Resumed == 0 {
		t.Fatal("resumed job replayed no journal records")
	}

	if string(readFile(t, j2.dir+"/"+campaign.ResultsName)) != string(refCSV) {
		t.Fatal("drained-and-resumed results.csv differs from the uninterrupted run")
	}
	if string(readFile(t, j2.dir+"/"+campaign.SummaryName)) != string(refSum) {
		t.Fatal("drained-and-resumed summary.json differs from the uninterrupted run")
	}
}

// TestServerRejections covers submit-time validation and the bounded
// queue: unknown benchmarks and empty specs are 400s, an overflowing
// queue is a structured 429 with a Retry-After hint, and bundle
// requests outside the whitelist are 404s.
func TestServerRejections(t *testing.T) {
	cfg := testConfig(t)
	cfg.QueueDepth = 1
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Not started: jobs stay queued, so the second distinct spec
	// overflows the depth-1 queue.
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	cl := NewClient(ts.URL)
	ctx := context.Background()

	if _, err := cl.Submit(ctx, campaign.Spec{Benchmarks: []string{"no-such-bench"}}); err == nil {
		t.Fatal("unknown benchmark accepted")
	} else if ae, ok := err.(*apiError); !ok || ae.Code != http.StatusBadRequest {
		t.Fatalf("unknown benchmark: %v, want 400", err)
	}
	if _, err := cl.Submit(ctx, campaign.Spec{}); err == nil {
		t.Fatal("empty spec accepted")
	}

	first := testSpec(8)
	if _, err := cl.Submit(ctx, first); err != nil {
		t.Fatal(err)
	}
	second := testSpec(8)
	second.Fault.Seed++
	if _, err := cl.Submit(ctx, second); err == nil {
		t.Fatal("queue overflow accepted")
	} else if ae, ok := err.(*apiError); !ok || ae.Code != http.StatusTooManyRequests {
		t.Fatalf("queue overflow: %v, want 429", err)
	} else if ae.RetryAfter <= 0 {
		t.Fatalf("queue overflow 429 carries no Retry-After hint: %+v", ae)
	}
	// Resubmitting the queued spec is a dedup hit, not an overflow.
	if st, err := cl.Submit(ctx, first); err != nil || !st.CacheHit {
		t.Fatalf("dedup against queued job: st=%+v err=%v", st, err)
	}

	if _, err := cl.Status(ctx, "does-not-exist"); err == nil {
		t.Fatal("unknown job id returned a status")
	}
	id := s.Jobs()[0].ID
	if _, err := cl.BundleFile(ctx, id, StatusName); err == nil {
		t.Fatal("bundle endpoint served a non-bundle file")
	}
}

// TestSchemeSpecRejection: an unknown or malformed scheme spec is a
// structured 400 carrying the registry's scheme list, and /v1/schemes
// serves the registry metadata.
func TestSchemeSpecRejection(t *testing.T) {
	s, err := New(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, bad := range []string{"bogus", "faulthound?tcam=zap"} {
		spec := testSpec(4)
		spec.Schemes = []string{bad}
		body, err := json.Marshal(spec)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("scheme %q: status %d, want 400", bad, resp.StatusCode)
		}
		var got struct {
			Error        string   `json:"error"`
			KnownSchemes []string `json:"known_schemes"`
		}
		if err := json.Unmarshal([]byte(readAll(t, resp)), &got); err != nil {
			t.Fatal(err)
		}
		if got.Error == "" {
			t.Errorf("scheme %q: 400 body has no error", bad)
		}
		found := false
		for _, n := range got.KnownSchemes {
			if n == "faulthound" {
				found = true
			}
		}
		if !found {
			t.Errorf("scheme %q: 400 body known_schemes = %v, want the registry list", bad, got.KnownSchemes)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/schemes")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/schemes status %d", resp.StatusCode)
	}
	var meta struct {
		Schemes []struct {
			Name   string `json:"name"`
			Params []struct {
				Name string `json:"name"`
				Kind string `json:"kind"`
			} `json:"params"`
		} `json:"schemes"`
	}
	if err := json.Unmarshal([]byte(readAll(t, resp)), &meta); err != nil {
		t.Fatal(err)
	}
	var fh bool
	for _, sc := range meta.Schemes {
		if sc.Name == "faulthound" {
			fh = true
			var tcam bool
			for _, p := range sc.Params {
				if p.Name == "tcam" && p.Kind == "int" {
					tcam = true
				}
			}
			if !tcam {
				t.Errorf("/v1/schemes: faulthound has no int tcam param: %+v", sc.Params)
			}
		}
	}
	if !fh {
		t.Error("/v1/schemes does not list faulthound")
	}
}

// TestWorkloadSpecRejection: an unknown or malformed workload spec is
// a structured 400 carrying the resolvable workload list (a different
// shape from the scheme 400 — clients correct the right field), and
// /v1/workloads serves the catalogue with generator parameters.
func TestWorkloadSpecRejection(t *testing.T) {
	s, err := New(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, bad := range []string{"bogus", "gen?stride=zap", "gen?bogus=1"} {
		spec := testSpec(4)
		spec.Benchmarks = []string{"bzip2", bad}
		body, err := json.Marshal(spec)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("workload %q: status %d, want 400", bad, resp.StatusCode)
		}
		var got struct {
			Error          string   `json:"error"`
			KnownSchemes   []string `json:"known_schemes"`
			KnownWorkloads []string `json:"known_workloads"`
		}
		if err := json.Unmarshal([]byte(readAll(t, resp)), &got); err != nil {
			t.Fatal(err)
		}
		if got.Error == "" {
			t.Errorf("workload %q: 400 body has no error", bad)
		}
		if got.KnownSchemes != nil {
			t.Errorf("workload %q: 400 body carries known_schemes; workload errors must use known_workloads", bad)
		}
		var bzip2, gen bool
		for _, n := range got.KnownWorkloads {
			bzip2 = bzip2 || n == "bzip2"
			gen = gen || n == "gen"
		}
		if !bzip2 || !gen {
			t.Errorf("workload %q: 400 body known_workloads = %v, want benchmarks and generators", bad, got.KnownWorkloads)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/workloads")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/workloads status %d", resp.StatusCode)
	}
	var meta struct {
		Workloads []struct {
			Name   string `json:"name"`
			Params []struct {
				Name string `json:"name"`
				Kind string `json:"kind"`
			} `json:"params"`
		} `json:"workloads"`
	}
	if err := json.Unmarshal([]byte(readAll(t, resp)), &meta); err != nil {
		t.Fatal(err)
	}
	var bzip2, gen bool
	for _, w := range meta.Workloads {
		switch w.Name {
		case "bzip2":
			bzip2 = true
			if len(w.Params) != 0 {
				t.Errorf("/v1/workloads: fixed benchmark bzip2 has params: %+v", w.Params)
			}
		case "gen":
			gen = true
			var stride, seg bool
			for _, p := range w.Params {
				stride = stride || (p.Name == "stride" && p.Kind == "int")
				seg = seg || (p.Name == "seg" && p.Kind == "size")
			}
			if !stride || !seg {
				t.Errorf("/v1/workloads: gen params missing stride/seg: %+v", w.Params)
			}
		}
	}
	if !bzip2 || !gen {
		t.Errorf("/v1/workloads lists neither bzip2 nor gen: %+v", meta.Workloads)
	}
}

func readFile(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return sb.String()
}
