package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"

	"faulthound/internal/campaign"
	"faulthound/internal/scheme"
	"faulthound/internal/search"
	"faulthound/internal/workload"
)

// OptimizeDirName is the subdirectory of the data root holding cached
// Pareto-search results, one directory per request hash. It lives
// beside the spec-hash job directories but is not a job: rescan skips
// it.
const OptimizeDirName = "optimize"

// DefaultOptimizeBudget caps distinct configurations evaluated when a
// request leaves Budget zero.
const DefaultOptimizeBudget = 8

// OptimizeRequest is the POST /v1/optimize body: the search space
// (benchmarks × base schemes × mutable params) and the driver knobs.
// Zero values take daemon defaults: Budget 8, Injections the daemon's
// base fault config, Weights all-ones, Params every mutable parameter
// the base schemes declare.
type OptimizeRequest struct {
	// Benchmarks under search; objectives are averaged across them.
	Benchmarks []string `json:"benchmarks"`
	// Schemes seed the search population (registry spec syntax; sweep
	// values fan out).
	Schemes []string `json:"schemes"`
	// Budget caps distinct configurations evaluated.
	Budget int `json:"budget,omitempty"`
	// Seed drives the mutation RNG (0 is a valid seed).
	Seed uint64 `json:"seed,omitempty"`
	// Weights is the "-fitness-weights" flag syntax
	// ("coverage=1,fp=1,energy=1,perf=1"); empty means all ones.
	Weights string `json:"weights,omitempty"`
	// Params restricts mutation to these parameter names.
	Params []string `json:"params,omitempty"`
	// Injections per cell; 0 takes the daemon's base fault config.
	Injections int `json:"injections,omitempty"`
}

// normalizeOptimize validates and canonicalizes a request: workload
// and scheme specs expand through their registries, defaults fill in,
// and every benchmark × base-scheme cell must resolve through the
// factory. The canonical form is what gets hashed, so equivalent
// requests share a cache entry.
func (s *Server) normalizeOptimize(req OptimizeRequest) (OptimizeRequest, []scheme.Spec, search.Weights, error) {
	var base []scheme.Spec
	if len(req.Benchmarks) == 0 {
		return req, nil, search.Weights{}, errBadSpec("optimize request has no benchmarks")
	}
	if len(req.Schemes) == 0 {
		return req, nil, search.Weights{}, errBadSpec("optimize request has no schemes")
	}
	benches, err := workload.ExpandSpecs(req.Benchmarks)
	if err != nil {
		return req, nil, search.Weights{}, wrapBadSpec(err)
	}
	req.Benchmarks = benches
	var schemes []string
	for _, raw := range req.Schemes {
		specs, err := scheme.Expand(raw)
		if err != nil {
			return req, nil, search.Weights{}, wrapBadSpec(err)
		}
		for _, sp := range specs {
			if sp == campaign.BaselineSpec {
				continue // baselines are implicit pairing bases, not searchable
			}
			schemes = append(schemes, sp.String())
			base = append(base, sp)
		}
	}
	if len(base) == 0 {
		return req, nil, search.Weights{}, errBadSpec("optimize request has no non-baseline schemes")
	}
	req.Schemes = schemes
	w, err := search.ParseWeights(req.Weights)
	if err != nil {
		return req, nil, search.Weights{}, wrapBadSpec(err)
	}
	req.Weights = w.String()
	if req.Budget <= 0 {
		req.Budget = DefaultOptimizeBudget
	}
	if req.Injections <= 0 {
		req.Injections = s.cfg.BaseFault.Injections
	}
	for i, p := range req.Params {
		req.Params[i] = strings.TrimSpace(p)
	}
	// Resolve every cell up front so an unknown bench or scheme is a
	// 400 at submit time, not a failed search later.
	for _, bm := range req.Benchmarks {
		for _, sp := range base {
			if _, err := s.cfg.Factory(bm, sp); err != nil {
				return req, nil, search.Weights{}, wrapBadSpec(err)
			}
		}
	}
	// The same admission cap campaigns get, against the worst case:
	// every budgeted configuration (plus one baseline per benchmark)
	// runs on every benchmark.
	if max := s.cfg.MaxInjections; max > 0 {
		worst := (req.Budget + 1) * len(req.Benchmarks) * req.Injections
		if worst > max {
			return req, nil, search.Weights{}, errBadSpec(fmt.Sprintf(
				"optimize wants up to %d injections, limit is %d", worst, max))
		}
	}
	return req, base, w, nil
}

// optimizeHash is the request's cache identity: the canonical request
// JSON, the daemon's fault config (which parameterizes every
// evaluation), and the source revision.
func (s *Server) optimizeHash(req OptimizeRequest) string {
	b, err := json.Marshal(struct {
		Req    OptimizeRequest `json:"req"`
		Fault  any             `json:"fault"`
		Commit string          `json:"commit"`
	}{req, s.faultFor(req.Injections), s.cfg.GitCommit})
	if err != nil {
		panic(fmt.Sprintf("server: optimize hash marshal: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])[:24]
}

// faultFor is the fault config an optimize run evaluates under: the
// daemon's base config with the request's injection count.
func (s *Server) faultFor(injections int) any {
	f := s.cfg.BaseFault
	f.Injections = injections
	return f
}

// handleOptimize runs (or serves from cache) a Pareto search:
// normalize, hash, and either stream back the cached pareto.json or
// execute the search synchronously and cache its artifacts under
// Root/optimize/<hash>/. Searches serialize on one mutex — the driver
// is single-threaded by contract and each evaluation already fans out
// over the injection worker pool.
func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Timing == nil {
		writeError(w, http.StatusServiceUnavailable, "optimizer unavailable: daemon has no timing runner")
		return
	}
	if s.admission != nil && !s.admission.Allow() {
		s.reject429(w, "rate", "submission rate limit exceeded", s.admission.RetryAfter())
		return
	}
	var req OptimizeRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad optimize JSON: "+err.Error())
		return
	}
	req, base, weights, err := s.normalizeOptimize(req)
	if err != nil {
		if isBadSpec(err) {
			if scheme.IsSpecError(err) {
				writeJSON(w, http.StatusBadRequest, map[string]any{
					"error":         err.Error(),
					"known_schemes": scheme.Names(),
				})
				return
			}
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}

	hash := s.optimizeHash(req)
	dir := filepath.Join(s.cfg.Root, OptimizeDirName, hash)
	jsonPath := filepath.Join(dir, search.JSONName)

	s.optMu.Lock()
	defer s.optMu.Unlock()
	if b, err := os.ReadFile(jsonPath); err == nil {
		s.mOptHits.Inc()
		s.log.Debug("optimize cache hit", "hash", hash)
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Faulthound-Optimize-Cache", "hit")
		w.WriteHeader(http.StatusOK)
		w.Write(b)
		return
	}

	fc := s.cfg.BaseFault
	fc.Injections = req.Injections
	ev := &campaign.Evaluator{
		Factory:  s.cfg.Factory,
		Fault:    fc,
		Workers:  s.cfg.Workers,
		Timing:   s.cfg.Timing,
		Prepared: s.prepared,
		Progress: func(int, int) { s.mInjections.Inc() },
	}
	cfg := search.Config{
		Seed:    req.Seed,
		Budget:  req.Budget,
		Weights: weights,
		Base:    base,
		Params:  req.Params,
		Eval:    search.CampaignEval(ev, req.Benchmarks),
		Log: func(format string, args ...any) {
			s.log.Debug(fmt.Sprintf(format, args...))
		},
	}
	s.log.Info("optimize starting", "hash", hash,
		"benchmarks", len(req.Benchmarks), "budget", req.Budget, "injections", req.Injections)
	res, err := search.Run(r.Context(), cfg)
	if err != nil {
		s.log.Error("optimize failed", "hash", hash, "err", err)
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	rep := search.NewReport("opt-"+hash[:12], req.Benchmarks, cfg, res)
	if err := rep.WriteArtifacts(dir); err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	s.mOptRuns.Inc()
	s.log.Info("optimize done", "hash", hash,
		"evaluated", res.Evaluated, "front", len(res.Front()))
	b, err := rep.JSON()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Faulthound-Optimize-Cache", "miss")
	w.WriteHeader(http.StatusOK)
	w.Write(b)
}
