package server

import (
	"encoding/json"
	"testing"

	"faulthound/internal/campaign"
	"faulthound/internal/fault"
	"faulthound/internal/scheme"
	"faulthound/internal/wgen"
)

func baseCfg() fault.Config {
	cfg := fault.DefaultConfig()
	cfg.Injections = 50
	return cfg
}

// mustNormalize is NormalizeSpec for specs the test knows are valid.
func mustNormalize(t *testing.T, spec campaign.Spec, base fault.Config) campaign.Spec {
	t.Helper()
	n, err := NormalizeSpec(spec, base)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestSpecHashCanonicalization: semantically identical specs hash
// equal; anything that changes results hashes differently.
func TestSpecHashCanonicalization(t *testing.T) {
	base := baseCfg()
	ref := campaign.Spec{
		Benchmarks: []string{"bzip2", "mcf"},
		Schemes:    []string{"faulthound"},
		Fault:      base,
	}
	refHash := SpecHash(mustNormalize(t, ref, base), "commit-a")

	same := []campaign.Spec{
		// Explicit baseline and duplicate schemes collapse.
		{Benchmarks: []string{"bzip2", "mcf"}, Schemes: []string{"baseline", "faulthound", "faulthound"}, Fault: base},
		// Duplicate benchmarks collapse.
		{Benchmarks: []string{"bzip2", "mcf", "bzip2"}, Schemes: []string{"faulthound"}, Fault: base},
		// RunID and Workers are scheduling/labeling, not identity.
		{RunID: "other", Benchmarks: []string{"bzip2", "mcf"}, Schemes: []string{"faulthound"}, Workers: 7, Fault: base},
		// Zero-valued fault fields fill from the base config.
		{Benchmarks: []string{"bzip2", "mcf"}, Schemes: []string{"faulthound"},
			Fault: fault.Config{Injections: 50, Seed: base.Seed}},
		// Default-valued and reordered parameters canonicalize away, so a
		// parameterized spelling of the defaults is the same job.
		{Benchmarks: []string{"bzip2", "mcf"}, Schemes: []string{"faulthound?tcam=32,delay=7"}, Fault: base},
		{Benchmarks: []string{"bzip2", "mcf"}, Schemes: []string{"faulthound?delay=7,tcam=32"}, Fault: base},
	}
	for i, s := range same {
		if h := SpecHash(mustNormalize(t, s, base), "commit-a"); h != refHash {
			t.Errorf("spec %d: hash %s, want %s (should be identical)", i, h, refHash)
		}
	}

	diffSeed, diffScheme, diffBench, diffInj, diffParam := ref, ref, ref, ref, ref
	diffSeed.Fault.Seed++
	diffScheme.Schemes = []string{"pbfs"}
	diffBench.Benchmarks = []string{"mcf", "bzip2"} // row order is identity
	diffInj.Fault.Injections = 51
	diffParam.Schemes = []string{"faulthound?tcam=16"} // non-default parameter is identity
	for name, s := range map[string]campaign.Spec{
		"seed": diffSeed, "scheme": diffScheme, "bench-order": diffBench,
		"injections": diffInj, "param": diffParam,
	} {
		if h := SpecHash(mustNormalize(t, s, base), "commit-a"); h == refHash {
			t.Errorf("%s variant hashed identically", name)
		}
	}

	// A different source revision is a different job.
	if SpecHash(mustNormalize(t, ref, base), "commit-b") == refHash {
		t.Error("different git commit hashed identically")
	}
}

// TestSpecHashFieldOrder: JSON field order of the submitted document
// does not affect the hash (both decode to one normalized spec).
func TestSpecHashFieldOrder(t *testing.T) {
	base := baseCfg()
	a := `{"benchmarks":["bzip2"],"schemes":["faulthound"],"fault":{"Injections":50,"Seed":4}}`
	b := `{"fault":{"Seed":4,"Injections":50},"schemes":["faulthound"],"benchmarks":["bzip2"]}`
	var sa, sb campaign.Spec
	if err := json.Unmarshal([]byte(a), &sa); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(b), &sb); err != nil {
		t.Fatal(err)
	}
	ha := SpecHash(mustNormalize(t, sa, base), "c")
	hb := SpecHash(mustNormalize(t, sb, base), "c")
	if ha != hb {
		t.Fatalf("field order changed the hash: %s != %s", ha, hb)
	}
}

// TestNormalizeSpec pins the canonical form itself.
func TestNormalizeSpec(t *testing.T) {
	base := baseCfg()
	n := mustNormalize(t, campaign.Spec{
		RunID:      "x",
		Benchmarks: []string{"mcf", "bzip2", "mcf"},
		Schemes:    []string{"baseline", "pbfs", "pbfs"},
		Workers:    3,
		Fault:      fault.Config{Seed: 9},
	}, base)
	if n.RunID != "" || n.Workers != 0 {
		t.Fatalf("RunID/Workers not erased: %+v", n)
	}
	if len(n.Benchmarks) != 2 || n.Benchmarks[0] != "mcf" || n.Benchmarks[1] != "bzip2" {
		t.Fatalf("benchmarks = %v", n.Benchmarks)
	}
	if len(n.Schemes) != 1 || n.Schemes[0] != "pbfs" {
		t.Fatalf("schemes = %v", n.Schemes)
	}
	if n.Fault.Seed != 9 || n.Fault.Injections != base.Injections || n.Fault.WindowInstr != base.WindowInstr {
		t.Fatalf("fault not default-filled: %+v", n.Fault)
	}

	// Sweep syntax fans out into individual canonical specs.
	n = mustNormalize(t, campaign.Spec{
		Benchmarks: []string{"bzip2"},
		Schemes:    []string{"faulthound?tcam=8|16|32"},
		Fault:      fault.Config{Seed: 9},
	}, base)
	want := []string{"faulthound?tcam=8", "faulthound?tcam=16", "faulthound"}
	if len(n.Schemes) != len(want) {
		t.Fatalf("sweep schemes = %v", n.Schemes)
	}
	for i, w := range want {
		if n.Schemes[i] != w {
			t.Errorf("sweep schemes[%d] = %q, want %q", i, n.Schemes[i], w)
		}
	}

	// Workload specs canonicalize and fan out the same way; plain
	// benchmark names pass through unchanged.
	n = mustNormalize(t, campaign.Spec{
		Benchmarks: []string{"bzip2", "gen?stride=8|64,vlocal=0.9"},
		Schemes:    []string{"faulthound"},
		Fault:      fault.Config{Seed: 9},
	}, base)
	wantB := []string{"bzip2", "gen", "gen?stride=64"}
	if len(n.Benchmarks) != len(wantB) {
		t.Fatalf("workload sweep benchmarks = %v", n.Benchmarks)
	}
	for i, w := range wantB {
		if n.Benchmarks[i] != w {
			t.Errorf("workload sweep benchmarks[%d] = %q, want %q", i, n.Benchmarks[i], w)
		}
	}

	// Unknown schemes and malformed specs are spec errors.
	for _, schemes := range [][]string{{"nope"}, {"faulthound?tcam=zap"}} {
		_, err := NormalizeSpec(campaign.Spec{Benchmarks: []string{"bzip2"}, Schemes: schemes, Fault: base}, base)
		if err == nil || !scheme.IsSpecError(err) {
			t.Errorf("schemes %v: err = %v, want a spec error", schemes, err)
		}
	}

	// Unknown workloads and malformed workload specs are workload-domain
	// spec errors (never scheme-domain: the 400 shapes differ).
	for _, benches := range [][]string{{"nope"}, {"gen?stride=zap"}, {"gen?bogus=1"}} {
		_, err := NormalizeSpec(campaign.Spec{Benchmarks: benches, Schemes: []string{"faulthound"}, Fault: base}, base)
		if err == nil || !wgen.IsSpecError(err) {
			t.Errorf("benchmarks %v: err = %v, want a workload spec error", benches, err)
		}
		if scheme.IsSpecError(err) {
			t.Errorf("benchmarks %v: workload spec error satisfies scheme.IsSpecError", benches)
		}
	}
}
