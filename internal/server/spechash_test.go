package server

import (
	"encoding/json"
	"testing"

	"faulthound/internal/campaign"
	"faulthound/internal/fault"
)

func baseCfg() fault.Config {
	cfg := fault.DefaultConfig()
	cfg.Injections = 50
	return cfg
}

// TestSpecHashCanonicalization: semantically identical specs hash
// equal; anything that changes results hashes differently.
func TestSpecHashCanonicalization(t *testing.T) {
	base := baseCfg()
	ref := campaign.Spec{
		Benchmarks: []string{"bzip2", "mcf"},
		Schemes:    []string{"faulthound"},
		Fault:      base,
	}
	refHash := SpecHash(NormalizeSpec(ref, base), "commit-a")

	same := []campaign.Spec{
		// Explicit baseline and duplicate schemes collapse.
		{Benchmarks: []string{"bzip2", "mcf"}, Schemes: []string{"baseline", "faulthound", "faulthound"}, Fault: base},
		// Duplicate benchmarks collapse.
		{Benchmarks: []string{"bzip2", "mcf", "bzip2"}, Schemes: []string{"faulthound"}, Fault: base},
		// RunID and Workers are scheduling/labeling, not identity.
		{RunID: "other", Benchmarks: []string{"bzip2", "mcf"}, Schemes: []string{"faulthound"}, Workers: 7, Fault: base},
		// Zero-valued fault fields fill from the base config.
		{Benchmarks: []string{"bzip2", "mcf"}, Schemes: []string{"faulthound"},
			Fault: fault.Config{Injections: 50, Seed: base.Seed}},
	}
	for i, s := range same {
		if h := SpecHash(NormalizeSpec(s, base), "commit-a"); h != refHash {
			t.Errorf("spec %d: hash %s, want %s (should be identical)", i, h, refHash)
		}
	}

	diffSeed, diffScheme, diffBench, diffInj := ref, ref, ref, ref
	diffSeed.Fault.Seed++
	diffScheme.Schemes = []string{"pbfs"}
	diffBench.Benchmarks = []string{"mcf", "bzip2"} // row order is identity
	diffInj.Fault.Injections = 51
	for name, s := range map[string]campaign.Spec{
		"seed": diffSeed, "scheme": diffScheme, "bench-order": diffBench, "injections": diffInj,
	} {
		if h := SpecHash(NormalizeSpec(s, base), "commit-a"); h == refHash {
			t.Errorf("%s variant hashed identically", name)
		}
	}

	// A different source revision is a different job.
	if SpecHash(NormalizeSpec(ref, base), "commit-b") == refHash {
		t.Error("different git commit hashed identically")
	}
}

// TestSpecHashFieldOrder: JSON field order of the submitted document
// does not affect the hash (both decode to one normalized spec).
func TestSpecHashFieldOrder(t *testing.T) {
	base := baseCfg()
	a := `{"benchmarks":["bzip2"],"schemes":["faulthound"],"fault":{"Injections":50,"Seed":4}}`
	b := `{"fault":{"Seed":4,"Injections":50},"schemes":["faulthound"],"benchmarks":["bzip2"]}`
	var sa, sb campaign.Spec
	if err := json.Unmarshal([]byte(a), &sa); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(b), &sb); err != nil {
		t.Fatal(err)
	}
	ha := SpecHash(NormalizeSpec(sa, base), "c")
	hb := SpecHash(NormalizeSpec(sb, base), "c")
	if ha != hb {
		t.Fatalf("field order changed the hash: %s != %s", ha, hb)
	}
}

// TestNormalizeSpec pins the canonical form itself.
func TestNormalizeSpec(t *testing.T) {
	base := baseCfg()
	n := NormalizeSpec(campaign.Spec{
		RunID:      "x",
		Benchmarks: []string{"b", "a", "b"},
		Schemes:    []string{"baseline", "s", "s"},
		Workers:    3,
		Fault:      fault.Config{Seed: 9},
	}, base)
	if n.RunID != "" || n.Workers != 0 {
		t.Fatalf("RunID/Workers not erased: %+v", n)
	}
	if len(n.Benchmarks) != 2 || n.Benchmarks[0] != "b" || n.Benchmarks[1] != "a" {
		t.Fatalf("benchmarks = %v", n.Benchmarks)
	}
	if len(n.Schemes) != 1 || n.Schemes[0] != "s" {
		t.Fatalf("schemes = %v", n.Schemes)
	}
	if n.Fault.Seed != 9 || n.Fault.Injections != base.Injections || n.Fault.WindowInstr != base.WindowInstr {
		t.Fatalf("fault not default-filled: %+v", n.Fault)
	}
}
