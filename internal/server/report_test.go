package server

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"faulthound/internal/contract"
)

// TestReportEndpoint covers the quality-report route end to end: 404
// for unknown jobs, 200 with contract-valid quality.json for a
// completed job, the markdown variant, and the on-disk sidecar cache
// (the second request serves the first request's files).
func TestReportEndpoint(t *testing.T) {
	s, err := New(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain(context.Background())
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(url string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, b
	}

	if code, _ := get(ts.URL + "/v1/jobs/nope/report"); code != http.StatusNotFound {
		t.Fatalf("unknown job: got %d, want 404", code)
	}

	j, _, err := s.Submit(testSpec(12))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j, 2*time.Minute)

	code, body := get(ts.URL + "/v1/jobs/" + j.id + "/report")
	if code != http.StatusOK {
		t.Fatalf("report: got %d: %s", code, body)
	}
	if err := contract.ValidateJSON(contract.KindQuality, body); err != nil {
		t.Fatalf("served report violates its contract: %v", err)
	}

	sidecar := filepath.Join(j.dir, contract.ReportDirName, contract.QualityJSONName)
	cached, err := os.ReadFile(sidecar)
	if err != nil {
		t.Fatalf("no sidecar persisted: %v", err)
	}
	if string(cached) != string(body) {
		t.Error("served report differs from the persisted sidecar")
	}

	// The alias route and the cached second hit serve identical bytes.
	code, again := get(ts.URL + "/v1/campaigns/" + j.id + "/report")
	if code != http.StatusOK || string(again) != string(body) {
		t.Fatalf("alias route: code %d, bytes match %v", code, string(again) == string(body))
	}

	code, md := get(ts.URL + "/v1/jobs/" + j.id + "/report?format=md")
	if code != http.StatusOK {
		t.Fatalf("markdown report: got %d", code)
	}
	if !strings.HasPrefix(string(md), "# Detector Quality Report") {
		t.Fatalf("markdown report does not render: %.80s", md)
	}
}
