package metrics

import (
	"sort"
	"strings"
	"testing"
)

// TestAliasRegistryRenders pins the compatibility contract of this
// package: the aliased registry behaves identically to
// internal/obs/metrics — deterministic, sorted, parseable text — so
// the daemon's /metrics endpoint did not change when the registry
// moved. The exhaustive rendering tests live with the implementation
// in internal/obs/metrics.
func TestAliasRegistryRenders(t *testing.T) {
	r := NewRegistry()
	r.Counter("fhserved_jobs_done_total", "Completed jobs.").Add(2)
	r.GaugeWith("fhserved_bench_fp_rate", "FP rate.", map[string]string{"scheme": "faulthound", "bench": "mcf"}).Set(0.25)
	r.Histogram("fhserved_injection_duration_seconds", "Wall time.", ExpBuckets(0.001, 2, 3)).Observe(0.003)

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	for _, want := range []string{
		`fhserved_bench_fp_rate{bench="mcf",scheme="faulthound"} 0.25`,
		"fhserved_jobs_done_total 2",
		`fhserved_injection_duration_seconds_bucket{le="+Inf"} 1`,
		"fhserved_injection_duration_seconds_count 1",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("missing %q in:\n%s", want, got)
		}
	}

	// Family (# TYPE) order must stay sorted — scrapers and the smoke
	// script rely on a stable, parseable exposition.
	var families []string
	for _, line := range strings.Split(got, "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			families = append(families, strings.Fields(line)[2])
		}
	}
	if !sort.StringsAreSorted(families) {
		t.Errorf("families not sorted: %v", families)
	}
}
