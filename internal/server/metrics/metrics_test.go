package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestRegistryText(t *testing.T) {
	r := NewRegistry()
	r.Counter("fh_jobs_done_total", "Completed jobs.").Add(3)
	r.Gauge("fh_jobs_running", "Running jobs.").Set(2)
	r.GaugeWith("fh_fp_rate", "Per-cell FP rate.", map[string]string{"scheme": "faulthound", "bench": "mcf"}).Set(0.25)
	r.GaugeWith("fh_fp_rate", "Per-cell FP rate.", map[string]string{"scheme": "baseline", "bench": "mcf"}).Set(0)

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := `# HELP fh_fp_rate Per-cell FP rate.
# TYPE fh_fp_rate gauge
fh_fp_rate{bench="mcf",scheme="baseline"} 0
fh_fp_rate{bench="mcf",scheme="faulthound"} 0.25
# HELP fh_jobs_done_total Completed jobs.
# TYPE fh_jobs_done_total counter
fh_jobs_done_total 3
# HELP fh_jobs_running Running jobs.
# TYPE fh_jobs_running gauge
fh_jobs_running 2
`
	if got != want {
		t.Fatalf("WriteText:\n%s\nwant:\n%s", got, want)
	}
}

func TestSeriesIdentityAndConcurrency(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c_total", "")
	if b := r.Counter("c_total", ""); a != b {
		t.Fatal("same name resolved to distinct series")
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				a.Inc()
			}
		}()
	}
	wg.Wait()
	if got := a.Get(); got != 8000 {
		t.Fatalf("counter = %v, want 8000", got)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.GaugeWith("g", "", map[string]string{"k": `a"b\c`}).Set(1)
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `g{k="a\"b\\c"} 1`) {
		t.Fatalf("escaping wrong:\n%s", sb.String())
	}
}
