// Package metrics is a minimal Prometheus-text-format registry for the
// campaign-serving daemon: counters and gauges, optionally labeled,
// rendered deterministically (families sorted by name, series by label
// string) so /metrics output is stable and testable. It is stdlib-only
// by design — the repo bakes in no dependencies — and implements just
// the exposition-format subset the daemon needs.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Value is one metric series: a float64 updated atomically. Counters
// and gauges share the representation; the family's type only changes
// how it is rendered and which mutators are idiomatic.
type Value struct {
	bits atomic.Uint64
}

// Add increments the series by d.
func (v *Value) Add(d float64) {
	for {
		old := v.bits.Load()
		cur := math.Float64frombits(old)
		if v.bits.CompareAndSwap(old, math.Float64bits(cur+d)) {
			return
		}
	}
}

// Inc increments the series by one.
func (v *Value) Inc() { v.Add(1) }

// Set replaces the series value (gauge semantics).
func (v *Value) Set(f float64) { v.bits.Store(math.Float64bits(f)) }

// Get returns the current value.
func (v *Value) Get() float64 { return math.Float64frombits(v.bits.Load()) }

// family is one metric name: its TYPE/HELP metadata and all label
// series under it.
type family struct {
	typ    string // "counter" | "gauge"
	help   string
	series map[string]*Value // keyed by rendered label string ("" = unlabeled)
}

// Registry holds the daemon's metric families.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter returns (creating if needed) the unlabeled counter name.
func (r *Registry) Counter(name, help string) *Value {
	return r.get(name, "counter", help, nil)
}

// Gauge returns (creating if needed) the unlabeled gauge name.
func (r *Registry) Gauge(name, help string) *Value {
	return r.get(name, "gauge", help, nil)
}

// GaugeWith returns (creating if needed) the labeled gauge series.
func (r *Registry) GaugeWith(name, help string, labels map[string]string) *Value {
	return r.get(name, "gauge", help, labels)
}

// CounterWith returns (creating if needed) the labeled counter series.
func (r *Registry) CounterWith(name, help string, labels map[string]string) *Value {
	return r.get(name, "counter", help, labels)
}

func (r *Registry) get(name, typ, help string, labels map[string]string) *Value {
	key := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{typ: typ, help: help, series: make(map[string]*Value)}
		r.families[name] = f
	}
	v := f.series[key]
	if v == nil {
		v = &Value{}
		f.series[key] = v
	}
	return v
}

// renderLabels produces the canonical {k="v",...} suffix, keys sorted,
// values escaped per the exposition format ("" for no labels).
func renderLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			sb.WriteByte(',')
		}
		esc := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(labels[k])
		fmt.Fprintf(&sb, `%s="%s"`, k, esc)
	}
	sb.WriteByte('}')
	return sb.String()
}

// WriteText renders the registry in the Prometheus text exposition
// format, deterministically ordered.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	var out strings.Builder
	for _, n := range names {
		f := r.families[n]
		if f.help != "" {
			fmt.Fprintf(&out, "# HELP %s %s\n", n, f.help)
		}
		fmt.Fprintf(&out, "# TYPE %s %s\n", n, f.typ)
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&out, "%s%s %s\n", n, k, strconv.FormatFloat(f.series[k].Get(), 'g', -1, 64))
		}
	}
	r.mu.Unlock()
	_, err := io.WriteString(w, out.String())
	return err
}
