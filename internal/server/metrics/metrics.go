// Package metrics is a thin alias of faulthound/internal/obs/metrics,
// kept so existing imports (and external scrape tooling documentation
// referencing this path) keep working after the registry moved into
// the shared observability layer. New code should import
// internal/obs/metrics directly.
package metrics

import "faulthound/internal/obs/metrics"

// Aliased types: a *Registry from either import path is the same type.
type (
	Registry  = metrics.Registry
	Value     = metrics.Value
	Histogram = metrics.Histogram
)

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return metrics.NewRegistry() }

// NewHistogram returns a standalone histogram with the given ascending
// upper bounds.
func NewHistogram(bounds []float64) *Histogram { return metrics.NewHistogram(bounds) }

// ExpBuckets returns n exponentially spaced upper bounds.
func ExpBuckets(start, factor float64, n int) []float64 {
	return metrics.ExpBuckets(start, factor, n)
}
