package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"faulthound/internal/campaign"
	"faulthound/internal/fault"
	"faulthound/internal/scheme"
	"faulthound/internal/workload"
)

// NormalizeSpec canonicalizes a submitted spec so semantically
// identical submissions collide on one job:
//
//   - zero-valued fault fields are filled from base (a client that
//     posts only injections and a seed means "the server defaults for
//     everything else"),
//   - scheme specs are canonicalized against the registry (parameter
//     order and default-valued parameters collapse) and sweep syntax
//     fans out, so "faulthound?tcam=32" and "faulthound" are one job,
//   - workload specs likewise: plain benchmark names pass through
//     unchanged, generated specs ("gen?...") canonicalize and fan out,
//   - benchmarks and schemes are re-derived from the canonical cell
//     enumeration (duplicates and an explicit "baseline" collapse, as
//     campaign.Spec.Cells always treated them),
//   - RunID and Workers are erased: neither affects results (the run ID
//     is assigned from the spec hash at job creation; the worker count
//     is a scheduling choice).
//
// Benchmark order is preserved — it determines bundle row order, so it
// is part of the job's identity. An unknown scheme or malformed spec
// is an error satisfying scheme.IsSpecError; an unknown workload or
// malformed workload spec satisfies wgen.IsSpecError.
func NormalizeSpec(spec campaign.Spec, base fault.Config) (campaign.Spec, error) {
	f := spec.Fault
	if f.Injections == 0 {
		f.Injections = base.Injections
	}
	if f.WarmupCycles == 0 {
		f.WarmupCycles = base.WarmupCycles
	}
	if f.SpreadCycles == 0 {
		f.SpreadCycles = base.SpreadCycles
	}
	if f.WindowInstr == 0 {
		f.WindowInstr = base.WindowInstr
	}
	if f.FrontEndPct == 0 {
		f.FrontEndPct = base.FrontEndPct
	}
	if f.LSQPct == 0 {
		f.LSQPct = base.LSQPct
	}
	if f.InFlightBias == 0 {
		f.InFlightBias = base.InFlightBias
	}
	if f.DetectorWarmupInstr == 0 {
		f.DetectorWarmupInstr = base.DetectorWarmupInstr
	}
	if f.MaxCyclesPerRun == 0 {
		f.MaxCyclesPerRun = base.MaxCyclesPerRun
	}
	if f.Seed == 0 {
		f.Seed = base.Seed
	}
	// Execution-strategy knobs never survive JSON transport (they are
	// excluded from serialization because results don't depend on
	// them): the daemon always runs with its own configured strategy,
	// and the knobs stay out of the spec hash.
	f.CheckpointCycles = base.CheckpointCycles
	f.EarlyExit = base.EarlyExit

	// Canonicalize the scheme list through the registry: sweep values
	// fan out into individual specs, parameter order and default-valued
	// parameters collapse, unknown schemes and malformed specs fail.
	var schemes []string
	for _, s := range spec.Schemes {
		specs, err := scheme.Expand(s)
		if err != nil {
			return campaign.Spec{}, err
		}
		for _, sp := range specs {
			schemes = append(schemes, sp.String())
		}
	}

	// Same for the workload list: plain benchmark names pass through
	// unchanged (keeping historical spec hashes byte-identical),
	// generated specs canonicalize and fan out, unknown workloads and
	// malformed specs fail with a workload-domain spec error.
	benches, err := workload.ExpandSpecs(spec.Benchmarks)
	if err != nil {
		return campaign.Spec{}, err
	}

	out := campaign.Spec{Fault: f}
	seen := make(map[string]bool)
	for _, c := range (campaign.Spec{Benchmarks: benches, Schemes: schemes}).Cells() {
		if !seen["b/"+c.Bench] {
			seen["b/"+c.Bench] = true
			out.Benchmarks = append(out.Benchmarks, c.Bench)
		}
		if sch := c.Scheme.String(); c.Scheme != campaign.BaselineSpec && !seen["s/"+sch] {
			seen["s/"+sch] = true
			out.Schemes = append(out.Schemes, sch)
		}
	}
	return out, nil
}

// specHashable is exactly what identifies a job's results: the
// canonical cell list, the full fault configuration (seed included),
// and the source revision that produced the binary.
type specHashable struct {
	Cells  []campaign.Cell `json:"cells"`
	Fault  fault.Config    `json:"fault"`
	Commit string          `json:"commit"`
}

// SpecHash returns the canonical job identity of a normalized spec: a
// hex SHA-256 (truncated to 24 chars, plenty at daemon scale) over the
// canonical spec JSON plus gitCommit. Two submissions hash equal iff a
// byte-identical bundle would serve both.
func SpecHash(spec campaign.Spec, gitCommit string) string {
	b, err := json.Marshal(specHashable{
		Cells:  spec.Cells(),
		Fault:  spec.Fault,
		Commit: gitCommit,
	})
	if err != nil {
		// Spec and Config are plain data; Marshal cannot fail on them.
		panic(fmt.Sprintf("server: spec hash marshal: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])[:24]
}
