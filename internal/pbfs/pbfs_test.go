package pbfs

import (
	"testing"

	"faulthound/internal/detect"
)

func ev(kind detect.Kind, pc, v uint64) detect.Event {
	return detect.Event{Kind: kind, PC: pc, Value: v}
}

func TestFirstChangeRollsBack(t *testing.T) {
	p := New(Default())
	p.OnComplete(ev(detect.LoadAddr, 10, 0x1000))
	if act := p.OnComplete(ev(detect.LoadAddr, 10, 0x1000)); act != detect.None {
		t.Fatalf("stable value acted: %v", act)
	}
	if act := p.OnComplete(ev(detect.LoadAddr, 10, 0x1001)); act != detect.Rollback {
		t.Fatalf("changed value: %v, want rollback", act)
	}
}

func TestStickyLowCoverage(t *testing.T) {
	// After the first trigger the sticky counter saturates: subsequent
	// changes in the same bit are invisible (PBFS's low coverage).
	p := New(Default())
	p.OnComplete(ev(detect.LoadAddr, 10, 0))
	p.OnComplete(ev(detect.LoadAddr, 10, 1))
	for i := 0; i < 5; i++ {
		if act := p.OnComplete(ev(detect.LoadAddr, 10, uint64(i%2))); act != detect.None {
			t.Fatalf("saturated bit acted: %v", act)
		}
	}
}

func TestSeparateAddressAndValueTables(t *testing.T) {
	p := New(Default())
	p.OnComplete(ev(detect.StoreAddr, 10, 0x1000))
	p.OnComplete(ev(detect.StoreValue, 10, 7))
	// Same PC, very different streams: value table must not have been
	// polluted by the address.
	if act := p.OnComplete(ev(detect.StoreValue, 10, 7)); act != detect.None {
		t.Fatalf("value stream polluted by address stream: %v", act)
	}
}

func TestNoCommitChecks(t *testing.T) {
	p := New(Default())
	p.OnComplete(ev(detect.LoadAddr, 10, 0))
	if act := p.OnCommit(ev(detect.LoadAddr, 10, 0xffff)); act != detect.None {
		t.Fatalf("PBFS has no LSQ coverage, got %v", act)
	}
}

func TestBiasedVariantRetriggers(t *testing.T) {
	p := New(Biased())
	p.OnComplete(ev(detect.LoadAddr, 10, 0))
	p.OnComplete(ev(detect.LoadAddr, 10, 1)) // trigger; bit 0 changing
	// Re-learn stability, then flip again: the biased machine (unlike
	// sticky) re-enters unchanging and triggers again (better coverage,
	// more false positives).
	p.OnComplete(ev(detect.LoadAddr, 10, 1))
	p.OnComplete(ev(detect.LoadAddr, 10, 1))
	if act := p.OnComplete(ev(detect.LoadAddr, 10, 0)); act != detect.Rollback {
		t.Fatalf("biased variant should re-trigger: %v", act)
	}
}

func TestLearnOnlySuppresses(t *testing.T) {
	p := New(Biased())
	p.OnComplete(ev(detect.LoadAddr, 10, 0))
	p.SetLearnOnly(true)
	if act := p.OnComplete(ev(detect.LoadAddr, 10, 0xffffffff)); act != detect.None {
		t.Fatalf("learn-only acted: %v", act)
	}
	p.SetLearnOnly(false)
}

func TestStatsAndName(t *testing.T) {
	p := New(Default())
	if p.Name() != "pbfs" {
		t.Fatalf("name = %q", p.Name())
	}
	if New(Biased()).Name() != "pbfs-biased" {
		t.Fatal("biased name wrong")
	}
	p.OnComplete(ev(detect.LoadAddr, 10, 0))
	p.OnComplete(ev(detect.LoadAddr, 10, 0xffff))
	s := p.Stats()
	if s.Checks != 2 || s.Triggers != 1 || s.Rollbacks != 1 {
		t.Fatalf("stats: %+v", s)
	}
	if s.TableReads == 0 {
		t.Fatal("table reads not counted")
	}
}

func TestCloneIndependence(t *testing.T) {
	p := New(Biased())
	p.OnComplete(ev(detect.LoadAddr, 10, 100))
	c := p.Clone()
	c.OnComplete(ev(detect.LoadAddr, 10, 0xffffffff))
	if p.Stats().Checks != 1 {
		t.Fatal("clone check leaked into original")
	}
	if act := p.OnComplete(ev(detect.LoadAddr, 10, 100)); act != detect.None {
		t.Fatal("original filters disturbed by clone")
	}
}
