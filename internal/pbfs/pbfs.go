// Package pbfs implements the Perturbation-Based Fault Screening
// baseline (Racunas et al., HPCA 2007) as configured in the FaultHound
// paper's comparison: 2K-entry PC-indexed filter tables with one-bit
// sticky counters (PBFS) or with the paper's biased two-bit state
// machine (PBFS-biased). Every trigger causes a full pipeline rollback;
// there are no commit-time checks, no clustering, no second-level
// filter, and no replay.
package pbfs

import (
	"faulthound/internal/detect"
	"faulthound/internal/ftable"
)

// Config selects the PBFS variant.
type Config struct {
	// Addr and Value are the two PC-indexed tables: one checks load and
	// store addresses, the other store values.
	Addr  ftable.Config
	Value ftable.Config
	// Name overrides the detector name (defaults to "pbfs").
	Name string
}

// Default returns the original PBFS configuration used in the paper's
// comparison (one-bit sticky counters, 2K entries, periodic clear).
func Default() Config {
	return Config{Addr: ftable.DefaultPBFS(), Value: ftable.DefaultPBFS(), Name: "pbfs"}
}

// Biased returns PBFS-biased: the same tables with the biased two-bit
// state machine, as evaluated in Figure 8.
func Biased() Config {
	return Config{Addr: ftable.DefaultBiased(), Value: ftable.DefaultBiased(), Name: "pbfs-biased"}
}

// PBFS is the detector.
type PBFS struct {
	cfg       Config
	addr      *ftable.Table
	value     *ftable.Table
	learnOnly bool
	stats     detect.Stats
}

// New creates a PBFS detector.
func New(cfg Config) *PBFS {
	if cfg.Name == "" {
		cfg.Name = "pbfs"
	}
	return &PBFS{cfg: cfg, addr: ftable.New(cfg.Addr), value: ftable.New(cfg.Value)}
}

// Name implements detect.Detector.
func (p *PBFS) Name() string { return p.cfg.Name }

// OnComplete checks the operand and requests a full rollback on any
// trigger, PBFS's only recovery mechanism (Section 2.1).
func (p *PBFS) OnComplete(ev detect.Event) detect.Action {
	p.stats.Checks++
	p.stats.TableReads++
	p.stats.TableWrites++
	var trig bool
	if ev.Kind == detect.StoreValue {
		trig, _ = p.value.Lookup(ev.PC, ev.Value)
	} else {
		trig, _ = p.addr.Lookup(ev.PC, ev.Value)
	}
	if !trig || p.learnOnly {
		return detect.None
	}
	p.stats.Triggers++
	p.stats.Rollbacks++
	return detect.Rollback
}

// OnCommit does nothing: PBFS has no LSQ coverage.
func (p *PBFS) OnCommit(detect.Event) detect.Action { return detect.None }

// SetLearnOnly implements detect.Detector. PBFS uses full rollbacks,
// which squash the triggering instruction itself, so the pipeline never
// replays; the flag exists for interface completeness.
func (p *PBFS) SetLearnOnly(on bool) { p.learnOnly = on }

// Stats implements detect.Detector.
func (p *PBFS) Stats() detect.Stats { return p.stats }

// Clone implements detect.Detector.
func (p *PBFS) Clone() detect.Detector {
	return &PBFS{
		cfg:       p.cfg,
		addr:      p.addr.Clone(),
		value:     p.value.Clone(),
		learnOnly: p.learnOnly,
		stats:     p.stats,
	}
}

// CloneInto implements detect.InPlaceCloner: overwrite dst (a previous
// Clone of this detector) reusing its filter-table storage.
func (p *PBFS) CloneInto(dst detect.Detector) bool {
	c, ok := dst.(*PBFS)
	if !ok {
		return false
	}
	c.cfg, c.learnOnly, c.stats = p.cfg, p.learnOnly, p.stats
	p.addr.CloneInto(c.addr)
	p.value.CloneInto(c.value)
	return true
}
